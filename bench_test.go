// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design knobs DESIGN.md
// calls out. Each benchmark regenerates its experiment end to end, so
//
//	go test -bench=. -benchmem
//
// re-runs the entire evaluation; per-experiment wall-clock is the ns/op
// column. Comparative figures use a reduced virtual duration per run
// (BenchDuration) — pass -dur to cmd/experiments for full-length runs.
package pricepower_test

import (
	"testing"

	"pricepower/internal/exp"
	"pricepower/internal/lbt"
	"pricepower/internal/ppm"
	"pricepower/internal/sim"
	"pricepower/internal/workload"
)

// BenchDuration is the measured virtual time per comparative run inside
// benchmarks (the paper's runs are 300 s; shapes stabilize well before).
const BenchDuration = 20 * sim.Second

func BenchmarkTable1TaskCoreDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := exp.Table1(); len(tbl.Rows) != 2 {
			b.Fatal("table 1 wrong shape")
		}
	}
}

func BenchmarkTable2ClusterDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := exp.Table2(); len(tbl.Rows) != 2 {
			b.Fatal("table 2 wrong shape")
		}
	}
}

func BenchmarkTable3ChipDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := exp.Table3(); len(tbl.Rows) == 0 {
			b.Fatal("table 3 empty")
		}
	}
}

func BenchmarkTable4DemandConversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := exp.Table4(); len(tbl.Rows) != 3 {
			b.Fatal("table 4 wrong shape")
		}
	}
}

func BenchmarkTable5Benchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := exp.Table5(); len(tbl.Rows) != 8 {
			b.Fatal("table 5 wrong shape")
		}
	}
}

func BenchmarkTable6WorkloadSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := exp.Table6(); len(tbl.Rows) != 9 {
			b.Fatal("table 6 wrong shape")
		}
	}
}

// BenchmarkTable7Overhead measures one LBT invocation in the constrained
// cluster per paper configuration — ns/op here is the quantity Table 7
// reports in milliseconds. The sub-benchmarks run the full sweep up to 256
// clusters × 16 cores × 32 tasks (131,072 tasks).
func BenchmarkTable7Overhead(b *testing.B) {
	configs := exp.Table7Configs
	if testing.Short() {
		configs = exp.Table7Quick
	}
	for _, cfg := range configs {
		cfg := cfg
		name := benchName(cfg)
		b.Run(name, func(b *testing.B) {
			_, planner := exp.BuildScaledMarket(cfg, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				planner.PlanForCluster(0, lbt.Migrate)
			}
		})
	}
}

func benchName(c exp.Table7Config) string {
	return "V" + itoa(c.V) + "_C" + itoa(c.C) + "_T" + itoa(c.T)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig4And5Comparative regenerates the no-TDP comparison (both
// figures read the same runs).
func BenchmarkFig4And5Comparative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := exp.RunComparative(0, BenchDuration)
		if err != nil {
			b.Fatal(err)
		}
		if m := c.MeanMiss(); m[0] > m[2] {
			b.Logf("shape warning: PPM mean miss %.3f above HL %.3f", m[0], m[2])
		}
	}
}

// BenchmarkFig6TDPComparative regenerates the 4 W-cap comparison.
func BenchmarkFig6TDPComparative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunComparative(4.0, BenchDuration); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Priorities regenerates both halves of the priority study.
func BenchmarkFig7Priorities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := exp.Fig7(BenchDuration); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Savings regenerates the savings study.
func BenchmarkFig8Savings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.Fig8(BenchDuration/2, BenchDuration); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches: each sweeps one PPM design knob on workload m2 under a
// 4 W cap and reports the miss rate as a benchmark metric.

func ablate(b *testing.B, mutate func(*ppm.Config)) {
	set, _ := workload.SetByName("m2")
	var miss float64
	for i := 0; i < b.N; i++ {
		cfg := ppm.DefaultConfig(4.0)
		mutate(&cfg)
		r, err := exp.RunPPMVariant(cfg, set, BenchDuration)
		if err != nil {
			b.Fatal(err)
		}
		miss = r.MissFrac
	}
	b.ReportMetric(miss*100, "miss%")
}

func BenchmarkAblationDefaults(b *testing.B) {
	ablate(b, func(*ppm.Config) {})
}

func BenchmarkAblationToleranceTight(b *testing.B) {
	ablate(b, func(c *ppm.Config) { c.Market.Tolerance = 0.05 })
}

func BenchmarkAblationToleranceLoose(b *testing.B) {
	ablate(b, func(c *ppm.Config) { c.Market.Tolerance = 0.5 })
}

func BenchmarkAblationNarrowBuffer(b *testing.B) {
	ablate(b, func(c *ppm.Config) { c.Market.Wth = 0.97 * c.Market.Wtdp })
}

func BenchmarkAblationWideBuffer(b *testing.B) {
	ablate(b, func(c *ppm.Config) { c.Market.Wth = 0.7 * c.Market.Wtdp })
}

func BenchmarkAblationSavingsOff(b *testing.B) {
	ablate(b, func(c *ppm.Config) { c.Market.SavingsCap = 1e-9 })
}

func BenchmarkAblationLBTOff(b *testing.B) {
	ablate(b, func(c *ppm.Config) { c.DisableLBT = true })
}

// BenchmarkChipWidePlan measures the full chip-wide LBT invocation (every
// cluster's constrained core planning, then the chip agent's reduction) in
// sequential vs concurrent mode — the paper's distributed-estimation claim.
// The concurrent mode is proven result-identical by the equivalence tests;
// its wall-clock benefit needs GOMAXPROCS > 1 (single-CPU hosts show
// parity).
func BenchmarkChipWidePlan(b *testing.B) {
	for _, mode := range []string{"sequential", "parallel"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			m, planner := exp.BuildScaledMarket(exp.Table7Config{V: 64, C: 8, T: 8}, 42)
			m.SetParallel(mode == "parallel")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				planner.PlanMigrate()
			}
		})
	}
}

// BenchmarkMarketRound isolates the supply-demand module's per-round cost
// on the TC2-sized market (the §5.5 claim that its overhead is negligible).
func BenchmarkMarketRound(b *testing.B) {
	set, _ := workload.SetByName("m1")
	r, err := exp.RunSet("PPM", set, 0, sim.Second)
	_ = r
	if err != nil {
		b.Fatal(err)
	}
	// Steady-state per-round cost, measured through a standalone market.
	m, planner := exp.BuildScaledMarket(exp.Table7Config{V: 2, C: 3, T: 2}, 7)
	_ = planner
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StepOnce()
	}
}
