package main_test

import (
	"strings"
	"testing"

	"pricepower/internal/smoke"
)

func TestSmoke(t *testing.T) {
	out := smoke.Run(t)
	if !strings.Contains(out, "equilibrium") {
		t.Errorf("quickstart did not reach equilibrium:\n%s", out)
	}
}
