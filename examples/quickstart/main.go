// Quickstart: run the price-theory market standalone (no hardware model),
// reproducing the paper's Table 1/2 dynamics — two tasks bid for a core's
// processing units, the price emerges from the bids, and a demand spike
// inflates the price until the cluster agent raises the supply.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pricepower"
)

func main() {
	// A single one-core cluster with a 4-rung supply ladder (PUs = MHz).
	ctl := pricepower.NewLadderControl([]float64{300, 400, 500, 600}, nil)
	cfg := pricepower.MarketConfig{InitialAllowance: 1000, InitialBid: 1, Tolerance: 0.2}
	m := pricepower.NewMarket(cfg, []pricepower.ClusterControl{ctl}, []int{1})

	// Two equal-priority tasks demanding 200 and 100 PUs.
	ta := m.AddTask(1, 0)
	tb := m.AddTask(1, 0)
	ta.Demand, tb.Demand = 200, 100

	fmt.Println("round  bid_a  bid_b  price    supply_a  supply_b  S")
	step := func(round int) {
		m.StepOnce()
		fmt.Printf("%5d  %5.2f  %5.2f  %.5f  %8.0f  %8.0f  %3.0f\n",
			round, ta.Bid(), tb.Bid(), m.Cluster(0).Cores[0].Price(),
			ta.Purchased(), tb.Purchased(), ctl.SupplyPU())
		// Feed the purchases back as next round's observations (a real
		// governor feeds measured supply instead).
		ta.Observed, tb.Observed = ta.Purchased(), tb.Purchased()
	}

	// Table 1: from equal $1 bids to a demand-proportional allocation.
	for round := 1; round <= 2; round++ {
		step(round)
	}

	// Table 2: task a's demand jumps to 300 PUs — the market inflates and
	// the cluster agent raises the V-F level to restore the price.
	fmt.Println("-- demand of task a rises to 300 PUs --")
	ta.Demand = 300
	for round := 3; round <= 6; round++ {
		step(round)
	}

	if ta.Satisfied() && tb.Satisfied() {
		fmt.Println("equilibrium: both demands met at supply", ctl.SupplyPU(), "PUs")
	}
}
