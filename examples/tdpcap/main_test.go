package main_test

import (
	"strings"
	"testing"

	"pricepower/internal/smoke"
)

func TestSmoke(t *testing.T) {
	out := smoke.Run(t, "-set", "m2", "-dur", "2")
	if !strings.Contains(out, "W") {
		t.Errorf("tdpcap run reported no power numbers:\n%s", out)
	}
}
