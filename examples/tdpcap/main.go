// TDP cap: the paper's Figure 6 scenario on one workload set. A medium
// workload runs under each of the three governors with the platform's
// power budget artificially capped to 4 W (the platform TDP is 8 W), and
// the miss rate, power, and V-F transition counts are compared.
//
//	go run ./examples/tdpcap [-set m2] [-dur 60]
package main

import (
	"flag"
	"fmt"
	"os"

	"pricepower"
	"pricepower/internal/exp"
	"pricepower/internal/sim"
)

func main() {
	setName := flag.String("set", "m2", "Table 6 workload set")
	dur := flag.Float64("dur", 60, "measured virtual seconds")
	flag.Parse()

	set, ok := pricepower.WorkloadSetByName(*setName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tdpcap: unknown workload set %q\n", *setName)
		os.Exit(1)
	}
	const wtdp = 4.0
	fmt.Printf("workload %s under a %.0f W TDP cap (platform TDP is 8 W)\n\n", set.Name, wtdp)
	fmt.Println("governor   miss[%]   avgW   V-F transitions   migrations")
	for _, gov := range exp.GovernorNames {
		r, err := exp.RunSet(gov, set, wtdp, sim.FromSeconds(*dur))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdpcap: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-8s   %6.1f   %5.2f   %15d   %10d\n",
			r.Governor, r.MissFrac*100, r.AvgPower, r.Transitions, r.Migrations)
	}
	fmt.Println("\nPPM stabilizes inside the buffer zone below the budget;")
	fmt.Println("HPM caps power by flapping V-F levels (thermal cycling);")
	fmt.Println("HL powers the big cluster off outright and starves the tasks.")
}
