package main_test

import (
	"strings"
	"testing"

	"pricepower/internal/smoke"
)

func TestSmoke(t *testing.T) {
	out := smoke.Run(t)
	if !strings.Contains(out, "@") {
		t.Errorf("manycluster run printed no task placements:\n%s", out)
	}
}
