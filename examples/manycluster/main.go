// Manycluster: the framework beyond big.LITTLE. A synthetic four-cluster
// platform (ladders spread from 350 to 3000 PU, alternating simple/complex
// micro-architectures) runs the PPM governor with *no off-line profiles at
// all*: the online profiler — the paper's stated future work — learns each
// task's cross-architecture demand ratio from the governor's own
// migrations.
//
//	go run ./examples/manycluster
package main

import (
	"fmt"

	"pricepower"
	"pricepower/internal/hw"
	"pricepower/internal/ppm"
)

func main() {
	chip, err := pricepower.NewChip(hw.ScaledSpec(4, 2))
	if err != nil {
		panic(err)
	}
	p := pricepower.NewPlatform(chip, pricepower.Millisecond)

	online := ppm.NewOnlineProfiler()
	cfg := pricepower.PPMDefaults(0)
	cfg.Profiles = online.Profiles // learned, not measured off-line
	cfg.Online = online
	p.SetGovernor(pricepower.NewPPM(cfg))

	mk := func(name string, demandPU float64, core int) *pricepower.Task {
		return p.AddTask(pricepower.TaskSpec{
			Name: name, Priority: 1, MinHR: 27, MaxHR: 33, Loop: true,
			Phases: []pricepower.TaskPhase{{HBCostLittle: demandPU / 30, SpeedupBig: 2,
				SelfCapHR: 36}}, // self-paced: won't soak idle supply
		}, core)
	}
	tasks := []*pricepower.Task{
		mk("tiny", 200, 0),    // fits the weakest cluster
		mk("medium", 1500, 1), // needs a mid-tier cluster
		mk("huge", 2400, 0),   // needs the strongest cluster
	}

	fmt.Println(chip.String())
	fmt.Println("\nt[s]  task@cluster(maxPU) hr/target ...")
	for i := 0; i < 8; i++ {
		p.Run(5 * pricepower.Second)
		fmt.Printf("%4.0f ", p.Now().Seconds())
		for _, tk := range tasks {
			cl := p.ClusterOf(tk)
			fmt.Printf("  %s@%s(%d) %.2f", tk.Name, cl.Spec.Name,
				cl.Spec.MaxFreqMHz(), tk.HeartRate(p.Now())/tk.TargetHR())
		}
		fmt.Println()
	}

	fmt.Println("\nlearned demand ratios (big-type demand / LITTLE-type demand):")
	for _, tk := range tasks {
		if r, ok := online.Ratio(tk.Name); ok {
			fmt.Printf("  %-7s %.2f (true 0.50)\n", tk.Name, r)
		} else {
			fmt.Printf("  %-7s (never migrated across types)\n", tk.Name)
		}
	}
	fmt.Println("\nclusters:")
	for i, cl := range chip.Clusters {
		state := "on"
		if !cl.On {
			state = "off"
		}
		fmt.Printf("  %s (%s, max %d PU): %s at %d MHz, %.2f W\n",
			cl.Spec.Name, cl.Spec.Type, cl.Spec.MaxFreqMHz(), state,
			cl.CurLevel().FreqMHz, p.ClusterPower(i))
	}
}
