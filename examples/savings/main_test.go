package main_test

import (
	"strings"
	"testing"

	"pricepower/internal/smoke"
)

func TestSmoke(t *testing.T) {
	out := smoke.Run(t)
	if !strings.Contains(out, "x264") {
		t.Errorf("savings run produced no trace:\n%s", out)
	}
}
