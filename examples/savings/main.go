// Savings: the paper's Figure 8 study. swaptions and x264 share one big
// core at equal priority. While x264 is dormant (low demand) its agent
// under-spends and banks the difference; when x264 turns active the pair's
// demand exceeds the core and x264 spends its savings to outbid swaptions —
// until the savings run out and the equal allowances split the core evenly.
//
//	go run ./examples/savings
package main

import (
	"fmt"

	"pricepower"
)

func main() {
	p := pricepower.NewTC2Platform()
	cfg := pricepower.PPMDefaults(0)
	cfg.DisableLBT = true
	g := pricepower.NewPPM(cfg)
	p.SetGovernor(g)

	const target = 30.0
	goal := func(name string, prio int, phases []pricepower.TaskPhase) pricepower.TaskSpec {
		return pricepower.TaskSpec{
			Name: name, Priority: prio,
			MinHR: target * 0.95, MaxHR: target * 1.05,
			Loop: true, Phases: phases,
		}
	}
	// Demands on the shared big core: swaptions steady 600 PU; x264 350 PU
	// dormant (first 30 s), then 800 PU active.
	sw := p.AddTask(goal("swaptions", 1, []pricepower.TaskPhase{
		{HBCostLittle: 2 * 600 / target, SpeedupBig: 2, SelfCapHR: target * 1.35},
	}), 0)
	x264 := p.AddTask(goal("x264", 1, []pricepower.TaskPhase{
		{Duration: 30 * pricepower.Second, HBCostLittle: 2 * 350 / target,
			SpeedupBig: 2, SelfCapHR: target * 1.25},
		{HBCostLittle: 2 * 800 / target, SpeedupBig: 2, SelfCapHR: target * 1.35},
	}), 0)

	fmt.Println("t[s]   x264_hr/target  swaptions_hr/target  x264_savings")
	var depleted pricepower.Time
	for i := 0; i < 30; i++ {
		p.Run(3 * pricepower.Second)
		now := p.Now()
		a := g.AgentOf(x264)
		fmt.Printf("%4.0f   %14.2f  %19.2f  %12.2f\n",
			now.Seconds(), x264.HeartRate(now)/target, sw.HeartRate(now)/target,
			a.Savings())
		if depleted == 0 && now > 31*pricepower.Second && a.Savings() < 1e-6 {
			depleted = now
		}
	}
	if depleted > 0 {
		fmt.Printf("\nx264's savings ran out at t≈%.0f s: its heart rate collapses\n",
			depleted.Seconds())
		fmt.Println("below range while swaptions recovers — the transient benefit")
		fmt.Println("of saving during dormant phases (§5.4).")
	}
}
