// Priorities: the paper's Figure 7 study. Two demanding tasks share one
// big core with the LBT module disabled; the run is performed twice — with
// equal priorities and with swaptions at priority 7 — and the fraction of
// time each task spends outside its normalized performance goal
// [0.95, 1.05] is reported. Higher priority buys a larger allowance, which
// buys supply.
//
//	go run ./examples/priorities
package main

import (
	"fmt"

	"pricepower"
)

// spec builds a phase-structured task whose average demand on the shared
// big core is demandPU (the phase multipliers modulate it so the pair's
// contention is intermittent, as the Figure 7 traces show), with the ±5 %
// goal around a 30 hb/s target.
func spec(name string, demandPU float64, prio int, mults []float64, phase pricepower.Time) pricepower.TaskSpec {
	const target = 30.0
	s := pricepower.TaskSpec{
		Name:     name,
		Priority: prio,
		MinHR:    target * 0.95,
		MaxHR:    target * 1.05,
		Loop:     true,
	}
	for _, m := range mults {
		s.Phases = append(s.Phases, pricepower.TaskPhase{
			// Costs are expressed per LITTLE-core cycle budget; the 2×
			// big-core speedup halves them on the big core the pair shares.
			HBCostLittle: 2 * demandPU * m / target,
			SpeedupBig:   2,
			SelfCapHR:    target * 1.35,
			Duration:     phase,
		})
	}
	return s
}

func run(prioSwaptions, prioBodytrack int) (swOut, btOut float64) {
	p := pricepower.NewTC2Platform()
	cfg := pricepower.PPMDefaults(0) // no TDP constraint
	cfg.DisableLBT = true            // §5.4: isolate the market dynamics
	p.SetGovernor(pricepower.NewPPM(cfg))

	// Combined demand hovers around the big core's 1200 PU ceiling: mild,
	// intermittent overload, so the priorities decide who holds the range.
	sw := p.AddTask(spec("swaptions_native", 625, prioSwaptions,
		[]float64{1.0, 1.08, 0.92}, 9*pricepower.Second), 0)
	bt := p.AddTask(spec("bodytrack_native", 625, prioBodytrack,
		[]float64{0.92, 1.08, 1.0}, 7*pricepower.Second), 0)

	probe := pricepower.NewProbe(p, 5*pricepower.Second)
	probe.Attach()
	p.Run(65 * pricepower.Second)
	return probe.OutsideFrac(sw), probe.OutsideFrac(bt)
}

func main() {
	swA, btA := run(1, 1)
	fmt.Println("(a) equal priorities (1, 1):")
	fmt.Printf("    swaptions outside goal: %5.1f %%\n", swA*100)
	fmt.Printf("    bodytrack outside goal: %5.1f %%\n", btA*100)

	swB, btB := run(7, 1)
	fmt.Println("(b) swaptions at priority 7:")
	fmt.Printf("    swaptions outside goal: %5.1f %%  (was %.1f %%)\n", swB*100, swA*100)
	fmt.Printf("    bodytrack outside goal: %5.1f %%  (was %.1f %%)\n", btB*100, btA*100)
	fmt.Println("higher priority → larger allowance → more supply: the")
	fmt.Println("prioritized task holds its range while its neighbour suffers.")
}
