package main_test

import (
	"strings"
	"testing"

	"pricepower/internal/smoke"
)

func TestSmoke(t *testing.T) {
	out := smoke.Run(t)
	if !strings.Contains(out, "priority 7") {
		t.Errorf("priorities run missing the high-priority phase:\n%s", out)
	}
}
