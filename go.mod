module pricepower

go 1.22
