package pricepower_test

import (
	"math"
	"testing"

	"pricepower"
)

// The facade must support the documented quickstart end to end.
func TestFacadeQuickstart(t *testing.T) {
	p := pricepower.NewTC2Platform()
	cfg := pricepower.PPMDefaults(4.0)
	cfg.Profiles = pricepower.WorkloadProfiles
	p.SetGovernor(pricepower.NewPPM(cfg))

	set, ok := pricepower.WorkloadSetByName("m2")
	if !ok {
		t.Fatal("workload set m2 missing")
	}
	specs, err := set.Specs(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		p.AddTask(s, 2+i%3)
	}

	probe := pricepower.NewProbe(p, 5*pricepower.Second)
	probe.Attach()
	p.Run(35 * pricepower.Second)

	if miss := probe.AnyBelowFrac(); miss > 0.5 {
		t.Errorf("miss fraction = %.3f through the facade", miss)
	}
	if w := probe.AveragePower(); w <= 0 || w > 4.5 {
		t.Errorf("average power = %.2f W under a 4 W cap", w)
	}
}

// The standalone-market path of the quickstart example.
func TestFacadeStandaloneMarket(t *testing.T) {
	ctl := pricepower.NewLadderControl([]float64{300, 400, 500, 600}, nil)
	cfg := pricepower.MarketConfig{InitialAllowance: 1000, InitialBid: 1, Tolerance: 0.2}
	m := pricepower.NewMarket(cfg, []pricepower.ClusterControl{ctl}, []int{1})
	ta := m.AddTask(1, 0)
	tb := m.AddTask(1, 0)
	ta.Demand, tb.Demand = 200, 100
	for i := 0; i < 10; i++ {
		m.StepOnce()
		ta.Observed, tb.Observed = ta.Purchased(), tb.Purchased()
	}
	if !ta.Satisfied() || !tb.Satisfied() {
		t.Error("market did not satisfy both demands")
	}
	if math.Abs(ta.Purchased()-200) > 5 {
		t.Errorf("task a purchased %v, want ≈200", ta.Purchased())
	}
}

func TestFacadeHardwareTypes(t *testing.T) {
	spec := pricepower.TC2Spec()
	chip, err := pricepower.NewChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(chip.Cores) != 5 {
		t.Errorf("TC2 has %d cores", len(chip.Cores))
	}
	if chip.Clusters[0].Spec.Type != pricepower.Big ||
		chip.Clusters[1].Spec.Type != pricepower.Little {
		t.Error("cluster types wrong through the facade")
	}
	p := pricepower.NewPlatform(chip, pricepower.Millisecond)
	p.Run(10 * pricepower.Millisecond)
	if p.Now() != 10*pricepower.Millisecond {
		t.Errorf("platform time = %v", p.Now())
	}
}

func TestFacadeBaselines(t *testing.T) {
	for _, build := range []func() pricepower.Governor{
		func() pricepower.Governor { return pricepower.NewHPM(0) },
		func() pricepower.Governor { return pricepower.NewHL(0) },
	} {
		p := pricepower.NewTC2Platform()
		g := build()
		p.SetGovernor(g)
		set, _ := pricepower.WorkloadSetByName("l2")
		specs, _ := set.Specs(1)
		for i, s := range specs {
			p.AddTask(s, 2+i%3)
		}
		p.Run(5 * pricepower.Second)
		if p.Power() <= 0 {
			t.Errorf("%s: no power draw", g.Name())
		}
	}
}

func TestFacadeDemandConversion(t *testing.T) {
	if d := pricepower.EstimateDemand(27, 500, 15); d != 900 {
		t.Errorf("EstimateDemand = %v, want 900 (Table 4 phase 1)", d)
	}
}

func TestFacadeWorkloadSets(t *testing.T) {
	sets := pricepower.WorkloadSets()
	if len(sets) != 9 {
		t.Fatalf("have %d sets", len(sets))
	}
	if _, ok := pricepower.WorkloadProfiles("tracking_f", pricepower.Big); !ok {
		t.Error("profile lookup failed through facade")
	}
}

func TestFacadeExtensions(t *testing.T) {
	// Market tunables.
	if cfg := pricepower.MarketDefaults(4); cfg.Wtdp != 4 || cfg.Tolerance != 0.2 {
		t.Errorf("MarketDefaults = %+v", cfg)
	}
	// §3.4 bid period derivation.
	set, _ := pricepower.WorkloadSetByName("l1")
	specs, _ := set.Specs(1)
	if got := pricepower.BidPeriodFor(specs); got <= 0 {
		t.Errorf("BidPeriodFor = %v", got)
	}
	// Online profiling + chaining.
	online := pricepower.NewOnlineProfiler()
	chained := pricepower.ChainProfiles(online.Profiles, pricepower.WorkloadProfiles)
	if _, ok := chained("tracking_f", pricepower.Big); !ok {
		t.Error("chained profiles missed the static table")
	}
	// Thermal model.
	chip, _ := pricepower.NewChip(pricepower.TC2Spec())
	tm := pricepower.NewThermalModel(chip, 25)
	if tm.MaxTemp() != 25 {
		t.Errorf("fresh thermal model MaxTemp = %v", tm.MaxTemp())
	}
}
