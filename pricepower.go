// Package pricepower is a Go reproduction of "Price Theory Based Power
// Management for Heterogeneous Multi-Cores" (Muthukaruppan, Pathania,
// Mitra — ASPLOS 2014): a market-based power-management framework for
// single-ISA heterogeneous multi-cores, together with the simulated
// ARM big.LITTLE platform, fair-scheduler substrate, benchmark workloads,
// baseline governors (HPM, HL) and the paper's full evaluation harness.
//
// This package is the public facade: it re-exports the library's stable
// surface so downstream users never import internal packages. The layering
// underneath:
//
//	core      — the price-theory market (task/core/cluster/chip agents)
//	lbt       — load balancing and task migration on top of the market
//	ppm       — the complete governor (market + LBT wired to a platform)
//	hpm, hl   — the paper's two baselines
//	hw, sched, task, sim — the simulated hardware/OS substrate
//	workload  — Table 5/6 benchmarks and workload sets
//	platform  — the assembled machine a governor drives
//	metrics   — miss-rate/power/energy probes
//	exp       — one regenerator per paper table and figure
//
// Quickstart:
//
//	p := pricepower.NewTC2Platform()
//	g := pricepower.NewPPM(pricepower.PPMDefaults(0)) // no TDP cap
//	p.SetGovernor(g)
//	p.AddTask(spec, 2) // place a task on LITTLE core 2
//	p.Run(10 * pricepower.Second)
//
// See examples/ for complete programs and DESIGN.md for the system map.
package pricepower

import (
	"pricepower/internal/core"
	"pricepower/internal/hl"
	"pricepower/internal/hpm"
	"pricepower/internal/hw"
	"pricepower/internal/metrics"
	"pricepower/internal/platform"
	"pricepower/internal/ppm"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/workload"
)

// Virtual-time units (microsecond resolution).
type Time = sim.Time

// Time unit constants.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Hardware model.
type (
	// Chip is the simulated heterogeneous multi-core platform.
	Chip = hw.Chip
	// Cluster is one voltage-frequency domain of identical cores.
	Cluster = hw.Cluster
	// CoreType distinguishes big from LITTLE micro-architectures.
	CoreType = hw.CoreType
	// ChipSpec and ClusterSpec describe platforms; see TC2Spec for the
	// paper's evaluation board.
	ChipSpec    = hw.ChipSpec
	ClusterSpec = hw.ClusterSpec
)

// Core types.
const (
	Little = hw.Little
	Big    = hw.Big
)

// TC2Spec returns the model of the paper's Versatile Express TC2 board
// (2× Cortex-A15 + 3× Cortex-A7, 8 W TDP).
func TC2Spec() ChipSpec { return hw.TC2Spec() }

// NewChip instantiates a platform model from a spec.
func NewChip(spec ChipSpec) (*Chip, error) { return hw.NewChip(spec) }

// Task model.
type (
	// TaskSpec describes a heartbeat-emitting task (phases, heart-rate
	// range, priority).
	TaskSpec = task.Spec
	// TaskPhase is one program phase of a task.
	TaskPhase = task.Phase
	// Task is a live task instance.
	Task = task.Task
)

// EstimateDemand converts a heart-rate observation into a demand in
// processing units (the paper's Table 4 equation).
func EstimateDemand(targetHR, consumedPU, currentHR float64) float64 {
	return task.EstimateDemand(targetHR, consumedPU, currentHR)
}

// Platform composition.
type (
	// Platform is the assembled simulated machine a governor drives.
	Platform = platform.Platform
	// Governor is a power-management policy.
	Governor = platform.Governor
)

// NewTC2Platform builds the paper's evaluation platform with a 1 ms tick.
func NewTC2Platform() *Platform { return platform.NewTC2() }

// NewPlatform builds a platform around an arbitrary chip model.
func NewPlatform(chip *Chip, step Time) *Platform { return platform.New(chip, step) }

// The price-theory market (usable standalone; the running examples of the
// paper's Tables 1–3 execute directly against it).
type (
	// Market is the agent hierarchy with the chip agent's money control.
	Market = core.Market
	// MarketConfig carries the market tunables (δ, savings cap, TDP…).
	MarketConfig = core.Config
	// TaskAgent is the buyer representing one task.
	TaskAgent = core.TaskAgent
	// ClusterControl is the market's actuation interface onto a cluster.
	ClusterControl = core.ClusterControl
	// LadderControl is a self-contained ClusterControl over an explicit
	// supply ladder (useful without any hardware model).
	LadderControl = core.LadderControl
	// MarketState is the chip agent's normal/threshold/emergency state.
	MarketState = core.State
)

// MarketDefaults returns the evaluation's market tunables for a TDP budget
// (0 disables the power constraint).
func MarketDefaults(wtdp float64) MarketConfig { return core.DefaultConfig(wtdp) }

// NewMarket assembles a market over cluster controls; coresPer[i] core
// agents are created for cluster i.
func NewMarket(cfg MarketConfig, controls []ClusterControl, coresPer []int) *Market {
	return core.NewMarket(cfg, controls, coresPer)
}

// NewLadderControl builds a scripted supply ladder.
func NewLadderControl(ladder, power []float64) *LadderControl {
	return core.NewLadderControl(ladder, power)
}

// Governors.
type (
	// PPM is the paper's price-theory governor (market + LBT).
	PPM = ppm.Governor
	// PPMConfig tunes it.
	PPMConfig = ppm.Config
	// HPM is the hierarchical-PID baseline.
	HPM = hpm.Governor
	// HL is the Linaro heterogeneity-aware scheduler + ondemand baseline.
	HL = hl.Governor
)

// PPMDefaults returns the paper's cadences (31.7 ms bid rounds, balancing
// every 3 rounds, migration every 6) for a TDP budget.
func PPMDefaults(wtdp float64) PPMConfig { return ppm.DefaultConfig(wtdp) }

// BidPeriodFor derives the bidding-round period from a workload per §3.4:
// max(10 ms scheduling epoch, shortest task period).
func BidPeriodFor(specs []TaskSpec) Time { return ppm.BidPeriodFor(specs) }

// OnlineProfiler learns cross-architecture demand ratios from the
// governor's own migrations — the paper's future-work replacement for
// off-line profiling. Set both PPMConfig.Online and PPMConfig.Profiles
// (possibly chained with a static table via ChainProfiles).
type OnlineProfiler = ppm.OnlineProfiler

// NewOnlineProfiler returns an empty online profiler.
func NewOnlineProfiler() *OnlineProfiler { return ppm.NewOnlineProfiler() }

// ChainProfiles composes profile sources; the first reporting evidence wins.
func ChainProfiles(sources ...ppm.ProfileFunc) ppm.ProfileFunc {
	return ppm.ChainProfiles(sources...)
}

// ThermalModel is the per-cluster RC die-temperature model.
type ThermalModel = hw.ThermalModel

// NewThermalModel builds a thermal model over a chip (params nil = mobile
// defaults) at the given ambient temperature in °C. Drive it from an engine
// hook or a trace recorder.
func NewThermalModel(chip *Chip, ambient float64) *ThermalModel {
	return hw.NewThermalModel(chip, nil, ambient)
}

// NewPPM builds the price-theory governor.
func NewPPM(cfg PPMConfig) *PPM { return ppm.New(cfg) }

// NewHPM builds the control-theory baseline.
func NewHPM(wtdp float64) *HPM { return hpm.New(hpm.DefaultConfig(wtdp)) }

// NewHL builds the Linaro-scheduler baseline.
func NewHL(wtdp float64) *HL { return hl.New(hl.DefaultConfig(wtdp)) }

// WorkloadProfiles adapts the benchmark registry's off-line profiling data
// to the PPM governor's estimator.
func WorkloadProfiles(name string, ct CoreType) (float64, bool) {
	p, ok := workload.ProfileFor(name)
	if !ok {
		return 0, false
	}
	return p.Demand(ct), true
}

// Workloads.
type (
	// WorkloadSet is one of the paper's Table 6 multiprogrammed sets.
	WorkloadSet = workload.Set
	// Benchmark is one Table 5 application.
	Benchmark = workload.Benchmark
)

// WorkloadSets returns the paper's nine sets (l1–l3, m1–m3, h1–h3).
func WorkloadSets() []WorkloadSet { return workload.Sets }

// WorkloadSet by name; ok reports whether it exists.
func WorkloadSetByName(name string) (WorkloadSet, bool) { return workload.SetByName(name) }

// Measurement.
type (
	// Probe samples a running platform for the evaluation metrics.
	Probe = metrics.Probe
	// Series is a time series of samples.
	Series = metrics.Series
)

// NewProbe builds a probe that starts measuring after warmup.
func NewProbe(p *Platform, warmup Time) *Probe { return metrics.NewProbe(p, warmup) }
