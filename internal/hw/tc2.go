package hw

import "fmt"

// TC2Spec returns the platform model of the paper's evaluation board: the
// Versatile Express TC2 CoreTile with a 2-core Cortex-A15 (big) cluster and
// a 3-core Cortex-A7 (LITTLE) cluster behind per-cluster V-F regulators.
//
// The V-F ladders follow the TC2 operating points; the power coefficients
// are calibrated so that the observed envelopes of §5.3 hold: the LITTLE
// cluster peaks at ≈2 W, the big cluster at ≈6 W, and the platform TDP is
// 8 W (artificially capped to 4 W in the Figure 6 experiment).
func TC2Spec() ChipSpec {
	return ChipSpec{
		Name: "vexpress-tc2",
		TDP:  8.0,
		Clusters: []ClusterSpec{
			{
				Name:     "a15",
				Type:     Big,
				NumCores: 2,
				Levels: []VFLevel{
					{500, 0.88}, {600, 0.90}, {700, 0.92}, {800, 0.95},
					{900, 1.00}, {1000, 1.05}, {1100, 1.10}, {1200, 1.15},
				},
				CeffDynamic:   1.717, // → 2.725 W dynamic/core at 1.2 GHz, 1.15 V
				StaticPerCore: 0.15,
				StaticBase:    0.25,
				OffPower:      0.02,
			},
			{
				Name:     "a7",
				Type:     Little,
				NumCores: 3,
				Levels: []VFLevel{
					{350, 0.85}, {400, 0.875}, {500, 0.90}, {600, 0.925},
					{700, 0.95}, {800, 1.00}, {900, 1.05}, {1000, 1.10},
				},
				CeffDynamic:   0.468, // → 0.566 W dynamic/core at 1 GHz, 1.1 V
				StaticPerCore: 0.05,
				StaticBase:    0.15,
				OffPower:      0.01,
			},
		},
	}
}

// NewTC2 instantiates the TC2 platform (by convention, cluster 0 is big,
// cluster 1 is LITTLE, matching Figure 1).
func NewTC2() *Chip { return MustNewChip(TC2Spec()) }

// ScaledSpec builds a synthetic many-cluster platform for the Table 7
// scalability experiment: clusters alternate big/LITTLE micro-architectures
// with maximum supplies spread across [350, 3000] PUs as in §5.5, each with
// coresPerCluster cores.
func ScaledSpec(clusters, coresPerCluster int) ChipSpec {
	if clusters <= 0 || coresPerCluster <= 0 {
		panic(fmt.Sprintf("hw: ScaledSpec(%d, %d)", clusters, coresPerCluster))
	}
	spec := ChipSpec{
		Name: fmt.Sprintf("scaled-%dx%d", clusters, coresPerCluster),
		TDP:  float64(clusters) * 4.0,
	}
	for i := 0; i < clusters; i++ {
		// Spread top frequencies over 350–3000 MHz per the paper's setup.
		maxF := 350
		if clusters > 1 {
			maxF = 350 + (3000-350)*i/(clusters-1)
		}
		minF := maxF / 3
		if minF < 100 {
			minF = 100
		}
		nLevels := 6
		levels := make([]VFLevel, nLevels)
		for l := 0; l < nLevels; l++ {
			f := minF + (maxF-minF)*l/(nLevels-1)
			levels[l] = VFLevel{FreqMHz: f, Voltage: 0.8 + 0.35*float64(l)/float64(nLevels-1)}
		}
		typ := Little
		ceff := 0.468
		if i%2 == 1 {
			typ = Big
			ceff = 1.717
		}
		spec.Clusters = append(spec.Clusters, ClusterSpec{
			Name:          fmt.Sprintf("cl%d", i),
			Type:          typ,
			NumCores:      coresPerCluster,
			Levels:        levels,
			CeffDynamic:   ceff,
			StaticPerCore: 0.05,
			StaticBase:    0.1,
			OffPower:      0.01,
		})
	}
	return spec
}
