package hw

import "pricepower/internal/sim"

// Migration cost model
//
// The paper measures task-migration penalties on TC2 (§5.1):
//
//	within the big cluster:      54–105 µs
//	within the LITTLE cluster:   71–167 µs
//	LITTLE → big:             1.88–2.16 ms
//	big → LITTLE:             3.54–3.83 ms
//
// with the spread attributed to the frequency level: migrations cost more at
// lower clock speeds. We interpolate linearly between the two endpoints on
// the *source* cluster's position in its ladder (top rung → cheapest).

// costRange holds the [at-max-frequency, at-min-frequency] cost endpoints.
type costRange struct {
	fast, slow sim.Time
}

func (r costRange) at(levelFrac float64) sim.Time {
	// levelFrac is 1 at the top rung, 0 at the bottom.
	return r.slow - sim.Time(levelFrac*float64(r.slow-r.fast))
}

var (
	intraBig      = costRange{54 * sim.Microsecond, 105 * sim.Microsecond}
	intraLittle   = costRange{71 * sim.Microsecond, 167 * sim.Microsecond}
	littleToBig   = costRange{1880 * sim.Microsecond, 2160 * sim.Microsecond}
	bigToLittle   = costRange{3540 * sim.Microsecond, 3830 * sim.Microsecond}
	homoUnknown   = costRange{100 * sim.Microsecond, 200 * sim.Microsecond}
	heteroUnknown = costRange{2 * sim.Millisecond, 4 * sim.Millisecond}
)

// MigrationCost returns the time a task is unavailable while moving from
// core src to core dst, given the current V-F levels of their clusters.
func MigrationCost(src, dst *Core) sim.Time {
	if src.Cluster == dst.Cluster {
		if src.Cluster == nil {
			return 0
		}
		return intraCost(src.Cluster)
	}
	frac := levelFrac(src.Cluster)
	switch {
	case src.Type() == Little && dst.Type() == Big:
		return littleToBig.at(frac)
	case src.Type() == Big && dst.Type() == Little:
		return bigToLittle.at(frac)
	case src.Type() == dst.Type():
		// Cross-cluster but same micro-architecture (e.g. a many-cluster
		// scalability platform): still a cache-warmth penalty.
		return homoUnknown.at(frac)
	default:
		return heteroUnknown.at(frac)
	}
}

func intraCost(cl *Cluster) sim.Time {
	frac := levelFrac(cl)
	switch cl.Spec.Type {
	case Big:
		return intraBig.at(frac)
	case Little:
		return intraLittle.at(frac)
	default:
		return homoUnknown.at(frac)
	}
}

func levelFrac(cl *Cluster) float64 {
	if cl == nil || len(cl.Spec.Levels) <= 1 {
		return 1
	}
	return float64(cl.Level()) / float64(len(cl.Spec.Levels)-1)
}
