package hw

import "fmt"

// Core is one processor core. Its utilization is written by the scheduler
// substrate each tick and read by the power model.
type Core struct {
	ID      int
	Cluster *Cluster

	// Utilization is the fraction of the last tick the core spent executing
	// task work, in [0,1]. The scheduler sets it; the power model reads it.
	Utilization float64

	// Offline marks a transiently hot-unplugged core (the kernel's CPU
	// hotplug path, injected by internal/fault): the core supplies no PUs
	// and executes nothing, while its cluster — and the other cores behind
	// the shared regulator — keep running. Tasks still mapped to an offline
	// core starve until the governor evacuates them.
	Offline bool
}

// Type reports the core's micro-architecture.
func (c *Core) Type() CoreType { return c.Cluster.Spec.Type }

// SupplyPU reports the core's current supply in processing units
// (== its cluster's frequency in MHz), or 0 if the cluster is off or the
// core is hot-unplugged.
func (c *Core) SupplyPU() float64 {
	if !c.Cluster.On || c.Offline {
		return 0
	}
	return float64(c.Cluster.CurLevel().FreqMHz)
}

// Cluster is a set of identical cores behind one shared V-F regulator.
type Cluster struct {
	ID    int
	Spec  ClusterSpec
	Cores []*Core

	// On reports whether the cluster is powered. A powered-down cluster
	// supplies no PUs and draws only Spec.OffPower.
	On bool

	level       int // index into Spec.Levels
	transitions int // count of V-F changes (thermal-cycling proxy)
}

// CurLevel returns the active V-F rung.
func (cl *Cluster) CurLevel() VFLevel { return cl.Spec.Levels[cl.level] }

// Level returns the index of the active rung.
func (cl *Cluster) Level() int { return cl.level }

// NumLevels reports the ladder height.
func (cl *Cluster) NumLevels() int { return len(cl.Spec.Levels) }

// Transitions reports how many V-F changes the cluster has performed.
func (cl *Cluster) Transitions() int { return cl.transitions }

// SetLevel jumps directly to ladder rung i (clamped to the valid range) and
// reports whether the level actually changed.
func (cl *Cluster) SetLevel(i int) bool {
	if i < 0 {
		i = 0
	}
	if i >= len(cl.Spec.Levels) {
		i = len(cl.Spec.Levels) - 1
	}
	if i == cl.level {
		return false
	}
	cl.level = i
	cl.transitions++
	return true
}

// StepUp raises the V-F level one rung. It reports false when already at the
// top of the ladder.
func (cl *Cluster) StepUp() bool {
	if cl.level+1 >= len(cl.Spec.Levels) {
		return false
	}
	cl.level++
	cl.transitions++
	return true
}

// StepDown lowers the V-F level one rung. It reports false when already at
// the bottom.
func (cl *Cluster) StepDown() bool {
	if cl.level == 0 {
		return false
	}
	cl.level--
	cl.transitions++
	return true
}

// SupplyPU reports the per-core supply of the cluster in PUs (the paper's
// S_v: every core in the cluster has the same supply).
func (cl *Cluster) SupplyPU() float64 {
	if !cl.On {
		return 0
	}
	return float64(cl.CurLevel().FreqMHz)
}

// LevelForSupply returns the lowest ladder index whose frequency supplies at
// least want PUs, implementing the paper's round-up-demand-to-next-supply
// rule. If want exceeds the ladder it returns the top index.
func (cl *Cluster) LevelForSupply(want float64) int {
	for i, l := range cl.Spec.Levels {
		if float64(l.FreqMHz) >= want {
			return i
		}
	}
	return len(cl.Spec.Levels) - 1
}

// PowerOn powers the cluster up at its lowest V-F level.
func (cl *Cluster) PowerOn() {
	if !cl.On {
		cl.On = true
		cl.level = 0
	}
}

// PowerOff gates the cluster.
func (cl *Cluster) PowerOff() { cl.On = false }

// Chip is the assembled platform: all clusters and cores plus the TDP
// constraint.
type Chip struct {
	Spec     ChipSpec
	Clusters []*Cluster
	Cores    []*Core
}

// NewChip instantiates a chip from its spec. It returns an error if the
// spec is inconsistent.
func NewChip(spec ChipSpec) (*Chip, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	chip := &Chip{Spec: spec}
	coreID := 0
	for ci, cs := range spec.Clusters {
		cl := &Cluster{ID: ci, Spec: cs, On: true, level: 0}
		for i := 0; i < cs.NumCores; i++ {
			core := &Core{ID: coreID, Cluster: cl}
			coreID++
			cl.Cores = append(cl.Cores, core)
			chip.Cores = append(chip.Cores, core)
		}
		chip.Clusters = append(chip.Clusters, cl)
	}
	return chip, nil
}

// MustNewChip is NewChip for specs known-good at compile time; it panics on
// error.
func MustNewChip(spec ChipSpec) *Chip {
	c, err := NewChip(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// TDP reports the thermal design power constraint (Wtdp).
func (c *Chip) TDP() float64 { return c.Spec.TDP }

// ClusterOf returns the cluster a core belongs to.
func (c *Chip) ClusterOf(coreID int) *Cluster {
	return c.Cores[coreID].Cluster
}

// String summarizes the platform.
func (c *Chip) String() string {
	s := c.Spec.Name + ":"
	for _, cl := range c.Clusters {
		s += fmt.Sprintf(" %dx%s@%d-%dMHz", cl.Spec.NumCores, cl.Spec.Type,
			cl.Spec.MinFreqMHz(), cl.Spec.MaxFreqMHz())
	}
	return s
}
