package hw

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: the what-if query ClusterPowerAt agrees with the live power
// model ClusterPower whenever every core runs at the queried utilization —
// governors rely on this to price operating points they are not at.
func TestClusterPowerAtConsistency(t *testing.T) {
	chip := NewTC2()
	f := func(level uint8, utilRaw uint16) bool {
		util := float64(utilRaw%1001) / 1000
		for _, cl := range chip.Clusters {
			l := int(level) % cl.NumLevels()
			cl.SetLevel(l)
			for _, c := range cl.Cores {
				c.Utilization = util
			}
			want := ClusterPower(cl)
			got := ClusterPowerAt(cl, l, util)
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClusterPowerAtClamps(t *testing.T) {
	cl := NewTC2().Clusters[0]
	if got := ClusterPowerAt(cl, -3, 0.5); got != ClusterPowerAt(cl, 0, 0.5) {
		t.Error("negative level not clamped")
	}
	if got := ClusterPowerAt(cl, 99, 0.5); got != ClusterPowerAt(cl, cl.NumLevels()-1, 0.5) {
		t.Error("over-range level not clamped")
	}
	if got := ClusterPowerAt(cl, 0, 7); got != ClusterPowerAt(cl, 0, 1) {
		t.Error("utilization not clamped high")
	}
	if got := ClusterPowerAt(cl, 0, -7); got != ClusterPowerAt(cl, 0, 0) {
		t.Error("utilization not clamped low")
	}
}
