package hw

import (
	"math"
	"testing"

	"pricepower/internal/sim"
)

func thermalRig() (*Chip, *ThermalModel) {
	chip := NewTC2()
	m := NewThermalModel(chip, nil, 25)
	return chip, m
}

func TestThermalStartsAtAmbient(t *testing.T) {
	_, m := thermalRig()
	for i := 0; i < 2; i++ {
		if m.Temp(i) != 25 {
			t.Errorf("cluster %d starts at %v, want 25", i, m.Temp(i))
		}
	}
	if m.MaxTemp() != 25 {
		t.Errorf("MaxTemp = %v", m.MaxTemp())
	}
}

func TestThermalConvergesToSteadyState(t *testing.T) {
	chip, m := thermalRig()
	big := chip.Clusters[0]
	big.SetLevel(big.NumLevels() - 1)
	for _, c := range big.Cores {
		c.Utilization = 1
	}
	// Run well past the R·C time constant (~10 s).
	for i := 0; i < 100_000; i++ {
		m.Update(sim.Millisecond)
	}
	want := m.SteadyState(0) // 25 + 7 K/W × ~6 W ≈ 67 °C
	if math.Abs(m.Temp(0)-want) > 0.5 {
		t.Errorf("big cluster temp = %.1f, want ≈%.1f", m.Temp(0), want)
	}
	if want < 60 || want > 75 {
		t.Errorf("steady state %.1f outside the plausible mobile envelope", want)
	}
	// The idle LITTLE cluster stays much cooler.
	if m.Temp(1) >= m.Temp(0)-20 {
		t.Errorf("LITTLE %.1f not well below big %.1f", m.Temp(1), m.Temp(0))
	}
}

func TestThermalTimeConstant(t *testing.T) {
	chip, m := thermalRig()
	big := chip.Clusters[0]
	big.SetLevel(big.NumLevels() - 1)
	for _, c := range big.Cores {
		c.Utilization = 1
	}
	// After exactly one time constant (R·C ≈ 9.8 s) the step response
	// covers 1−1/e ≈ 63 % of the way to steady state.
	tau := DefaultThermalParams().Rth * DefaultThermalParams().Cth
	steps := int(tau * 1000)
	for i := 0; i < steps; i++ {
		m.Update(sim.Millisecond)
	}
	frac := (m.Temp(0) - 25) / (m.SteadyState(0) - 25)
	if math.Abs(frac-0.632) > 0.02 {
		t.Errorf("step response after τ = %.3f of final, want ≈0.632", frac)
	}
}

func TestThermalCoolsAfterLoadDrops(t *testing.T) {
	chip, m := thermalRig()
	big := chip.Clusters[0]
	big.SetLevel(big.NumLevels() - 1)
	for _, c := range big.Cores {
		c.Utilization = 1
	}
	for i := 0; i < 30_000; i++ {
		m.Update(sim.Millisecond)
	}
	hot := m.Temp(0)
	big.PowerOff()
	for i := 0; i < 60_000; i++ {
		m.Update(sim.Millisecond)
	}
	if m.Temp(0) >= hot-20 {
		t.Errorf("cluster did not cool: %.1f → %.1f", hot, m.Temp(0))
	}
	if m.Peak(0) < hot {
		t.Errorf("peak %.1f lost the hot excursion %.1f", m.Peak(0), hot)
	}
}

func TestThermalCustomParams(t *testing.T) {
	chip := NewTC2()
	params := []ThermalParams{{Rth: 1, Cth: 1}, {Rth: 20, Cth: 1}}
	m := NewThermalModel(chip, params, 30)
	for _, cl := range chip.Clusters {
		for _, c := range cl.Cores {
			c.Utilization = 1
		}
	}
	for i := 0; i < 200_000; i++ {
		m.Update(sim.Millisecond)
	}
	// Cluster 1's high Rth makes it hotter despite drawing less power.
	if m.Temp(1) <= m.Temp(0) {
		t.Errorf("badly-cooled LITTLE %.1f not above well-cooled big %.1f",
			m.Temp(1), m.Temp(0))
	}
}
