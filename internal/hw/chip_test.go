package hw

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTC2SpecValid(t *testing.T) {
	spec := TC2Spec()
	if err := spec.Validate(); err != nil {
		t.Fatalf("TC2 spec invalid: %v", err)
	}
	if len(spec.Clusters) != 2 {
		t.Fatalf("TC2 has %d clusters, want 2", len(spec.Clusters))
	}
	big, little := spec.Clusters[0], spec.Clusters[1]
	if big.Type != Big || big.NumCores != 2 {
		t.Errorf("big cluster = %v %d cores, want Big 2", big.Type, big.NumCores)
	}
	if little.Type != Little || little.NumCores != 3 {
		t.Errorf("LITTLE cluster = %v %d cores, want Little 3", little.Type, little.NumCores)
	}
	if big.MaxFreqMHz() != 1200 || little.MaxFreqMHz() != 1000 {
		t.Errorf("max freqs = %d/%d, want 1200/1000", big.MaxFreqMHz(), little.MaxFreqMHz())
	}
	if little.MinFreqMHz() != 350 {
		t.Errorf("LITTLE min freq = %d, want 350", little.MinFreqMHz())
	}
}

func TestNewChipTopology(t *testing.T) {
	chip := NewTC2()
	if len(chip.Cores) != 5 {
		t.Fatalf("TC2 chip has %d cores, want 5", len(chip.Cores))
	}
	if got := chip.ClusterOf(0); got != chip.Clusters[0] {
		t.Errorf("core 0 in cluster %d, want 0", got.ID)
	}
	if got := chip.ClusterOf(4); got != chip.Clusters[1] {
		t.Errorf("core 4 in cluster %d, want 1", got.ID)
	}
	for i, c := range chip.Cores {
		if c.ID != i {
			t.Errorf("core at index %d has ID %d", i, c.ID)
		}
	}
	if !strings.Contains(chip.String(), "big") || !strings.Contains(chip.String(), "LITTLE") {
		t.Errorf("String() = %q, want both core type names", chip.String())
	}
}

func TestNewChipRejectsBadSpec(t *testing.T) {
	bad := []ChipSpec{
		{Name: "empty", TDP: 1},
		{Name: "noTDP", Clusters: TC2Spec().Clusters},
		{Name: "noLevels", TDP: 1, Clusters: []ClusterSpec{{Name: "x", NumCores: 1}}},
		{Name: "descending", TDP: 1, Clusters: []ClusterSpec{{
			Name: "x", NumCores: 1,
			Levels: []VFLevel{{1000, 1.0}, {500, 0.9}},
		}}},
		{Name: "zeroCores", TDP: 1, Clusters: []ClusterSpec{{
			Name: "x", NumCores: 0, Levels: []VFLevel{{500, 0.9}},
		}}},
	}
	for _, spec := range bad {
		if _, err := NewChip(spec); err == nil {
			t.Errorf("NewChip(%s) accepted invalid spec", spec.Name)
		}
	}
}

func TestClusterDVFSSteps(t *testing.T) {
	chip := NewTC2()
	cl := chip.Clusters[1] // LITTLE
	if cl.Level() != 0 {
		t.Fatalf("fresh cluster at level %d, want 0", cl.Level())
	}
	if cl.StepDown() {
		t.Error("StepDown succeeded at bottom of ladder")
	}
	for i := 1; i < cl.NumLevels(); i++ {
		if !cl.StepUp() {
			t.Fatalf("StepUp failed at level %d", i-1)
		}
	}
	if cl.StepUp() {
		t.Error("StepUp succeeded at top of ladder")
	}
	if cl.SupplyPU() != 1000 {
		t.Errorf("top supply = %v PU, want 1000", cl.SupplyPU())
	}
	if cl.Transitions() != cl.NumLevels()-1 {
		t.Errorf("transitions = %d, want %d", cl.Transitions(), cl.NumLevels()-1)
	}
}

func TestClusterSetLevelClamps(t *testing.T) {
	cl := NewTC2().Clusters[0]
	if !cl.SetLevel(100) {
		t.Error("SetLevel(100) reported no change from level 0")
	}
	if cl.Level() != cl.NumLevels()-1 {
		t.Errorf("SetLevel(100) landed on %d, want top", cl.Level())
	}
	if !cl.SetLevel(-5) {
		t.Error("SetLevel(-5) reported no change")
	}
	if cl.Level() != 0 {
		t.Errorf("SetLevel(-5) landed on %d, want 0", cl.Level())
	}
	if cl.SetLevel(0) {
		t.Error("SetLevel(current) reported a change")
	}
}

func TestLevelForSupplyRoundsUp(t *testing.T) {
	cl := NewTC2().Clusters[1] // LITTLE: 350,400,500,...
	cases := []struct {
		want   float64
		expect int
	}{
		{0, 0}, {350, 0}, {351, 1}, {450, 2}, {1000, 7}, {5000, 7},
	}
	for _, c := range cases {
		if got := cl.LevelForSupply(c.want); got != c.expect {
			t.Errorf("LevelForSupply(%v) = %d, want %d", c.want, got, c.expect)
		}
	}
}

func TestPowerDownCutsSupplyAndPower(t *testing.T) {
	chip := NewTC2()
	cl := chip.Clusters[0]
	cl.SetLevel(cl.NumLevels() - 1)
	for _, c := range cl.Cores {
		c.Utilization = 1
	}
	onPower := ClusterPower(cl)
	cl.PowerOff()
	if cl.SupplyPU() != 0 {
		t.Errorf("powered-off cluster supplies %v PU", cl.SupplyPU())
	}
	if got := ClusterPower(cl); got != cl.Spec.OffPower {
		t.Errorf("off power = %v, want %v", got, cl.Spec.OffPower)
	}
	if onPower < 10*cl.Spec.OffPower {
		t.Errorf("on power %v suspiciously close to off power", onPower)
	}
	cl.PowerOn()
	if cl.Level() != 0 {
		t.Errorf("PowerOn resumed at level %d, want 0", cl.Level())
	}
	if cl.Cores[0].SupplyPU() != float64(cl.Spec.MinFreqMHz()) {
		t.Errorf("core supply after PowerOn = %v", cl.Cores[0].SupplyPU())
	}
}

// TestPowerCalibration pins the envelope the paper reports: LITTLE cluster
// ≈2 W max, big cluster ≈6 W max, chip max ≈8 W (== TDP).
func TestPowerCalibration(t *testing.T) {
	chip := NewTC2()
	big, little := chip.Clusters[0], chip.Clusters[1]
	if got := MaxClusterPower(little); got < 1.8 || got > 2.2 {
		t.Errorf("LITTLE max power = %.2f W, want ≈2 W", got)
	}
	if got := MaxClusterPower(big); got < 5.7 || got > 6.3 {
		t.Errorf("big max power = %.2f W, want ≈6 W", got)
	}
	total := MaxClusterPower(big) + MaxClusterPower(little)
	if total < 7.6 || total > 8.4 {
		t.Errorf("chip max power = %.2f W, want ≈8 W", total)
	}
}

func TestPowerMonotonicInLevelAndUtil(t *testing.T) {
	chip := NewTC2()
	cl := chip.Clusters[0]
	prev := -1.0
	for l := 0; l < cl.NumLevels(); l++ {
		cl.SetLevel(l)
		for _, c := range cl.Cores {
			c.Utilization = 1
		}
		p := ClusterPower(cl)
		if p <= prev {
			t.Errorf("power not increasing with level: %v at level %d after %v", p, l, prev)
		}
		prev = p
	}
	// Utilization monotonicity at fixed level.
	for _, c := range cl.Cores {
		c.Utilization = 0.2
	}
	low := ClusterPower(cl)
	for _, c := range cl.Cores {
		c.Utilization = 0.9
	}
	if high := ClusterPower(cl); high <= low {
		t.Errorf("power not increasing with utilization: %v vs %v", high, low)
	}
}

func TestChipPowerIsSumOfClusters(t *testing.T) {
	chip := NewTC2()
	for _, c := range chip.Cores {
		c.Utilization = 0.5
	}
	var sum float64
	for _, cl := range chip.Clusters {
		sum += ClusterPower(cl)
	}
	if got := ChipPower(chip); got != sum {
		t.Errorf("ChipPower = %v, sum of clusters = %v", got, sum)
	}
}

func TestEnergyMeter(t *testing.T) {
	var m EnergyMeter
	if m.AveragePower() != 0 {
		t.Error("fresh meter has non-zero average power")
	}
	m.Accumulate(2.0, 500000) // 2 W for 0.5 s
	m.Accumulate(4.0, 500000) // 4 W for 0.5 s
	if got := m.Joules(); got != 3.0 {
		t.Errorf("Joules = %v, want 3", got)
	}
	if got := m.AveragePower(); got != 3.0 {
		t.Errorf("AveragePower = %v, want 3", got)
	}
	if got := m.PeakPower(); got != 4.0 {
		t.Errorf("PeakPower = %v, want 4", got)
	}
	m.Reset()
	if m.Joules() != 0 || m.Elapsed() != 0 {
		t.Error("Reset did not clear the meter")
	}
}

func TestScaledSpecShapes(t *testing.T) {
	for _, n := range []int{1, 2, 16, 256} {
		spec := ScaledSpec(n, 4)
		if err := spec.Validate(); err != nil {
			t.Fatalf("ScaledSpec(%d,4) invalid: %v", n, err)
		}
		if len(spec.Clusters) != n {
			t.Fatalf("ScaledSpec(%d,4) has %d clusters", n, len(spec.Clusters))
		}
		top := spec.Clusters[len(spec.Clusters)-1].MaxFreqMHz()
		if n > 1 && top != 3000 {
			t.Errorf("ScaledSpec(%d) top cluster max freq = %d, want 3000", n, top)
		}
	}
}

// Property: power is always positive and below the analytic ceiling for any
// utilization assignment and level.
func TestPowerBoundsProperty(t *testing.T) {
	chip := NewTC2()
	f := func(level uint8, u1, u2, u3, u4, u5 float64) bool {
		clamp := func(u float64) float64 {
			u = math.Abs(u)
			if math.IsNaN(u) || math.IsInf(u, 0) {
				return 0.5
			}
			if u > 1 {
				u = math.Mod(u, 1)
			}
			return u
		}
		us := []float64{clamp(u1), clamp(u2), clamp(u3), clamp(u4), clamp(u5)}
		for i, c := range chip.Cores {
			c.Utilization = us[i]
		}
		for _, cl := range chip.Clusters {
			cl.SetLevel(int(level) % cl.NumLevels())
		}
		p := ChipPower(chip)
		max := MaxClusterPower(chip.Clusters[0]) + MaxClusterPower(chip.Clusters[1])
		return p > 0 && p <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
