package hw

import "pricepower/internal/sim"

// Thermal model
//
// The paper's TDP constraint is thermal in origin ("the quality of the
// cooling solution determines the value of the TDP constraint"). This
// first-order RC model turns the power model's output into per-cluster die
// temperatures so experiments can check that holding W < Wtdp actually
// keeps silicon inside its envelope, and so thermal-aware extensions have a
// substrate to build on:
//
//	C · dT/dt = P − (T − T_amb)/R
//
// with per-cluster thermal resistance R (K/W) and capacitance C (J/K). The
// steady state is T = T_amb + R·P; the time constant is R·C.

// ThermalParams configures one cluster's RC pair.
type ThermalParams struct {
	// Rth is the junction-to-ambient thermal resistance in K/W.
	Rth float64
	// Cth is the lumped thermal capacitance in J/K.
	Cth float64
}

// DefaultThermalParams returns mobile-SoC-scale constants: with the TC2
// calibration (big cluster ≈6 W max, Rth 7 K/W) the big cluster tops out
// near 42 °C above ambient — about the envelope passive cooling sustains —
// and the R·C time constant is ≈10 s, the scale thermal governors react on.
func DefaultThermalParams() ThermalParams {
	return ThermalParams{Rth: 7.0, Cth: 1.4}
}

// ThermalModel tracks per-cluster die temperatures of a chip.
type ThermalModel struct {
	chip    *Chip
	params  []ThermalParams
	ambient float64
	temps   []float64
	peak    []float64
}

// NewThermalModel builds a model over the chip with one ThermalParams per
// cluster (nil uses DefaultThermalParams everywhere) starting in thermal
// equilibrium with the given ambient temperature (°C).
func NewThermalModel(chip *Chip, params []ThermalParams, ambient float64) *ThermalModel {
	m := &ThermalModel{
		chip:    chip,
		ambient: ambient,
		temps:   make([]float64, len(chip.Clusters)),
		peak:    make([]float64, len(chip.Clusters)),
	}
	m.params = make([]ThermalParams, len(chip.Clusters))
	for i := range m.params {
		if params != nil && i < len(params) {
			m.params[i] = params[i]
		} else {
			m.params[i] = DefaultThermalParams()
		}
	}
	for i := range m.temps {
		m.temps[i] = ambient
		m.peak[i] = ambient
	}
	return m
}

// Update advances every cluster's temperature by dt using the cluster's
// current power draw (explicit Euler; the platform's 1 ms tick is far
// below the ~10 s thermal time constant).
func (m *ThermalModel) Update(dt sim.Time) {
	sec := dt.Seconds()
	for i, cl := range m.chip.Clusters {
		p := ClusterPower(cl)
		pr := m.params[i]
		dT := (p - (m.temps[i]-m.ambient)/pr.Rth) / pr.Cth
		m.temps[i] += dT * sec
		if m.temps[i] > m.peak[i] {
			m.peak[i] = m.temps[i]
		}
	}
}

// Temp reports cluster i's current die temperature in °C.
func (m *ThermalModel) Temp(cluster int) float64 { return m.temps[cluster] }

// Peak reports cluster i's highest temperature seen so far.
func (m *ThermalModel) Peak(cluster int) float64 { return m.peak[cluster] }

// MaxTemp reports the hottest cluster's current temperature.
func (m *ThermalModel) MaxTemp() float64 {
	max := m.ambient
	for _, t := range m.temps {
		if t > max {
			max = t
		}
	}
	return max
}

// SteadyState reports the temperature cluster i would converge to at its
// current power draw.
func (m *ThermalModel) SteadyState(cluster int) float64 {
	return m.ambient + m.params[cluster].Rth*ClusterPower(m.chip.Clusters[cluster])
}
