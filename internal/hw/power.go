package hw

import "pricepower/internal/sim"

// Power model
//
// Cluster power is the classic CMOS decomposition
//
//	P = P_uncore(V) + Σ_cores [ Ceff · f · V² · util + P_leak(V) ]
//
// with dynamic power proportional to effective switched capacitance, clock
// frequency and the square of the supply voltage, scaled by the fraction of
// the interval the core actually executed (its utilization), and leakage
// scaled quadratically with voltage relative to the nominal (top-rung)
// voltage. The coefficients in tc2.go are calibrated so the cluster
// envelopes match the paper's observations: the A7 cluster peaks near 2 W,
// the A15 cluster near 6 W, and the platform TDP is 8 W.

// ClusterPower returns the cluster's current electrical power in watts given
// the utilizations currently stored on its cores.
func ClusterPower(cl *Cluster) float64 {
	if !cl.On {
		return cl.Spec.OffPower
	}
	lvl := cl.CurLevel()
	vNom := cl.Spec.Levels[len(cl.Spec.Levels)-1].Voltage
	vr := lvl.Voltage / vNom
	fGHz := float64(lvl.FreqMHz) / 1000.0
	p := cl.Spec.StaticBase * vr * vr
	leak := cl.Spec.StaticPerCore * vr * vr
	dyn := cl.Spec.CeffDynamic * fGHz * lvl.Voltage * lvl.Voltage
	for _, core := range cl.Cores {
		p += leak + dyn*core.Utilization
	}
	return p
}

// ChipPower returns the whole-chip power in watts (the paper's W).
func ChipPower(c *Chip) float64 {
	var p float64
	for _, cl := range c.Clusters {
		p += ClusterPower(cl)
	}
	return p
}

// MaxClusterPower returns the cluster's power ceiling: every core fully
// utilized at the top V-F rung.
func MaxClusterPower(cl *Cluster) float64 {
	return ClusterPowerAt(cl, len(cl.Spec.Levels)-1, 1)
}

// ClusterPowerAt returns the cluster's power at ladder rung `level` with
// every core at utilization `util` — the what-if query governors use to
// price candidate operating points without changing hardware state.
func ClusterPowerAt(cl *Cluster, level int, util float64) float64 {
	if level < 0 {
		level = 0
	}
	if level >= len(cl.Spec.Levels) {
		level = len(cl.Spec.Levels) - 1
	}
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	lvl := cl.Spec.Levels[level]
	vNom := cl.Spec.Levels[len(cl.Spec.Levels)-1].Voltage
	vr := lvl.Voltage / vNom
	dyn := cl.Spec.CeffDynamic * float64(lvl.FreqMHz) / 1000.0 * lvl.Voltage * lvl.Voltage
	leak := cl.Spec.StaticPerCore * vr * vr
	return cl.Spec.StaticBase*vr*vr + float64(cl.Spec.NumCores)*(leak+dyn*util)
}

// EnergyMeter integrates power over virtual time, mimicking the TC2 energy
// sensors exposed through hwmon.
type EnergyMeter struct {
	joules  float64
	elapsed sim.Time
	peak    float64
}

// Accumulate records that the measured domain drew watts for dt.
func (m *EnergyMeter) Accumulate(watts float64, dt sim.Time) {
	m.joules += watts * dt.Seconds()
	m.elapsed += dt
	if watts > m.peak {
		m.peak = watts
	}
}

// Joules reports the total energy consumed so far.
func (m *EnergyMeter) Joules() float64 { return m.joules }

// AveragePower reports mean power over the measured interval (0 before any
// accumulation).
func (m *EnergyMeter) AveragePower() float64 {
	if m.elapsed == 0 {
		return 0
	}
	return m.joules / m.elapsed.Seconds()
}

// PeakPower reports the highest instantaneous sample seen.
func (m *EnergyMeter) PeakPower() float64 { return m.peak }

// Elapsed reports the total measured time.
func (m *EnergyMeter) Elapsed() sim.Time { return m.elapsed }

// Reset clears the meter.
func (m *EnergyMeter) Reset() { *m = EnergyMeter{} }
