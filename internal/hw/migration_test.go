package hw

import (
	"testing"

	"pricepower/internal/sim"
)

func TestMigrationCostRangesMatchPaper(t *testing.T) {
	chip := NewTC2()
	big := chip.Clusters[0]
	little := chip.Clusters[1]
	bigCore0, bigCore1 := big.Cores[0], big.Cores[1]
	lc0, lc1 := little.Cores[0], little.Cores[1]

	// At max frequency the costs sit at the fast end of the paper's ranges.
	big.SetLevel(big.NumLevels() - 1)
	little.SetLevel(little.NumLevels() - 1)
	checks := []struct {
		name     string
		src, dst *Core
		lo, hi   sim.Time
	}{
		{"intra-big fast", bigCore0, bigCore1, 54, 54},
		{"intra-LITTLE fast", lc0, lc1, 71, 71},
		{"L→b fast", lc0, bigCore0, 1880, 1880},
		{"b→L fast", bigCore0, lc0, 3540, 3540},
	}
	for _, c := range checks {
		got := MigrationCost(c.src, c.dst)
		if got < c.lo*sim.Microsecond || got > c.hi*sim.Microsecond {
			t.Errorf("%s: cost = %v, want in [%dµs,%dµs]", c.name, got, c.lo, c.hi)
		}
	}

	// At min frequency the slow end applies.
	big.SetLevel(0)
	little.SetLevel(0)
	slow := []struct {
		name     string
		src, dst *Core
		want     sim.Time
	}{
		{"intra-big slow", bigCore0, bigCore1, 105 * sim.Microsecond},
		{"intra-LITTLE slow", lc0, lc1, 167 * sim.Microsecond},
		{"L→b slow", lc0, bigCore0, 2160 * sim.Microsecond},
		{"b→L slow", bigCore0, lc0, 3830 * sim.Microsecond},
	}
	for _, c := range slow {
		if got := MigrationCost(c.src, c.dst); got != c.want {
			t.Errorf("%s: cost = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMigrationCostCrossClusterDominatesIntra(t *testing.T) {
	chip := NewTC2()
	intra := MigrationCost(chip.Clusters[1].Cores[0], chip.Clusters[1].Cores[1])
	cross := MigrationCost(chip.Clusters[1].Cores[0], chip.Clusters[0].Cores[0])
	if cross <= 5*intra {
		t.Errorf("cross-cluster cost %v not ≫ intra cost %v", cross, intra)
	}
}

func TestMigrationCostHomogeneousClusters(t *testing.T) {
	chip := MustNewChip(ScaledSpec(4, 2))
	// Clusters 0 and 2 are both LITTLE-type in the scaled platform.
	got := MigrationCost(chip.Clusters[0].Cores[0], chip.Clusters[2].Cores[0])
	if got <= 0 {
		t.Errorf("homogeneous cross-cluster cost = %v, want > 0", got)
	}
	if got > sim.Millisecond {
		t.Errorf("homogeneous cross-cluster cost = %v, want < 1ms", got)
	}
}

func TestMigrationCostInterpolatesWithLevel(t *testing.T) {
	chip := NewTC2()
	little := chip.Clusters[1]
	big := chip.Clusters[0]
	src, dst := little.Cores[0], big.Cores[0]
	prev := sim.Time(1 << 62)
	for l := 0; l < little.NumLevels(); l++ {
		little.SetLevel(l)
		c := MigrationCost(src, dst)
		if c > prev {
			t.Errorf("cost increased with frequency: level %d cost %v after %v", l, c, prev)
		}
		prev = c
	}
}
