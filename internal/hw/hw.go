// Package hw models the heterogeneous multi-core hardware the paper runs
// on: clusters of identical cores sharing one voltage-frequency regulator,
// an analytic power model, an energy meter, and the measured task-migration
// cost model of the ARM big.LITTLE TC2 test chip.
//
// Supply follows the paper's convention: a core running at F MHz supplies
// F Processing Units (PU), where 1 PU = one million processor cycles per
// second. Heterogeneity is expressed by tasks needing fewer PUs on a big
// core than on a LITTLE core for the same application-level performance.
package hw

import "fmt"

// CoreType distinguishes the micro-architectures on chip.
type CoreType int

const (
	// Little is a simple, in-order, energy-efficient core (Cortex-A7 class).
	Little CoreType = iota
	// Big is a complex, out-of-order, high-performance core (Cortex-A15 class).
	Big
)

// String returns the conventional big.LITTLE name of the core type.
func (t CoreType) String() string {
	switch t {
	case Little:
		return "LITTLE"
	case Big:
		return "big"
	default:
		return fmt.Sprintf("CoreType(%d)", int(t))
	}
}

// VFLevel is one rung of a cluster's voltage-frequency ladder.
type VFLevel struct {
	FreqMHz int     // clock frequency; also the per-core supply in PUs
	Voltage float64 // regulator voltage in volts
}

// ClusterSpec describes one voltage-frequency cluster.
type ClusterSpec struct {
	Name     string
	Type     CoreType
	NumCores int
	// Levels is the V-F ladder in strictly ascending frequency order.
	Levels []VFLevel

	// Power-model coefficients (see PowerModel):
	CeffDynamic   float64 // W per (GHz · V²) per fully-utilized core
	StaticPerCore float64 // per-core leakage W at nominal (max-level) voltage
	StaticBase    float64 // cluster uncore static W at nominal voltage
	OffPower      float64 // residual W when the cluster is power-gated
}

// Validate checks internal consistency of the spec.
func (s *ClusterSpec) Validate() error {
	if s.NumCores <= 0 {
		return fmt.Errorf("hw: cluster %q has %d cores", s.Name, s.NumCores)
	}
	if len(s.Levels) == 0 {
		return fmt.Errorf("hw: cluster %q has no V-F levels", s.Name)
	}
	for i := 1; i < len(s.Levels); i++ {
		if s.Levels[i].FreqMHz <= s.Levels[i-1].FreqMHz {
			return fmt.Errorf("hw: cluster %q V-F ladder not ascending at level %d", s.Name, i)
		}
	}
	for i, l := range s.Levels {
		if l.FreqMHz <= 0 || l.Voltage <= 0 {
			return fmt.Errorf("hw: cluster %q level %d has non-positive freq/voltage", s.Name, i)
		}
	}
	return nil
}

// MaxFreqMHz reports the top rung of the ladder.
func (s *ClusterSpec) MaxFreqMHz() int { return s.Levels[len(s.Levels)-1].FreqMHz }

// MinFreqMHz reports the bottom rung of the ladder.
func (s *ClusterSpec) MinFreqMHz() int { return s.Levels[0].FreqMHz }

// ChipSpec describes the whole platform.
type ChipSpec struct {
	Name     string
	Clusters []ClusterSpec
	TDP      float64 // thermal design power in W (the Wtdp constraint)
}

// Validate checks the chip spec and all cluster specs.
func (s *ChipSpec) Validate() error {
	if len(s.Clusters) == 0 {
		return fmt.Errorf("hw: chip %q has no clusters", s.Name)
	}
	if s.TDP <= 0 {
		return fmt.Errorf("hw: chip %q has non-positive TDP", s.Name)
	}
	for i := range s.Clusters {
		if err := s.Clusters[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}
