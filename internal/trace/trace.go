// Package trace records full time-series of a simulated run — per-cluster
// frequency/power/temperature, per-task heart rate/supply, chip power — and
// writes them as CSV for plotting. It is the library's observability layer:
// cmd/ppmsim -trace uses it, and the behaviour figures (7/8) can be
// re-plotted from its output.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"pricepower/internal/hw"
	"pricepower/internal/platform"
	"pricepower/internal/sim"
)

// Recorder samples a platform at a fixed period and accumulates rows.
type Recorder struct {
	p       *platform.Platform
	thermal *hw.ThermalModel
	period  sim.Time
	next    sim.Time

	header []string
	known  map[string]bool // task names that own header columns
	rows   [][]float64
}

// New builds a recorder sampling every period (thermal may be nil). The
// recorder only *reads* the thermal model; advancing it is the platform's
// job (Attach registers the model via platform.AttachThermal, which is
// idempotent — several recorders over one model never double-step it).
func New(p *platform.Platform, thermal *hw.ThermalModel, period sim.Time) *Recorder {
	if period <= 0 {
		period = 100 * sim.Millisecond
	}
	return &Recorder{p: p, thermal: thermal, period: period}
}

// Attach registers the recorder on the platform's engine and lays out the
// columns from the platform's current tasks and clusters. A task added to
// the platform *after* Attach grows the CSV explicitly: its column pair is
// appended to the header on its first sample and every earlier row is
// backfilled with NaN ("did not exist yet" — distinct from the 0 an exited
// task reports), so the output is never silently ragged and never silently
// missing a task.
func (r *Recorder) Attach() {
	if r.thermal != nil {
		r.p.AttachThermal(r.thermal)
	}
	r.header = []string{"t_s", "chip_W"}
	r.known = make(map[string]bool)
	for _, cl := range r.p.Chip.Clusters {
		r.header = append(r.header,
			cl.Spec.Name+"_MHz", cl.Spec.Name+"_W", cl.Spec.Name+"_on")
		if r.thermal != nil {
			r.header = append(r.header, cl.Spec.Name+"_C")
		}
	}
	names := make([]string, 0, len(r.p.Tasks()))
	for _, t := range r.p.Tasks() {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		r.addTaskColumns(n)
	}
	r.p.Engine.AddHook(sim.TickFunc(r.tick))
}

// addTaskColumns appends the column pair for one task and NaN-backfills any
// rows recorded before the task existed.
func (r *Recorder) addTaskColumns(name string) {
	if r.known[name] {
		return
	}
	r.known[name] = true
	r.header = append(r.header, name+"_hr_norm", name+"_core")
	nan := math.NaN()
	for i := range r.rows {
		r.rows[i] = append(r.rows[i], nan, nan)
	}
}

func (r *Recorder) tick(now sim.Time) {
	if now < r.next {
		return
	}
	// Advance the deadline on the period grid (catch-up semantics): setting
	// r.next = now + r.period would accumulate one tick of skew per sample
	// whenever the tick size does not divide the period, drifting the
	// effective sampling rate. One row is emitted per missed deadline at
	// most — the loop skips whole periods if the engine tick is coarser
	// than the sampling period.
	for r.next <= now {
		r.next += r.period
	}

	row := []float64{now.Seconds(), r.p.Power()}
	for i, cl := range r.p.Chip.Clusters {
		on := 0.0
		if cl.On {
			on = 1
		}
		row = append(row, float64(cl.CurLevel().FreqMHz), r.p.ClusterPower(i), on)
		if r.thermal != nil {
			row = append(row, r.thermal.Temp(i))
		}
	}
	// Tasks in the header's column order: the Attach-time task set sorted by
	// name, then late arrivals in order of first appearance.
	byName := make(map[string][2]float64)
	for _, t := range r.p.Tasks() {
		r.addTaskColumns(t.Name)
		byName[t.Name] = [2]float64{
			t.HeartRate(now) / t.TargetHR(),
			float64(r.p.CoreOf(t)),
		}
	}
	for _, h := range r.header[len(row):] {
		name := strings.TrimSuffix(strings.TrimSuffix(h, "_hr_norm"), "_core")
		v, ok := byName[name]
		if !ok {
			row = append(row, 0)
			continue
		}
		if strings.HasSuffix(h, "_hr_norm") {
			row = append(row, v[0])
		} else {
			row = append(row, v[1])
		}
	}
	r.rows = append(r.rows, row)
}

// Rows reports how many samples were recorded.
func (r *Recorder) Rows() int { return len(r.rows) }

// WriteCSV dumps the recorded series.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(r.header, ",")); err != nil {
		return err
	}
	for _, row := range r.rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%.4f", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}
