package trace

import (
	"strings"
	"testing"

	"pricepower/internal/hw"
	"pricepower/internal/platform"
	"pricepower/internal/ppm"
	"pricepower/internal/sim"
	"pricepower/internal/task"
)

func rig() (*platform.Platform, *Recorder) {
	p := platform.NewTC2()
	p.SetGovernor(ppm.New(ppm.DefaultConfig(0)))
	p.AddTask(task.Spec{
		Name: "alpha", Priority: 1, MinHR: 24, MaxHR: 30, Loop: true,
		Phases: []task.Phase{{HBCostLittle: 20, SpeedupBig: 2}},
	}, 2)
	p.AddTask(task.Spec{
		Name: "beta", Priority: 1, MinHR: 24, MaxHR: 30, Loop: true,
		Phases: []task.Phase{{HBCostLittle: 10, SpeedupBig: 2}},
	}, 3)
	thermal := hw.NewThermalModel(p.Chip, nil, 25)
	r := New(p, thermal, 100*sim.Millisecond)
	r.Attach()
	return p, r
}

func TestRecorderSamplesAtPeriod(t *testing.T) {
	p, r := rig()
	p.Run(2 * sim.Second)
	// ~20 samples at 100 ms over 2 s (first sample at t≈0).
	if r.Rows() < 19 || r.Rows() > 22 {
		t.Errorf("rows = %d, want ≈20", r.Rows())
	}
}

func TestRecorderCSVShape(t *testing.T) {
	p, r := rig()
	p.Run(sim.Second)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	header := strings.Split(lines[0], ",")
	for _, want := range []string{"t_s", "chip_W", "a15_MHz", "a7_W", "a7_C",
		"alpha_hr_norm", "beta_core"} {
		found := false
		for _, h := range header {
			if h == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("header missing %q: %v", want, header)
		}
	}
	// Every row has exactly the header's width.
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != len(header) {
			t.Fatalf("row %d has %d cells, header has %d", i, got, len(header))
		}
	}
}

func TestRecorderValuesPlausible(t *testing.T) {
	p, r := rig()
	p.Run(3 * sim.Second)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	header := strings.Split(lines[0], ",")
	last := strings.Split(lines[len(lines)-1], ",")
	col := func(name string) string {
		for i, h := range header {
			if h == name {
				return last[i]
			}
		}
		t.Fatalf("column %s missing", name)
		return ""
	}
	if col("chip_W") == "0.0000" {
		t.Error("chip power recorded as zero")
	}
	// alpha (demand 540, self-unbounded) normalized heart rate > 0.
	if col("alpha_hr_norm") == "0.0000" {
		t.Error("alpha heart rate recorded as zero")
	}
	// Cores are LITTLE-cluster IDs (2-4).
	if c := col("beta_core"); c != "2.0000" && c != "3.0000" && c != "4.0000" {
		t.Errorf("beta on core %s, want a LITTLE core", c)
	}
}

func TestRecorderWithoutThermal(t *testing.T) {
	p := platform.NewTC2()
	r := New(p, nil, 0) // default period
	r.Attach()
	p.Run(500 * sim.Millisecond)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "_C,") {
		t.Error("thermal columns present without a thermal model")
	}
}

// TestRecorderSamplingNoDrift is the regression test for the sampling-drift
// bug: with a period that the tick grid does not divide (3.3 ms on a 1 ms
// tick), the old `next = now + period` re-arm quantized every deadline up
// to the next tick and accumulated the rounding, stretching the effective
// period to 4 ms (≈2500 rows over 10 s). Grid-aligned catch-up re-arming
// (`next += period`) keeps the long-run average rate exact.
func TestRecorderSamplingNoDrift(t *testing.T) {
	p := platform.NewTC2()
	r := New(p, nil, sim.FromMillis(3.3))
	r.Attach()
	p.Run(10 * sim.Second)
	want := int(10 * sim.Second / sim.FromMillis(3.3)) // ≈3030 deadlines
	if r.Rows() < want-5 || r.Rows() > want+5 {
		t.Errorf("rows = %d over 10 s at 3.3 ms, want ≈%d (sampling drift)", r.Rows(), want)
	}
}

// TestRecorderLateTaskBackfilledWithNaN is the regression test for the
// late-task hole: a task added to the platform after Attach used to be
// silently ignored (its columns would have been ragged). It must instead
// get its own column pair, with every row recorded before its arrival
// backfilled as NaN — distinguishable from the 0 an exited task reports.
func TestRecorderLateTaskBackfilledWithNaN(t *testing.T) {
	p, r := rig()
	p.Run(sim.Second)
	early := r.Rows()
	if early == 0 {
		t.Fatal("no rows before the late task")
	}
	p.AddTask(task.Spec{
		Name: "gamma", Priority: 1, MinHR: 24, MaxHR: 30, Loop: true,
		Phases: []task.Phase{{HBCostLittle: 10, SpeedupBig: 2}},
	}, 4)
	p.Run(sim.Second)

	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	header := strings.Split(lines[0], ",")
	col := -1
	for i, h := range header {
		if h == "gamma_core" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("late task got no columns: %v", header)
	}
	for i, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if len(cells) != len(header) {
			t.Fatalf("row %d has %d cells, header has %d (ragged CSV)", i, len(cells), len(header))
		}
		if i < early && cells[col] != "NaN" {
			t.Errorf("row %d (before gamma existed) gamma_core = %q, want NaN", i, cells[col])
		}
	}
	lastCells := strings.Split(lines[len(lines)-1], ",")
	if got := lastCells[col]; got != "5.0000" && got != "6.0000" {
		// gamma landed on core 4 but LBT may move it within the LITTLE
		// cluster (cores 2-4) — any real (non-NaN) core ID will do.
		if got == "NaN" {
			t.Errorf("last row still NaN for the live late task")
		}
	}
}

// TestTwoRecordersDoNotDoubleAdvanceThermal: thermal time belongs to the
// platform. Attaching a second recorder over the same thermal model must
// not make the die heat twice as fast.
func TestTwoRecordersDoNotDoubleAdvanceThermal(t *testing.T) {
	run := func(recorders int) float64 {
		p := platform.NewTC2()
		p.AddTask(task.Spec{
			Name: "hot", Priority: 1, MinHR: 24, MaxHR: 30, Loop: true,
			Phases: []task.Phase{{HBCostLittle: 100, SpeedupBig: 2}},
		}, 0)
		th := hw.NewThermalModel(p.Chip, nil, 25)
		for i := 0; i < recorders; i++ {
			rec := New(p, th, 100*sim.Millisecond)
			rec.Attach()
		}
		p.Run(5 * sim.Second)
		return th.Temp(0)
	}
	one, two := run(1), run(2)
	if one <= 25 {
		t.Fatalf("thermal model did not advance at all: %.2f °C", one)
	}
	if one != two {
		t.Errorf("temperature depends on recorder count: %v °C (1 rec) vs %v °C (2 recs)", one, two)
	}
}
