package federation

import (
	"math"

	"pricepower/internal/fault"
	"pricepower/internal/fleet"
	"pricepower/internal/metrics"
	"pricepower/internal/task"
)

// nominalWattsPerPU prices a region that has not yet delivered any work:
// until the efficiency EWMA has an observation, effective price =
// electricity price × this nominal efficiency, so idle regions compare
// on electricity price alone instead of dividing by ~0 demand.
const nominalWattsPerPU = 0.003

// effEWMAAlpha smooths the watts-per-PU estimate: new observations move
// the estimate by this fraction, so one noisy epoch cannot flip the
// migration controller's ordering by itself.
const effEWMAAlpha = 0.3

// RegionConfig assembles one region.
type RegionConfig struct {
	// Name labels the region in metrics, digests, and the API
	// (default "r<index>").
	Name string
	// Fleet is the region's board-fleet config. Seed and Batch are
	// overridden by the federation (derived seed stream, uniform batch);
	// everything else — boards, TDP, shards, skew, board faults,
	// restarts — is the region's own.
	Fleet fleet.Config
	// Price is the region's validated electricity price schedule.
	Price PriceTrace
	// Outage schedules region-level fault windows (fault.RegionOutage,
	// in federation epochs).
	Outage fault.Scenario
}

// Region wraps one fleet with its price trace and SLA accounting. All
// mutation happens under the federation's lock, in epoch order.
type Region struct {
	ID   int    `json:"id"`
	Name string `json:"name"`

	fl     *fleet.Fleet
	price  PriceTrace
	outage fault.Scenario
	tiers  []Tier

	// down mirrors the outage schedule for the current epoch.
	down bool
	// tierCounts tracks resident tasks per tier (accepted − evicted):
	// the revenue base. Sheds never enter; migration out decrements.
	tierCounts []uint64
	// wattsPerPU is the efficiency EWMA (0 until first observation).
	wattsPerPU float64

	// Per-epoch observations (refreshed by account). queueLen is the
	// evictable depth at accounting time — the migration controller
	// reads this, not a fresh snapshot, so its decisions are a function
	// of exactly the state the region digest folded.
	elecPrice float64
	effPrice  float64
	served    float64
	queueLen  int

	// Cumulative accounting.
	energyKWh  float64
	costUSD    float64
	revenueUSD float64
	violations uint64

	// Per-epoch distributions for /metrics.
	revHist  *metrics.Histogram
	costHist *metrics.Histogram

	// digest folds this region's epoch observations (FNV-1a).
	digest uint64
}

func newRegion(id int, rc RegionConfig, fl *fleet.Fleet, tiers []Tier) *Region {
	name := rc.Name
	if name == "" {
		name = "r" + itoa(id)
	}
	return &Region{
		ID: id, Name: name,
		fl: fl, price: rc.Price, outage: rc.Outage, tiers: tiers,
		tierCounts: make([]uint64, len(tiers)),
		// Log buckets from a tenth of a cent up: epoch revenue/cost for
		// small fleets sit in the cents-to-dollars range.
		revHist:  metrics.NewLog(1e-4, 2, 24),
		costHist: metrics.NewLog(1e-4, 2, 24),
		digest:   fnvOffset,
	}
}

// Fleet exposes the wrapped fleet (registries, tracers — read-only use).
func (r *Region) Fleet() *fleet.Fleet { return r.fl }

// submit hands specs to the region's fleet one at a time so tier
// residency can be attributed per accepted spec (the fleet sheds
// against its queue cap internally).
func (r *Region) submit(specs []task.Spec) (accepted int) {
	for _, s := range specs {
		if r.fl.Submit(s) == 1 {
			r.tierCounts[TierFor(r.tiers, s.Priority)]++
			accepted++
		}
	}
	return accepted
}

// evict pulls up to max queued submissions out of the fleet and off the
// region's tier ledger — the migration source path.
func (r *Region) evict(max int) []fleet.Submission {
	out := r.fl.EvictQueued(max)
	for i := range out {
		t := TierFor(r.tiers, out[i].Spec.Priority)
		if r.tierCounts[t] > 0 {
			r.tierCounts[t]--
		}
	}
	return out
}

// account folds one epoch's economics: energy drawn against the
// electricity price, SLA revenue against delivered performance, the
// efficiency EWMA, and the region digest. epochH is the epoch length in
// trace-hours; elec the $/kWh price in force.
func (r *Region) account(epoch int, epochH, elec float64) {
	st := r.fl.StateSnapshot()
	var demand, delivered, watts float64
	for i := range st.Boards {
		b := &st.Boards[i]
		demand += b.DemandPU
		d := b.SupplyPU
		if b.DemandPU < d {
			d = b.DemandPU
		}
		delivered += d
		watts += b.PowerW
	}
	served := 1.0
	if demand > 0 {
		served = delivered / demand
	}
	if r.down {
		// A region in outage steps no barriers: it draws no accounted
		// energy and delivers nothing, whatever its last snapshot says.
		watts, delivered, served = 0, 0, 0
	}
	if delivered > 1e-9 {
		inst := watts / delivered
		if r.wattsPerPU == 0 {
			r.wattsPerPU = inst
		} else {
			r.wattsPerPU += effEWMAAlpha * (inst - r.wattsPerPU)
		}
	}
	energy := watts / 1000 * epochH
	cost := energy * elec
	revenue := 0.0
	for t, n := range r.tierCounts {
		if n == 0 {
			continue
		}
		tier := r.tiers[t]
		revenue += float64(n) * tier.RatePerTaskHour * epochH * revenueFactor(served, tier.MinServedFrac)
		if served < tier.MinServedFrac {
			r.violations += n
		}
	}
	r.elecPrice = elec
	r.effPrice = elec * r.effWatts()
	r.served = served
	r.queueLen = st.QueueLen
	r.energyKWh += energy
	r.costUSD += cost
	r.revenueUSD += revenue
	r.revHist.Record(revenue)
	r.costHist.Record(cost)

	down := uint64(0)
	if r.down {
		down = 1
	}
	c := st.Counters
	r.digest = fnvWords(r.digest,
		uint64(epoch), down,
		math.Float64bits(elec), math.Float64bits(r.effPrice),
		math.Float64bits(served), math.Float64bits(energy), math.Float64bits(revenue),
		c.Submitted, c.Routed, c.Shed, c.Evicted, c.Orphaned, c.Crashes, c.Stalls, c.Restarts,
		uint64(st.QueueLen), uint64(st.Live()), uint64(st.InFlight), uint64(st.Orphaned),
	)
}

// effWatts is the efficiency estimate the effective price uses: the
// EWMA once observed, the shared nominal before that.
func (r *Region) effWatts() float64 {
	if r.wattsPerPU > 0 {
		return r.wattsPerPU
	}
	return nominalWattsPerPU
}

// RegionState is the /regions API view of one region.
type RegionState struct {
	ID         int               `json:"id"`
	Name       string            `json:"name"`
	Down       bool              `json:"down"`
	ElecPrice  float64           `json:"elec_price_kwh"`
	EffPrice   float64           `json:"eff_price"`
	Served     float64           `json:"served_frac"`
	EnergyKWh  float64           `json:"energy_kwh"`
	CostUSD    float64           `json:"cost_usd"`
	RevenueUSD float64           `json:"revenue_usd"`
	Violations uint64            `json:"sla_violations"`
	Tiers      map[string]uint64 `json:"tier_tasks"`
	QueueLen   int               `json:"queue_len"`
	Live       int               `json:"live"`
	Counters   fleet.Counters    `json:"counters"`
	Digest     string            `json:"digest"`
}

func (r *Region) state() RegionState {
	st := r.fl.StateSnapshot()
	tiers := make(map[string]uint64, len(r.tiers))
	for t, n := range r.tierCounts {
		tiers[r.tiers[t].Name] = n
	}
	return RegionState{
		ID: r.ID, Name: r.Name, Down: r.down,
		ElecPrice: r.elecPrice, EffPrice: r.effPrice, Served: r.served,
		EnergyKWh: r.energyKWh, CostUSD: r.costUSD, RevenueUSD: r.revenueUSD,
		Violations: r.violations, Tiers: tiers,
		QueueLen: st.QueueLen, Live: st.Live(), Counters: st.Counters,
		Digest: hex16(r.digest),
	}
}
