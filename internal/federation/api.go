package federation

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"

	"pricepower/internal/fleet"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/telemetry"
	"pricepower/internal/workload"
)

// FedArrival is one POST /submit entry: Count copies of bench×input at
// priority (the SLA tier key), due AtMS milliseconds of federation
// virtual time after acceptance, optionally pinned to a region by name.
// This is the fleet Arrival shape plus the region pin — a separate type
// because the fleet trace decoder rejects unknown fields.
type FedArrival struct {
	Bench    string `json:"bench"`
	Input    string `json:"input"`
	Priority int    `json:"priority,omitempty"` // default 1
	Count    int    `json:"count,omitempty"`    // default 1
	AtMS     int64  `json:"at_ms,omitempty"`
	Region   string `json:"region,omitempty"` // pin by region name ("" = price-routed)
}

// FedTrace is the POST /submit body and fedd's -trace file format.
type FedTrace struct {
	Tasks []FedArrival `json:"tasks"`
}

// fedResolved is one expanded arrival.
type fedResolved struct {
	At     sim.Time
	Region int // -1 = price-routed
	Spec   task.Spec
}

// resolve expands and validates the trace against the workload registry
// and the federation's region names.
func (tr *FedTrace) resolve(f *Federation) ([]fedResolved, error) {
	names := map[string]int{}
	for _, r := range f.Regions() {
		names[r.Name] = r.ID
	}
	var out []fedResolved
	for i, a := range tr.Tasks {
		b, ok := workload.ByName(a.Bench)
		if !ok {
			return nil, fmt.Errorf("federation: trace entry %d: unknown benchmark %q", i, a.Bench)
		}
		prio := a.Priority
		if prio == 0 {
			prio = 1
		}
		spec, err := b.Spec(a.Input, prio)
		if err != nil {
			return nil, fmt.Errorf("federation: trace entry %d: %w", i, err)
		}
		region := -1
		if a.Region != "" {
			id, ok := names[a.Region]
			if !ok {
				return nil, fmt.Errorf("federation: trace entry %d: unknown region %q", i, a.Region)
			}
			region = id
		}
		count := a.Count
		if count <= 0 {
			count = 1
		}
		if a.AtMS < 0 {
			return nil, fmt.Errorf("federation: trace entry %d: negative at_ms", i)
		}
		for n := 0; n < count; n++ {
			out = append(out, fedResolved{
				At: sim.Time(a.AtMS) * sim.Millisecond, Region: region, Spec: spec,
			})
		}
	}
	return out, nil
}

// ParseFedTrace decodes a FedTrace, rejecting unknown fields.
func ParseFedTrace(r io.Reader) (*FedTrace, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var tr FedTrace
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("federation: trace: %w", err)
	}
	if len(tr.Tasks) == 0 {
		return nil, fmt.Errorf("federation: trace: no tasks")
	}
	return &tr, nil
}

// SubmitResult is the POST /submit response body.
type SubmitResult struct {
	Routed    int `json:"routed"`    // price-routed into a region now
	Pinned    int `json:"pinned"`    // region-pinned submissions handed off
	Scheduled int `json:"scheduled"` // deferred to a future virtual time
	Shed      int `json:"shed"`      // pinned submissions the region's queue refused
}

// SubmitResolved feeds resolved arrivals into the federation. Due-now
// pinned entries submit directly; due-now routed entries go through the
// price router; future entries join the federation schedule (pins are
// not preserved across scheduling — the router prices them at release).
func (f *Federation) SubmitResolved(rs []fedResolved) (SubmitResult, error) {
	var res SubmitResult
	base := f.Now()
	for _, r := range rs {
		switch {
		case r.At > 0:
			f.SubmitAt(base+r.At, r.Spec)
			res.Scheduled++
		case r.Region >= 0:
			acc, err := f.SubmitTo(r.Region, r.Spec)
			if err != nil {
				return res, err
			}
			res.Pinned++
			res.Shed += 1 - acc
		default:
			f.Submit(r.Spec)
			res.Routed++
		}
	}
	return res, nil
}

// SubmitTrace validates a trace against the workload registry and the
// federation's region names, then feeds it in — the one-call path fedd
// and the /submit handler share.
func (f *Federation) SubmitTrace(tr *FedTrace) (SubmitResult, error) {
	rs, err := tr.resolve(f)
	if err != nil {
		return SubmitResult{}, err
	}
	return f.SubmitResolved(rs)
}

// LoadFedTrace reads a FedTrace file (validated on submission).
func LoadFedTrace(path string) (*FedTrace, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	tr, err := ParseFedTrace(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// WriteMetrics renders the full Prometheus document: federation
// registry, every region fleet's export under stacked region+board
// labels, and the per-region epoch revenue/cost histograms.
func (f *Federation) WriteMetrics(w io.Writer) error {
	if err := telemetry.WriteSeriesProm(w, f.ExportMetrics()); err != nil {
		return err
	}
	for _, r := range f.regions {
		lbl := fmt.Sprintf("region=%q", r.Name)
		if err := r.revHist.WriteProm(w, "pricepower_fed_epoch_revenue_usd",
			"SLA revenue earned per federation epoch ($).", lbl); err != nil {
			return err
		}
		if err := r.costHist.WriteProm(w, "pricepower_fed_epoch_cost_usd",
			"Electricity cost per federation epoch ($).", lbl); err != nil {
			return err
		}
	}
	return nil
}

// apiError mirrors the fleet API's structured error body.
type apiError struct {
	Error string `json:"error"`
	Msg   string `json:"msg"`
}

func writeAPIError(w http.ResponseWriter, status int, slug, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(apiError{Error: slug, Msg: msg}) //nolint:errcheck // headers already sent
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, fmt.Sprintf("encode: %v", err), http.StatusInternalServerError)
	}
}

// TraceSummary is the GET /trace response: the federation digest vector
// (index 0 = controller, i+1 = region i) and the migration decisions.
type TraceSummary struct {
	Digests   []string   `json:"digests"`
	Decisions []Decision `json:"decisions"`
}

// NewMux serves the federation's HTTP surface:
//
//	POST /submit   — batch submission (FedTrace JSON: tier via priority,
//	                 optional region pin, optional at_ms deferral)
//	GET  /regions  — per-region economics, tiers, and fleet counters
//	GET  /state    — federation state (epoch, counters, decisions, digests)
//	GET  /metrics  — Prometheus text: federation + every region fleet
//	                 under stacked region+board labels + histograms
//	GET  /trace    — replay digest vector + migration-decision log
func NewMux(f *Federation) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeAPIError(w, http.StatusMethodNotAllowed, "method", "POST only")
			return
		}
		body := http.MaxBytesReader(w, r.Body, fleet.MaxSubmitBody)
		tr, err := ParseFedTrace(body)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeAPIError(w, http.StatusRequestEntityTooLarge, "too-large",
					fmt.Sprintf("request body exceeds %d bytes", fleet.MaxSubmitBody))
				return
			}
			writeAPIError(w, http.StatusBadRequest, "bad-request", err.Error())
			return
		}
		res, err := f.SubmitTrace(tr)
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, "bad-request", err.Error())
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("/regions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, f.StateSnapshot().Regions)
	})
	mux.HandleFunc("/state", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, f.StateSnapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := f.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		st := f.StateSnapshot()
		writeJSON(w, TraceSummary{Digests: st.Digests, Decisions: st.Decisions})
	})
	return mux
}
