package federation

import (
	"errors"
	"math"
	"testing"
)

func TestPriceTraceValidate(t *testing.T) {
	iv := func(s, e, p float64) PriceInterval { return PriceInterval{StartH: s, EndH: e, PriceKWh: p} }
	cases := []struct {
		name string
		tr   PriceTrace
		want error // nil = valid
	}{
		{"valid single", PriceTrace{Intervals: []PriceInterval{iv(0, 24, 0.1)}}, nil},
		{"valid gaps", PriceTrace{Intervals: []PriceInterval{iv(0, 6, 0.1), iv(8, 20, 0.3), iv(20, 24, 0.15)}}, nil},
		{"valid zero price", PriceTrace{Intervals: []PriceInterval{iv(0, 24, 0)}}, nil},
		{"empty", PriceTrace{}, ErrTraceEmpty},
		{"nan price", PriceTrace{Intervals: []PriceInterval{iv(0, 24, math.NaN())}}, ErrBadPrice},
		{"inf price", PriceTrace{Intervals: []PriceInterval{iv(0, 24, math.Inf(1))}}, ErrBadPrice},
		{"negative price", PriceTrace{Intervals: []PriceInterval{iv(0, 24, -0.01)}}, ErrBadPrice},
		{"inverted window", PriceTrace{Intervals: []PriceInterval{iv(10, 4, 0.1)}}, ErrBadWindow},
		{"empty window", PriceTrace{Intervals: []PriceInterval{iv(4, 4, 0.1)}}, ErrBadWindow},
		{"negative start", PriceTrace{Intervals: []PriceInterval{iv(-1, 4, 0.1)}}, ErrBadWindow},
		{"nan start", PriceTrace{Intervals: []PriceInterval{iv(math.NaN(), 4, 0.1)}}, ErrBadWindow},
		{"unsorted", PriceTrace{Intervals: []PriceInterval{iv(12, 18, 0.1), iv(0, 6, 0.2)}}, ErrUnsorted},
		{"overlap", PriceTrace{Intervals: []PriceInterval{iv(0, 10, 0.1), iv(8, 20, 0.2)}}, ErrOverlap},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tr.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestPriceTraceParseRejects(t *testing.T) {
	if _, err := ParsePriceTrace([]byte(`{"intervals": [], "bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParsePriceTrace([]byte(`{"intervals": []}`)); !errors.Is(err, ErrTraceEmpty) {
		t.Fatalf("empty trace: %v", err)
	}
	tr, err := ParsePriceTrace([]byte(`{"name":"us","intervals":[{"start_h":0,"end_h":24,"price_kwh":0.12}]}`))
	if err != nil || tr.Name != "us" || tr.PeriodH() != 24 {
		t.Fatalf("valid trace rejected: %v %+v", err, tr)
	}
}

func TestPriceAtWrapsAndHolds(t *testing.T) {
	tr := PriceTrace{Intervals: []PriceInterval{
		{StartH: 0, EndH: 6, PriceKWh: 0.05},
		{StartH: 8, EndH: 20, PriceKWh: 0.30}, // gap 6..8 holds 0.05
		{StartH: 20, EndH: 24, PriceKWh: 0.10},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ h, want float64 }{
		{0, 0.05}, {5.99, 0.05},
		{6, 0.05}, {7.5, 0.05}, // gap: hold previous
		{8, 0.30}, {19.99, 0.30},
		{20, 0.10}, {23.5, 0.10},
		{24, 0.05}, {30, 0.05}, // wrapped
		{48 + 9, 0.30}, // two cycles later
		{-2, 0.10},     // negative wraps into the tail
	}
	for _, tc := range cases {
		if got := tr.PriceAt(tc.h); got != tc.want {
			t.Errorf("PriceAt(%v) = %v, want %v", tc.h, got, tc.want)
		}
	}
	// A trace starting mid-day holds the last interval's price before
	// its first start (the previous cycle's tail).
	late := PriceTrace{Intervals: []PriceInterval{{StartH: 6, EndH: 24, PriceKWh: 0.2}}}
	if got := late.PriceAt(2); got != 0.2 {
		t.Errorf("pre-first-interval PriceAt(2) = %v, want 0.2", got)
	}
}

func TestDiurnalShape(t *testing.T) {
	tr := Diurnal("d", 0.10, 0.06, 14, 24)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.PeriodH() != 24 {
		t.Fatalf("period = %v, want 24", tr.PeriodH())
	}
	peak, trough := tr.PriceAt(14), tr.PriceAt(2)
	if peak <= trough {
		t.Fatalf("peak %v not above trough %v", peak, trough)
	}
	if math.Abs(peak-0.16) > 0.01 || math.Abs(trough-0.04) > 0.01 {
		t.Fatalf("peak/trough = %v/%v, want ≈0.16/0.04", peak, trough)
	}
	// Clamping: amp > base must floor at 0, not go negative.
	deep := Diurnal("deep", 0.02, 0.10, 12, 24)
	for h := 0.0; h < 24; h += 0.5 {
		if p := deep.PriceAt(h); p < 0 {
			t.Fatalf("negative price %v at %vh", p, h)
		}
	}
}

// FuzzPriceTraceLookup drives the decode→validate→lookup pipeline with
// arbitrary bytes and hours: a validated trace must never return a
// negative, NaN, or infinite price for any finite hour.
func FuzzPriceTraceLookup(f *testing.F) {
	f.Add([]byte(`{"intervals":[{"start_h":0,"end_h":24,"price_kwh":0.12}]}`), 7.5)
	f.Add([]byte(`{"intervals":[{"start_h":0,"end_h":6,"price_kwh":0.05},{"start_h":8,"end_h":24,"price_kwh":0.3}]}`), 100.0)
	f.Add([]byte(`{"intervals":[{"start_h":2,"end_h":3,"price_kwh":0}]}`), -5.0)
	f.Add([]byte(`{"intervals":[{"start_h":0,"end_h":1e9,"price_kwh":1e9}]}`), 1e12)
	f.Add([]byte(`{"intervals":[]}`), 0.0)
	f.Fuzz(func(t *testing.T, data []byte, h float64) {
		tr, err := ParsePriceTrace(data)
		if err != nil {
			return // invalid schedules must be rejected, not crash
		}
		if math.IsNaN(h) || math.IsInf(h, 0) {
			return
		}
		p := tr.PriceAt(h)
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			t.Fatalf("PriceAt(%v) = %v on validated trace %+v", h, p, tr)
		}
	})
}
