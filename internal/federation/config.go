package federation

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"pricepower/internal/fault"
	"pricepower/internal/fleet"
	"pricepower/internal/sim"
)

// fedFile is fedd's JSON config shape. Trace and scenario paths resolve
// relative to the config file's directory, so a config plus its traces
// travel as one directory (see examples/regions/).
type fedFile struct {
	Seed          uint64          `json:"seed"`
	BatchMS       float64         `json:"batch_ms,omitempty"`
	EpochBarriers int             `json:"epoch_barriers,omitempty"`
	HoursPerSec   float64         `json:"hours_per_sec,omitempty"`
	Hysteresis    float64         `json:"hysteresis,omitempty"`
	Tiers         []Tier          `json:"tiers,omitempty"`
	Migration     MigrationConfig `json:"migration"`
	Regions       []fedFileRegion `json:"regions"`
}

type fedFileRegion struct {
	Name     string  `json:"name"`
	Boards   int     `json:"boards"`
	TDP      float64 `json:"tdp,omitempty"`
	QueueCap int     `json:"queue_cap,omitempty"`
	Shards   int     `json:"shards,omitempty"`
	MaxSkew  int     `json:"max_skew,omitempty"`
	// RestartAfter enables each board's crash supervisor (barriers).
	RestartAfter int `json:"restart_after,omitempty"`
	// PriceTrace is the electricity schedule file (relative to the
	// config), or "" to synthesize a diurnal curve.
	PriceTrace string `json:"price_trace,omitempty"`
	// Diurnal parameterizes the synthetic schedule when PriceTrace is
	// empty: base ± amp $/kWh peaking at peak_hour.
	Diurnal *struct {
		Base     float64 `json:"base"`
		Amp      float64 `json:"amp"`
		PeakHour float64 `json:"peak_hour"`
		Steps    int     `json:"steps,omitempty"`
	} `json:"diurnal,omitempty"`
	// Faults maps board ID → board/platform fault scenario file.
	Faults map[string]string `json:"faults,omitempty"`
	// Outage is a region-outage scenario file (fault.RegionOutage
	// windows in federation epochs).
	Outage string `json:"outage,omitempty"`
}

// LoadConfig reads a fedd federation config file into a Config ready
// for New (Check stays off; the caller decides).
func LoadConfig(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var ff fedFile
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ff); err != nil {
		return Config{}, fmt.Errorf("federation: %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	cfg := Config{
		Seed:          ff.Seed,
		Batch:         sim.FromMillis(ff.BatchMS),
		EpochBarriers: ff.EpochBarriers,
		HoursPerSec:   ff.HoursPerSec,
		Hysteresis:    ff.Hysteresis,
		Tiers:         ff.Tiers,
		Migration:     ff.Migration,
	}
	if ff.BatchMS <= 0 {
		cfg.Batch = 0
	}
	if len(ff.Regions) == 0 {
		return Config{}, fmt.Errorf("federation: %s: no regions", path)
	}
	for i, fr := range ff.Regions {
		rc := RegionConfig{
			Name: fr.Name,
			Fleet: fleet.Config{
				Boards: fr.Boards, TDP: fr.TDP, QueueCap: fr.QueueCap,
				Shards: fr.Shards, MaxSkew: fr.MaxSkew, RestartAfter: fr.RestartAfter,
			},
		}
		switch {
		case fr.PriceTrace != "":
			tr, err := LoadPriceTrace(filepath.Join(dir, fr.PriceTrace))
			if err != nil {
				return Config{}, fmt.Errorf("federation: %s: region %d: %w", path, i, err)
			}
			rc.Price = tr
		case fr.Diurnal != nil:
			rc.Price = Diurnal(fr.Name, fr.Diurnal.Base, fr.Diurnal.Amp, fr.Diurnal.PeakHour, fr.Diurnal.Steps)
		default:
			return Config{}, fmt.Errorf("federation: %s: region %d (%s): no price_trace or diurnal", path, i, fr.Name)
		}
		if len(fr.Faults) > 0 {
			rc.Fleet.Faults = map[int]fault.Scenario{}
			for id, fp := range fr.Faults {
				var board int
				if _, err := fmt.Sscanf(id, "%d", &board); err != nil {
					return Config{}, fmt.Errorf("federation: %s: region %d: bad board id %q", path, i, id)
				}
				sc, err := fault.LoadScenario(filepath.Join(dir, fp))
				if err != nil {
					return Config{}, fmt.Errorf("federation: %s: region %d: %w", path, i, err)
				}
				rc.Fleet.Faults[board] = sc
			}
		}
		if fr.Outage != "" {
			sc, err := fault.LoadScenario(filepath.Join(dir, fr.Outage))
			if err != nil {
				return Config{}, fmt.Errorf("federation: %s: region %d: %w", path, i, err)
			}
			rc.Outage = sc
		}
		cfg.Regions = append(cfg.Regions, rc)
	}
	return cfg, nil
}

// SynthConfig builds an R-region federation with phase-shifted diurnal
// price curves — the zero-file way to boot fedd (-regions N).
func SynthConfig(regions, boardsPer int, seed uint64) Config {
	cfg := Config{Seed: seed}
	for i := 0; i < regions; i++ {
		peak := 14.0 + 24.0*float64(i)/float64(regions) // staggered demand peaks
		for peak >= 24 {
			peak -= 24
		}
		cfg.Regions = append(cfg.Regions, RegionConfig{
			Name:  "r" + itoa(i),
			Fleet: fleet.Config{Boards: boardsPer},
			Price: Diurnal("synth-r"+itoa(i), 0.10, 0.06, peak, 24),
		})
	}
	return cfg
}
