package federation

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"pricepower/internal/fault"
	"pricepower/internal/fleet"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/telemetry"
)

// Seed streams namespacing the federation's randomness off its seed
// (disjoint from the fleet's 0x..._0000 streams, which each region's
// fleet derives internally from its own derived seed).
const (
	// regionSeedStream derives the per-region fleet seeds:
	// DeriveSeed(DeriveSeed(Seed, regionSeedStream), regionID).
	regionSeedStream = 0xfed0_0000
	// migrateSeedStream seeds the migration controller's cooldown jitter.
	migrateSeedStream = 0xfed1_0000
	// outageSeedStream seeds per-region outage-magnitude gates when the
	// scenario itself carries no seed.
	outageSeedStream = 0xfed2_0000
)

// DefaultEpochBarriers is the barriers stepped per federation epoch
// when Config.EpochBarriers is zero.
const DefaultEpochBarriers = 4

// maxDecisionLog bounds the retained migration-decision history.
const maxDecisionLog = 64

// Config assembles a federation.
type Config struct {
	// Seed is the federation seed; every region fleet, the migration
	// controller, and outage gates derive their streams from it.
	Seed uint64
	// Batch is the barrier period shared by every region fleet
	// (default fleet.DefaultBatch). Uniform on purpose: regions step
	// the same virtual time per epoch, so cross-region accounting and
	// the conservation check compare like with like.
	Batch sim.Time
	// EpochBarriers is how many batch barriers each up region steps per
	// federation epoch (default DefaultEpochBarriers).
	EpochBarriers int
	// HoursPerSec converts virtual seconds to price-trace hours
	// (default 1.0: a 24-virtual-second run sweeps a full diurnal
	// cycle).
	HoursPerSec float64
	// Hysteresis is the submission router's sticky band (default
	// fleet.DefaultHysteresis): a challenger region must undercut the
	// current choice's effective price by this fraction.
	Hysteresis float64
	// Tiers is the SLA schedule, ordered highest MinPriority first
	// (default DefaultTiers).
	Tiers []Tier
	// Migration tunes the price-divergence controller.
	Migration MigrationConfig
	// Regions lists the member regions (≥ 1).
	Regions []RegionConfig
	// Check asserts the cross-region conservation invariant at every
	// epoch (and enables each fleet's own checker).
	Check bool
}

func (c Config) withDefaults() Config {
	if c.Batch <= 0 {
		c.Batch = fleet.DefaultBatch
	}
	if c.EpochBarriers <= 0 {
		c.EpochBarriers = DefaultEpochBarriers
	}
	if c.HoursPerSec <= 0 {
		c.HoursPerSec = 1.0
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = fleet.DefaultHysteresis
	}
	if len(c.Tiers) == 0 {
		c.Tiers = DefaultTiers()
	}
	return c
}

// transitBatch is migrated work in flight between regions: evicted from
// its source, not yet delivered to dst — the "in-migration" term of the
// cross-region ledger.
type transitBatch struct {
	due  int // first epoch the destination may accept it
	dst  int
	subs []fleet.Submission
}

// fedTimed is a scheduled external arrival (released and routed at the
// first epoch whose start reaches at).
type fedTimed struct {
	at   sim.Time
	seq  int
	spec task.Spec
}

// Counters are the federation's own accounting totals.
type Counters struct {
	// Submitted counts external specs handed to some region's fleet
	// (routing never drops: a full region queue sheds inside the fleet,
	// counted there).
	Submitted uint64 `json:"submitted"`
	// Migrations counts controller firings; MigratedTasks the tasks
	// they moved; Delivered the migrated tasks already re-submitted at
	// their destination.
	Migrations    uint64 `json:"migrations"`
	MigratedTasks uint64 `json:"migrated_tasks"`
	Delivered     uint64 `json:"delivered"`
	// BoardCrashes counts crash errors absorbed while stepping region
	// fleets (each region supervises its own restarts).
	BoardCrashes uint64 `json:"board_crashes"`
}

// Federation owns R regions and steps them in federation epochs.
type Federation struct {
	mu  sync.Mutex
	cfg Config

	regions  []*Region
	epoch    int
	counters Counters

	sched    []fedTimed
	schedSeq int

	migrator  *Migrator
	transit   []transitBatch
	inTransit int
	decisions []Decision

	sticky int // router's current region choice (-1 before first pick)

	reg    *telemetry.Registry
	digest uint64 // controller digest (FNV-1a over epoch decisions)
}

// New builds the federation: validates every region's price trace and
// outage schedule, then boots each region's fleet under its derived
// seed and the shared batch period.
func New(cfg Config) (*Federation, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Regions) == 0 {
		return nil, errors.New("federation: no regions configured")
	}
	f := &Federation{
		cfg:      cfg,
		migrator: NewMigrator(cfg.Migration, sim.DeriveSeed(cfg.Seed, migrateSeedStream)),
		sticky:   -1,
		reg:      telemetry.NewRegistry(),
		// Digests start from the seed, not the bare FNV offset: two runs
		// are only "the same replay" if they share the seed, even when
		// the observable trajectory happens not to depend on it.
		digest: fnvWords(fnvOffset, cfg.Seed),
	}
	regionSeed := sim.DeriveSeed(cfg.Seed, regionSeedStream)
	for i, rc := range cfg.Regions {
		if err := rc.Price.Validate(); err != nil {
			return nil, fmt.Errorf("region %d (%s): %w", i, rc.Name, err)
		}
		for _, ft := range rc.Outage.Faults {
			if !fault.IsRegionFault(ft.Type) {
				return nil, fmt.Errorf("region %d (%s): outage scenario carries non-region fault %q (board/platform faults belong in Fleet.Faults)", i, rc.Name, ft.Type)
			}
		}
		if err := rc.Outage.Validate(1, 1); err != nil {
			return nil, fmt.Errorf("region %d (%s): outage: %w", i, rc.Name, err)
		}
		if rc.Outage.Seed == 0 {
			rc.Outage.Seed = sim.DeriveSeed(cfg.Seed, outageSeedStream+uint64(i))
		}
		fc := rc.Fleet
		fc.Seed = sim.DeriveSeed(regionSeed, uint64(i))
		fc.Batch = cfg.Batch
		if cfg.Check {
			fc.Check = true
		}
		fl, err := fleet.New(fc)
		if err != nil {
			f.close()
			return nil, fmt.Errorf("region %d (%s): %w", i, rc.Name, err)
		}
		r := newRegion(i, rc, fl, cfg.Tiers)
		r.digest = fnvWords(r.digest, fc.Seed)
		f.regions = append(f.regions, r)
	}
	f.registerMetrics()
	return f, nil
}

func (f *Federation) registerMetrics() {
	f.reg.GaugeFunc("pricepower_fed_regions", "Regions in the federation.",
		func() float64 { return float64(len(f.regions)) })
	gauge := func(name, help string, read func() float64) {
		f.reg.GaugeFunc(name, help, func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return read()
		})
	}
	gauge("pricepower_fed_epochs", "Federation epochs stepped.",
		func() float64 { return float64(f.epoch) })
	gauge("pricepower_fed_submitted_total", "External specs routed to a region fleet.",
		func() float64 { return float64(f.counters.Submitted) })
	gauge("pricepower_fed_migrations_total", "Migration-controller firings.",
		func() float64 { return float64(f.counters.Migrations) })
	gauge("pricepower_fed_migrated_tasks_total", "Tasks moved between regions.",
		func() float64 { return float64(f.counters.MigratedTasks) })
	gauge("pricepower_fed_in_migration", "Migrated tasks currently in transit.",
		func() float64 { return float64(f.inTransit) })
	gauge("pricepower_fed_board_crashes_total", "Board-crash errors absorbed while stepping regions.",
		func() float64 { return float64(f.counters.BoardCrashes) })
	for _, r := range f.regions {
		r := r
		lbl := fmt.Sprintf("{region=%q}", r.Name)
		gauge("pricepower_fed_elec_price_kwh"+lbl, "Electricity price in force ($/kWh).",
			func() float64 { return r.elecPrice })
		gauge("pricepower_fed_eff_price"+lbl, "Effective compute price (elec × watts/PU).",
			func() float64 { return r.effPrice })
		gauge("pricepower_fed_served_frac"+lbl, "Delivered/demanded PU fraction last epoch.",
			func() float64 { return r.served })
		gauge("pricepower_fed_energy_kwh_total"+lbl, "Energy drawn (kWh).",
			func() float64 { return r.energyKWh })
		gauge("pricepower_fed_energy_cost_usd_total"+lbl, "Electricity spend ($).",
			func() float64 { return r.costUSD })
		gauge("pricepower_fed_revenue_usd_total"+lbl, "SLA revenue earned ($).",
			func() float64 { return r.revenueUSD })
		gauge("pricepower_fed_sla_violations_total"+lbl, "Task-epochs served below the tier promise.",
			func() float64 { return float64(r.violations) })
		gauge("pricepower_fed_region_down"+lbl, "1 while the region is in an outage window.",
			func() float64 {
				if r.down {
					return 1
				}
				return 0
			})
	}
}

// Registry is the federation-level metrics registry; region fleet
// registries merge in via ExportMetrics.
func (f *Federation) Registry() *telemetry.Registry { return f.reg }

// NumRegions reports the federation size.
func (f *Federation) NumRegions() int { return len(f.regions) }

// Regions exposes the region wrappers (read-only use: registries,
// fleets).
func (f *Federation) Regions() []*Region {
	return append([]*Region(nil), f.regions...)
}

// epochDur is one epoch's virtual duration.
func (f *Federation) epochDur() sim.Time {
	return sim.Time(f.cfg.EpochBarriers) * f.cfg.Batch
}

// epochHours is one epoch's length in price-trace hours.
func (f *Federation) epochHours() float64 {
	return f.epochDur().Seconds() * f.cfg.HoursPerSec
}

// Now reports federation virtual time: epochs stepped × epoch length.
// Region fleets frozen by outages fall behind this clock; prices are
// always read against it, never against a frozen fleet's clock.
func (f *Federation) Now() sim.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return sim.Time(f.epoch) * f.epochDur()
}

// Submit routes specs to region fleets immediately (cheapest effective
// price, sticky hysteresis) and returns how many were handed off (all
// of them — a full destination queue sheds inside the fleet).
func (f *Federation) Submit(specs ...task.Spec) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range specs {
		f.routeLocked(s)
	}
	return len(specs)
}

// SubmitTo pins specs to one region, bypassing the price router — the
// load-placement tool tests and the API's region field use to build
// backlogs where they want them. Returns the count accepted by the
// region's fleet.
func (f *Federation) SubmitTo(region int, specs ...task.Spec) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if region < 0 || region >= len(f.regions) {
		return 0, fmt.Errorf("federation: region %d outside [0,%d)", region, len(f.regions))
	}
	accepted := f.regions[region].submit(specs)
	f.counters.Submitted += uint64(len(specs))
	return accepted, nil
}

// SubmitAt schedules a spec for routing at the first epoch starting at
// or after the given federation virtual time.
func (f *Federation) SubmitAt(at sim.Time, spec task.Spec) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sched = append(f.sched, fedTimed{at: at, seq: f.schedSeq, spec: spec})
	f.schedSeq++
}

// routeLocked places one external spec: cheapest effective price among
// up regions, sticky until a challenger undercuts by Hysteresis. With
// every region down it routes to the cheapest anyway — the frozen
// fleet's admission queue holds the work for the ledger.
func (f *Federation) routeLocked(spec task.Spec) {
	best := f.pickLocked()
	f.regions[best].submit([]task.Spec{spec})
	f.counters.Submitted++
}

func (f *Federation) pickLocked() int {
	best, bestUp := -1, false
	for i, r := range f.regions {
		up := !r.down
		switch {
		case best < 0, up && !bestUp:
			best, bestUp = i, up
		case up == bestUp && r.effPrice < f.regions[best].effPrice:
			best = i
		}
	}
	// Sticky: keep the previous choice unless the winner undercuts it
	// by the hysteresis band (and the previous choice is still up).
	if f.sticky >= 0 && f.sticky != best {
		prev := f.regions[f.sticky]
		if !prev.down && bestUp &&
			f.regions[best].effPrice > (1-f.cfg.Hysteresis)*prev.effPrice {
			best = f.sticky
		}
	}
	f.sticky = best
	return best
}

// Step runs one federation epoch: refresh outage states and prices,
// deliver due migrations, release scheduled arrivals, step every up
// region EpochBarriers barriers, fold accounting and digests, then let
// the migration controller decide. Board-crash errors are absorbed
// (each region supervises restarts) and returned joined, like
// fleet.Step: callers filter with fleet.CrashErrors.
func (f *Federation) Step() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.epoch++
	epoch := f.epoch

	// 1. Outage windows and the prices in force, read off the
	// federation clock (a frozen fleet's clock halts; its tariff
	// doesn't).
	startH := float64(epoch-1) * f.epochHours()
	for _, r := range f.regions {
		r.down = r.outage.OutageAt(r.ID, epoch)
		r.elecPrice = r.price.PriceAt(startH)
		r.effPrice = r.elecPrice * r.effWatts()
	}

	// 2. Deliver migrations whose transfer latency has elapsed. A down
	// destination redirects to the cheapest up region (deterministic);
	// with nowhere up the batch waits another epoch.
	f.deliverLocked(epoch)

	// 3. Release scheduled arrivals due by this epoch's start, in
	// (time, submission) order, and route them.
	f.releaseLocked(epoch)

	// 4. Step every up region through the epoch's barriers, in region
	// order — serialized, so the schedule is deterministic.
	var crashes []error
	for b := 0; b < f.cfg.EpochBarriers; b++ {
		for _, r := range f.regions {
			if r.down {
				continue
			}
			if err := r.fl.Step(); err != nil {
				if cs, only := fleet.CrashErrors(err); only {
					f.counters.BoardCrashes += uint64(len(cs))
					crashes = append(crashes, err)
					continue
				}
				return fmt.Errorf("federation: region %s: %w", r.Name, err)
			}
		}
	}

	// 5. Economics and per-region digests.
	epochH := f.epochHours()
	for _, r := range f.regions {
		r.account(epoch, epochH, r.elecPrice)
	}

	// 6. Migration decision on this epoch's observations.
	eff := make([]float64, len(f.regions))
	up := make([]bool, len(f.regions))
	queued := make([]int, len(f.regions))
	for i, r := range f.regions {
		eff[i] = r.effPrice
		up[i] = !r.down
		queued[i] = r.queueLen // account-time depth: the digested observation
	}
	d := f.migrator.Decide(epoch, eff, up, queued)
	if d.Move {
		subs := f.regions[d.Src].evict(d.Tasks)
		d.Tasks = len(subs)
		if d.Tasks > 0 {
			f.transit = append(f.transit, transitBatch{
				due: epoch + f.migrator.cfg.LatencyEpochs, dst: d.Dst, subs: subs,
			})
			f.inTransit += d.Tasks
			f.counters.Migrations++
			f.counters.MigratedTasks += uint64(d.Tasks)
		} else {
			d.Move = false
		}
	}
	f.decisions = append(f.decisions, d)
	if len(f.decisions) > maxDecisionLog {
		f.decisions = f.decisions[len(f.decisions)-maxDecisionLog:]
	}

	// 7. Controller digest + conservation.
	move := uint64(0)
	if d.Move {
		move = 1
	}
	f.digest = fnvWords(f.digest,
		uint64(epoch), move, uint64(d.Src+1), uint64(d.Dst+1), uint64(d.Tasks),
		uint64(f.inTransit), f.counters.Submitted, f.counters.MigratedTasks,
	)
	if f.cfg.Check {
		if err := checkConservationLocked(f); err != nil {
			return err
		}
	}
	if len(crashes) > 0 {
		return errors.Join(crashes...)
	}
	return nil
}

// deliverLocked re-submits due transit batches at their destinations.
func (f *Federation) deliverLocked(epoch int) {
	if len(f.transit) == 0 {
		return
	}
	keep := f.transit[:0]
	for _, tb := range f.transit {
		if tb.due > epoch {
			keep = append(keep, tb)
			continue
		}
		dst := tb.dst
		if f.regions[dst].down {
			dst = f.cheapestUpLocked()
			if dst < 0 {
				// Nowhere to land: hold in transit another epoch.
				tb.due = epoch + 1
				keep = append(keep, tb)
				continue
			}
		}
		specs := make([]task.Spec, len(tb.subs))
		for i := range tb.subs {
			specs[i] = tb.subs[i].Spec
		}
		f.regions[dst].submit(specs)
		f.inTransit -= len(tb.subs)
		f.counters.Delivered += uint64(len(tb.subs))
	}
	f.transit = keep
}

func (f *Federation) cheapestUpLocked() int {
	best := -1
	for i, r := range f.regions {
		if r.down {
			continue
		}
		if best < 0 || r.effPrice < f.regions[best].effPrice {
			best = i
		}
	}
	return best
}

// releaseLocked routes scheduled arrivals due by the epoch's start.
func (f *Federation) releaseLocked(epoch int) {
	if len(f.sched) == 0 {
		return
	}
	start := sim.Time(epoch-1) * f.epochDur()
	var due []fedTimed
	keep := f.sched[:0]
	for _, ts := range f.sched {
		if ts.at <= start {
			due = append(due, ts)
		} else {
			keep = append(keep, ts)
		}
	}
	f.sched = keep
	sortTimed(due)
	for _, ts := range due {
		f.routeLocked(ts.spec)
	}
}

// FederationAccounting implements check.FederationLedger: accepted =
// external submissions − every region's sheds; the placement terms sum
// each fleet's ledger plus the in-migration count.
func (f *Federation) FederationAccounting() (accepted, live, queued, inflight, orphaned, migrating uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.accountingLocked()
}

func (f *Federation) accountingLocked() (accepted, live, queued, inflight, orphaned, migrating uint64) {
	var shed uint64
	for _, r := range f.regions {
		_, l, q, inf, orp := r.fl.FleetAccounting()
		live += l
		queued += q
		inflight += inf
		orphaned += orp
		shed += r.fl.StateSnapshot().Counters.Shed
	}
	return f.counters.Submitted - shed, live, queued, inflight, orphaned, uint64(f.inTransit)
}

// checkConservationLocked is the epoch-path checker: same identity as
// check.CheckFederationConservation without re-taking f.mu.
func checkConservationLocked(f *Federation) error {
	accepted, live, queued, inflight, orphaned, migrating := f.accountingLocked()
	if live+queued+inflight+orphaned+migrating != accepted {
		return fmt.Errorf(
			"federation: conservation violated at epoch %d: live %d + queued %d + in-flight %d + orphaned %d + migrating %d != accepted %d",
			f.epoch, live, queued, inflight, orphaned, migrating, accepted)
	}
	return nil
}

// DigestVector snapshots the replay digests: index 0 is the controller
// digest, index i+1 region i's.
func (f *Federation) DigestVector() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]uint64, 0, len(f.regions)+1)
	out = append(out, f.digest)
	for _, r := range f.regions {
		out = append(out, r.digest)
	}
	return out
}

// State is the federation-wide snapshot served at /state.
type State struct {
	Epoch     int           `json:"epoch"`
	Time      sim.Time      `json:"t"`
	Counters  Counters      `json:"counters"`
	InTransit int           `json:"in_transit"`
	Regions   []RegionState `json:"regions"`
	Decisions []Decision    `json:"decisions"`
	Digests   []string      `json:"digests"`
}

// StateSnapshot publishes the federation view.
func (f *Federation) StateSnapshot() State {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := State{
		Epoch:     f.epoch,
		Time:      sim.Time(f.epoch) * f.epochDur(),
		Counters:  f.counters,
		InTransit: f.inTransit,
		Decisions: append([]Decision(nil), f.decisions...),
	}
	st.Digests = append(st.Digests, hex16(f.digest))
	for _, r := range f.regions {
		st.Regions = append(st.Regions, r.state())
		st.Digests = append(st.Digests, hex16(r.digest))
	}
	return st
}

// ExportMetrics merges the federation registry with every region's
// fleet export relabeled region="<name>" (each already carrying its
// board labels — the stacked-label path AppendLabeled exists for).
func (f *Federation) ExportMetrics() []telemetry.Series {
	merged := f.reg.Export()
	for _, r := range f.regions {
		merged = telemetry.AppendLabeled(merged, r.fl.ExportMetrics(), "region", r.Name)
	}
	return merged
}

// Close stops every region fleet.
func (f *Federation) Close() { f.close() }

func (f *Federation) close() {
	for _, r := range f.regions {
		if r != nil && r.fl != nil {
			r.fl.Close()
		}
	}
}

// FNV-1a digest folding (the repo's replay-digest primitive).
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvWords(h uint64, words ...uint64) uint64 {
	for _, w := range words {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

func hex16(d uint64) string { return fmt.Sprintf("%016x", d) }

func itoa(i int) string { return strconv.Itoa(i) }

// sortTimed orders scheduled arrivals by (due time, submission order).
// Insertion sort: the due set per epoch is small and nearly ordered.
func sortTimed(ts []fedTimed) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0; j-- {
			a, b := &ts[j-1], &ts[j]
			if a.at < b.at || (a.at == b.at && a.seq < b.seq) {
				break
			}
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}
