package federation

import (
	"strings"
	"testing"

	"pricepower/internal/check"
	"pricepower/internal/fault"
	"pricepower/internal/fleet"
	"pricepower/internal/task"
)

// fedSpec is a small looping task at the given priority (the SLA tier
// key): low demand, so backlogs in tests are built deliberately.
func fedSpec(name string, prio int) task.Spec {
	return task.Spec{Name: name, Priority: prio, MinHR: 4, MaxHR: 6,
		Phases: []task.Phase{{HBCostLittle: 20, SpeedupBig: 1.8}}, Loop: true}
}

// fedHeavy demands ~2000 PU on a LITTLE core — a handful saturate one
// board's supply ceiling, so backlogs stay queued (and evictable)
// instead of being absorbed.
func fedHeavy(name string, prio int) task.Spec {
	return task.Spec{Name: name, Priority: prio, MinHR: 8, MaxHR: 12,
		Phases: []task.Phase{{HBCostLittle: 200, SpeedupBig: 1.8}}, Loop: true}
}

func flat(price float64) PriceTrace {
	return PriceTrace{Intervals: []PriceInterval{{StartH: 0, EndH: 24, PriceKWh: price}}}
}

func mustStep(t *testing.T, f *Federation) {
	t.Helper()
	if err := f.Step(); err != nil {
		if _, only := fleet.CrashErrors(err); only {
			return // absorbed: the region supervises its restarts
		}
		t.Fatal(err)
	}
}

// TestFederationConservation asserts the cross-region zero-loss
// identity at every epoch for R ∈ {1, 2, 4} under routed, pinned, and
// scheduled submissions, queue-cap sheds, an outage window, and active
// migration.
func TestFederationConservation(t *testing.T) {
	for _, regions := range []int{1, 2, 4} {
		t.Run(itoa(regions)+"-regions", func(t *testing.T) {
			cfg := Config{
				Seed:  uint64(100 + regions),
				Check: true,
				Migration: MigrationConfig{
					CostLatency: 5e-6, CostTransfer: 5e-6,
					SustainEpochs: 1, MaxBatch: 4, CooldownEpochs: -1,
				},
			}
			for i := 0; i < regions; i++ {
				price := 0.02 + 0.25*float64(i) // ascending: region 0 cheapest
				cap := 0
				if i == 0 {
					cap = 8 // small cap on one region to force sheds
				}
				boards := 2
				if i == regions-1 {
					boards = 1 // choke the expensive region: backlog stays queued
				}
				cfg.Regions = append(cfg.Regions, RegionConfig{
					Name:  "c" + itoa(i),
					Fleet: fleet.Config{Boards: boards, QueueCap: cap},
					Price: flat(price),
				})
			}
			if regions >= 2 {
				// One region disappears for a window mid-run.
				cfg.Regions[regions-1].Outage = fault.Scenario{
					Faults: []fault.Fault{{Type: fault.RegionOutage, Start: 3, Rounds: 2}},
				}
			}
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()

			for epoch := 1; epoch <= 10; epoch++ {
				f.Submit(fedSpec("routed", 1), fedSpec("routed", 3))
				if regions >= 2 {
					// Pin a backlog into the most expensive region so the
					// controller has something to move; overflow region
					// 0's small cap to exercise shed accounting.
					if _, err := f.SubmitTo(regions-1, fedHeavy("pin", 2), fedHeavy("pin", 2), fedHeavy("pin", 2)); err != nil {
						t.Fatal(err)
					}
					if _, err := f.SubmitTo(0, fedSpec("flood", 1), fedSpec("flood", 1)); err != nil {
						t.Fatal(err)
					}
				}
				f.SubmitAt(f.Now()+f.epochDur()/2, fedSpec("later", 2))
				mustStep(t, f) // Check=true asserts the ledger inside Step
				if err := check.CheckFederationConservation(f); err != nil {
					t.Fatalf("epoch %d: %v", epoch, err)
				}
			}
			st := f.StateSnapshot()
			if st.Counters.Submitted == 0 {
				t.Fatal("no external submissions accounted")
			}
			if regions >= 2 && st.Counters.MigratedTasks == 0 {
				t.Error("expected some migration under a forced backlog and near-zero cost")
			}
		})
	}
}

// TestFederationMigrationConvergence: under sustained divergence the
// backlog pinned into the expensive region must drain toward the cheap
// region within a bounded number of epochs, and every moved task must
// arrive (delivered = migrated once transit clears).
func TestFederationMigrationConvergence(t *testing.T) {
	cfg := Config{
		Seed: 9, Check: true,
		Migration: MigrationConfig{
			CostLatency: 5e-5, CostTransfer: 5e-5,
			SustainEpochs: 1, MaxBatch: 8, LatencyEpochs: 1, CooldownEpochs: -1,
		},
		Regions: []RegionConfig{
			{Name: "cheap", Fleet: fleet.Config{Boards: 2}, Price: flat(0.01)},
			{Name: "dear", Fleet: fleet.Config{Boards: 1}, Price: flat(1.0)},
		},
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Build a 40-task backlog in the expensive region. A single barrier
	// routes some onto its board; the rest sit queued and evictable.
	specs := make([]task.Spec, 40)
	for i := range specs {
		specs[i] = fedHeavy("bulk", 1)
	}
	if _, err := f.SubmitTo(1, specs...); err != nil {
		t.Fatal(err)
	}

	drained := -1
	for epoch := 1; epoch <= 30; epoch++ {
		mustStep(t, f)
		st := f.StateSnapshot()
		if st.Regions[1].QueueLen == 0 && st.InTransit == 0 {
			drained = epoch
			break
		}
	}
	if drained < 0 {
		st := f.StateSnapshot()
		t.Fatalf("expensive backlog never drained: %+v", st.Regions[1])
	}
	st := f.StateSnapshot()
	if st.Counters.Migrations == 0 || st.Counters.MigratedTasks == 0 {
		t.Fatalf("backlog drained without the controller: %+v", st.Counters)
	}
	if st.Counters.Delivered != st.Counters.MigratedTasks {
		t.Fatalf("delivered %d != migrated %d with empty transit",
			st.Counters.Delivered, st.Counters.MigratedTasks)
	}
	// The moved work must actually live in the cheap region now.
	if st.Regions[0].Live+st.Regions[0].QueueLen == 0 {
		t.Fatal("cheap region took no migrated load")
	}
	if err := check.CheckFederationConservation(f); err != nil {
		t.Fatal(err)
	}
}

// TestFederationNoMigrationBelowCost: identical prices → zero
// divergence → the controller must never move the backlog, however
// long it sits.
func TestFederationNoMigrationBelowCost(t *testing.T) {
	cfg := Config{
		Seed: 4, Check: true,
		Migration: MigrationConfig{CostLatency: 0.01, CostTransfer: 0.01, SustainEpochs: 1},
		Regions: []RegionConfig{
			{Name: "a", Fleet: fleet.Config{Boards: 1}, Price: flat(0.10)},
			{Name: "b", Fleet: fleet.Config{Boards: 1}, Price: flat(0.10)},
		},
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	specs := make([]task.Spec, 30)
	for i := range specs {
		specs[i] = fedHeavy("s", 1)
	}
	if _, err := f.SubmitTo(0, specs...); err != nil {
		t.Fatal(err)
	}
	for epoch := 1; epoch <= 12; epoch++ {
		mustStep(t, f)
	}
	if st := f.StateSnapshot(); st.Counters.Migrations != 0 {
		t.Fatalf("%d migrations with zero price divergence", st.Counters.Migrations)
	}
}

// faultedConfig is the replay scenario the acceptance criteria name: 3
// regions, one board crash (supervised restart) in one region, one
// region-outage window in another, migration enabled.
func faultedConfig(seed uint64) Config {
	crash := fault.Scenario{
		Seed:   1,
		Faults: []fault.Fault{{Type: fault.BoardCrash, Start: 6, Rounds: 1}},
	}
	return Config{
		Seed: seed, Check: true,
		Migration: MigrationConfig{
			CostLatency: 5e-5, CostTransfer: 5e-5,
			SustainEpochs: 2, MaxBatch: 6,
		},
		Regions: []RegionConfig{
			{Name: "us", Fleet: fleet.Config{Boards: 2}, Price: flat(0.30)},
			{
				Name: "eu",
				Fleet: fleet.Config{
					Boards: 2, RestartAfter: 4,
					Faults: map[int]fault.Scenario{0: crash},
				},
				Price: flat(0.05),
			},
			{
				Name: "ap", Fleet: fleet.Config{Boards: 1}, Price: flat(0.12),
				Outage: fault.Scenario{
					Faults: []fault.Fault{{Type: fault.RegionOutage, Start: 4, Rounds: 2}},
				},
			},
		},
	}
}

func runFaulted(t *testing.T, seed uint64, epochs int) []uint64 {
	t.Helper()
	f, err := New(faultedConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for epoch := 1; epoch <= epochs; epoch++ {
		// Deterministic arrival schedule: mixed tiers, some pinned into
		// the expensive region to keep the controller busy.
		f.Submit(fedSpec("w", 1), fedSpec("w", 2), fedSpec("w", 3))
		if _, err := f.SubmitTo(0, fedHeavy("p", 1), fedHeavy("p", 1)); err != nil {
			t.Fatal(err)
		}
		mustStep(t, f)
		if err := check.CheckFederationConservation(f); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
	return f.DigestVector()
}

// TestFederationFaultedReplayBitIdentical is the acceptance gate: the
// 3-region faulted run (board crash + region outage) replays with a
// bit-identical federation digest vector, and the vector is seed- and
// fault-sensitive.
func TestFederationFaultedReplayBitIdentical(t *testing.T) {
	a := runFaulted(t, 1234, 12)
	b := runFaulted(t, 1234, 12)
	if len(a) != 4 {
		t.Fatalf("digest vector has %d entries, want 4 (controller + 3 regions)", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("digest %d diverged across identical runs: %016x vs %016x", i, a[i], b[i])
		}
	}
	c := runFaulted(t, 4321, 12)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical digest vectors")
	}
}

// TestFederationOutageEconomics: a region in outage earns nothing,
// draws nothing, counts SLA violations for its resident tiers, and its
// queue holds work for the ledger.
func TestFederationOutageEconomics(t *testing.T) {
	cfg := Config{
		Seed: 5, Check: true,
		Migration: MigrationConfig{Disabled: true},
		Regions: []RegionConfig{
			{Name: "up", Fleet: fleet.Config{Boards: 1}, Price: flat(0.10)},
			{
				Name: "down", Fleet: fleet.Config{Boards: 1}, Price: flat(0.10),
				Outage: fault.Scenario{
					Faults: []fault.Fault{{Type: fault.RegionOutage, Start: 3, Rounds: 100}},
				},
			},
		},
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.SubmitTo(1, fedSpec("g", 3), fedSpec("g", 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SubmitTo(0, fedSpec("g", 3)); err != nil {
		t.Fatal(err)
	}
	for epoch := 1; epoch <= 2; epoch++ {
		mustStep(t, f)
	}
	pre := f.StateSnapshot().Regions[1]
	if pre.RevenueUSD <= 0 || pre.EnergyKWh <= 0 {
		t.Fatalf("region earned/drew nothing while up: %+v", pre)
	}
	for epoch := 3; epoch <= 6; epoch++ {
		mustStep(t, f)
	}
	post := f.StateSnapshot().Regions[1]
	if !post.Down {
		t.Fatal("region not marked down inside its outage window")
	}
	if post.RevenueUSD != pre.RevenueUSD {
		t.Errorf("revenue accrued during outage: %v → %v", pre.RevenueUSD, post.RevenueUSD)
	}
	if post.EnergyKWh != pre.EnergyKWh {
		t.Errorf("energy accrued during outage: %v → %v", pre.EnergyKWh, post.EnergyKWh)
	}
	if post.Violations <= pre.Violations {
		t.Errorf("no SLA violations counted during outage: %d → %d", pre.Violations, post.Violations)
	}
	upR := f.StateSnapshot().Regions[0]
	if upR.RevenueUSD <= pre.RevenueUSD/4 {
		t.Errorf("up region revenue %v implausibly low vs %v", upR.RevenueUSD, pre.RevenueUSD)
	}
	if err := check.CheckFederationConservation(f); err != nil {
		t.Fatal(err)
	}
}

// TestFederationMetricsStackLabels is the exposition regression test:
// region labels stack outside board labels on fleet series, and the
// federation's own economics series carry region labels.
func TestFederationMetricsStackLabels(t *testing.T) {
	cfg := Config{
		Seed: 2,
		Regions: []RegionConfig{
			{Name: "east", Fleet: fleet.Config{Boards: 2}, Price: flat(0.1)},
			{Name: "west", Fleet: fleet.Config{Boards: 1}, Price: flat(0.2)},
		},
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Submit(fedSpec("m", 2))
	mustStep(t, f)

	var b strings.Builder
	if err := f.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pricepower_fleet_submitted_total{region="east"}`,
		`{region="east",board="0"}`,
		`{region="west",board="0"}`,
		`pricepower_fed_revenue_usd_total{region="east"}`,
		`pricepower_fed_epoch_revenue_usd_bucket{region="east",le=`,
		"pricepower_fed_epochs 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// HELP/TYPE dedup must survive the merge of R region fleets.
	if strings.Count(out, "# TYPE pricepower_fleet_submitted_total") != 1 {
		t.Error("fleet series TYPE header duplicated across regions")
	}
}
