// Package federation lifts the paper's intra-chip price economy one
// level up: R regions, each wrapping an internal/fleet instance with its
// own electricity-price trace, frequency-tiered SLA pricing for the work
// it serves (after Lučanin et al., "Performance-Based Pricing in
// Multi-Core Geo-Distributed Cloud Computing"), and a migration
// controller that moves queued load from the most expensive region to
// the cheapest when the effective compute-price divergence exceeds the
// migration cost.
//
// Everything stays replay-grade: region fleets derive their seeds from
// the federation seed via sim.DeriveSeed, migration decisions are pure
// functions of (traces, seed, epoch), per-region digests fold into a
// federation digest vector, and the fleet's zero-loss invariant extends
// across regions (see check.CheckFederationConservation).
package federation

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
)

// Price-trace errors — structured sentinels so loaders and the API can
// classify what was wrong with a schedule instead of scraping messages.
var (
	// ErrTraceEmpty reports a schedule with no intervals.
	ErrTraceEmpty = errors.New("federation: price trace has no intervals")
	// ErrBadPrice reports a NaN, infinite, or negative $/kWh price.
	ErrBadPrice = errors.New("federation: price not finite and non-negative")
	// ErrBadWindow reports an interval whose [start,end) hour window is
	// inverted, empty, negative, or non-finite.
	ErrBadWindow = errors.New("federation: interval window invalid")
	// ErrUnsorted reports intervals out of ascending start order.
	ErrUnsorted = errors.New("federation: intervals not sorted by start hour")
	// ErrOverlap reports two intervals covering the same hour.
	ErrOverlap = errors.New("federation: intervals overlap")
)

// PriceInterval is one piecewise-constant segment of an electricity
// price schedule: [StartH, EndH) hours at PriceKWh $/kWh.
type PriceInterval struct {
	StartH   float64 `json:"start_h"`
	EndH     float64 `json:"end_h"`
	PriceKWh float64 `json:"price_kwh"`
}

// PriceTrace is a region's electricity price schedule. Lookups wrap
// modulo the trace period (the last interval's EndH), so a 24-hour
// diurnal schedule prices an arbitrarily long run; hours falling in a
// gap between intervals hold the most recent price (the grid doesn't
// stop billing between tariff rows).
type PriceTrace struct {
	Name      string          `json:"name,omitempty"`
	Intervals []PriceInterval `json:"intervals"`
}

// Validate checks the schedule: non-empty, finite non-negative prices,
// well-formed windows, ascending starts, no overlap. Every violation
// wraps one of the Err* sentinels.
func (p *PriceTrace) Validate() error {
	if len(p.Intervals) == 0 {
		return ErrTraceEmpty
	}
	for i, iv := range p.Intervals {
		if math.IsNaN(iv.PriceKWh) || math.IsInf(iv.PriceKWh, 0) || iv.PriceKWh < 0 {
			return fmt.Errorf("%w: interval %d price %v", ErrBadPrice, i, iv.PriceKWh)
		}
		if math.IsNaN(iv.StartH) || math.IsNaN(iv.EndH) ||
			math.IsInf(iv.StartH, 0) || math.IsInf(iv.EndH, 0) ||
			iv.StartH < 0 || iv.EndH <= iv.StartH {
			return fmt.Errorf("%w: interval %d [%v,%v)", ErrBadWindow, i, iv.StartH, iv.EndH)
		}
		if i > 0 {
			prev := p.Intervals[i-1]
			if iv.StartH < prev.StartH {
				return fmt.Errorf("%w: interval %d starts at %vh after interval %d at %vh",
					ErrUnsorted, i, iv.StartH, i-1, prev.StartH)
			}
			if iv.StartH < prev.EndH {
				return fmt.Errorf("%w: interval %d [%v,%v) overlaps interval %d [%v,%v)",
					ErrOverlap, i, iv.StartH, iv.EndH, i-1, prev.StartH, prev.EndH)
			}
		}
	}
	return nil
}

// PeriodH is the schedule's wrap period in hours (the last interval's
// end). Zero for an empty trace.
func (p *PriceTrace) PeriodH() float64 {
	if len(p.Intervals) == 0 {
		return 0
	}
	return p.Intervals[len(p.Intervals)-1].EndH
}

// PriceAt returns the $/kWh price at hour h of a validated trace,
// wrapping modulo PeriodH. Hours in a gap hold the most recent
// interval's price; hours before the first interval (after wrapping)
// hold the last interval's — the previous cycle's tail.
func (p *PriceTrace) PriceAt(h float64) float64 {
	n := len(p.Intervals)
	if n == 0 {
		return 0
	}
	period := p.PeriodH()
	if period > 0 && (h < 0 || h >= period) {
		h = math.Mod(h, period)
		if h < 0 {
			h += period
		}
	}
	// Linear scan: tariff schedules have a handful of rows; lookups are
	// per epoch, not per tick.
	last := p.Intervals[n-1].PriceKWh
	for i := 0; i < n; i++ {
		iv := p.Intervals[i]
		if h < iv.StartH {
			return last // gap before this interval: hold the previous price
		}
		if h < iv.EndH {
			return iv.PriceKWh
		}
		last = iv.PriceKWh
	}
	return last
}

// Diurnal synthesizes a day-shaped schedule: steps equal intervals over
// 24 hours priced base + amp·cos(2π(h−peakHour)/24), clamped at 0 —
// most expensive at peakHour, cheapest 12 hours away. Phase-shift
// peakHour across regions to model follow-the-sun pricing.
func Diurnal(name string, base, amp, peakHour float64, steps int) PriceTrace {
	if steps <= 0 {
		steps = 24
	}
	tr := PriceTrace{Name: name, Intervals: make([]PriceInterval, steps)}
	width := 24.0 / float64(steps)
	for i := 0; i < steps; i++ {
		mid := (float64(i) + 0.5) * width
		price := base + amp*math.Cos(2*math.Pi*(mid-peakHour)/24)
		if price < 0 {
			price = 0
		}
		tr.Intervals[i] = PriceInterval{
			StartH:   float64(i) * width,
			EndH:     float64(i+1) * width,
			PriceKWh: price,
		}
	}
	return tr
}

// ParsePriceTrace decodes and validates a schedule, rejecting unknown
// fields so typos in hand-written traces fail loudly.
func ParsePriceTrace(b []byte) (PriceTrace, error) {
	var tr PriceTrace
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tr); err != nil {
		return PriceTrace{}, fmt.Errorf("federation: price trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return PriceTrace{}, err
	}
	return tr, nil
}

// LoadPriceTrace reads and validates a schedule file.
func LoadPriceTrace(path string) (PriceTrace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return PriceTrace{}, err
	}
	tr, err := ParsePriceTrace(b)
	if err != nil {
		return PriceTrace{}, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}
