package federation

// Performance-based SLA pricing (Lučanin et al.)
//
// Each submitted task maps to an SLA tier through its spec priority —
// the one field that already survives the fleet's queue, eviction, and
// migration round-trips, so tier membership never needs a side channel.
// A tier promises a minimum served fraction (delivered PUs / demanded
// PUs, the fleet's frequency-delivery proxy) and pays a revenue rate
// per task-hour. A region that delivers below a tier's promise earns
// only a proportional fraction of that tier's rate and counts an SLA
// violation — performance-based pricing rather than binary penalties.

// Tier is one SLA class.
type Tier struct {
	Name string `json:"name"`
	// MinPriority is the lowest spec priority that lands in this tier
	// (tiers are matched highest-first).
	MinPriority int `json:"min_priority"`
	// MinServedFrac is the promised delivered/demanded PU fraction.
	MinServedFrac float64 `json:"min_served_frac"`
	// RatePerTaskHour is the revenue in $ per resident task per
	// trace-hour when the promise is met.
	RatePerTaskHour float64 `json:"rate_per_task_hour"`
}

// DefaultTiers is the three-class schedule used when a config names
// none: gold (priority ≥ 3), silver (2), bronze (everything else).
// Ordered highest MinPriority first — TierFor depends on it.
func DefaultTiers() []Tier {
	return []Tier{
		{Name: "gold", MinPriority: 3, MinServedFrac: 0.90, RatePerTaskHour: 0.12},
		{Name: "silver", MinPriority: 2, MinServedFrac: 0.75, RatePerTaskHour: 0.05},
		{Name: "bronze", MinPriority: 1, MinServedFrac: 0.50, RatePerTaskHour: 0.02},
	}
}

// TierFor maps a spec priority to a tier index: the first (highest)
// tier whose MinPriority the priority meets, else the last tier.
func TierFor(tiers []Tier, priority int) int {
	for i, t := range tiers {
		if priority >= t.MinPriority {
			return i
		}
	}
	return len(tiers) - 1
}

// revenueFactor scales a tier's rate by delivered performance: full
// rate at or above the promise, proportional below it (and zero when
// nothing was delivered — an outage earns nothing).
func revenueFactor(served, promised float64) float64 {
	if promised <= 0 || served >= promised {
		return 1
	}
	if served <= 0 {
		return 0
	}
	return served / promised
}
