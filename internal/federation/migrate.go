package federation

import (
	"pricepower/internal/fault"
	"pricepower/internal/sim"
)

// Migration controller
//
// Every federation epoch the controller compares the regions' effective
// compute prices — electricity price × watts per unit of delivered work
// — and considers moving queued (evictable) load from the most
// expensive region with a backlog to the cheapest region. Migration is
// never free: the configured cost (a latency penalty plus transfer
// energy, both expressed in the same effective-price units) sets the
// divergence threshold, and two layers of hysteresis stop regions from
// ping-ponging work on price noise:
//
//   - sustain: the divergence must exceed the threshold for
//     SustainEpochs *consecutive* epochs before anything moves, so a
//     divergence oscillating around the threshold migrates nothing;
//   - cooldown: after each migration the controller sleeps for a
//     backoff-grown number of epochs (fault.Backoff in epoch units,
//     deterministic seeded jitter), decaying back on calm epochs.
//
// Decide is a pure function of its inputs and the controller's own
// deterministically-evolved state — no clocks, no shared RNG — so a
// federation run replays its migration schedule bit-identically.

// MigrationConfig tunes the controller.
type MigrationConfig struct {
	// CostLatency is the latency component of the migration cost in
	// effective-price units ($/PU·h-equivalent).
	CostLatency float64 `json:"cost_latency"`
	// CostTransfer is the transfer-energy component, same units.
	CostTransfer float64 `json:"cost_transfer"`
	// SustainEpochs is how many consecutive epochs the divergence must
	// exceed the cost before a migration fires (default 2).
	SustainEpochs int `json:"sustain_epochs,omitempty"`
	// LatencyEpochs is the transfer latency: an evicted batch is in
	// migration for this many epochs before the destination accepts it
	// (default 1).
	LatencyEpochs int `json:"latency_epochs,omitempty"`
	// MaxBatch caps tasks moved per migration (default 8).
	MaxBatch int `json:"max_batch,omitempty"`
	// CooldownEpochs is the post-migration sleep before the controller
	// may fire again; it grows exponentially with consecutive
	// migrations (fault.Backoff, seeded jitter) and decays on calm
	// epochs (default 2, 0 keeps the default; use -1 to disable).
	CooldownEpochs int `json:"cooldown_epochs,omitempty"`
	// Disabled turns the controller off (regions still price and
	// account; nothing migrates).
	Disabled bool `json:"disabled,omitempty"`
}

func (m MigrationConfig) withDefaults() MigrationConfig {
	if m.SustainEpochs <= 0 {
		m.SustainEpochs = 2
	}
	if m.LatencyEpochs <= 0 {
		m.LatencyEpochs = 1
	}
	if m.MaxBatch <= 0 {
		m.MaxBatch = 8
	}
	if m.CooldownEpochs == 0 {
		m.CooldownEpochs = 2
	}
	return m
}

// threshold is the divergence a migration must beat.
func (m MigrationConfig) threshold() float64 { return m.CostLatency + m.CostTransfer }

// Decision is one epoch's controller outcome (Move=false: held).
type Decision struct {
	Epoch  int     `json:"epoch"`
	Move   bool    `json:"move"`
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Tasks  int     `json:"tasks"`
	Spread float64 `json:"spread"` // effective-price divergence observed
}

// Migrator holds the controller's hysteresis state.
type Migrator struct {
	cfg      MigrationConfig
	backoff  fault.Backoff
	streak   int // consecutive epochs with divergence > threshold
	calm     int // consecutive epochs at or below it
	attempts int // consecutive migrations driving the cooldown growth
	wakeAt   int // first epoch allowed to migrate again
}

// NewMigrator builds a controller; seed decorrelates its cooldown
// jitter from every other consumer of the federation seed.
func NewMigrator(cfg MigrationConfig, seed uint64) *Migrator {
	cfg = cfg.withDefaults()
	base := sim.Time(cfg.CooldownEpochs)
	if base < 1 {
		base = 1
	}
	return &Migrator{
		cfg: cfg,
		// Backoff in whole-epoch units: Base epochs, doubling per
		// consecutive migration, capped at 8×, 25% seeded jitter.
		backoff: fault.Backoff{Base: base, Max: 8 * base, Jitter: 0.25, Seed: seed},
	}
}

// Decide evaluates one epoch: eff[i] is region i's effective compute
// price, up[i] whether it is serving, queued[i] its evictable queue
// depth. A Move decision names source (most expensive up region with a
// backlog), destination (cheapest up region), and the task count to
// evict (≤ MaxBatch). Pure given the controller state; the state only
// advances through Decide, in epoch order.
func (mg *Migrator) Decide(epoch int, eff []float64, up []bool, queued []int) Decision {
	d := Decision{Epoch: epoch, Src: -1, Dst: -1}
	if mg.cfg.Disabled || len(eff) < 2 {
		return d
	}
	src, dst := -1, -1
	for i := range eff {
		if !up[i] {
			continue
		}
		if dst < 0 || eff[i] < eff[dst] {
			dst = i
		}
		if queued[i] > 0 && (src < 0 || eff[i] > eff[src]) {
			src = i
		}
	}
	if src < 0 || dst < 0 || src == dst {
		mg.relax()
		return d
	}
	d.Src, d.Dst = src, dst
	d.Spread = eff[src] - eff[dst]
	if d.Spread <= mg.cfg.threshold() {
		mg.relax()
		return d
	}
	mg.streak++
	mg.calm = 0
	if mg.streak < mg.cfg.SustainEpochs || (mg.cfg.CooldownEpochs >= 0 && epoch < mg.wakeAt) {
		return d
	}
	d.Move = true
	d.Tasks = queued[src]
	if d.Tasks > mg.cfg.MaxBatch {
		d.Tasks = mg.cfg.MaxBatch
	}
	// Re-arm: the spread must sustain again from scratch, and the
	// cooldown grows with each consecutive migration.
	mg.streak = 0
	if mg.cfg.CooldownEpochs >= 0 {
		mg.wakeAt = epoch + int(mg.backoff.Next(mg.attempts))
		mg.attempts++
	}
	return d
}

// relax registers a calm epoch: the sustain streak resets, and enough
// consecutive calm epochs walk the cooldown growth back down.
func (mg *Migrator) relax() {
	mg.streak = 0
	mg.calm++
	if mg.calm >= 4 && mg.attempts > 0 {
		mg.attempts--
		mg.calm = 0
	}
}
