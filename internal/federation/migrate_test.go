package federation

import (
	"math"
	"testing"
)

// TestMigratorOscillationAroundThreshold is the required hysteresis
// property: a divergence that keeps crossing the threshold but never
// stays above it for SustainEpochs consecutive epochs must migrate
// nothing, whatever the oscillation phase or amplitude.
func TestMigratorOscillationAroundThreshold(t *testing.T) {
	cfg := MigrationConfig{CostLatency: 0.01, CostTransfer: 0.01, SustainEpochs: 2}
	thr := cfg.threshold()
	for _, amp := range []float64{0.001, 0.005, 0.5 * thr} {
		for phase := 0; phase < 2; phase++ {
			mg := NewMigrator(cfg, 42)
			moves := 0
			for epoch := 1; epoch <= 200; epoch++ {
				// Alternate strictly above / strictly below the threshold.
				div := thr + amp
				if (epoch+phase)%2 == 0 {
					div = thr - amp
					if div < 0 {
						div = 0
					}
				}
				d := mg.Decide(epoch, []float64{0.1 + div, 0.1}, []bool{true, true}, []int{50, 0})
				if d.Move {
					moves++
				}
			}
			if moves != 0 {
				t.Fatalf("amp %v phase %d: %d migrations from an oscillating divergence", amp, phase, moves)
			}
		}
	}
}

// TestMigratorExactThresholdNeverFires pins the strict inequality: a
// divergence exactly at the migration cost is not worth paying.
func TestMigratorExactThresholdNeverFires(t *testing.T) {
	cfg := MigrationConfig{CostLatency: 0.02, CostTransfer: 0.01, SustainEpochs: 1}
	mg := NewMigrator(cfg, 1)
	for epoch := 1; epoch <= 50; epoch++ {
		d := mg.Decide(epoch, []float64{0.1 + cfg.threshold(), 0.1}, []bool{true, true}, []int{10, 0})
		if d.Move {
			t.Fatalf("epoch %d: migrated at exactly the threshold", epoch)
		}
	}
}

// TestMigratorSustainedDivergenceFires: a divergence held above the
// threshold fires after exactly SustainEpochs epochs, from the
// expensive backlog toward the cheap region, at most MaxBatch tasks.
func TestMigratorSustainedDivergenceFires(t *testing.T) {
	cfg := MigrationConfig{CostLatency: 0.01, CostTransfer: 0.01, SustainEpochs: 3, MaxBatch: 8}
	mg := NewMigrator(cfg, 7)
	eff := []float64{0.30, 0.05, 0.10}
	up := []bool{true, true, true}
	queued := []int{100, 0, 5}
	var first Decision
	for epoch := 1; epoch <= 10; epoch++ {
		d := mg.Decide(epoch, eff, up, queued)
		if d.Move {
			first = d
			break
		}
		if epoch >= cfg.SustainEpochs {
			t.Fatalf("no migration by epoch %d despite sustained divergence", epoch)
		}
	}
	if first.Src != 0 || first.Dst != 1 || first.Tasks != 8 {
		t.Fatalf("decision = %+v, want src 0 → dst 1, 8 tasks", first)
	}
}

// TestMigratorCooldownGrows: consecutive migrations must space out —
// the gap between firing epochs is non-decreasing while the divergence
// stays pinned high (backoff-grown cooldown).
func TestMigratorCooldownGrows(t *testing.T) {
	cfg := MigrationConfig{CostLatency: 0.005, CostTransfer: 0.005, SustainEpochs: 1, CooldownEpochs: 2}
	mg := NewMigrator(cfg, 3)
	var fired []int
	for epoch := 1; epoch <= 120 && len(fired) < 5; epoch++ {
		d := mg.Decide(epoch, []float64{0.5, 0.05}, []bool{true, true}, []int{1000, 0})
		if d.Move {
			fired = append(fired, epoch)
		}
	}
	if len(fired) < 3 {
		t.Fatalf("only %d migrations in 120 pinned epochs", len(fired))
	}
	for i := 2; i < len(fired); i++ {
		prev := fired[i-1] - fired[i-2]
		cur := fired[i] - fired[i-1]
		// Jitter shortens delays by up to 25%, so allow equality and a
		// one-epoch wobble while requiring overall growth.
		if cur+1 < prev {
			t.Fatalf("cooldown shrank: gaps %v", gaps(fired))
		}
	}
	if g := gaps(fired); g[len(g)-1] <= g[0] {
		t.Fatalf("cooldown did not grow: gaps %v", g)
	}
}

func gaps(fired []int) []int {
	out := make([]int, 0, len(fired)-1)
	for i := 1; i < len(fired); i++ {
		out = append(out, fired[i]-fired[i-1])
	}
	return out
}

// TestMigratorSkipsDownAndEmptyRegions: a down region is neither source
// nor destination, and a region with no backlog cannot be a source.
func TestMigratorSkipsDownAndEmptyRegions(t *testing.T) {
	cfg := MigrationConfig{CostLatency: 0.001, CostTransfer: 0.001, SustainEpochs: 1}
	mg := NewMigrator(cfg, 9)
	// Cheapest region (1) is down: dst must fall to region 2.
	var got Decision
	for epoch := 1; epoch <= 3; epoch++ {
		got = mg.Decide(epoch, []float64{0.5, 0.01, 0.1}, []bool{true, false, true}, []int{10, 0, 0})
		if got.Move {
			break
		}
	}
	if !got.Move || got.Src != 0 || got.Dst != 2 {
		t.Fatalf("decision = %+v, want move 0 → 2 around the down region", got)
	}
	// No up region with a backlog: nothing to move.
	mg2 := NewMigrator(cfg, 9)
	for epoch := 1; epoch <= 10; epoch++ {
		if d := mg2.Decide(epoch, []float64{0.5, 0.01}, []bool{false, true}, []int{10, 0}); d.Move {
			t.Fatalf("epoch %d: migrated out of a down region", epoch)
		}
	}
}

// TestMigratorDeterministic: the controller's decision sequence is a
// pure function of (config, seed, inputs).
func TestMigratorDeterministic(t *testing.T) {
	run := func() []Decision {
		cfg := MigrationConfig{CostLatency: 0.01, CostTransfer: 0.01}
		mg := NewMigrator(cfg, 77)
		var out []Decision
		for epoch := 1; epoch <= 60; epoch++ {
			// A deterministic pseudo-noisy divergence pattern.
			div := 0.05 * (1 + math.Sin(float64(epoch)/3))
			out = append(out, mg.Decide(epoch, []float64{0.1 + div, 0.1}, []bool{true, true}, []int{20, 0}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}
