// Package metrics collects the measurements the paper's evaluation reports:
// the fraction of time tasks miss their reference heart-rate range
// (Figures 4, 6, 7, 8), average power (Figure 5), energy, and time series
// for the behaviour plots.
package metrics

import (
	"math"
	"sort"

	"pricepower/internal/platform"
	"pricepower/internal/sim"
	"pricepower/internal/task"
)

// Series is a time series of (time, value) samples.
type Series struct {
	Times  []sim.Time
	Values []float64
}

// Add appends a sample.
func (s *Series) Add(t sim.Time, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Mean reports the arithmetic mean of the values (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Max reports the maximum value (-Inf when empty).
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	return max
}

// Quantile reports the q-quantile of the values by the nearest-rank method
// on a sorted copy: the smallest value v such that at least q·n samples are
// ≤ v. q is clamped to [0,1]; an empty series reports NaN. Quantile(0) is
// the minimum, Quantile(1) the maximum, Quantile(0.5) the (lower) median —
// the tail statistics the behaviour figures and the telemetry overhead
// summaries report.
func (s *Series) Quantile(q float64) float64 {
	n := len(s.Values)
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), s.Values...)
	sort.Float64s(sorted)
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// Min reports the minimum value (+Inf when empty).
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
	}
	return min
}

// Probe samples a running platform and accumulates the evaluation metrics.
// Attach it with Attach after the governor is set; it observes every tick
// after the warm-up period.
type Probe struct {
	p      *platform.Platform
	warmup sim.Time

	samples       int
	anyBelow      int
	belowByTask   map[*task.Task]int
	outsideByTask map[*task.Task]int
	taskSamples   map[*task.Task]int

	powerSum   float64
	powerPeak  float64
	energyJ    float64
	lastEnergy float64
	hbBase     map[*task.Task]float64
	hbLast     map[*task.Task]float64

	// PowerSeries and HRSeries are optional high-resolution traces enabled
	// by EnableSeries (Figures 7/8 need per-task normalized heart rates).
	PowerSeries *Series
	HRSeries    map[*task.Task]*Series
	seriesEvery sim.Time
	nextSeries  sim.Time
}

// NewProbe builds a probe for the platform that starts measuring after
// warmup (letting HRM windows fill and the market settle, as the paper's
// measurements do after boot).
func NewProbe(p *platform.Platform, warmup sim.Time) *Probe {
	return &Probe{
		p:             p,
		warmup:        warmup,
		belowByTask:   make(map[*task.Task]int),
		outsideByTask: make(map[*task.Task]int),
		taskSamples:   make(map[*task.Task]int),
		hbBase:        make(map[*task.Task]float64),
		hbLast:        make(map[*task.Task]float64),
	}
}

// EnableSeries turns on time-series capture with the given sampling period.
func (pr *Probe) EnableSeries(every sim.Time) {
	pr.PowerSeries = &Series{}
	pr.HRSeries = make(map[*task.Task]*Series)
	pr.seriesEvery = every
	pr.nextSeries = pr.warmup
}

// Attach registers the probe on the platform's engine (after the platform's
// own tick hook, so it observes post-governor state).
func (pr *Probe) Attach() {
	pr.p.Engine.AddHook(sim.TickFunc(pr.tick))
	pr.lastEnergy = pr.p.Meter().Joules()
}

func (pr *Probe) tick(now sim.Time) {
	if now <= pr.warmup {
		pr.lastEnergy = pr.p.Meter().Joules()
		return
	}
	pr.samples++
	below := false
	for _, t := range pr.p.Tasks() {
		pr.taskSamples[t]++
		if _, ok := pr.hbBase[t]; !ok {
			pr.hbBase[t] = t.Heartbeats()
		}
		pr.hbLast[t] = t.Heartbeats()
		hr := t.HeartRate(now)
		if hr < t.MinHR {
			below = true
			pr.belowByTask[t]++
			pr.outsideByTask[t]++
		} else if hr > t.MaxHR {
			pr.outsideByTask[t]++
		}
	}
	if below {
		pr.anyBelow++
	}
	w := pr.p.Power()
	pr.powerSum += w
	if w > pr.powerPeak {
		pr.powerPeak = w
	}
	pr.energyJ = pr.p.Meter().Joules() - pr.lastEnergy

	if pr.PowerSeries != nil && now >= pr.nextSeries {
		pr.nextSeries += pr.seriesEvery
		pr.PowerSeries.Add(now, w)
		for _, t := range pr.p.Tasks() {
			s, ok := pr.HRSeries[t]
			if !ok {
				s = &Series{}
				pr.HRSeries[t] = s
			}
			s.Add(now, t.HeartRate(now)/t.TargetHR())
		}
	}
}

// AnyBelowFrac reports the fraction of measured time during which at least
// one task's heart rate was below its minimum — the miss metric of
// Figures 4 and 6.
func (pr *Probe) AnyBelowFrac() float64 {
	if pr.samples == 0 {
		return 0
	}
	return float64(pr.anyBelow) / float64(pr.samples)
}

// BelowFrac reports the fraction of time one task spent below its minimum.
func (pr *Probe) BelowFrac(t *task.Task) float64 {
	n := pr.taskSamples[t]
	if n == 0 {
		return 0
	}
	return float64(pr.belowByTask[t]) / float64(n)
}

// OutsideFrac reports the fraction of time one task spent outside its
// reference range (below min or above max) — the Figure 7 metric.
func (pr *Probe) OutsideFrac(t *task.Task) float64 {
	n := pr.taskSamples[t]
	if n == 0 {
		return 0
	}
	return float64(pr.outsideByTask[t]) / float64(n)
}

// AveragePower reports the mean chip power over the measured interval.
func (pr *Probe) AveragePower() float64 {
	if pr.samples == 0 {
		return 0
	}
	return pr.powerSum / float64(pr.samples)
}

// PeakPower reports the highest sampled chip power.
func (pr *Probe) PeakPower() float64 { return pr.powerPeak }

// Energy reports joules consumed during the measured interval.
func (pr *Probe) Energy() float64 { return pr.energyJ }

// Samples reports how many ticks were measured.
func (pr *Probe) Samples() int { return pr.samples }

// HeartbeatsDelivered reports the total application progress (heartbeats
// across all tasks) during the measured interval — the numerator of the
// energy-efficiency view "joules per unit of delivered work".
func (pr *Probe) HeartbeatsDelivered() float64 {
	var total float64
	for t, last := range pr.hbLast {
		total += last - pr.hbBase[t]
	}
	return total
}
