package metrics

import (
	"math"
	"strings"
	"testing"

	"pricepower/internal/sim"
)

func testHist() *Histogram { return NewLog(1, 2, 16) }

func sumCounts(h *Histogram) uint64 {
	var total uint64
	for _, c := range h.BucketCounts() {
		total += c
	}
	return total
}

func TestHistogramRecordBasics(t *testing.T) {
	h := testHist()
	for _, v := range []float64{0.5, 1, 2, 3, 1000, 1e12, -4, 0} {
		h.Record(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	if got := sumCounts(h); got != h.Count() {
		t.Fatalf("bucket counts sum %d != count %d", got, h.Count())
	}
	// NaN is dropped, not counted.
	h.Record(math.NaN())
	if got := h.Count(); got != 8 {
		t.Fatalf("NaN was counted: count = %d", got)
	}
	if h.Sum() != 0.5+1+2+3+1000+1e12-4 {
		t.Fatalf("sum = %g", h.Sum())
	}
}

// TestHistogramMergeAssociativeCommutative pins the merge algebra the
// fleet-wide k-way aggregation relies on: (a+b)+c == a+(b+c) and
// a+b == b+a over counts, count, sum and min/max.
func TestHistogramMergeAssociativeCommutative(t *testing.T) {
	mk := func(n int, seed uint64) *Histogram {
		h := testHist()
		r := sim.NewRand(seed)
		for i := 0; i < n; i++ {
			h.RecordExemplar(r.Range(0.1, 1e5), r.Uint64())
		}
		return h
	}
	a, b, c := mk(100, 1), mk(57, 2), mk(233, 3)

	equal := func(x, y *Histogram) bool {
		xc, yc := x.BucketCounts(), y.BucketCounts()
		for i := range xc {
			if xc[i] != yc[i] {
				return false
			}
		}
		return x.Count() == y.Count() && x.Sum() == y.Sum() &&
			x.Quantile(0) == y.Quantile(0) && x.Quantile(1) == y.Quantile(1)
	}

	abc1 := a.Snapshot()
	if err := abc1.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := abc1.Merge(c); err != nil {
		t.Fatal(err)
	}
	bc := b.Snapshot()
	if err := bc.Merge(c); err != nil {
		t.Fatal(err)
	}
	abc2 := a.Snapshot()
	if err := abc2.Merge(bc); err != nil {
		t.Fatal(err)
	}
	if !equal(abc1, abc2) {
		t.Error("merge is not associative")
	}

	ab := a.Snapshot()
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	ba := b.Snapshot()
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}
	if !equal(ab, ba) {
		t.Error("merge is not commutative")
	}
}

func TestHistogramMergeLayoutMismatch(t *testing.T) {
	a := NewLog(1, 2, 16)
	b := NewLog(1, 2, 8)
	if err := a.Merge(b); err == nil {
		t.Fatal("layout mismatch merged without error")
	}
}

// TestHistogramExemplarRetention pins the merge rule: a bucket with no
// exemplar adopts the other side's, so no input's only exemplar is lost.
func TestHistogramExemplarRetention(t *testing.T) {
	a, b := testHist(), testHist()
	a.RecordExemplar(3, 0xaaaa)   // bucket for 3
	b.RecordExemplar(100, 0xbbbb) // different bucket
	b.RecordExemplar(3.5, 0xcccc) // same bucket as a's 3

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	var traces []uint64
	for _, ex := range a.Exemplars() {
		if ex.Valid {
			traces = append(traces, ex.Trace)
		}
	}
	if len(traces) != 2 {
		t.Fatalf("got %d exemplars, want 2 (%x)", len(traces), traces)
	}
	// a's own exemplar wins its bucket; b's exemplar survives in the
	// bucket a had none for.
	has := func(want uint64) bool {
		for _, tr := range traces {
			if tr == want {
				return true
			}
		}
		return false
	}
	if !has(0xaaaa) || !has(0xbbbb) {
		t.Errorf("exemplars after merge = %x, want aaaa and bbbb retained", traces)
	}
	if has(0xcccc) {
		t.Error("other side's exemplar overwrote the receiver's in a shared bucket")
	}
}

// TestHistogramQuantileAgreesWithSeries feeds identical samples to a
// Histogram and a Series and asserts the log-bucket estimate brackets the
// exact nearest-rank quantile within one growth factor — the bounded-error
// contract the tail-latency summaries rely on.
func TestHistogramQuantileAgreesWithSeries(t *testing.T) {
	h := NewLog(1, 2, 40)
	var s Series
	r := sim.NewRand(11)
	for i := 0; i < 5000; i++ {
		// Stay inside (lo, second-to-last boundary) so no sample hits the
		// clamped edge buckets.
		v := math.Exp(r.Range(math.Log(2), math.Log(1e9)))
		h.Record(v)
		s.Add(sim.Time(i), v)
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		exact := s.Quantile(q)
		est := h.Quantile(q)
		if est < exact-1e-9 || est > exact*2+1e-9 {
			t.Errorf("q=%.2f: histogram %g outside [exact %g, exact·growth %g]", q, est, exact, exact*2)
		}
	}
	var empty Series
	if math.IsNaN(empty.Quantile(0.5)) != math.IsNaN(NewLog(1, 2, 4).Quantile(0.5)) {
		t.Error("empty-input NaN behaviour diverges from Series")
	}
}

func TestHistogramWritePromExposition(t *testing.T) {
	h := testHist()
	h.RecordExemplar(3, 0xbeef)
	h.Record(100)
	var sb strings.Builder
	if err := h.WriteProm(&sb, "x_ms", "test histogram", `board="2"`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE x_ms histogram",
		`x_ms_bucket{board="2",le="+Inf"} 2`,
		`trace_id="000000000000beef"`,
		`x_ms_sum{board="2"} 103`,
		`x_ms_count{board="2"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// FuzzHistogramRecord pins the structural invariants for arbitrary inputs:
// no bucket index over/underflow (Record never panics) and count
// conservation (the bucket counts always sum to the sample count).
func FuzzHistogramRecord(f *testing.F) {
	f.Add(0.0, uint64(0))
	f.Add(-1.5, uint64(1))
	f.Add(1e300, uint64(2))
	f.Add(5e-324, uint64(3))
	f.Add(math.Inf(1), uint64(4))
	f.Add(math.Inf(-1), uint64(5))
	f.Add(math.NaN(), uint64(6))
	h := NewLog(1, 2, 12)
	f.Fuzz(func(t *testing.T, v float64, trace uint64) {
		before := h.Count()
		h.RecordExemplar(v, trace)
		after := h.Count()
		if math.IsNaN(v) {
			if after != before {
				t.Fatalf("NaN changed count %d -> %d", before, after)
			}
		} else if after != before+1 {
			t.Fatalf("count %d -> %d after one sample", before, after)
		}
		if got := sumCounts(h); got != after {
			t.Fatalf("bucket sum %d != count %d", got, after)
		}
	})
}
