package metrics

import (
	"math"
	"testing"

	"pricepower/internal/platform"
	"pricepower/internal/sim"
	"pricepower/internal/task"
)

func TestSeriesStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Len() != 0 {
		t.Error("empty series not zeroed")
	}
	if !math.IsInf(s.Max(), -1) || !math.IsInf(s.Min(), 1) {
		t.Error("empty series extremes wrong")
	}
	s.Add(1, 2)
	s.Add(2, 4)
	s.Add(3, 6)
	if s.Len() != 3 || s.Mean() != 4 || s.Min() != 2 || s.Max() != 6 {
		t.Errorf("series stats = len %d mean %v min %v max %v", s.Len(), s.Mean(), s.Min(), s.Max())
	}
}

func TestSeriesQuantileAndMax(t *testing.T) {
	series := func(vals ...float64) *Series {
		s := &Series{}
		for i, v := range vals {
			s.Add(sim.Time(i), v)
		}
		return s
	}
	cases := []struct {
		name    string
		s       *Series
		q       float64
		want    float64
		wantMax float64
	}{
		{"median-odd", series(5, 1, 3), 0.5, 3, 5},
		{"median-even-lower", series(4, 1, 3, 2), 0.5, 2, 4},
		{"p90-of-ten", series(10, 9, 8, 7, 6, 5, 4, 3, 2, 1), 0.9, 9, 10},
		{"p99-small-n", series(1, 2, 3), 0.99, 3, 3},
		{"zero-is-min", series(7, 2, 9), 0, 2, 9},
		{"one-is-max", series(7, 2, 9), 1, 9, 9},
		{"clamped-low", series(4, 8), -0.5, 4, 8},
		{"clamped-high", series(4, 8), 1.5, 8, 8},
		{"single", series(42), 0.5, 42, 42},
		{"duplicates", series(2, 2, 2, 100), 0.75, 2, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Quantile(tc.q); got != tc.want {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
			if got := tc.s.Max(); got != tc.wantMax {
				t.Errorf("Max() = %v, want %v", got, tc.wantMax)
			}
		})
	}
	var empty Series
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty series quantile is not NaN")
	}
	// Quantile must not mutate the series order.
	s := series(3, 1, 2)
	s.Quantile(0.5)
	if s.Values[0] != 3 || s.Values[1] != 1 || s.Values[2] != 2 {
		t.Error("Quantile sorted the series in place")
	}
}

// probeRig runs a single task at a fixed supply so every metric is
// predictable.
func probeRig(demand float64, warmup, dur sim.Time) (*platform.Platform, *Probe, *task.Task) {
	p := platform.NewTC2()
	little := p.Chip.Clusters[1]
	little.SetLevel(little.NumLevels() - 1) // 1000 PU fixed
	tk := p.AddTask(task.Spec{
		Name: "t", Priority: 1, MinHR: 24, MaxHR: 30, Loop: true,
		Phases: []task.Phase{{HBCostLittle: demand / 27, SpeedupBig: 2, SelfCapHR: 27}},
	}, 2)
	pr := NewProbe(p, warmup)
	pr.Attach()
	p.Run(warmup + dur)
	return p, pr, tk
}

func TestProbeInRangeTask(t *testing.T) {
	// Demand 540 PU on a 1000 PU core, self-capped at target: always in range.
	_, pr, tk := probeRig(540, sim.Second, 5*sim.Second)
	if got := pr.AnyBelowFrac(); got > 0.02 {
		t.Errorf("AnyBelowFrac = %v for a satisfied task", got)
	}
	if got := pr.BelowFrac(tk); got > 0.02 {
		t.Errorf("BelowFrac = %v", got)
	}
	if got := pr.OutsideFrac(tk); got > 0.02 {
		t.Errorf("OutsideFrac = %v", got)
	}
	if pr.Samples() != int(5*sim.Second/sim.Millisecond) {
		t.Errorf("Samples = %d", pr.Samples())
	}
}

func TestProbeStarvedTask(t *testing.T) {
	// Demand 3000 PU on a 1000 PU core: always below range after warm-up.
	_, pr, tk := probeRig(3000, sim.Second, 5*sim.Second)
	if got := pr.AnyBelowFrac(); got < 0.95 {
		t.Errorf("AnyBelowFrac = %v for a starved task", got)
	}
	if got := pr.BelowFrac(tk); got < 0.95 {
		t.Errorf("BelowFrac = %v", got)
	}
}

func TestProbePowerAndEnergy(t *testing.T) {
	p, pr, _ := probeRig(540, sim.Second, 5*sim.Second)
	if pr.AveragePower() <= 0 || pr.PeakPower() < pr.AveragePower()-1e-9 {
		t.Errorf("power stats: avg %v peak %v", pr.AveragePower(), pr.PeakPower())
	}
	// Energy over the measured window ≈ avg power × 5 s.
	want := pr.AveragePower() * 5
	if math.Abs(pr.Energy()-want) > 0.2*want {
		t.Errorf("Energy = %v, want ≈%v", pr.Energy(), want)
	}
	// The platform meter covers warm-up too, so it reads more.
	if p.Meter().Joules() <= pr.Energy() {
		t.Error("probe energy not excluding warm-up")
	}
}

func TestProbeWarmupExcluded(t *testing.T) {
	// During warm-up nothing is counted.
	p := platform.NewTC2()
	pr := NewProbe(p, 2*sim.Second)
	pr.Attach()
	p.Run(sim.Second)
	if pr.Samples() != 0 {
		t.Errorf("probe sampled %d times during warm-up", pr.Samples())
	}
	if pr.AveragePower() != 0 || pr.AnyBelowFrac() != 0 {
		t.Error("probe accumulated metrics during warm-up")
	}
}

func TestProbeSeriesCapture(t *testing.T) {
	p := platform.NewTC2()
	tk := p.AddTask(task.Spec{
		Name: "t", Priority: 1, MinHR: 24, MaxHR: 30, Loop: true,
		Phases: []task.Phase{{HBCostLittle: 20, SpeedupBig: 2}},
	}, 2)
	pr := NewProbe(p, sim.Second)
	pr.EnableSeries(100 * sim.Millisecond)
	pr.Attach()
	p.Run(3 * sim.Second)
	if pr.PowerSeries == nil || pr.PowerSeries.Len() == 0 {
		t.Fatal("no power series captured")
	}
	hr := pr.HRSeries[tk]
	if hr == nil || hr.Len() == 0 {
		t.Fatal("no heart-rate series captured")
	}
	// ~20 samples over the 2 measured seconds at 100 ms period.
	if hr.Len() < 15 || hr.Len() > 25 {
		t.Errorf("series length = %d, want ≈20", hr.Len())
	}
	// Times strictly increasing.
	for i := 1; i < hr.Len(); i++ {
		if hr.Times[i] <= hr.Times[i-1] {
			t.Fatal("series times not increasing")
		}
	}
}

func TestProbeUnknownTaskZero(t *testing.T) {
	p := platform.NewTC2()
	pr := NewProbe(p, 0)
	pr.Attach()
	other := task.New(99, task.Spec{
		Name: "x", Priority: 1, MinHR: 1, MaxHR: 2,
		Phases: []task.Phase{{HBCostLittle: 1, SpeedupBig: 1}},
	})
	if pr.BelowFrac(other) != 0 || pr.OutsideFrac(other) != 0 {
		t.Error("unknown task has non-zero fractions")
	}
}
