package metrics

import (
	"fmt"
	"io"
	"math"
	"sync"
)

// Histogram is a log-bucketed latency/duration distribution: counts land in
// geometrically growing buckets so one instrument spans microseconds to
// minutes with bounded error (a sample's bucket upper bound overestimates it
// by at most the growth factor). Histograms with identical layouts merge —
// the fleet layer k-way-merges per-board histograms into fleet-wide views —
// and render in the Prometheus histogram text exposition, with optional
// per-bucket trace-ID exemplars so a tail bucket links straight to a causal
// trace (/trace?id=...).
//
// All methods are mutex-guarded: boards record from their own goroutines
// while the HTTP layer snapshots. Recording is O(1) (a log2 and an add),
// cheap enough for per-barrier and per-round instrumentation but not meant
// for per-bid hot loops — the tracing layer's contract keeps those clean.
type Histogram struct {
	mu sync.Mutex

	lo     float64 // first bucket upper bound (> 0)
	growth float64 // bucket-to-bucket ratio (> 1)
	n      int     // bucket count; bucket n-1 is the +Inf overflow bucket

	counts    []uint64
	exemplars []Exemplar
	count     uint64
	sum       float64
	min, max  float64
}

// Exemplar links one recorded sample to its causal trace.
type Exemplar struct {
	Trace uint64  `json:"trace"`
	Value float64 `json:"value"`
	Valid bool    `json:"-"`
}

// NewLog builds a histogram with bucket upper bounds lo, lo·growth,
// lo·growth², …, with the last bucket catching everything above
// (rendered as le="+Inf"). lo must be positive, growth > 1, n ≥ 2.
func NewLog(lo, growth float64, n int) *Histogram {
	if !(lo > 0) || !(growth > 1) || n < 2 {
		panic(fmt.Sprintf("metrics: invalid histogram layout lo=%v growth=%v n=%d", lo, growth, n))
	}
	return &Histogram{
		lo: lo, growth: growth, n: n,
		counts:    make([]uint64, n),
		exemplars: make([]Exemplar, n),
		min:       math.Inf(1),
		max:       math.Inf(-1),
	}
}

// bucket maps a value to its bucket index. Values ≤ lo (including all
// non-positive ones) land in bucket 0; values past the last boundary land
// in the overflow bucket. The mapping never over- or under-flows the
// bucket array for any finite input (FuzzHistogramRecord pins this).
func (h *Histogram) bucket(v float64) int {
	if v <= h.lo {
		return 0
	}
	if math.IsInf(v, 1) {
		return h.n - 1
	}
	i := int(math.Ceil(math.Log(v/h.lo) / math.Log(h.growth)))
	if i < 0 { // log rounding on values just above lo
		i = 0
	}
	if i > h.n-1 {
		i = h.n - 1
	}
	return i
}

// Record adds one sample. NaN samples are dropped (they carry no ordering
// information and would poison the sum).
func (h *Histogram) Record(v float64) { h.RecordExemplar(v, 0) }

// RecordExemplar adds one sample and, when trace is non-zero, stamps it as
// the sample bucket's exemplar (latest wins) — the link from a histogram
// tail to the causal trace timeline.
func (h *Histogram) RecordExemplar(v float64, trace uint64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := h.bucket(v)
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if trace != 0 {
		h.exemplars[i] = Exemplar{Trace: trace, Value: v, Valid: true}
	}
	h.mu.Unlock()
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the sum of recorded samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean reports the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile reports the q-quantile by the nearest-rank method over the
// bucket cumulative counts (the same rank rule as Series.Quantile): the
// upper bound of the bucket holding the rank-th sample, clamped to the
// observed [min, max] so the estimate never leaves the sampled range. The
// estimate v satisfies exact ≤ v ≤ exact·growth for samples away from the
// clamp edges. Empty histograms report NaN.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := h.upperBound(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// upperBound reports bucket i's upper boundary (+Inf for the overflow
// bucket).
func (h *Histogram) upperBound(i int) float64 {
	if i >= h.n-1 {
		return math.Inf(1)
	}
	return h.lo * math.Pow(h.growth, float64(i))
}

// sameLayout reports whether two histograms are merge-compatible.
func (h *Histogram) sameLayout(o *Histogram) bool {
	return h.lo == o.lo && h.growth == o.growth && h.n == o.n
}

// Merge folds o into h. Merging is associative and commutative over the
// counts, sum, count and min/max; bucket exemplars are retained — a bucket
// that has no exemplar adopts the other histogram's, so no input's only
// exemplar is lost (when both carry one, the receiver's wins — an arbitrary
// but layout-independent rule). The layouts must match.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return fmt.Errorf("metrics: merge with nil histogram")
	}
	if !h.sameLayout(o) {
		return fmt.Errorf("metrics: histogram layout mismatch: (%g,%g,%d) vs (%g,%g,%d)",
			h.lo, h.growth, h.n, o.lo, o.growth, o.n)
	}
	// Lock ordering: snapshot o first to avoid holding both locks.
	os := o.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] += os.counts[i]
		if !h.exemplars[i].Valid && os.exemplars[i].Valid {
			h.exemplars[i] = os.exemplars[i]
		}
	}
	h.count += os.count
	h.sum += os.sum
	if os.min < h.min {
		h.min = os.min
	}
	if os.max > h.max {
		h.max = os.max
	}
	return nil
}

// Snapshot returns an independent copy — the unit of cross-board
// aggregation (merge snapshots, not live instruments, so the k-way fold
// never holds more than one board lock).
func (h *Histogram) Snapshot() *Histogram {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	c := &Histogram{
		lo: h.lo, growth: h.growth, n: h.n,
		counts:    append([]uint64(nil), h.counts...),
		exemplars: append([]Exemplar(nil), h.exemplars...),
		count:     h.count,
		sum:       h.sum,
		min:       h.min,
		max:       h.max,
	}
	return c
}

// MergeAll k-way-merges snapshots of the given histograms into a fresh one
// (nil entries are skipped; at least one non-nil histogram is required).
func MergeAll(hs ...*Histogram) (*Histogram, error) {
	var out *Histogram
	for _, h := range hs {
		if h == nil {
			continue
		}
		if out == nil {
			out = h.Snapshot()
			continue
		}
		if err := out.Merge(h); err != nil {
			return nil, err
		}
	}
	if out == nil {
		return nil, fmt.Errorf("metrics: MergeAll of no histograms")
	}
	return out, nil
}

// WriteProm renders the histogram in the Prometheus text exposition format
// under the given series name, with optional extra labels (e.g.
// `board="2"`) injected before the le label. Buckets carrying an exemplar
// append it in the OpenMetrics `# {trace_id="…"} value` form, linking the
// bucket to its causal trace.
func (h *Histogram) WriteProm(w io.Writer, name, help, labels string) error {
	if h == nil {
		return nil
	}
	s := h.Snapshot()
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	prefix := labels
	if prefix != "" {
		prefix += ","
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		le := "+Inf"
		if i < s.n-1 {
			le = fmt.Sprintf("%g", s.upperBound(i))
		}
		line := fmt.Sprintf(`%s_bucket{%sle=%q} %d`, name, prefix, le, cum)
		if ex := s.exemplars[i]; ex.Valid {
			line += fmt.Sprintf(` # {trace_id="%016x"} %g`, ex.Trace, ex.Value)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	sfx := ""
	if labels != "" {
		sfx = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n", name, sfx, s.sum, name, sfx, s.count); err != nil {
		return err
	}
	return nil
}

// BucketCounts returns a copy of the per-bucket counts (tests and the JSON
// debug view).
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...)
}

// Exemplars returns a copy of the per-bucket exemplars.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Exemplar(nil), h.exemplars...)
}
