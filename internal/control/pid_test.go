package control

import (
	"math"
	"testing"
)

func TestPIDProportional(t *testing.T) {
	c := PID{Kp: 2}
	if out := c.Update(3, 0.1); out != 6 {
		t.Errorf("P-only output = %v, want 6", out)
	}
}

func TestPIDIntegralAccumulates(t *testing.T) {
	c := PID{Ki: 1}
	c.Update(1, 1)
	out := c.Update(1, 1)
	if math.Abs(out-2) > 1e-9 {
		t.Errorf("I output after 2s of err=1: %v, want 2", out)
	}
}

func TestPIDDerivativeFirstStepZero(t *testing.T) {
	c := PID{Kd: 1}
	if out := c.Update(5, 0.1); out != 0 {
		t.Errorf("D output on first step = %v, want 0", out)
	}
	if out := c.Update(6, 0.1); math.Abs(out-10) > 1e-9 {
		t.Errorf("D output = %v, want 10", out)
	}
}

func TestPIDClampAndAntiWindup(t *testing.T) {
	c := PID{Kp: 1, Ki: 10, OutMin: -1, OutMax: 1}
	for i := 0; i < 100; i++ {
		if out := c.Update(100, 0.1); out > 1 || out < -1 {
			t.Fatalf("output %v outside clamp", out)
		}
	}
	// After saturation, a sign flip must pull the output off the rail
	// promptly (anti-windup), not after unwinding 100 steps of integral.
	out := c.Update(-100, 0.1)
	if out != -1 {
		t.Errorf("output after error sign flip = %v, want -1 (responsive)", out)
	}
}

func TestPIDConvergesSimplePlant(t *testing.T) {
	// Plant: value += out; target 10.
	c := PID{Kp: 0.5, Ki: 0.2}
	value := 0.0
	for i := 0; i < 200; i++ {
		out := c.Update(10-value, 0.1)
		value += out * 0.1
	}
	if math.Abs(value-10) > 0.5 {
		t.Errorf("closed loop settled at %v, want ≈10", value)
	}
}

func TestPIDReset(t *testing.T) {
	c := PID{Kp: 1, Ki: 1, Kd: 1}
	c.Update(5, 1)
	c.Update(7, 1)
	c.Reset()
	// After reset, behaves like a fresh controller.
	if out := c.Update(2, 1); math.Abs(out-(2+2)) > 1e-9 { // P=2, I=2, D=0
		t.Errorf("post-reset output = %v, want 4", out)
	}
}

func TestPIDZeroDtGuard(t *testing.T) {
	c := PID{Kd: 1}
	c.Update(1, 0)
	out := c.Update(1, 0) // must not divide by zero / return NaN
	if math.IsNaN(out) || math.IsInf(out, 0) {
		t.Errorf("output with dt=0 is %v", out)
	}
}
