// Package control provides the classic PID controller the HPM baseline
// (Muthukaruppan et al., DAC'13) builds its hierarchical power-management
// loops from.
package control

// PID is a discrete PID controller with output clamping and integrator
// anti-windup. The zero value is unusable; set the gains (and optionally
// the output bounds) before calling Update.
type PID struct {
	// Gains.
	Kp, Ki, Kd float64
	// Output bounds; both zero means unbounded.
	OutMin, OutMax float64

	integral    float64
	prevErr     float64
	initialized bool
}

// Update advances the controller with the current error over a step of dt
// seconds and returns the control output.
func (c *PID) Update(err, dt float64) float64 {
	if dt <= 0 {
		dt = 1e-9
	}
	deriv := 0.0
	if c.initialized {
		deriv = (err - c.prevErr) / dt
	}
	c.prevErr = err
	c.initialized = true

	c.integral += err * dt
	out := c.Kp*err + c.Ki*c.integral + c.Kd*deriv

	if c.OutMin != 0 || c.OutMax != 0 {
		// Clamp and anti-windup: when saturated, bleed the integrator so it
		// does not accumulate unbounded error.
		if out > c.OutMax {
			out = c.OutMax
			if c.Ki != 0 {
				c.integral = (out - c.Kp*err - c.Kd*deriv) / c.Ki
			}
		} else if out < c.OutMin {
			out = c.OutMin
			if c.Ki != 0 {
				c.integral = (out - c.Kp*err - c.Kd*deriv) / c.Ki
			}
		}
	}
	return out
}

// Reset clears the controller state (used after mode switches or
// migrations, when history is stale).
func (c *PID) Reset() {
	c.integral = 0
	c.prevErr = 0
	c.initialized = false
}
