// Package smoke runs a main package end to end as a child process so that
// `go test ./...` exercises the otherwise test-free binaries under
// examples/ and cmd/. A smoke test asserts only the contract every binary
// must honor: it builds, runs with representative arguments, and exits 0
// within a generous timeout.
package smoke

import (
	"context"
	"os/exec"
	"testing"
	"time"
)

// Timeout bounds one smoke run, including the child `go run` compile.
const Timeout = 3 * time.Minute

// Run executes `go run . <args...>` in the calling test's working
// directory — which for a main_test.go is the main package itself — and
// fails the test unless the binary exits 0 within Timeout. The combined
// stdout+stderr is returned so callers can assert on key output lines.
func Run(t *testing.T, args ...string) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), Timeout)
	defer cancel()
	cmd := exec.CommandContext(ctx, "go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	if ctx.Err() != nil {
		t.Fatalf("go run . %v timed out after %v\n%s", args, Timeout, out)
	}
	if err != nil {
		t.Fatalf("go run . %v: %v\n%s", args, err, out)
	}
	return string(out)
}
