package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pricepower/internal/sim"
)

func get(t *testing.T, srv *httptest.Server, path string) (string, *http.Response) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return string(body), resp
}

func TestMuxServesMetricsEventsStateAndPprof(t *testing.T) {
	reg := NewRegistry()
	ring := NewRing(16)
	em := NewEmitter(reg, ring)
	em.SetClock(func() sim.Time { return 3 * sim.Second })

	ev := E(KindMigration)
	ev.Task, ev.Name, ev.Class, ev.Value = 2, "x264", "ms", 0.002
	em.Emit(ev)
	reg.Counter("pricepower_market_rounds_total", "Market bid rounds executed.").Add(12)
	em.PublishState(func(s *State) {
		s.Time = 3 * sim.Second
		s.ChipPowerW = 4.1
		c := s.Cluster(0)
		c.Name, c.FreqMHz, c.On, c.Price = "little", 1000, true, 0.003
	})

	srv := httptest.NewServer(NewMux(em, ring))
	defer srv.Close()

	metrics, resp := get(t, srv, "/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"pricepower_market_rounds_total 12",
		`pricepower_events_total{kind="migration"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	eventsBody, _ := get(t, srv, "/events")
	var evPage struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(eventsBody), &evPage); err != nil {
		t.Fatalf("/events not valid JSON: %v\n%s", err, eventsBody)
	}
	if len(evPage.Events) != 1 || evPage.Events[0].Kind != KindMigration || evPage.Events[0].Name != "x264" {
		t.Errorf("/events window wrong: %+v", evPage)
	}

	stateBody, _ := get(t, srv, "/state")
	var st State
	if err := json.Unmarshal([]byte(stateBody), &st); err != nil {
		t.Fatalf("/state not valid JSON: %v\n%s", err, stateBody)
	}
	if st.ChipPowerW != 4.1 || len(st.Clusters) != 1 || st.Clusters[0].Price != 0.003 {
		t.Errorf("/state snapshot wrong: %+v", st)
	}

	if _, resp := get(t, srv, "/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
	if _, resp := get(t, srv, "/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
}

// TestMuxToleratesDetachedPieces pins the "stable handler set" contract:
// every endpoint serves valid output even with no emitter, registry, or
// ring behind it.
func TestMuxToleratesDetachedPieces(t *testing.T) {
	srv := httptest.NewServer(NewMux(nil, nil))
	defer srv.Close()

	if _, resp := get(t, srv, "/metrics"); resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics status %d with nil emitter", resp.StatusCode)
	}
	body, _ := get(t, srv, "/events")
	var evPage struct {
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &evPage); err != nil || evPage.Events == nil {
		t.Errorf("/events with nil ring: err %v, body %s", err, body)
	}
	body, _ = get(t, srv, "/state")
	var st State
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.Clusters == nil {
		t.Errorf("/state with nil emitter: err %v, body %s", err, body)
	}
}
