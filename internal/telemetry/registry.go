package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event count. All methods are atomic; the zero
// value is ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Store overwrites the total — the fold-in path for counts accumulated in
// plain per-agent fields on the hot path and aggregated once per market
// round (the new total must be ≥ the old one to stay a counter).
func (c *Counter) Store(total uint64) {
	if c != nil {
		c.v.Store(total)
	}
}

// Value reads the current total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value. All methods are atomic; the zero value
// reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metric is one registered series.
type metric struct {
	name  string // full series name, possibly with {labels}
	base  string // name without labels (groups HELP/TYPE lines)
	help  string
	typ   string // "counter" or "gauge"
	read  func() float64
	isInt bool
}

// Registry holds named counters and gauges and renders them in the
// Prometheus text exposition format (the /metrics endpoint). Registration
// is idempotent by full series name — components re-attached to the same
// registry share the instrument. Series names may carry a label set in the
// standard `name{key="value"}` form; HELP/TYPE headers are emitted once per
// base name.
type Registry struct {
	mu       sync.Mutex
	metrics  map[string]*metric
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics:  make(map[string]*metric),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name as two different instrument types panics.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if _, clash := r.metrics[name]; clash {
		panic(fmt.Sprintf("telemetry: metric %q already registered with a different type", name))
	}
	c := &Counter{}
	r.counters[name] = c
	r.metrics[name] = &metric{
		name: name, base: baseName(name), help: help, typ: "counter",
		read: func() float64 { return float64(c.Value()) }, isInt: true,
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if _, clash := r.metrics[name]; clash {
		panic(fmt.Sprintf("telemetry: metric %q already registered with a different type", name))
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.metrics[name] = &metric{
		name: name, base: baseName(name), help: help, typ: "gauge",
		read: g.Value,
	}
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time. fn must be safe to call from the scrape goroutine while the
// simulation runs (read atomics, not live simulation state). Re-registering
// the same name replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = &metric{name: name, base: baseName(name), help: help, typ: "gauge", read: fn}
}

// WriteProm renders every registered series in the Prometheus text format,
// sorted by name for deterministic output.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	list := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		list = append(list, m)
	}
	r.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })

	lastBase := ""
	for _, m := range list {
		if m.base != lastBase {
			lastBase = m.base
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.base, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.base, m.typ); err != nil {
				return err
			}
		}
		var err error
		if m.isInt {
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, uint64(m.read()))
		} else {
			_, err = fmt.Fprintf(w, "%s %g\n", m.name, m.read())
		}
		if err != nil {
			return err
		}
	}
	return nil
}
