package trace

import (
	"sync"

	"pricepower/internal/sim"
)

// Buffer accumulates one owner's spans and points — the fleet coordinator
// has one, each board has one. Writes happen on the owner's goroutine (the
// fleet's collect path or the board's step loop); the mutex only exists so
// the HTTP layer can read concurrently. The digest folds spans in
// *completion* order and points in mark order, which the owners make
// deterministic by sorting their per-round batches before folding.
type Buffer struct {
	mu     sync.Mutex
	spans  []Span
	points []Point
	open   map[openKey]Span
	counts Counts
	digest uint64
}

type openKey struct {
	id    ID
	stage Stage
}

// NewBuffer returns an empty buffer. A nil *Buffer is a valid no-op
// recorder — every method short-circuits — which is how the detached
// configuration stays zero-cost.
func NewBuffer() *Buffer {
	return &Buffer{open: make(map[openKey]Span), digest: fnvOffset64}
}

// Open starts a span. The (trace, stage) pair must not already be open;
// a duplicate counts as a mismatch and replaces the stale entry.
func (b *Buffer) Open(sp Span) {
	if b == nil {
		return
	}
	b.mu.Lock()
	k := openKey{sp.Trace, sp.Stage}
	if _, dup := b.open[k]; dup {
		b.counts.Mismatched++
	} else {
		b.counts.Opened++
	}
	b.open[k] = sp
	b.mu.Unlock()
}

// Close completes the open (trace, stage) span at end, stamping class (and
// keeping the opener's class when class is empty). Closing a span that was
// never opened counts as a mismatch and records nothing.
func (b *Buffer) Close(id ID, stage Stage, end sim.Time, class string) {
	b.finish(id, stage, end, class, false)
}

// CloseAttributed completes the span as an attributed outcome — shed at
// admission, drained off a board — rather than a normal close. Conservation
// treats both as accounted for; the distinction keeps "work finished" and
// "work evicted" separable in the ledger.
func (b *Buffer) CloseAttributed(id ID, stage Stage, end sim.Time, class string) {
	b.finish(id, stage, end, class, true)
}

func (b *Buffer) finish(id ID, stage Stage, end sim.Time, class string, attributed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	k := openKey{id, stage}
	sp, ok := b.open[k]
	if !ok {
		b.counts.Mismatched++
		b.mu.Unlock()
		return
	}
	delete(b.open, k)
	sp.End = end
	if class != "" {
		sp.Class = class
	}
	if attributed {
		b.counts.Attributed++
	} else {
		b.counts.Closed++
	}
	b.spans = append(b.spans, sp)
	b.digest = foldSpan(b.digest, sp)
	b.mu.Unlock()
}

// Add records an already-complete span (open and close in one step — the
// barrier spans, whose start and end are both known at collect time).
func (b *Buffer) Add(sp Span) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.counts.Opened++
	b.counts.Closed++
	b.spans = append(b.spans, sp)
	b.digest = foldSpan(b.digest, sp)
	b.mu.Unlock()
}

// AddAttributed records a zero-or-more-length span that opened and was
// attributed in one step (a shed at the admission door).
func (b *Buffer) AddAttributed(sp Span) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.counts.Opened++
	b.counts.Attributed++
	b.spans = append(b.spans, sp)
	b.digest = foldSpan(b.digest, sp)
	b.mu.Unlock()
}

// Mark records an instantaneous lifecycle point.
func (b *Buffer) Mark(p Point) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.points = append(b.points, p)
	b.digest = foldPoint(b.digest, p)
	b.mu.Unlock()
}

// Counts reports the ledger, with Open reflecting the live open-span count.
func (b *Buffer) Counts() Counts {
	if b == nil {
		return Counts{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.counts
	c.Open = uint64(len(b.open))
	return c
}

// Digest reports the incremental FNV-1a fold over all completed spans and
// marked points, in completion order. Two runs of the same build over the
// same inputs produce identical digests (see TestFleetTraceReplaysBitIdentically).
func (b *Buffer) Digest() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.digest
}

// Spans returns a copy of the completed spans, in completion order.
func (b *Buffer) Spans() []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Span(nil), b.spans...)
}

// Points returns a copy of the marked points, in mark order.
func (b *Buffer) Points() []Point {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Point(nil), b.points...)
}

// OpenSpans returns a copy of the still-open spans (the /trace timeline
// shows in-flight legs with End unset).
func (b *Buffer) OpenSpans() []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Span, 0, len(b.open))
	for _, sp := range b.open {
		out = append(out, sp)
	}
	return out
}
