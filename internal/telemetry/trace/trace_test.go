package trace

import (
	"encoding/json"
	"testing"

	"pricepower/internal/sim"
)

func TestDeriveIDDeterministic(t *testing.T) {
	a := DeriveID(0xfee1de7e, 7)
	b := DeriveID(0xfee1de7e, 7)
	if a != b {
		t.Fatalf("DeriveID not deterministic: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("DeriveID produced the reserved zero ID")
	}
	if DeriveID(0xfee1de7e, 8) == a {
		t.Fatal("adjacent positions collided")
	}
	got, err := ParseID(a.String())
	if err != nil || got != a {
		t.Fatalf("ParseID(%q) = %v, %v", a.String(), got, err)
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}

func TestBufferLedgerAndDigest(t *testing.T) {
	mk := func() *Buffer {
		b := NewBuffer()
		id := DeriveID(1, 0)
		b.Open(Span{Trace: id, Stage: StageQueue, Board: -1, Start: 0})
		b.Close(id, StageQueue, 100, "home")
		b.Open(Span{Trace: id, Stage: StageBoard, Board: 2, Start: 100})
		b.CloseAttributed(id, StageBoard, 300, "drain")
		b.AddAttributed(Span{Trace: DeriveID(1, 1), Stage: StageQueue, Board: -1, Start: 50, End: 50, Class: "shed"})
		b.Add(Span{Stage: StageBarrier, Board: -1, Start: 0, End: 100, Barrier: 1, Lag: 2})
		b.Mark(Point{Kind: "dvfs", Board: 2, Time: 150, Value: 800})
		return b
	}
	b := mk()
	c := b.Counts()
	if c.Opened != 4 || c.Closed != 2 || c.Attributed != 2 || c.Open != 0 || c.Mismatched != 0 {
		t.Fatalf("ledger = %+v", c)
	}
	if got := c.Opened - c.Closed - c.Attributed - c.Open; got != 0 {
		t.Fatalf("conservation violated by %d", got)
	}
	if b.Digest() != mk().Digest() {
		t.Fatal("identical histories produced different digests")
	}

	// A different class changes the digest.
	b2 := NewBuffer()
	id := DeriveID(1, 0)
	b2.Open(Span{Trace: id, Stage: StageQueue, Board: -1, Start: 0})
	b2.Close(id, StageQueue, 100, "steal")
	b3 := NewBuffer()
	b3.Open(Span{Trace: id, Stage: StageQueue, Board: -1, Start: 0})
	b3.Close(id, StageQueue, 100, "home")
	if b2.Digest() == b3.Digest() {
		t.Fatal("digest insensitive to span class")
	}
}

func TestBufferMismatchAccounting(t *testing.T) {
	b := NewBuffer()
	id := DeriveID(2, 0)
	b.Close(id, StageQueue, 10, "") // close without open
	b.Open(Span{Trace: id, Stage: StageQueue})
	b.Open(Span{Trace: id, Stage: StageQueue}) // duplicate open
	c := b.Counts()
	if c.Mismatched != 2 {
		t.Fatalf("mismatched = %d, want 2", c.Mismatched)
	}
	if c.Open != 1 {
		t.Fatalf("open = %d, want 1", c.Open)
	}
}

func TestNilBufferAndTracerAreNoOps(t *testing.T) {
	var b *Buffer
	b.Open(Span{})
	b.Close(0, StageQueue, 0, "")
	b.Add(Span{})
	b.Mark(Point{})
	if b.Digest() != 0 || b.Counts() != (Counts{}) || b.Spans() != nil {
		t.Fatal("nil buffer not a no-op")
	}
	var tr *Tracer
	if tr.Fleet() != nil || tr.Board(0) != nil || tr.Digests() != nil || tr.Boards() != 0 {
		t.Fatal("nil tracer not detached")
	}
	tl := tr.Timeline(5)
	if len(tl.Spans) != 0 {
		t.Fatal("nil tracer produced spans")
	}
}

func TestTracerTimelineMergesAndSorts(t *testing.T) {
	tr := NewTracer(2)
	id := DeriveID(3, 0)
	other := DeriveID(3, 1)

	// Queue span on the fleet buffer.
	tr.Fleet().Open(Span{Trace: id, Stage: StageQueue, Board: -1, Start: 0})
	tr.Fleet().Close(id, StageQueue, sim.Time(200), "home")
	// Residency on board 1 between t=200 and t=900.
	tr.Board(1).Open(Span{Trace: id, Stage: StageBoard, Board: 1, Start: 200})
	tr.Board(1).Close(id, StageBoard, sim.Time(900), "completed")
	// Ambient DVFS event on board 1 inside the window, one outside, one on
	// the other board.
	tr.Board(1).Mark(Point{Kind: "dvfs", Board: 1, Time: 500, Value: 800})
	tr.Board(1).Mark(Point{Kind: "dvfs", Board: 1, Time: 1500, Value: 600})
	tr.Board(0).Mark(Point{Kind: "dvfs", Board: 0, Time: 500, Value: 800})
	// A different trace's span must not leak in.
	tr.Board(0).Open(Span{Trace: other, Stage: StageBoard, Board: 0, Start: 0})

	tl := tr.Timeline(id)
	if tl.Trace != id.String() {
		t.Fatalf("trace label = %q", tl.Trace)
	}
	if len(tl.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (%+v)", len(tl.Spans), tl.Spans)
	}
	if tl.Spans[0].Stage != StageQueue || tl.Spans[1].Stage != StageBoard {
		t.Fatalf("spans out of order: %+v", tl.Spans)
	}
	if len(tl.Points) != 1 || tl.Points[0].Time != 500 || tl.Points[0].Board != 1 {
		t.Fatalf("ambient attribution wrong: %+v", tl.Points)
	}
	if len(tl.Open) != 0 {
		t.Fatalf("other trace's open span leaked: %+v", tl.Open)
	}

	// Ledger aggregates across buffers; one span (other) is still open.
	c := tr.Counts()
	if c.Opened != 3 || c.Closed != 2 || c.Open != 1 {
		t.Fatalf("aggregate ledger = %+v", c)
	}
	o, cl, at, op, mm := tr.SpanCounts()
	if o != 3 || cl != 2 || at != 0 || op != 1 || mm != 0 {
		t.Fatalf("SpanCounts = %d %d %d %d %d", o, cl, at, op, mm)
	}
}

func TestTimelineJSONStageNames(t *testing.T) {
	tr := NewTracer(1)
	id := DeriveID(4, 0)
	tr.Fleet().Add(Span{Trace: id, Stage: StageBarrier, Board: -1, Start: 0, End: 100, Barrier: 1})
	raw, err := json.Marshal(tr.Timeline(id))
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{`"stage":"barrier"`, `"trace":"` + id.String() + `"`} {
		if !contains(s, want) {
			t.Errorf("timeline JSON missing %s:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestDigestsVectorShape(t *testing.T) {
	tr := NewTracer(3)
	d := tr.Digests()
	if len(d) != 4 {
		t.Fatalf("digest vector length = %d, want 4", len(d))
	}
	for i, v := range d {
		if v != fnvOffset64 {
			t.Fatalf("empty buffer %d digest = %x, want offset basis", i, v)
		}
	}
}
