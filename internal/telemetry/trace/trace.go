// Package trace provides deterministic causal tracing for the fleet hot
// path: every submission carries a trace ID derived from the run seed and
// its admission position (never from wall clock), and each stage of its
// life — admission queue, shard routing, barrier wait, board residency,
// market rounds — is recorded as a span in *virtual* time. Because IDs,
// span boundaries, and the fold order are all functions of (seed, config,
// inputs), a faulted multi-board run replays with bit-identical trace
// digests, pinned next to the existing replay digests (internal/check).
//
// The layer honours the zero-cost-detached contract: nothing in this
// package is touched from bid or route loops. Spans ride the per-round
// fold after the pool barrier — boards hand their events back with the
// step reply and the fleet folds them single-threaded at collect time.
package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"pricepower/internal/sim"
)

// ID identifies one causal trace. IDs are derived, not random: the i-th
// accepted submission of a run gets DeriveID(traceSeed, i), so a replay of
// the same inputs reproduces the same IDs. Zero is reserved for "no trace"
// (ambient events not tied to a submission).
type ID uint64

// DeriveID derives the trace ID for the submission at the given admission
// position from the run's trace seed stream.
func DeriveID(seed, position uint64) ID {
	id := ID(sim.DeriveSeed(seed, position))
	if id == 0 { // keep zero reserved for "no trace"
		id = 1
	}
	return id
}

// String renders the ID the way it appears in exposition and /trace?id=
// queries: 16 hex digits.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the 16-hex-digit form accepted by /trace?id=.
func ParseID(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	return ID(v), nil
}

// Stage labels which leg of the pipeline a span covers.
type Stage uint8

const (
	// StageQueue covers admission: enqueue (SubmitAt release or requeue)
	// until the dispatcher routes the submission to a board, or until it is
	// shed (attributed close).
	StageQueue Stage = iota
	// StageBoard covers board residency: placement on a board until the
	// task completes, or until a drain evacuates it (attributed close).
	StageBoard
	// StageBarrier covers one batch barrier: issue until collection, with
	// Lag recording how many batches the pipeline ran ahead (bounded by the
	// configured max skew K).
	StageBarrier
	// StageRound covers one board-local market round.
	StageRound

	numStages
)

var stageNames = [numStages]string{"queue", "board", "barrier", "round"}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// MarshalJSON renders the stage as its name, the form the /trace timeline
// serves.
func (s Stage) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON accepts the name form, so timelines round-trip through
// JSON (clients of /trace decode into the same Span type).
func (s *Stage) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range stageNames {
		if n == name {
			*s = Stage(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown stage %q", name)
}

// Span is one closed interval of a trace's life, in virtual time. Board is
// -1 for fleet-level spans (queue, barrier). Class carries the resolution:
// "home"/"steal" for queue spans (which routing pass placed it),
// "shed"/"requeue" for attributed admission outcomes, "completed"/"drain"/
// "crash" for board spans ("crash" = the board panicked with the task
// resident; the supervisor requeues it under the same trace ID).
type Span struct {
	Trace   ID       `json:"trace"`
	Stage   Stage    `json:"stage"`
	Board   int      `json:"board"`
	Class   string   `json:"class,omitempty"`
	Start   sim.Time `json:"start"`
	End     sim.Time `json:"end"`
	Barrier int      `json:"barrier,omitempty"`
	Round   int      `json:"round,omitempty"`
	Lag     int      `json:"lag,omitempty"`
}

// Point is one instantaneous lifecycle event on a trace's timeline (DVFS
// step, migration, throttle, fault, …). Trace 0 marks an ambient board
// event not attributable to a single submission; the timeline query folds
// those in for boards the trace was resident on.
type Point struct {
	Trace ID       `json:"trace,omitempty"`
	Kind  string   `json:"kind"`
	Board int      `json:"board"`
	Time  sim.Time `json:"t"`
	Class string   `json:"class,omitempty"`
	Value float64  `json:"value,omitempty"`
}

// Counts is the span ledger a conservation check audits: every opened span
// must end up closed or attributed (shed/drain), with none closed twice or
// closed without opening (Mismatched).
type Counts struct {
	Opened     uint64 `json:"opened"`
	Closed     uint64 `json:"closed"`
	Attributed uint64 `json:"attributed"`
	Open       uint64 `json:"open"`
	Mismatched uint64 `json:"mismatched"`
}

// Add folds o into c (the fleet-wide aggregation over board buffers).
func (c *Counts) Add(o Counts) {
	c.Opened += o.Opened
	c.Closed += o.Closed
	c.Attributed += o.Attributed
	c.Open += o.Open
	c.Mismatched += o.Mismatched
}

// FNV-1a, the same fold the replay digests use (internal/check); kept
// local so the trace layer stays dependency-light.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fold64(d, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		d ^= x & 0xff
		d *= fnvPrime64
		x >>= 8
	}
	return d
}

func foldString(d uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		d ^= uint64(s[i])
		d *= fnvPrime64
	}
	return d
}

// foldSpan folds every deterministic field of a span. Wall-clock values
// never enter a span, so the fold is replay-stable by construction.
func foldSpan(d uint64, sp Span) uint64 {
	d = fold64(d, uint64(sp.Trace))
	d = fold64(d, uint64(sp.Stage))
	d = fold64(d, uint64(int64(sp.Board)))
	d = foldString(d, sp.Class)
	d = fold64(d, uint64(int64(sp.Start)))
	d = fold64(d, uint64(int64(sp.End)))
	d = fold64(d, uint64(int64(sp.Barrier)))
	d = fold64(d, uint64(int64(sp.Round)))
	d = fold64(d, uint64(int64(sp.Lag)))
	return d
}

func foldPoint(d uint64, p Point) uint64 {
	d = fold64(d, uint64(p.Trace))
	d = foldString(d, p.Kind)
	d = fold64(d, uint64(int64(p.Board)))
	d = fold64(d, uint64(int64(p.Time)))
	d = foldString(d, p.Class)
	d = fold64(d, math.Float64bits(p.Value))
	return d
}
