package trace

import "sort"

// Tracer is the fleet-wide view: one fleet buffer (queue, barrier, routing
// spans) plus one buffer per board (residency, rounds, lifecycle points).
// Buffers are written by their owners only; the Tracer itself is immutable
// after construction, so cross-board reads need no extra locking beyond
// each buffer's own mutex.
type Tracer struct {
	fleet  *Buffer
	boards []*Buffer
}

// NewTracer builds a tracer for n boards. A nil *Tracer is the detached
// configuration: every accessor returns a nil buffer whose methods no-op.
func NewTracer(n int) *Tracer {
	t := &Tracer{fleet: NewBuffer(), boards: make([]*Buffer, n)}
	for i := range t.boards {
		t.boards[i] = NewBuffer()
	}
	return t
}

// Fleet returns the coordinator's buffer (nil when detached).
func (t *Tracer) Fleet() *Buffer {
	if t == nil {
		return nil
	}
	return t.fleet
}

// Board returns board i's buffer (nil when detached or out of range).
func (t *Tracer) Board(i int) *Buffer {
	if t == nil || i < 0 || i >= len(t.boards) {
		return nil
	}
	return t.boards[i]
}

// Boards reports the board count.
func (t *Tracer) Boards() int {
	if t == nil {
		return 0
	}
	return len(t.boards)
}

// Digests returns the replay-pinnable digest vector: index 0 is the fleet
// buffer, index i+1 is board i. Bit-identical across replays of the same
// inputs on the same build.
func (t *Tracer) Digests() []uint64 {
	if t == nil {
		return nil
	}
	out := make([]uint64, 0, 1+len(t.boards))
	out = append(out, t.fleet.Digest())
	for _, b := range t.boards {
		out = append(out, b.Digest())
	}
	return out
}

// Counts aggregates the span ledger across the fleet and all boards.
func (t *Tracer) Counts() Counts {
	if t == nil {
		return Counts{}
	}
	c := t.fleet.Counts()
	for _, b := range t.boards {
		c.Add(b.Counts())
	}
	return c
}

// SpanCounts implements the check package's SpanLedger interface (kept
// structural so the trace layer does not import check).
func (t *Tracer) SpanCounts() (opened, closed, attributed, open, mismatched uint64) {
	c := t.Counts()
	return c.Opened, c.Closed, c.Attributed, c.Open, c.Mismatched
}

// Timeline is the /trace?id= payload: every completed and still-open span
// of one trace, plus its lifecycle points and the ambient board events
// (trace 0) that fired on a board while the trace was resident there.
type Timeline struct {
	Trace  string  `json:"trace"`
	Spans  []Span  `json:"spans"`
	Open   []Span  `json:"open,omitempty"`
	Points []Point `json:"points,omitempty"`
}

// Timeline assembles the merged timeline for one trace ID. Spans sort by
// (Start, Stage, Board), points by (Time, Board, Kind) — the orders a
// reader walks to answer "where did the latency go".
func (t *Tracer) Timeline(id ID) Timeline {
	tl := Timeline{Trace: id.String()}
	if t == nil || id == 0 {
		return tl
	}
	// Residency windows: [start, end] per board, for ambient attribution.
	type window struct {
		board      int
		start, end int64
	}
	var windows []window
	collect := func(b *Buffer) {
		for _, sp := range b.Spans() {
			if sp.Trace != id {
				continue
			}
			tl.Spans = append(tl.Spans, sp)
			if sp.Stage == StageBoard {
				windows = append(windows, window{sp.Board, int64(sp.Start), int64(sp.End)})
			}
		}
		for _, sp := range b.OpenSpans() {
			if sp.Trace != id {
				continue
			}
			tl.Open = append(tl.Open, sp)
			if sp.Stage == StageBoard {
				windows = append(windows, window{sp.Board, int64(sp.Start), int64(^uint64(0) >> 1)})
			}
		}
		for _, p := range b.Points() {
			if p.Trace == id {
				tl.Points = append(tl.Points, p)
			}
		}
	}
	collect(t.fleet)
	for _, b := range t.boards {
		collect(b)
	}
	// Ambient board events inside the trace's residency windows.
	for _, w := range windows {
		bb := t.Board(w.board)
		if bb == nil {
			continue
		}
		for _, p := range bb.Points() {
			if p.Trace == 0 && int64(p.Time) >= w.start && int64(p.Time) <= w.end {
				tl.Points = append(tl.Points, p)
			}
		}
	}
	sort.Slice(tl.Spans, func(i, j int) bool {
		a, b := tl.Spans[i], tl.Spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Board < b.Board
	})
	sort.Slice(tl.Points, func(i, j int) bool {
		a, b := tl.Points[i], tl.Points[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Board != b.Board {
			return a.Board < b.Board
		}
		return a.Kind < b.Kind
	})
	return tl
}
