package telemetry

import "pricepower/internal/sim"

// ClusterState is one cluster's row in the live state snapshot. The
// hardware half (level, power, gating) is published by the platform; the
// market half (prices) by the market when one is attached.
type ClusterState struct {
	ID        int     `json:"id"`
	Name      string  `json:"name,omitempty"`
	Level     int     `json:"level"`
	FreqMHz   float64 `json:"freq_mhz"`
	On        bool    `json:"on"`
	PowerW    float64 `json:"power_w"`
	Tasks     int     `json:"tasks"`
	Price     float64 `json:"price"`
	BasePrice float64 `json:"base_price"`
}

// State is the live per-cluster price/frequency/power snapshot served by
// the /state endpoint. It is double-buffered inside the emitter: writers
// (platform tick, market round) fill it in place under a mutex with
// reusable storage, readers copy it out.
type State struct {
	Time        sim.Time `json:"t"`
	Round       int      `json:"round"`
	ChipPowerW  float64  `json:"chip_power_w"`
	SmoothedW   float64  `json:"smoothed_power_w"`
	Allowance   float64  `json:"allowance"`
	MarketState string   `json:"market_state,omitempty"`
	// Degraded is the market's sensor-health flag: true while power
	// readings are failing validation and the TDP guard band is tightened
	// (internal/fault scenarios; see DESIGN.md §9).
	Degraded bool           `json:"degraded"`
	Clusters []ClusterState `json:"clusters"`
}

// Cluster returns the snapshot row for cluster i, growing the slice as
// needed (rows keep previously published fields, so the platform and the
// market can each fill their half).
func (s *State) Cluster(i int) *ClusterState {
	for len(s.Clusters) <= i {
		s.Clusters = append(s.Clusters, ClusterState{ID: len(s.Clusters)})
	}
	return &s.Clusters[i]
}

// PublishState lets a simulation component update the live snapshot: fill
// is called with the shared State under the emitter's lock. Callers must
// only touch the snapshot inside fill, and fill must not block. Writer-side
// storage is reused across publications — steady-state publishing does not
// allocate.
func (e *Emitter) PublishState(fill func(s *State)) {
	if e == nil {
		return
	}
	e.stateMu.Lock()
	fill(&e.state)
	e.pubs++
	e.stateMu.Unlock()
}

// StateSnapshot copies the last published state out; ok is false when
// nothing was published yet.
func (e *Emitter) StateSnapshot() (st State, ok bool) {
	if e == nil {
		return State{}, false
	}
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	if e.pubs == 0 {
		return State{}, false
	}
	st = e.state
	st.Clusters = append([]ClusterState(nil), e.state.Clusters...)
	return st, true
}
