package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`pricepower_migrations_total{class="us"}`, "Task migrations by paper cost class.").Add(3)
	reg.Counter(`pricepower_migrations_total{class="ms"}`, "Task migrations by paper cost class.").Add(1)
	reg.Counter("pricepower_market_rounds_total", "Market bid rounds executed.").Store(1894)
	reg.Gauge("pricepower_chip_power_watts", "Chip power at the last snapshot.").Set(4.25)
	reg.GaugeFunc("pricepower_pool_busy_workers", "Worker-pool goroutines currently running a job.",
		func() float64 { return 2 })

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP pricepower_migrations_total Task migrations by paper cost class.\n",
		"# TYPE pricepower_migrations_total counter\n",
		`pricepower_migrations_total{class="ms"} 1` + "\n",
		`pricepower_migrations_total{class="us"} 3` + "\n",
		"pricepower_market_rounds_total 1894\n",
		"# TYPE pricepower_chip_power_watts gauge\n",
		"pricepower_chip_power_watts 4.25\n",
		"pricepower_pool_busy_workers 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE for a labeled family appear once, before its series.
	if strings.Count(out, "# TYPE pricepower_migrations_total") != 1 {
		t.Errorf("labeled family TYPE line repeated:\n%s", out)
	}
	// Deterministic: a second render is identical.
	var b2 strings.Builder
	reg.WriteProm(&b2)
	if b2.String() != out {
		t.Error("exposition order is not deterministic")
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x")
	b := reg.Counter("x_total", "x")
	if a != b {
		t.Error("re-registering a counter returned a new instrument")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter name did not panic")
		}
	}()
	reg.Gauge("x_total", "x")
}

func TestCountersAndGaugesAreConcurrencySafe(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
				g.Set(float64(i))
			}
		}()
	}
	var b strings.Builder
	reg.WriteProm(&b) // scrape while writers run
	wg.Wait()
	if c.Value() != 4000 {
		t.Errorf("counter lost updates: %d", c.Value())
	}
	// Nil instruments are inert (detached components hold nils).
	var nc *Counter
	var ng *Gauge
	nc.Add(1)
	ng.Set(1)
	if nc.Value() != 0 || ng.Value() != 0 {
		t.Error("nil instruments hold values")
	}
}
