package telemetry

import (
	"strings"
	"testing"

	"pricepower/internal/sim"
)

// collectSink gathers events for assertions (tests only; not concurrent).
type collectSink struct{ evs []Event }

func (c *collectSink) Emit(ev Event) { c.evs = append(c.evs, ev) }

func TestNilEmitterIsInert(t *testing.T) {
	var em *Emitter
	if em.Enabled(KindDVFS) {
		t.Error("nil emitter reports kinds enabled")
	}
	em.Emit(E(KindDVFS)) // must not panic
	em.SetKinds(AllKinds)
	em.SetClock(func() sim.Time { return 1 })
	em.PublishState(func(s *State) { t.Error("nil emitter ran a state publish") })
	if _, ok := em.StateSnapshot(); ok {
		t.Error("nil emitter produced a state snapshot")
	}
	if em.Registry() != nil {
		t.Error("nil emitter has a registry")
	}
}

func TestEmitterMaskAndStamping(t *testing.T) {
	var got collectSink
	em := NewEmitter(nil, &got)
	em.SetClock(func() sim.Time { return 42 * sim.Millisecond })

	// Default mask drops the high-volume kinds…
	em.Emit(E(KindBid))
	em.Emit(E(KindPrice))
	em.Emit(E(KindClearing))
	if len(got.evs) != 0 {
		t.Fatalf("default mask passed %d high-volume events", len(got.evs))
	}
	if em.Enabled(KindBid) || !em.Enabled(KindDVFS) {
		t.Error("DefaultKinds mask wrong: bid enabled or dvfs disabled")
	}
	// …and passes the rest, stamped with the clock.
	ev := E(KindDVFS)
	ev.Cluster = 3
	em.Emit(ev)
	if len(got.evs) != 1 {
		t.Fatalf("got %d events, want 1", len(got.evs))
	}
	if got.evs[0].Time != 42*sim.Millisecond {
		t.Errorf("event time %v, want 42ms stamp", got.evs[0].Time)
	}
	if got.evs[0].Cluster != 3 || got.evs[0].Core != -1 || got.evs[0].Task != -1 {
		t.Errorf("E() ids not preserved/blanked: %+v", got.evs[0])
	}

	// Widening the mask admits the high-volume kinds.
	em.SetKinds(AllKinds)
	em.Emit(E(KindBid))
	if len(got.evs) != 2 {
		t.Errorf("AllKinds mask dropped a bid event")
	}
}

func TestEmitterCountsPerKind(t *testing.T) {
	reg := NewRegistry()
	em := NewEmitter(reg)
	em.SetKinds(AllKinds)
	for i := 0; i < 3; i++ {
		em.Emit(E(KindMigration))
	}
	em.Emit(E(KindThrottle))
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pricepower_events_total{kind="migration"} 3`,
		`pricepower_events_total{kind="throttle"} 1`,
		`pricepower_events_total{kind="bid"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFilterSinkMaskAndSampling(t *testing.T) {
	var got collectSink
	f := NewFilter(&got, Kinds(KindBid)).Sample(KindBid, 3)
	for i := 0; i < 9; i++ {
		f.Emit(E(KindBid))
		f.Emit(E(KindDVFS)) // masked out
	}
	if len(got.evs) != 3 {
		t.Errorf("1-in-3 sampler over 9 bids passed %d events, want 3", len(got.evs))
	}
	for _, ev := range got.evs {
		if ev.Kind != KindBid {
			t.Errorf("filter passed masked kind %v", ev.Kind)
		}
	}
}

func TestStatePublishMergesPlatformAndMarketHalves(t *testing.T) {
	em := NewEmitter(nil)
	if _, ok := em.StateSnapshot(); ok {
		t.Fatal("snapshot available before any publish")
	}
	em.PublishState(func(s *State) {
		s.Time = sim.Second
		s.ChipPowerW = 3.5
		c := s.Cluster(1)
		c.Name, c.FreqMHz, c.On = "big", 1000, true
	})
	em.PublishState(func(s *State) {
		s.Round = 7
		s.MarketState = "threshold"
		s.Cluster(1).Price = 0.25
	})
	st, ok := em.StateSnapshot()
	if !ok {
		t.Fatal("no snapshot after publishing")
	}
	if st.ChipPowerW != 3.5 || st.Round != 7 || st.MarketState != "threshold" {
		t.Errorf("merged snapshot wrong: %+v", st)
	}
	if len(st.Clusters) != 2 {
		t.Fatalf("snapshot has %d clusters, want 2 (grown by Cluster(1))", len(st.Clusters))
	}
	c := st.Clusters[1]
	if c.Name != "big" || c.FreqMHz != 1000 || !c.On || c.Price != 0.25 {
		t.Errorf("cluster row lost a half: %+v", c)
	}
	// The snapshot is a copy: mutating it must not leak into the emitter.
	st.Clusters[1].Price = 99
	st2, _ := em.StateSnapshot()
	if st2.Clusters[1].Price != 0.25 {
		t.Error("StateSnapshot aliases the live state")
	}
}

func TestKindRoundTripsThroughText(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("kind %v: %v", k, err)
		}
		if back != k {
			t.Errorf("kind %v round-tripped to %v", k, back)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("nonsense")); err == nil {
		t.Error("unknown kind name accepted")
	}
}
