package telemetry

import "sync"

// RingSink keeps the most recent events in a fixed-size in-memory ring,
// overwriting the oldest when full — the always-on flight recorder behind
// the /events endpoint. Emission is a mutex-guarded slot write (no
// allocation); Snapshot copies the live window out in oldest-to-newest
// order.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever emitted; buf[total % len] is the next slot
}

// NewRing builds a ring holding the last n events (minimum 1).
func NewRing(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]Event, n)}
}

// Emit implements Sink: the event takes the next slot, overwriting the
// oldest once the ring has wrapped.
func (r *RingSink) Emit(ev Event) {
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = ev
	r.total++
	r.mu.Unlock()
}

// Cap reports the ring capacity.
func (r *RingSink) Cap() int { return len(r.buf) }

// Total reports how many events were ever emitted into the ring.
func (r *RingSink) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped reports how many events have been overwritten (backpressure:
// total emitted minus the window still held).
func (r *RingSink) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= uint64(len(r.buf)) {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Snapshot returns a copy of the held events, oldest first.
func (r *RingSink) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	cap := uint64(len(r.buf))
	if n > cap {
		n = cap
	}
	out := make([]Event, n)
	start := r.total - n
	for i := uint64(0); i < n; i++ {
		out[i] = r.buf[(start+i)%cap]
	}
	return out
}
