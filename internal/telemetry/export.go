package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one rendered metric sample — the unit of cross-registry
// aggregation. The fleet layer exports every board's registry, injects a
// `board` label into each series, and renders the merged set as one
// Prometheus document (see WriteSeriesProm).
type Series struct {
	Name  string // full series name, possibly with {labels}
	Base  string // name without labels (groups HELP/TYPE headers)
	Help  string
	Type  string // "counter" or "gauge"
	Value float64
	Int   bool
}

// Export snapshots every registered series with its current value. The
// result is sorted by name and independent of the registry — safe to
// relabel and merge with other registries' exports.
func (r *Registry) Export() []Series {
	r.mu.Lock()
	list := make([]Series, 0, len(r.metrics))
	for _, m := range r.metrics {
		list = append(list, Series{
			Name: m.name, Base: m.base, Help: m.help, Type: m.typ,
			Value: m.read(), Int: m.isInt,
		})
	}
	r.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list
}

// InjectLabel returns the series name with an extra `key="value"` label
// prepended, preserving any labels already present:
//
//	InjectLabel(`x`, "board", "3")        == `x{board="3"}`
//	InjectLabel(`x{k="v"}`, "board", "3") == `x{board="3",k="v"}`
func InjectLabel(name, key, value string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return fmt.Sprintf(`%s{%s=%q,%s`, name[:i], key, value, name[i+1:])
	}
	return fmt.Sprintf(`%s{%s=%q}`, name, key, value)
}

// AppendLabeled appends src to dst with an extra `key="value"` label
// injected into every series name (see InjectLabel). This is the one
// merge loop behind every multi-registry exposition: the fleet stacks a
// `board` label onto each board's export, and the federation stacks a
// `region` label onto each fleet's already-board-labeled export —
// labels nest, innermost injection first.
func AppendLabeled(dst, src []Series, key, value string) []Series {
	for _, s := range src {
		s.Name = InjectLabel(s.Name, key, value)
		dst = append(dst, s)
	}
	return dst
}

// WriteSeriesProm renders a merged series set in the Prometheus text
// exposition format: sorted by name, HELP/TYPE headers emitted once per
// base name (from the first series carrying them). This is the multi-
// registry counterpart of Registry.WriteProm — exports from several
// registries, relabeled per source, render as one valid document.
func WriteSeriesProm(w io.Writer, series []Series) error {
	list := append([]Series(nil), series...)
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	lastBase := ""
	for _, s := range list {
		if s.Base != lastBase {
			lastBase = s.Base
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Base, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Base, s.Type); err != nil {
				return err
			}
		}
		var err error
		if s.Int {
			_, err = fmt.Fprintf(w, "%s %d\n", s.Name, uint64(s.Value))
		} else {
			_, err = fmt.Fprintf(w, "%s %g\n", s.Name, s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
