package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"pricepower/internal/sim"
)

// TestJSONLRoundTrip pins the event-log contract: every field of every
// kind survives write → parse unchanged.
func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Time: 31700 * sim.Microsecond, Kind: KindPrice, Round: 1, Cluster: 0, Core: 2, Task: -1, Value: 0.004, Prev: 0.0038},
		{Time: 2 * sim.Second, Kind: KindBid, Round: 63, Cluster: 1, Core: 4, Task: 9, Value: 1.25, Prev: 1.5},
		{Time: 2 * sim.Second, Kind: KindClearing, Round: 63, Cluster: 1, Core: 4, Task: -1, Value: 600, Prev: 600},
		{Time: 3 * sim.Second, Kind: KindAllowance, Round: 94, Cluster: -1, Core: -1, Task: -1, Name: "normal", Value: 10.5, Prev: 10.5},
		{Time: 4 * sim.Second, Kind: KindThrottle, Round: 126, Cluster: -1, Core: -1, Task: -1, Name: "emergency", Class: "threshold", Value: 4.31},
		{Time: 4 * sim.Second, Kind: KindDVFS, Round: 126, Cluster: 1, Core: -1, Task: -1, Class: "force", Value: 800, Prev: 1000},
		{Time: 5 * sim.Second, Kind: KindMigration, Round: 157, Cluster: 1, Core: 3, Task: 2, Name: "x264", Class: "ms", Value: 0.00216, Prev: 1},
		{Time: 6 * sim.Second, Kind: KindPowerGate, Round: 189, Cluster: 0, Core: -1, Task: -1, Class: "off"},
		{Time: 7 * sim.Second, Kind: KindViolation, Round: 220, Cluster: -1, Core: -1, Task: -1, Name: "tdp-settled", Detail: "smoothed power 4.9 W above 4.4 W"},
	}

	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, ev := range in {
		sink.Emit(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mutated events:\n in: %+v\nout: %+v", in, out)
	}
}

func TestJSONLSkipsBlankLinesAndReportsBadOnes(t *testing.T) {
	good := `{"t":1,"kind":"dvfs","round":2,"cluster":0,"core":-1,"task":-1,"value":800,"prev":600}`
	evs, err := ReadJSONL(strings.NewReader(good + "\n\n" + good + "\n"))
	if err != nil || len(evs) != 2 {
		t.Fatalf("blank-line log: %d events, err %v; want 2, nil", len(evs), err)
	}
	if _, err := ReadJSONL(strings.NewReader(good + "\n{broken\n")); err == nil {
		t.Error("malformed line parsed without error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"t":1,"kind":"warp-core-breach"}` + "\n")); err == nil {
		t.Error("unknown kind parsed without error")
	}
}

// errWriter fails after n bytes, to exercise sticky error behavior.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errFull
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

var errFull = &writerFullError{}

type writerFullError struct{}

func (*writerFullError) Error() string { return "writer full" }

// A writer that fails mid-run (full disk) must be surfaced exactly once
// through the SetOnError hook — not silently truncate the evidence trail —
// and the hook may safely re-emit through the same emitter: the dark sink
// drops the re-entrant event instead of recursing.
//
// bufio only reports write errors when its 4 KiB buffer flushes, so the
// test pushes enough events to cross that boundary several times.
func TestJSONLFailingWriterSurfacesOnce(t *testing.T) {
	sink := NewJSONL(&errWriter{n: 512})
	em := NewEmitter(nil, sink)
	var calls int
	var surfaced error
	sink.SetOnError(func(err error) {
		calls++
		surfaced = err
		ev := E(KindViolation)
		ev.Name = "jsonl-sink"
		ev.Detail = err.Error()
		em.Emit(ev)
	})
	for i := 0; i < 300; i++ {
		ev := E(KindViolation)
		ev.Round = i
		ev.Detail = "padding so a few dozen events overflow the bufio buffer"
		em.Emit(ev)
	}
	if sink.Err() == nil {
		t.Fatal("failing writer reported no error after 300 events")
	}
	if surfaced == nil || surfaced.Error() != sink.Err().Error() {
		t.Errorf("hook surfaced %v, Err() holds %v", surfaced, sink.Err())
	}
	if calls != 1 {
		t.Errorf("SetOnError hook called %d times, want exactly 1", calls)
	}
	if err := sink.Flush(); err == nil {
		t.Error("Flush cleared the sticky error")
	}
}

func TestJSONLStickyError(t *testing.T) {
	sink := NewJSONL(&errWriter{n: 10})
	big := E(KindViolation)
	big.Detail = strings.Repeat("x", 100*1024) // larger than the bufio buffer
	sink.Emit(big)
	if sink.Err() == nil {
		t.Fatal("write past a full writer reported no error")
	}
	sink.Emit(E(KindDVFS)) // must not panic or clear the error
	if sink.Flush() == nil {
		t.Error("Flush cleared the sticky error")
	}
}
