package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// NewMux builds the live-introspection HTTP handler behind
// `ppmsim -http ADDR`:
//
//	/metrics      Prometheus text exposition of the emitter's registry
//	/events       the ring sink's current window as a JSON array
//	/state        the last published per-cluster price/frequency/power
//	              snapshot as JSON
//	/debug/pprof  the standard Go profiler endpoints
//
// em and ring may each be nil; the corresponding endpoints then serve an
// empty (but valid) document, so the handler set is stable regardless of
// what the run attached.
func NewMux(em *Emitter, ring *RingSink) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg := em.Registry(); reg != nil {
			reg.WriteProm(w)
		}
	})

	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		evs := []Event{}
		if ring != nil {
			evs = ring.Snapshot()
		}
		json.NewEncoder(w).Encode(struct {
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{dropped(ring), evs})
	})

	mux.HandleFunc("/state", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st, ok := em.StateSnapshot()
		if !ok {
			st.Clusters = []ClusterState{}
		}
		if st.Clusters == nil {
			st.Clusters = []ClusterState{}
		}
		json.NewEncoder(w).Encode(st)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

func dropped(r *RingSink) uint64 {
	if r == nil {
		return 0
	}
	return r.Dropped()
}
