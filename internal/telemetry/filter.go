package telemetry

import "sync/atomic"

// FilterSink wraps another sink with a per-kind mask and an optional 1-in-N
// sampler — the cost-control wrapper that lets one emitter feed a full-
// fidelity JSONL log and a cheap steady-state ring at the same time (the
// emitter's own mask is the union of what its sinks want; each FilterSink
// narrows its branch).
type FilterSink struct {
	next Sink
	mask KindSet
	// every[k] > 1 samples kind k: only every N-th event is forwarded.
	every [numKinds]uint32
	seen  [numKinds]atomic.Uint32
}

// NewFilter wraps next so only kinds in mask pass through.
func NewFilter(next Sink, mask KindSet) *FilterSink {
	return &FilterSink{next: next, mask: mask}
}

// Sample forwards only every n-th event of kind k (n ≤ 1 restores
// pass-through). It returns the sink for chaining.
func (f *FilterSink) Sample(k Kind, n int) *FilterSink {
	if n < 1 {
		n = 1
	}
	f.every[k] = uint32(n)
	return f
}

// Emit implements Sink.
func (f *FilterSink) Emit(ev Event) {
	if !f.mask.Has(ev.Kind) {
		return
	}
	if n := f.every[ev.Kind]; n > 1 {
		if f.seen[ev.Kind].Add(1)%n != 1 {
			return
		}
	}
	f.next.Emit(ev)
}
