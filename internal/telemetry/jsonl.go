package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"log"
	"sync"
)

// JSONLSink writes one JSON object per event to a writer — the headless
// event log behind `ppmsim -events out.jsonl`. Writes are buffered and
// mutex-guarded (emission may come from the worker pool); call Flush (or
// Close) before reading the output.
//
// Ordering contract: the sink writes events in Emit order — it imposes no
// order of its own. Single-platform runs emit from the worker pool, so
// lines land in wall-clock completion order. The fleet's per-barrier event
// fold (Fleet.SetEventSink) is the ordered producer: it buffers each
// board's events until the batch barrier collects, then emits the whole
// barrier sorted by (round, board, kind) — and because boards advance the
// same virtual batch per barrier, their market-round counters stay in
// step, so the (round, board, kind) key is nondecreasing across the entire
// log. ReadJSONL consumers may rely on that order for fleet-produced logs
// (TestFleetJSONLEventOrdering pins it, including under bounded skew).
type JSONLSink struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer // non-nil when the sink owns the underlying writer
	err   error     // first write error; subsequent emits are dropped
	onErr func(error)
}

// NewJSONL builds a sink over w. The caller keeps ownership of w; use
// NewJSONLCloser to hand over an owned file.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// NewJSONLCloser builds a sink that closes wc on Close (the `-events file`
// path).
func NewJSONLCloser(wc io.WriteCloser) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(wc), c: wc}
}

// SetOnError registers a callback invoked exactly once, outside the sink's
// lock, when the first write/encode error makes the sink go dark. Without
// one, the first failure is logged once via the standard logger — a sink
// that silently swallows every event after an error turns a full disk into
// a mysteriously truncated evidence trail. The callback may emit (e.g. a
// "violation" event recording the loss) — this sink itself drops the
// re-entrant event because its sticky error is already set.
func (s *JSONLSink) SetOnError(fn func(error)) {
	s.mu.Lock()
	s.onErr = fn
	s.mu.Unlock()
}

// Emit implements Sink. Encoding errors are sticky: the first one is
// retained (see Err), surfaced once through the SetOnError hook (or the
// standard logger), and later events are discarded rather than interleaving
// partial lines.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return
	}
	if b, err := json.Marshal(ev); err != nil {
		s.err = err
	} else if _, err := s.w.Write(b); err != nil {
		s.err = err
	} else {
		s.err = s.w.WriteByte('\n')
	}
	err, notify := s.err, s.onErr
	s.mu.Unlock()
	if err == nil {
		return
	}
	if notify != nil {
		notify(err)
	} else {
		log.Printf("telemetry: jsonl sink disabled after write error: %v", err)
	}
}

// Flush drains the buffer to the underlying writer. A flush failure is
// sticky like a write failure: the sink goes dark and Err reports it.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err reports the first write/encode error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes and, when the sink owns the writer, closes it.
func (s *JSONLSink) Close() error {
	if err := s.Flush(); err != nil {
		if s.c != nil {
			s.c.Close()
		}
		return err
	}
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// ReadJSONL parses an event log written by JSONLSink back into events —
// the read half of the round-trip the event-stream tests and the
// throttle-episode reconstruction (EXPERIMENTS.md) rely on. Blank lines
// are skipped; the first malformed line aborts with its error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return out, err
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}
