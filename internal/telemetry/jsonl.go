package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// JSONLSink writes one JSON object per event to a writer — the headless
// event log behind `ppmsim -events out.jsonl`. Writes are buffered and
// mutex-guarded (emission may come from the worker pool); call Flush (or
// Close) before reading the output.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // non-nil when the sink owns the underlying writer
	err error     // first write error; subsequent emits are dropped
}

// NewJSONL builds a sink over w. The caller keeps ownership of w; use
// NewJSONLCloser to hand over an owned file.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// NewJSONLCloser builds a sink that closes wc on Close (the `-events file`
// path).
func NewJSONLCloser(wc io.WriteCloser) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(wc), c: wc}
}

// Emit implements Sink. Encoding errors are sticky: the first one is
// retained (see Err) and later events are discarded rather than
// interleaving partial lines.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return
	}
	s.err = s.w.WriteByte('\n')
}

// Flush drains the buffer to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Err reports the first write/encode error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes and, when the sink owns the writer, closes it.
func (s *JSONLSink) Close() error {
	if err := s.Flush(); err != nil {
		if s.c != nil {
			s.c.Close()
		}
		return err
	}
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// ReadJSONL parses an event log written by JSONLSink back into events —
// the read half of the round-trip the event-stream tests and the
// throttle-episode reconstruction (EXPERIMENTS.md) rely on. Blank lines
// are skipped; the first malformed line aborts with its error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return out, err
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}
