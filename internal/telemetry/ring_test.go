package telemetry

import (
	"sync"
	"testing"
)

// TestRingOverwriteSemantics pins backpressure: a full ring drops the
// oldest events, keeps the newest, and accounts for every drop.
func TestRingOverwriteSemantics(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		ev := E(KindDVFS)
		ev.Round = i
		r.Emit(ev)
	}
	if got := r.Total(); got != 20 {
		t.Errorf("Total = %d, want 20", got)
	}
	if got := r.Dropped(); got != 12 {
		t.Errorf("Dropped = %d, want 12", got)
	}
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot holds %d events, want 8", len(snap))
	}
	for i, ev := range snap {
		if want := 12 + i; ev.Round != want {
			t.Errorf("snapshot[%d].Round = %d, want %d (oldest-first window)", i, ev.Round, want)
		}
	}
}

func TestRingBelowCapacity(t *testing.T) {
	r := NewRing(8)
	if len(r.Snapshot()) != 0 || r.Dropped() != 0 {
		t.Error("empty ring reports contents")
	}
	for i := 0; i < 3; i++ {
		ev := E(KindMigration)
		ev.Round = i
		r.Emit(ev)
	}
	snap := r.Snapshot()
	if len(snap) != 3 || r.Dropped() != 0 {
		t.Fatalf("snapshot %d events, dropped %d; want 3, 0", len(snap), r.Dropped())
	}
	for i, ev := range snap {
		if ev.Round != i {
			t.Errorf("snapshot[%d].Round = %d, want %d", i, ev.Round, i)
		}
	}
}

// TestRingConcurrentEmitAndSnapshot exercises the ring under the race
// detector the way the live system uses it: market worker goroutines
// emitting while the HTTP handler snapshots.
func TestRingConcurrentEmitAndSnapshot(t *testing.T) {
	r := NewRing(64)
	const writers, perWriter = 4, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ev := E(KindBid)
				ev.Task = w
				ev.Round = i
				r.Emit(ev)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, ev := range r.Snapshot() {
				if ev.Kind != KindBid {
					t.Errorf("torn read: kind %v", ev.Kind)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.Total(); got != writers*perWriter {
		t.Errorf("Total = %d, want %d", got, writers*perWriter)
	}
}
