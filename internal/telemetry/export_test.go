package telemetry

import (
	"strings"
	"testing"
)

func TestExportAndInjectLabel(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A total.").Add(3)
	r.Counter(`b_total{kind="x"}`, "B total.").Add(1)
	r.Gauge("c", "C gauge.").Set(2.5)

	series := r.Export()
	if len(series) != 3 {
		t.Fatalf("exported %d series, want 3", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i-1].Name > series[i].Name {
			t.Fatalf("export not sorted: %q > %q", series[i-1].Name, series[i].Name)
		}
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	if s := byName["a_total"]; s.Value != 3 || !s.Int || s.Type != "counter" || s.Base != "a_total" {
		t.Errorf("a_total exported wrong: %+v", s)
	}
	if s := byName[`b_total{kind="x"}`]; s.Base != "b_total" {
		t.Errorf("labeled base wrong: %+v", s)
	}
	if s := byName["c"]; s.Value != 2.5 || s.Int || s.Type != "gauge" {
		t.Errorf("gauge exported wrong: %+v", s)
	}

	if got := InjectLabel("x", "board", "3"); got != `x{board="3"}` {
		t.Errorf("InjectLabel plain = %s", got)
	}
	if got := InjectLabel(`x{k="v"}`, "board", "3"); got != `x{board="3",k="v"}` {
		t.Errorf("InjectLabel labeled = %s", got)
	}
}

// TestAppendLabeledStacks pins the shared label-injection path: relabeling
// an already-relabeled export must nest, newest key outermost, and the
// merged document must render each label stack as one sample. This is the
// regression test for the fedd case — region stacked on board.
func TestAppendLabeledStacks(t *testing.T) {
	r := NewRegistry()
	r.Counter("ticks_total", "Ticks.").Add(9)
	r.Counter(`evts_total{kind="x"}`, "Events.").Add(2)

	perBoard := AppendLabeled(nil, r.Export(), "board", "3")
	merged := AppendLabeled(nil, perBoard, "region", "eu")

	var b strings.Builder
	if err := WriteSeriesProm(&b, merged); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`ticks_total{region="eu",board="3"} 9`,
		`evts_total{region="eu",board="3",kind="x"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE ticks_total counter") != 1 {
		t.Errorf("TYPE header not deduplicated:\n%s", out)
	}
	// AppendLabeled must not mutate its source slice.
	if perBoard[0].Name != `evts_total{board="3",kind="x"}` {
		t.Errorf("source series mutated: %q", perBoard[0].Name)
	}
}

// TestWriteSeriesProm merges two relabeled registries into one document:
// headers must appear once per base, values per label set.
func TestWriteSeriesProm(t *testing.T) {
	mk := func(v uint64) *Registry {
		r := NewRegistry()
		r.Counter("ticks_total", "Ticks.").Add(v)
		return r
	}
	var merged []Series
	for i, r := range []*Registry{mk(5), mk(7)} {
		for _, s := range r.Export() {
			s.Name = InjectLabel(s.Name, "board", string(rune('0'+i)))
			merged = append(merged, s)
		}
	}
	var b strings.Builder
	if err := WriteSeriesProm(&b, merged); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE ticks_total counter") != 1 {
		t.Errorf("TYPE header not deduplicated:\n%s", out)
	}
	if !strings.Contains(out, `ticks_total{board="0"} 5`) ||
		!strings.Contains(out, `ticks_total{board="1"} 7`) {
		t.Errorf("relabeled samples missing:\n%s", out)
	}
}
