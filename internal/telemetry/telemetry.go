// Package telemetry is the simulator's structured observability layer: a
// low-overhead typed event stream, a counter/gauge registry with a
// Prometheus-style text exposition, and a live state snapshot — the
// evidence every "why did PPM throttle / migrate / re-price?" question is
// answered from (the paper's Figures 4–8 and Tables 1–7 are exactly such
// explanations).
//
// The design contract mirrors internal/check's AttachChecker: telemetry is
// attached to a platform via Platform.AttachTelemetry and costs nothing
// when detached. Every method on *Emitter is nil-receiver safe, so emission
// sites read
//
//	if em.Enabled(telemetry.KindDVFS) { em.Emit(...) }
//
// and a detached run pays one nil check. With telemetry attached, the hot
// paths stay cheap by construction:
//
//   - high-volume per-round kinds (KindPrice, KindBid, KindClearing) are
//     excluded from DefaultKinds and must be opted into (the per-kind mask
//     is checked before the event is even built);
//   - events are flat value structs fanned into sinks without allocation on
//     the emitter side (the ring sink copies by value; only the JSONL sink
//     marshals);
//   - counters are atomics, and hot-path counts (bid clamping) are
//     accumulated in plain per-agent fields and folded into the registry
//     once per market round.
//
// The attached steady-state overhead is measured by cmd/bench and recorded
// in BENCH_scale.json (budget: ≤ 10% vs detached at the 256-cluster scale
// point; see DESIGN.md §8).
package telemetry

import (
	"fmt"
	"sync"

	"pricepower/internal/sim"
)

// Kind is the type tag of one telemetry event.
type Kind uint8

const (
	// KindPrice is a per-core price-discovery result (one per core with
	// tasks per market round — high volume, off by default).
	// Cluster/Core set; Value = discovered price P_c, Prev = base price.
	KindPrice Kind = iota
	// KindBid is a per-task bid revision (one per task per market round —
	// high volume, off by default). Cluster/Core/Task set; Value = revised
	// bid b_t, Prev = previous bid.
	KindBid
	// KindClearing is a per-core supply clearing (high volume, off by
	// default). Cluster/Core set; Value = Σ s_t handed out, Prev = the
	// supply S_c the discovery cleared against.
	KindClearing
	// KindAllowance is the chip agent's allowance update and redistribution
	// (one per market round). Value = global allowance A, Prev = Σ A_v
	// actually distributed; Name = the chip state the update ran under.
	KindAllowance
	// KindThrottle is a chip power-state transition (normal ⇄ threshold ⇄
	// emergency). Name = new state, Class = previous state, Value = the
	// EWMA-smoothed chip power that was classified.
	KindThrottle
	// KindDVFS is a cluster V-F ladder transition. Cluster set; Value = new
	// per-core supply (MHz), Prev = old supply; Class = "up", "down",
	// "drift" (empty cluster decaying to the bottom rung) or "force" (the
	// emergency backstop).
	KindDVFS
	// KindMigration is a platform task migration. Task/Name set; Core = the
	// destination core, Cluster = the destination cluster, Prev = the
	// source core; Value = the modeled migration cost in seconds and
	// Class = its paper cost class: "us" (intra-cluster, §5.1's 54–167 µs
	// band) or "ms" (cross-cluster, the 1.88–3.83 ms band).
	KindMigration
	// KindPowerGate is a cluster power up/down decision. Cluster set;
	// Class = "on" or "off".
	KindPowerGate
	// KindViolation is an invariant-checker breach (internal/check).
	// Name = the invariant identifier, Detail = the human-readable detail.
	KindViolation
	// KindFault marks one edge of a fault-injection window (internal/fault).
	// Name = the fault type ("power-dropout", "dvfs-fail", …), Class =
	// "start" or "end"; Cluster/Core identify the target (-1 = chip-wide),
	// Value = the scenario magnitude. Low volume: two events per fault.
	KindFault
	// KindDrain marks a fleet board drain-lifecycle transition
	// (internal/fleet). Name = "board-N"; Class = "drain", "redrain"
	// (a repeat drain inside the cooldown window), "resume",
	// "manual-drain" or "manual-resume"; Value = tasks evacuated;
	// Prev = the resume cooldown in barriers.
	KindDrain
	// KindDegraded marks the market's sensor-health transitions. Name =
	// "enter" (a power reading failed validation and the market tightened
	// its TDP guard band) or "exit" (enough consecutive trusted readings);
	// Value = the raw reading that triggered the edge, Prev = the last
	// trusted reading the market held instead.
	KindDegraded
	// KindBoard marks a fleet board failure-domain transition
	// (internal/fleet). Name = "board-N"; Class = "crash" (terminal
	// panic detected at a barrier, Value = the barrier), "stall" (the
	// deterministic stall detector quarantined the board, Value =
	// barriers missed), "catch-up" (a stalled board's first real reply,
	// Value = barriers missed), "restart" (supervised resurrection,
	// Value = the new restart epoch), "replace" (a permanently
	// quarantined board's orphans re-placed, Value = the count) or
	// "quarantine" (restarts disabled or exhausted, Value = restarts
	// used). Low volume: a handful of events per failure.
	KindBoard

	numKinds
)

var kindNames = [numKinds]string{
	KindPrice:     "price",
	KindBid:       "bid",
	KindClearing:  "clearing",
	KindAllowance: "allowance",
	KindThrottle:  "throttle",
	KindDVFS:      "dvfs",
	KindMigration: "migration",
	KindPowerGate: "powergate",
	KindViolation: "violation",
	KindFault:     "fault",
	KindDrain:     "drain",
	KindDegraded:  "degraded",
	KindBoard:     "board",
}

// String names the kind (the value used in JSONL logs and metric labels).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalText encodes the kind by name (JSONL events carry "dvfs", not 5).
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText decodes a kind name written by MarshalText.
func (k *Kind) UnmarshalText(b []byte) error {
	for i, n := range kindNames {
		if n == string(b) {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event kind %q", b)
}

// KindSet is a bitmask over event kinds.
type KindSet uint64

// Has reports whether the set contains k.
func (s KindSet) Has(k Kind) bool { return s&(1<<k) != 0 }

// Kinds builds a set from the listed kinds.
func Kinds(ks ...Kind) KindSet {
	var s KindSet
	for _, k := range ks {
		s |= 1 << k
	}
	return s
}

const (
	// AllKinds enables every event kind.
	AllKinds KindSet = 1<<numKinds - 1
	// DefaultKinds is AllKinds minus the high-volume per-round kinds
	// (price, bid, clearing): the set that keeps steady-state overhead
	// inside the ≤ 10% budget and is always safe to leave on.
	DefaultKinds = AllKinds &^ (1<<KindPrice | 1<<KindBid | 1<<KindClearing)
)

// Event is one structured telemetry record: a flat value struct so sinks
// can copy it without allocation. Field meaning is kind-specific and
// documented on the Kind constants; integer id fields are -1 when not
// applicable to the kind.
type Event struct {
	// Time is the virtual time the event was emitted (end-of-tick clock,
	// nanoseconds; 0 for platform-less market harnesses).
	Time sim.Time `json:"t"`
	// Kind tags the event type ("price", "dvfs", …).
	Kind Kind `json:"kind"`
	// Round is the market round the event belongs to (0 without a market).
	Round int `json:"round"`
	// Cluster, Core and Task identify the emitting entity (-1 = n/a).
	Cluster int `json:"cluster"`
	Core    int `json:"core"`
	Task    int `json:"task"`
	// Board identifies the fleet board the event came from; 0 both for
	// board 0 and for single-platform runs, where the field is omitted
	// from JSONL. Stamped by the fleet's per-barrier event fold, which
	// also fixes the cross-board ordering (see JSONLSink).
	Board int `json:"board,omitempty"`
	// Name is a kind-specific label (task name, new chip state, invariant
	// identifier).
	Name string `json:"name,omitempty"`
	// Class is a kind-specific discriminator (migration cost class "us" /
	// "ms", DVFS direction, previous chip state, power-gate direction).
	Class string `json:"class,omitempty"`
	// Detail carries free-form context (invariant-violation detail).
	Detail string `json:"detail,omitempty"`
	// Value and Prev are the kind's primary quantity and its previous /
	// reference value.
	Value float64 `json:"value"`
	Prev  float64 `json:"prev"`
}

// E returns an event of the given kind with the entity ids blanked to -1 —
// the canonical way emission sites build events so "core 0" is never
// conflated with "no core".
func E(k Kind) Event { return Event{Kind: k, Cluster: -1, Core: -1, Task: -1} }

// Sink receives emitted events. Emit may be called concurrently (the
// market's cluster-local phases run on the worker pool), so sinks must be
// safe for concurrent use; they must not retain pointers into the event
// (it is a value copy).
type Sink interface {
	Emit(ev Event)
}

// Emitter is the attachment point components emit through. It stamps
// events with the virtual clock, applies the per-kind enable mask,
// maintains per-kind event counters in the registry, and fans events out
// to its sinks. All methods are nil-receiver safe: a detached component
// holds a nil *Emitter and pays one branch per emission site.
type Emitter struct {
	mask  KindSet
	sinks []Sink
	clock func() sim.Time
	reg   *Registry

	kindCounters [numKinds]*Counter

	stateMu sync.Mutex
	state   State
	pubs    uint64 // state publications (freshness marker for /state)
}

// NewEmitter builds an emitter over the given sinks with DefaultKinds
// enabled. reg may be nil (no counter exposition); with a registry, the
// per-kind event counters pricepower_events_total{kind=…} are registered
// eagerly so /metrics shows every kind at 0 from the start.
func NewEmitter(reg *Registry, sinks ...Sink) *Emitter {
	e := &Emitter{mask: DefaultKinds, sinks: sinks, reg: reg}
	if reg != nil {
		for k := Kind(0); k < numKinds; k++ {
			e.kindCounters[k] = reg.Counter(
				fmt.Sprintf(`pricepower_events_total{kind=%q}`, k.String()),
				"Telemetry events emitted, by kind.")
		}
	}
	return e
}

// SetKinds replaces the enabled-kind mask. Call before the run starts;
// the mask is read without synchronization on the hot path.
func (e *Emitter) SetKinds(s KindSet) {
	if e != nil {
		e.mask = s
	}
}

// EnabledKinds reports the current mask (0 on a nil emitter).
func (e *Emitter) EnabledKinds() KindSet {
	if e == nil {
		return 0
	}
	return e.mask
}

// Enabled reports whether events of kind k are being collected. Emission
// sites guard on this before building an event, so masked kinds cost one
// branch.
func (e *Emitter) Enabled(k Kind) bool { return e != nil && e.mask.Has(k) }

// SetClock installs the virtual-time source used to stamp events
// (Platform.AttachTelemetry sets the engine clock; platform-less market
// harnesses leave it unset and events carry only their round).
func (e *Emitter) SetClock(fn func() sim.Time) {
	if e != nil {
		e.clock = fn
	}
}

// Registry returns the registry the emitter counts into (nil when
// detached or built without one).
func (e *Emitter) Registry() *Registry {
	if e == nil {
		return nil
	}
	return e.reg
}

// Emit stamps and fans out one event. Events of masked kinds are dropped
// (prefer guarding with Enabled so they are never built). Safe for
// concurrent use.
func (e *Emitter) Emit(ev Event) {
	if e == nil || !e.mask.Has(ev.Kind) {
		return
	}
	if ev.Time == 0 && e.clock != nil {
		ev.Time = e.clock()
	}
	if c := e.kindCounters[ev.Kind]; c != nil {
		c.Add(1)
	}
	for _, s := range e.sinks {
		s.Emit(ev)
	}
}
