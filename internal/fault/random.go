package fault

import "pricepower/internal/sim"

// RandomScenario generates a chaos-style fault schedule for a chip of the
// given geometry: 3–6 faults of random types, windows placed inside
// [10, horizon−10) rounds with type-appropriate durations and magnitudes.
// Deterministic in seed (the schedule and every perturbation drawn under
// it), so a chaos run replays bit-identically — the property the chaos
// tests pin through the digest machinery.
//
// Durations are deliberately bounded (a regulator refusing down-steps
// forever would pin power above TDP with no physical recourse): every
// window fits the "transient fault, bounded recovery" contract the
// degradation logic — and the chaos tests' invariant windows — assume.
func RandomScenario(seed uint64, clusters, cores, horizon int) Scenario {
	rng := sim.NewRand(seed)
	sc := Scenario{Seed: mix64(seed ^ 0xfa017)}
	n := 3 + rng.Intn(4)
	if horizon < 60 {
		horizon = 60
	}
	for i := 0; i < n; i++ {
		t := Types[rng.Intn(len(Types))]
		f := Fault{Type: t, Cluster: rng.Intn(clusters)}
		var dur int
		switch t {
		case PowerNoise:
			dur = 10 + rng.Intn(30)
			f.Magnitude = rng.Range(1, 4)
			if rng.Intn(3) == 0 {
				f.Cluster = -1 // chip-level sensor
			}
		case PowerDropout:
			dur = 3 + rng.Intn(8)
		case PowerStuck:
			dur = 3 + rng.Intn(8)
		case DVFSFail:
			dur = 2 + rng.Intn(7)
			f.Magnitude = rng.Range(0.5, 1)
		case DVFSDelay:
			dur = 4 + rng.Intn(10)
			f.Magnitude = rng.Range(50, 200) // ms
		case CoreUnplug:
			dur = 8 + rng.Intn(23)
			f.Core = rng.Intn(cores)
			f.Cluster = -1
		case MigrationBlowup:
			dur = 5 + rng.Intn(16)
			f.Magnitude = rng.Range(4, 20)
		case ThermalNoise:
			dur = 10 + rng.Intn(21)
			f.Magnitude = rng.Range(5, 15)
		case ThermalStuck:
			dur = 3 + rng.Intn(10)
		}
		f.Rounds = dur
		f.Start = 10 + rng.Intn(horizon-20-dur)
		sc.Faults = append(sc.Faults, f)
	}
	return sc
}
