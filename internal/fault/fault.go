// Package fault is the simulator's adversarial substrate: a deterministic,
// seed-driven fault-injection layer that perturbs the signals power
// governors actually consume — power-sensor noise, dropouts and stuck-at
// readings, V-F regulator refusals and latency spikes, transient core
// hot-unplug/replug, migration-cost blowups, and thermal-sensor faults.
//
// The paper's PPM runs inside a kernel against real hardware whose sensors
// glitch and whose cores get hot-unplugged; the clean simulated substrate
// never exercises those paths, so the market's "agents adapt to supply
// shocks" claim (§4) would otherwise go untested. An Injector is built from
// a Scenario (JSON-loadable: `ppmsim -faults scenario.json`) and attached
// via Platform.AttachFaults with the same zero-cost-when-detached
// discipline as the checker and telemetry layers.
//
// Determinism contract: the market's cluster phases run concurrently, so
// every perturbation is a pure stateless hash of (scenario seed, fault
// index, target, virtual time) — never a draw from a shared mutable RNG.
// Same scenario + same seed therefore reproduces bit-identical replay
// digests (see the chaos tests), and the injector is race-free under the
// parallel worker pool by construction. The only injector state mutates in
// BeginTick, which the platform runs sequentially at the start of each
// tick.
package fault

import (
	"encoding/json"
	"fmt"
	"os"

	"pricepower/internal/sim"
)

// Type names one fault class.
type Type string

const (
	// PowerNoise adds uniform ±Magnitude W noise to the target's power
	// readings. Small magnitudes ride inside the market's EWMA and
	// validation band (tolerated); large ones trip the validator.
	PowerNoise Type = "power-noise"
	// PowerDropout makes the target's power sensor read 0 W.
	PowerDropout Type = "power-dropout"
	// PowerStuck freezes the target's power readings at the value sampled
	// when the window opened. Requires an explicit cluster target (a stuck
	// chip-level sensor is Cluster: -1 and only affects the chip sensor).
	PowerStuck Type = "power-stuck"
	// DVFSFail makes the target cluster's regulator refuse a requested V-F
	// step with probability Magnitude (≥ 1: always).
	DVFSFail Type = "dvfs-fail"
	// DVFSDelay turns V-F steps into deferred transitions landing after
	// ~Magnitude ms (jittered ±25%, deterministically).
	DVFSDelay Type = "dvfs-delay"
	// CoreUnplug hot-unplugs core Core for the window (supplies no PUs,
	// executes nothing) and replugs it when the window closes.
	CoreUnplug Type = "core-unplug"
	// MigrationBlowup multiplies modeled migration costs by Magnitude.
	MigrationBlowup Type = "migration-blowup"
	// ThermalNoise adds uniform ±Magnitude °C to thermal-sensor readings.
	ThermalNoise Type = "thermal-noise"
	// ThermalStuck freezes the target cluster's thermal readings at the
	// window-entry temperature.
	ThermalStuck Type = "thermal-stuck"
)

// Types lists every fault class (the chaos schedule draws from it).
var Types = []Type{
	PowerNoise, PowerDropout, PowerStuck,
	DVFSFail, DVFSDelay,
	CoreUnplug, MigrationBlowup,
	ThermalNoise, ThermalStuck,
}

// Fault is one injection window.
type Fault struct {
	// Type selects the fault class.
	Type Type `json:"type"`
	// Cluster targets one cluster; -1 targets the chip-level sensor
	// (power/thermal faults) or every cluster (dvfs faults).
	Cluster int `json:"cluster"`
	// Core is the global core index for core-unplug (ignored otherwise).
	Core int `json:"core,omitempty"`
	// Start is the first active market round; Rounds is the window length
	// in rounds (converted to virtual time via Scenario.RoundMS).
	Start  int `json:"start"`
	Rounds int `json:"rounds"`
	// Magnitude is type-specific: W (power-noise), probability (dvfs-fail),
	// ms (dvfs-delay), cost multiplier (migration-blowup), °C
	// (thermal-noise). Unused by dropout/stuck/unplug.
	Magnitude float64 `json:"magnitude,omitempty"`
}

// Scenario is a complete fault schedule plus the seed all perturbation
// randomness derives from.
type Scenario struct {
	Seed uint64 `json:"seed"`
	// RoundMS converts Start/Rounds windows to virtual time (default 31.7,
	// the paper's bid-round period).
	RoundMS float64 `json:"round_ms,omitempty"`
	Faults  []Fault `json:"faults"`
}

// Period returns the round period the windows are defined over.
func (sc Scenario) Period() sim.Time {
	if sc.RoundMS <= 0 {
		return sim.FromMillis(31.7)
	}
	return sim.FromMillis(sc.RoundMS)
}

// Validate checks the schedule against a chip geometry.
func (sc Scenario) Validate(clusters, cores int) error {
	known := make(map[Type]bool, len(Types)+len(BoardTypes)+len(RegionTypes))
	for _, t := range Types {
		known[t] = true
	}
	for _, t := range BoardTypes {
		known[t] = true
	}
	for _, t := range RegionTypes {
		known[t] = true
	}
	for i, f := range sc.Faults {
		if !known[f.Type] {
			return fmt.Errorf("fault %d: unknown type %q", i, f.Type)
		}
		if f.Start < 0 || f.Rounds <= 0 {
			return fmt.Errorf("fault %d (%s): window start=%d rounds=%d invalid", i, f.Type, f.Start, f.Rounds)
		}
		if IsBoardFault(f.Type) || IsRegionFault(f.Type) {
			// Board and region faults target a whole failure domain, not a
			// cluster or core: their windows are in batch barriers
			// (boards) or federation epochs (regions) and the cluster
			// field is ignored, so there is no geometry to check.
			continue
		}
		if f.Cluster < -1 || f.Cluster >= clusters {
			return fmt.Errorf("fault %d (%s): cluster %d outside [-1,%d)", i, f.Type, f.Cluster, clusters)
		}
		if f.Type == CoreUnplug && (f.Core < 0 || f.Core >= cores) {
			return fmt.Errorf("fault %d (core-unplug): core %d outside [0,%d)", i, f.Core, cores)
		}
	}
	return nil
}

// LoadScenario reads a JSON scenario file (the `ppmsim -faults` format).
func LoadScenario(path string) (Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	var sc Scenario
	if err := json.Unmarshal(b, &sc); err != nil {
		return Scenario{}, fmt.Errorf("fault: %s: %w", path, err)
	}
	return sc, nil
}

// mix64 is the SplitMix64 finalizer (the same mixing sim.Rand is built on).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash3 folds a seed and three keys into one well-mixed word — the
// stateless randomness source behind every perturbation (fixed arity on
// purpose: no variadic slice on the per-reading path).
func hash3(seed, a, b, c uint64) uint64 {
	x := mix64(seed ^ (a+1)*0x9e3779b97f4a7c15)
	x = mix64(x ^ (b+1)*0xbf58476d1ce4e5b9)
	return mix64(x ^ (c+1)*0x94d049bb133111eb)
}

// unit maps a hash word to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }
