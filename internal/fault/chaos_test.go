package fault_test

import (
	"fmt"
	"testing"

	"pricepower/internal/check"
	"pricepower/internal/exp"
	"pricepower/internal/fault"
	"pricepower/internal/hw"
	"pricepower/internal/platform"
	"pricepower/internal/ppm"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/workload"
)

// faultMaxOver relaxes the tdp-settled streak tolerance under injection:
// a refused down-step or stuck sensor can legitimately pin the smoothed
// power above the slack band for the length of a fault window.
const faultMaxOver = 64

// Chaos acceptance: a randomized fault schedule over a Table 6 workload
// mix, at the paper's 4 W TDP cap, must survive the full invariant set —
// and replay bit-identically: same scenario + same seed ⇒ identical
// digests, which is the injector's determinism contract under the
// concurrent cluster phases.
func TestChaosRandomSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs are seconds-long")
	}
	set, ok := workload.SetByName("m2")
	if !ok {
		t.Fatal("workload set m2 missing")
	}
	const dur = 10 * sim.Second // + 5 s warm-up ≈ 470 rounds at 31.7 ms
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := fault.RandomScenario(seed, 2, 5, 450)
			run := func() *check.Trace {
				rec := check.NewRecorder("chaos", seed, "m2/PPM/4W", check.RecorderOptions{})
				_, err := exp.RunSetOpts("PPM", set, 4, dur, exp.RunOptions{
					Check:         true,
					Recorder:      rec,
					Faults:        fault.NewInjector(sc),
					MaxOverRounds: faultMaxOver,
				})
				if err != nil {
					t.Fatalf("chaos run violated invariants: %v", err)
				}
				return rec.Trace()
			}
			t1 := run()
			t2 := run()
			if i, ok := t1.Diff(t2); !ok {
				t.Fatalf("chaos replay diverged at sample %d (market round %d)", i, t1.RoundAt(i))
			}
			if len(t1.Digests) == 0 {
				t.Fatal("chaos run recorded no market samples")
			}
		})
	}
}

// chaosSpec builds a steady looping task: demand PUs on the LITTLE
// micro-architecture at the 30 hb/s target, 2× speedup on big.
func chaosSpec(name string, demand float64) task.Spec {
	return task.Spec{
		Name: name, Priority: 1, MinHR: 27, MaxHR: 33, Loop: true,
		Phases: []task.Phase{{HBCostLittle: demand / 30, SpeedupBig: 2}},
	}
}

// runPPM boots a fixed 3-task mix on a TC2 under an unconstrained PPM
// governor (a stationary workload without the TDP limit cycle settles to a
// true fixed point), runs it under the invariant checker for `total`, and
// returns the platform and governor for post-run inspection.
func runPPM(t *testing.T, inj platform.FaultInjector, total sim.Time) (*platform.Platform, *ppm.Governor) {
	t.Helper()
	p := platform.NewTC2()
	g := ppm.New(ppm.DefaultConfig(0))
	p.SetGovernor(g)
	if inj != nil {
		p.AttachFaults(inj)
	}
	p.AddTask(chaosSpec("t1", 250), 2)
	p.AddTask(chaosSpec("t2", 300), 3)
	p.AddTask(chaosSpec("t3", 900), 4)
	checker := check.New(check.Options{Market: g.Market(), MaxOverRounds: faultMaxOver})
	p.AttachChecker(checker)
	p.Run(total)
	if err := checker.Err(); err != nil {
		t.Fatalf("invariant violation under faults: %v", err)
	}
	return p, g
}

// Single-fault acceptance: each fault class, injected for a bounded window,
// completes without panic or violation and the system settles back to the
// fault-free fixed point — same V-F levels, same gating, same task
// placement census, degraded flag cleared — within the post-window rounds.
func TestSingleFaultSettlesToBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("settle runs are seconds-long")
	}
	const total = 18 * sim.Second // window [160,190) ends ≈6 s in
	basePlat, baseGov := runPPM(t, nil, total)

	faults := []fault.Fault{
		{Type: fault.PowerNoise, Cluster: -1, Start: 160, Rounds: 30, Magnitude: 3},
		{Type: fault.PowerDropout, Cluster: -1, Start: 160, Rounds: 30},
		{Type: fault.PowerStuck, Cluster: 0, Start: 160, Rounds: 30},
		{Type: fault.DVFSFail, Cluster: 1, Start: 160, Rounds: 30, Magnitude: 1},
		{Type: fault.DVFSDelay, Cluster: 0, Start: 160, Rounds: 30, Magnitude: 100},
		{Type: fault.MigrationBlowup, Cluster: -1, Start: 160, Rounds: 30, Magnitude: 10},
		{Type: fault.ThermalNoise, Cluster: 0, Start: 160, Rounds: 30, Magnitude: 10},
		{Type: fault.ThermalStuck, Cluster: 1, Start: 160, Rounds: 30},
	}
	for _, f := range faults {
		f := f
		t.Run(string(f.Type), func(t *testing.T) {
			inj := fault.NewInjector(fault.Scenario{Seed: 9, Faults: []fault.Fault{f}})
			p, g := runPPM(t, inj, total)
			if inj.Activations() != 1 {
				t.Fatalf("fault window activated %d times, want 1", inj.Activations())
			}
			if g.Market().Degraded() {
				t.Error("market still degraded long after the fault window closed")
			}
			if got, want := len(p.Tasks()), len(basePlat.Tasks()); got != want {
				t.Errorf("%d tasks alive, baseline has %d", got, want)
			}
			for i, cl := range p.Chip.Clusters {
				base := basePlat.Chip.Clusters[i]
				if cl.Level() != base.Level() {
					t.Errorf("cluster %d settled at level %d, baseline %d", i, cl.Level(), base.Level())
				}
				if cl.On != base.On {
					t.Errorf("cluster %d gating %v, baseline %v", i, cl.On, base.On)
				}
			}
			if got, want := g.Market().State(), baseGov.Market().State(); got != want {
				t.Errorf("chip agent state %v, baseline %v", got, want)
			}
		})
	}
}

// The degradation machinery must actually engage: a chip-sensor dropout
// flips the market into degraded mode inside the window (observed mid-run,
// not just at the end), holds the last trusted power, and clears after the
// window plus the healthy-streak hysteresis.
func TestSensorDropoutEntersAndExitsDegraded(t *testing.T) {
	p := platform.NewTC2()
	g := ppm.New(ppm.DefaultConfig(0))
	p.SetGovernor(g)
	inj := fault.NewInjector(fault.Scenario{Seed: 2, Faults: []fault.Fault{
		{Type: fault.PowerDropout, Cluster: -1, Start: 60, Rounds: 40},
	}})
	p.AttachFaults(inj)
	p.AddTask(chaosSpec("t1", 250), 2)
	p.AddTask(chaosSpec("t2", 900), 4)

	var midDegraded bool
	var midPower float64
	p.Engine.At(sim.Time(80)*sim.FromMillis(31.7), func(now sim.Time) {
		midDegraded = g.Market().Degraded()
		midPower = g.Market().LastGoodPower()
	})
	p.Run(8 * sim.Second)

	if !midDegraded {
		t.Error("market not degraded mid-dropout")
	}
	if midPower <= 0 {
		t.Errorf("last trusted power %.3f W mid-dropout, want > 0 (last-good hold)", midPower)
	}
	if g.Market().Degraded() {
		t.Error("market still degraded after the window closed")
	}
	if g.Market().SensorRejects() == 0 {
		t.Error("no sensor rejections counted across a 40-round dropout")
	}
}

// Hot-unplug acceptance: tasks stranded on an unplugged core are evacuated
// (none lost, none starving on an offline core), and the core rejoins the
// market cleanly on replug.
func TestCoreUnplugEvacuatesAndRecovers(t *testing.T) {
	inj := fault.NewInjector(fault.Scenario{Seed: 4, Faults: []fault.Fault{
		{Type: fault.CoreUnplug, Cluster: -1, Core: 2, Start: 60, Rounds: 40},
	}})
	p, g := runPPM(t, inj, 10*sim.Second)

	if !p.CoreOnline(2) {
		t.Error("core 2 still offline after the window closed")
	}
	if got := len(p.Tasks()); got != 3 {
		t.Errorf("%d tasks alive, want 3 — a task was lost", got)
	}
	if g.Evacuations() == 0 {
		t.Error("no evacuations recorded for an unplugged occupied core")
	}
	for _, tk := range p.Tasks() {
		if !p.CoreOnline(p.CoreOf(tk)) {
			t.Errorf("task %s left on offline core %d", tk.Name, p.CoreOf(tk))
		}
		if tk.Heartbeats() == 0 {
			t.Errorf("task %s made no progress", tk.Name)
		}
	}
	// The replugged core's supply agent must have rejoined price discovery
	// with sane state (the checker already pinned price-nonneg throughout).
	if _, c := g.Market().CoreByID(2); c == nil {
		t.Fatal("core 2 missing from the market")
	}
}

// The injector must stay race-free and deterministic under the parallel
// worker pool: a ≥16-cluster platform crosses the market's parallel
// threshold, so the concurrent cluster phases call the injector hooks from
// pool workers (run under -race in CI's chaos job).
func TestChaosParallelManyCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("many-cluster chaos run is seconds-long")
	}
	run := func() uint64 {
		chip := hw.MustNewChip(hw.ScaledSpec(16, 2))
		p := platform.New(chip, sim.Millisecond)
		g := ppm.New(ppm.DefaultConfig(0))
		p.SetGovernor(g)
		sc := fault.RandomScenario(21, 16, 32, 180)
		p.AttachFaults(fault.NewInjector(sc))
		for i := 0; i < 16; i++ {
			p.AddTask(chaosSpec(fmt.Sprintf("w%d", i), 150+float64(i)*40), i*2)
		}
		rec := check.NewRecorder("parallel-chaos", 21, "scaled-16x2", check.RecorderOptions{
			Market: g.Market(),
		})
		p.AttachChecker(rec)
		checker := check.New(check.Options{Market: g.Market(), MaxOverRounds: faultMaxOver})
		p.AttachChecker(checker)
		p.Run(6 * sim.Second)
		if err := checker.Err(); err != nil {
			t.Fatalf("parallel chaos violated invariants: %v", err)
		}
		return rec.Trace().Final
	}
	if d1, d2 := run(), run(); d1 != d2 {
		t.Fatalf("parallel chaos runs diverged: %016x != %016x", d1, d2)
	}
}
