package fault

// Region-level faults
//
// The federation layer (internal/federation) treats a whole region — a
// fleet of boards plus its electricity-price trace — as a failure
// domain: a region can suffer an outage window during which its fleet is
// frozen (no barriers step, no new work routes to it) while its resident
// and queued tasks stay accounted. Outages are scheduled with the same
// discipline as every other fault — a window plus a pure stateless hash
// of (scenario seed, fault index, region, epoch) — so a federation run
// with outages replays bit-identically from its seed.
//
// Unlike platform faults (market rounds) and board faults (batch
// barriers), region fault windows are measured in *federation epochs*
// (1-based, the federation's epoch counter): the federation consults the
// schedule once per epoch, before stepping the region's fleet. RoundMS
// does not apply.

const (
	// RegionOutage freezes the region for every epoch inside the window
	// (Start ≤ epoch < Start+Rounds, in federation epochs): its fleet
	// steps no barriers, draws no accounted energy, earns no revenue,
	// and is excluded from submission routing and migration. Work
	// resident or queued in the region stays in the federation ledger
	// the whole time. Magnitude is the per-epoch outage probability
	// (0 or ≥ 1: every epoch in the window).
	RegionOutage Type = "region-outage"
)

// RegionTypes lists the region-level fault classes. Like BoardTypes they
// are deliberately not part of Types: the platform injector and the
// chaos schedule never see them.
var RegionTypes = []Type{RegionOutage}

// IsRegionFault reports whether t is a region-level fault class
// (windows in federation epochs, consumed by internal/federation,
// skipped by the platform Injector and the fleet layer).
func IsRegionFault(t Type) bool { return t == RegionOutage }

// OutageAt reports whether the region is scheduled to be down at the
// given federation epoch: some region-outage window covers the epoch and
// the (seed, fault, region, epoch) hash clears the magnitude gate.
// Pure — the schedule can be consulted from any goroutine.
func (sc Scenario) OutageAt(region, epoch int) bool {
	for i := range sc.Faults {
		f := &sc.Faults[i]
		if f.Type != RegionOutage || epoch < f.Start || epoch >= f.Start+f.Rounds {
			continue
		}
		if f.Magnitude > 0 && f.Magnitude < 1 &&
			unit(hash3(sc.Seed, uint64(i)^0x4e910, uint64(region+1), uint64(epoch))) >= f.Magnitude {
			continue
		}
		return true
	}
	return false
}

// HasRegionFaults reports whether the scenario schedules any
// region-level fault.
func (sc Scenario) HasRegionFaults() bool {
	for i := range sc.Faults {
		if IsRegionFault(sc.Faults[i].Type) {
			return true
		}
	}
	return false
}
