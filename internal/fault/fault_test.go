package fault

import (
	"reflect"
	"testing"

	"pricepower/internal/platform"
	"pricepower/internal/sim"
)

func TestBackoffDeterministicGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 10 * sim.Millisecond, Max: 80 * sim.Millisecond, Factor: 2, Jitter: 0.5, Seed: 7}
	for attempt := 0; attempt < 10; attempt++ {
		d1, d2 := b.Next(attempt), b.Next(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: Next not deterministic: %v != %v", attempt, d1, d2)
		}
		grown := b.grown(attempt)
		if lo := sim.Time(grown * (1 - b.Jitter)); d1 < lo || d1 > sim.Time(grown) {
			t.Errorf("attempt %d: delay %v outside jitter band [%v, %v]", attempt, d1, lo, sim.Time(grown))
		}
		if d1 > b.Max {
			t.Errorf("attempt %d: delay %v above cap %v", attempt, d1, b.Max)
		}
	}
	// The un-jittered schedule grows geometrically until the cap.
	want := []float64{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.grown(i); got != w*float64(sim.Millisecond) {
			t.Errorf("grown(%d) = %v, want %v ms", i, got, w)
		}
	}
}

func TestBackoffDefaultsAndFloor(t *testing.T) {
	b := Backoff{Base: sim.Millisecond} // Factor and Max defaulted
	if got, want := b.grown(1), 2*float64(sim.Millisecond); got != want {
		t.Errorf("default factor: grown(1) = %v, want %v", got, want)
	}
	if got, want := b.grown(100), 32*float64(sim.Millisecond); got != want {
		t.Errorf("default cap: grown(100) = %v, want 32·Base %v", got, want)
	}
	// Full jitter can shrink the delay to zero; the floor keeps it positive
	// so a retry never lands on the same engine event.
	tiny := Backoff{Base: 1, Jitter: 1}
	for attempt := 0; attempt < 8; attempt++ {
		if d := tiny.Next(attempt); d < 1 {
			t.Errorf("attempt %d: delay %v below 1", attempt, d)
		}
	}
}

func TestBackoffNextFromMatchesSeededRNG(t *testing.T) {
	b := Backoff{Base: 10 * sim.Millisecond, Jitter: 0.5}
	r1, r2 := sim.NewRand(99), sim.NewRand(99)
	for attempt := 0; attempt < 6; attempt++ {
		if d1, d2 := b.NextFrom(r1, attempt), b.NextFrom(r2, attempt); d1 != d2 {
			t.Fatalf("attempt %d: NextFrom diverged across equal-seed RNGs: %v != %v", attempt, d1, d2)
		}
	}
}

func TestHashAndUnit(t *testing.T) {
	if hash3(1, 2, 3, 4) != hash3(1, 2, 3, 4) {
		t.Error("hash3 not deterministic")
	}
	if hash3(1, 2, 3, 4) == hash3(1, 2, 3, 5) {
		t.Error("hash3 insensitive to its last argument")
	}
	if hash3(1, 2, 3, 4) == hash3(2, 2, 3, 4) {
		t.Error("hash3 insensitive to the seed")
	}
	for i := uint64(0); i < 1000; i++ {
		if u := unit(mix64(i)); u < 0 || u >= 1 {
			t.Fatalf("unit(mix64(%d)) = %v outside [0,1)", i, u)
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	ok := Scenario{Faults: []Fault{{Type: PowerDropout, Cluster: -1, Start: 5, Rounds: 3}}}
	if err := ok.Validate(2, 5); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
	bad := []Scenario{
		{Faults: []Fault{{Type: "nonsense", Cluster: 0, Start: 0, Rounds: 1}}},
		{Faults: []Fault{{Type: PowerNoise, Cluster: 0, Start: -1, Rounds: 1}}},
		{Faults: []Fault{{Type: PowerNoise, Cluster: 0, Start: 0, Rounds: 0}}},
		{Faults: []Fault{{Type: PowerNoise, Cluster: 2, Start: 0, Rounds: 1}}},
		{Faults: []Fault{{Type: CoreUnplug, Cluster: -1, Core: 5, Start: 0, Rounds: 1}}},
	}
	for i, sc := range bad {
		if err := sc.Validate(2, 5); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

func TestWindowEdges(t *testing.T) {
	sc := Scenario{Faults: []Fault{{Type: PowerDropout, Cluster: -1, Start: 10, Rounds: 5}}}
	in := NewInjector(sc)
	period := sc.Period()
	cases := []struct {
		now  sim.Time
		open bool
	}{
		{9 * period, false},
		{10*period - 1, false},
		{10 * period, true},
		{14 * period, true},
		{15*period - 1, true},
		{15 * period, false},
	}
	for _, c := range cases {
		if got := in.windowOpen(0, c.now); got != c.open {
			t.Errorf("windowOpen at %v = %v, want %v", c.now, got, c.open)
		}
	}
}

// Perturbation hooks are pure functions of (seed, fault, target, time):
// same inputs → same outputs, and each fault class transforms the reading
// the documented way.
func TestInjectorPerturbations(t *testing.T) {
	sc := Scenario{
		Seed: 11,
		Faults: []Fault{
			{Type: PowerNoise, Cluster: -1, Start: 0, Rounds: 100, Magnitude: 2},
			{Type: PowerDropout, Cluster: 1, Start: 0, Rounds: 100},
			{Type: PowerStuck, Cluster: 0, Start: 0, Rounds: 100},
			{Type: DVFSFail, Cluster: 0, Start: 0, Rounds: 100, Magnitude: 1},
			{Type: DVFSDelay, Cluster: 1, Start: 0, Rounds: 100, Magnitude: 100},
			{Type: MigrationBlowup, Cluster: -1, Start: 0, Rounds: 100, Magnitude: 10},
			{Type: ThermalNoise, Cluster: 0, Start: 0, Rounds: 100, Magnitude: 5},
		},
	}
	in := NewInjector(sc)
	for i := range in.active {
		in.active[i] = true
	}
	in.stuck[2] = 3.5 // the power-stuck capture
	now := 100 * sim.Millisecond

	// Chip sensor (cluster -1): noise applies, dropout on cluster 1 also
	// matches the wildcard chip read and zeroes it.
	if got := in.PowerReading(-1, 4, now); got != 0 {
		t.Errorf("chip reading with an active dropout = %v, want 0", got)
	}
	// Cluster 0: the stuck fault sits after the noise fault in the
	// schedule, so it wins — faults apply in schedule order.
	if got := in.PowerReading(0, 4, now); got != 3.5 {
		t.Errorf("cluster 0 reading %v, want the stuck capture 3.5", got)
	}

	refused, delay := in.DVFSOutcome(0, now)
	if !refused {
		t.Error("dvfs-fail with magnitude 1 did not refuse")
	}
	refused, delay = in.DVFSOutcome(1, now)
	if refused {
		t.Error("cluster 1 refused without a dvfs-fail targeting it")
	}
	if lo, hi := sim.FromMillis(75), sim.FromMillis(125); delay < lo || delay > hi {
		t.Errorf("dvfs-delay %v outside ±25%% of 100 ms", delay)
	}

	if got := in.MigrationCost(sim.Millisecond, now); got != 10*sim.Millisecond {
		t.Errorf("migration blowup ×10 gave %v", got)
	}

	tr := in.TempReading(0, 50, now)
	if tr < 45 || tr > 55 {
		t.Errorf("thermal reading %v outside 50 ± 5", tr)
	}
	if in.TempReading(1, 50, now) != 50 {
		t.Error("thermal noise leaked onto untargeted cluster 1")
	}
}

// Noise is a stateless hash of (seed, target, time): bounded by the
// magnitude, reproducible at the same instant, varying across instants.
func TestPowerNoiseDeterministicBoundedVarying(t *testing.T) {
	sc := Scenario{Seed: 5, Faults: []Fault{
		{Type: PowerNoise, Cluster: 0, Start: 0, Rounds: 100, Magnitude: 2},
	}}
	in := NewInjector(sc)
	in.active[0] = true
	now := 50 * sim.Millisecond
	got := in.PowerReading(0, 10, now)
	if got < 8 || got > 12 {
		t.Errorf("noisy reading %v outside 10 ± 2", got)
	}
	if again := in.PowerReading(0, 10, now); again != got {
		t.Errorf("same instant diverged: %v != %v", again, got)
	}
	varies := false
	for i := 1; i <= 8 && !varies; i++ {
		varies = in.PowerReading(0, 10, now+sim.Time(i)*sim.Millisecond) != got
	}
	if !varies {
		t.Error("noise constant across instants")
	}
	if in.PowerReading(1, 10, now) != 10 {
		t.Error("noise leaked onto untargeted cluster 1")
	}
}

// BeginTick toggles hot-unplug on window edges and captures stuck-sensor
// values at entry.
func TestBeginTickUnplugAndStuckCapture(t *testing.T) {
	p := platform.NewTC2()
	sc := Scenario{Faults: []Fault{
		{Type: CoreUnplug, Cluster: -1, Core: 3, Start: 2, Rounds: 3},
		{Type: PowerStuck, Cluster: 0, Start: 2, Rounds: 3},
	}}
	in := NewInjector(sc)
	period := sc.Period()

	in.BeginTick(p, 0)
	if p.Chip.Cores[3].Offline {
		t.Fatal("core offline before the window opened")
	}
	in.BeginTick(p, 2*period)
	if !p.Chip.Cores[3].Offline {
		t.Fatal("core not unplugged at window entry")
	}
	if in.Activations() != 2 || in.ActiveCount() != 2 {
		t.Errorf("activations=%d active=%d, want 2/2", in.Activations(), in.ActiveCount())
	}
	// The stuck reading is frozen at the entry capture from then on.
	if got := in.PowerReading(0, 99, 3*period); got == 99 {
		t.Error("power-stuck window did not override the live reading")
	}
	in.BeginTick(p, 5*period)
	if p.Chip.Cores[3].Offline {
		t.Fatal("core not replugged at window exit")
	}
	if in.ActiveCount() != 0 {
		t.Errorf("windows still active after exit: %d", in.ActiveCount())
	}
}

func TestRandomScenarioDeterministicAndBounded(t *testing.T) {
	const clusters, cores, horizon = 2, 5, 400
	a := RandomScenario(123, clusters, cores, horizon)
	b := RandomScenario(123, clusters, cores, horizon)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RandomScenario not deterministic in its seed")
	}
	if c := RandomScenario(124, clusters, cores, horizon); reflect.DeepEqual(a, c) {
		t.Error("adjacent seeds generated identical schedules")
	}
	for seed := uint64(0); seed < 50; seed++ {
		sc := RandomScenario(seed, clusters, cores, horizon)
		if err := sc.Validate(clusters, cores); err != nil {
			t.Fatalf("seed %d: generated schedule invalid: %v", seed, err)
		}
		if n := len(sc.Faults); n < 3 || n > 6 {
			t.Fatalf("seed %d: %d faults outside [3,6]", seed, n)
		}
		for i, f := range sc.Faults {
			if f.Start < 10 || f.Start+f.Rounds > horizon-10 {
				t.Errorf("seed %d fault %d: window [%d,%d) leaves [10,%d)",
					seed, i, f.Start, f.Start+f.Rounds, horizon-10)
			}
		}
	}
}
