package fault

import (
	"testing"

	"pricepower/internal/sim"
)

func TestRegionOutageWindows(t *testing.T) {
	sc := Scenario{
		Seed: 42,
		Faults: []Fault{
			{Type: RegionOutage, Start: 4, Rounds: 3},
		},
	}
	if !sc.HasRegionFaults() {
		t.Fatal("HasRegionFaults = false for an outage schedule")
	}
	for epoch := 0; epoch < 12; epoch++ {
		want := epoch >= 4 && epoch < 7
		if got := sc.OutageAt(0, epoch); got != want {
			t.Errorf("OutageAt(0, %d) = %v, want %v", epoch, got, want)
		}
	}
}

func TestRegionOutageMagnitudeGate(t *testing.T) {
	sc := Scenario{
		Seed:   7,
		Faults: []Fault{{Type: RegionOutage, Start: 0, Rounds: 10000, Magnitude: 0.25}},
	}
	fired := 0
	for epoch := 0; epoch < 10000; epoch++ {
		if sc.OutageAt(1, epoch) {
			fired++
		}
	}
	// ~25% of 10000 epochs, with wide slack: the gate must act like a
	// probability, not a constant.
	if fired < 1500 || fired > 3500 {
		t.Fatalf("magnitude 0.25 fired %d/10000 epochs", fired)
	}
	// Different regions see decorrelated schedules under the same seed.
	same := 0
	for epoch := 0; epoch < 1000; epoch++ {
		if sc.OutageAt(1, epoch) == sc.OutageAt(2, epoch) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("regions 1 and 2 fired identically across 1000 epochs")
	}
}

func TestRegionFaultValidateAndInjectorSkip(t *testing.T) {
	sc := Scenario{Faults: []Fault{
		{Type: RegionOutage, Start: 5, Rounds: 2},
	}}
	// Region faults validate against any geometry: cluster/core are ignored.
	if err := sc.Validate(2, 5); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := Scenario{Faults: []Fault{{Type: RegionOutage, Start: 1, Rounds: 0}}}
	if err := bad.Validate(2, 5); err == nil {
		t.Fatal("Validate accepted a zero-length window")
	}
	// The platform injector never opens a window for a region fault.
	in := NewInjector(sc)
	for now := 0; now < 1000; now++ {
		in.BeginTick(nil, sc.Period()*sim.Time(now))
	}
	if in.Activations() != 0 || in.ActiveCount() != 0 {
		t.Fatalf("injector activated region faults: activations=%d active=%d",
			in.Activations(), in.ActiveCount())
	}
}

func TestIsRegionFault(t *testing.T) {
	for _, ty := range RegionTypes {
		if !IsRegionFault(ty) {
			t.Errorf("IsRegionFault(%s) = false", ty)
		}
	}
	for _, ty := range append(append([]Type(nil), Types...), BoardTypes...) {
		if IsRegionFault(ty) {
			t.Errorf("IsRegionFault(%s) = true for a non-region fault", ty)
		}
	}
}
