package fault

import "pricepower/internal/sim"

// Backoff computes bounded exponential retry delays with deterministic
// jitter — the governor-side half of graceful degradation: a V-F request
// the (injected) regulator refused is retried at Base, then Base·Factor,
// …, capped at Max, each delay shortened by a random fraction up to Jitter
// so a fleet of clusters backing off together doesn't re-converge on the
// same round (the classic thundering-herd decorrelation).
//
// Determinism: Next derives its jitter from a stateless hash of (Seed,
// attempt), so the same run replays the same delays even when callers sit
// on the market's concurrent cluster phases; NextFrom draws from an
// explicit seeded RNG instead for sequential callers that already own one.
type Backoff struct {
	// Base is the first retry delay (required, > 0).
	Base sim.Time
	// Max caps the grown delay (default: 32·Base).
	Max sim.Time
	// Factor is the per-attempt growth (default 2).
	Factor float64
	// Jitter is the fraction of each delay randomized away, in [0,1]
	// (0 = none): the delay is uniform in [(1−Jitter)·d, d].
	Jitter float64
	// Seed decorrelates independent backoff instances (e.g. per cluster).
	Seed uint64
}

// grown returns the un-jittered delay for a 0-based attempt index.
func (b Backoff) grown(attempt int) float64 {
	f := b.Factor
	if f <= 1 {
		f = 2
	}
	max := b.Max
	if max <= 0 {
		max = 32 * b.Base
	}
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= f
		if d >= float64(max) {
			return float64(max)
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	return d
}

// jittered applies the jitter fraction u ∈ [0,1) to a grown delay.
func (b Backoff) jittered(d, u float64) sim.Time {
	if b.Jitter > 0 {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		d *= 1 - j*u
	}
	if d < 1 {
		d = 1
	}
	return sim.Time(d)
}

// Next returns the delay before retry attempt (0-based), deterministic in
// (Seed, attempt).
func (b Backoff) Next(attempt int) sim.Time {
	return b.jittered(b.grown(attempt), unit(hash3(b.Seed, 0xb0ff, uint64(attempt), 0)))
}

// NextFrom is Next with the jitter drawn from an explicit seeded RNG —
// for sequential callers threading one run-wide sim.Rand.
func (b Backoff) NextFrom(rng *sim.Rand, attempt int) sim.Time {
	return b.jittered(b.grown(attempt), rng.Float64())
}
