package fault

import (
	"testing"

	"pricepower/internal/sim"
)

func TestBoardFaultWindows(t *testing.T) {
	sc := Scenario{
		Seed: 42,
		Faults: []Fault{
			{Type: BoardCrash, Start: 6, Rounds: 1},
			{Type: BoardStall, Start: 3, Rounds: 4},
		},
	}
	if !sc.HasBoardFaults() {
		t.Fatal("HasBoardFaults = false for a crash+stall schedule")
	}
	for barrier := 0; barrier < 12; barrier++ {
		wantCrash := barrier == 6
		wantStall := barrier >= 3 && barrier < 7
		if got := sc.CrashesAt(0, barrier); got != wantCrash {
			t.Errorf("CrashesAt(0, %d) = %v, want %v", barrier, got, wantCrash)
		}
		if got := sc.StallsAt(0, barrier); got != wantStall {
			t.Errorf("StallsAt(0, %d) = %v, want %v", barrier, got, wantStall)
		}
	}
}

func TestBoardFaultMagnitudeGate(t *testing.T) {
	sc := Scenario{
		Seed:   7,
		Faults: []Fault{{Type: BoardCrash, Start: 0, Rounds: 10000, Magnitude: 0.25}},
	}
	fired := 0
	for barrier := 0; barrier < 10000; barrier++ {
		if sc.CrashesAt(1, barrier) {
			fired++
		}
	}
	// ~25% of 10000 barriers, with wide slack: the gate must act like a
	// probability, not a constant.
	if fired < 1500 || fired > 3500 {
		t.Fatalf("magnitude 0.25 fired %d/10000 barriers", fired)
	}
	// Determinism: the schedule is a pure hash, so a second sweep agrees
	// barrier for barrier.
	for barrier := 0; barrier < 100; barrier++ {
		if sc.CrashesAt(1, barrier) != sc.CrashesAt(1, barrier) {
			t.Fatalf("CrashesAt not deterministic at barrier %d", barrier)
		}
	}
	// Different boards see decorrelated schedules under the same seed.
	same := 0
	for barrier := 0; barrier < 1000; barrier++ {
		if sc.CrashesAt(1, barrier) == sc.CrashesAt(2, barrier) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("boards 1 and 2 fired identically across 1000 barriers")
	}
}

func TestBoardFaultValidateAndInjectorSkip(t *testing.T) {
	sc := Scenario{Faults: []Fault{
		{Type: BoardCrash, Start: 5, Rounds: 1},
		{Type: BoardStall, Start: 2, Rounds: 3},
	}}
	// Board faults validate against any geometry: cluster/core are ignored.
	if err := sc.Validate(2, 5); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := Scenario{Faults: []Fault{{Type: BoardCrash, Start: -1, Rounds: 1}}}
	if err := bad.Validate(2, 5); err == nil {
		t.Fatal("Validate accepted a negative window start")
	}
	// The platform injector never opens a window for a board fault.
	in := NewInjector(sc)
	for now := 0; now < 1000; now++ {
		in.BeginTick(nil, sc.Period()*sim.Time(now))
	}
	if in.Activations() != 0 || in.ActiveCount() != 0 {
		t.Fatalf("injector activated board faults: activations=%d active=%d",
			in.Activations(), in.ActiveCount())
	}
}

func TestIsBoardFault(t *testing.T) {
	for _, ty := range BoardTypes {
		if !IsBoardFault(ty) {
			t.Errorf("IsBoardFault(%s) = false", ty)
		}
	}
	for _, ty := range Types {
		if IsBoardFault(ty) {
			t.Errorf("IsBoardFault(%s) = true for a platform fault", ty)
		}
	}
}
