package fault

// Board-level faults
//
// The fleet layer (internal/fleet) treats a whole board as a failure
// domain: a board can crash (its goroutine panics mid-step) or stall
// (it withholds step replies for a window of barriers). Both are
// scheduled here with the same discipline as every sensor fault — a
// window plus a pure stateless hash of (scenario seed, fault index,
// board, barrier) — so a crashing, stalling fleet run replays
// bit-identically from its seed.
//
// Unlike the platform faults, board fault windows are measured in fleet
// *batch barriers* (1-based, the fleet's batch counter), not market
// rounds: the board consults the schedule once per step command, never
// from the market's concurrent phases. RoundMS does not apply to them.

const (
	// BoardCrash panics the board goroutine at the start of the step for
	// any barrier inside the window (Start ≤ barrier < Start+Rounds, in
	// batch barriers). The fleet recovers the panic into a terminal
	// crashed reply and the supervisor takes over. Magnitude is the
	// per-barrier firing probability (0 or ≥ 1: every barrier in the
	// window fires).
	BoardCrash Type = "board-crash"
	// BoardStall makes the board withhold its real step reply for every
	// barrier inside the window: the board answers with a stall sentinel
	// and defers the batch, catching up at the first barrier past the
	// window. Magnitude is the per-barrier stall probability (0 or ≥ 1:
	// always).
	BoardStall Type = "board-stall"
)

// BoardTypes lists the board-level fault classes. They are deliberately
// not part of Types: the chaos schedule (RandomScenario) draws platform
// faults only, and board faults target the fleet layer, which the
// single-platform chaos tests never construct.
var BoardTypes = []Type{BoardCrash, BoardStall}

// IsBoardFault reports whether t is a board-level fault class (windows
// in batch barriers, consumed by internal/fleet, skipped by the
// platform Injector).
func IsBoardFault(t Type) bool { return t == BoardCrash || t == BoardStall }

// boardFaultAt reports whether a fault of class t fires on the given
// board at the given barrier: some window of that class covers the
// barrier, and the (seed, fault, board, barrier) hash clears the
// magnitude gate. Pure — the schedule can be consulted from any
// goroutine without synchronization.
func (sc Scenario) boardFaultAt(t Type, board, barrier int) bool {
	for i := range sc.Faults {
		f := &sc.Faults[i]
		if f.Type != t || barrier < f.Start || barrier >= f.Start+f.Rounds {
			continue
		}
		if f.Magnitude > 0 && f.Magnitude < 1 &&
			unit(hash3(sc.Seed, uint64(i)^0xb0a2d, uint64(board+1), uint64(barrier))) >= f.Magnitude {
			continue
		}
		return true
	}
	return false
}

// CrashesAt reports whether the board's step at the given barrier is
// scheduled to crash.
func (sc Scenario) CrashesAt(board, barrier int) bool {
	return sc.boardFaultAt(BoardCrash, board, barrier)
}

// StallsAt reports whether the board withholds its step reply at the
// given barrier.
func (sc Scenario) StallsAt(board, barrier int) bool {
	return sc.boardFaultAt(BoardStall, board, barrier)
}

// HasBoardFaults reports whether the scenario schedules any board-level
// fault (the fleet only consults the schedule per step when it does).
func (sc Scenario) HasBoardFaults() bool {
	for i := range sc.Faults {
		if IsBoardFault(sc.Faults[i].Type) {
			return true
		}
	}
	return false
}
