package fault

import (
	"fmt"

	"pricepower/internal/hw"
	"pricepower/internal/platform"
	"pricepower/internal/sim"
	"pricepower/internal/telemetry"
)

// Injector implements platform.FaultInjector over a Scenario. All mutable
// state (window edges, stuck-sensor captures) is written only in BeginTick,
// which the platform runs sequentially at the start of each tick; the
// reading/actuation hooks called from the market's concurrent cluster
// phases are pure reads plus stateless hashes, so the injector is race-free
// and bit-reproducible under the parallel worker pool.
type Injector struct {
	sc     Scenario
	period sim.Time

	active []bool    // per fault: window currently open
	stuck  []float64 // per fault: value captured at window entry

	activations int // rising edges seen so far
}

// NewInjector builds an injector for a scenario. Validate the scenario
// against the chip geometry first (ppmsim does); out-of-range targets are
// skipped defensively rather than panicking mid-run.
func NewInjector(sc Scenario) *Injector {
	return &Injector{
		sc:     sc,
		period: sc.Period(),
		active: make([]bool, len(sc.Faults)),
		stuck:  make([]float64, len(sc.Faults)),
	}
}

// Scenario returns the schedule the injector runs.
func (in *Injector) Scenario() Scenario { return in.sc }

// Activations reports how many fault windows have opened so far.
func (in *Injector) Activations() int { return in.activations }

// ActiveCount reports how many fault windows are currently open.
func (in *Injector) ActiveCount() int {
	n := 0
	for _, a := range in.active {
		if a {
			n++
		}
	}
	return n
}

// windowOpen reports whether fault i's window covers the given time.
func (in *Injector) windowOpen(i int, now sim.Time) bool {
	f := &in.sc.Faults[i]
	start := sim.Time(f.Start) * in.period
	return now >= start && now < start+sim.Time(f.Rounds)*in.period
}

// BeginTick implements platform.FaultInjector: it applies window edges —
// hot-unplug toggles, stuck-sensor captures — and emits one "fault" event
// per edge. Runs sequentially before the tick's scheduling step.
func (in *Injector) BeginTick(p *platform.Platform, now sim.Time) {
	for i := range in.sc.Faults {
		if IsBoardFault(in.sc.Faults[i].Type) || IsRegionFault(in.sc.Faults[i].Type) {
			// Board-level faults (crash / stall) are consumed by the fleet
			// layer per batch barrier, region-level faults (outage) by the
			// federation per epoch; they have no platform window, emit no
			// edge events here, and never count as injector activations.
			continue
		}
		open := in.windowOpen(i, now)
		if open == in.active[i] {
			continue
		}
		f := &in.sc.Faults[i]
		in.active[i] = open
		if open {
			in.activations++
			switch f.Type {
			case PowerStuck:
				if f.Cluster >= 0 && f.Cluster < len(p.Chip.Clusters) {
					in.stuck[i] = hw.ClusterPower(p.Chip.Clusters[f.Cluster])
				} else {
					in.stuck[i] = p.Power()
				}
			case ThermalStuck:
				if th := p.Thermals(); len(th) > 0 && f.Cluster >= 0 && f.Cluster < len(p.Chip.Clusters) {
					in.stuck[i] = th[0].Temp(f.Cluster)
				}
			case CoreUnplug:
				if f.Core >= 0 && f.Core < len(p.Chip.Cores) {
					p.Chip.Cores[f.Core].Offline = true
				}
			}
		} else if f.Type == CoreUnplug && f.Core >= 0 && f.Core < len(p.Chip.Cores) {
			p.Chip.Cores[f.Core].Offline = false
		}
		in.emitEdge(p.Telemetry(), f, now, open)
	}
}

func (in *Injector) emitEdge(em *telemetry.Emitter, f *Fault, now sim.Time, open bool) {
	if !em.Enabled(telemetry.KindFault) {
		return
	}
	ev := telemetry.E(telemetry.KindFault)
	ev.Round = int(now / in.period)
	ev.Cluster = f.Cluster
	if f.Type == CoreUnplug {
		ev.Core = f.Core
	}
	ev.Name = string(f.Type)
	ev.Class = "start"
	if !open {
		ev.Class = "end"
	}
	ev.Value = f.Magnitude
	em.Emit(ev)
}

// targets reports whether a fault aimed at f.Cluster applies to a reading
// (or actuation) on the given cluster; -1 on either side is the wildcard
// (chip-level sensor / every cluster).
func targets(f *Fault, cluster int) bool {
	return f.Cluster == cluster || f.Cluster < 0 || cluster < 0
}

// PowerReading implements platform.FaultInjector. cluster is -1 for the
// chip-level sensor. Pure: called concurrently from the market's phases.
func (in *Injector) PowerReading(cluster int, w float64, now sim.Time) float64 {
	for i := range in.sc.Faults {
		if !in.active[i] {
			continue
		}
		f := &in.sc.Faults[i]
		switch f.Type {
		case PowerNoise:
			if targets(f, cluster) {
				u := unit(hash3(in.sc.Seed, uint64(i), uint64(cluster+2), uint64(now)))
				w += (2*u - 1) * f.Magnitude
			}
		case PowerDropout:
			if targets(f, cluster) {
				w = 0
			}
		case PowerStuck:
			if f.Cluster == cluster { // exact target: captured value is per-sensor
				w = in.stuck[i]
			}
		}
	}
	return w
}

// TempReading implements platform.FaultInjector.
func (in *Injector) TempReading(cluster int, t float64, now sim.Time) float64 {
	for i := range in.sc.Faults {
		if !in.active[i] {
			continue
		}
		f := &in.sc.Faults[i]
		switch f.Type {
		case ThermalNoise:
			if targets(f, cluster) {
				u := unit(hash3(in.sc.Seed, uint64(i)^0x5bf0, uint64(cluster+2), uint64(now)))
				t += (2*u - 1) * f.Magnitude
			}
		case ThermalStuck:
			if f.Cluster == cluster {
				t = in.stuck[i]
			}
		}
	}
	return t
}

// DVFSOutcome implements platform.FaultInjector: the fate of a requested
// V-F step on a cluster. Refusals win over delays when both are active.
func (in *Injector) DVFSOutcome(cluster int, now sim.Time) (refused bool, delay sim.Time) {
	for i := range in.sc.Faults {
		if !in.active[i] {
			continue
		}
		f := &in.sc.Faults[i]
		if !targets(f, cluster) {
			continue
		}
		switch f.Type {
		case DVFSFail:
			if f.Magnitude >= 1 || unit(hash3(in.sc.Seed, uint64(i)^0xd7f5, uint64(cluster+2), uint64(now))) < f.Magnitude {
				return true, 0
			}
		case DVFSDelay:
			u := unit(hash3(in.sc.Seed, uint64(i)^0x11de, uint64(cluster+2), uint64(now)))
			d := sim.FromMillis(f.Magnitude * (0.75 + 0.5*u))
			if d > delay {
				delay = d
			}
		}
	}
	return false, delay
}

// MigrationCost implements platform.FaultInjector.
func (in *Injector) MigrationCost(cost sim.Time, now sim.Time) sim.Time {
	for i := range in.sc.Faults {
		if in.active[i] && in.sc.Faults[i].Type == MigrationBlowup && in.sc.Faults[i].Magnitude > 1 {
			cost = sim.Time(float64(cost) * in.sc.Faults[i].Magnitude)
		}
	}
	return cost
}

// String summarizes the scenario (the ppmsim run banner).
func (in *Injector) String() string {
	return fmt.Sprintf("fault scenario: %d fault(s), seed %d, round %v",
		len(in.sc.Faults), in.sc.Seed, in.period)
}

var _ platform.FaultInjector = (*Injector)(nil)
