package fleet

import (
	"math"
	"runtime"
	"sync"
	"time"

	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/telemetry/trace"
)

// DefaultStealTheta is the default work-steal band: a shard hands a
// submission to the cross-shard steal pass when its own cheapest
// admissible board is more than (1+θ)× the barrier-start global price
// floor. θ = 1 means "tolerate up to 2× the fleet's cheapest board before
// going cross-shard" — wide enough that the homogeneous-fleet common case
// (clustered prices) routes almost entirely shard-locally, tight enough
// that a shard whose boards are all degraded or priced out spills its work
// to the rest of the fleet instead of queueing it.
const DefaultStealTheta = 1.0

// Submission is a routable task: the spec plus its routing-time demand
// estimate. The estimate is a pure function of the spec (EstimateDemandPU),
// so the fleet computes it once at admission — instead of re-deriving it
// on every barrier retry as the unsharded path did — and the dispatcher's
// per-barrier hot loop never touches the workload registry.
type Submission struct {
	Spec task.Spec
	Est  float64 // estimated LITTLE-cluster demand in PU (EstimateDemandPU)
	// Trace is the submission's causal trace ID (0 = untraced). Assigned
	// at admission from the fleet's trace seed and the admission position,
	// so a replay of the same inputs reproduces the same IDs; requeued
	// evacuations keep their original ID across boards.
	Trace trace.ID
	// EnqueuedAt is the virtual time the submission (re-)entered the
	// admission queue — the queue-wait histogram's span start.
	EnqueuedAt sim.Time
}

// NewSubmission wraps a spec with its demand estimate.
func NewSubmission(spec task.Spec) Submission {
	return Submission{Spec: spec, Est: EstimateDemandPU(spec)}
}

// RoutedBatch is one barrier's routing decision in index form. Instead of
// materializing per-board spec slices (copying every routed spec, the
// dominant cost of the unsharded Route at large batches), the sharded
// dispatcher returns pick indices: the caller hands each board the shared
// read-only submission slice plus that board's index list.
//
// Memory contract: Picks, PerBoard (the outer slice and AddDemandPU /
// Unrouted) are dispatcher scratch, valid only until the next Route call.
// The int32 arrays backing the PerBoard entries are freshly allocated per
// call and may be retained (boards hold them across in-flight barriers
// under bounded skew).
type RoutedBatch struct {
	// Picks maps submission index → board ID (-1 = unrouted).
	Picks []int32
	// PerBoard maps board ID → its submissions' indices in arrival order
	// (nil for boards that got nothing, nil overall for an empty batch).
	PerBoard [][]int32
	// AddDemandPU is the estimated demand routed to each board this
	// barrier — the sum of its picks' Est fields.
	AddDemandPU []float64
	// Unrouted lists the submissions that found no admissible board
	// anywhere, in arrival order.
	Unrouted []int32
	// Stolen flags, per submission, whether the pick came from the
	// cross-shard steal pass rather than the home lane (always false with
	// one shard). The tracing layer stamps this as the queue span's class
	// so "where did the latency go" distinguishes home-lane routing from
	// overflow placement. Dispatcher scratch, like Picks.
	Stolen []bool
	// Routed counts the submissions that got a board.
	Routed int
}

// projEntry is the sharded dispatcher's projection of one board: just the
// fields a routing decision reads, pointer-free so the per-barrier
// projection build copies 32 bytes per board with no GC write barriers
// (Snapshot carries a string and a slice, so copying full snapshots costs
// a write-barrier per board on the hot path). live is the
// projection-invariant part of Admissible — draining/degraded/power —
// and demand < supply is the part demand projection can flip.
type projEntry struct {
	price  float64
	demand float64
	supply float64 // MaxSupplyPU
	live   bool    // !Crashed && !Stalled && !Draining && !Degraded && power headroom
}

func (e *projEntry) admissible() bool { return e.live && e.demand < e.supply }

// project mirrors the package-level project() for the decision-relevant
// fields: charge the estimated demand and bump the projected price
// proportionally (pseudo-price when the market is idle).
func (e *projEntry) project(est float64) {
	e.demand += est
	frac := est / e.supply
	if e.price > 0 {
		e.price *= 1 + frac
	} else {
		e.price = frac
	}
}

// shardIndex is priceIndex over the compact projection: the same
// (price, board ID)-ordered indexed min-heap and the same admission /
// eviction rules, with int32 slots and the flat price cache, so a lane's
// sift touches a handful of contiguous words. sink replaces fix: within a
// barrier projection only raises prices, so restoring order after a bump
// never needs an up-sift.
type shardIndex struct {
	ents  []projEntry
	price []float64 // board ID → cached projected price (heap key)
	heap  []int32   // board IDs ordered by (price[i], i)
	pos   []int32   // board ID → heap slot, -1 when evicted/inadmissible
}

func (x *shardIndex) reset(ents []projEntry, lo, hi int) {
	x.ents = ents
	x.heap = x.heap[:0]
	if cap(x.pos) < len(ents) {
		x.pos = make([]int32, len(ents))
		x.price = make([]float64, len(ents))
	}
	x.pos = x.pos[:len(ents)]
	x.price = x.price[:len(ents)]
	for i := lo; i < hi; i++ {
		x.pos[i] = -1
		x.price[i] = ents[i].price
		if ents[i].admissible() {
			x.pos[i] = int32(len(x.heap))
			x.heap = append(x.heap, int32(i))
		}
	}
	for s := len(x.heap)/2 - 1; s >= 0; s-- {
		x.down(s)
	}
}

func (x *shardIndex) less(a, b int) bool {
	i, j := x.heap[a], x.heap[b]
	if x.price[i] != x.price[j] {
		return x.price[i] < x.price[j]
	}
	return i < j
}

func (x *shardIndex) swap(a, b int) {
	x.heap[a], x.heap[b] = x.heap[b], x.heap[a]
	x.pos[x.heap[a]] = int32(a)
	x.pos[x.heap[b]] = int32(b)
}

func (x *shardIndex) up(s int) {
	for s > 0 {
		parent := (s - 1) / 2
		if !x.less(s, parent) {
			return
		}
		x.swap(s, parent)
		s = parent
	}
}

func (x *shardIndex) down(s int) {
	n := len(x.heap)
	for {
		l := 2*s + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && x.less(r, l) {
			min = r
		}
		if !x.less(min, s) {
			return
		}
		x.swap(s, min)
		s = min
	}
}

func (x *shardIndex) min() int {
	if len(x.heap) == 0 {
		return -1
	}
	return int(x.heap[0])
}

func (x *shardIndex) contains(i int) bool {
	return i >= 0 && i < len(x.pos) && x.pos[i] >= 0
}

// sink restores heap order after ents[i].price rose. O(log B).
func (x *shardIndex) sink(i int) {
	s := x.pos[i]
	if s < 0 {
		return
	}
	x.price[i] = x.ents[i].price
	x.down(int(s))
}

// remove evicts board i — it projected past its supply ceiling.
func (x *shardIndex) remove(i int) {
	s := int(x.pos[i])
	if s < 0 {
		return
	}
	last := len(x.heap) - 1
	if s != last {
		x.swap(s, last)
	}
	x.heap = x.heap[:last]
	x.pos[i] = -1
	if s != last {
		x.up(s)
		x.down(s)
	}
}

// lane is one shard: a contiguous board range with its own price-ordered
// admissibility index and its own sticky-choice state. Lanes touch only
// their board range (and their own submissions) during the local phase, so
// they can run on separate goroutines with no synchronization beyond the
// join barrier.
type lane struct {
	lo, hi   int // board range [lo, hi)
	idx      shardIndex
	last     int // sticky pick, -1 before any pick (persists across barriers)
	mine     []int32
	deferred []int32
	ns       int64 // local-phase wall nanos (Timing only)
}

// ShardedDispatcher routes like Dispatcher but over S disjoint board
// shards: submissions hash to a home shard by a seeded, barrier-stable key
// (position in the batch — so routing replays exactly from the recorded
// arrival order), each shard routes its own submissions against its own
// price index, and a sequential steal pass re-routes submissions whose
// home shard is exhausted or priced more than (1+StealTheta)× above the
// barrier-start global floor. Steals resolve in arrival order to the
// global (price, board ID) minimum across the per-shard heap minima, so
// the result is independent of goroutine interleaving — the parallel and
// sequential lane phases are decision-identical by construction (lanes
// write disjoint state) and pinned by tests.
//
// With Shards = 1 the steal band is disabled and routing is exactly the
// single-index Dispatcher / RouteLinear decision sequence (same sticky
// hysteresis, same (price, board ID) tie-break, same unrouted tail);
// TestPropertyShardedMatchesLinearOracle pins this, and pins S > 1
// against the per-shard RouteLinear composition plus the steal oracle.
type ShardedDispatcher struct {
	// Hysteresis is the sticky-choice band, as in Dispatcher.
	Hysteresis float64
	// StealTheta is the steal band vs. the frozen barrier-start global
	// price floor; negative disables price-based stealing (shards then
	// defer to the steal pass only on exhaustion).
	StealTheta float64
	// Timing records per-lane and steal-pass wall nanos for each Route
	// call (LaneTimings) — benchmark instrumentation, off by default.
	Timing bool

	seed     uint64
	shards   int
	parallel bool

	boards int // board count the lanes were built for
	homeN  int // batch size the lanes' mine lists were hashed for (-1 = stale)
	lanes  []lane
	owner  []int32 // board ID → lane

	proj     []projEntry
	picks    []int32
	stolen   []bool
	counts   []int32
	addDPU   []float64
	perBoard [][]int32
	unrouted []int32
	cursors  []int
	stealNS  int64
}

// NewShardedDispatcher builds a dispatcher over shards price-index shards.
// The seed fixes the submission→shard hash; the fleet derives it from the
// fleet seed so routing is part of the replayable timeline. Lane-local
// routing runs on parallel goroutines when the host has more than one CPU
// (results are identical either way; SetParallel forces it for tests).
func NewShardedDispatcher(shards int, hysteresis float64, seed uint64) *ShardedDispatcher {
	if shards < 1 {
		shards = 1
	}
	return &ShardedDispatcher{
		Hysteresis: hysteresis,
		StealTheta: DefaultStealTheta,
		seed:       seed,
		shards:     shards,
		parallel:   runtime.GOMAXPROCS(0) > 1 && shards > 1,
	}
}

// SetParallel forces lane-local routing on or off goroutines regardless of
// GOMAXPROCS. Decisions are identical either way; the interleaving stress
// test runs both and asserts it.
func (d *ShardedDispatcher) SetParallel(p bool) { d.parallel = p }

// Shards reports the configured shard count (lanes clamp to the board
// count per barrier).
func (d *ShardedDispatcher) Shards() int { return d.shards }

// LaneTimings returns the last Route's per-lane local-phase nanos and the
// steal-pass nanos (valid only when Timing is set). The critical path of a
// fully parallel barrier is max(lanes) + steal + coordinator work.
func (d *ShardedDispatcher) LaneTimings() (lanes []int64, steal int64) {
	out := make([]int64, len(d.lanes))
	for i := range d.lanes {
		out[i] = d.lanes[i].ns
	}
	return out, d.stealNS
}

// shardHome is the seeded, barrier-stable submission→shard key: a pure
// hash of (seed, position in batch). Position — not spec content — keeps
// the hash balanced under repeated identical specs and replays exactly
// from the recorded arrival order.
func shardHome(seed uint64, si, shards int) int {
	return int(sim.DeriveSeed(seed, uint64(si)) % uint64(shards))
}

// ensure (re)builds lanes and scratch for a B-board fleet. Lane shape only
// changes when the board count does; sticky state survives across barriers
// otherwise.
func (d *ShardedDispatcher) ensure(B, nsubs int) int {
	S := d.shards
	if S > B {
		S = B
	}
	if S < 1 {
		S = 1
	}
	if B != d.boards || S != len(d.lanes) {
		d.boards = B
		d.homeN = -1
		d.lanes = make([]lane, S)
		d.owner = make([]int32, B)
		base, rem := B/S, B%S
		lo := 0
		for s := range d.lanes {
			size := base
			if s < rem {
				size++
			}
			d.lanes[s] = lane{lo: lo, hi: lo + size, last: -1}
			for i := lo; i < lo+size; i++ {
				d.owner[i] = int32(s)
			}
			lo += size
		}
	}
	if cap(d.proj) < B {
		d.proj = make([]projEntry, B)
		d.counts = make([]int32, B)
		d.addDPU = make([]float64, B)
		d.perBoard = make([][]int32, B)
	}
	if cap(d.picks) < nsubs {
		d.picks = make([]int32, nsubs)
		d.stolen = make([]bool, nsubs)
	}
	if cap(d.cursors) < S {
		d.cursors = make([]int, S)
	}
	return S
}

// Route assigns one barrier's submissions to boards. Phase 1 hashes each
// submission to its home lane and routes lanes locally (in parallel when
// enabled): each lane rebuilds its price index over the shared projection
// copy and picks exactly like RouteLinear restricted to its boards,
// deferring a submission when the lane is exhausted or its cheapest board
// breaches the steal band. Phase 2 is the sequential steal pass: deferred
// submissions, merged back into arrival order, each go to the global
// (price, board ID) minimum over the per-lane heap minima (the cross-shard
// price summary — S values, maintained for free by the lane heaps), with
// no hysteresis (a steal is an overflow placement, not a preference
// change; lane sticky state is untouched). Projection charges demand
// against the shared copy throughout, exactly as the unsharded Route does.
func (d *ShardedDispatcher) Route(snaps []Snapshot, subs []Submission) RoutedBatch {
	if len(subs) == 0 {
		return RoutedBatch{}
	}
	B := len(snaps)
	S := d.ensure(B, len(subs))

	proj := d.proj[:B]
	for i := 0; i < B; i++ {
		s := &snaps[i]
		proj[i] = projEntry{
			price:  s.Price,
			demand: s.DemandPU,
			supply: s.MaxSupplyPU,
			live:   !s.Crashed && !s.Stalled && !s.Draining && !s.Degraded && (s.WthW <= 0 || s.SmoothedW < s.WthW),
		}
	}
	picks := d.picks[:len(subs)]
	stolen := d.stolen[:len(subs)]
	for si := range stolen {
		stolen[si] = false
	}
	counts := d.counts[:B]
	addDPU := d.addDPU[:B]
	for i := 0; i < B; i++ {
		counts[i] = 0
		addDPU[i] = 0
	}
	d.unrouted = d.unrouted[:0]
	d.stealNS = 0

	// Home pass: hash each submission to its lane (arrival order within a
	// lane is preserved — appends walk si ascending). The hash depends
	// only on (seed, position, S), so the mine lists are reused verbatim
	// whenever consecutive barriers carry the same batch size — the
	// saturated-fleet steady state — and rehashed only on a size change.
	for s := range d.lanes {
		ln := &d.lanes[s]
		ln.deferred = ln.deferred[:0]
		ln.ns = 0
	}
	if d.homeN != len(subs) {
		for s := range d.lanes {
			d.lanes[s].mine = d.lanes[s].mine[:0]
		}
		if S == 1 {
			ln := &d.lanes[0]
			for si := range subs {
				ln.mine = append(ln.mine, int32(si))
			}
		} else {
			for si := range subs {
				ln := &d.lanes[shardHome(d.seed, si, S)]
				ln.mine = append(ln.mine, int32(si))
			}
		}
		d.homeN = len(subs)
	}

	// Freeze the barrier-start global price floor for the steal band.
	// Projection only raises prices within a barrier, so "home min above
	// (1+θ)×floor" is a conservative, deterministic spill trigger that
	// needs no cross-lane reads during the parallel phase.
	stealOn := S > 1 && d.StealTheta >= 0
	stealBar := math.Inf(1)
	if stealOn {
		floor := math.Inf(1)
		for i := 0; i < B; i++ {
			if proj[i].admissible() && proj[i].price < floor {
				floor = proj[i].price
			}
		}
		stealBar = floor * (1 + d.StealTheta)
	}

	// Phase 1: lane-local routing (index rebuild + picks), parallel when
	// enabled. Lanes touch disjoint slices of proj/counts/addDPU/picks, so
	// the result is interleaving-independent.
	if d.parallel && S > 1 {
		var wg sync.WaitGroup
		wg.Add(S)
		for s := 0; s < S; s++ {
			go func(ln *lane) {
				defer wg.Done()
				d.runLane(ln, subs, stealOn, stealBar)
			}(&d.lanes[s])
		}
		wg.Wait()
	} else {
		for s := 0; s < S; s++ {
			d.runLane(&d.lanes[s], subs, stealOn, stealBar)
		}
	}

	// Phase 2: the steal pass. Merge the (ascending) per-lane deferred
	// lists back into arrival order and resolve each against the global
	// cheapest admissible board.
	var t0 time.Time
	if d.Timing {
		t0 = time.Now()
	}
	cur := d.cursors[:S]
	for s := range cur {
		cur[s] = 0
	}
	for {
		bestLane := -1
		var bestSi int32
		for s := 0; s < S; s++ {
			if dl := d.lanes[s].deferred; cur[s] < len(dl) {
				if bestLane < 0 || dl[cur[s]] < bestSi {
					bestLane, bestSi = s, dl[cur[s]]
				}
			}
		}
		if bestLane < 0 {
			break
		}
		cur[bestLane]++
		si := int(bestSi)
		best := -1
		for s := 0; s < S; s++ {
			if m := d.lanes[s].idx.min(); m >= 0 {
				if best < 0 || proj[m].price < proj[best].price ||
					(proj[m].price == proj[best].price && m < best) {
					best = m
				}
			}
		}
		if best < 0 {
			picks[si] = -1
			d.unrouted = append(d.unrouted, bestSi)
			continue
		}
		est := subs[si].Est
		picks[si] = int32(best)
		stolen[si] = true
		counts[best]++
		addDPU[best] += est
		proj[best].project(est)
		own := &d.lanes[d.owner[best]]
		if proj[best].admissible() {
			own.idx.sink(best)
		} else {
			own.idx.remove(best)
		}
	}
	if d.Timing {
		d.stealNS = time.Since(t0).Nanoseconds()
	}

	// Index-bucketing pass: carve each board's pick list from one
	// exactly-sized arena (fresh per call — boards retain their lists
	// across in-flight barriers) and fill in arrival order.
	routed := len(subs) - len(d.unrouted)
	perBoard := d.perBoard[:B]
	for b := 0; b < B; b++ {
		perBoard[b] = nil
	}
	if routed > 0 {
		buf := make([]int32, routed)
		off := 0
		for b := 0; b < B; b++ {
			if c := int(counts[b]); c > 0 {
				perBoard[b] = buf[off : off : off+c]
				off += c
			}
		}
		for si := range subs {
			if p := picks[si]; p >= 0 {
				perBoard[p] = append(perBoard[p], int32(si))
			}
		}
	}
	return RoutedBatch{
		Picks:       picks,
		PerBoard:    perBoard,
		AddDemandPU: addDPU,
		Unrouted:    d.unrouted,
		Stolen:      stolen,
		Routed:      routed,
	}
}

// runLane routes one lane's home submissions against its board range:
// exactly the RouteLinear decision sequence restricted to [lo, hi) —
// cheapest admissible by (price, board ID), sticky hysteresis, projection
// bump, eviction on supply overrun — except that a submission is deferred
// to the steal pass when the lane is exhausted (sticky resets, as the
// linear scan's failed pick does) or when the lane's cheapest board
// breaches the steal band (sticky unchanged: the lane made no decision).
func (d *ShardedDispatcher) runLane(ln *lane, subs []Submission, stealOn bool, stealBar float64) {
	var t0 time.Time
	if d.Timing {
		t0 = time.Now()
	}
	proj := d.proj[:d.boards]
	picks, counts, addDPU := d.picks, d.counts, d.addDPU
	ln.idx.reset(proj, ln.lo, ln.hi)
	for _, si := range ln.mine {
		best := ln.idx.min()
		if best < 0 {
			ln.last = -1
			picks[si] = -1
			ln.deferred = append(ln.deferred, si)
			continue
		}
		if stealOn && proj[best].price > stealBar {
			picks[si] = -1
			ln.deferred = append(ln.deferred, si)
			continue
		}
		if ln.last >= 0 && ln.last != best && ln.idx.contains(ln.last) {
			if proj[best].price >= proj[ln.last].price*(1-d.Hysteresis) {
				best = ln.last
			}
		}
		ln.last = best
		est := subs[si].Est
		picks[si] = int32(best)
		counts[best]++
		addDPU[best] += est
		proj[best].project(est)
		if proj[best].admissible() {
			ln.idx.sink(best)
		} else {
			ln.idx.remove(best)
		}
	}
	if d.Timing {
		ln.ns = time.Since(t0).Nanoseconds()
	}
}
