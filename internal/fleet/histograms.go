package fleet

import (
	"fmt"
	"io"

	"pricepower/internal/metrics"
)

// WriteHistograms renders the fleet's latency histograms in the
// Prometheus histogram text exposition (with trace-ID exemplars on the
// buckets that carry one): the fleet-level stage histograms, each board's
// histograms under a board label, and the fleet-wide k-way merge of every
// per-board histogram. Returns an error when tracing is detached.
func (f *Fleet) WriteHistograms(w io.Writer) error {
	if f.tracer == nil {
		return fmt.Errorf("fleet: tracing detached (Config.Trace off)")
	}
	if err := f.histRouting.WriteProm(w, "pricepower_fleet_routing_wall_ns",
		"Wall-clock dispatcher Route latency per barrier (ns).", ""); err != nil {
		return err
	}
	if err := f.histQueueWait.WriteProm(w, "pricepower_fleet_queue_wait_ms",
		"Virtual time from admission to routing (ms), with trace exemplars.", ""); err != nil {
		return err
	}
	if err := f.histBarrierLag.WriteProm(w, "pricepower_fleet_barrier_lag",
		"Barriers of pipeline skew observed at collection.", ""); err != nil {
		return err
	}
	if err := f.histRestart.WriteProm(w, "pricepower_fleet_restart_latency_barriers",
		"Barriers from crash detection to supervised restart.", ""); err != nil {
		return err
	}

	type boardHist struct {
		name, help string
		pick       func(*Board) *metrics.Histogram
	}
	hists := []boardHist{
		{"pricepower_board_step_wall_ns", "Wall-clock board step time per barrier (ns).",
			func(b *Board) *metrics.Histogram { return b.histStep }},
		{"pricepower_board_round_ms", "Virtual market-round duration (ms).",
			func(b *Board) *metrics.Histogram { return b.obs.histRound }},
		{"pricepower_board_task_residency_ms", "Virtual placement-to-completion time (ms), with trace exemplars.",
			func(b *Board) *metrics.Histogram { return b.obs.histResidency }},
	}
	boards := f.Boards() // copy: a restart may swap a board mid-scrape
	for _, h := range hists {
		all := make([]*metrics.Histogram, 0, len(boards))
		for _, b := range boards {
			hb := h.pick(b)
			all = append(all, hb)
			if err := hb.WriteProm(w, h.name, h.help, fmt.Sprintf("board=%q", fmt.Sprint(b.ID))); err != nil {
				return err
			}
		}
		// Fleet-wide view: the k-way merge of every board's histogram
		// under the fleet name (merge snapshots, so no board lock is held
		// across boards).
		merged, err := metrics.MergeAll(all...)
		if err != nil {
			return err
		}
		fleetName := "pricepower_fleet" + h.name[len("pricepower_board"):]
		if err := merged.WriteProm(w, fleetName, h.help+" (all boards merged)", ""); err != nil {
			return err
		}
	}
	return nil
}
