package fleet

import (
	"strings"
	"testing"

	"pricepower/internal/fault"
	"pricepower/internal/sim"
	"pricepower/internal/task"
)

// lightSpec is a small CPU-bound looping task: low enough demand that
// many fit on one board, so saturation in tests is deliberate, not
// accidental.
func lightSpec(name string) task.Spec {
	return task.Spec{Name: name, Priority: 1, MinHR: 4, MaxHR: 6,
		Phases: []task.Phase{{HBCostLittle: 20, SpeedupBig: 1.8}}, Loop: true}
}

// checkZeroLoss asserts the fleet's conservation invariant: every
// accepted task is either live on a board, waiting in the queue, or was
// explicitly shed — nothing vanishes.
func checkZeroLoss(t *testing.T, f *Fleet) {
	t.Helper()
	st := f.StateSnapshot()
	want := st.Counters.Submitted - st.Counters.Shed
	got := uint64(st.Live() + st.QueueLen)
	if got != want {
		t.Fatalf("zero-loss violated: live %d + queued %d = %d, want submitted %d - shed %d = %d",
			st.Live(), st.QueueLen, got, st.Counters.Submitted, st.Counters.Shed, want)
	}
}

func TestFleetRoutesAndConserves(t *testing.T) {
	f, err := New(Config{Boards: 3, Seed: 7, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 12; i++ {
		f.Submit(lightSpec("t"))
	}
	checkZeroLoss(t, f)
	for i := 0; i < 20; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		checkZeroLoss(t, f)
	}
	st := f.StateSnapshot()
	if st.QueueLen != 0 {
		t.Errorf("queue not drained: %d pending", st.QueueLen)
	}
	if st.Live() != 12 {
		t.Errorf("live = %d, want 12", st.Live())
	}
	if st.Counters.Shed != 0 {
		t.Errorf("shed = %d, want 0", st.Counters.Shed)
	}
	// Price routing with projection must spread 12 tasks over 3 equal
	// boards rather than stacking one.
	for _, b := range st.Boards {
		if b.Tasks == 0 {
			t.Errorf("board %d got no tasks", b.Board)
		}
	}
	if st.Time != 20*f.cfg.Batch {
		t.Errorf("fleet time = %v, want %v", st.Time, 20*f.cfg.Batch)
	}
}

func TestFleetShedsOnQueueOverflow(t *testing.T) {
	f, err := New(Config{Boards: 1, Seed: 1, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	accepted := f.Submit(lightSpec("a"), lightSpec("b"), lightSpec("c"),
		lightSpec("d"), lightSpec("e"), lightSpec("f"))
	if accepted != 4 {
		t.Fatalf("accepted = %d, want 4 (queue cap)", accepted)
	}
	st := f.StateSnapshot()
	if st.Counters.Shed != 2 || st.Counters.Submitted != 6 {
		t.Fatalf("counters = %+v, want 6 submitted / 2 shed", st.Counters)
	}
	checkZeroLoss(t, f)
}

func TestFleetManualDrainResubmits(t *testing.T) {
	f, err := New(Config{Boards: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 6; i++ {
		f.Submit(lightSpec("t"))
	}
	for i := 0; i < 5; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := f.StateSnapshot()
	victim := 0
	if st.Boards[1].Tasks > st.Boards[0].Tasks {
		victim = 1
	}
	evacuated := st.Boards[victim].Tasks
	if evacuated == 0 {
		t.Fatal("victim board has no tasks; routing failed before the drain test started")
	}

	if err := f.Drain(victim); err != nil {
		t.Fatal(err)
	}
	checkZeroLoss(t, f)
	for i := 0; i < 10; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		checkZeroLoss(t, f)
	}
	st = f.StateSnapshot()
	if got := st.Boards[victim].Tasks; got != 0 {
		t.Errorf("drained board still runs %d tasks", got)
	}
	if !st.Boards[victim].Draining {
		t.Error("drained board not marked draining")
	}
	other := 1 - victim
	if st.Boards[other].Tasks != 6 {
		t.Errorf("surviving board runs %d tasks, want all 6", st.Boards[other].Tasks)
	}
	if st.Counters.Drained != uint64(evacuated) || st.Counters.Resubmitted != uint64(evacuated) {
		t.Errorf("drain counters = %+v, want %d drained/resubmitted", st.Counters, evacuated)
	}

	// Resume: the board takes new work again.
	if err := f.Resume(victim); err != nil {
		t.Fatal(err)
	}
	f.Submit(lightSpec("late"))
	// The revived board is idle (price 0 after settling) so the next
	// barrier routes the newcomer there or queues it at worst once.
	for i := 0; i < 3; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st = f.StateSnapshot()
	if st.Live() != 7 {
		t.Errorf("live = %d after resume+submit, want 7", st.Live())
	}
	checkZeroLoss(t, f)
}

func TestFleetAutoDrainsDegradedBoard(t *testing.T) {
	// Board 0's chip power sensor drops out from round 10 onward (the
	// market must first seed a trusted reading for a dropout to be
	// detectable); with DrainDegradedAfter set, the fleet must evacuate
	// it and land its tasks on board 1 without losing any.
	f, err := New(Config{
		Boards:             2,
		Seed:               11,
		DrainDegradedAfter: 2,
		Faults: map[int]fault.Scenario{
			0: {Faults: []fault.Fault{{Type: fault.PowerDropout, Cluster: -1, Start: 10, Rounds: 1 << 20}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 6; i++ {
		f.Submit(lightSpec("t"))
	}
	drained := false
	for i := 0; i < 100 && !drained; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		checkZeroLoss(t, f)
		st := f.StateSnapshot()
		drained = st.Boards[0].Draining && st.Boards[0].Tasks == 0
	}
	if !drained {
		t.Fatal("degraded board was never auto-drained")
	}
	// Let the resubmitted tasks route.
	for i := 0; i < 5; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		checkZeroLoss(t, f)
	}
	st := f.StateSnapshot()
	if st.Boards[1].Tasks != 6 {
		t.Errorf("healthy board runs %d tasks, want all 6", st.Boards[1].Tasks)
	}
	if st.Counters.Shed != 0 {
		t.Errorf("shed = %d during degradation, want 0", st.Counters.Shed)
	}
}

func TestFleetScheduledArrivals(t *testing.T) {
	f, err := New(Config{Boards: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	f.SubmitAt(250*sim.Millisecond, lightSpec("late"))
	f.Submit(lightSpec("now"))
	if err := f.Step(); err != nil { // t: 0 → 100ms; only "now" admitted
		t.Fatal(err)
	}
	st := f.StateSnapshot()
	if st.Counters.Submitted != 1 {
		t.Fatalf("submitted = %d after first batch, want 1 (late not due)", st.Counters.Submitted)
	}
	for i := 0; i < 3; i++ { // through t=400ms: late becomes due
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st = f.StateSnapshot()
	if st.Counters.Submitted != 2 || st.Live() != 2 {
		t.Errorf("submitted=%d live=%d, want 2/2 after due time", st.Counters.Submitted, st.Live())
	}
	checkZeroLoss(t, f)
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	if _, err := ParseTrace(strings.NewReader(`{"tasks":[{"bench":"nope","input":"n"}]}`)); err != nil {
		t.Fatalf("ParseTrace rejected structurally valid trace: %v", err)
	}
	tr, _ := ParseTrace(strings.NewReader(`{"tasks":[{"bench":"nope","input":"n"}]}`))
	if _, err := tr.Resolve(); err == nil {
		t.Error("Resolve accepted unknown benchmark")
	}
	if _, err := ParseTrace(strings.NewReader(`{"tasks":[],"typo":1}`)); err == nil {
		t.Error("ParseTrace accepted unknown field")
	}
	if _, err := ParseTrace(strings.NewReader(`{"tasks":[]}`)); err == nil {
		t.Error("ParseTrace accepted empty trace")
	}
}

func TestTraceResolvesCaseInsensitively(t *testing.T) {
	tr := &ArrivalTrace{Tasks: []Arrival{{Bench: "SWAPTIONS", Input: "N", Count: 2}}}
	specs, err := tr.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("resolved %d specs, want 2", len(specs))
	}
	if specs[0].Spec.Name != "swaptions_n" {
		t.Errorf("task name = %q, want canonical swaptions_n", specs[0].Spec.Name)
	}
}
