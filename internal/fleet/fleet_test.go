package fleet

import (
	"strings"
	"testing"

	"pricepower/internal/check"
	"pricepower/internal/fault"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/telemetry"
)

// lightSpec is a small CPU-bound looping task: low enough demand that
// many fit on one board, so saturation in tests is deliberate, not
// accidental.
func lightSpec(name string) task.Spec {
	return task.Spec{Name: name, Priority: 1, MinHR: 4, MaxHR: 6,
		Phases: []task.Phase{{HBCostLittle: 20, SpeedupBig: 1.8}}, Loop: true}
}

// checkZeroLoss asserts the fleet's conservation invariant: every
// accepted task is either live on a board, waiting in the queue, in
// flight at an uncollected barrier (bounded skew), or was explicitly
// shed — nothing vanishes.
func checkZeroLoss(t *testing.T, f *Fleet) {
	t.Helper()
	st := f.StateSnapshot()
	want := st.Counters.Submitted - st.Counters.Shed - st.Counters.Evicted
	got := uint64(st.Live() + st.QueueLen + st.InFlight + st.Orphaned)
	if got != want {
		t.Fatalf("zero-loss violated: live %d + queued %d + inflight %d + orphaned %d = %d, want submitted %d - shed %d - evicted %d = %d",
			st.Live(), st.QueueLen, st.InFlight, st.Orphaned, got,
			st.Counters.Submitted, st.Counters.Shed, st.Counters.Evicted, want)
	}
	if err := check.CheckFleetConservation(f); err != nil {
		t.Fatal(err)
	}
}

func TestFleetRoutesAndConserves(t *testing.T) {
	f, err := New(Config{Boards: 3, Seed: 7, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 12; i++ {
		f.Submit(lightSpec("t"))
	}
	checkZeroLoss(t, f)
	for i := 0; i < 20; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		checkZeroLoss(t, f)
	}
	st := f.StateSnapshot()
	if st.QueueLen != 0 {
		t.Errorf("queue not drained: %d pending", st.QueueLen)
	}
	if st.Live() != 12 {
		t.Errorf("live = %d, want 12", st.Live())
	}
	if st.Counters.Shed != 0 {
		t.Errorf("shed = %d, want 0", st.Counters.Shed)
	}
	// Price routing with projection must spread 12 tasks over 3 equal
	// boards rather than stacking one.
	for _, b := range st.Boards {
		if b.Tasks == 0 {
			t.Errorf("board %d got no tasks", b.Board)
		}
	}
	if st.Time != 20*f.cfg.Batch {
		t.Errorf("fleet time = %v, want %v", st.Time, 20*f.cfg.Batch)
	}
}

func TestFleetShedsOnQueueOverflow(t *testing.T) {
	f, err := New(Config{Boards: 1, Seed: 1, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	accepted := f.Submit(lightSpec("a"), lightSpec("b"), lightSpec("c"),
		lightSpec("d"), lightSpec("e"), lightSpec("f"))
	if accepted != 4 {
		t.Fatalf("accepted = %d, want 4 (queue cap)", accepted)
	}
	st := f.StateSnapshot()
	if st.Counters.Shed != 2 || st.Counters.Submitted != 6 {
		t.Fatalf("counters = %+v, want 6 submitted / 2 shed", st.Counters)
	}
	checkZeroLoss(t, f)
}

func TestFleetManualDrainResubmits(t *testing.T) {
	f, err := New(Config{Boards: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 6; i++ {
		f.Submit(lightSpec("t"))
	}
	for i := 0; i < 5; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := f.StateSnapshot()
	victim := 0
	if st.Boards[1].Tasks > st.Boards[0].Tasks {
		victim = 1
	}
	evacuated := st.Boards[victim].Tasks
	if evacuated == 0 {
		t.Fatal("victim board has no tasks; routing failed before the drain test started")
	}

	if err := f.Drain(victim); err != nil {
		t.Fatal(err)
	}
	checkZeroLoss(t, f)
	for i := 0; i < 10; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		checkZeroLoss(t, f)
	}
	st = f.StateSnapshot()
	if got := st.Boards[victim].Tasks; got != 0 {
		t.Errorf("drained board still runs %d tasks", got)
	}
	if !st.Boards[victim].Draining {
		t.Error("drained board not marked draining")
	}
	other := 1 - victim
	if st.Boards[other].Tasks != 6 {
		t.Errorf("surviving board runs %d tasks, want all 6", st.Boards[other].Tasks)
	}
	if st.Counters.Drained != uint64(evacuated) || st.Counters.Resubmitted != uint64(evacuated) {
		t.Errorf("drain counters = %+v, want %d drained/resubmitted", st.Counters, evacuated)
	}

	// Resume: the board takes new work again.
	if err := f.Resume(victim); err != nil {
		t.Fatal(err)
	}
	f.Submit(lightSpec("late"))
	// The revived board is idle (price 0 after settling) so the next
	// barrier routes the newcomer there or queues it at worst once.
	for i := 0; i < 3; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st = f.StateSnapshot()
	if st.Live() != 7 {
		t.Errorf("live = %d after resume+submit, want 7", st.Live())
	}
	checkZeroLoss(t, f)
}

func TestFleetAutoDrainsDegradedBoard(t *testing.T) {
	// Board 0's chip power sensor drops out from round 10 onward (the
	// market must first seed a trusted reading for a dropout to be
	// detectable); with DrainDegradedAfter set, the fleet must evacuate
	// it and land its tasks on board 1 without losing any.
	f, err := New(Config{
		Boards:             2,
		Seed:               11,
		DrainDegradedAfter: 2,
		Faults: map[int]fault.Scenario{
			0: {Faults: []fault.Fault{{Type: fault.PowerDropout, Cluster: -1, Start: 10, Rounds: 1 << 20}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 6; i++ {
		f.Submit(lightSpec("t"))
	}
	drained := false
	for i := 0; i < 100 && !drained; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		checkZeroLoss(t, f)
		st := f.StateSnapshot()
		drained = st.Boards[0].Draining && st.Boards[0].Tasks == 0
	}
	if !drained {
		t.Fatal("degraded board was never auto-drained")
	}
	// Let the resubmitted tasks route.
	for i := 0; i < 5; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		checkZeroLoss(t, f)
	}
	st := f.StateSnapshot()
	if st.Boards[1].Tasks != 6 {
		t.Errorf("healthy board runs %d tasks, want all 6", st.Boards[1].Tasks)
	}
	if st.Counters.Shed != 0 {
		t.Errorf("shed = %d during degradation, want 0", st.Counters.Shed)
	}
}

func TestFleetScheduledArrivals(t *testing.T) {
	f, err := New(Config{Boards: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	f.SubmitAt(250*sim.Millisecond, lightSpec("late"))
	f.Submit(lightSpec("now"))
	if err := f.Step(); err != nil { // t: 0 → 100ms; only "now" admitted
		t.Fatal(err)
	}
	st := f.StateSnapshot()
	if st.Counters.Submitted != 1 {
		t.Fatalf("submitted = %d after first batch, want 1 (late not due)", st.Counters.Submitted)
	}
	for i := 0; i < 3; i++ { // through t=400ms: late becomes due
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st = f.StateSnapshot()
	if st.Counters.Submitted != 2 || st.Live() != 2 {
		t.Errorf("submitted=%d live=%d, want 2/2 after due time", st.Counters.Submitted, st.Live())
	}
	checkZeroLoss(t, f)
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	if _, err := ParseTrace(strings.NewReader(`{"tasks":[{"bench":"nope","input":"n"}]}`)); err != nil {
		t.Fatalf("ParseTrace rejected structurally valid trace: %v", err)
	}
	tr, _ := ParseTrace(strings.NewReader(`{"tasks":[{"bench":"nope","input":"n"}]}`))
	if _, err := tr.Resolve(); err == nil {
		t.Error("Resolve accepted unknown benchmark")
	}
	if _, err := ParseTrace(strings.NewReader(`{"tasks":[],"typo":1}`)); err == nil {
		t.Error("ParseTrace accepted unknown field")
	}
	if _, err := ParseTrace(strings.NewReader(`{"tasks":[]}`)); err == nil {
		t.Error("ParseTrace accepted empty trace")
	}
}

// TestFleetBoundedSkewConserves steps a skewed fleet and asserts the
// zero-loss invariant holds at every barrier — with up to MaxSkew
// barriers in flight, assigned-but-uncollected tasks must be accounted
// in InFlight, and Flush must bring the pipeline fully current.
func TestFleetBoundedSkewConserves(t *testing.T) {
	f, err := New(Config{Boards: 3, Seed: 7, MaxSkew: 4, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 12; i++ {
		f.Submit(lightSpec("t"))
	}
	for i := 0; i < 20; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		checkZeroLoss(t, f)
	}
	st := f.StateSnapshot()
	if st.Issued != 20 {
		t.Errorf("issued = %d, want 20", st.Issued)
	}
	if st.Batch != 20-f.cfg.MaxSkew {
		t.Errorf("collected = %d, want %d (MaxSkew barriers in flight)", st.Batch, 20-f.cfg.MaxSkew)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	st = f.StateSnapshot()
	if st.Batch != st.Issued || st.InFlight != 0 {
		t.Errorf("after Flush: collected %d issued %d inflight %d, want fully current", st.Batch, st.Issued, st.InFlight)
	}
	if st.Live() != 12 || st.QueueLen != 0 || st.Counters.Shed != 0 {
		t.Errorf("after Flush: live %d queued %d shed %d, want 12/0/0", st.Live(), st.QueueLen, st.Counters.Shed)
	}
	checkZeroLoss(t, f)
	// Price routing must still spread across equal boards under skew.
	for _, b := range st.Boards {
		if b.Tasks == 0 {
			t.Errorf("board %d got no tasks under bounded skew", b.Board)
		}
	}
}

// TestFleetSkewedRetryProjectsInFlight is the admission-queue retry
// regression: with stale snapshots (bounded skew), queued submissions
// retried at later barriers must project the demand already assigned at
// in-flight barriers — otherwise a board whose stale snapshot still
// looks idle absorbs the whole backlog many times over its capacity.
func TestFleetSkewedRetryProjectsInFlight(t *testing.T) {
	f, err := New(Config{Boards: 2, Seed: 5, MaxSkew: 3, QueueCap: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Board 1 out of the picture: every admissible path leads to board 0,
	// whose supply ceiling (5400 PU on TC2) fits ~54 of these 100-PU
	// estimated tasks.
	if err := f.Drain(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f.Submit(lightSpec("t"))
	}
	// Route over MaxSkew barriers while the collected snapshot is still
	// the idle barrier-0 view: without the in-flight carry these steps
	// would each re-route the queued remainder onto "idle" board 0.
	for i := 0; i < 3; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		checkZeroLoss(t, f)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	st := f.StateSnapshot()
	got := st.Boards[0].Tasks
	if got == 0 {
		t.Fatal("board 0 got nothing: routing is broken before the regression even applies")
	}
	if got > 60 {
		t.Errorf("board 0 absorbed %d tasks, want ≤ 60 (supply ceiling ≈ 54 estimated tasks): in-flight demand not projected on retry", got)
	}
	if st.Boards[1].Tasks != 0 {
		t.Errorf("drained board 1 runs %d tasks, want 0", st.Boards[1].Tasks)
	}
	if want := 100 - got; st.QueueLen != want {
		t.Errorf("queue holds %d, want the %d that did not fit", st.QueueLen, want)
	}
	checkZeroLoss(t, f)
}

// TestFleetDrainOverflowShedsOnce pins the drain-overlapping-overflow
// accounting: evacuating a board into a full admission queue must shed
// the overflow exactly once — counted, queue cap respected — instead of
// silently growing the queue past its cap (the old manual-Drain path) or
// losing tasks from the conservation ledger.
func TestFleetDrainOverflowShedsOnce(t *testing.T) {
	f, err := New(Config{Boards: 1, Seed: 2, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 3; i++ {
		f.Submit(lightSpec("live"))
	}
	if err := f.Step(); err != nil { // 3 tasks land on the board
		t.Fatal(err)
	}
	st := f.StateSnapshot()
	if st.Live() != 3 {
		t.Fatalf("live = %d before drain, want 3", st.Live())
	}
	// Fill the queue to its cap, then force the drain: 3 evacuated + 4
	// queued = 7 into a 4-slot queue.
	for i := 0; i < 4; i++ {
		f.Submit(lightSpec("queued"))
	}
	if err := f.Drain(0); err != nil {
		t.Fatal(err)
	}
	st = f.StateSnapshot()
	if st.QueueLen != 4 {
		t.Errorf("queue len = %d after drain, want cap 4", st.QueueLen)
	}
	if st.Counters.Shed != 3 {
		t.Errorf("shed = %d, want 3 (7 requeue candidates, 4 slots)", st.Counters.Shed)
	}
	if st.Counters.Drained != 3 {
		t.Errorf("drained = %d, want 3", st.Counters.Drained)
	}
	checkZeroLoss(t, f)
}

// TestFleetDrainCooldownBacksOff drives the drain/resume flapping fix
// through the streak state machine directly: a board that keeps
// re-tripping its degraded streak right after each resume must pay an
// exponentially growing healthy-barrier cooldown before the next resume
// (fault.Backoff with seeded jitter), count each repeat in Redrained,
// and emit a KindDrain event per transition.
func TestFleetDrainCooldownBacksOff(t *testing.T) {
	f, err := New(Config{Boards: 2, Seed: 13, DrainDegradedAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ring := telemetry.NewRing(64)
	f.AttachTelemetry(telemetry.NewEmitter(nil, ring))

	// Synthetic collected barriers: board 0 degraded or healthy, board 1
	// always fine. Feeding noteDrainStreaks directly decouples the
	// cooldown machine from the market's sensor heuristics; Flush
	// executes the queued drain/resume ops against the (empty) boards.
	barrier := func(deg bool) []Snapshot {
		s := make([]Snapshot, 2)
		for i := range s {
			s[i].Board = i
		}
		s[0].Degraded = deg
		return s
	}

	const cycles = 4
	var cooldowns []int
	for c := 0; c < cycles; c++ {
		// Re-trip immediately after the previous resume: the degraded
		// streak needs DrainDegradedAfter consecutive barriers.
		for j := 0; j < f.cfg.DrainDegradedAfter; j++ {
			f.noteDrainStreaks(barrier(true))
		}
		if !f.auto[0] {
			t.Fatalf("cycle %d: degraded streak did not trip auto-drain", c)
		}
		cooldowns = append(cooldowns, f.resumeAfter[0])
		if err := f.Flush(); err != nil { // executes the drain op
			t.Fatal(err)
		}
		// Idle healthy through exactly the cooldown; the board must not
		// resume a single barrier earlier.
		for j := 0; j < cooldowns[c]; j++ {
			if !f.auto[0] {
				t.Fatalf("cycle %d: resumed after %d healthy barriers, want cooldown %d", c, j, cooldowns[c])
			}
			f.noteDrainStreaks(barrier(false))
		}
		if f.auto[0] {
			t.Fatalf("cycle %d: still drained after full cooldown of %d", c, cooldowns[c])
		}
		if err := f.Flush(); err != nil { // executes the resume op
			t.Fatal(err)
		}
	}

	if got := f.StateSnapshot().Counters.Redrained; got != cycles-1 {
		t.Errorf("redrained = %d, want %d (every drain after the first is a repeat)", got, cycles-1)
	}
	// Backoff with Factor 2 and Jitter 0.25 grows strictly: the shortest
	// possible next cooldown (1.5× base) exceeds the longest previous one.
	for c := 1; c < len(cooldowns); c++ {
		if cooldowns[c] <= cooldowns[c-1] {
			t.Errorf("cooldown did not back off: %v", cooldowns)
			break
		}
	}

	var drains, redrains, resumes int
	for _, ev := range ring.Snapshot() {
		if ev.Kind != telemetry.KindDrain {
			continue
		}
		switch ev.Class {
		case "drain":
			drains++
		case "redrain":
			redrains++
		case "resume":
			resumes++
		}
	}
	if drains != 1 || redrains != cycles-1 || resumes != cycles {
		t.Errorf("drain events = %d drain / %d redrain / %d resume, want 1 / %d / %d",
			drains, redrains, resumes, cycles-1, cycles)
	}
}

// TestFleetDrainCooldownDecays pins the counterpart: a board that
// survives twice its last cooldown of trusted barriers after a resume
// earns its exponential counter back, so the next (unrelated) drain
// starts from the base cooldown again.
func TestFleetDrainCooldownDecays(t *testing.T) {
	f, err := New(Config{Boards: 2, Seed: 13, DrainDegradedAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	barrier := func(deg bool) []Snapshot {
		s := make([]Snapshot, 2)
		for i := range s {
			s[i].Board = i
		}
		s[0].Degraded = deg
		return s
	}
	trip := func() int {
		for j := 0; j < f.cfg.DrainDegradedAfter; j++ {
			f.noteDrainStreaks(barrier(true))
		}
		if !f.auto[0] {
			t.Fatal("degraded streak did not trip auto-drain")
		}
		cd := f.resumeAfter[0]
		if err := f.Flush(); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < cd; j++ {
			f.noteDrainStreaks(barrier(false))
		}
		if err := f.Flush(); err != nil {
			t.Fatal(err)
		}
		return cd
	}

	// The cooldown sequence is pinned by invariants, not by exact barrier
	// counts (which depend on the jitter stream and would flake under any
	// barrier reordering): every cooldown sits in [n, 32n] (base to cap),
	// the sequence grows strictly until it can first have hit the cap
	// region — jitter shortens by at most 25% and the factor is 2, so
	// each uncapped cooldown strictly exceeds its predecessor — and
	// inside the cap region it merely stays there.
	n := f.cfg.DrainDegradedAfter
	capMax := 32 * n
	capMin := (3*capMax + 3) / 4 // ceil(0.75 · cap): shortest jittered capped cooldown
	var cooldowns []int
	for len(cooldowns) < 2 || cooldowns[len(cooldowns)-1] < capMin || len(cooldowns) < 8 {
		cooldowns = append(cooldowns, trip())
		if len(cooldowns) > 16 {
			t.Fatalf("cooldowns never reached the cap region (≥%d): %v", capMin, cooldowns)
		}
	}
	if cooldowns[0] != n {
		t.Fatalf("first-offense cooldown = %d, want base %d (jitter only shortens, floored at the base)", cooldowns[0], n)
	}
	for c, cd := range cooldowns {
		if cd < n || cd > capMax {
			t.Fatalf("cooldown %d = %d outside [%d, %d]: %v", c, cd, n, capMax, cooldowns)
		}
		if c > 0 && cooldowns[c-1] < capMin && cd <= cooldowns[c-1] {
			t.Fatalf("cooldown did not back off below the cap: %v", cooldowns)
		}
	}

	// Survive 2× the last cooldown healthy: the counter resets and the
	// next drain is charged like a first offense again — back to the
	// base cooldown, regardless of how deep the backoff had grown.
	last := cooldowns[len(cooldowns)-1]
	for j := 0; j < 2*last; j++ {
		f.noteDrainStreaks(barrier(false))
	}
	if f.drainCount[0] != 0 {
		t.Fatalf("drain count = %d after surviving 2×cooldown, want 0", f.drainCount[0])
	}
	if decayed := trip(); decayed != n {
		t.Errorf("cooldown after decay = %d, want base %d again", decayed, n)
	}
}

func TestTraceResolvesCaseInsensitively(t *testing.T) {
	tr := &ArrivalTrace{Tasks: []Arrival{{Bench: "SWAPTIONS", Input: "N", Count: 2}}}
	specs, err := tr.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("resolved %d specs, want 2", len(specs))
	}
	if specs[0].Spec.Name != "swaptions_n" {
		t.Errorf("task name = %q, want canonical swaptions_n", specs[0].Spec.Name)
	}
}
