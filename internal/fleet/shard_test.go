package fleet

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"testing"
	"testing/quick"

	"pricepower/internal/fault"
	"pricepower/internal/sim"
	"pricepower/internal/task"
)

// cleanSnaps builds a healthy fleet view: every board admissible, prices
// and load random. The faulted companion is randomSnaps (degraded /
// draining / over-threshold boards mixed in).
func cleanSnaps(rng *sim.Rand, n int) []Snapshot {
	snaps := make([]Snapshot, n)
	for i := range snaps {
		snaps[i] = Snapshot{
			Board:       i,
			Price:       rng.Range(0.01, 2),
			MaxSupplyPU: 5000,
			DemandPU:    rng.Range(0, 4000),
		}
	}
	return snaps
}

// randomSubs draws a batch of submissions with varied demand estimates:
// registry-unknown specs whose first-phase cost and target heart rate
// spread Est over roughly [40, 1800] PU, so projection evicts boards at
// different rates per seed.
func randomSubs(rng *sim.Rand, n int) []Submission {
	subs := make([]Submission, n)
	for i := range subs {
		hr := float64(1 + rng.Intn(6))
		subs[i] = NewSubmission(task.Spec{
			Name:     fmt.Sprintf("s%03d", i),
			Priority: 1,
			MinHR:    hr,
			MaxHR:    hr + 2,
			Phases:   []task.Phase{{HBCostLittle: rng.Range(20, 300), SpeedupBig: 2}},
			Loop:     true,
		})
	}
	return subs
}

// scanMin is the linear oracle's board chooser: one full pass, cheapest
// admissible board, first strict minimum (= lowest board ID on ties) —
// exactly Dispatcher.Pick without the hysteresis overlay.
func scanMin(proj []Snapshot) int {
	best := -1
	for i := range proj {
		if !proj[i].Admissible() {
			continue
		}
		if best < 0 || proj[i].Price < proj[best].Price {
			best = i
		}
	}
	return best
}

// shardedOracle is the linear reference for ShardedDispatcher: one real
// Dispatcher per lane (so sticky-choice hysteresis is the production
// Pick, not a reimplementation) driving RouteLinear's per-submission loop
// over the lane's board range, plus a plain-code steal pass. No heaps, no
// goroutines — every decision is an O(B) scan, which is what makes it an
// oracle rather than a second copy of the implementation under test.
type shardedOracle struct {
	seed   uint64
	lanes  []*Dispatcher
	lo, hi []int
}

func newShardedOracle(boards, shards int, hysteresis float64, seed uint64) *shardedOracle {
	if shards > boards {
		shards = boards
	}
	if shards < 1 {
		shards = 1
	}
	o := &shardedOracle{seed: seed}
	base, rem := 0, 0
	if boards > 0 {
		base, rem = boards/shards, boards%shards
	}
	lo := 0
	for s := 0; s < shards; s++ {
		size := base
		if s < rem {
			size++
		}
		o.lanes = append(o.lanes, NewDispatcher(hysteresis))
		o.lo = append(o.lo, lo)
		o.hi = append(o.hi, lo+size)
		lo += size
	}
	return o
}

// route mirrors ShardedDispatcher.Route's contract from first principles:
// home-lane RouteLinear semantics with the steal-band deferral, then the
// arrival-ordered steal pass against the global (price, board ID) minimum
// over boards that were admissible at barrier start and remain admissible
// under projection (≡ the union of the lane heaps, by the monotone
// admissibility argument in DESIGN.md §10).
func (o *shardedOracle) route(snaps []Snapshot, subs []Submission, theta float64) (picks []int32, unrouted []int32) {
	B, S := len(snaps), len(o.lanes)
	proj := make([]Snapshot, B)
	copy(proj, snaps)
	startAdm := make([]bool, B)
	for i := range snaps {
		startAdm[i] = snaps[i].Admissible()
	}
	stealOn := S > 1 && theta >= 0
	stealBar := math.Inf(1)
	if stealOn {
		floor := math.Inf(1)
		for i := range snaps {
			if startAdm[i] && snaps[i].Price < floor {
				floor = snaps[i].Price
			}
		}
		stealBar = floor * (1 + theta)
	}

	picks = make([]int32, len(subs))
	for i := range picks {
		picks[i] = -1
	}
	home := make([][]int32, S)
	for si := range subs {
		s := 0
		if S > 1 {
			s = shardHome(o.seed, si, S)
		}
		home[s] = append(home[s], int32(si))
	}

	// Lane phase. Sequential — lanes project onto disjoint proj ranges,
	// so ordering between lanes cannot matter (that independence is part
	// of what this oracle pins).
	var deferred []int32
	for s := 0; s < S; s++ {
		ln := o.lanes[s]
		lproj := proj[o.lo[s]:o.hi[s]]
		for _, si := range home[s] {
			if m := scanMin(lproj); m >= 0 && stealOn && lproj[m].Price > stealBar {
				deferred = append(deferred, si) // lane made no decision: sticky unchanged
				continue
			}
			i := ln.Pick(lproj) // exhaustion resets sticky, like RouteLinear's failed pick
			if i < 0 {
				deferred = append(deferred, si)
				continue
			}
			picks[si] = int32(o.lo[s] + i)
			project(lproj, i, subs[si].Est)
		}
	}

	// Steal pass: arrival order, no hysteresis, global scan.
	sort.Slice(deferred, func(a, b int) bool { return deferred[a] < deferred[b] })
	for _, si := range deferred {
		best := -1
		for i := 0; i < B; i++ {
			if !startAdm[i] || !proj[i].Admissible() {
				continue
			}
			if best < 0 || proj[i].Price < proj[best].Price {
				best = i
			}
		}
		if best < 0 {
			unrouted = append(unrouted, si)
			continue
		}
		picks[si] = int32(best)
		project(proj, best, subs[si].Est)
	}
	return picks, unrouted
}

// lasts reports each lane's sticky choice as a global board ID (-1 when
// unset), comparable against ShardedDispatcher's lane state.
func (o *shardedOracle) lasts() []int {
	out := make([]int, len(o.lanes))
	for s, ln := range o.lanes {
		out[s] = ln.last
		if out[s] >= 0 {
			out[s] += o.lo[s]
		}
	}
	return out
}

// pickDigest folds a routing decision sequence into an FNV-1a digest —
// the routing-layer replay digest the equivalence tests compare.
func pickDigest(picks []int32) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for _, p := range picks {
		h ^= uint64(uint32(p))
		h *= prime
	}
	return h
}

// checkRoutedBatch asserts the RoutedBatch's internal consistency:
// PerBoard partitions the routed picks exactly once in arrival order,
// AddDemandPU tallies the picks' estimates, Unrouted is the complement in
// arrival order, and no pick lands on a board that was inadmissible at
// barrier start.
func checkRoutedBatch(t *testing.T, snaps []Snapshot, subs []Submission, rb RoutedBatch) {
	t.Helper()
	if len(subs) == 0 {
		return
	}
	routed := 0
	for si, p := range rb.Picks {
		if p < 0 {
			continue
		}
		routed++
		if snaps[p].Degraded || snaps[p].Draining || !snaps[p].Admissible() {
			t.Fatalf("sub %d routed to inadmissible board %d (%+v)", si, p, snaps[p])
		}
	}
	if routed != rb.Routed || routed+len(rb.Unrouted) != len(subs) {
		t.Fatalf("conservation: %d routed (batch says %d) + %d unrouted != %d submitted",
			routed, rb.Routed, len(rb.Unrouted), len(subs))
	}
	for i := 1; i < len(rb.Unrouted); i++ {
		if rb.Unrouted[i] <= rb.Unrouted[i-1] {
			t.Fatalf("unrouted tail out of arrival order at %d: %v", i, rb.Unrouted)
		}
	}
	seen := make(map[int32]bool, routed)
	for b, mine := range rb.PerBoard {
		var est float64
		for i, si := range mine {
			if rb.Picks[si] != int32(b) {
				t.Fatalf("board %d lists sub %d but Picks[%d]=%d", b, si, si, rb.Picks[si])
			}
			if seen[si] {
				t.Fatalf("sub %d appears on two boards", si)
			}
			seen[si] = true
			if i > 0 && si <= mine[i-1] {
				t.Fatalf("board %d pick list out of arrival order: %v", b, mine)
			}
			est += subs[si].Est
		}
		if diff := math.Abs(est - rb.AddDemandPU[b]); diff > 1e-6*(1+est) {
			t.Fatalf("board %d AddDemandPU %g, picks sum to %g", b, rb.AddDemandPU[b], est)
		}
	}
	if len(seen) != routed {
		t.Fatalf("PerBoard covers %d picks, Picks has %d", len(seen), routed)
	}
}

// TestPropertyShardedMatchesLinearOracle is the tentpole pin: across
// shard counts S ∈ {1,2,4,8}, clean and faulted fleets, and the full
// steal-policy range (disabled / default band / zero band = maximal
// stealing), the sharded dispatcher's assignments, unrouted tails,
// per-lane sticky state and routing digests must equal the linear
// oracle's over multi-batch evolving snapshot sequences. At S=1 the
// oracle degenerates to exactly RouteLinear's decision loop, so the
// sharded path is pinned transitively to the fleet's original router.
// The fleet-level S × skew sweep lives in TestFleetReplaysBitIdentically.
func TestPropertyShardedMatchesLinearOracle(t *testing.T) {
	thetas := []float64{-1, 0, DefaultStealTheta}
	for _, S := range []int{1, 2, 4, 8} {
		for _, faulted := range []bool{false, true} {
			for _, theta := range thetas {
				S, faulted, theta := S, faulted, theta
				t.Run(fmt.Sprintf("S=%d/faulted=%v/theta=%v", S, faulted, theta), func(t *testing.T) {
					t.Parallel()
					f := func(seed uint64) bool {
						rng := sim.NewRand(seed)
						B := 1 + rng.Intn(12) // may be < S: shards clamp to the board count
						var snaps []Snapshot
						if faulted {
							snaps = randomSnaps(rng, B)
						} else {
							snaps = cleanSnaps(rng, B)
						}
						hseed := rng.Uint64()
						sd := NewShardedDispatcher(S, 0.10, hseed)
						sd.StealTheta = theta
						or := newShardedOracle(B, S, 0.10, hseed)
						for batch := 0; batch < 4; batch++ {
							subs := randomSubs(rng, rng.Intn(30))
							rb := sd.Route(snaps, subs)
							wantPicks, wantU := or.route(snaps, subs, theta)
							if len(subs) == 0 {
								if rb.Routed != 0 || len(rb.Unrouted) != 0 {
									t.Logf("seed %d batch %d: empty batch routed work", seed, batch)
									return false
								}
								continue
							}
							checkRoutedBatch(t, snaps, subs, rb)
							if got, want := pickDigest(rb.Picks), pickDigest(wantPicks); got != want {
								for si := range subs {
									if rb.Picks[si] != wantPicks[si] {
										t.Logf("seed %d batch %d: sub %d → board %d, oracle %d",
											seed, batch, si, rb.Picks[si], wantPicks[si])
										return false
									}
								}
								t.Logf("seed %d batch %d: digest %016x, oracle %016x", seed, batch, got, want)
								return false
							}
							if len(rb.Unrouted) != len(wantU) {
								t.Logf("seed %d batch %d: %d unrouted, oracle %d", seed, batch, len(rb.Unrouted), len(wantU))
								return false
							}
							wantLasts := or.lasts()
							for s := range sd.lanes {
								if sd.lanes[s].last != wantLasts[s] {
									t.Logf("seed %d batch %d: lane %d sticky %d, oracle %d",
										seed, batch, s, sd.lanes[s].last, wantLasts[s])
									return false
								}
							}
							// Evolve the fleet view between batches so the
							// sticky state must stay in lockstep too.
							for i := range snaps {
								snaps[i].Price *= 1 + rng.Range(-0.2, 0.2)
								if rng.Intn(8) == 0 {
									snaps[i].Draining = !snaps[i].Draining
								}
							}
						}
						return true
					}
					if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestShardedSingleShardMatchesIndexedRoute pins S=1 directly against the
// production single-index Route (not just the linear oracle): same picks
// per board, same unrouted count, same sticky state, batch after batch.
func TestShardedSingleShardMatchesIndexedRoute(t *testing.T) {
	rng := sim.NewRand(0xd15b)
	snaps := randomSnaps(rng, 9)
	sd := NewShardedDispatcher(1, 0.10, 0xfeed)
	ix := NewDispatcher(0.10)
	for batch := 0; batch < 6; batch++ {
		subs := randomSubs(rng, 24)
		specs := make([]task.Spec, len(subs))
		for i := range subs {
			specs[i] = subs[i].Spec
		}
		rb := sd.Route(snaps, subs)
		assign, unrouted := ix.Route(snaps, specs)
		checkRoutedBatch(t, snaps, subs, rb)
		for b := range assign {
			var mine []int32
			if rb.PerBoard != nil {
				mine = rb.PerBoard[b]
			}
			if len(assign[b]) != len(mine) {
				t.Fatalf("batch %d board %d: sharded %d picks, indexed %d", batch, b, len(mine), len(assign[b]))
			}
			for i, si := range mine {
				if subs[si].Spec.Name != assign[b][i].Name {
					t.Fatalf("batch %d board %d slot %d: %q vs %q",
						batch, b, i, subs[si].Spec.Name, assign[b][i].Name)
				}
			}
		}
		if len(rb.Unrouted) != len(unrouted) {
			t.Fatalf("batch %d: %d unrouted, indexed %d", batch, len(rb.Unrouted), len(unrouted))
		}
		if sd.lanes[0].last != ix.last {
			t.Fatalf("batch %d: sticky %d, indexed %d", batch, sd.lanes[0].last, ix.last)
		}
		for i := range snaps {
			snaps[i].Price *= 1 + rng.Range(-0.15, 0.15)
		}
	}
}

// TestShardedStealSpillsPricedOutShard exercises the steal band
// directly: every submission homes to a shard whose boards are far above
// the global floor, so the home lane defers and the steal pass must place
// the work on the cheap shard's boards in (price, board ID) order.
func TestShardedStealSpillsPricedOutShard(t *testing.T) {
	// Boards 0-1 cheap (shard 0), boards 2-3 expensive (shard 1) — more
	// than (1+θ)× the floor at θ = DefaultStealTheta.
	snaps := []Snapshot{snap(0, 0.10), snap(1, 0.12), snap(2, 0.90), snap(3, 0.95)}
	sd := NewShardedDispatcher(2, 0.10, 0x5eed)
	subs := randomSubs(sim.NewRand(1), 12)
	rb := sd.Route(snaps, subs)
	checkRoutedBatch(t, snaps, subs, rb)
	if rb.Routed != len(subs) {
		t.Fatalf("routed %d of %d with all boards healthy", rb.Routed, len(subs))
	}
	spilled := 0
	for si, p := range rb.Picks {
		home := shardHome(0x5eed, si, 2)
		if home == 1 && p < 2 {
			spilled++ // homed expensive, stolen by the cheap shard
		}
		if home == 1 && p >= 2 {
			t.Fatalf("sub %d homed to the priced-out shard and stayed there (board %d)", si, p)
		}
	}
	if spilled == 0 {
		t.Fatal("no submission homed to the expensive shard: fixture is inert")
	}
	// The expensive shard made no local decision, so its sticky state
	// must be untouched by its deferred submissions.
	if sd.lanes[1].last != -1 {
		t.Fatalf("priced-out lane sticky = %d, want -1 (no local pick)", sd.lanes[1].last)
	}
}

// TestShardedInterleavingDeterministic is the steal-order nondeterminism
// catch: the same 8-board faulted routing trace, run 50× with parallel
// lane goroutines under GOMAXPROCS ∈ {1, 4} (and once sequentially as
// the reference), must produce byte-identical routing digests every
// time. Run under -race this also proves the lanes share no state.
func TestShardedInterleavingDeterministic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	trace := func(parallel bool) uint64 {
		rng := sim.NewRand(0x1e1e)
		snaps := randomSnaps(rng, 8) // faulted: degraded/draining boards mixed in
		sd := NewShardedDispatcher(4, 0.10, 0xabcd)
		sd.SetParallel(parallel)
		h := uint64(0xcbf29ce484222325)
		for batch := 0; batch < 6; batch++ {
			subs := randomSubs(rng, 40)
			rb := sd.Route(snaps, subs)
			h ^= pickDigest(rb.Picks)
			h *= 0x100000001b3
			for i := range snaps {
				snaps[i].Price *= 1 + rng.Range(-0.2, 0.2)
				if rng.Intn(8) == 0 {
					snaps[i].Degraded = !snaps[i].Degraded
				}
			}
		}
		return h
	}

	want := trace(false) // sequential reference
	for _, gmp := range []int{1, 4} {
		runtime.GOMAXPROCS(gmp)
		for run := 0; run < 25; run++ {
			if got := trace(true); got != want {
				t.Fatalf("GOMAXPROCS=%d run %d: digest %016x, sequential reference %016x",
					gmp, run, got, want)
			}
		}
	}
}

// TestFleetShardedReplayAcrossGOMAXPROCS runs the full recorded fleet —
// sharded dispatcher, faulted board, bounded skew — under GOMAXPROCS 1
// and 4 and asserts bit-identical per-board replay digests: parallel
// lane routing and board goroutine interleaving must be invisible to
// the recorded timeline.
func TestFleetShardedReplayAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	a := runRecordedFleet(t, 4, 4)
	runtime.GOMAXPROCS(4)
	b := runRecordedFleet(t, 4, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("board %d: GOMAXPROCS=1 digest %016x, GOMAXPROCS=4 %016x", i, a[i], b[i])
		}
	}
}

// TestPropertyShardedFleetConserves is the conservation property under
// sharding: for every generated schedule and every shard count,
// submitted − shed = live + queued + in-flight at every barrier and
// after the flush.
func TestPropertyShardedFleetConserves(t *testing.T) {
	for _, S := range []int{1, 2, 4, 8} {
		S := S
		t.Run(fmt.Sprintf("S=%d", S), func(t *testing.T) {
			f := func(seed uint64) bool {
				rng := sim.NewRand(seed)
				fl, err := New(Config{
					Boards:             6,
					Seed:               seed,
					Shards:             S,
					MaxSkew:            rng.Intn(3),
					DrainDegradedAfter: 2,
					Faults: map[int]fault.Scenario{
						1: {Faults: []fault.Fault{{Type: fault.PowerDropout, Cluster: -1, Start: 5, Rounds: 100}}},
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				defer fl.Close()
				for barrier := 0; barrier < 10; barrier++ {
					for i, n := 0, rng.Intn(5); i < n; i++ {
						fl.Submit(lightSpec(fmt.Sprintf("t%d", barrier)))
					}
					if err := fl.Step(); err != nil {
						t.Fatal(err)
					}
					checkZeroLoss(t, fl)
				}
				if err := fl.Flush(); err != nil {
					t.Fatal(err)
				}
				checkZeroLoss(t, fl)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// FuzzRouteShardedVsLinear fuzzes the sharded dispatcher against the
// linear oracle over board count, shard count, steal policy, price and
// demand perturbations and degraded masks, and additionally asserts the
// RoutedBatch invariants and parallel ≡ sequential decisions.
func FuzzRouteShardedVsLinear(f *testing.F) {
	f.Add(uint64(1), uint(0), uint(4), uint(10), uint64(0), int8(10))          // empty fleet
	f.Add(uint64(2), uint(1), uint(4), uint(10), uint64(0), int8(10))          // single board
	f.Add(uint64(3), uint(6), uint(3), uint(12), uint64(0xffffffff), int8(10)) // all degraded
	f.Add(uint64(4), uint(12), uint(4), uint(40), uint64(0b1010), int8(-1))    // steal disabled
	f.Add(uint64(5), uint(9), uint(16), uint(30), uint64(0), int8(0))          // S > B, maximal stealing
	f.Fuzz(func(t *testing.T, seed uint64, boards, shards, nsubs uint, degMask uint64, theta8 int8) {
		B := int(boards % 33)
		S := int(shards%17) + 1
		N := int(nsubs % 129)
		theta := float64(theta8) / 10 // [-12.8, 12.7]
		rng := sim.NewRand(seed)
		snaps := cleanSnaps(rng, B)
		for i := range snaps {
			if degMask&(1<<uint(i%64)) != 0 {
				snaps[i].Degraded = true
			}
			if rng.Intn(5) == 0 {
				snaps[i].Draining = true
			}
		}
		hseed := rng.Uint64()
		sd := NewShardedDispatcher(S, 0.10, hseed)
		sd.StealTheta = theta
		sd.SetParallel(false)
		sp := NewShardedDispatcher(S, 0.10, hseed)
		sp.StealTheta = theta
		sp.SetParallel(true)
		or := newShardedOracle(B, S, 0.10, hseed)
		for batch := 0; batch < 2; batch++ {
			subs := randomSubs(rng, N)
			rb := sd.Route(snaps, subs)
			wantPicks, wantU := or.route(snaps, subs, theta)
			if len(subs) > 0 {
				checkRoutedBatch(t, snaps, subs, rb)
				for si := range subs {
					if rb.Picks[si] != wantPicks[si] {
						t.Fatalf("batch %d sub %d → board %d, linear oracle %d", batch, si, rb.Picks[si], wantPicks[si])
					}
				}
				if len(rb.Unrouted) != len(wantU) {
					t.Fatalf("batch %d: %d unrouted, oracle %d", batch, len(rb.Unrouted), len(wantU))
				}
				pb := sp.Route(snaps, subs)
				if pickDigest(pb.Picks) != pickDigest(rb.Picks) {
					t.Fatalf("batch %d: parallel lanes diverge from sequential", batch)
				}
			}
			for i := range snaps {
				snaps[i].Price *= 1 + rng.Range(-0.3, 0.3)
			}
		}
	})
}
