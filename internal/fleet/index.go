package fleet

// priceIndex is the dispatcher's price-ordered admissibility index: an
// indexed min-heap over the projected snapshots of the boards that are
// admissible at the current barrier, ordered by (projected price, board
// ID). It is rebuilt once per barrier — Route builds it over its local
// projection copy — and adjusted in place as demand projection bumps a
// board's projected price, so choosing the cheapest admissible board for
// one submission costs O(log B) instead of the former O(B) scan.
//
// The board-ID tie-break makes the heap's minimum exactly the board the
// linear scan would have found (the scan keeps the first strict minimum),
// which is what lets TestPropertyIndexMatchesLinearOracle demand bitwise
// identical routing from the two implementations.
type priceIndex struct {
	snaps []Snapshot // the caller's projection; entries mutate between ops
	price []float64  // board ID → cached projected price, kept in sync by reset/fix
	heap  []int      // board IDs ordered by (price[i], i)
	pos   []int      // board ID → heap slot, -1 when evicted/inadmissible
}

// reset rebuilds the index over proj, admitting only boards that are
// admissible right now. O(B). The heap and position slices are reused
// across barriers — the per-barrier rebuild allocates nothing once the
// dispatcher's scratch has grown to the fleet size.
func (x *priceIndex) reset(proj []Snapshot) {
	x.resetRange(proj, 0, len(proj))
}

// resetRange rebuilds the index over the board range [lo, hi) of proj —
// the per-shard form: a sharded dispatcher gives every shard its own
// priceIndex over its contiguous board slice, so S shards rebuild S small
// heaps (independently, in parallel) instead of one fleet-wide heap. Heap
// entries and the order relation still use global board IDs, which keeps
// the (price, board ID) tie-break identical to the unsharded index; pos
// entries outside [lo, hi) are never read by a range-scoped index.
func (x *priceIndex) resetRange(proj []Snapshot, lo, hi int) {
	x.snaps = proj
	x.heap = x.heap[:0]
	if cap(x.pos) < len(proj) {
		x.pos = make([]int, len(proj))
		x.price = make([]float64, len(proj))
	}
	x.pos = x.pos[:len(proj)]
	x.price = x.price[:len(proj)]
	for i := lo; i < hi; i++ {
		x.pos[i] = -1
		x.price[i] = proj[i].Price
		if proj[i].Admissible() {
			x.pos[i] = len(x.heap)
			x.heap = append(x.heap, i)
		}
	}
	for s := len(x.heap)/2 - 1; s >= 0; s-- {
		x.down(s)
	}
}

// less orders heap slots a,b by (price, board ID): ties resolve to the
// lower board ID, matching the linear scan's first-minimum rule. Prices
// come from the flat per-board cache, not the snapshots — a sift touches
// a handful of contiguous float64s instead of scattered ~150-byte
// Snapshot structs, which is most of the heap's cost at fleet scale.
func (x *priceIndex) less(a, b int) bool {
	i, j := x.heap[a], x.heap[b]
	if x.price[i] != x.price[j] {
		return x.price[i] < x.price[j]
	}
	return i < j
}

func (x *priceIndex) swap(a, b int) {
	x.heap[a], x.heap[b] = x.heap[b], x.heap[a]
	x.pos[x.heap[a]] = a
	x.pos[x.heap[b]] = b
}

func (x *priceIndex) up(s int) {
	for s > 0 {
		parent := (s - 1) / 2
		if !x.less(s, parent) {
			return
		}
		x.swap(s, parent)
		s = parent
	}
}

func (x *priceIndex) down(s int) {
	n := len(x.heap)
	for {
		l := 2*s + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && x.less(r, l) {
			min = r
		}
		if !x.less(min, s) {
			return
		}
		x.swap(s, min)
		s = min
	}
}

// min returns the cheapest admissible board, or -1 when none remains.
func (x *priceIndex) min() int {
	if len(x.heap) == 0 {
		return -1
	}
	return x.heap[0]
}

// contains reports whether board i is still in the index (admissible).
func (x *priceIndex) contains(i int) bool {
	return i >= 0 && i < len(x.pos) && x.pos[i] >= 0
}

// fix restores heap order after snaps[i].Price changed, refreshing the
// price cache from the projection. O(log B). Within a barrier projection
// only raises prices, so the up-sift exits immediately; it stays for
// generality.
func (x *priceIndex) fix(i int) {
	s := x.pos[i]
	if s < 0 {
		return
	}
	x.price[i] = x.snaps[i].Price
	x.up(s)
	x.down(s)
}

// remove evicts board i — it projected past its supply ceiling and is no
// longer admissible this barrier. O(log B).
func (x *priceIndex) remove(i int) {
	s := x.pos[i]
	if s < 0 {
		return
	}
	last := len(x.heap) - 1
	if s != last {
		x.swap(s, last)
	}
	x.heap = x.heap[:last]
	x.pos[i] = -1
	if s != last {
		x.up(s)
		x.down(s)
	}
}
