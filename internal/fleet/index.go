package fleet

// priceIndex is the dispatcher's price-ordered admissibility index: an
// indexed min-heap over the projected snapshots of the boards that are
// admissible at the current barrier, ordered by (projected price, board
// ID). It is rebuilt once per barrier — Route builds it over its local
// projection copy — and adjusted in place as demand projection bumps a
// board's projected price, so choosing the cheapest admissible board for
// one submission costs O(log B) instead of the former O(B) scan.
//
// The board-ID tie-break makes the heap's minimum exactly the board the
// linear scan would have found (the scan keeps the first strict minimum),
// which is what lets TestPropertyIndexMatchesLinearOracle demand bitwise
// identical routing from the two implementations.
type priceIndex struct {
	snaps []Snapshot // the caller's projection; entries mutate between ops
	heap  []int      // board IDs ordered by (snaps[i].Price, i)
	pos   []int      // board ID → heap slot, -1 when evicted/inadmissible
}

// reset rebuilds the index over proj, admitting only boards that are
// admissible right now. O(B). The heap and position slices are reused
// across barriers — the per-barrier rebuild allocates nothing once the
// dispatcher's scratch has grown to the fleet size.
func (x *priceIndex) reset(proj []Snapshot) {
	x.snaps = proj
	x.heap = x.heap[:0]
	if cap(x.pos) < len(proj) {
		x.pos = make([]int, len(proj))
	}
	x.pos = x.pos[:len(proj)]
	for i := range proj {
		x.pos[i] = -1
		if proj[i].Admissible() {
			x.pos[i] = len(x.heap)
			x.heap = append(x.heap, i)
		}
	}
	for s := len(x.heap)/2 - 1; s >= 0; s-- {
		x.down(s)
	}
}

// less orders heap slots a,b by (price, board ID): ties resolve to the
// lower board ID, matching the linear scan's first-minimum rule.
func (x *priceIndex) less(a, b int) bool {
	i, j := x.heap[a], x.heap[b]
	if x.snaps[i].Price != x.snaps[j].Price {
		return x.snaps[i].Price < x.snaps[j].Price
	}
	return i < j
}

func (x *priceIndex) swap(a, b int) {
	x.heap[a], x.heap[b] = x.heap[b], x.heap[a]
	x.pos[x.heap[a]] = a
	x.pos[x.heap[b]] = b
}

func (x *priceIndex) up(s int) {
	for s > 0 {
		parent := (s - 1) / 2
		if !x.less(s, parent) {
			return
		}
		x.swap(s, parent)
		s = parent
	}
}

func (x *priceIndex) down(s int) {
	n := len(x.heap)
	for {
		l := 2*s + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && x.less(r, l) {
			min = r
		}
		if !x.less(min, s) {
			return
		}
		x.swap(s, min)
		s = min
	}
}

// min returns the cheapest admissible board, or -1 when none remains.
func (x *priceIndex) min() int {
	if len(x.heap) == 0 {
		return -1
	}
	return x.heap[0]
}

// contains reports whether board i is still in the index (admissible).
func (x *priceIndex) contains(i int) bool {
	return i >= 0 && i < len(x.pos) && x.pos[i] >= 0
}

// fix restores heap order after snaps[i].Price changed. O(log B).
func (x *priceIndex) fix(i int) {
	s := x.pos[i]
	if s < 0 {
		return
	}
	x.up(s)
	x.down(s)
}

// remove evicts board i — it projected past its supply ceiling and is no
// longer admissible this barrier. O(log B).
func (x *priceIndex) remove(i int) {
	s := x.pos[i]
	if s < 0 {
		return
	}
	last := len(x.heap) - 1
	if s != last {
		x.swap(s, last)
	}
	x.heap = x.heap[:last]
	x.pos[i] = -1
	if s != last {
		x.up(s)
		x.down(s)
	}
}
