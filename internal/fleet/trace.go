package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/workload"
)

// ArrivalTrace is the submission format shared by fleetd's -trace flag
// and its POST /submit body: a batch of registry-known benchmark×input
// tasks, optionally offset into the fleet's virtual future. Benchmark
// and input names resolve case-insensitively through the workload
// registry.
type ArrivalTrace struct {
	Tasks []Arrival `json:"tasks"`
}

// Arrival is one trace entry: Count copies of bench×input at priority,
// due AtMS milliseconds of virtual time after the entry is accepted
// (0 = next barrier).
type Arrival struct {
	Bench    string `json:"bench"`
	Input    string `json:"input"`
	Priority int    `json:"priority,omitempty"` // default 1
	Count    int    `json:"count,omitempty"`    // default 1
	AtMS     int64  `json:"at_ms,omitempty"`
}

// Resolve expands the trace into (spec, due-time) pairs in trace order,
// validating every entry against the workload registry.
func (tr *ArrivalTrace) Resolve() ([]TimedSpec, error) {
	var out []TimedSpec
	for i, a := range tr.Tasks {
		b, ok := workload.ByName(a.Bench)
		if !ok {
			return nil, fmt.Errorf("fleet: trace entry %d: unknown benchmark %q", i, a.Bench)
		}
		prio := a.Priority
		if prio == 0 {
			prio = 1
		}
		spec, err := b.Spec(a.Input, prio)
		if err != nil {
			return nil, fmt.Errorf("fleet: trace entry %d: %w", i, err)
		}
		count := a.Count
		if count <= 0 {
			count = 1
		}
		if a.AtMS < 0 {
			return nil, fmt.Errorf("fleet: trace entry %d: negative at_ms", i)
		}
		for n := 0; n < count; n++ {
			out = append(out, TimedSpec{At: sim.Time(a.AtMS) * sim.Millisecond, Spec: spec})
		}
	}
	return out, nil
}

// TimedSpec is a resolved arrival: the spec and its virtual due time
// relative to acceptance.
type TimedSpec struct {
	At   sim.Time
	Spec task.Spec
}

// ParseTrace decodes an ArrivalTrace, rejecting unknown fields so typos
// in hand-written traces fail loudly.
func ParseTrace(r io.Reader) (*ArrivalTrace, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var tr ArrivalTrace
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("fleet: trace: %w", err)
	}
	if len(tr.Tasks) == 0 {
		return nil, fmt.Errorf("fleet: trace: no tasks")
	}
	return &tr, nil
}

// LoadTrace reads and resolves a trace file.
func LoadTrace(path string) ([]TimedSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	specs, err := tr.Resolve()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return specs, nil
}

// SubmitTimed feeds resolved arrivals into the fleet: due-now entries go
// straight to the admission queue, future ones onto the virtual-time
// schedule (offsets are relative to the fleet's current time).
func SubmitTimed(f *Fleet, specs []TimedSpec) {
	base := f.Now()
	for _, ts := range specs {
		if ts.At <= 0 {
			f.Submit(ts.Spec)
		} else {
			f.SubmitAt(base+ts.At, ts.Spec)
		}
	}
}
