package fleet

import (
	"pricepower/internal/task"
	"pricepower/internal/workload"
)

// defaultDemandPU is the routing-time demand estimate for a task with no
// profile and no usable spec data — roughly a medium Table 5 benchmark on
// a LITTLE core.
const defaultDemandPU = 300

// EstimateDemandPU predicts the LITTLE-cluster demand of a spec for
// routing purposes: the off-line profile when the task is registry-known,
// otherwise the spec's own first-phase cost at its target heart rate,
// otherwise a flat default. Routing only needs relative magnitudes — the
// market corrects any misprediction once the task lands.
func EstimateDemandPU(spec task.Spec) float64 {
	if p, ok := workload.ProfileFor(spec.Name); ok {
		return p.DemandLittle
	}
	if hr := spec.TargetHR(); hr > 0 && len(spec.Phases) > 0 {
		if d := spec.Phases[0].HBCostLittle * hr; d > 0 {
			return d
		}
	}
	return defaultDemandPU
}

// Dispatcher is the price router: cheapest-clearing-price-first over the
// admissible boards, with hysteresis so small price wobbles between
// near-equal boards do not ping-pong consecutive submissions. It is pure
// state-machine code over Snapshot values — no locks, no board access —
// so its decisions replay exactly from a recorded snapshot sequence.
type Dispatcher struct {
	// Hysteresis is the fractional price advantage a challenger board
	// must show over the previously chosen board before the dispatcher
	// switches away from it (default DefaultHysteresis via Fleet).
	Hysteresis float64

	last int // board chosen by the previous Pick; -1 before any pick

	// Per-barrier scratch, reused across Route calls so the steady-state
	// routing path stops allocating. The dispatcher is single-caller by
	// contract (it already carries sticky-choice state in last), so the
	// reuse needs no synchronization. picks/counts hold the per-spec
	// board decisions and per-board tallies between Route's two passes;
	// the assignment slices themselves are carved from a fresh exactly-
	// sized backing array per call (they are handed to the caller and may
	// outlive the barrier in a skewed pipeline).
	proj   []Snapshot
	idx    priceIndex
	picks  []int
	counts []int
}

// NewDispatcher builds a dispatcher with the given hysteresis fraction.
func NewDispatcher(hysteresis float64) *Dispatcher {
	return &Dispatcher{Hysteresis: hysteresis, last: -1}
}

// Pick chooses the board for one task given the per-board snapshots:
// the admissible board with the lowest clearing price, except that the
// previously picked board is kept while it stays admissible and within
// the hysteresis band of the cheapest. Returns -1 when no board is
// admissible (the admission controller then queues or sheds).
func (d *Dispatcher) Pick(snaps []Snapshot) int {
	best := -1
	for i := range snaps {
		if !snaps[i].Admissible() {
			continue
		}
		if best == -1 || snaps[i].Price < snaps[best].Price {
			best = i
		}
	}
	if best == -1 {
		d.last = -1
		return -1
	}
	// Sticky choice: keep the previous board unless the cheapest
	// undercuts it by more than the hysteresis fraction.
	if d.last >= 0 && d.last < len(snaps) && d.last != best && snaps[d.last].Admissible() {
		if snaps[best].Price >= snaps[d.last].Price*(1-d.Hysteresis) {
			best = d.last
		}
	}
	d.last = best
	return best
}

// project charges one assignment's estimated demand against the local
// snapshot copy and bumps the projected price proportionally: clearing
// prices grow with demand over supply, so scale by the added load
// fraction. A board that has not discovered a price yet (idle market)
// gets a pseudo-price so repeated picks still spread.
func project(proj []Snapshot, i int, est float64) {
	proj[i].Tasks++
	proj[i].DemandPU += est
	frac := est / proj[i].MaxSupplyPU
	if proj[i].Price > 0 {
		proj[i].Price *= 1 + frac
	} else {
		proj[i].Price = frac
	}
}

// Route assigns a batch of specs to boards. The snapshots are copied and
// each assignment projects its estimated demand (and a proportional price
// bump) onto the copy, so one large batch spreads across boards instead
// of dog-piling the board that was cheapest at the barrier; real prices
// take over at the next barrier. assign is indexed by board (nil when the
// batch was empty, entries nil for boards that got nothing); specs that
// find no admissible board are returned in arrival order as unrouted.
//
// Routing is sublinear in the fleet size: a price-ordered admissibility
// index (priceIndex) is built once over the projection — rebuilt each
// barrier, adjusted in place as demand projection bumps prices — and
// each pick then costs O(log B) for the heap fix-up after the projection
// bump, instead of the former O(B) scan per submission. RouteLinear
// keeps the scan as the reference oracle;
// TestPropertyIndexMatchesLinearOracle pins the two to identical
// assignments.
func (d *Dispatcher) Route(snaps []Snapshot, specs []task.Spec) (assign [][]task.Spec, unrouted []task.Spec) {
	if len(specs) == 0 {
		return nil, nil
	}
	if cap(d.proj) < len(snaps) {
		d.proj = make([]Snapshot, len(snaps))
	}
	proj := d.proj[:len(snaps)]
	copy(proj, snaps)
	d.idx.reset(proj)
	if cap(d.picks) < len(specs) {
		d.picks = make([]int, len(specs))
	}
	picks := d.picks[:len(specs)]
	if cap(d.counts) < len(snaps) {
		d.counts = make([]int, len(snaps))
	}
	counts := d.counts[:len(snaps)]
	for i := range counts {
		counts[i] = 0
	}
	// Pass one: pick a board per spec, projecting demand as we go.
	routed := 0
	for si, spec := range specs {
		i := d.pickIndexed(&d.idx)
		picks[si] = i
		if i < 0 {
			unrouted = append(unrouted, spec)
			continue
		}
		counts[i]++
		routed++
		project(proj, i, EstimateDemandPU(spec))
		if proj[i].Admissible() {
			d.idx.fix(i)
		} else {
			d.idx.remove(i)
		}
	}
	// Pass two: carve each board's assignment out of one exactly-sized
	// backing array (three-index slices so boards cannot overrun into a
	// neighbour), then fill in arrival order. This replaces per-board
	// append growth — the dominant routing cost at large fleets — with a
	// single allocation.
	assign = make([][]task.Spec, len(snaps))
	buf := make([]task.Spec, routed)
	off := 0
	for i, c := range counts {
		if c > 0 {
			assign[i] = buf[off : off : off+c]
			off += c
		}
	}
	for si, spec := range specs {
		if b := picks[si]; b >= 0 {
			assign[b] = append(assign[b], spec)
		}
	}
	return assign, unrouted
}

// pickIndexed is Pick against the price index: the heap minimum is the
// cheapest admissible board (lowest board ID on price ties, exactly the
// linear scan's answer), with the same sticky-choice hysteresis on top.
// Projection only ever makes a board more loaded within a barrier, so a
// board leaves the index exactly when the scan would have seen it turn
// inadmissible.
func (d *Dispatcher) pickIndexed(idx *priceIndex) int {
	best := idx.min()
	if best < 0 {
		d.last = -1
		return -1
	}
	if d.last >= 0 && d.last < len(idx.snaps) && d.last != best && idx.contains(d.last) {
		if idx.snaps[best].Price >= idx.snaps[d.last].Price*(1-d.Hysteresis) {
			best = d.last
		}
	}
	d.last = best
	return best
}

// RouteLinear is the pre-index reference implementation — one full
// admissibility scan per submission. It is kept as the equivalence oracle
// for the property tests and as the baseline the fleet_saturation
// benchmark dimension measures the index against; production routing goes
// through Route.
func (d *Dispatcher) RouteLinear(snaps []Snapshot, specs []task.Spec) (assign [][]task.Spec, unrouted []task.Spec) {
	if len(specs) == 0 {
		return nil, nil
	}
	proj := make([]Snapshot, len(snaps))
	copy(proj, snaps)
	assign = make([][]task.Spec, len(snaps))
	for _, spec := range specs {
		i := d.Pick(proj)
		if i < 0 {
			unrouted = append(unrouted, spec)
			continue
		}
		assign[i] = append(assign[i], spec)
		project(proj, i, EstimateDemandPU(spec))
	}
	return assign, unrouted
}
