package fleet

import (
	"pricepower/internal/task"
	"pricepower/internal/workload"
)

// defaultDemandPU is the routing-time demand estimate for a task with no
// profile and no usable spec data — roughly a medium Table 5 benchmark on
// a LITTLE core.
const defaultDemandPU = 300

// EstimateDemandPU predicts the LITTLE-cluster demand of a spec for
// routing purposes: the off-line profile when the task is registry-known,
// otherwise the spec's own first-phase cost at its target heart rate,
// otherwise a flat default. Routing only needs relative magnitudes — the
// market corrects any misprediction once the task lands.
func EstimateDemandPU(spec task.Spec) float64 {
	if p, ok := workload.ProfileFor(spec.Name); ok {
		return p.DemandLittle
	}
	if hr := spec.TargetHR(); hr > 0 && len(spec.Phases) > 0 {
		if d := spec.Phases[0].HBCostLittle * hr; d > 0 {
			return d
		}
	}
	return defaultDemandPU
}

// Dispatcher is the price router: cheapest-clearing-price-first over the
// admissible boards, with hysteresis so small price wobbles between
// near-equal boards do not ping-pong consecutive submissions. It is pure
// state-machine code over Snapshot values — no locks, no board access —
// so its decisions replay exactly from a recorded snapshot sequence.
type Dispatcher struct {
	// Hysteresis is the fractional price advantage a challenger board
	// must show over the previously chosen board before the dispatcher
	// switches away from it (default DefaultHysteresis via Fleet).
	Hysteresis float64

	last int // board chosen by the previous Pick; -1 before any pick
}

// NewDispatcher builds a dispatcher with the given hysteresis fraction.
func NewDispatcher(hysteresis float64) *Dispatcher {
	return &Dispatcher{Hysteresis: hysteresis, last: -1}
}

// Pick chooses the board for one task given the per-board snapshots:
// the admissible board with the lowest clearing price, except that the
// previously picked board is kept while it stays admissible and within
// the hysteresis band of the cheapest. Returns -1 when no board is
// admissible (the admission controller then queues or sheds).
func (d *Dispatcher) Pick(snaps []Snapshot) int {
	best := -1
	for i := range snaps {
		if !snaps[i].Admissible() {
			continue
		}
		if best == -1 || snaps[i].Price < snaps[best].Price {
			best = i
		}
	}
	if best == -1 {
		d.last = -1
		return -1
	}
	// Sticky choice: keep the previous board unless the cheapest
	// undercuts it by more than the hysteresis fraction.
	if d.last >= 0 && d.last < len(snaps) && d.last != best && snaps[d.last].Admissible() {
		if snaps[best].Price >= snaps[d.last].Price*(1-d.Hysteresis) {
			best = d.last
		}
	}
	d.last = best
	return best
}

// Route assigns a batch of specs to boards. The snapshots are copied and
// each assignment projects its estimated demand (and a proportional price
// bump) onto the copy, so one large batch spreads across boards instead
// of dog-piling the board that was cheapest at the barrier; real prices
// take over at the next barrier. Specs that find no admissible board are
// returned in arrival order as unrouted.
func (d *Dispatcher) Route(snaps []Snapshot, specs []task.Spec) (assign map[int][]task.Spec, unrouted []task.Spec) {
	if len(specs) == 0 {
		return nil, nil
	}
	proj := make([]Snapshot, len(snaps))
	copy(proj, snaps)
	assign = make(map[int][]task.Spec)
	for _, spec := range specs {
		i := d.Pick(proj)
		if i < 0 {
			unrouted = append(unrouted, spec)
			continue
		}
		assign[i] = append(assign[i], spec)
		est := EstimateDemandPU(spec)
		proj[i].Tasks++
		proj[i].DemandPU += est
		// Project the price response: clearing prices grow with
		// demand over supply, so scale by the added load fraction.
		// A board that has not discovered a price yet (idle market)
		// gets a pseudo-price so repeated picks still spread.
		frac := est / proj[i].MaxSupplyPU
		if proj[i].Price > 0 {
			proj[i].Price *= 1 + frac
		} else {
			proj[i].Price = frac
		}
	}
	return assign, unrouted
}
