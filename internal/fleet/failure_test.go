package fleet

import (
	"errors"
	"testing"
	"time"

	"pricepower/internal/fault"
)

// crashScenario schedules one injected board-crash window.
func crashScenario(start, rounds int) fault.Scenario {
	return fault.Scenario{Faults: []fault.Fault{
		{Type: fault.BoardCrash, Start: start, Rounds: rounds},
	}}
}

// stallScenario schedules one injected board-stall window.
func stallScenario(start, rounds int) fault.Scenario {
	return fault.Scenario{Faults: []fault.Fault{
		{Type: fault.BoardStall, Start: start, Rounds: rounds},
	}}
}

// stepChecked steps once, tolerating crash-only errors (the supervised
// path), and asserts the extended zero-loss identity at the barrier.
func stepChecked(t *testing.T, f *Fleet) {
	t.Helper()
	if err := f.Step(); err != nil {
		if _, only := CrashErrors(err); !only {
			t.Fatal(err)
		}
	}
	checkZeroLoss(t, f)
}

// TestBoardCrashOrphansAndRestarts walks the full crash → orphan →
// restart → re-place lifecycle on one board, asserting the extended
// zero-loss identity at every barrier along the way.
func TestBoardCrashOrphansAndRestarts(t *testing.T) {
	f, err := New(Config{
		Boards:       4,
		Seed:         42,
		Check:        true,
		RestartAfter: 2,
		Faults:       map[int]fault.Scenario{1: crashScenario(5, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 16; i++ {
		f.Submit(lightSpec("t"))
	}
	var sawCrash, sawRestart bool
	for i := 0; i < 20; i++ {
		err := f.Step()
		if err != nil {
			crashes, only := CrashErrors(err)
			if !only {
				t.Fatal(err)
			}
			if len(crashes) != 1 || crashes[0].Board != 1 || crashes[0].Barrier != 5 {
				t.Fatalf("crash report = %+v, want board 1 at barrier 5", crashes)
			}
			sawCrash = true
		}
		checkZeroLoss(t, f)
		st := f.StateSnapshot()
		if st.Boards[1].Epoch == 1 && !st.Boards[1].Crashed {
			sawRestart = true
		}
	}
	if !sawCrash {
		t.Fatal("injected board-crash never detected")
	}
	if !sawRestart {
		t.Fatal("board 1 never restarted under epoch 1")
	}
	st := f.StateSnapshot()
	if st.Counters.Crashes != 1 || st.Counters.Restarts != 1 {
		t.Fatalf("counters crashes=%d restarts=%d, want 1/1", st.Counters.Crashes, st.Counters.Restarts)
	}
	if st.Counters.Orphaned == 0 || st.Counters.Orphaned != st.Counters.Replaced {
		t.Fatalf("orphaned %d replaced %d: every orphan must be re-placed after restart",
			st.Counters.Orphaned, st.Counters.Replaced)
	}
	if st.Orphaned != 0 {
		t.Fatalf("supervisor still holds %d orphans after restart", st.Orphaned)
	}
	if st.Live() == 0 {
		t.Fatal("no live tasks after recovery")
	}
}

// TestCollectJoinsMultipleCrashErrors injects crashes on two boards at
// the same barrier: the step error must be a join naming both boards,
// and the barrier must still complete (the run keeps stepping).
func TestCollectJoinsMultipleCrashErrors(t *testing.T) {
	f, err := New(Config{
		Boards: 4,
		Seed:   7,
		Check:  true,
		Faults: map[int]fault.Scenario{
			1: crashScenario(5, 1),
			2: crashScenario(5, 1),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 12; i++ {
		f.Submit(lightSpec("t"))
	}
	var reported []*CrashError
	for i := 0; i < 8; i++ {
		if err := f.Step(); err != nil {
			crashes, only := CrashErrors(err)
			if !only {
				t.Fatal(err)
			}
			reported = append(reported, crashes...)
		}
		checkZeroLoss(t, f)
	}
	if len(reported) != 2 {
		t.Fatalf("got %d crash errors, want 2 (both boards in one joined error)", len(reported))
	}
	boards := map[int]bool{}
	for _, ce := range reported {
		if ce.Barrier != 5 {
			t.Errorf("crash on board %d detected at barrier %d, want 5", ce.Board, ce.Barrier)
		}
		boards[ce.Board] = true
	}
	if !boards[1] || !boards[2] {
		t.Fatalf("crash errors name boards %v, want 1 and 2", boards)
	}
	// Without restarts both boards quarantine permanently and their
	// orphans re-place immediately.
	st := f.StateSnapshot()
	if st.Counters.Crashes != 2 {
		t.Fatalf("crashes = %d, want 2", st.Counters.Crashes)
	}
	if st.Orphaned != 0 || st.Counters.Orphaned != st.Counters.Replaced {
		t.Fatalf("orphans not re-placed: held %d, orphaned %d, replaced %d",
			st.Orphaned, st.Counters.Orphaned, st.Counters.Replaced)
	}
}

// TestCrashAndStallSameBarrier is the acceptance scenario: one board
// crashes and another stalls in the same batch, and the barrier still
// completes — no deadlock, zero loss, and the stalled board catches up
// while the crashed one stays quarantined.
func TestCrashAndStallSameBarrier(t *testing.T) {
	f, err := New(Config{
		Boards:        4,
		Seed:          11,
		Check:         true,
		StallBarriers: 2,
		Faults: map[int]fault.Scenario{
			1: crashScenario(5, 1),
			2: stallScenario(5, 3),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 16; i++ {
		f.Submit(lightSpec("t"))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 12; i++ {
			stepChecked(t, f)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fleet deadlocked with a crashed and a stalled board in one batch")
	}
	st := f.StateSnapshot()
	if st.Counters.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", st.Counters.Crashes)
	}
	if st.Counters.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1 (board 2 missed %d barriers)", st.Counters.Stalls, 3)
	}
	if !st.Boards[1].Crashed {
		t.Fatal("board 1 not marked crashed")
	}
	if st.Boards[2].Crashed || st.Boards[2].Stalled {
		t.Fatal("board 2 should have caught up by now")
	}
}

// TestStallQuarantineAndCatchUp pins the deterministic stall detector:
// below StallBarriers misses the board keeps its routable (stale)
// snapshot, at the threshold it quarantines, and its first real reply
// clears the quarantine with the deferred batches replayed in order.
func TestStallQuarantineAndCatchUp(t *testing.T) {
	f, err := New(Config{
		Boards:        2,
		Seed:          3,
		Check:         true,
		StallBarriers: 2,
		Faults:        map[int]fault.Scenario{0: stallScenario(3, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 8; i++ {
		f.Submit(lightSpec("t"))
	}
	quarantinedAt := -1
	for i := 1; i <= 10; i++ {
		stepChecked(t, f)
		st := f.StateSnapshot()
		if st.Boards[0].Stalled && quarantinedAt < 0 {
			quarantinedAt = i
		}
	}
	// Stall window covers barriers 3,4,5: miss 1 at barrier 3, miss 2
	// (quarantine) at barrier 4, catch-up at barrier 6.
	if quarantinedAt != 4 {
		t.Fatalf("quarantined at barrier %d, want 4 (second consecutive miss)", quarantinedAt)
	}
	st := f.StateSnapshot()
	if st.Boards[0].Stalled {
		t.Fatal("board 0 still quarantined after catch-up")
	}
	if st.Counters.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", st.Counters.Stalls)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after catch-up, want 0", st.InFlight)
	}
}

// TestZeroLossAcrossCrashRestartForAllShardCounts is the satellite
// property test: for every dispatcher shard count, a crash → restart →
// re-place cycle conserves every accepted task at every barrier.
func TestZeroLossAcrossCrashRestartForAllShardCounts(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		f, err := New(Config{
			Boards:       8,
			Seed:         0xfee1de7e,
			Shards:       shards,
			MaxSkew:      2,
			Check:        true,
			RestartAfter: 2,
			Faults:       map[int]fault.Scenario{3: crashScenario(6, 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			f.Submit(lightSpec("t"))
		}
		for i := 0; i < 24; i++ {
			stepChecked(t, f)
		}
		if err := f.Flush(); err != nil {
			if _, only := CrashErrors(err); !only {
				t.Fatal(err)
			}
		}
		checkZeroLoss(t, f)
		st := f.StateSnapshot()
		if st.Counters.Crashes != 1 || st.Counters.Restarts != 1 {
			t.Fatalf("shards %d: crashes=%d restarts=%d, want 1/1",
				shards, st.Counters.Crashes, st.Counters.Restarts)
		}
		if st.Orphaned != 0 {
			t.Fatalf("shards %d: %d orphans still held after restart", shards, st.Orphaned)
		}
		f.Close()
	}
}

// TestPermanentQuarantineReplacesOrphansImmediately pins the
// no-restarts path (RestartAfter 0): a crash retires the board for good
// and its orphans re-enter the dispatcher in the same step.
func TestPermanentQuarantineReplacesOrphansImmediately(t *testing.T) {
	f, err := New(Config{
		Boards: 2,
		Seed:   9,
		Check:  true,
		Faults: map[int]fault.Scenario{0: crashScenario(4, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 8; i++ {
		f.Submit(lightSpec("t"))
	}
	for i := 0; i < 10; i++ {
		stepChecked(t, f)
	}
	st := f.StateSnapshot()
	if st.Counters.Restarts != 0 {
		t.Fatalf("restarts = %d with RestartAfter 0", st.Counters.Restarts)
	}
	if !st.Boards[0].Crashed {
		t.Fatal("board 0 should stay crashed forever")
	}
	if st.Orphaned != 0 || st.Counters.Replaced != st.Counters.Orphaned {
		t.Fatalf("orphans not immediately re-placed: held %d, orphaned %d, replaced %d",
			st.Orphaned, st.Counters.Orphaned, st.Counters.Replaced)
	}
	// Everything must have landed on the surviving board.
	if st.Boards[1].Tasks == 0 {
		t.Fatal("surviving board took no work")
	}
	// The supervisor owns a crashed board: manual drain/resume refuse.
	if err := f.Drain(0); err == nil {
		t.Fatal("Drain of a crashed board must refuse")
	}
	if err := f.Resume(0); err == nil {
		t.Fatal("Resume of a crashed board must refuse")
	}
}

// TestMaxRestartsCapsResurrection crashes the same board in every epoch
// and asserts the supervisor gives up at the cap.
func TestMaxRestartsCapsResurrection(t *testing.T) {
	f, err := New(Config{
		Boards:       2,
		Seed:         5,
		Check:        true,
		RestartAfter: 1,
		MaxRestarts:  2,
		// An always-open crash window: the board dies again at its first
		// post-restart barrier, every epoch.
		Faults: map[int]fault.Scenario{0: crashScenario(3, 1000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 6; i++ {
		f.Submit(lightSpec("t"))
	}
	for i := 0; i < 30; i++ {
		stepChecked(t, f)
	}
	st := f.StateSnapshot()
	if st.Counters.Restarts != 2 {
		t.Fatalf("restarts = %d, want exactly MaxRestarts = 2", st.Counters.Restarts)
	}
	if st.Counters.Crashes != 3 {
		t.Fatalf("crashes = %d, want 3 (initial + one per restart)", st.Counters.Crashes)
	}
	if !st.Boards[0].Crashed {
		t.Fatal("board 0 must end permanently quarantined")
	}
	if st.Orphaned != 0 {
		t.Fatalf("%d orphans still held after permanent quarantine", st.Orphaned)
	}
}

// TestLivenessDeadlineNamesHungBoards kills a board's goroutine behind
// the fleet's back — a real hang, unlike the injected stall sentinel —
// and asserts collection fails fast with the hung board named instead
// of deadlocking.
func TestLivenessDeadlineNamesHungBoards(t *testing.T) {
	f, err := New(Config{Boards: 2, Seed: 13, Liveness: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Stop board 0's goroutine directly: its buffered command channel
	// swallows the next step command and never replies.
	reply := make(chan struct{})
	f.boards[0].cmd <- stopCmd{reply: reply}
	<-reply

	f.Submit(lightSpec("t"))
	err = f.Step()
	if err == nil {
		t.Fatal("Step succeeded with a hung board")
	}
	var le *LivenessError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LivenessError", err)
	}
	if len(le.Boards) != 1 || le.Boards[0] != 0 {
		t.Fatalf("hung boards = %v, want [0]", le.Boards)
	}
	if le.Deadline != 100*time.Millisecond || le.Barrier != 1 {
		t.Fatalf("liveness report = %+v, want barrier 1 at 100ms", le)
	}
	// The fleet is wedged by design after a liveness failure; stop the
	// surviving board directly rather than Close (which would block on
	// the dead one).
	reply = make(chan struct{})
	f.boards[1].cmd <- stopCmd{reply: reply}
	<-reply
}

// TestInjectedStallsNeverTripLiveness pins the deadline's determinism
// contract: an injected stall answers with a sentinel instantly, so a
// generous wall-clock deadline must not fire for it.
func TestInjectedStallsNeverTripLiveness(t *testing.T) {
	f, err := New(Config{
		Boards:   2,
		Seed:     3,
		Check:    true,
		Liveness: 5 * time.Second,
		Faults:   map[int]fault.Scenario{0: stallScenario(2, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Submit(lightSpec("t"))
	for i := 0; i < 8; i++ {
		stepChecked(t, f)
	}
	if st := f.StateSnapshot(); st.Counters.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", st.Counters.Stalls)
	}
}

// runFaultedRecordedFleet mirrors runRecordedFleet with the board
// failure domain active: a crash (with supervised restart) on board 2
// and a stall window on board 5, over the same recorded arrival trace.
func runFaultedRecordedFleet(t *testing.T, skew, shards int) []uint64 {
	t.Helper()
	f, err := New(Config{
		Boards:        8,
		Seed:          0xfee1de7e,
		MaxSkew:       skew,
		Shards:        shards,
		Record:        true,
		Check:         true,
		RestartAfter:  3,
		StallBarriers: 2,
		Faults: map[int]fault.Scenario{
			2: crashScenario(6, 1),
			5: stallScenario(4, 3),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	arrivals := &ArrivalTrace{Tasks: []Arrival{
		{Bench: "swaptions", Input: "n", Count: 4},
		{Bench: "blackscholes", Input: "l", Count: 3},
		{Bench: "x264", Input: "n", Count: 3, AtMS: 300},
		{Bench: "bodytrack", Input: "n", Count: 2, AtMS: 800},
	}}
	specs, err := arrivals.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	SubmitTimed(f, specs)

	sawCrash := false
	for i := 0; i < 24; i++ {
		if err := f.Step(); err != nil {
			crashes, only := CrashErrors(err)
			if !only {
				t.Fatal(err)
			}
			sawCrash = sawCrash || len(crashes) > 0
		}
		checkZeroLoss(t, f)
	}
	if err := f.Flush(); err != nil {
		if _, only := CrashErrors(err); !only {
			t.Fatal(err)
		}
	}
	checkZeroLoss(t, f)
	if !sawCrash {
		t.Fatal("faulted run saw no crash — the scenario is not exercising the supervisor")
	}
	st := f.StateSnapshot()
	if st.Counters.Restarts != 1 || st.Counters.Stalls != 1 {
		t.Fatalf("restarts=%d stalls=%d, want 1/1", st.Counters.Restarts, st.Counters.Stalls)
	}

	finals := make([]uint64, 0, 8)
	for i, tr := range f.Traces() {
		if tr == nil {
			t.Fatalf("board %d has no trace despite Record", i)
		}
		finals = append(finals, tr.Final)
	}
	return finals
}

// TestFaultedFleetReplaysBitIdentically is the failure-domain
// determinism acceptance criterion: with a crash → restart and a stall →
// catch-up active, two runs at the same (K, S) still produce
// bit-identical per-board digests — the injected failures, the orphan
// re-placement and the restart epoch's fresh seed stream are all pure
// functions of (seed, board, barrier) — swept over K ∈ {0, 4} × S ∈ {1, 8}.
func TestFaultedFleetReplaysBitIdentically(t *testing.T) {
	for _, skew := range []int{0, 4} {
		for _, shards := range []int{1, 8} {
			a := runFaultedRecordedFleet(t, skew, shards)
			b := runFaultedRecordedFleet(t, skew, shards)
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("skew %d shards %d: board %d digests diverge across faulted runs: %016x vs %016x",
						skew, shards, i, a[i], b[i])
				}
			}
		}
	}
}
