package fleet

import (
	"fmt"
	"time"
)

// CrashError reports one board-crash detection: the fleet observed the
// board's first terminal crashed reply while collecting the given
// barrier. A crash is a *recoverable* event — the barrier still
// completed, the board's work was orphaned into the supervisor, and a
// restart may already be scheduled — so callers that supervise (fleetd
// batch mode, the chaos harness) log it and keep stepping, while
// callers that treat any error as fatal still see it. Multiple boards
// failing in one barrier surface as an errors.Join of one CrashError
// each (see CrashErrors).
type CrashError struct {
	Board   int
	Barrier int
	Err     error // the board's panic, as reported by its recovery handler
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("fleet: board %d crashed (detected at barrier %d): %v", e.Board, e.Barrier, e.Err)
}

func (e *CrashError) Unwrap() error { return e.Err }

// CrashErrors walks err's wrap tree and collects every CrashError in
// it. only reports whether the tree contains nothing *but* crash
// errors — the "safe to keep stepping" signal: a joined error that also
// carries an invariant violation or a liveness timeout must still abort
// the run.
func CrashErrors(err error) (crashes []*CrashError, only bool) {
	if err == nil {
		return nil, false
	}
	only = true
	var walk func(error)
	walk = func(e error) {
		if ce, ok := e.(*CrashError); ok {
			crashes = append(crashes, ce)
			return
		}
		if m, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range m.Unwrap() {
				walk(sub)
			}
			return
		}
		only = false
	}
	walk(err)
	if len(crashes) == 0 {
		return nil, false
	}
	return crashes, only
}

// LivenessError reports a wall-clock barrier timeout (Config.Liveness):
// at least one board produced no step reply within the deadline. This
// is the real-hang escape hatch — injected stalls answer immediately
// with a sentinel and never trip it — so it lists exactly the boards
// that were still silent when the deadline fired, for the diagnostic
// dump (`fleetd -deadline`).
type LivenessError struct {
	Barrier  int
	Deadline time.Duration
	Boards   []int // boards with no reply when the deadline fired
}

func (e *LivenessError) Error() string {
	return fmt.Sprintf("fleet: liveness deadline %v exceeded at barrier %d: no step reply from boards %v",
		e.Deadline, e.Barrier, e.Boards)
}
