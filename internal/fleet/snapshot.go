package fleet

import (
	"pricepower/internal/platform"
	"pricepower/internal/sim"
)

// Snapshot is one board's routing signal, published at every batch barrier:
// the market-clearing price (the paper's scalar load/power signal), the
// power position against the throttling boundaries, degraded/draining
// state, and capacity headroom. The dispatcher routes on nothing else — a
// Snapshot is plain data, so routing decisions are reproducible from a
// recorded sequence of them.
type Snapshot struct {
	Board int      `json:"board"`
	Epoch int      `json:"epoch,omitempty"` // restart epoch (0 = original boot)
	Time  sim.Time `json:"t"`
	Batch int      `json:"batch"`
	Round int      `json:"round"` // market bid rounds completed

	// Price is the mean clearing price across the board's core agents —
	// cheap boards have slack supply, expensive boards are contended.
	Price float64 `json:"price"`

	PowerW    float64 `json:"power_w"`
	SmoothedW float64 `json:"smoothed_power_w"`
	WthW      float64 `json:"wth_w"`   // effective threshold boundary (0 = unconstrained)
	WtdpW     float64 `json:"wtdp_w"`  // effective TDP boundary (0 = unconstrained)
	State     string  `json:"state"`   // market state: nominal/threshold/emergency
	Degraded  bool    `json:"degraded"`// sensor-health flag (internal/fault)
	Draining  bool    `json:"draining"`
	// Crashed marks a board whose goroutine panicked; the supervisor
	// holds its orphaned work until restart (or permanent quarantine).
	// Stalled marks a board quarantined by the stall detector after
	// missing Config.StallBarriers consecutive barriers. Both exclude
	// the board from routing.
	Crashed bool `json:"crashed,omitempty"`
	Stalled bool `json:"stalled,omitempty"`

	Tasks       int     `json:"tasks"`
	DemandPU    float64 `json:"demand_pu"`
	SupplyPU    float64 `json:"supply_pu"`     // supply at current V-F levels
	MaxSupplyPU float64 `json:"max_supply_pu"` // supply ceiling at fmax

	// Clusters carries the per-cluster hardware detail for /boards.
	Clusters []platform.ClusterStats `json:"clusters,omitempty"`
}

// HasHeadroom reports whether the board can absorb more load: below the
// effective Wth boundary (when TDP-constrained — above it the chip agent
// is already curbing allowances) and with demand under the V-F ladder's
// supply ceiling.
func (s *Snapshot) HasHeadroom() bool {
	if s.WthW > 0 && s.SmoothedW >= s.WthW {
		return false
	}
	return s.DemandPU < s.MaxSupplyPU
}

// Admissible reports whether the dispatcher may route new work to the
// board: alive (not crashed or stall-quarantined), not draining,
// sensors healthy, and headroom left.
func (s *Snapshot) Admissible() bool {
	return !s.Crashed && !s.Stalled && !s.Draining && !s.Degraded && s.HasHeadroom()
}
