package fleet

import (
	"testing"

	"pricepower/internal/task"
)

func snap(board int, price float64) Snapshot {
	return Snapshot{Board: board, Price: price, MaxSupplyPU: 5000}
}

func spec(name string) task.Spec {
	return task.Spec{Name: name, Priority: 1, MinHR: 1, MaxHR: 2,
		Phases: []task.Phase{{HBCostLittle: 100, SpeedupBig: 2}}, Loop: true}
}

func TestPickCheapestFirst(t *testing.T) {
	d := NewDispatcher(0.10)
	snaps := []Snapshot{snap(0, 0.5), snap(1, 0.2), snap(2, 0.9)}
	if got := d.Pick(snaps); got != 1 {
		t.Fatalf("Pick = %d, want 1 (cheapest)", got)
	}
}

func TestPickSkipsInadmissible(t *testing.T) {
	d := NewDispatcher(0.10)
	snaps := []Snapshot{snap(0, 0.5), snap(1, 0.2), snap(2, 0.9)}
	snaps[1].Degraded = true
	if got := d.Pick(snaps); got != 0 {
		t.Errorf("Pick = %d, want 0 (cheapest healthy)", got)
	}
	snaps[0].Draining = true
	d = NewDispatcher(0.10)
	if got := d.Pick(snaps); got != 2 {
		t.Errorf("Pick = %d, want 2 (only admissible)", got)
	}
	snaps[2].SmoothedW, snaps[2].WthW = 4, 3.5 // above threshold boundary
	d = NewDispatcher(0.10)
	if got := d.Pick(snaps); got != -1 {
		t.Errorf("Pick = %d, want -1 (nothing admissible)", got)
	}
}

func TestPickHysteresisSticks(t *testing.T) {
	d := NewDispatcher(0.10)
	snaps := []Snapshot{snap(0, 0.50), snap(1, 0.60)}
	if got := d.Pick(snaps); got != 0 {
		t.Fatalf("first Pick = %d, want 0", got)
	}
	// Board 1 becomes cheaper, but within the 10% band: stay on 0.
	snaps[0].Price, snaps[1].Price = 0.50, 0.47
	if got := d.Pick(snaps); got != 0 {
		t.Errorf("Pick = %d, want 0 (challenger within hysteresis band)", got)
	}
	// Board 1 undercuts past the band: switch.
	snaps[1].Price = 0.40
	if got := d.Pick(snaps); got != 1 {
		t.Errorf("Pick = %d, want 1 (challenger beyond band)", got)
	}
}

func TestPickLeavesStickyBoardWhenInadmissible(t *testing.T) {
	d := NewDispatcher(0.10)
	snaps := []Snapshot{snap(0, 0.1), snap(1, 0.2)}
	if got := d.Pick(snaps); got != 0 {
		t.Fatalf("first Pick = %d, want 0", got)
	}
	snaps[0].Degraded = true
	if got := d.Pick(snaps); got != 1 {
		t.Errorf("Pick = %d, want 1 (sticky board went degraded)", got)
	}
}

func TestRouteSpreadsLargeBatch(t *testing.T) {
	d := NewDispatcher(0.10)
	snaps := []Snapshot{snap(0, 0), snap(1, 0), snap(2, 0)}
	specs := make([]task.Spec, 9)
	for i := range specs {
		specs[i] = spec("swaptions_n")
	}
	assign, unrouted := d.Route(snaps, specs)
	if len(unrouted) != 0 {
		t.Fatalf("%d unrouted, want 0", len(unrouted))
	}
	total := 0
	for i, got := range assign {
		total += len(got)
		if len(got) == 0 {
			t.Errorf("board %d got no tasks: projection failed to spread", i)
		}
	}
	if total != len(specs) {
		t.Fatalf("routed %d, want %d", total, len(specs))
	}
	// The projected-demand bump must keep the split roughly even: no
	// board absorbs the whole batch.
	for i, got := range assign {
		if len(got) > 5 {
			t.Errorf("board %d got %d/9 tasks: dog-pile", i, len(got))
		}
	}
}

func TestRouteQueuesWhenSaturated(t *testing.T) {
	d := NewDispatcher(0.10)
	snaps := []Snapshot{snap(0, 0.1)}
	snaps[0].SmoothedW, snaps[0].WthW = 4, 3.5
	assign, unrouted := d.Route(snaps, []task.Spec{spec("a"), spec("b")})
	for i := range assign {
		if len(assign[i]) != 0 {
			t.Fatalf("board %d got %d tasks, want all unrouted", i, len(assign[i]))
		}
	}
	if len(unrouted) != 2 {
		t.Fatalf("unrouted=%d, want 2", len(unrouted))
	}
	if unrouted[0].Name != "a" || unrouted[1].Name != "b" {
		t.Error("unrouted order not preserved")
	}
}

func TestEstimateDemandPU(t *testing.T) {
	// Registry-known task → profiled demand.
	known := spec("swaptions_n")
	if est := EstimateDemandPU(known); est <= 0 {
		t.Errorf("estimate for profiled task = %v, want > 0", est)
	}
	// Unknown task with usable spec → phase cost × target rate.
	anon := task.Spec{Name: "anon", MinHR: 9, MaxHR: 11,
		Phases: []task.Phase{{HBCostLittle: 30, SpeedupBig: 2}}}
	if est := EstimateDemandPU(anon); est < 250 || est > 350 {
		t.Errorf("estimate for anon task = %v, want ≈300 (30 PU·s × 10 hb/s)", est)
	}
	// Nothing to go on → flat default.
	if est := EstimateDemandPU(task.Spec{Name: "x"}); est != defaultDemandPU {
		t.Errorf("fallback estimate = %v, want %v", est, defaultDemandPU)
	}
}
