package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestAPISubmitStateBoardsMetrics(t *testing.T) {
	f, err := New(Config{Boards: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(NewMux(f))
	defer srv.Close()

	// Batch submission with one immediate and one deferred entry.
	body := `{"tasks":[
		{"bench":"swaptions","input":"n","count":3},
		{"bench":"x264","input":"n","at_ms":500}
	]}`
	resp, err := http.Post(srv.URL+"/submit", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var res SubmitResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Accepted != 3 || res.Scheduled != 1 || res.Shed != 0 {
		t.Fatalf("submit result = %+v, want 3 accepted / 1 scheduled", res)
	}

	// Drive the fleet manually (no background driver in this test).
	for i := 0; i < 8; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}

	var st State
	getJSON(t, srv.URL+"/state", &st)
	if st.Live() != 4 || st.QueueLen != 0 {
		t.Errorf("state live=%d queue=%d, want 4/0", st.Live(), st.QueueLen)
	}
	if st.Counters.Submitted != 4 {
		t.Errorf("submitted = %d, want 4 (deferred entry due by now)", st.Counters.Submitted)
	}
	for _, b := range st.Boards {
		if b.Clusters != nil {
			t.Error("/state carries cluster detail; that belongs to /boards")
		}
	}

	var boards []Snapshot
	getJSON(t, srv.URL+"/boards", &boards)
	if len(boards) != 2 {
		t.Fatalf("%d boards, want 2", len(boards))
	}
	for _, b := range boards {
		if len(b.Clusters) == 0 {
			t.Errorf("board %d snapshot has no cluster detail", b.Board)
		}
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	rawB, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	raw := string(rawB)
	for _, want := range []string{
		"pricepower_fleet_submitted_total 4",
		"pricepower_fleet_boards 2",
		`pricepower_ticks_total{board="0"}`,
		`pricepower_ticks_total{board="1"}`,
		`pricepower_market_rounds_total{board="1"}`,
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// HELP/TYPE headers must appear once per base name despite two
	// boards exporting the same series.
	if n := strings.Count(raw, "# TYPE pricepower_ticks_total "); n != 1 {
		t.Errorf("pricepower_ticks_total TYPE header appears %d times, want 1", n)
	}

	// Bad submissions are rejected with 400, not absorbed.
	resp, err = http.Post(srv.URL+"/submit", "application/json",
		strings.NewReader(`{"tasks":[{"bench":"nope","input":"n"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown benchmark → status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/submit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /submit → status %d, want 405", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s → %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestSubmitRejectsOversizedBody pins the POST /submit body cap: a
// payload past MaxSubmitBody gets a structured 413 without being
// parsed, and a sane request on the same server still succeeds.
func TestSubmitRejectsOversizedBody(t *testing.T) {
	f, err := New(Config{Boards: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(NewMux(f))
	defer srv.Close()

	// A syntactically valid JSON body that only reveals its size by
	// being read: one giant padding field the strict decoder would
	// reject *after* the limit already fired.
	huge := `{"tasks":[{"bench":"swaptions","input":"n","pad":"` +
		strings.Repeat("x", MaxSubmitBody+1024) + `"}]}`
	resp, err := http.Post(srv.URL+"/submit", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var apiErr struct {
		Error string `json:"error"`
		Msg   string `json:"msg"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("413 body is not structured JSON: %v", err)
	}
	if apiErr.Error != "too-large" || apiErr.Msg == "" {
		t.Fatalf("413 body = %+v, want slug too-large with detail", apiErr)
	}

	// The server is still healthy for well-formed submissions.
	resp2, err := http.Post(srv.URL+"/submit", "application/json",
		strings.NewReader(`{"tasks":[{"bench":"swaptions","input":"n"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up submit status = %d, want 200", resp2.StatusCode)
	}
}

// TestSubmitStructuredErrors pins the error contract on every /submit
// failure path: structured JSON with a machine slug, never free text.
func TestSubmitStructuredErrors(t *testing.T) {
	f, err := New(Config{Boards: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(NewMux(f))
	defer srv.Close()

	cases := []struct {
		name, method, body string
		status             int
		slug               string
	}{
		{"wrong method", http.MethodGet, "", http.StatusMethodNotAllowed, "method"},
		{"malformed json", http.MethodPost, `{"tasks":[`, http.StatusBadRequest, "bad-request"},
		{"unknown field", http.MethodPost, `{"tasks":[{"bench":"swaptions","input":"n","wat":1}]}`, http.StatusBadRequest, "bad-request"},
		{"empty trace", http.MethodPost, `{"tasks":[]}`, http.StatusBadRequest, "bad-request"},
		{"unknown bench", http.MethodPost, `{"tasks":[{"bench":"nope","input":"n"}]}`, http.StatusBadRequest, "bad-request"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+"/submit", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: content-type = %q, want application/json", tc.name, ct)
		}
		var apiErr struct {
			Error string `json:"error"`
			Msg   string `json:"msg"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Errorf("%s: error body is not structured JSON: %v", tc.name, err)
		} else if apiErr.Error != tc.slug {
			t.Errorf("%s: slug = %q, want %q", tc.name, apiErr.Error, tc.slug)
		}
		resp.Body.Close()
	}
}
