package fleet

import (
	"testing"

	"pricepower/internal/check"
)

// TestEvictQueuedTakesTailAndConserves pins the migration hook's
// contract: eviction removes from the queue tail (FIFO preserved for
// the survivors), counts into Evicted, and keeps the fleet's zero-loss
// identity balanced with the evicted term subtracted.
func TestEvictQueuedTakesTailAndConserves(t *testing.T) {
	f, err := New(Config{Boards: 1, Seed: 1, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		f.Submit(lightSpec(n))
	}
	got := f.EvictQueued(4)
	if len(got) != 4 {
		t.Fatalf("EvictQueued(4) returned %d submissions", len(got))
	}
	for i, want := range []string{"c", "d", "e", "f"} {
		if got[i].Spec.Name != want {
			t.Errorf("evicted[%d] = %q, want %q (tail, arrival order)", i, got[i].Spec.Name, want)
		}
	}
	st := f.StateSnapshot()
	if st.Counters.Evicted != 4 || st.QueueLen != 2 {
		t.Fatalf("evicted=%d queue=%d, want 4 / 2", st.Counters.Evicted, st.QueueLen)
	}
	checkZeroLoss(t, f)

	// Eviction beyond the queue drains it and stops.
	if n := len(f.EvictQueued(100)); n != 2 {
		t.Fatalf("EvictQueued(100) returned %d, want 2", n)
	}
	if n := len(f.EvictQueued(1)); n != 0 {
		t.Fatalf("EvictQueued on empty queue returned %d", n)
	}
	checkZeroLoss(t, f)

	// The survivors (none here) and the fleet keep stepping normally.
	if err := f.Step(); err != nil {
		t.Fatal(err)
	}
	checkZeroLoss(t, f)
}

// TestEvictQueuedClosesSpans asserts the tracer ledger stays conserved
// across eviction: the open queue spans of evicted submissions are
// attributed ("evict"), trace IDs are cleared for the new owner, and
// span conservation holds.
func TestEvictQueuedClosesSpans(t *testing.T) {
	f, err := New(Config{Boards: 1, Seed: 9, QueueCap: 64, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 5; i++ {
		f.Submit(lightSpec("t"))
	}
	out := f.EvictQueued(3)
	if len(out) != 3 {
		t.Fatalf("evicted %d, want 3", len(out))
	}
	for i, s := range out {
		if s.Trace != 0 {
			t.Errorf("evicted[%d] still carries trace ID %v", i, s.Trace)
		}
	}
	c := f.Tracer().Counts()
	if c.Attributed != 3 || c.Open != 2 {
		t.Fatalf("span ledger = %+v, want 3 attributed / 2 open", c)
	}
	if err := check.CheckSpanConservation(f.Tracer()); err != nil {
		t.Fatal(err)
	}
	checkZeroLoss(t, f)
}
