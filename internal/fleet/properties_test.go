package fleet

import (
	"testing"
	"testing/quick"

	"pricepower/internal/sim"
	"pricepower/internal/task"
)

// randomSnaps builds a random fleet view: prices, saturation, degraded
// and draining flags all drawn from the seeded generator.
func randomSnaps(rng *sim.Rand, n int) []Snapshot {
	snaps := make([]Snapshot, n)
	for i := range snaps {
		snaps[i] = Snapshot{
			Board:       i,
			Price:       rng.Range(0.01, 2),
			MaxSupplyPU: 5000,
			DemandPU:    rng.Range(0, 6000), // may exceed supply: saturated
		}
		if rng.Intn(4) == 0 {
			snaps[i].Degraded = true
		}
		if rng.Intn(6) == 0 {
			snaps[i].Draining = true
		}
		if rng.Intn(4) == 0 {
			snaps[i].SmoothedW = 4
			snaps[i].WthW = 3.5 // above the threshold boundary
		}
	}
	return snaps
}

// Property: the dispatcher never routes to a degraded or draining board
// while a healthy board with headroom exists, for any snapshot vector
// and any submission count.
func TestPropertyNeverRoutesToDegraded(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		snaps := randomSnaps(rng, 2+rng.Intn(7))
		healthyExists := false
		for i := range snaps {
			if snaps[i].Admissible() {
				healthyExists = true
			}
		}
		d := NewDispatcher(0.10)
		specs := make([]task.Spec, 1+rng.Intn(10))
		for i := range specs {
			specs[i] = spec("swaptions_n")
		}
		assign, unrouted := d.Route(snaps, specs)
		for i := range assign {
			if len(assign[i]) == 0 {
				continue
			}
			if snaps[i].Degraded || snaps[i].Draining {
				t.Logf("seed %d: routed to unhealthy board %d (%+v)", seed, i, snaps[i])
				return false
			}
		}
		if healthyExists && len(unrouted) == len(specs) {
			// Admissible board existed, yet nothing routed: the
			// admission controller starved healthy capacity.
			t.Logf("seed %d: all %d specs unrouted despite admissible board", seed, len(specs))
			return false
		}
		if !healthyExists && len(unrouted) != len(specs) {
			t.Logf("seed %d: routed despite no admissible board", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: under price oscillations smaller than the hysteresis band,
// consecutive picks never ping-pong between boards — the dispatcher
// stays where it is.
func TestPropertyHysteresisPreventsPingPong(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		const hyst = 0.10
		d := NewDispatcher(hyst)
		// Two healthy boards around a common price level; each round
		// both prices wobble within ±hyst/3 of it, so neither ever
		// undercuts the other by the full band.
		base := rng.Range(0.2, 1.0)
		snaps := []Snapshot{snap(0, base), snap(1, base)}
		first := d.Pick(snaps)
		switches := 0
		prev := first
		for round := 0; round < 200; round++ {
			for i := range snaps {
				snaps[i].Price = base * (1 + rng.Range(-hyst/3, hyst/3))
			}
			got := d.Pick(snaps)
			if got != prev {
				switches++
				prev = got
			}
		}
		if switches != 0 {
			t.Logf("seed %d: %d switches under sub-band oscillation", seed, switches)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the price-index routing path (Route) is decision-identical
// to the linear-scan oracle (RouteLinear) — same assignments per board,
// same unrouted tail, same sticky-choice carryover across batches — for
// any snapshot vector and submission mix. The heap orders by (price,
// board ID), which is exactly the scan's first-strict-minimum rule, and
// projection only removes boards, so the two must never diverge.
func TestPropertyIndexMatchesLinearOracle(t *testing.T) {
	specNames := []string{"swaptions_n", "bodytrack_n", "x264_n", "unknown-task"}
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		snaps := randomSnaps(rng, 1+rng.Intn(12))
		indexed := NewDispatcher(0.10)
		oracle := NewDispatcher(0.10)
		// Several consecutive batches against evolving snapshots so the
		// dispatchers' last-pick state must also stay in lockstep.
		for batch := 0; batch < 4; batch++ {
			specs := make([]task.Spec, rng.Intn(30))
			for i := range specs {
				specs[i] = spec(specNames[rng.Intn(len(specNames))])
			}
			gotA, gotU := indexed.Route(snaps, specs)
			wantA, wantU := oracle.RouteLinear(snaps, specs)
			if len(gotA) != len(wantA) {
				t.Logf("seed %d batch %d: %d boards assigned, oracle %d", seed, batch, len(gotA), len(wantA))
				return false
			}
			for b, want := range wantA {
				got := gotA[b]
				if len(got) != len(want) {
					t.Logf("seed %d batch %d: board %d got %d specs, oracle %d", seed, batch, b, len(got), len(want))
					return false
				}
				for i := range want {
					if got[i].Name != want[i].Name {
						t.Logf("seed %d batch %d: board %d spec %d = %q, oracle %q", seed, batch, b, i, got[i].Name, want[i].Name)
						return false
					}
				}
			}
			if len(gotU) != len(wantU) {
				t.Logf("seed %d batch %d: %d unrouted, oracle %d", seed, batch, len(gotU), len(wantU))
				return false
			}
			if indexed.last != oracle.last {
				t.Logf("seed %d batch %d: sticky choice %d, oracle %d", seed, batch, indexed.last, oracle.last)
				return false
			}
			// Evolve the fleet view between batches: prices wobble, a
			// board may drain or come back.
			for i := range snaps {
				snaps[i].Price *= 1 + rng.Range(-0.2, 0.2)
				if rng.Intn(8) == 0 {
					snaps[i].Draining = !snaps[i].Draining
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Sanity companion: without hysteresis the same oscillation does cause
// switching — the band, not tie-breaking accidents, provides stability.
func TestPropertyZeroHysteresisDoesPingPong(t *testing.T) {
	rng := sim.NewRand(42)
	d := NewDispatcher(1e-9) // effectively none (0 would default via Fleet)
	base := 0.5
	snaps := []Snapshot{snap(0, base), snap(1, base)}
	prev := d.Pick(snaps)
	switches := 0
	for round := 0; round < 200; round++ {
		for i := range snaps {
			snaps[i].Price = base * (1 + rng.Range(-0.03, 0.03))
		}
		got := d.Pick(snaps)
		if got != prev {
			switches++
			prev = got
		}
	}
	if switches == 0 {
		t.Fatal("no switches without hysteresis: oscillation harness is inert, the ping-pong property is vacuous")
	}
}
