package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pricepower/internal/check"
	"pricepower/internal/fault"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/telemetry"
	"pricepower/internal/telemetry/trace"
)

// finiteSpec is a short non-looping task, so the completion path (board
// span closed "completed", residency histogram) is exercised, not just the
// steady-state loopers.
func finiteSpec(name string, d sim.Time) task.Spec {
	return task.Spec{Name: name, Priority: 1, MinHR: 4, MaxHR: 6,
		Phases: []task.Phase{{Duration: d, HBCostLittle: 20, SpeedupBig: 1.8}}}
}

// runTracedFleet is runRecordedFleet's tracing twin: the same faulted
// 8-board recorded run with causal tracing attached, returning the trace
// digest vector (fleet + per board) after a full flush.
func runTracedFleet(t *testing.T, skew, shards int) []uint64 {
	t.Helper()
	f, err := New(Config{
		Boards:             8,
		Seed:               0xfee1de7e,
		MaxSkew:            skew,
		Shards:             shards,
		Record:             true,
		Trace:              true,
		DrainDegradedAfter: 3,
		Faults: map[int]fault.Scenario{
			2: {Faults: []fault.Fault{{Type: fault.PowerDropout, Cluster: -1, Start: 10, Rounds: 200}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	arrivals := &ArrivalTrace{Tasks: []Arrival{
		{Bench: "swaptions", Input: "n", Count: 4},
		{Bench: "blackscholes", Input: "l", Count: 3},
		{Bench: "x264", Input: "n", Count: 3, AtMS: 300},
		{Bench: "bodytrack", Input: "n", Count: 2, AtMS: 800},
	}}
	specs, err := arrivals.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	SubmitTimed(f, specs)

	for i := 0; i < 20; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	checkZeroLoss(t, f)
	if err := check.CheckSpanConservation(f.Tracer()); err != nil {
		t.Fatal(err)
	}
	c := f.Tracer().Counts()
	if c.Opened == 0 {
		t.Fatal("traced run opened no spans")
	}
	return f.Tracer().Digests()
}

// TestFleetTraceReplaysBitIdentically is the tentpole's acceptance
// criterion: the faulted 8-board run replays with bit-identical trace
// digests — every span boundary and lifecycle point in virtual time, every
// trace ID, every fold in the same order — across two full runs, swept
// over barrier skew K ∈ {0, 4} × dispatcher shards S ∈ {1, 8}.
func TestFleetTraceReplaysBitIdentically(t *testing.T) {
	for _, skew := range []int{0, 4} {
		for _, shards := range []int{1, 8} {
			a := runTracedFleet(t, skew, shards)
			b := runTracedFleet(t, skew, shards)
			if len(a) != len(b) || len(a) != 9 {
				t.Fatalf("skew %d shards %d: digest vectors %d vs %d entries, want 9", skew, shards, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("skew %d shards %d: trace digest %d diverges across runs: %016x vs %016x",
						skew, shards, i, a[i], b[i])
				}
			}
		}
	}
}

// TestFleetTraceSpanConservation forces both attribution paths — shed at
// a tiny admission queue and drain off a faulted board — and asserts the
// ledger still balances: every opened span closed or attributed, none
// mismatched.
func TestFleetTraceSpanConservation(t *testing.T) {
	f, err := New(Config{
		Boards:             2,
		Seed:               11,
		QueueCap:           4,
		Trace:              true,
		DrainDegradedAfter: 2,
		Faults: map[int]fault.Scenario{
			0: {Faults: []fault.Fault{{Type: fault.PowerDropout, Cluster: -1, Start: 5, Rounds: 400}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Saturate both boards, then overflow the 4-deep queue.
	for i := 0; i < 40; i++ {
		f.Submit(lightSpec("t"))
	}
	for i := 0; i < 15; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		f.Submit(lightSpec("late")) // keep pressure on mid-run
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	checkZeroLoss(t, f)

	if err := check.CheckSpanConservation(f.Tracer()); err != nil {
		t.Fatal(err)
	}
	c := f.Tracer().Counts()
	st := f.StateSnapshot()
	if st.Counters.Shed == 0 {
		t.Fatal("test did not force any shed; tighten the queue")
	}
	if st.Counters.Drained == 0 {
		t.Fatal("test did not force a drain; fault did not trip")
	}
	if c.Attributed == 0 {
		t.Fatalf("shed %d / drained %d but no attributed spans: %+v",
			st.Counters.Shed, st.Counters.Drained, c)
	}
	if c.Attributed < c.Opened-c.Closed-c.Open {
		t.Fatalf("ledger arithmetic off: %+v", c)
	}
}

// TestFleetJSONLEventOrdering pins the per-barrier event fold's ordering
// contract on a 4-board bounded-skew run: the JSONL stream is globally
// nondecreasing in (round, board, kind), every event carries its board,
// and only the capture-mask kinds appear.
func TestFleetJSONLEventOrdering(t *testing.T) {
	f, err := New(Config{Boards: 4, Seed: 77, MaxSkew: 4, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var buf bytes.Buffer
	sink := telemetry.NewJSONL(&buf)
	f.SetEventSink(sink)

	arrivals := &ArrivalTrace{Tasks: []Arrival{
		{Bench: "swaptions", Input: "n", Count: 4},
		{Bench: "x264", Input: "n", Count: 4},
		{Bench: "bodytrack", Input: "n", Count: 2, AtMS: 300},
	}}
	specs, err := arrivals.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	SubmitTimed(f, specs)
	for i := 0; i < 20; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	evs, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("traced 4-board run emitted no lifecycle events")
	}
	key := func(ev telemetry.Event) [3]int { return [3]int{ev.Round, ev.Board, int(ev.Kind)} }
	less := func(a, b [3]int) bool {
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}
	for i, ev := range evs {
		if ev.Board < 0 || ev.Board >= 4 {
			t.Fatalf("event %d has board %d outside the fleet", i, ev.Board)
		}
		if !traceCaptureKinds.Has(ev.Kind) {
			t.Fatalf("event %d kind %v is outside the capture mask", i, ev.Kind)
		}
		if i > 0 && less(key(ev), key(evs[i-1])) {
			t.Fatalf("event %d %v out of (round, board, kind) order after %v", i, key(ev), key(evs[i-1]))
		}
	}
}

// TestFleetTraceTimeline walks one finite submission end to end: its queue
// span closes with a routing class, its board span closes "completed", and
// the /trace-style timeline query returns both in start order.
func TestFleetTraceTimeline(t *testing.T) {
	f, err := New(Config{Boards: 2, Seed: 5, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Submit(finiteSpec("fin", 250*sim.Millisecond))
	for i := 0; i < 8; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}

	id := trace.DeriveID(f.traceSeed, 0) // first admission position
	tl := f.Tracer().Timeline(id)
	if len(tl.Spans) < 2 {
		t.Fatalf("timeline has %d spans, want queue + board: %+v", len(tl.Spans), tl)
	}
	q, b := tl.Spans[0], tl.Spans[1]
	if q.Stage != trace.StageQueue || (q.Class != "home" && q.Class != "steal") {
		t.Fatalf("first span not a routed queue span: %+v", q)
	}
	if b.Stage != trace.StageBoard || b.Class != "completed" {
		t.Fatalf("second span not a completed board span: %+v", b)
	}
	if b.Start < q.End || b.End <= b.Start {
		t.Fatalf("span times inconsistent: queue %d..%d board %d..%d", q.Start, q.End, b.Start, b.End)
	}
	// The residency histogram carries the trace as an exemplar somewhere.
	found := false
	for _, bd := range f.Boards() {
		for _, ex := range bd.obs.histResidency.Exemplars() {
			if ex.Valid && ex.Trace == uint64(id) {
				found = true
			}
		}
	}
	if !found {
		t.Error("completed task's trace ID missing from residency histogram exemplars")
	}
}

// TestAPITraceAndHistograms smokes the new HTTP surface: the ledger
// summary, a single-trace timeline, the histogram exposition (per-board
// labels + fleet merge + exemplars), and the 404s when detached.
func TestAPITraceAndHistograms(t *testing.T) {
	f, err := New(Config{Boards: 2, Seed: 5, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(NewMux(f))
	defer srv.Close()

	f.Submit(finiteSpec("fin", 250*sim.Millisecond))
	f.Submit(lightSpec("loop"))
	for i := 0; i < 8; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}

	var sum TraceSummary
	getBody(t, srv.URL+"/trace", func(r io.Reader) {
		if err := json.NewDecoder(r).Decode(&sum); err != nil {
			t.Fatal(err)
		}
	})
	if sum.Counts.Opened == 0 || len(sum.Digests) != 3 {
		t.Fatalf("trace summary = %+v, want opened spans and 3 digests", sum)
	}

	id := trace.DeriveID(f.traceSeed, 0)
	var tl trace.Timeline
	getBody(t, srv.URL+"/trace?id="+id.String(), func(r io.Reader) {
		if err := json.NewDecoder(r).Decode(&tl); err != nil {
			t.Fatal(err)
		}
	})
	if tl.Trace != id.String() || len(tl.Spans) == 0 {
		t.Fatalf("timeline = %+v, want spans for %s", tl, id)
	}

	getBody(t, srv.URL+"/histograms", func(r io.Reader) {
		raw, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		body := string(raw)
		for _, want := range []string{
			"pricepower_fleet_routing_wall_ns_bucket",
			"pricepower_fleet_queue_wait_ms_bucket",
			"pricepower_fleet_barrier_lag_bucket",
			`pricepower_board_round_ms_bucket{board="1",`,
			"pricepower_fleet_round_ms_bucket", // k-way merge
			"trace_id=",                        // exemplar link
		} {
			if !strings.Contains(body, want) {
				t.Errorf("/histograms missing %q", want)
			}
		}
	})

	// Bad id and unknown trace.
	if resp, err := http.Get(srv.URL + "/trace?id=zzz"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status = %v, %v", resp.StatusCode, err)
	}
	if resp, err := http.Get(srv.URL + "/trace?id=00000000000000ff"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status = %v, %v", resp.StatusCode, err)
	}

	// Detached fleet: both endpoints 404.
	fd, err := New(Config{Boards: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	srv2 := httptest.NewServer(NewMux(fd))
	defer srv2.Close()
	for _, p := range []string{"/trace", "/histograms"} {
		resp, err := http.Get(srv2.URL + p)
		if err != nil || resp.StatusCode != http.StatusNotFound {
			t.Errorf("detached %s status = %v, %v", p, resp.StatusCode, err)
		}
	}
}

func getBody(t *testing.T, url string, fn func(io.Reader)) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, raw)
	}
	fn(resp.Body)
}
