package fleet

import (
	"testing"

	"pricepower/internal/fault"
)

// runRecordedFleet boots an 8-board recorded fleet from a fixed seed,
// plays the same arrival trace into it, advances it a fixed number of
// batches at the given barrier skew and dispatcher shard count, and
// returns the per-board replay traces. One board carries a sensor-dropout
// fault so the degraded/drain path is inside the recorded timeline, not
// just the happy path.
func runRecordedFleet(t *testing.T, skew, shards int) []uint64 {
	t.Helper()
	f, err := New(Config{
		Boards:             8,
		Seed:               0xfee1de7e, // fixed fleet seed
		MaxSkew:            skew,
		Shards:             shards,
		Record:             true,
		DrainDegradedAfter: 3,
		Faults: map[int]fault.Scenario{
			2: {Faults: []fault.Fault{{Type: fault.PowerDropout, Cluster: -1, Start: 10, Rounds: 200}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	arrivals := &ArrivalTrace{Tasks: []Arrival{
		{Bench: "swaptions", Input: "n", Count: 4},
		{Bench: "blackscholes", Input: "l", Count: 3},
		{Bench: "x264", Input: "n", Count: 3, AtMS: 300},
		{Bench: "bodytrack", Input: "n", Count: 2, AtMS: 800},
	}}
	specs, err := arrivals.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	SubmitTimed(f, specs)

	for i := 0; i < 20; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil { // collect the skew tail before reading traces
		t.Fatal(err)
	}
	checkZeroLoss(t, f)

	finals := make([]uint64, 0, 8)
	for i, tr := range f.Traces() {
		if tr == nil {
			t.Fatalf("board %d has no trace despite Record", i)
		}
		if len(tr.Digests) == 0 {
			t.Fatalf("board %d trace is empty: recorder not seeing market rounds", i)
		}
		finals = append(finals, tr.Final)
	}
	return finals
}

// TestFleetReplaysBitIdentically is the PR's determinism acceptance
// criterion: a fixed fleet seed plus a recorded arrival trace must
// reproduce bit-identical per-board digests across two full runs, even
// though boards advance on concurrent goroutines — swept over barrier
// skew K ∈ {0, 4} (lockstep vs. the faulted bounded-skew pipeline) ×
// dispatcher shards S ∈ {1, 2, 4, 8}, with each board's barrier counter
// folded into its digest chain. Digests are comparable run-vs-run at the
// same (K, S) only: different shard counts legitimately make different
// (equally admissible) routing decisions.
func TestFleetReplaysBitIdentically(t *testing.T) {
	for _, skew := range []int{0, 4} {
		for _, shards := range []int{1, 2, 4, 8} {
			a := runRecordedFleet(t, skew, shards)
			b := runRecordedFleet(t, skew, shards)
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("skew %d shards %d: board %d digests diverge across runs: %016x vs %016x",
						skew, shards, i, a[i], b[i])
				}
			}
		}
	}
}

// TestFleetSkewZeroMatchesLockstep pins the pipeline refactor against
// the legacy stepping: with MaxSkew explicitly 0 the bounded-skew
// machinery must produce the same per-board digests as the default
// (zero-value) lockstep config — routing decisions, barrier counters and
// market timelines all bit-identical.
func TestFleetSkewZeroMatchesLockstep(t *testing.T) {
	a := runRecordedFleet(t, 0, 1) // explicit K=0 through the pipeline path
	f, err := New(Config{       // zero-value skew: the pre-pipeline config shape
		Boards:             8,
		Seed:               0xfee1de7e,
		Record:             true,
		DrainDegradedAfter: 3,
		Faults: map[int]fault.Scenario{
			2: {Faults: []fault.Fault{{Type: fault.PowerDropout, Cluster: -1, Start: 10, Rounds: 200}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	arrivals := &ArrivalTrace{Tasks: []Arrival{
		{Bench: "swaptions", Input: "n", Count: 4},
		{Bench: "blackscholes", Input: "l", Count: 3},
		{Bench: "x264", Input: "n", Count: 3, AtMS: 300},
		{Bench: "bodytrack", Input: "n", Count: 2, AtMS: 800},
	}}
	specs, err := arrivals.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	SubmitTimed(f, specs)
	for i := 0; i < 20; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i, tr := range f.Traces() {
		if tr.Final != a[i] {
			t.Errorf("board %d: zero-value config digest %016x != explicit K=0 digest %016x", i, tr.Final, a[i])
		}
	}
}

// TestFleetTraceDiffLocalizes drives the per-board check.Trace pathway:
// two identical runs diff clean, and Diff localizes a synthetic
// divergence rather than reporting only the folded digest.
func TestFleetTraceDiffLocalizes(t *testing.T) {
	mk := func() *Fleet {
		f, err := New(Config{Boards: 2, Seed: 99, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			f.Submit(lightSpec("t"))
		}
		for i := 0; i < 6; i++ {
			if err := f.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return f
	}
	f1 := mk()
	defer f1.Close()
	f2 := mk()
	defer f2.Close()
	t1, t2 := f1.Traces(), f2.Traces()
	for i := range t1 {
		if at, same := t1[i].Diff(t2[i]); !same {
			t.Errorf("board %d traces diverge at sample %d", i, at)
		}
	}
	// Corrupt one sample: Diff must point at it.
	t2[0].Digests[3] ^= 1
	if at, same := t1[0].Diff(t2[0]); same || at != 3 {
		t.Errorf("Diff after corruption = (%d,%v), want (3,false)", at, same)
	}
}
