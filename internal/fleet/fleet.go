// Package fleet shards the price-theory power market across many boards:
// N independent platform.Platform instances — each with its own PPM
// governor, telemetry registry and optional checker/recorder/fault
// injector — advanced in lockstep batches of virtual time behind a
// price-routing dispatcher. Task submissions are admitted and routed
// using each board's market-clearing price, degraded/throttle state and
// headroom; when every board is saturated the admission controller
// queues, and sheds only when the queue overflows.
//
// Determinism: routing decisions happen only at batch barriers, against
// the snapshots the previous barrier published, and each board's
// timeline is advanced by a goroutine that owns it exclusively — so a
// fixed fleet seed plus a recorded arrival trace replays bit-identically
// (per-board check.Replay digests match across runs) even though boards
// execute concurrently within a batch.
package fleet

import (
	"fmt"
	"sort"
	"sync"

	"pricepower/internal/check"
	"pricepower/internal/fault"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/telemetry"
)

// Defaults for Config fields left zero.
const (
	DefaultBatch      = 100 * sim.Millisecond
	DefaultHysteresis = 0.10
	DefaultQueueCap   = 1024
)

// Config assembles a fleet.
type Config struct {
	// Boards is the number of independent platform instances (≥ 1).
	Boards int
	// Seed is the fleet seed; each board derives its own stream from it
	// via sim.DeriveSeed(Seed, boardID).
	Seed uint64
	// TDP is the per-board power budget in W (0 = unconstrained).
	TDP float64
	// Batch is the virtual time each board advances between barriers
	// (default DefaultBatch). Routing happens only at barriers.
	Batch sim.Time
	// Hysteresis is the dispatcher's sticky-choice band (default
	// DefaultHysteresis): a challenger board must undercut the previous
	// choice by this fraction before submissions switch boards.
	Hysteresis float64
	// QueueCap bounds the admission queue (default DefaultQueueCap);
	// submissions beyond it are shed.
	QueueCap int
	// DrainDegradedAfter auto-drains a board after this many consecutive
	// degraded barriers, resubmitting its tasks through the dispatcher;
	// the board resumes after the same number of healthy barriers.
	// 0 disables auto-drain.
	DrainDegradedAfter int
	// Faults maps board ID → fault scenario injected into that board.
	// The scenario's seed is overridden with the board's derived seed.
	Faults map[int]fault.Scenario
	// Record attaches a replay recorder to every board (check.Trace per
	// board, exposed via Traces).
	Record bool
	// Check attaches the runtime invariant checker to every board; the
	// first violation fails the batch in Step's error.
	Check bool
}

func (c Config) withDefaults() Config {
	if c.Boards <= 0 {
		c.Boards = 1
	}
	if c.Batch <= 0 {
		c.Batch = DefaultBatch
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	return c
}

// Counters are the fleet's task-accounting totals. The zero-loss
// invariant — enforced by tests and the fleet-smoke gate — is:
//
//	Submitted - Shed == live tasks on boards + Queued
//
// (Drained/Resubmitted track evacuations, which conserve tasks.)
type Counters struct {
	Submitted   uint64 `json:"submitted"`
	Routed      uint64 `json:"routed"`
	Queued      uint64 `json:"queued_total"` // submissions that waited at least one barrier
	Shed        uint64 `json:"shed"`
	Drained     uint64 `json:"drained"`
	Resubmitted uint64 `json:"resubmitted"`
}

// State is the fleet-wide snapshot served at /state.
type State struct {
	Batch    int        `json:"batch"`
	Time     sim.Time   `json:"t"`
	Boards   []Snapshot `json:"boards"`
	QueueLen int        `json:"queue_len"`
	Counters Counters   `json:"counters"`
}

// Live sums the tasks currently placed on boards.
func (s *State) Live() int {
	n := 0
	for i := range s.Boards {
		n += s.Boards[i].Tasks
	}
	return n
}

// Fleet is the coordinator: it owns the admission queue, the dispatcher
// and the batch barrier. Submit may be called concurrently with Step
// (the HTTP frontend does); board state is only touched from Step.
type Fleet struct {
	cfg  Config
	disp *Dispatcher

	boards []*Board

	mu       sync.Mutex
	snaps    []Snapshot  // last barrier's snapshots
	batch    int         // barriers completed
	now      sim.Time    // fleet virtual time (batch * cfg.Batch)
	pending  []task.Spec // FIFO admission queue
	sched    []timedSpec // trace-scheduled future arrivals, sorted by at
	counters Counters
	degraded []int // consecutive degraded barriers per board
	healthy  []int // consecutive healthy barriers per autodrained board
	auto     []bool
	closed   bool

	reg *telemetry.Registry
}

type timedSpec struct {
	at   sim.Time
	seq  int // tie-break: submission order
	spec task.Spec
}

// New builds the fleet and boots its boards (each on its own goroutine,
// idle until the first Step).
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:      cfg,
		disp:     NewDispatcher(cfg.Hysteresis),
		snaps:    make([]Snapshot, cfg.Boards),
		degraded: make([]int, cfg.Boards),
		healthy:  make([]int, cfg.Boards),
		auto:     make([]bool, cfg.Boards),
		reg:      telemetry.NewRegistry(),
	}
	for i := 0; i < cfg.Boards; i++ {
		b, err := newBoard(i, cfg)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.boards = append(f.boards, b)
		f.snaps[i] = Snapshot{Board: i, MaxSupplyPU: b.p.MaxSupplyPU()}
	}
	f.registerMetrics()
	return f, nil
}

func (f *Fleet) registerMetrics() {
	f.reg.GaugeFunc("pricepower_fleet_boards", "Boards in the fleet.",
		func() float64 { return float64(len(f.boards)) })
	f.reg.GaugeFunc("pricepower_fleet_queue_len", "Admission queue length.",
		func() float64 { f.mu.Lock(); defer f.mu.Unlock(); return float64(len(f.pending)) })
	f.reg.GaugeFunc("pricepower_fleet_batches", "Batch barriers completed.",
		func() float64 { f.mu.Lock(); defer f.mu.Unlock(); return float64(f.batch) })
	counter := func(name, help string, v *uint64) {
		f.reg.GaugeFunc(name, help, func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(*v)
		})
	}
	counter("pricepower_fleet_submitted_total", "Task submissions accepted.", &f.counters.Submitted)
	counter("pricepower_fleet_routed_total", "Tasks routed to a board.", &f.counters.Routed)
	counter("pricepower_fleet_queued_total", "Submissions that waited in the admission queue.", &f.counters.Queued)
	counter("pricepower_fleet_shed_total", "Submissions shed on queue overflow.", &f.counters.Shed)
	counter("pricepower_fleet_drained_total", "Tasks evacuated from draining boards.", &f.counters.Drained)
	counter("pricepower_fleet_resubmitted_total", "Evacuated tasks re-routed through the dispatcher.", &f.counters.Resubmitted)
}

// Registry is the fleet-level metrics registry (queue depth, routing
// counters); board registries merge in via MergedMetrics.
func (f *Fleet) Registry() *telemetry.Registry { return f.reg }

// NumBoards reports the fleet size.
func (f *Fleet) NumBoards() int { return len(f.boards) }

// Now reports the fleet's virtual time (batches completed × batch size).
func (f *Fleet) Now() sim.Time { f.mu.Lock(); defer f.mu.Unlock(); return f.now }

// Submit enqueues specs for routing at the next batch barrier. It never
// routes immediately — arrival order within a barrier is the submission
// order, which keeps trace-driven runs reproducible. Returns the number
// accepted (the rest were shed against the queue cap).
func (f *Fleet) Submit(specs ...task.Spec) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.submitLocked(specs)
}

func (f *Fleet) submitLocked(specs []task.Spec) int {
	accepted := 0
	for _, s := range specs {
		f.counters.Submitted++
		if len(f.pending) >= f.cfg.QueueCap {
			f.counters.Shed++
			continue
		}
		f.pending = append(f.pending, s)
		accepted++
	}
	return accepted
}

// SubmitAt schedules a spec for submission when the fleet's virtual time
// reaches at — the trace-driven arrival path. Entries due at the same
// barrier are submitted in (at, submission order).
func (f *Fleet) SubmitAt(at sim.Time, spec task.Spec) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sched = append(f.sched, timedSpec{at: at, seq: len(f.sched), spec: spec})
	sort.SliceStable(f.sched, func(i, j int) bool { return f.sched[i].at < f.sched[j].at })
}

// Step advances every board by one batch of virtual time, concurrently,
// and runs one dispatch round at the barrier:
//
//  1. due trace arrivals and the pending queue are routed (FIFO) against
//     the snapshots of the previous barrier;
//  2. each board receives its assignment and advances cfg.Batch;
//  3. the barrier collects fresh snapshots, applies degraded auto-drain
//     (evacuated specs re-enter the queue head), and publishes state.
//
// Step returns the first invariant violation when Config.Check is on.
func (f *Fleet) Step() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return fmt.Errorf("fleet: stepped after Close")
	}
	// Release due trace arrivals into the queue, after any carried
	// pending work (older submissions route first).
	horizon := f.now + f.cfg.Batch
	for len(f.sched) > 0 && f.sched[0].at < horizon {
		f.submitLocked([]task.Spec{f.sched[0].spec})
		f.sched = f.sched[1:]
	}
	snaps := append([]Snapshot(nil), f.snaps...)
	specs := f.pending
	f.pending = nil
	batch := f.batch
	f.mu.Unlock()

	assign, unrouted := f.disp.Route(snaps, specs)

	// Fan the batch out; each board advances on its own goroutine.
	replies := make([]chan stepReply, len(f.boards))
	for i, b := range f.boards {
		replies[i] = make(chan stepReply, 1)
		b.cmd <- stepCmd{add: assign[i], d: f.cfg.Batch, batch: batch + 1, reply: replies[i]}
	}
	var firstErr error
	fresh := make([]Snapshot, len(f.boards))
	for i := range f.boards {
		r := <-replies[i]
		fresh[i] = r.snap
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: board %d: %w", i, r.err)
		}
	}

	resubmit := f.autoDrain(fresh)

	f.mu.Lock()
	for i := range fresh {
		f.snaps[i] = fresh[i]
	}
	f.batch++
	f.now += f.cfg.Batch
	f.counters.Routed += uint64(len(specs) - len(unrouted))
	f.counters.Queued += uint64(len(unrouted))
	// Unrouted work re-enters at the queue head, before anything
	// submitted during this batch, preserving FIFO admission. Drained
	// tasks go in front of even those: they were already running.
	requeue := append(resubmit, unrouted...)
	if len(requeue) > 0 {
		f.pending = append(requeue, f.pending...)
		if over := len(f.pending) - f.cfg.QueueCap; over > 0 {
			f.counters.Shed += uint64(over)
			f.pending = f.pending[:f.cfg.QueueCap]
		}
	}
	f.mu.Unlock()
	return firstErr
}

// autoDrain tracks per-board degraded streaks against the fresh barrier
// snapshots, evacuating boards that stayed degraded too long and
// resuming them once they stay healthy equally long. Returns the specs
// to resubmit through the dispatcher.
func (f *Fleet) autoDrain(fresh []Snapshot) []task.Spec {
	if f.cfg.DrainDegradedAfter <= 0 {
		return nil
	}
	var resubmit []task.Spec
	for i, s := range fresh {
		if s.Degraded {
			f.degraded[i]++
			f.healthy[i] = 0
		} else {
			f.degraded[i] = 0
			if f.auto[i] {
				f.healthy[i]++
			}
		}
		if !f.auto[i] && f.degraded[i] >= f.cfg.DrainDegradedAfter {
			specs := f.drainBoard(i)
			resubmit = append(resubmit, specs...)
			f.auto[i] = true
			fresh[i].Draining = true
			fresh[i].Tasks = 0
		}
		if f.auto[i] && f.healthy[i] >= f.cfg.DrainDegradedAfter {
			f.resumeBoard(i)
			f.auto[i] = false
			f.healthy[i] = 0
			fresh[i].Draining = false
		}
	}
	return resubmit
}

func (f *Fleet) drainBoard(i int) []task.Spec {
	reply := make(chan []task.Spec, 1)
	f.boards[i].cmd <- drainCmd{reply: reply}
	specs := <-reply
	f.mu.Lock()
	f.counters.Drained += uint64(len(specs))
	f.counters.Resubmitted += uint64(len(specs))
	f.mu.Unlock()
	return specs
}

func (f *Fleet) resumeBoard(i int) {
	reply := make(chan struct{})
	f.boards[i].cmd <- resumeCmd{reply: reply}
	<-reply
}

// Drain evacuates board i immediately (manual hot-unplug path): its
// tasks re-enter the admission queue head and the board stops receiving
// work until Resume. Safe only between Steps (fleetd's driver serializes
// them).
func (f *Fleet) Drain(i int) error {
	if i < 0 || i >= len(f.boards) {
		return fmt.Errorf("fleet: no board %d", i)
	}
	specs := f.drainBoard(i)
	f.mu.Lock()
	f.snaps[i].Draining = true
	f.snaps[i].Tasks = 0
	f.pending = append(append([]task.Spec(nil), specs...), f.pending...)
	f.mu.Unlock()
	return nil
}

// Resume lets a manually drained board accept work again.
func (f *Fleet) Resume(i int) error {
	if i < 0 || i >= len(f.boards) {
		return fmt.Errorf("fleet: no board %d", i)
	}
	f.resumeBoard(i)
	f.mu.Lock()
	f.snaps[i].Draining = false
	f.mu.Unlock()
	return nil
}

// StateSnapshot publishes the fleet-wide view of the last barrier.
func (f *Fleet) StateSnapshot() State {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := State{
		Batch:    f.batch,
		Time:     f.now,
		Boards:   append([]Snapshot(nil), f.snaps...),
		QueueLen: len(f.pending),
		Counters: f.counters,
	}
	return st
}

// Traces returns the per-board replay traces (index = board ID); entries
// are nil unless Config.Record was set.
func (f *Fleet) Traces() []*check.Trace {
	out := make([]*check.Trace, len(f.boards))
	for i, b := range f.boards {
		out[i] = b.Trace()
	}
	return out
}

// Boards exposes the boards (read-only use: registries, traces).
func (f *Fleet) Boards() []*Board { return f.boards }

// Close stops every board goroutine. The fleet is unusable afterwards.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	for _, b := range f.boards {
		reply := make(chan struct{})
		b.cmd <- stopCmd{reply: reply}
		<-reply
		<-b.done
	}
}
