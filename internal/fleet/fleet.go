// Package fleet shards the price-theory power market across many boards:
// N independent platform.Platform instances — each with its own PPM
// governor, telemetry registry and optional checker/recorder/fault
// injector — advanced in batches of virtual time behind a price-routing
// dispatcher. Task submissions are admitted and routed using each board's
// market-clearing price, degraded/throttle state and headroom; when every
// board is saturated the admission controller queues, and sheds only when
// the queue overflows.
//
// Stepping is pipelined with bounded skew: with Config.MaxSkew = K, Step
// issues barrier n+1 to every board and only blocks collecting barriers
// older than n+1-K, so boards may run up to K barriers ahead of the
// slowest board instead of stalling the whole fleet in lockstep (K = 0).
//
// Determinism: routing decisions happen only at batch barriers, against
// the versioned snapshots of the newest *collected* barrier (a fixed
// K-barrier lag, not a timing-dependent one), and each board's timeline
// is advanced by a goroutine that owns it exclusively — so a fixed fleet
// seed plus a recorded arrival trace replays bit-identically (per-board
// check.Replay digests match across runs, with each board's barrier
// counter folded into its digest chain) even though boards execute
// concurrently and skewed.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pricepower/internal/check"
	"pricepower/internal/fault"
	"pricepower/internal/metrics"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/telemetry"
	"pricepower/internal/telemetry/trace"
)

// Defaults for Config fields left zero.
const (
	DefaultBatch      = 100 * sim.Millisecond
	DefaultHysteresis = 0.10
	DefaultQueueCap   = 1024
)

// drainSeedStream namespaces the per-board drain-cooldown jitter streams
// off the fleet seed.
const drainSeedStream = 0xd7a1_0000

// routeSeedStream namespaces the sharded dispatcher's submission→shard
// hash seed off the fleet seed.
const routeSeedStream = 0x5a4d_0000

// traceSeedStream namespaces the causal-trace ID stream off the fleet
// seed: submission i gets trace.DeriveID(DeriveSeed(Seed, traceSeedStream), i).
const traceSeedStream = 0x7ace_0000

// restartSeedStream namespaces the supervisor's restart machinery off
// the fleet seed: per-board restart-backoff jitter, and the derived
// epoch seeds a resurrected board boots under (epoch e, board i runs on
// DeriveSeed(DeriveSeed(Seed, restartSeedStream+e), i), so no epoch
// ever replays another's randomness).
const restartSeedStream = 0x4e57_0000

// DefaultStallBarriers is the stall detector's quarantine threshold
// when Config.StallBarriers is zero.
const DefaultStallBarriers = 2

// Config assembles a fleet.
type Config struct {
	// Boards is the number of independent platform instances (≥ 1).
	Boards int
	// Seed is the fleet seed; each board derives its own stream from it
	// via sim.DeriveSeed(Seed, boardID).
	Seed uint64
	// TDP is the per-board power budget in W (0 = unconstrained).
	TDP float64
	// Batch is the virtual time each board advances between barriers
	// (default DefaultBatch). Routing happens only at barriers.
	Batch sim.Time
	// Hysteresis is the dispatcher's sticky-choice band (default
	// DefaultHysteresis): a challenger board must undercut the previous
	// choice by this fraction before submissions switch boards.
	Hysteresis float64
	// QueueCap bounds the admission queue (default DefaultQueueCap);
	// submissions beyond it are shed.
	QueueCap int
	// Shards partitions the dispatcher into this many price-index shards
	// over disjoint board ranges (default 1): each shard routes its own
	// hash-assigned share of every barrier's submissions against its own
	// index, with work stealing to the globally cheapest board when a
	// shard saturates or prices out (see ShardedDispatcher). Shards clamp
	// to the board count. Routing stays deterministic at any setting.
	Shards int
	// MaxSkew lets boards run up to this many barriers ahead of the
	// slowest board (0 = lockstep). Step issues each barrier without
	// waiting and only blocks collecting barriers more than MaxSkew
	// behind, so one transiently slow board no longer stalls issuance;
	// routing reads the newest collected (versioned) snapshots, a fixed
	// lag that keeps decisions deterministic.
	MaxSkew int
	// DrainDegradedAfter auto-drains a board after this many consecutive
	// degraded barriers, resubmitting its tasks through the dispatcher;
	// the board resumes after a cooldown of healthy barriers that starts
	// at the same number and backs off exponentially on every re-drain
	// (seeded jitter via fault.Backoff), so a board with a still-broken
	// sensor cannot thrash drain→resume→re-trip→drain every few barriers.
	// 0 disables auto-drain.
	DrainDegradedAfter int
	// StallBarriers is the deterministic stall detector's threshold
	// (default DefaultStallBarriers): a board that withholds its real
	// step reply for this many consecutive barriers — counted in
	// virtual barriers, never wall clock — is quarantined (excluded
	// from routing) until its first caught-up reply. Deferred
	// assignments stay in the in-flight ledger the whole time, so the
	// zero-loss invariant holds through the stall.
	StallBarriers int
	// RestartAfter enables the crash supervisor: a crashed board is
	// resurrected under the same ID after at least this many barriers,
	// growing exponentially per repeat crash with seeded jitter
	// (fault.Backoff over the restartSeedStream). The restarted board
	// boots a fresh platform under a derived restart-epoch seed and the
	// crashed board's checkpointed tasks re-enter the dispatcher. 0
	// disables restarts: a crash permanently quarantines the board and
	// its orphans requeue immediately.
	RestartAfter int
	// MaxRestarts caps supervised restarts per board; a crash beyond
	// the cap permanently quarantines the board (0 = unlimited).
	MaxRestarts int
	// Liveness is an optional wall-clock deadline per collected barrier
	// (0 = off, the default — determinism-preserving): if any board
	// produces no step reply within it, collection fails fast with a
	// LivenessError naming the unreplied boards instead of deadlocking
	// on a real hang. Injected stalls reply instantly with a sentinel
	// and never trip it.
	Liveness time.Duration
	// Faults maps board ID → fault scenario injected into that board.
	// The scenario's seed is overridden with the board's derived seed.
	// Board-level classes (fault.BoardCrash, fault.BoardStall) schedule
	// whole-board failures in batch barriers; platform classes perturb
	// sensors and actuators as on a single platform.
	Faults map[int]fault.Scenario
	// Record attaches a replay recorder to every board (check.Trace per
	// board, exposed via Traces). Each board folds its per-barrier
	// counter and assignment count into the digest chain, so bounded-skew
	// runs replay bit-identically or fail loudly.
	Record bool
	// Check attaches the runtime invariant checker to every board; the
	// first violation fails the batch in Step's error.
	Check bool
	// Trace attaches deterministic causal tracing: every submission gets
	// a trace ID derived from (Seed, admission position), spans open and
	// close in virtual time at each stage (admission queue, routing,
	// barrier wait, board residency, market rounds), lifecycle events fold
	// into per-board timelines, and latency histograms record per stage.
	// For trace-driven runs the resulting digests replay bit-identically
	// (TestFleetTraceReplaysBitIdentically); concurrent HTTP submission is
	// inherently nondeterministic input, so only safety — not digest
	// equality — is guaranteed there. Off = the zero-cost detached state.
	Trace bool
}

func (c Config) withDefaults() Config {
	if c.Boards <= 0 {
		c.Boards = 1
	}
	if c.Batch <= 0 {
		c.Batch = DefaultBatch
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.MaxSkew < 0 {
		c.MaxSkew = 0
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.StallBarriers <= 0 {
		c.StallBarriers = DefaultStallBarriers
	}
	return c
}

// Counters are the fleet's task-accounting totals. The zero-loss
// invariant — enforced by tests, check.CheckFleetConservation and the
// fleet-smoke gate — is:
//
//	Submitted - Shed == live tasks on boards + Queued + InFlight + Orphaned
//
// where InFlight covers tasks assigned at barriers still uncollected
// under bounded skew (including batches a stalled board is deferring),
// and Orphaned covers tasks a crashed board's supervisor is holding
// until restart re-places them. (Drained/Resubmitted track evacuations,
// which conserve tasks; evacuated tasks that overflow the queue are
// counted once in Shed, never silently dropped.)
type Counters struct {
	Submitted   uint64 `json:"submitted"`
	Routed      uint64 `json:"routed"`
	Queued      uint64 `json:"queued_total"` // submissions that waited at least one barrier
	Shed        uint64 `json:"shed"`
	Drained     uint64 `json:"drained"`
	Resubmitted uint64 `json:"resubmitted"`
	// Redrained counts auto-drains of a board beyond its first since the
	// cooldown last reset — the drain/resume flapping signal.
	Redrained uint64 `json:"redrained"`
	// Crashes counts board-crash detections; Stalls counts stall
	// quarantines (a board that missed StallBarriers barriers);
	// Restarts counts supervised resurrections. Orphaned is the
	// cumulative count of tasks orphaned by crashes; Replaced counts
	// orphans re-placed through the dispatcher (at restart or, for a
	// permanently quarantined board, immediately).
	Crashes  uint64 `json:"crashes"`
	Stalls   uint64 `json:"stalls"`
	Restarts uint64 `json:"restarts"`
	Orphaned uint64 `json:"orphaned_total"`
	Replaced uint64 `json:"replaced"`
	// Evicted counts queued submissions handed off to an external owner
	// via EvictQueued (the federation's migration path). Evicted work
	// leaves this fleet's ledger — it is the caller's to conserve.
	Evicted uint64 `json:"evicted_total"`
}

// State is the fleet-wide snapshot served at /state.
type State struct {
	Batch    int        `json:"batch"`  // barriers collected
	Issued   int        `json:"issued"` // barriers issued (≥ Batch under skew)
	Time     sim.Time   `json:"t"`
	Boards   []Snapshot `json:"boards"`
	QueueLen int        `json:"queue_len"`
	// InFlight counts tasks assigned to boards at barriers not yet
	// collected (always 0 in lockstep or after Flush), plus batches a
	// stalled board is deferring.
	InFlight int `json:"in_flight"`
	// Orphaned counts tasks held by the crash supervisor: work
	// recovered from crashed boards (checkpoint residents, stalled
	// deferrals, never-run barrier assignments) awaiting re-placement
	// at restart.
	Orphaned int      `json:"orphaned"`
	Counters Counters `json:"counters"`
	// Shards is the dispatcher's effective shard count (configured value
	// clamped to the board count).
	Shards int `json:"shards"`
}

// Live sums the tasks currently placed on boards per the collected
// snapshots.
func (s *State) Live() int {
	n := 0
	for i := range s.Boards {
		n += s.Boards[i].Tasks
	}
	return n
}

// projCarry is one board's not-yet-collected projected load: demand
// assigned at in-flight barriers that the routing snapshot (one or more
// barriers stale under skew) cannot see yet. Routing re-applies it so a
// queued backlog retried over consecutive barriers projects against the
// board like first-time submissions do, instead of dog-piling a board
// whose stale snapshot still looks empty.
type projCarry struct {
	tasks    int
	demandPU float64
}

// inflightBarrier is one issued-but-uncollected barrier: its reply
// channels, the per-board assignment stats to unwind from the carry once
// its snapshots arrive, and the barrier's submissions with each board's
// pick list — retained so a crash or stall collected at this barrier can
// recover exactly the work that was assigned (PerBoard's inner slices
// are freshly allocated per Route call, so holding them is safe).
type inflightBarrier struct {
	batch   int
	replies []chan stepReply
	add     []projCarry
	total   int          // tasks assigned at this barrier
	subs    []Submission // the barrier's submission batch (shared, read-only)
	mine    [][]int32    // per-board pick indexes into subs
}

// drainOp is a deferred drain/resume/restart/replace decision, executed
// only once the pipeline is flushed so the board is quiescent and —
// crucially for restarts under bounded skew — every barrier issued
// before the decision has already been collected, so all of a crashed
// board's skewed-barrier orphans are appended before its work re-enters
// the dispatcher.
type drainOp struct {
	board   int
	resume  bool
	redrain bool
	// restart resurrects a crashed board under the same ID with a
	// derived restart-epoch seed and requeues its orphans; replace only
	// requeues the orphans (permanent quarantine: restarts disabled or
	// MaxRestarts exhausted).
	restart bool
	replace bool
}

// Fleet is the coordinator: it owns the admission queue, the dispatcher
// and the batch barrier pipeline. Submit may be called concurrently with
// Step (the HTTP frontend does); board state is only touched from Step /
// Drain / Resume / Flush, which the driver serializes.
type Fleet struct {
	cfg  Config
	disp *ShardedDispatcher

	boards []*Board

	// Pipeline state, touched only by the (serialized) stepping calls.
	inflight []inflightBarrier
	ops      []drainOp
	degraded []int // consecutive degraded barriers per board
	healthy  []int // consecutive healthy barriers per autodrained board
	auto     []bool
	// Drain-cooldown state (see Config.DrainDegradedAfter).
	drainCount  []int // drains since the cooldown last reset
	resumeAfter []int // healthy barriers required before resume
	sinceResume []int // barriers survived since the last resume

	// Crash-supervisor state (stepping-goroutine owned, like the drain
	// streaks above). crashed marks boards whose terminal reply has been
	// collected this epoch; crashEpochs is each board's current restart
	// epoch; restartBarrier is the barrier at which a pending restart
	// becomes due (-1 = none); restarts counts supervised resurrections
	// per board (the backoff attempt counter); quarantined marks boards
	// permanently retired (restarts disabled or MaxRestarts exhausted);
	// crashedAt records the detection barrier for the restart-latency
	// histogram; orphans holds each crashed board's recovered work until
	// its restart/replace op re-places it.
	crashed        []bool
	crashEpochs    []int
	restartBarrier []int
	restarts       []int
	quarantined    []bool
	crashedAt      []int
	orphans        [][]Submission

	// Stall-detector state (stepping-goroutine owned). stallMiss counts
	// consecutive withheld replies per board; stallQ marks boards past
	// Config.StallBarriers (quarantined from routing until catch-up);
	// stallPending holds the submissions of every deferred batch (the
	// recovery set if the stalled board crashes); stallCarry is the
	// matching projection carry kept pinned in the in-flight ledger for
	// the stall's duration.
	stallMiss    []int
	stallQ       []bool
	stallPending [][]Submission
	stallCarry   []projCarry

	mu            sync.Mutex
	snaps         []Snapshot   // newest collected barrier's snapshots
	carry         []projCarry  // in-flight projected load per board
	batch         int          // barriers collected
	issued        int          // barriers issued
	now           sim.Time     // fleet virtual time (issued * cfg.Batch)
	inflightTasks int          // tasks assigned at uncollected barriers (incl. stalled deferrals)
	orphanedCount int          // tasks held by the crash supervisor
	pending       []Submission // FIFO admission queue (demand pre-estimated)
	sched         []timedSpec  // trace-scheduled future arrivals, sorted by at
	counters      Counters
	closed        bool

	reg *telemetry.Registry
	em  *telemetry.Emitter // optional event stream (KindDrain), nil-safe

	// Causal tracing (nil unless Config.Trace). The fleet buffer's folds
	// all happen on the stepping goroutine, so trace digests are
	// deterministic for trace-driven runs.
	tracer    *trace.Tracer
	traceSeed uint64
	// Stage latency histograms (nil when detached; Record is nil-safe).
	histRouting    *metrics.Histogram // wall ns per Route call
	histQueueWait  *metrics.Histogram // virtual ms enqueue → routed (exemplars)
	histBarrierLag *metrics.Histogram // barriers of skew at collect
	histRestart    *metrics.Histogram // barriers crash-detection → restart
	// evSink, when set, receives each collected barrier's board lifecycle
	// events in (round, board, kind) order (see SetEventSink).
	evSink telemetry.Sink
}

type timedSpec struct {
	at  sim.Time
	seq int // tie-break: submission order
	sub Submission
}

// New builds the fleet and boots its boards (each on its own goroutine,
// idle until the first Step).
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:         cfg,
		disp:        NewShardedDispatcher(cfg.Shards, cfg.Hysteresis, sim.DeriveSeed(cfg.Seed, routeSeedStream)),
		snaps:       make([]Snapshot, cfg.Boards),
		carry:       make([]projCarry, cfg.Boards),
		degraded:    make([]int, cfg.Boards),
		healthy:     make([]int, cfg.Boards),
		auto:        make([]bool, cfg.Boards),
		drainCount:  make([]int, cfg.Boards),
		resumeAfter: make([]int, cfg.Boards),
		sinceResume: make([]int, cfg.Boards),

		crashed:        make([]bool, cfg.Boards),
		crashEpochs:    make([]int, cfg.Boards),
		restartBarrier: make([]int, cfg.Boards),
		restarts:       make([]int, cfg.Boards),
		quarantined:    make([]bool, cfg.Boards),
		crashedAt:      make([]int, cfg.Boards),
		orphans:        make([][]Submission, cfg.Boards),
		stallMiss:      make([]int, cfg.Boards),
		stallQ:         make([]bool, cfg.Boards),
		stallPending:   make([][]Submission, cfg.Boards),
		stallCarry:     make([]projCarry, cfg.Boards),

		reg: telemetry.NewRegistry(),
	}
	for i := range f.restartBarrier {
		f.restartBarrier[i] = -1
	}
	if cfg.Trace {
		f.tracer = trace.NewTracer(cfg.Boards)
		f.traceSeed = sim.DeriveSeed(cfg.Seed, traceSeedStream)
		f.histRouting = metrics.NewLog(100, 2, 24)   // 100ns .. ~800ms wall
		f.histQueueWait = metrics.NewLog(1, 2, 20)   // 1ms .. ~9min virtual
		f.histBarrierLag = metrics.NewLog(0.5, 2, 8) // 0 lag lands ≤0.5
		f.histRestart = metrics.NewLog(0.5, 2, 10)   // barriers crash → restart
	}
	for i := 0; i < cfg.Boards; i++ {
		b, err := newBoard(i, cfg, f.tracer.Board(i), 0)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.boards = append(f.boards, b)
		f.snaps[i] = Snapshot{Board: i, MaxSupplyPU: b.p.MaxSupplyPU()}
	}
	f.registerMetrics()
	return f, nil
}

func (f *Fleet) registerMetrics() {
	f.reg.GaugeFunc("pricepower_fleet_boards", "Boards in the fleet.",
		func() float64 { return float64(len(f.boards)) })
	f.reg.GaugeFunc("pricepower_fleet_queue_len", "Admission queue length.",
		func() float64 { f.mu.Lock(); defer f.mu.Unlock(); return float64(len(f.pending)) })
	f.reg.GaugeFunc("pricepower_fleet_batches", "Batch barriers collected.",
		func() float64 { f.mu.Lock(); defer f.mu.Unlock(); return float64(f.batch) })
	f.reg.GaugeFunc("pricepower_fleet_inflight_tasks", "Tasks assigned at uncollected barriers (bounded skew).",
		func() float64 { f.mu.Lock(); defer f.mu.Unlock(); return float64(f.inflightTasks) })
	counter := func(name, help string, v *uint64) {
		f.reg.GaugeFunc(name, help, func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(*v)
		})
	}
	counter("pricepower_fleet_submitted_total", "Task submissions accepted.", &f.counters.Submitted)
	counter("pricepower_fleet_routed_total", "Tasks routed to a board.", &f.counters.Routed)
	counter("pricepower_fleet_queued_total", "Submissions that waited in the admission queue.", &f.counters.Queued)
	counter("pricepower_fleet_shed_total", "Submissions shed on queue overflow.", &f.counters.Shed)
	counter("pricepower_fleet_drained_total", "Tasks evacuated from draining boards.", &f.counters.Drained)
	counter("pricepower_fleet_resubmitted_total", "Evacuated tasks re-routed through the dispatcher.", &f.counters.Resubmitted)
	counter("pricepower_fleet_redrains_total", "Auto-drains of a board beyond its first (flapping).", &f.counters.Redrained)
	counter("pricepower_fleet_crashes_total", "Board-crash detections.", &f.counters.Crashes)
	counter("pricepower_fleet_stalls_total", "Stall quarantines (boards past StallBarriers misses).", &f.counters.Stalls)
	counter("pricepower_fleet_restarts_total", "Supervised board resurrections.", &f.counters.Restarts)
	counter("pricepower_fleet_orphaned_total", "Tasks orphaned by board crashes (cumulative).", &f.counters.Orphaned)
	counter("pricepower_fleet_replaced_total", "Orphaned tasks re-placed through the dispatcher.", &f.counters.Replaced)
	counter("pricepower_fleet_evicted_total", "Queued submissions evicted to an external owner (migration).", &f.counters.Evicted)
	f.reg.GaugeFunc("pricepower_fleet_orphaned_tasks", "Tasks held by the crash supervisor awaiting re-placement.",
		func() float64 { f.mu.Lock(); defer f.mu.Unlock(); return float64(f.orphanedCount) })
}

// Registry is the fleet-level metrics registry (queue depth, routing
// counters); board registries merge in via MergedMetrics.
func (f *Fleet) Registry() *telemetry.Registry { return f.reg }

// AttachTelemetry connects an event emitter to the fleet's own lifecycle
// events (KindDrain: drain / redrain / resume per board). The emitter's
// clock is bound to the fleet's virtual time.
func (f *Fleet) AttachTelemetry(em *telemetry.Emitter) {
	f.em = em
	em.SetClock(f.Now)
}

// Tracer exposes the causal tracer (nil unless Config.Trace): per-trace
// timelines, span-conservation counts, and the replay digest vector.
func (f *Fleet) Tracer() *trace.Tracer { return f.tracer }

// SetEventSink installs the ordered fleet event stream: each collected
// barrier's board lifecycle events (requires Config.Trace, which enables
// board-side capture) are stamped with their board ID and emitted sorted
// by (round, board, kind). Call before stepping; the sink is read from the
// stepping goroutine without synchronization.
func (f *Fleet) SetEventSink(s telemetry.Sink) { f.evSink = s }

// NumBoards reports the fleet size.
func (f *Fleet) NumBoards() int { return len(f.boards) }

// Now reports the fleet's virtual time (batches issued × batch size).
func (f *Fleet) Now() sim.Time { f.mu.Lock(); defer f.mu.Unlock(); return f.now }

// Submit enqueues specs for routing at the next batch barrier. It never
// routes immediately — arrival order within a barrier is the submission
// order, which keeps trace-driven runs reproducible. Returns the number
// accepted (the rest were shed against the queue cap). Demand estimation
// happens here, once per submission lifetime — not per routing attempt —
// so barrier retries route on the cached estimate.
func (f *Fleet) Submit(specs ...task.Spec) int {
	subs := make([]Submission, len(specs))
	for i, s := range specs {
		subs[i] = NewSubmission(s)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.submitLocked(subs)
}

func (f *Fleet) submitLocked(subs []Submission) int {
	accepted := 0
	for _, s := range subs {
		pos := f.counters.Submitted
		f.counters.Submitted++
		if len(f.pending) >= f.cfg.QueueCap {
			f.counters.Shed++
			if f.tracer != nil {
				// The shed still gets its deterministic ID and a
				// zero-length attributed queue span, so conservation and
				// the replay digest see every admission outcome.
				f.tracer.Fleet().AddAttributed(trace.Span{
					Trace: trace.DeriveID(f.traceSeed, pos),
					Stage: trace.StageQueue, Board: -1, Class: "shed",
					Start: f.now, End: f.now,
				})
			}
			continue
		}
		if f.tracer != nil {
			s.Trace = trace.DeriveID(f.traceSeed, pos)
			s.EnqueuedAt = f.now
			f.tracer.Fleet().Open(trace.Span{
				Trace: s.Trace, Stage: trace.StageQueue, Board: -1, Start: f.now,
			})
		}
		f.pending = append(f.pending, s)
		accepted++
	}
	return accepted
}

// requeueLocked puts evacuated / unrouted specs back at the queue head —
// before anything submitted during the batch, preserving FIFO admission
// (drained tasks were already running, so they go first) — and trims the
// overflow from the tail with Shed accounting. Every path that re-enters
// work (barrier retry, auto-drain, manual Drain) funnels through here so
// an evacuation overlapping a full queue sheds exactly once instead of
// silently exceeding the cap.
func (f *Fleet) requeueLocked(requeue []Submission) {
	if len(requeue) == 0 {
		return
	}
	f.pending = append(requeue, f.pending...)
	if over := len(f.pending) - f.cfg.QueueCap; over > 0 {
		f.counters.Shed += uint64(over)
		if f.tracer != nil {
			// Trimmed submissions all carry open queue spans (accepted or
			// requeued earlier); attribute them to the shed so the ledger
			// stays conserved.
			for _, s := range f.pending[f.cfg.QueueCap:] {
				if s.Trace != 0 {
					f.tracer.Fleet().CloseAttributed(s.Trace, trace.StageQueue, f.now, "shed")
				}
			}
		}
		f.pending = f.pending[:f.cfg.QueueCap]
	}
}

// EvictQueued removes up to max submissions from the tail of the
// admission queue and hands them to the caller — the federation's
// migration hook. Tail eviction preserves FIFO for the work that stays
// (the head waited longest and routes next barrier); the youngest
// arrivals are the cheapest to move. Evicted work leaves this fleet's
// zero-loss ledger via the Evicted counter:
//
//	Submitted − Shed − Evicted == live + Queued + InFlight + Orphaned
//
// so the caller must re-account it (the federation holds it in an
// in-migration ledger until the destination fleet accepts it). Open
// queue spans are closed with an "evict" attribution and the returned
// submissions' trace IDs are zeroed — the destination fleet derives
// fresh IDs from its own trace seed on re-submission.
func (f *Fleet) EvictQueued(max int) []Submission {
	f.mu.Lock()
	defer f.mu.Unlock()
	if max <= 0 || len(f.pending) == 0 {
		return nil
	}
	n := max
	if n > len(f.pending) {
		n = len(f.pending)
	}
	cut := len(f.pending) - n
	out := append([]Submission(nil), f.pending[cut:]...)
	f.pending = f.pending[:cut]
	f.counters.Evicted += uint64(n)
	for i := range out {
		if out[i].Trace != 0 {
			if f.tracer != nil {
				f.tracer.Fleet().CloseAttributed(out[i].Trace, trace.StageQueue, f.now, "evict")
			}
			out[i].Trace = 0
		}
	}
	return out
}

// SubmitAt schedules a spec for submission when the fleet's virtual time
// reaches at — the trace-driven arrival path. Entries due at the same
// barrier are submitted in (at, submission order).
func (f *Fleet) SubmitAt(at sim.Time, spec task.Spec) {
	sub := NewSubmission(spec)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sched = append(f.sched, timedSpec{at: at, seq: len(f.sched), sub: sub})
	sort.SliceStable(f.sched, func(i, j int) bool { return f.sched[i].at < f.sched[j].at })
}

// Step issues one batch barrier and keeps the pipeline within the skew
// bound:
//
//  1. due trace arrivals and the pending queue are routed (FIFO) against
//     the newest collected snapshots, with the in-flight carry projected
//     on top so uncollected assignments still count against a board;
//  2. each board receives its assignment and advances cfg.Batch on its
//     own goroutine — Step does not wait for it;
//  3. barriers older than MaxSkew are collected (blocking): snapshots
//     and versions publish, degraded streaks update, and drain/resume
//     decisions execute on a flushed pipeline (evacuated specs re-enter
//     the queue head).
//
// Step returns the first invariant violation when Config.Check is on.
func (f *Fleet) Step() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return fmt.Errorf("fleet: stepped after Close")
	}
	// Release due trace arrivals into the queue, after any carried
	// pending work (older submissions route first).
	horizon := f.now + f.cfg.Batch
	for len(f.sched) > 0 && f.sched[0].at < horizon {
		f.submitLocked([]Submission{f.sched[0].sub})
		f.sched = f.sched[1:]
	}
	snaps := append([]Snapshot(nil), f.snaps...)
	for i := range snaps {
		if c := f.carry[i]; c.tasks > 0 {
			snaps[i].Tasks += c.tasks
			snaps[i].DemandPU += c.demandPU
			frac := c.demandPU / snaps[i].MaxSupplyPU
			if snaps[i].Price > 0 {
				snaps[i].Price *= 1 + frac
			} else {
				snaps[i].Price = frac
			}
		}
	}
	subs := f.pending
	f.pending = nil
	issued := f.issued
	routeAt := f.now
	f.mu.Unlock()

	var t0 time.Time
	if f.tracer != nil {
		t0 = time.Now()
	}
	rb := f.disp.Route(snaps, subs)
	if f.tracer != nil {
		// Spans ride the barrier, not the route loop: one pass over the
		// decided picks closes each routed submission's queue span with
		// the pass that placed it (home lane vs. steal) and records its
		// queue wait. Wall-clock routing latency goes to the histogram
		// only — never the digest.
		f.histRouting.Record(float64(time.Since(t0).Nanoseconds()))
		fb := f.tracer.Fleet()
		for si := range rb.Picks {
			if rb.Picks[si] < 0 || subs[si].Trace == 0 {
				continue
			}
			class := "home"
			if rb.Stolen != nil && rb.Stolen[si] {
				class = "steal"
			}
			fb.Close(subs[si].Trace, trace.StageQueue, routeAt, class)
			f.histQueueWait.RecordExemplar(
				float64(routeAt-subs[si].EnqueuedAt)/float64(sim.Millisecond),
				uint64(subs[si].Trace))
		}
	}
	// Materialize the unrouted tail before anything can call Route again
	// (rb's slices are dispatcher scratch).
	var unrouted []Submission
	if len(rb.Unrouted) > 0 {
		unrouted = make([]Submission, 0, len(rb.Unrouted))
		for _, si := range rb.Unrouted {
			unrouted = append(unrouted, subs[si])
		}
	}

	// Fan the batch out; each board advances on its own goroutine and the
	// barrier joins the pipeline instead of blocking here. Boards receive
	// the shared read-only submission slice plus their pick-index list —
	// no per-board spec copies on the barrier's critical path.
	bar := inflightBarrier{
		batch:   issued + 1,
		replies: make([]chan stepReply, len(f.boards)),
		add:     make([]projCarry, len(f.boards)),
		subs:    subs,
		mine:    make([][]int32, len(f.boards)),
	}
	for i, b := range f.boards {
		var mine []int32
		var dpu float64
		if rb.PerBoard != nil { // nil when the batch had no submissions
			mine = rb.PerBoard[i]
			dpu = rb.AddDemandPU[i]
		}
		bar.replies[i] = make(chan stepReply, 1)
		b.cmd <- stepCmd{subs: subs, mine: mine, d: f.cfg.Batch, batch: issued + 1, reply: bar.replies[i]}
		bar.add[i] = projCarry{tasks: len(mine), demandPU: dpu}
		bar.mine[i] = mine
		bar.total += len(mine)
	}
	f.inflight = append(f.inflight, bar)

	f.mu.Lock()
	f.issued++
	f.now += f.cfg.Batch
	f.inflightTasks += bar.total
	for i := range f.carry {
		f.carry[i].tasks += bar.add[i].tasks
		f.carry[i].demandPU += bar.add[i].demandPU
	}
	f.counters.Routed += uint64(rb.Routed)
	f.counters.Queued += uint64(len(unrouted))
	f.mu.Unlock()

	resubmit, firstErr := f.collectTo(f.cfg.MaxSkew)

	f.mu.Lock()
	f.requeueLocked(append(resubmit, unrouted...))
	f.mu.Unlock()
	if f.cfg.Check {
		// The crash-conservation self-check: every accepted task is live,
		// queued, in flight, or orphaned — at every barrier, crashes and
		// stalls included. Joined after the step error so a crash report
		// and a ledger leak both surface.
		if err := check.CheckFleetConservation(f); err != nil {
			firstErr = errors.Join(firstErr, err)
		}
	}
	return firstErr
}

// collectTo collects outstanding barriers until at most maxOutstanding
// remain and no deferred decision is pending. Decisions flush the
// pipeline first (drain/resume must see a quiescent board; restart must
// see every skewed barrier's orphans appended), then execute in decision
// order; evacuated and re-placed specs are returned for requeueing.
// Errors join across barriers and boards (errors.Join), so one collect
// pass can report two boards crashing at the same barrier plus an
// invariant violation on a third. A LivenessError aborts immediately —
// after a real hang the remaining barriers would only hang again.
func (f *Fleet) collectTo(maxOutstanding int) (resubmit []Submission, firstErr error) {
	var errs []error
	for len(f.inflight) > maxOutstanding || len(f.ops) > 0 {
		if len(f.ops) > 0 && len(f.inflight) == 0 {
			ops := f.ops
			f.ops = nil
			for _, op := range ops {
				switch {
				case op.restart:
					resubmit = append(resubmit, f.restartBoard(op.board)...)
				case op.replace:
					subs := f.takeOrphans(op.board)
					resubmit = append(resubmit, subs...)
					f.emitBoardEvent(op.board, "replace", float64(len(subs)))
				case op.resume:
					if f.crashed[op.board] || f.quarantined[op.board] {
						continue // moot: the board crashed since the op queued
					}
					f.resumeBoard(op.board)
					f.mu.Lock()
					f.snaps[op.board].Draining = false
					f.mu.Unlock()
					f.emitDrainEvent(op.board, "resume", 0)
				default:
					if f.crashed[op.board] || f.quarantined[op.board] {
						continue // moot: the supervisor owns this board's work
					}
					subs := f.drainBoard(op.board)
					resubmit = append(resubmit, subs...)
					f.mu.Lock()
					f.snaps[op.board].Draining = true
					f.snaps[op.board].Tasks = 0
					if op.redrain {
						f.counters.Redrained++
					}
					f.mu.Unlock()
					class := "drain"
					if op.redrain {
						class = "redrain"
					}
					f.emitDrainEvent(op.board, class, len(subs))
				}
			}
			continue
		}
		if err := f.collectOldest(); err != nil {
			errs = append(errs, err)
			var le *LivenessError
			if errors.As(err, &le) {
				break
			}
		}
	}
	return resubmit, errors.Join(errs...)
}

// collectReplies gathers one barrier's step replies, optionally bounded
// by the wall-clock liveness deadline. Injected stalls and crashes reply
// instantly with sentinels and never trip it; only a real hang does. On
// timeout every already-delivered reply is drained non-blocking first
// (reply channels are buffered), so the hung list names exactly the
// boards that produced nothing.
func (f *Fleet) collectReplies(bar inflightBarrier) ([]stepReply, []int) {
	replies := make([]stepReply, len(bar.replies))
	if f.cfg.Liveness <= 0 {
		for i := range bar.replies {
			replies[i] = <-bar.replies[i]
		}
		return replies, nil
	}
	got := make([]bool, len(bar.replies))
	timer := time.NewTimer(f.cfg.Liveness)
	defer timer.Stop()
	for i := range bar.replies {
		select {
		case r := <-bar.replies[i]:
			replies[i], got[i] = r, true
		case <-timer.C:
			var hung []int
			for j := range bar.replies {
				if got[j] {
					continue
				}
				select {
				case r := <-bar.replies[j]:
					replies[j], got[j] = r, true
				default:
					hung = append(hung, j)
				}
			}
			if len(hung) == 0 {
				return replies, nil // everything was already on the wire
			}
			return replies, hung
		}
	}
	return replies, nil
}

// collectOldest blocks on the oldest in-flight barrier, resolves each
// board's reply (normal snapshot, stall sentinel, crash sentinel, or
// stall catch-up), publishes the versioned snapshots, unwinds the
// projection carry, and records any drain/restart decisions the barrier
// triggers. Per-board errors join: two boards crashing at one barrier
// yield one errors.Join of two CrashErrors.
func (f *Fleet) collectOldest() error {
	bar := f.inflight[0]
	f.inflight = f.inflight[1:]
	replies, hung := f.collectReplies(bar)
	if hung != nil {
		return &LivenessError{Barrier: bar.batch, Deadline: f.cfg.Liveness, Boards: hung}
	}
	fresh := make([]Snapshot, len(f.boards))
	var events []telemetry.Event
	var bevents []boardEvent // crash/stall lifecycle, emitted after unlock
	var errs []error
	f.mu.Lock()
	// Unwind the barrier's projection first; the resolvers below re-pin
	// the share belonging to stalled boards and move crashed boards'
	// shares to the orphan ledger.
	f.batch++
	f.inflightTasks -= bar.total
	for i := range f.carry {
		f.carry[i].tasks -= bar.add[i].tasks
		f.carry[i].demandPU -= bar.add[i].demandPU
	}
	for i := range f.boards {
		r := replies[i]
		switch {
		case r.crashed:
			fresh[i] = f.resolveCrashLocked(i, bar, r, &errs, &bevents)
		case r.stalled:
			fresh[i] = f.resolveStallLocked(i, bar, &bevents)
		default:
			fresh[i] = r.snap
			if f.stallMiss[i] > 0 {
				f.resolveCatchupLocked(i, &bevents)
			}
			if f.evSink != nil && len(r.events) > 0 {
				for _, ev := range r.events {
					ev.Board = i
					// Restamp Round with the fold round (the barrier number):
					// emit sites stamp market rounds inconsistently (migration
					// leaves it zero, fault uses its own period), so the fold
					// round is the only key that is monotone across the log.
					// Exact virtual time is preserved in ev.Time.
					ev.Round = int(bar.batch)
					events = append(events, ev)
				}
			}
			if r.err != nil {
				errs = append(errs, fmt.Errorf("fleet: board %d: %w", i, r.err))
			}
		}
	}
	copy(f.snaps, fresh)
	lag := f.issued - bar.batch
	f.mu.Unlock()
	for _, be := range bevents {
		f.emitBoardEvent(be.board, be.class, be.value)
	}
	f.noteDrainStreaks(fresh)
	f.pendRestarts(bar.batch)
	if f.tracer != nil {
		// The barrier span is fully known at collect time: it covered one
		// batch of virtual time, and its lag is how many barriers issuance
		// ran ahead while it was in flight (bounded by MaxSkew).
		start := sim.Time(bar.batch-1) * f.cfg.Batch
		f.tracer.Fleet().Add(trace.Span{
			Stage: trace.StageBarrier, Board: -1,
			Start: start, End: start + f.cfg.Batch,
			Barrier: bar.batch, Lag: lag,
		})
		f.histBarrierLag.Record(float64(lag))
	}
	if len(events) > 0 {
		// The per-barrier event fold: one globally sorted flush per
		// barrier in (round, board, kind) order — the ordering contract
		// JSONL consumers rely on (see telemetry.JSONLSink).
		sort.SliceStable(events, func(i, j int) bool {
			a, b := events[i], events[j]
			if a.Round != b.Round {
				return a.Round < b.Round
			}
			if a.Board != b.Board {
				return a.Board < b.Board
			}
			return a.Kind < b.Kind
		})
		for _, ev := range events {
			f.evSink.Emit(ev)
		}
	}
	return errors.Join(errs...)
}

// boardEvent is one gathered crash/stall lifecycle event, emitted after
// the resolvers release f.mu (the emitter's clock takes the fleet lock).
type boardEvent struct {
	board int
	class string
	value float64
}

// resolveCrashLocked handles one crashed reply under f.mu. On first
// detection it orphans the board's recoverable work — the last good
// checkpoint's residents, every stall-deferred batch, and this barrier's
// never-run assignments — unpins the stall carry, schedules the restart
// (or permanent quarantine), and reports a CrashError. Later crashed
// replies from the same epoch only orphan that barrier's skew-issued
// assignments (routing already excludes the board once the crash
// snapshot publishes).
func (f *Fleet) resolveCrashLocked(i int, bar inflightBarrier, r stepReply, errs *[]error, bevents *[]boardEvent) Snapshot {
	var orphaned []Submission
	for _, si := range bar.mine[i] {
		orphaned = append(orphaned, bar.subs[si])
	}
	if !f.crashed[i] {
		// First detection for this epoch.
		f.crashed[i] = true
		f.crashedAt[i] = bar.batch
		f.counters.Crashes++
		*errs = append(*errs, &CrashError{Board: i, Barrier: bar.batch, Err: r.err})
		*bevents = append(*bevents, boardEvent{board: i, class: "crash", value: float64(bar.batch)})
		// The stall ledger's deferrals died with the board: unpin their
		// carry and move the submissions to the orphan set.
		orphaned = append(orphaned, f.stallPending[i]...)
		f.carry[i].tasks -= f.stallCarry[i].tasks
		f.carry[i].demandPU -= f.stallCarry[i].demandPU
		f.inflightTasks -= f.stallCarry[i].tasks
		f.stallCarry[i] = projCarry{}
		f.stallPending[i] = nil
		f.stallMiss[i] = 0
		f.stallQ[i] = false
		// The checkpoint's residents (folded at the last successful
		// barrier; nil when the board never completed one).
		if ck, err := DecodeCheckpoint(r.ckpt); err != nil {
			*errs = append(*errs, fmt.Errorf("fleet: board %d checkpoint: %w", i, err))
		} else if ck != nil {
			for _, ct := range ck.Tasks {
				s := NewSubmission(ct.Spec)
				s.Trace = ct.Trace
				orphaned = append(orphaned, s)
			}
		}
		// Schedule the resurrection, or retire the board for good.
		if f.cfg.RestartAfter > 0 && (f.cfg.MaxRestarts <= 0 || f.restarts[i] < f.cfg.MaxRestarts) {
			f.restartBarrier[i] = bar.batch + f.restartDelayBarriers(i)
		} else {
			f.quarantined[i] = true
			f.ops = append(f.ops, drainOp{board: i, replace: true})
			*bevents = append(*bevents, boardEvent{board: i, class: "quarantine", value: float64(f.restarts[i])})
		}
	}
	f.orphans[i] = append(f.orphans[i], orphaned...)
	f.orphanedCount += len(orphaned)
	f.counters.Orphaned += uint64(len(orphaned))
	snap := f.snaps[i]
	snap.Batch = bar.batch
	snap.Crashed = true
	snap.Stalled = false
	snap.Tasks = 0
	snap.DemandPU = 0
	return snap
}

// resolveStallLocked handles one stall-sentinel reply under f.mu: the
// barrier's assignments stay pinned in the in-flight ledger (the board
// holds the batch for catch-up), the actual submissions join the
// stall-pending recovery set, and the board quarantines from routing
// once it has missed Config.StallBarriers barriers in a row.
func (f *Fleet) resolveStallLocked(i int, bar inflightBarrier, bevents *[]boardEvent) Snapshot {
	f.carry[i].tasks += bar.add[i].tasks
	f.carry[i].demandPU += bar.add[i].demandPU
	f.inflightTasks += bar.add[i].tasks
	f.stallCarry[i].tasks += bar.add[i].tasks
	f.stallCarry[i].demandPU += bar.add[i].demandPU
	for _, si := range bar.mine[i] {
		f.stallPending[i] = append(f.stallPending[i], bar.subs[si])
	}
	f.stallMiss[i]++
	if !f.stallQ[i] && f.stallMiss[i] >= f.cfg.StallBarriers {
		f.stallQ[i] = true
		f.counters.Stalls++
		*bevents = append(*bevents, boardEvent{board: i, class: "stall", value: float64(f.stallMiss[i])})
	}
	snap := f.snaps[i]
	snap.Batch = bar.batch
	snap.Stalled = f.stallQ[i]
	return snap
}

// resolveCatchupLocked clears a board's stall state on its first real
// reply after a stall window: the caught-up snapshot already counts the
// deferred batches' tasks as live, so the pinned carry unwinds here,
// exactly once.
func (f *Fleet) resolveCatchupLocked(i int, bevents *[]boardEvent) {
	f.carry[i].tasks -= f.stallCarry[i].tasks
	f.carry[i].demandPU -= f.stallCarry[i].demandPU
	f.inflightTasks -= f.stallCarry[i].tasks
	f.stallCarry[i] = projCarry{}
	f.stallPending[i] = nil
	if f.stallQ[i] {
		*bevents = append(*bevents, boardEvent{board: i, class: "catch-up", value: float64(f.stallMiss[i])})
	}
	f.stallMiss[i] = 0
	f.stallQ[i] = false
}

// pendRestarts queues restart ops for crashed boards whose backoff
// expired at or before the just-collected barrier. The op mechanism
// flushes the pipeline before executing, so every skew-issued barrier's
// orphans are appended before the restart re-places them.
func (f *Fleet) pendRestarts(collected int) {
	for i := range f.boards {
		if f.restartBarrier[i] >= 0 && collected >= f.restartBarrier[i] {
			f.restartBarrier[i] = -1
			f.ops = append(f.ops, drainOp{board: i, restart: true})
		}
	}
}

// restartDelayBarriers derives the barriers between a crash detection
// and the board's resurrection: RestartAfter on the first crash, backing
// off exponentially per repeat with deterministic seeded jitter (its own
// lane of the restart seed stream, disjoint from the epoch-seed lane).
func (f *Fleet) restartDelayBarriers(board int) int {
	bo := fault.Backoff{
		Base:   sim.Time(f.cfg.RestartAfter) * f.cfg.Batch,
		Factor: 2,
		Jitter: 0.25,
		Seed:   sim.DeriveSeed(f.cfg.Seed, restartSeedStream+0x8000+uint64(board)),
	}
	barriers := int((bo.Next(f.restarts[board]) + f.cfg.Batch - 1) / f.cfg.Batch)
	if barriers < f.cfg.RestartAfter {
		barriers = f.cfg.RestartAfter
	}
	return barriers
}

// restartBoard resurrects a crashed board under the same ID: the dead
// goroutine stops, a fresh platform boots under the derived
// restart-epoch seed, and the orphaned work re-enters the dispatcher as
// ordinary submissions (returned for requeueing at the queue head).
// Runs only on a flushed pipeline (drainOp contract), so the old
// board's command queue is empty and its every skewed barrier has been
// orphan-accounted.
func (f *Fleet) restartBoard(i int) []Submission {
	old := f.boards[i]
	reply := make(chan struct{})
	old.cmd <- stopCmd{reply: reply}
	<-reply
	<-old.done

	epoch := f.crashEpochs[i] + 1
	b, err := newBoard(i, f.cfg, f.tracer.Board(i), epoch)
	if err != nil {
		// Can only happen if the board's fault scenario fails validation,
		// which New() already vetted — but if it does, retire the board
		// rather than crash the fleet.
		f.quarantined[i] = true
		f.emitBoardEvent(i, "quarantine", float64(f.restarts[i]))
		return f.takeOrphans(i)
	}
	f.crashEpochs[i] = epoch
	f.restarts[i]++
	f.crashed[i] = false
	f.degraded[i], f.healthy[i], f.auto[i] = 0, 0, false

	f.mu.Lock()
	f.boards[i] = b // under mu: Boards() is read from HTTP goroutines
	f.counters.Restarts++
	f.snaps[i] = Snapshot{Board: i, Epoch: epoch, MaxSupplyPU: b.p.MaxSupplyPU()}
	latency := f.batch - f.crashedAt[i]
	f.mu.Unlock()
	if f.histRestart != nil {
		f.histRestart.Record(float64(latency))
	}
	f.emitBoardEvent(i, "restart", float64(epoch))
	return f.takeOrphans(i)
}

// takeOrphans drains a board's orphan ledger into submissions ready for
// the queue head: each keeps its trace ID and reopens a queue span
// attributed to the requeue, so a task's crash → re-place journey reads
// as one timeline.
func (f *Fleet) takeOrphans(i int) []Submission {
	subs := f.orphans[i]
	f.orphans[i] = nil
	if len(subs) == 0 {
		return nil
	}
	f.mu.Lock()
	now := f.now
	f.orphanedCount -= len(subs)
	f.counters.Replaced += uint64(len(subs))
	if f.tracer != nil {
		for j := range subs {
			if subs[j].Trace == 0 {
				continue
			}
			subs[j].EnqueuedAt = now
			f.tracer.Fleet().Open(trace.Span{
				Trace: subs[j].Trace, Stage: trace.StageQueue, Board: -1,
				Start: now, Class: "requeue",
			})
		}
	}
	f.mu.Unlock()
	return subs
}

// emitBoardEvent publishes one KindBoard lifecycle event (class = crash /
// stall / catch-up / restart / replace / quarantine). Never call under
// f.mu: the emitter's clock is f.Now.
func (f *Fleet) emitBoardEvent(board int, class string, value float64) {
	if !f.em.Enabled(telemetry.KindBoard) {
		return
	}
	ev := telemetry.E(telemetry.KindBoard)
	ev.Name = fmt.Sprintf("board-%d", board)
	ev.Class = class
	ev.Value = value
	f.em.Emit(ev)
}

// Flush collects every outstanding barrier and executes pending
// drain/resume decisions, bringing the published state fully current
// (bounded-skew runs leave up to MaxSkew barriers in flight). A no-op in
// lockstep steady state.
func (f *Fleet) Flush() error {
	resubmit, err := f.collectTo(0)
	f.mu.Lock()
	f.requeueLocked(resubmit)
	f.mu.Unlock()
	return err
}

// cooldownBarriers derives the healthy-barrier streak a board must show
// before its next resume: DrainDegradedAfter barriers on the first drain,
// doubling per re-drain (capped at 32×), with deterministic seeded jitter
// so a fleet of flapping boards doesn't resume in thundering-herd unison.
func (f *Fleet) cooldownBarriers(board int) int {
	n := f.cfg.DrainDegradedAfter
	bo := fault.Backoff{
		Base:   sim.Time(n) * f.cfg.Batch,
		Factor: 2,
		Jitter: 0.25,
		Seed:   sim.DeriveSeed(f.cfg.Seed, drainSeedStream+uint64(board)),
	}
	barriers := int((bo.Next(f.drainCount[board]) + f.cfg.Batch - 1) / f.cfg.Batch)
	if barriers < n {
		barriers = n
	}
	return barriers
}

// noteDrainStreaks tracks per-board degraded streaks against one
// collected barrier, queueing drain decisions for boards that stayed
// degraded too long and resume decisions once a drained board stays
// healthy through its cooldown. Decisions are deferred (drainOp) so they
// execute on a flushed pipeline.
func (f *Fleet) noteDrainStreaks(fresh []Snapshot) {
	if f.cfg.DrainDegradedAfter <= 0 {
		return
	}
	for i, s := range fresh {
		if f.crashed[i] || f.quarantined[i] || f.stallMiss[i] > 0 {
			// Dead or silent boards republish stale snapshots; their
			// Degraded bit is old news, and draining them is the
			// supervisor's job, not the sensor-health path's.
			f.degraded[i] = 0
			f.healthy[i] = 0
			continue
		}
		if s.Degraded {
			f.degraded[i]++
			f.healthy[i] = 0
		} else {
			f.degraded[i] = 0
			if f.auto[i] {
				f.healthy[i]++
			}
		}
		// Cooldown decay: surviving twice the last cooldown after a
		// resume earns the exponential counter back. Only trusted
		// (non-degraded) barriers count as surviving.
		if !f.auto[i] && f.drainCount[i] > 0 && !s.Degraded {
			f.sinceResume[i]++
			if f.sinceResume[i] >= 2*f.resumeAfter[i] {
				f.drainCount[i] = 0
			}
		}
		if !f.auto[i] && f.degraded[i] >= f.cfg.DrainDegradedAfter {
			f.auto[i] = true
			f.healthy[i] = 0
			f.resumeAfter[i] = f.cooldownBarriers(i)
			f.drainCount[i]++
			f.sinceResume[i] = 0
			f.ops = append(f.ops, drainOp{board: i, redrain: f.drainCount[i] > 1})
			continue
		}
		if f.auto[i] && f.healthy[i] >= f.resumeAfter[i] {
			f.auto[i] = false
			f.healthy[i] = 0
			f.sinceResume[i] = 0
			f.ops = append(f.ops, drainOp{board: i, resume: true})
		}
	}
}

// emitDrainEvent publishes one KindDrain lifecycle event (class = drain /
// redrain / resume / manual-drain / manual-resume).
func (f *Fleet) emitDrainEvent(board int, class string, evacuated int) {
	if !f.em.Enabled(telemetry.KindDrain) {
		return
	}
	ev := telemetry.E(telemetry.KindDrain)
	ev.Name = fmt.Sprintf("board-%d", board)
	ev.Class = class
	ev.Value = float64(evacuated)
	ev.Prev = float64(f.resumeAfter[board])
	f.em.Emit(ev)
}

func (f *Fleet) drainBoard(i int) []Submission {
	reply := make(chan []evacuated, 1)
	f.boards[i].cmd <- drainCmd{reply: reply}
	evs := <-reply
	subs := make([]Submission, len(evs))
	f.mu.Lock()
	now := f.now
	f.counters.Drained += uint64(len(subs))
	f.counters.Resubmitted += uint64(len(subs))
	f.mu.Unlock()
	for j, e := range evs {
		s := NewSubmission(e.spec)
		if f.tracer != nil && e.id != 0 {
			// The evacuated task keeps its trace ID: its board span just
			// closed attributed to the drain, and a fresh queue span opens
			// here so the requeue leg shows up on the same timeline.
			s.Trace = e.id
			s.EnqueuedAt = now
			f.tracer.Fleet().Open(trace.Span{
				Trace: e.id, Stage: trace.StageQueue, Board: -1,
				Start: now, Class: "requeue",
			})
		}
		subs[j] = s
	}
	return subs
}

func (f *Fleet) resumeBoard(i int) {
	reply := make(chan struct{})
	f.boards[i].cmd <- resumeCmd{reply: reply}
	<-reply
}

// Drain evacuates board i immediately (manual hot-unplug path): the
// pipeline is flushed, the board's tasks re-enter the admission queue
// head (overflow sheds with accounting, like every requeue), and the
// board stops receiving work until Resume. Safe only between Steps
// (fleetd's driver serializes them).
func (f *Fleet) Drain(i int) error {
	if i < 0 || i >= len(f.boards) {
		return fmt.Errorf("fleet: no board %d", i)
	}
	if f.crashed[i] || f.quarantined[i] {
		return fmt.Errorf("fleet: board %d crashed; the supervisor owns its work", i)
	}
	if err := f.Flush(); err != nil {
		return err
	}
	subs := f.drainBoard(i)
	f.mu.Lock()
	f.snaps[i].Draining = true
	f.snaps[i].Tasks = 0
	f.requeueLocked(subs)
	f.mu.Unlock()
	f.emitDrainEvent(i, "manual-drain", len(subs))
	return nil
}

// Resume lets a manually drained board accept work again.
func (f *Fleet) Resume(i int) error {
	if i < 0 || i >= len(f.boards) {
		return fmt.Errorf("fleet: no board %d", i)
	}
	if f.crashed[i] || f.quarantined[i] {
		return fmt.Errorf("fleet: board %d crashed; resume waits on the supervisor", i)
	}
	if err := f.Flush(); err != nil {
		return err
	}
	f.resumeBoard(i)
	f.mu.Lock()
	f.snaps[i].Draining = false
	f.mu.Unlock()
	f.emitDrainEvent(i, "manual-resume", 0)
	return nil
}

// StateSnapshot publishes the fleet-wide view of the newest collected
// barrier.
func (f *Fleet) StateSnapshot() State {
	f.mu.Lock()
	defer f.mu.Unlock()
	shards := f.cfg.Shards
	if shards > len(f.boards) {
		shards = len(f.boards)
	}
	if shards < 1 {
		shards = 1
	}
	st := State{
		Batch:    f.batch,
		Issued:   f.issued,
		Time:     f.now,
		Boards:   append([]Snapshot(nil), f.snaps...),
		QueueLen: len(f.pending),
		InFlight: f.inflightTasks,
		Orphaned: f.orphanedCount,
		Counters: f.counters,
		Shards:   shards,
	}
	return st
}

// FleetAccounting reports the zero-loss ledger terms at the newest
// collected barrier, for check.CheckFleetConservation: accepted =
// submitted − shed − evicted must equal live + queued + in-flight +
// orphaned. (Finished tasks stay resident until drained, so completions
// never leak out of the identity; evicted work belongs to whoever
// called EvictQueued.)
func (f *Fleet) FleetAccounting() (accepted, live, queued, inflight, orphaned uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.snaps {
		live += uint64(f.snaps[i].Tasks)
	}
	return f.counters.Submitted - f.counters.Shed - f.counters.Evicted, live,
		uint64(len(f.pending)), uint64(f.inflightTasks), uint64(f.orphanedCount)
}

// Traces returns the per-board replay traces (index = board ID); entries
// are nil unless Config.Record was set.
func (f *Fleet) Traces() []*check.Trace {
	boards := f.Boards()
	out := make([]*check.Trace, len(boards))
	for i, b := range boards {
		out[i] = b.Trace()
	}
	return out
}

// Boards exposes the boards (read-only use: registries, traces). The
// returned slice is a copy: a supervised restart swaps a board pointer
// mid-run, and HTTP readers must not race it.
func (f *Fleet) Boards() []*Board {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Board(nil), f.boards...)
}

// Close stops every board goroutine. The fleet is unusable afterwards.
// Outstanding pipelined steps drain through each board's command queue
// before the stop executes.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	for _, b := range f.boards {
		reply := make(chan struct{})
		b.cmd <- stopCmd{reply: reply}
		<-reply
		<-b.done
	}
}
