package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"pricepower/internal/telemetry"
)

// SubmitResult is the POST /submit response body.
type SubmitResult struct {
	// Accepted counts specs that entered the admission queue now.
	Accepted int `json:"accepted"`
	// Scheduled counts specs deferred to a future virtual time (at_ms).
	Scheduled int `json:"scheduled"`
	// Shed counts specs dropped against the queue cap.
	Shed int `json:"shed"`
}

// NewMux serves the fleet's HTTP surface:
//
//	POST /submit   — batch task submission (ArrivalTrace JSON body)
//	GET  /boards   — per-board snapshots incl. cluster detail
//	GET  /state    — fleet-wide state (counters, queue, board summaries)
//	GET  /metrics  — Prometheus text: fleet registry + every board's
//	                 registry relabeled with board="<id>"
func NewMux(f *Fleet) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		tr, err := ParseTrace(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		specs, err := tr.Resolve()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var res SubmitResult
		base := f.Now()
		for _, ts := range specs {
			if ts.At <= 0 {
				if f.Submit(ts.Spec) == 1 {
					res.Accepted++
				} else {
					res.Shed++
				}
			} else {
				f.SubmitAt(base+ts.At, ts.Spec)
				res.Scheduled++
			}
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("/state", func(w http.ResponseWriter, r *http.Request) {
		st := f.StateSnapshot()
		// /state is the convergence poll target: keep it lean by
		// dropping the per-cluster detail (that is /boards' job).
		for i := range st.Boards {
			st.Boards[i].Clusters = nil
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("/boards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, f.StateSnapshot().Boards)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := WriteMetrics(w, f); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// WriteMetrics renders the merged Prometheus document: the fleet's own
// registry as-is, plus every board's registry with a board label
// injected into each series.
func WriteMetrics(w http.ResponseWriter, f *Fleet) error {
	merged := f.Registry().Export()
	for _, b := range f.Boards() {
		id := strconv.Itoa(b.ID)
		for _, s := range b.Registry().Export() {
			s.Name = telemetry.InjectLabel(s.Name, "board", id)
			merged = append(merged, s)
		}
	}
	return telemetry.WriteSeriesProm(w, merged)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, fmt.Sprintf("encode: %v", err), http.StatusInternalServerError)
	}
}
