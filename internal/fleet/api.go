package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"pricepower/internal/telemetry"
	"pricepower/internal/telemetry/trace"
)

// SubmitResult is the POST /submit response body.
type SubmitResult struct {
	// Accepted counts specs that entered the admission queue now.
	Accepted int `json:"accepted"`
	// Scheduled counts specs deferred to a future virtual time (at_ms).
	Scheduled int `json:"scheduled"`
	// Shed counts specs dropped against the queue cap.
	Shed int `json:"shed"`
}

// MaxSubmitBody caps a POST /submit request body. A full QueueCap of
// richly-specified tasks fits comfortably; anything past the cap is a
// runaway client or an attack, refused with a structured 413 before a
// byte of it is parsed into memory.
const MaxSubmitBody = 4 << 20 // 4 MiB

// apiError is the structured error body every non-2xx /submit response
// carries, so clients never have to scrape free-text http.Error strings.
type apiError struct {
	Error string `json:"error"` // machine-friendly slug: bad-request, too-large, method
	Msg   string `json:"msg"`   // human detail
}

func writeAPIError(w http.ResponseWriter, status int, slug, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(apiError{Error: slug, Msg: msg}) //nolint:errcheck // headers already sent
}

// NewMux serves the fleet's HTTP surface:
//
//	POST /submit      — batch task submission (ArrivalTrace JSON body)
//	GET  /boards      — per-board snapshots incl. cluster detail
//	GET  /state       — fleet-wide state (counters, queue, board summaries)
//	GET  /metrics     — Prometheus text: fleet registry + every board's
//	                    registry relabeled with board="<id>"
//	GET  /trace       — span ledger + replay digest vector (Config.Trace)
//	GET  /trace?id=   — one trace's merged JSON timeline
//	GET  /histograms  — stage latency histograms: fleet-level, per-board
//	                    (board label) and the fleet-wide k-way merge
func NewMux(f *Fleet) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeAPIError(w, http.StatusMethodNotAllowed, "method", "POST only")
			return
		}
		body := http.MaxBytesReader(w, r.Body, MaxSubmitBody)
		tr, err := ParseTrace(body)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeAPIError(w, http.StatusRequestEntityTooLarge, "too-large",
					fmt.Sprintf("request body exceeds %d bytes", MaxSubmitBody))
				return
			}
			writeAPIError(w, http.StatusBadRequest, "bad-request", err.Error())
			return
		}
		specs, err := tr.Resolve()
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, "bad-request", err.Error())
			return
		}
		var res SubmitResult
		base := f.Now()
		for _, ts := range specs {
			if ts.At <= 0 {
				if f.Submit(ts.Spec) == 1 {
					res.Accepted++
				} else {
					res.Shed++
				}
			} else {
				f.SubmitAt(base+ts.At, ts.Spec)
				res.Scheduled++
			}
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("/state", func(w http.ResponseWriter, r *http.Request) {
		st := f.StateSnapshot()
		// /state is the convergence poll target: keep it lean by
		// dropping the per-cluster detail (that is /boards' job).
		for i := range st.Boards {
			st.Boards[i].Clusters = nil
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("/boards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, f.StateSnapshot().Boards)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := WriteMetrics(w, f); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		tr := f.Tracer()
		if tr == nil {
			http.Error(w, "tracing detached (run with Config.Trace / -tracing)", http.StatusNotFound)
			return
		}
		idStr := r.URL.Query().Get("id")
		if idStr == "" {
			// Summary view: the span ledger and the replay digest vector
			// (index 0 = fleet, i+1 = board i) — what the smoke gate curls
			// to assert conservation and replay identity.
			writeJSON(w, TraceSummary{Counts: tr.Counts(), Digests: digestStrings(tr.Digests())})
			return
		}
		id, err := trace.ParseID(idStr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tl := tr.Timeline(id)
		if len(tl.Spans) == 0 && len(tl.Open) == 0 {
			http.Error(w, fmt.Sprintf("no spans for trace %s", id), http.StatusNotFound)
			return
		}
		writeJSON(w, tl)
	})
	mux.HandleFunc("/histograms", func(w http.ResponseWriter, r *http.Request) {
		if f.Tracer() == nil {
			http.Error(w, "tracing detached (run with Config.Trace / -tracing)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := f.WriteHistograms(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// TraceSummary is the GET /trace (no id) response: the aggregated span
// ledger plus the replay digest vector, hex-encoded.
type TraceSummary struct {
	Counts  trace.Counts `json:"counts"`
	Digests []string     `json:"digests"`
}

func digestStrings(ds []uint64) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = fmt.Sprintf("%016x", d)
	}
	return out
}

// ExportMetrics snapshots the merged series set: the fleet's own
// registry as-is, plus every board's registry with a board label
// injected into each series. Callers that nest the fleet under a larger
// topology (the federation) relabel the result again with
// telemetry.AppendLabeled.
func (f *Fleet) ExportMetrics() []telemetry.Series {
	merged := f.Registry().Export()
	for _, b := range f.Boards() {
		merged = telemetry.AppendLabeled(merged, b.Registry().Export(), "board", strconv.Itoa(b.ID))
	}
	return merged
}

// WriteMetrics renders the merged Prometheus document (see ExportMetrics).
func WriteMetrics(w http.ResponseWriter, f *Fleet) error {
	return telemetry.WriteSeriesProm(w, f.ExportMetrics())
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, fmt.Sprintf("encode: %v", err), http.StatusInternalServerError)
	}
}
