package fleet

import (
	"reflect"
	"testing"

	"pricepower/internal/sim"
	"pricepower/internal/task"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Board: 3, Epoch: 2, Batch: 17, Round: 412,
		Time: sim.FromMillis(1700), RR: 9, Seed: 0xfee1de7e,
		Tasks: []CheckpointTask{
			{Trace: 0x1234, Spec: task.Spec{
				Name: "swaptions-0", Priority: 2, MinHR: 4, MaxHR: 8, Loop: true,
				Phases: []task.Phase{{HBCostLittle: 20, SpeedupBig: 1.8}},
			}},
			{Trace: 0, Spec: task.Spec{
				Name: "x264-1", Priority: 1, MinHR: 1, MaxHR: 30,
				Phases: []task.Phase{
					{Duration: sim.FromMillis(500), HBCostLittle: 12, SpeedupBig: 2.1, SelfCapHR: 25},
					{Duration: sim.FromMillis(250), HBCostLittle: 30, SpeedupBig: 1.5},
				},
			}},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	got, err := DecodeCheckpoint(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
	// Nil image (pre-first-barrier crash) round-trips to nil.
	if b := (*Checkpoint)(nil).Encode(); b != nil {
		t.Fatalf("nil checkpoint encoded to %d bytes", len(b))
	}
	if c, err := DecodeCheckpoint(nil); c != nil || err != nil {
		t.Fatalf("DecodeCheckpoint(nil) = %v, %v", c, err)
	}
}

func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	enc := sampleCheckpoint().Encode()
	if _, err := DecodeCheckpoint(enc[:len(enc)-3]); err == nil {
		t.Error("truncated checkpoint decoded cleanly")
	}
	if _, err := DecodeCheckpoint(append(append([]byte(nil), enc...), 0xff)); err == nil {
		t.Error("trailing garbage decoded cleanly")
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Error("bad magic decoded cleanly")
	}
	bad = append([]byte(nil), enc...)
	bad[1] = 99
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Error("unknown version decoded cleanly")
	}
}

// FuzzCheckpointRoundTrip asserts the codec's two contracts: arbitrary
// bytes never panic the decoder, and anything that decodes cleanly
// re-encodes to a byte-identical image (the supervisor's restart
// accounting rides on exact round-trips).
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(sampleCheckpoint().Encode())
	f.Add((&Checkpoint{Board: 1, Seed: 42}).Encode())
	f.Add([]byte{ckptMagic, ckptVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil || c == nil {
			return
		}
		enc := c.Encode()
		c2, err := DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("re-decode of a clean checkpoint failed: %v", err)
		}
		// Compare canonical encodings, not structs: NaN payloads decode
		// fine but defeat == on floats.
		if string(enc) != string(c2.Encode()) {
			t.Fatalf("round trip diverged:\n got %x\nwant %x", c2.Encode(), enc)
		}
	})
}
