package fleet

import (
	"encoding/binary"
	"fmt"
	"math"

	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/telemetry/trace"
)

// Checkpoint is a board's compact restart image, folded by the board
// goroutine at the end of every successful step and carried on the step
// reply in encoded form. It holds exactly what the supervisor needs to
// resurrect the board's *work* — the resident task specs with their
// causal trace IDs — plus the market/governor restart position (barrier,
// round, virtual time, placement cursor, seed) that stamps where in the
// run the image was taken. The restarted board itself boots fresh under
// a derived restart-epoch seed; the checkpointed tasks re-enter the
// dispatcher rather than being teleported onto the new platform, so
// restart placement follows the same price routing as any admission.
type Checkpoint struct {
	Board int      // board ID the image belongs to
	Epoch int      // restart epoch the image was folded under
	Batch int      // barrier the image covers (the last collected step)
	Round int      // market bid rounds completed at the fold
	Time  sim.Time // board-local virtual time at the fold
	RR    int      // placement round-robin cursor (seed-stream position)
	Seed  uint64   // board seed the epoch ran under
	Tasks []CheckpointTask
}

// CheckpointTask is one resident task in a checkpoint: the spec the
// dispatcher re-places plus the causal trace ID that keeps the task's
// timeline continuous across the crash (0 when untraced).
type CheckpointTask struct {
	Spec  task.Spec
	Trace trace.ID
}

// Checkpoint wire format: a version byte, then varints for every integer
// field and IEEE-754 bits for every float. Strings are length-prefixed.
// The format is a private fleet concern (the supervisor is the only
// consumer), but it must round-trip exactly: restart accounting depends
// on every checkpointed task surviving encode/decode bit-for-bit (see
// FuzzCheckpointRoundTrip).
const (
	ckptMagic   = 0xC4
	ckptVersion = 1
)

func putUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func putFloat(b []byte, f float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	return append(b, tmp[:]...)
}

func putString(b []byte, s string) []byte {
	b = putUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Encode serializes the checkpoint. A nil checkpoint encodes as nil (the
// pre-first-barrier state: nothing resident, nothing to restart).
func (c *Checkpoint) Encode() []byte {
	if c == nil {
		return nil
	}
	b := make([]byte, 0, 64+32*len(c.Tasks))
	b = append(b, ckptMagic, ckptVersion)
	b = putUvarint(b, uint64(c.Board))
	b = putUvarint(b, uint64(c.Epoch))
	b = putUvarint(b, uint64(c.Batch))
	b = putUvarint(b, uint64(c.Round))
	b = putUvarint(b, uint64(c.Time))
	b = putUvarint(b, uint64(c.RR))
	b = putUvarint(b, c.Seed)
	b = putUvarint(b, uint64(len(c.Tasks)))
	for i := range c.Tasks {
		t := &c.Tasks[i]
		b = putUvarint(b, uint64(t.Trace))
		b = putString(b, t.Spec.Name)
		b = putUvarint(b, uint64(t.Spec.Priority))
		b = putFloat(b, t.Spec.MinHR)
		b = putFloat(b, t.Spec.MaxHR)
		if t.Spec.Loop {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = putUvarint(b, uint64(len(t.Spec.Phases)))
		for _, p := range t.Spec.Phases {
			b = putUvarint(b, uint64(p.Duration))
			b = putFloat(b, p.HBCostLittle)
			b = putFloat(b, p.SpeedupBig)
			b = putFloat(b, p.SelfCapHR)
		}
	}
	return b
}

// ckptReader is a bounds-checked cursor over an encoded checkpoint; the
// first malformed field poisons it and every later read returns zero.
type ckptReader struct {
	b   []byte
	err error
}

func (r *ckptReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("fleet: checkpoint: truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// intField decodes a varint that must fit a non-negative int (counts and
// cursors; an adversarial encoding cannot smuggle a negative length in).
func (r *ckptReader) intField(what string) int {
	v := r.uvarint()
	if r.err == nil && v > math.MaxInt32 {
		r.err = fmt.Errorf("fleet: checkpoint: %s %d out of range", what, v)
	}
	return int(v)
}

func (r *ckptReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = fmt.Errorf("fleet: checkpoint: truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *ckptReader) string() string {
	n := r.intField("string length")
	if r.err != nil {
		return ""
	}
	if n > len(r.b) {
		r.err = fmt.Errorf("fleet: checkpoint: truncated string")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *ckptReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = fmt.Errorf("fleet: checkpoint: truncated byte")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// DecodeCheckpoint parses an encoded checkpoint. nil input decodes to a
// nil checkpoint (no error): a board that crashed before its first
// successful barrier has no image. Malformed input never panics — the
// supervisor treats a decode error as an empty checkpoint plus a
// surfaced error.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b) < 2 || b[0] != ckptMagic {
		return nil, fmt.Errorf("fleet: checkpoint: bad magic")
	}
	if b[1] != ckptVersion {
		return nil, fmt.Errorf("fleet: checkpoint: unknown version %d", b[1])
	}
	r := &ckptReader{b: b[2:]}
	c := &Checkpoint{
		Board: r.intField("board"),
		Epoch: r.intField("epoch"),
		Batch: r.intField("batch"),
		Round: r.intField("round"),
	}
	c.Time = sim.Time(r.uvarint())
	c.RR = r.intField("rr")
	c.Seed = r.uvarint()
	n := r.intField("task count")
	if r.err != nil {
		return nil, r.err
	}
	// Bound the allocation by what the buffer could actually hold (each
	// task costs ≥ 28 bytes encoded), so a hostile count cannot OOM.
	if n > len(r.b)/28+1 {
		return nil, fmt.Errorf("fleet: checkpoint: task count %d exceeds buffer", n)
	}
	c.Tasks = make([]CheckpointTask, 0, n)
	for i := 0; i < n; i++ {
		var t CheckpointTask
		t.Trace = trace.ID(r.uvarint())
		t.Spec.Name = r.string()
		t.Spec.Priority = r.intField("priority")
		t.Spec.MinHR = r.float()
		t.Spec.MaxHR = r.float()
		t.Spec.Loop = r.byte() == 1
		np := r.intField("phase count")
		if r.err != nil {
			return nil, r.err
		}
		if np > len(r.b)/25+1 {
			return nil, fmt.Errorf("fleet: checkpoint: phase count %d exceeds buffer", np)
		}
		t.Spec.Phases = make([]task.Phase, 0, np)
		for j := 0; j < np; j++ {
			var p task.Phase
			p.Duration = sim.Time(r.uvarint())
			p.HBCostLittle = r.float()
			p.SpeedupBig = r.float()
			p.SelfCapHR = r.float()
			t.Spec.Phases = append(t.Spec.Phases, p)
		}
		if r.err != nil {
			return nil, r.err
		}
		c.Tasks = append(c.Tasks, t)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("fleet: checkpoint: %d trailing bytes", len(r.b))
	}
	return c, nil
}
