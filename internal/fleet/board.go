package fleet

import (
	"fmt"

	"pricepower/internal/check"
	"pricepower/internal/exp"
	"pricepower/internal/fault"
	"pricepower/internal/hw"
	"pricepower/internal/platform"
	"pricepower/internal/ppm"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/telemetry"
)

// Board is one independent platform instance in the fleet: its own TC2
// chip, PPM governor, telemetry registry, optional invariant checker,
// replay recorder and fault injector, advanced by a dedicated goroutine
// that only moves when the fleet sends it a batch command. All of a
// board's mutable state is owned by that goroutine — the fleet talks to
// it exclusively through the command channel, so a board needs no locks
// and its virtual timeline is bit-reproducible.
type Board struct {
	ID   int
	Seed uint64 // per-board seed, derived from the fleet seed

	p   *platform.Platform
	gov *ppm.Governor
	em  *telemetry.Emitter
	chk *check.Checker
	rec *check.Recorder
	inj *fault.Injector

	little []int // LITTLE core IDs, placement targets
	rr     int   // persistent round-robin cursor over little

	draining bool

	cmd  chan interface{}
	done chan struct{}
}

type stepCmd struct {
	subs  []Submission // the barrier's full submission batch (shared, read-only)
	mine  []int32      // indexes into subs placed (in order) before the batch runs
	d     sim.Time     // batch length of virtual time
	batch int
	reply chan stepReply
}

type stepReply struct {
	snap Snapshot
	err  error // first invariant violation, when checking is on
}

type drainCmd struct {
	reply chan []task.Spec // the evacuated specs, in placement order
}

type resumeCmd struct{ reply chan struct{} }

type stopCmd struct{ reply chan struct{} }

// newBoard assembles one board from the fleet config. The governor is
// always PPM: clearing prices are the routing signal, so a price-less
// governor has no place in the fleet.
func newBoard(id int, cfg Config) (*Board, error) {
	b := &Board{
		ID:   id,
		Seed: sim.DeriveSeed(cfg.Seed, uint64(id)),
		p:    platform.NewTC2(),
		// Bounded skew queues up to MaxSkew+1 step commands on a board
		// that is running behind, plus one control command (drain /
		// resume / stop); the buffer keeps the fleet's issue path from
		// blocking on a slow board.
		cmd:  make(chan interface{}, cfg.MaxSkew+2),
		done: make(chan struct{}),
	}
	pcfg := ppm.DefaultConfig(cfg.TDP)
	pcfg.Profiles = exp.WorkloadProfiles
	b.gov = ppm.New(pcfg)
	b.p.SetGovernor(b.gov)

	// Each board owns a registry so /metrics can expose per-board series
	// under a board label. The emitter carries no sinks and a zero kind
	// mask: the fleet wants the registry's direct counters (ticks, market
	// rounds, throttles, sensor rejects), not N boards' event streams.
	b.em = telemetry.NewEmitter(telemetry.NewRegistry())
	b.em.SetKinds(0)
	b.p.AttachTelemetry(b.em)

	maxOver := 0
	if sc, ok := cfg.Faults[id]; ok {
		sc.Seed = b.Seed
		geo := b.p.Chip
		if err := sc.Validate(len(geo.Clusters), len(geo.Cores)); err != nil {
			return nil, fmt.Errorf("fleet: board %d fault scenario: %w", id, err)
		}
		b.inj = fault.NewInjector(sc)
		b.p.AttachFaults(b.inj)
		maxOver = faultMaxOverRounds
	}
	if cfg.Check {
		b.chk = check.New(check.Options{
			Market:        b.gov.Market(),
			TDP:           cfg.TDP,
			MaxOverRounds: maxOver,
		})
		b.p.AttachChecker(b.chk)
	}
	if cfg.Record {
		b.rec = check.NewRecorder(fmt.Sprintf("board-%d", id), b.Seed, "fleet",
			check.RecorderOptions{Market: b.gov.Market()})
		b.p.AttachChecker(b.rec)
	}

	for _, c := range b.p.Chip.Cores {
		if c.Type() == hw.Little {
			b.little = append(b.little, c.ID)
		}
	}
	if len(b.little) == 0 {
		b.little = []int{0}
	}

	go b.loop()
	return b, nil
}

// faultMaxOverRounds relaxes the checker's tdp-settled tolerance on
// fault-injected boards, matching ppmsim: a refused down-step or a stuck
// sensor legitimately pins smoothed power above the slack band for the
// length of the fault window.
const faultMaxOverRounds = 64

// loop is the board goroutine: it owns every mutable field of the board
// and executes fleet commands in arrival order.
func (b *Board) loop() {
	defer close(b.done)
	for raw := range b.cmd {
		switch c := raw.(type) {
		case stepCmd:
			b.place(c.subs, c.mine)
			b.p.Run(c.d)
			if b.rec != nil {
				// Fold the barrier counter and assignment count into the
				// replay trace: under bounded skew a run is bit-identical
				// only if every batch of work landed on the same barrier,
				// so the counters must be part of the digest chain, not
				// just the market samples.
				b.rec.Record(uint64(c.batch)<<20 | uint64(len(c.mine)))
			}
			r := stepReply{snap: b.snapshot(c.batch)}
			if b.chk != nil {
				r.err = b.chk.Err()
			}
			c.reply <- r
		case drainCmd:
			c.reply <- b.evacuate()
		case resumeCmd:
			b.draining = false
			close(c.reply)
		case stopCmd:
			close(c.reply)
			return
		}
	}
}

// place boots the board's share of the barrier batch on the LITTLE
// cluster round-robin (the paper's Linux boots tasks there; the governor
// migrates them as the market dictates). The dispatcher hands every board
// the shared submission slice plus its pick-index list, so placement
// copies nothing. The cursor persists across batches so successive
// arrivals spread.
func (b *Board) place(subs []Submission, mine []int32) {
	for _, si := range mine {
		b.p.AddTask(subs[si].Spec, b.little[b.rr%len(b.little)])
		b.rr++
	}
}

// evacuate removes every task from the board and returns their specs so
// the fleet can resubmit them through the dispatcher. The board keeps
// ticking while drained — an empty market settles to idle — and marks
// itself draining so no new work is routed to it.
func (b *Board) evacuate() []task.Spec {
	b.draining = true
	tasks := append([]*task.Task(nil), b.p.Tasks()...)
	specs := make([]task.Spec, 0, len(tasks))
	for _, t := range tasks {
		specs = append(specs, t.Spec)
		b.p.RemoveTask(t)
	}
	return specs
}

// snapshot publishes the board's routing signal at a batch barrier.
func (b *Board) snapshot(batch int) Snapshot {
	m := b.gov.Market()
	var sum float64
	var n int
	for _, cl := range m.Clusters {
		for _, c := range cl.Cores {
			sum += c.Price()
			n++
		}
	}
	price := 0.0
	if n > 0 {
		price = sum / float64(n)
	}
	st := b.p.Stats()
	return Snapshot{
		Board:       b.ID,
		Time:        b.p.Now(),
		Batch:       batch,
		Round:       m.Round(),
		Price:       price,
		PowerW:      st.PowerW,
		SmoothedW:   m.SmoothedPower(),
		WthW:        m.EffectiveWth(),
		WtdpW:       m.EffectiveWtdp(),
		State:       m.State().String(),
		Degraded:    m.Degraded(),
		Draining:    b.draining,
		Tasks:       st.Tasks,
		DemandPU:    m.TotalDemand(),
		SupplyPU:    m.TotalSupply(),
		MaxSupplyPU: b.p.MaxSupplyPU(),
		Clusters:    st.Clusters,
	}
}

// Registry exposes the board's telemetry registry for /metrics merging.
func (b *Board) Registry() *telemetry.Registry { return b.em.Registry() }

// Trace returns the board's replay trace (nil unless Config.Record).
func (b *Board) Trace() *check.Trace {
	if b.rec == nil {
		return nil
	}
	return b.rec.Trace()
}
