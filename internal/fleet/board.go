package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pricepower/internal/check"
	"pricepower/internal/core"
	"pricepower/internal/exp"
	"pricepower/internal/fault"
	"pricepower/internal/hw"
	"pricepower/internal/metrics"
	"pricepower/internal/platform"
	"pricepower/internal/ppm"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/telemetry"
	"pricepower/internal/telemetry/trace"
)

// Board is one independent platform instance in the fleet: its own TC2
// chip, PPM governor, telemetry registry, optional invariant checker,
// replay recorder and fault injector, advanced by a dedicated goroutine
// that only moves when the fleet sends it a batch command. All of a
// board's mutable state is owned by that goroutine — the fleet talks to
// it exclusively through the command channel, so a board needs no locks
// and its virtual timeline is bit-reproducible.
type Board struct {
	ID    int
	Seed  uint64 // per-board seed, derived from the fleet seed
	epoch int    // restart epoch (0 = original boot)

	p   *platform.Platform
	gov *ppm.Governor
	em  *telemetry.Emitter
	chk *check.Checker
	rec *check.Recorder
	inj *fault.Injector

	little []int // LITTLE core IDs, placement targets
	rr     int   // persistent round-robin cursor over little

	draining bool

	// Board failure domain (see DESIGN.md §12). bsc is the board-level
	// fault schedule (nil without board faults); crashed flips on panic
	// recovery and is terminal for this epoch — the board answers every
	// later command with a crashed reply so the barrier pipeline never
	// deadlocks on it. ckpt is the encoded checkpoint folded at the end
	// of the last successful step; deferred holds stalled batches until
	// the stall window closes.
	bsc      *fault.Scenario
	crashed  bool
	crashErr error
	ckpt     []byte
	deferred []deferredBatch

	// Causal tracing (nil when Config.Trace is off — the zero-cost
	// detached state). All fields are owned by the board goroutine; trc's
	// own mutex covers the HTTP layer's concurrent reads.
	trc      *trace.Buffer
	capture  *captureSink
	obs      *boardObserver
	traceOf  map[*task.Task]trace.ID
	histStep *metrics.Histogram // wall ns per batch step (place + run)

	cmd  chan interface{}
	done chan struct{}
}

// traceCaptureKinds is the lifecycle-event mask a traced board captures
// for its timeline points: the low-volume kinds only, so the capture path
// never sees the per-round price/bid/clearing firehose.
var traceCaptureKinds = telemetry.Kinds(telemetry.KindDVFS, telemetry.KindMigration,
	telemetry.KindThrottle, telemetry.KindPowerGate, telemetry.KindDegraded, telemetry.KindFault)

// captureSink buffers a traced board's lifecycle events during p.Run.
// Market phases emit from pool workers, so the append is mutex-guarded;
// the board drains and sorts the batch into a total content order before
// folding, which is what keeps the trace digest replay-stable.
type captureSink struct {
	mu  sync.Mutex
	evs []telemetry.Event
}

func (c *captureSink) Emit(ev telemetry.Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

func (c *captureSink) drain() []telemetry.Event {
	c.mu.Lock()
	evs := c.evs
	c.evs = nil
	c.mu.Unlock()
	return evs
}

// sortEvents imposes the total content order used before folding captured
// events into the trace digest (pool-worker emission order is not
// deterministic; the content order is).
func sortEvents(evs []telemetry.Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Cluster != b.Cluster {
			return a.Cluster < b.Cluster
		}
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.Prev < b.Prev
	})
}

type stepCmd struct {
	subs  []Submission // the barrier's full submission batch (shared, read-only)
	mine  []int32      // indexes into subs placed (in order) before the batch runs
	d     sim.Time     // batch length of virtual time
	batch int
	reply chan stepReply
}

type stepReply struct {
	snap Snapshot
	// events are the batch's captured lifecycle events, content-sorted
	// (nil unless tracing): the fleet's per-barrier fold stamps board IDs
	// and emits them in (round, board, kind) order to its event sink.
	events []telemetry.Event
	err    error // first invariant violation, when checking is on

	// crashed marks a terminal reply from a dead board: no snapshot, no
	// events — just the last folded checkpoint for the supervisor to
	// orphan from. The board keeps answering so the pipeline never
	// blocks on it. stalled marks a withheld step (board-stall fault):
	// the batch was deferred board-side and the fleet keeps its
	// assignments in flight until the board catches up or crashes.
	crashed bool
	stalled bool
	ckpt    []byte // encoded Checkpoint (crashed replies only)
}

// deferredBatch is one stalled step command held by the board: it runs,
// in order, at the first barrier past the stall window (or dies with
// the board, in which case the fleet's stall-pending ledger recovers
// the work).
type deferredBatch struct {
	subs  []Submission
	mine  []int32
	d     sim.Time
	batch int
}

// evacuated pairs an evacuated spec with its causal trace ID (0 when
// untraced or already completed) so a drained task keeps its identity
// across the requeue.
type evacuated struct {
	spec task.Spec
	id   trace.ID
}

type drainCmd struct {
	reply chan []evacuated // the evacuated specs, in placement order
}

type resumeCmd struct{ reply chan struct{} }

type stopCmd struct{ reply chan struct{} }

// newBoard assembles one board from the fleet config. The governor is
// always PPM: clearing prices are the routing signal, so a price-less
// governor has no place in the fleet. trc is the board's trace buffer
// (nil when tracing is detached). epoch is the restart epoch: 0 for the
// original boot (seed stream unchanged from the pre-failure-domain
// fleet, keeping old replay digests valid), ≥ 1 for a supervised
// restart, which derives a fresh epoch-namespaced seed so the reborn
// board's randomness never replays the timeline that crashed.
func newBoard(id int, cfg Config, trc *trace.Buffer, epoch int) (*Board, error) {
	seed := sim.DeriveSeed(cfg.Seed, uint64(id))
	if epoch > 0 {
		seed = sim.DeriveSeed(sim.DeriveSeed(cfg.Seed, restartSeedStream+uint64(epoch)), uint64(id))
	}
	b := &Board{
		ID:    id,
		Seed:  seed,
		epoch: epoch,
		p:     platform.NewTC2(),
		// Bounded skew queues up to MaxSkew+1 step commands on a board
		// that is running behind, plus one control command (drain /
		// resume / stop); the buffer keeps the fleet's issue path from
		// blocking on a slow board.
		cmd:  make(chan interface{}, cfg.MaxSkew+2),
		done: make(chan struct{}),
	}
	pcfg := ppm.DefaultConfig(cfg.TDP)
	pcfg.Profiles = exp.WorkloadProfiles
	b.gov = ppm.New(pcfg)
	b.p.SetGovernor(b.gov)

	// Each board owns a registry so /metrics can expose per-board series
	// under a board label. The emitter carries no sinks and a zero kind
	// mask: the fleet wants the registry's direct counters (ticks, market
	// rounds, throttles, sensor rejects), not N boards' event streams.
	// With tracing on, a capture sink collects the low-volume lifecycle
	// kinds for the board's trace timeline — the per-round kinds stay
	// masked so the bid/route hot loops remain untouched.
	if trc != nil {
		b.trc = trc
		b.capture = &captureSink{}
		b.traceOf = make(map[*task.Task]trace.ID)
		b.histStep = metrics.NewLog(1000, 2, 26) // 1µs .. ~34s wall per step
		b.em = telemetry.NewEmitter(telemetry.NewRegistry(), b.capture)
		b.em.SetKinds(traceCaptureKinds)
	} else {
		b.em = telemetry.NewEmitter(telemetry.NewRegistry())
		b.em.SetKinds(0)
	}
	b.p.AttachTelemetry(b.em)

	maxOver := 0
	if sc, ok := cfg.Faults[id]; ok {
		sc.Seed = b.Seed
		geo := b.p.Chip
		if err := sc.Validate(len(geo.Clusters), len(geo.Cores)); err != nil {
			return nil, fmt.Errorf("fleet: board %d fault scenario: %w", id, err)
		}
		b.inj = fault.NewInjector(sc)
		b.p.AttachFaults(b.inj)
		maxOver = faultMaxOverRounds
		if sc.HasBoardFaults() {
			// Board-level faults (crash / stall) are consulted once per
			// step command against the batch barrier number; the platform
			// injector skips them.
			scc := sc
			b.bsc = &scc
		}
	}
	if cfg.Check {
		b.chk = check.New(check.Options{
			Market:        b.gov.Market(),
			TDP:           cfg.TDP,
			MaxOverRounds: maxOver,
		})
		b.p.AttachChecker(b.chk)
	}
	if cfg.Record {
		name := fmt.Sprintf("board-%d", id)
		if epoch > 0 {
			name = fmt.Sprintf("board-%d.r%d", id, epoch)
		}
		b.rec = check.NewRecorder(name, b.Seed, "fleet",
			check.RecorderOptions{Market: b.gov.Market()})
		b.p.AttachChecker(b.rec)
	}
	if trc != nil {
		// The observer rides the existing per-tick checker hook: one round
		// comparison per tick, span work only on round boundaries and task
		// completions — nothing on the bid/route loops.
		b.obs = &boardObserver{
			b:             b,
			m:             b.gov.Market(),
			histRound:     metrics.NewLog(1, 2, 16),  // 1ms .. ~33s virtual
			histResidency: metrics.NewLog(10, 2, 20), // 10ms .. ~3h virtual
		}
		b.p.AttachChecker(b.obs)
	}

	for _, c := range b.p.Chip.Cores {
		if c.Type() == hw.Little {
			b.little = append(b.little, c.ID)
		}
	}
	if len(b.little) == 0 {
		b.little = []int{0}
	}

	go b.loop()
	return b, nil
}

// faultMaxOverRounds relaxes the checker's tdp-settled tolerance on
// fault-injected boards, matching ppmsim: a refused down-step or a stuck
// sensor legitimately pins smoothed power above the slack band for the
// length of the fault window.
const faultMaxOverRounds = 64

// loop is the board goroutine: it owns every mutable field of the board
// and executes fleet commands in arrival order. Every command is
// answered even after a crash — the barrier pipeline must never block
// on a dead board.
func (b *Board) loop() {
	defer close(b.done)
	for raw := range b.cmd {
		switch c := raw.(type) {
		case stepCmd:
			c.reply <- b.step(c)
		case drainCmd:
			if b.crashed {
				// Nothing to evacuate: the supervisor already owns the
				// crashed board's work via the checkpoint.
				c.reply <- nil
			} else {
				c.reply <- b.evacuate()
			}
		case resumeCmd:
			b.draining = false
			close(c.reply)
		case stopCmd:
			close(c.reply)
			return
		}
	}
}

// step executes one barrier command with the board's failure domain
// around it: a crashed board answers terminally, a stalling board
// defers the batch behind a sentinel reply, and any panic — injected
// board-crash or real bug — is recovered into the terminal crashed
// state instead of killing the goroutine (which would deadlock
// collectTo forever on this board's reply channel).
func (b *Board) step(c stepCmd) (r stepReply) {
	if b.crashed {
		return stepReply{crashed: true, ckpt: b.ckpt, err: b.crashErr}
	}
	if b.bsc != nil && b.bsc.StallsAt(b.ID, c.batch) {
		// Withhold the real reply: hold the batch for catch-up and answer
		// with the sentinel so the barrier still completes. The fleet
		// keeps these assignments in flight (stall-pending) and
		// quarantines the board after Config.StallBarriers misses.
		b.deferred = append(b.deferred, deferredBatch{subs: c.subs, mine: c.mine, d: c.d, batch: c.batch})
		return stepReply{stalled: true}
	}
	defer func() {
		if p := recover(); p != nil {
			r = b.recoverCrash(c.batch, p)
		}
	}()
	var w0 time.Time
	if b.trc != nil {
		w0 = time.Now()
	}
	// Catch up deferred (stalled) batches first, in barrier order, then
	// run the current one: the board's virtual timeline replays exactly
	// the batches it was issued, so replay digests stay bit-identical.
	for _, dd := range b.deferred {
		b.runBatch(dd.subs, dd.mine, dd.d, dd.batch)
	}
	b.deferred = nil
	b.runBatch(c.subs, c.mine, c.d, c.batch)
	r = stepReply{snap: b.snapshot(c.batch)}
	if b.trc != nil {
		// Per-round fold: drain the batch's captured lifecycle events
		// (including any caught-up batches'), sort into the total content
		// order (pool-worker emission order is nondeterministic), and
		// fold them as timeline points. Wall-clock step time goes only to
		// the histogram, never the digest.
		b.histStep.Record(float64(time.Since(w0).Nanoseconds()))
		evs := b.capture.drain()
		sortEvents(evs)
		for _, ev := range evs {
			b.trc.Mark(trace.Point{
				Kind:  ev.Kind.String(),
				Board: b.ID,
				Time:  ev.Time,
				Class: ev.Class,
				Value: ev.Value,
			})
		}
		r.events = evs
	}
	if b.chk != nil {
		r.err = b.chk.Err()
	}
	// Fold the restart image after the step fully succeeded: a crash at
	// barrier n orphans from the barrier n-1 image plus the fleet-side
	// ledgers, never from a half-run barrier.
	b.ckpt = b.foldCheckpoint(c.batch)
	return r
}

// runBatch is one batch of board work: the injected-crash gate, the
// placement of the barrier's assignments, and the platform run.
func (b *Board) runBatch(subs []Submission, mine []int32, d sim.Time, batch int) {
	if b.bsc != nil && b.bsc.CrashesAt(b.ID, batch) {
		panic(fmt.Sprintf("fault: board-crash injected at barrier %d", batch))
	}
	b.place(subs, mine)
	b.p.Run(d)
	if b.rec != nil {
		// Fold the barrier counter and assignment count into the replay
		// trace: under bounded skew a run is bit-identical only if every
		// batch of work landed on the same barrier, so the counters must
		// be part of the digest chain, not just the market samples.
		b.rec.Record(uint64(batch)<<20 | uint64(len(mine)))
	}
}

// recoverCrash turns a step panic into the terminal crashed state: the
// board's open residency spans close attributed to the crash (in trace
// ID order — map iteration order must never reach a digest), buffered
// capture is dropped, and every future command gets an immediate
// crashed reply carrying the last good checkpoint.
func (b *Board) recoverCrash(batch int, cause interface{}) stepReply {
	b.crashed = true
	b.crashErr = fmt.Errorf("board %d panicked at barrier %d: %v", b.ID, batch, cause)
	b.deferred = nil // the fleet's stall-pending ledger owns this work now
	if b.trc != nil {
		now := b.p.Now()
		ids := make([]trace.ID, 0, len(b.traceOf))
		for _, id := range b.traceOf {
			if id != 0 {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			b.trc.CloseAttributed(id, trace.StageBoard, now, "crash")
		}
		b.traceOf = make(map[*task.Task]trace.ID)
		b.capture.drain() // the dead batch's events never reach the fold
		if b.obs != nil {
			b.obs.watch = b.obs.watch[:0]
		}
	}
	return stepReply{crashed: true, ckpt: b.ckpt, err: b.crashErr}
}

// foldCheckpoint builds and encodes the board's restart image: every
// resident task spec with its trace ID, plus the market/governor
// restart position (barrier, round, virtual time, placement cursor,
// seed). Runs on the board goroutine after a successful step, so the
// platform state it reads is a consistent barrier boundary.
func (b *Board) foldCheckpoint(batch int) []byte {
	tasks := b.p.Tasks()
	ck := &Checkpoint{
		Board: b.ID,
		Epoch: b.epoch,
		Batch: batch,
		Round: b.gov.Market().Round(),
		Time:  b.p.Now(),
		RR:    b.rr,
		Seed:  b.Seed,
		Tasks: make([]CheckpointTask, 0, len(tasks)),
	}
	for _, t := range tasks {
		ck.Tasks = append(ck.Tasks, CheckpointTask{Spec: t.Spec, Trace: b.traceOf[t]})
	}
	return ck.Encode()
}

// place boots the board's share of the barrier batch on the LITTLE
// cluster round-robin (the paper's Linux boots tasks there; the governor
// migrates them as the market dictates). The dispatcher hands every board
// the shared submission slice plus its pick-index list, so placement
// copies nothing. The cursor persists across batches so successive
// arrivals spread.
func (b *Board) place(subs []Submission, mine []int32) {
	now := b.p.Now()
	for _, si := range mine {
		t := b.p.AddTask(subs[si].Spec, b.little[b.rr%len(b.little)])
		b.rr++
		if b.trc == nil || subs[si].Trace == 0 {
			continue
		}
		// Open the residency span on the board's own buffer (single
		// writer); the observer closes it on completion, evacuate on
		// drain. Looping tasks never finish, so only finite tasks join
		// the completion watch list.
		id := subs[si].Trace
		b.traceOf[t] = id
		b.trc.Open(trace.Span{Trace: id, Stage: trace.StageBoard, Board: b.ID, Start: now})
		if !t.Spec.Loop {
			b.obs.watch = append(b.obs.watch, watchedTask{t: t, id: id, placed: now})
		}
	}
}

// evacuate removes every task from the board and returns their specs so
// the fleet can resubmit them through the dispatcher. The board keeps
// ticking while drained — an empty market settles to idle — and marks
// itself draining so no new work is routed to it.
func (b *Board) evacuate() []evacuated {
	b.draining = true
	now := b.p.Now()
	tasks := append([]*task.Task(nil), b.p.Tasks()...)
	out := make([]evacuated, 0, len(tasks))
	for _, t := range tasks {
		e := evacuated{spec: t.Spec}
		if id := b.traceOf[t]; id != 0 {
			// The residency span ends here, attributed to the drain; the
			// fleet reopens a queue span under the same trace ID when it
			// requeues the spec.
			e.id = id
			b.trc.CloseAttributed(id, trace.StageBoard, now, "drain")
			delete(b.traceOf, t)
		}
		out = append(out, e)
		b.p.RemoveTask(t)
	}
	if b.obs != nil {
		b.obs.watch = b.obs.watch[:0] // every watched task just left the board
	}
	return out
}

// snapshot publishes the board's routing signal at a batch barrier.
func (b *Board) snapshot(batch int) Snapshot {
	m := b.gov.Market()
	var sum float64
	var n int
	for _, cl := range m.Clusters {
		for _, c := range cl.Cores {
			sum += c.Price()
			n++
		}
	}
	price := 0.0
	if n > 0 {
		price = sum / float64(n)
	}
	st := b.p.Stats()
	return Snapshot{
		Board:       b.ID,
		Epoch:       b.epoch,
		Time:        b.p.Now(),
		Batch:       batch,
		Round:       m.Round(),
		Price:       price,
		PowerW:      st.PowerW,
		SmoothedW:   m.SmoothedPower(),
		WthW:        m.EffectiveWth(),
		WtdpW:       m.EffectiveWtdp(),
		State:       m.State().String(),
		Degraded:    m.Degraded(),
		Draining:    b.draining,
		Tasks:       st.Tasks,
		DemandPU:    m.TotalDemand(),
		SupplyPU:    m.TotalSupply(),
		MaxSupplyPU: b.p.MaxSupplyPU(),
		Clusters:    st.Clusters,
	}
}

// watchedTask is one finite task awaiting completion detection.
type watchedTask struct {
	t      *task.Task
	id     trace.ID
	placed sim.Time
}

// boardObserver is the traced board's per-tick hook (platform.Checker):
// it turns market-round boundaries into StageRound spans + the round
// histogram, and closes residency spans the tick a finite task finishes —
// tick-granular virtual timestamps, no market-loop instrumentation. Runs
// on the board goroutine inside p.Run, so it may touch board-owned state.
type boardObserver struct {
	b *Board
	m *core.Market

	lastRound  int
	roundStart sim.Time
	watch      []watchedTask

	histRound     *metrics.Histogram // virtual ms per market round
	histResidency *metrics.Histogram // virtual ms placement → completion
}

func (o *boardObserver) CheckTick(p *platform.Platform, now sim.Time) {
	if r := o.m.Round(); r != o.lastRound {
		o.b.trc.Add(trace.Span{
			Stage: trace.StageRound,
			Board: o.b.ID,
			Start: o.roundStart,
			End:   now,
			Round: r,
		})
		o.histRound.Record(float64(now-o.roundStart) / float64(sim.Millisecond))
		o.lastRound = r
		o.roundStart = now
	}
	if len(o.watch) == 0 {
		return
	}
	kept := o.watch[:0]
	for _, w := range o.watch {
		if !w.t.Finished() {
			kept = append(kept, w)
			continue
		}
		o.b.trc.Close(w.id, trace.StageBoard, now, "completed")
		o.histResidency.RecordExemplar(float64(now-w.placed)/float64(sim.Millisecond), uint64(w.id))
		delete(o.b.traceOf, w.t)
	}
	o.watch = kept
}

// Registry exposes the board's telemetry registry for /metrics merging.
func (b *Board) Registry() *telemetry.Registry { return b.em.Registry() }

// Trace returns the board's replay trace (nil unless Config.Record).
func (b *Board) Trace() *check.Trace {
	if b.rec == nil {
		return nil
	}
	return b.rec.Trace()
}
