package ppm

import (
	"math"
	"testing"

	"pricepower/internal/hw"
	"pricepower/internal/metrics"
	"pricepower/internal/platform"
	"pricepower/internal/sim"
)

func TestOnlineProfilerLearnsRatio(t *testing.T) {
	o := NewOnlineProfiler()
	if _, ok := o.Ratio("t"); ok {
		t.Fatal("fresh profiler has evidence")
	}
	// LITTLE → big migration: demand 1000 on LITTLE, 500 on big → ratio 0.5.
	o.BeginMigration("t", hw.Little, 1000)
	o.Settle("t", hw.Big, 500)
	r, ok := o.Ratio("t")
	if !ok || math.Abs(r-0.5) > 1e-9 {
		t.Fatalf("ratio = %v (%v), want 0.5", r, ok)
	}
	// A second sample folds in with weight 0.5.
	o.BeginMigration("t", hw.Big, 600)
	o.Settle("t", hw.Little, 1000) // ratio sample 0.6
	r, _ = o.Ratio("t")
	if math.Abs(r-0.55) > 1e-9 {
		t.Errorf("ratio after second sample = %v, want 0.55", r)
	}
}

func TestOnlineProfilerIgnoresGarbage(t *testing.T) {
	o := NewOnlineProfiler()
	// No pending migration: Settle does nothing.
	o.Settle("t", hw.Big, 500)
	if _, ok := o.Ratio("t"); ok {
		t.Error("settle without begin produced evidence")
	}
	// Same-type "migration": no sample.
	o.BeginMigration("t", hw.Little, 1000)
	o.Settle("t", hw.Little, 900)
	if _, ok := o.Ratio("t"); ok {
		t.Error("same-type settle produced evidence")
	}
	// Absurd ratio (implies 10× speedup): rejected.
	o.BeginMigration("t", hw.Little, 1000)
	o.Settle("t", hw.Big, 100)
	if _, ok := o.Ratio("t"); ok {
		t.Error("absurd sample accepted")
	}
	// Non-positive demands: ignored.
	o.BeginMigration("t", hw.Little, 0)
	o.Settle("t", hw.Big, -5)
	if _, ok := o.Ratio("t"); ok {
		t.Error("non-positive sample accepted")
	}
}

func TestOnlineProfilerProfilesInterface(t *testing.T) {
	o := NewOnlineProfiler()
	if _, ok := o.Profiles("t", hw.Big); ok {
		t.Fatal("profile reported without evidence")
	}
	o.BeginMigration("t", hw.Little, 1000)
	o.Settle("t", hw.Big, 500)
	big, ok1 := o.Profiles("t", hw.Big)
	little, ok2 := o.Profiles("t", hw.Little)
	if !ok1 || !ok2 {
		t.Fatal("profiles missing after evidence")
	}
	// Only the ratio matters: big/little must equal the learned ratio.
	if math.Abs(big/little-0.5) > 1e-9 {
		t.Errorf("profile ratio = %v, want 0.5", big/little)
	}
}

func TestChainProfiles(t *testing.T) {
	a := func(name string, ct hw.CoreType) (float64, bool) {
		if name == "x" {
			return 1, true
		}
		return 0, false
	}
	b := func(name string, ct hw.CoreType) (float64, bool) { return 2, true }
	chained := ChainProfiles(nil, a, b)
	if d, ok := chained("x", hw.Big); !ok || d != 1 {
		t.Errorf("chain(x) = %v %v, want 1 true (first source wins)", d, ok)
	}
	if d, ok := chained("y", hw.Big); !ok || d != 2 {
		t.Errorf("chain(y) = %v %v, want 2 true (fallback)", d, ok)
	}
	empty := ChainProfiles()
	if _, ok := empty("x", hw.Big); ok {
		t.Error("empty chain reported evidence")
	}
}

// End to end: a profile-free governor with online learning migrates a
// starving task to the big cluster and learns its demand ratio from the
// move itself.
func TestGovernorLearnsOnline(t *testing.T) {
	online := NewOnlineProfiler()
	cfg := DefaultConfig(0)
	cfg.Profiles = online.Profiles // no static table at all
	cfg.Online = online
	p := platform.NewTC2()
	p.SetGovernor(New(cfg))
	tk := p.AddTask(spec("hungry", 1600, 1), 2) // 1600 PU on LITTLE, 800 on big
	pr := metrics.NewProbe(p, 5*sim.Second)
	pr.Attach()
	p.Run(30 * sim.Second)

	if p.ClusterOf(tk).Spec.Type != hw.Big {
		t.Fatalf("task still on %v", p.ClusterOf(tk).Spec.Type)
	}
	r, ok := online.Ratio("hungry")
	if !ok {
		t.Fatal("no ratio learned from the migration")
	}
	// True ratio is 0.5 (SpeedupBig 2); accept generous measurement noise.
	if r < 0.3 || r > 0.8 {
		t.Errorf("learned ratio = %v, want ≈0.5", r)
	}
	if got := pr.BelowFrac(tk); got > 0.6 {
		t.Errorf("below-range fraction = %v after online migration", got)
	}
}
