package ppm

import (
	"testing"

	"pricepower/internal/core"
	"pricepower/internal/hw"
	"pricepower/internal/metrics"
	"pricepower/internal/platform"
	"pricepower/internal/sim"
	"pricepower/internal/task"
)

// spec builds a CPU-bound looping task with the given LITTLE demand at
// target heart rate 27 (range 24–30) and big-core speedup 2.
func spec(name string, demandLittle float64, prio int) task.Spec {
	return task.Spec{
		Name:     name,
		Priority: prio,
		MinHR:    24,
		MaxHR:    30,
		Phases:   []task.Phase{{HBCostLittle: demandLittle / 27, SpeedupBig: 2}},
		Loop:     true,
	}
}

// profiles builds a ProfileFunc from name → little-demand (big demand is
// half, matching SpeedupBig 2).
func profiles(m map[string]float64) ProfileFunc {
	return func(name string, ct hw.CoreType) (float64, bool) {
		d, ok := m[name]
		if !ok {
			return 0, false
		}
		if ct == hw.Big {
			return d / 2, true
		}
		return d, true
	}
}

func newRig(cfg Config) (*platform.Platform, *Governor) {
	p := platform.NewTC2()
	g := New(cfg)
	p.SetGovernor(g)
	return p, g
}

// A single modest task on a LITTLE core: the market must find a V-F level
// that keeps the heart rate in range without burning the big cluster.
func TestSingleTaskSettlesInRange(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Profiles = profiles(map[string]float64{"a": 540})
	p, g := newRig(cfg)
	tk := p.AddTask(spec("a", 540, 1), 2) // LITTLE core
	pr := metrics.NewProbe(p, 3*sim.Second)
	pr.Attach()
	p.Run(15 * sim.Second)

	if got := pr.BelowFrac(tk); got > 0.05 {
		t.Errorf("below-range fraction = %.3f, want < 0.05", got)
	}
	// The LITTLE cluster should sit at the 600 PU rung (demand 540 rounded
	// up), not the top.
	little := p.Chip.Clusters[1]
	if tk2 := p.ClusterOf(tk); tk2 != little {
		t.Fatalf("task migrated off the LITTLE cluster to %v", tk2.Spec.Name)
	}
	if f := little.CurLevel().FreqMHz; f != 600 {
		t.Errorf("LITTLE frequency = %d MHz, want 600 (demand rounded up)", f)
	}
	// The big cluster hosts nothing and must be power-gated.
	if p.Chip.Clusters[0].On {
		t.Error("empty big cluster not powered down")
	}
	if g.Market().State() != core.Normal {
		t.Errorf("market state = %v, want normal", g.Market().State())
	}
}

// A task whose demand exceeds the whole LITTLE ladder must be migrated to
// the big cluster by the LBT module.
func TestStarvingTaskMigratesToBig(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Profiles = profiles(map[string]float64{"hungry": 1600})
	p, g := newRig(cfg)
	tk := p.AddTask(spec("hungry", 1600, 1), 2)
	pr := metrics.NewProbe(p, 5*sim.Second)
	pr.Attach()
	p.Run(20 * sim.Second)

	if p.ClusterOf(tk).Spec.Type != hw.Big {
		t.Fatalf("task still on %v cluster", p.ClusterOf(tk).Spec.Type)
	}
	_, migs := g.Moves()
	if migs == 0 {
		t.Error("no migrations recorded")
	}
	if got := pr.BelowFrac(tk); got > 0.5 {
		t.Errorf("below-range fraction after migration = %.3f", got)
	}
	// The vacated LITTLE cluster powers down.
	if p.Chip.Clusters[1].On {
		t.Error("empty LITTLE cluster not powered down")
	}
}

// Under a 4 W cap with demand needing more, the chip agent must keep power
// near (below or around) the budget via the threshold state.
func TestTDPCapHolds(t *testing.T) {
	cfg := DefaultConfig(4.0)
	cfg.Profiles = profiles(map[string]float64{"h1": 1400, "h2": 1400, "h3": 1400})
	p, g := newRig(cfg)
	p.AddTask(spec("h1", 1400, 1), 0) // big
	p.AddTask(spec("h2", 1400, 1), 1) // big
	p.AddTask(spec("h3", 1400, 1), 2) // LITTLE
	pr := metrics.NewProbe(p, 10*sim.Second)
	pr.Attach()
	p.Run(40 * sim.Second)

	if avg := pr.AveragePower(); avg > 4.3 {
		t.Errorf("average power = %.2f W under a 4 W cap", avg)
	}
	// The overloaded system may oscillate around the TDP (the paper's
	// small-buffer regime) but must not sit in the emergency state: over a
	// trailing window, emergency rounds must be a minority.
	emergency := 0
	const rounds = 100
	for i := 0; i < rounds; i++ {
		p.Run(100 * sim.Millisecond)
		if g.Market().State() == core.Emergency {
			emergency++
		}
	}
	if emergency > rounds/2 {
		t.Errorf("emergency state in %d/%d samples at steady state", emergency, rounds)
	}
}

// Priorities shape allocation on a shared core: the priority-7 task must
// spend far less time outside its range than its priority-1 sibling
// (the Figure 7 mechanism).
func TestPrioritiesShareOneCore(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.DisableLBT = true // paper disables LBT for this study
	p, _ := newRig(cfg)
	// Two tasks whose combined demand exceeds one LITTLE core at fmax.
	hi := p.AddTask(spec("hi", 700, 7), 2)
	lo := p.AddTask(spec("lo", 700, 1), 2)
	pr := metrics.NewProbe(p, 5*sim.Second)
	pr.Attach()
	p.Run(30 * sim.Second)

	hiMiss := pr.OutsideFrac(hi)
	loMiss := pr.OutsideFrac(lo)
	if hiMiss >= loMiss {
		t.Errorf("high-priority outside %.3f not below low-priority %.3f", hiMiss, loMiss)
	}
	if hiMiss > 0.3 {
		t.Errorf("high-priority outside fraction = %.3f, want small", hiMiss)
	}
	if loMiss < 0.3 {
		t.Errorf("low-priority outside fraction = %.3f, want large (suffering)", loMiss)
	}
}

// The governor translates purchases into scheduler weights each round.
func TestPurchasesBecomeWeights(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.DisableLBT = true
	p, g := newRig(cfg)
	hi := p.AddTask(spec("hi", 800, 4), 2)
	lo := p.AddTask(spec("lo", 800, 1), 2)
	p.Run(10 * sim.Second)
	ahi, alo := g.AgentOf(hi), g.AgentOf(lo)
	if ahi == nil || alo == nil {
		t.Fatal("agents not registered")
	}
	if p.Weight(hi) != ahi.Purchased() && p.Weight(hi) != 1 {
		t.Errorf("weight(hi) = %v, purchased %v", p.Weight(hi), ahi.Purchased())
	}
	if ahi.Purchased() <= alo.Purchased() {
		t.Errorf("purchases %v/%v do not favour the high-priority task",
			ahi.Purchased(), alo.Purchased())
	}
}

// Demand estimation drives the market: an idle-ish (self-capped) task must
// not push the cluster to high frequency.
func TestSelfPacedTaskKeepsFrequencyLow(t *testing.T) {
	cfg := DefaultConfig(0)
	p, _ := newRig(cfg)
	s := spec("video", 400, 1)
	s.Phases[0].SelfCapHR = 33 // paces itself slightly above range
	p.AddTask(s, 2)
	p.Run(15 * sim.Second)
	little := p.Chip.Clusters[1]
	if f := little.CurLevel().FreqMHz; f > 500 {
		t.Errorf("LITTLE frequency = %d MHz for a 400 PU task, want ≤ 500", f)
	}
}

// Finished tasks stop demanding and the cluster drifts down.
func TestFinishedTaskReleasesSupply(t *testing.T) {
	cfg := DefaultConfig(0)
	p, _ := newRig(cfg)
	s := spec("oneshot", 900, 1)
	s.Loop = false
	s.Phases[0].Duration = 5 * sim.Second
	p.AddTask(s, 2)
	p.Run(20 * sim.Second)
	little := p.Chip.Clusters[1]
	if little.Level() != 0 && little.On {
		t.Errorf("LITTLE still at level %d after task finished", little.Level())
	}
}

// The governor must keep working when tasks appear mid-run.
func TestDynamicTaskArrival(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Profiles = profiles(map[string]float64{"a": 500, "late": 700})
	p, g := newRig(cfg)
	p.AddTask(spec("a", 500, 1), 2)
	p.Run(5 * sim.Second)
	late := p.AddTask(spec("late", 700, 2), 3)
	p.Run(10 * sim.Second)
	if g.AgentOf(late) == nil {
		t.Fatal("late task has no agent")
	}
	if got := late.HeartRate(p.Now()); got <= 0 {
		t.Error("late task received no supply")
	}
}

func TestConfigDefaultsFilled(t *testing.T) {
	g := New(Config{})
	if g.cfg.BidPeriod != sim.FromMillis(31.7) {
		t.Errorf("bid period = %v", g.cfg.BidPeriod)
	}
	if g.cfg.BalanceEvery != 3 || g.cfg.MigrateEvery != 6 {
		t.Errorf("cadences = %d/%d", g.cfg.BalanceEvery, g.cfg.MigrateEvery)
	}
	if g.Name() != "PPM" {
		t.Errorf("name = %q", g.Name())
	}
}

// BidPeriodFor reproduces the paper's §3.4 rule: 31.7 ms for workloads whose
// fastest task beats at 31.5 hb/s, clamped at the 10 ms scheduling epoch.
func TestBidPeriodFor(t *testing.T) {
	specs := []task.Spec{
		spec("slow", 500, 1), // target 27 hb/s → 37 ms
		{Name: "fast", Priority: 1, MinHR: 30, MaxHR: 33, Loop: true,
			Phases: []task.Phase{{HBCostLittle: 10, SpeedupBig: 2}}}, // 31.5 hb/s
	}
	got := BidPeriodFor(specs)
	if got < sim.FromMillis(31.7)-sim.Millisecond || got > sim.FromMillis(31.7)+sim.Millisecond {
		t.Errorf("BidPeriodFor = %v, want ≈31.7ms", got)
	}
	// A 200 hb/s task would imply 5 ms — clamped to the scheduling epoch.
	fast := []task.Spec{{Name: "vfast", Priority: 1, MinHR: 190, MaxHR: 210,
		Loop: true, Phases: []task.Phase{{HBCostLittle: 1, SpeedupBig: 2}}}}
	if got := BidPeriodFor(fast); got != 10*sim.Millisecond {
		t.Errorf("BidPeriodFor(fast) = %v, want 10ms", got)
	}
	if got := BidPeriodFor(nil); got != 10*sim.Millisecond {
		t.Errorf("BidPeriodFor(nil) = %v, want 10ms", got)
	}
}

// The governor must stay functional under the discrete (bursty) scheduling
// model: heart rates are noisier, but the market still lands the workload
// in range.
func TestGovernorUnderDiscreteScheduling(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Profiles = profiles(map[string]float64{"a": 500, "b": 400})
	p, _ := newRig(cfg)
	p.SetSchedGranularity(sim.Millisecond)
	a := p.AddTask(spec("a", 500, 1), 2)
	b := p.AddTask(spec("b", 400, 1), 2)
	pr := metrics.NewProbe(p, 5*sim.Second)
	pr.Attach()
	p.Run(25 * sim.Second)
	if got := pr.BelowFrac(a); got > 0.15 {
		t.Errorf("task a below range %.3f under discrete scheduling", got)
	}
	if got := pr.BelowFrac(b); got > 0.15 {
		t.Errorf("task b below range %.3f under discrete scheduling", got)
	}
}
