package ppm

import (
	"testing"

	"pricepower/internal/hw"
	"pricepower/internal/metrics"
	"pricepower/internal/platform"
	"pricepower/internal/sim"
	"pricepower/internal/task"
)

// The framework must generalize beyond the two-cluster TC2: a four-cluster
// platform (alternating LITTLE/big micro-architectures, ladders spread over
// 350–3000 PU) runs end to end, tasks land where they fit, and empty
// clusters power down.
func TestManyClusterPlatform(t *testing.T) {
	chip := hw.MustNewChip(hw.ScaledSpec(4, 2))
	p := platform.New(chip, sim.Millisecond)
	online := NewOnlineProfiler()
	cfg := DefaultConfig(0)
	cfg.Profiles = online.Profiles
	cfg.Online = online
	g := New(cfg)
	p.SetGovernor(g)

	// Tasks sized for different cluster capabilities, all booted on the
	// weakest cluster (cluster 0, max 350 PU).
	mk := func(name string, demand float64, core int) *task.Task {
		return p.AddTask(task.Spec{
			Name: name, Priority: 1, MinHR: 27, MaxHR: 33, Loop: true,
			Phases: []task.Phase{{HBCostLittle: demand / 30, SpeedupBig: 2}},
		}, core)
	}
	small := mk("small", 200, 0)
	big1 := mk("big1", 1500, 1)
	big2 := mk("big2", 2200, 0)

	pr := metrics.NewProbe(p, 5*sim.Second)
	pr.Attach()
	p.Run(40 * sim.Second)

	// The demanding tasks must have left the 350 PU cluster.
	if got := p.ClusterOf(big1).Spec.MaxFreqMHz(); got < 1500/2 {
		t.Errorf("big1 on a cluster with max %d PU", got)
	}
	if got := p.ClusterOf(big2).Spec.MaxFreqMHz(); got < 2200/2 {
		t.Errorf("big2 on a cluster with max %d PU", got)
	}
	if got := pr.BelowFrac(small); got > 0.1 {
		t.Errorf("small task below range %.3f of the time", got)
	}
	if got := pr.BelowFrac(big1); got > 0.4 {
		t.Errorf("big1 below range %.3f of the time", got)
	}
	// Any cluster with no tasks must be power-gated.
	counts := make(map[*hw.Cluster]int)
	for _, tk := range p.Tasks() {
		counts[p.ClusterOf(tk)]++
	}
	for _, cl := range p.Chip.Clusters {
		if counts[cl] == 0 && cl.On {
			t.Errorf("empty cluster %s still powered", cl.Spec.Name)
		}
	}
}

// Task churn: tasks arrive and exit mid-run; the governor keeps its agent
// set consistent and releases resources after exits.
func TestTaskChurn(t *testing.T) {
	p := platform.NewTC2()
	cfg := DefaultConfig(0)
	g := New(cfg)
	p.SetGovernor(g)

	a := p.AddTask(spec("a", 500, 1), 2)
	var b *task.Task
	p.Engine.At(5*sim.Second, func(now sim.Time) {
		b = p.AddTask(spec("b", 700, 2), 3)
	})
	p.Engine.At(15*sim.Second, func(now sim.Time) {
		p.RemoveTask(a)
	})
	p.Run(30 * sim.Second)

	if g.AgentOf(a) != nil {
		t.Error("removed task still has a market agent")
	}
	if b == nil || g.AgentOf(b) == nil {
		t.Fatal("late task has no market agent")
	}
	if hr := b.HeartRate(p.Now()); hr <= 0 {
		t.Error("late task received no supply")
	}
	// With only b (700 PU) left, the LITTLE cluster should sit at the
	// 700 PU rung, not wherever the pair drove it.
	little := p.Chip.Clusters[1]
	if p.ClusterOf(b) == little {
		if f := little.CurLevel().FreqMHz; f > 800 {
			t.Errorf("LITTLE at %d MHz for a single 700 PU task", f)
		}
	}
}
