package ppm

import (
	"sync"

	"pricepower/internal/hw"
)

// Online profiling — the paper's stated future work.
//
// §3.3/§5.2: "we plan to include the power-performance estimation model for
// big.LITTLE [27] within our price theory based power management framework
// to eliminate the off-line profiling step in the future." The LBT module
// needs exactly one cross-architecture quantity per task: the ratio of its
// demand on a big core to its demand on a LITTLE core (the inverse of the
// task's big-core speedup).
//
// OnlineProfiler learns that ratio from the framework's own observations,
// with no instrumentation beyond what the governor already collects:
//
//   - whenever a task migrates across cluster types, the demand observed
//     shortly before the move and the demand observed once the HRM window
//     has drained after the move form one ratio sample;
//   - samples fold into a per-task EWMA, seeded with a conservative prior
//     (ratio 1: no speculation) so an unobserved task is never assumed to
//     speed up on a big core.
//
// The profiler composes with a static table: Lookup falls back to the
// prior until the first cross-type migration provides evidence. It is safe
// for concurrent use.
type OnlineProfiler struct {
	mu sync.Mutex
	// ratio maps task name → learned demand(big)/demand(LITTLE).
	ratio map[string]float64
	// weight is the EWMA weight of a new sample (default 0.5: two or three
	// migrations dominate the prior).
	weight float64
	// pending holds the demand observed on the source side of an in-flight
	// cross-type migration, keyed by task name.
	pending map[string]pendingSample
}

type pendingSample struct {
	demand float64
	from   hw.CoreType
}

// NewOnlineProfiler returns an empty profiler.
func NewOnlineProfiler() *OnlineProfiler {
	return &OnlineProfiler{
		ratio:   make(map[string]float64),
		weight:  0.5,
		pending: make(map[string]pendingSample),
	}
}

// Ratio reports the learned demand(big)/demand(LITTLE) ratio for a task
// and whether any evidence has been observed.
func (o *OnlineProfiler) Ratio(name string) (float64, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	r, ok := o.ratio[name]
	return r, ok
}

// BeginMigration records the demand observed on the source cluster type at
// the moment a cross-type migration starts.
func (o *OnlineProfiler) BeginMigration(name string, from hw.CoreType, demand float64) {
	if demand <= 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.pending[name] = pendingSample{demand: demand, from: from}
}

// Settle records the first trustworthy demand observation on the
// destination cluster type, completing one ratio sample.
func (o *OnlineProfiler) Settle(name string, to hw.CoreType, demand float64) {
	if demand <= 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	ps, ok := o.pending[name]
	if !ok || ps.from == to {
		return
	}
	delete(o.pending, name)
	// Normalize the sample to demand(big)/demand(LITTLE).
	var sample float64
	if ps.from == hw.Little && to == hw.Big {
		sample = demand / ps.demand
	} else if ps.from == hw.Big && to == hw.Little {
		sample = ps.demand / demand
	} else {
		return
	}
	// Discard absurd samples (migration glitches): real big.LITTLE
	// speedups live in roughly [1, 4].
	if sample < 0.2 || sample > 1.2 {
		return
	}
	if prev, ok := o.ratio[name]; ok {
		o.ratio[name] = o.weight*sample + (1-o.weight)*prev
	} else {
		o.ratio[name] = sample
	}
}

// Profiles adapts the profiler to the governor's ProfileFunc interface:
// it reports relative demands (LITTLE = 1, big = learned ratio). Because
// the governor's estimator only ever uses profile *ratios* to translate
// observed demands across cluster types, relative values suffice.
func (o *OnlineProfiler) Profiles(name string, ct hw.CoreType) (float64, bool) {
	r, ok := o.Ratio(name)
	if !ok {
		return 0, false // no evidence yet: the governor won't speculate
	}
	if ct == hw.Big {
		return r, true
	}
	return 1, true
}

// ChainProfiles composes profile sources: the first source reporting
// evidence for (name, coreType) wins. Use it to overlay an OnlineProfiler
// on a static table, or to fall back from measured to static data:
//
//	cfg.Profiles = ppm.ChainProfiles(online.Profiles, exp.WorkloadProfiles)
func ChainProfiles(sources ...ProfileFunc) ProfileFunc {
	return func(name string, ct hw.CoreType) (float64, bool) {
		for _, src := range sources {
			if src == nil {
				continue
			}
			if d, ok := src(name, ct); ok {
				return d, ok
			}
		}
		return 0, false
	}
}
