// Package ppm is the paper's complete power-management governor: the
// price-theory market (internal/core) plus the load-balancing/task-migration
// module (internal/lbt) wired onto a simulated platform
// (internal/platform).
//
// Cadences follow §3.4: bid rounds every 31.7 ms (the shortest task period),
// load balancing every 3 bid rounds (95.1 ms), task migration every 6
// (190.2 ms). The LBT module is disabled while the chip agent is in the
// emergency state.
package ppm

import (
	"math"

	"pricepower/internal/core"
	"pricepower/internal/fault"
	"pricepower/internal/hw"
	"pricepower/internal/lbt"
	"pricepower/internal/platform"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/telemetry"
)

// ProfileFunc supplies the off-line profiled demand of a task (by spec
// name) on a core type, in PUs at the target heart rate. The second result
// reports whether a profile exists; without one the governor falls back to
// the task's currently observed demand (no heterogeneity speculation).
type ProfileFunc func(taskName string, ct hw.CoreType) (float64, bool)

// Config tunes the governor.
type Config struct {
	// Market carries the price-theory tunables (δ, savings cap, TDP…).
	Market core.Config
	// BidPeriod is the bidding-round period (§3.4; default 31.7 ms).
	BidPeriod sim.Time
	// BalanceEvery and MigrateEvery are in bid rounds (defaults 3 and 6).
	BalanceEvery, MigrateEvery int
	// DisableLBT turns off load balancing and migration (the Figure 7/8
	// single-core studies).
	DisableLBT bool
	// Profiles supplies off-line profiling data to the LBT estimator.
	Profiles ProfileFunc
	// MigrationCooldown is the per-task quiet period after a movement
	// during which the LBT module will not move the same task again
	// (default 3 s, the scale of the workloads' program phases) —
	// migration is expensive (§5.1: up to ~4 ms) and the demand
	// observations right after one are unreliable.
	MigrationCooldown sim.Time
	// DemandSmoothing is the EWMA weight of the newest demand observation
	// (default 0.35); heart-rate-window noise otherwise flaps the planner.
	DemandSmoothing float64
	// MinSpendGain is the minimal fractional spend reduction for a
	// power-efficiency movement (default 0.03).
	MinSpendGain float64
	// Trace, when set, receives one line per noteworthy governor decision
	// (movements, state changes) — a debugging aid.
	Trace func(format string, args ...interface{})
	// Online, when set, learns cross-architecture demand ratios from the
	// governor's own migrations (the paper's future-work replacement for
	// off-line profiling). Compose it with a static table via
	// ChainProfiles, or use it alone to run fully profile-free.
	Online *OnlineProfiler
}

// BidPeriodFor derives the bidding-round period from a workload per §3.4:
// the maximum of the Linux scheduling epoch (10 ms) and the shortest task
// period (one over the highest target heart rate). The paper's 31.7 ms is
// exactly this rule applied to its workloads, whose fastest tasks beat at
// 31.5 hb/s.
func BidPeriodFor(specs []task.Spec) sim.Time {
	const linuxEpoch = 10 * sim.Millisecond
	shortest := sim.Time(0)
	for _, s := range specs {
		if hr := s.TargetHR(); hr > 0 {
			period := sim.FromSeconds(1 / hr)
			if shortest == 0 || period < shortest {
				shortest = period
			}
		}
	}
	if shortest < linuxEpoch {
		return linuxEpoch
	}
	return shortest
}

// DefaultConfig returns the paper's cadences with the default market
// tunables for the given TDP (0 = unconstrained).
func DefaultConfig(wtdp float64) Config {
	return Config{
		Market:            core.DefaultConfig(wtdp),
		BidPeriod:         sim.FromMillis(31.7),
		BalanceEvery:      3,
		MigrateEvery:      6,
		MigrationCooldown: 3 * sim.Second,
		DemandSmoothing:   0.35,
		MinSpendGain:      0.03,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig(c.Market.Wtdp)
	if c.BidPeriod <= 0 {
		c.BidPeriod = d.BidPeriod
	}
	if c.BalanceEvery <= 0 {
		c.BalanceEvery = d.BalanceEvery
	}
	if c.MigrateEvery <= 0 {
		c.MigrateEvery = d.MigrateEvery
	}
	if c.MigrationCooldown <= 0 {
		c.MigrationCooldown = d.MigrationCooldown
	}
	if c.DemandSmoothing <= 0 {
		c.DemandSmoothing = d.DemandSmoothing
	}
	if c.MinSpendGain <= 0 {
		c.MinSpendGain = d.MinSpendGain
	}
	return c
}

// Governor implements platform.Governor.
type Governor struct {
	cfg     Config
	p       *platform.Platform
	market  *core.Market
	planner *lbt.Planner
	tel     *telemetry.Emitter

	agents  map[*task.Task]*core.TaskAgent
	byAgent map[*core.TaskAgent]*task.Task

	lastTotal  map[*task.Task]float64
	lastDemand map[*task.Task]float64
	lbtDemand  map[*task.Task]*demandWindow // windowed peak demand for LBT
	holdUntil  map[*task.Task]sim.Time      // observation hold after a migration
	movedAt    map[*task.Task]sim.Time      // migration cooldown bookkeeping

	nextBid sim.Time
	now     sim.Time
	round   int

	balances, migrations int

	// offline mirrors each core's hot-unplug state as of the previous bid
	// round, so the governor sees the offline→online edge and runs the
	// supply-agent price recovery (Market.RecoverCore). Only consulted when
	// a fault injector is attached.
	offline     []bool
	evacuations int
}

// New builds a PPM governor with the given configuration.
func New(cfg Config) *Governor {
	return &Governor{
		cfg:        cfg.withDefaults(),
		agents:     make(map[*task.Task]*core.TaskAgent),
		byAgent:    make(map[*core.TaskAgent]*task.Task),
		lastTotal:  make(map[*task.Task]float64),
		lastDemand: make(map[*task.Task]float64),
		lbtDemand:  make(map[*task.Task]*demandWindow),
		holdUntil:  make(map[*task.Task]sim.Time),
		movedAt:    make(map[*task.Task]sim.Time),
	}
}

// Name implements platform.Governor.
func (g *Governor) Name() string { return "PPM" }

// Market exposes the underlying market (read-only use: experiments inspect
// state, savings, allowances).
func (g *Governor) Market() *core.Market { return g.market }

// AgentOf returns the market agent representing a task.
func (g *Governor) AgentOf(t *task.Task) *core.TaskAgent { return g.agents[t] }

// Moves reports how many load-balancing and migration movements the
// governor has performed.
func (g *Governor) Moves() (balances, migrations int) { return g.balances, g.migrations }

// Attach implements platform.Governor: it builds the market over the
// platform's clusters and registers agents for the existing tasks.
func (g *Governor) Attach(p *platform.Platform) {
	g.p = p
	g.offline = make([]bool, len(p.Chip.Cores))
	if g.cfg.Market.MaxSensorPowerW <= 0 {
		// Physical envelope for sensor validation: no trustworthy reading
		// can exceed every cluster running flat out (plus 5% margin).
		var env float64
		for _, cl := range p.Chip.Clusters {
			env += hw.MaxClusterPower(cl)
		}
		g.cfg.Market.MaxSensorPowerW = env * 1.05
	}
	controls := make([]core.ClusterControl, len(p.Chip.Clusters))
	cores := make([]int, len(p.Chip.Clusters))
	for i, cl := range p.Chip.Clusters {
		controls[i] = &clusterControl{cl: cl, p: p, retry: fault.Backoff{
			// DVFS retry-with-backoff: first retry next round, growing to at
			// most 8 rounds, jittered per cluster so refused clusters don't
			// re-converge on the same round.
			Base:   g.cfg.BidPeriod,
			Max:    8 * g.cfg.BidPeriod,
			Factor: 2,
			Jitter: 0.5,
			Seed:   uint64(i)*0x9e3779b97f4a7c15 + 0xdf5,
		}}
		cores[i] = cl.Spec.NumCores
	}
	g.market = core.NewMarket(g.cfg.Market, controls, cores)
	g.planner = lbt.NewPlanner(g.market, lbt.EstimatorFunc(g.estimateDemandOn))
	g.planner.MinSpendGain = g.cfg.MinSpendGain
	g.planner.Eligible = func(a *core.TaskAgent) bool {
		t := g.byAgent[a]
		if t == nil {
			return false
		}
		last, moved := g.movedAt[t]
		return !moved || g.now-last >= g.cfg.MigrationCooldown
	}
	g.syncTasks()
	g.nextBid = g.cfg.BidPeriod
	if g.tel != nil {
		g.market.SetTelemetry(g.tel)
	}
}

// AttachTelemetry implements platform.TelemetryAware: the platform's
// emitter is handed down to the market so the whole governor — chip-agent
// state machine, DVFS price control, bids — emits through one stream.
// Attach order does not matter: whichever of Attach/AttachTelemetry runs
// second completes the wiring.
func (g *Governor) AttachTelemetry(em *telemetry.Emitter) {
	g.tel = em
	if g.market != nil {
		g.market.SetTelemetry(em)
	}
}

// Tick implements platform.Governor.
func (g *Governor) Tick(now sim.Time) {
	if now < g.nextBid {
		return
	}
	g.nextBid += g.cfg.BidPeriod
	g.now = now
	g.round++
	g.syncTasks()
	if g.p.Faults() != nil {
		g.handleFaultRecovery()
	}
	g.observe(now)
	g.market.StepOnce()
	g.applyPurchases()
	g.powerGateEmptyClusters()

	if g.cfg.DisableLBT || g.market.State() == core.Emergency {
		return
	}
	if g.round%g.cfg.MigrateEvery == 0 {
		if mv := g.planner.PlanMigrate(); mv != nil {
			g.applyMove(mv)
			g.migrations++
			return
		}
	}
	if g.round%g.cfg.BalanceEvery == 0 {
		if mv := g.planner.PlanBalance(); mv != nil {
			g.applyMove(mv)
			g.balances++
		}
	}
}

// syncTasks reconciles market agents with the platform's live tasks.
func (g *Governor) syncTasks() {
	live := make(map[*task.Task]bool)
	for _, t := range g.p.Tasks() {
		live[t] = true
		if _, ok := g.agents[t]; !ok {
			a := g.market.AddTask(t.Priority, g.p.CoreOf(t))
			g.agents[t] = a
			g.byAgent[a] = t
			g.lastTotal[t] = g.p.TotalWork(t)
		}
	}
	for t, a := range g.agents {
		if !live[t] {
			g.market.RemoveTask(a)
			delete(g.byAgent, a)
			delete(g.agents, t)
			delete(g.lastTotal, t)
			delete(g.lastDemand, t)
		}
	}
}

// observe feeds each agent the demand and supply observations for the round
// that just elapsed (Table 4's conversion).
func (g *Governor) observe(now sim.Time) {
	period := g.cfg.BidPeriod.Seconds()
	// Iterate the platform's creation-ordered task slice, not g.agents:
	// per-task observation is order-independent today, but any future
	// shared accumulation (or trace line) must not inherit map order.
	for _, t := range g.p.Tasks() {
		a := g.agents[t]
		if a == nil {
			continue
		}
		total := g.p.TotalWork(t)
		consumed := (total - g.lastTotal[t]) / period
		g.lastTotal[t] = total
		a.Observed = consumed

		if t.Finished() {
			a.Demand = 0
			continue
		}
		settling := false
		if hold, ok := g.holdUntil[t]; ok {
			if now < hold {
				// Right after a migration the HRM window mixes rates from
				// two core types; hold the profile-seeded demand until it
				// drains.
				continue
			}
			delete(g.holdUntil, t)
			settling = true
		}
		hr := t.HeartRate(now)
		d := task.EstimateDemand(t.TargetHR(), consumed, hr)
		if settling && d > 0 && g.cfg.Online != nil {
			// First trustworthy post-migration observation: one online
			// profiling sample.
			g.cfg.Online.Settle(t.Name, g.p.ClusterOf(t).Spec.Type, d)
		}
		if d <= 0 {
			// No observation yet (cold start or frozen mid-migration): keep
			// the last known demand, or seed from the profile.
			d = g.lastDemand[t]
			if d <= 0 {
				if g.cfg.Profiles != nil {
					if pd, ok := g.cfg.Profiles(t.Name, g.p.ClusterOf(t).Spec.Type); ok {
						d = pd
					}
				}
				if d <= 0 {
					d = 100
				}
			}
		} else if prev := g.lastDemand[t]; prev > 0 {
			// Smooth against heart-rate-window noise.
			d = g.cfg.DemandSmoothing*d + (1-g.cfg.DemandSmoothing)*prev
		}
		g.lastDemand[t] = d
		a.Demand = d
		// The LBT planner sees the *windowed peak* demand: a placement is
		// only worth a multi-millisecond migration if it survives the
		// task's program phases, so feasibility is judged against the worst
		// demand of the recent past, not an instantaneous (or averaged)
		// observation.
		w, ok := g.lbtDemand[t]
		if !ok {
			w = &demandWindow{}
			g.lbtDemand[t] = w
		}
		w.add(now, d)
	}
}

// demandWindow tracks a robust phase-peak demand: each one-second bucket
// keeps the *minimum* demand observed in that second (filtering sub-second
// transients — heart-rate-window lag after weight changes and migrations
// overshoots upward), and the window reports the *maximum* across buckets
// (capturing multi-second program phases).
type demandWindow struct {
	buckets [demandWindowBuckets]float64
	seconds [demandWindowBuckets]int64
}

// demandWindowBuckets × 1 s covers the workloads' longest phase loops.
const demandWindowBuckets = 10

func (w *demandWindow) add(now sim.Time, d float64) {
	sec := int64(now / sim.Second)
	i := sec % demandWindowBuckets
	if w.seconds[i] != sec {
		w.seconds[i] = sec
		w.buckets[i] = d
		return
	}
	if d < w.buckets[i] {
		w.buckets[i] = d
	}
}

func (w *demandWindow) peak(now sim.Time) float64 {
	sec := int64(now / sim.Second)
	var max float64
	for i := range w.buckets {
		if sec-w.seconds[i] < demandWindowBuckets && w.buckets[i] > max {
			max = w.buckets[i]
		}
	}
	return max
}

// scale multiplies every bucket (used when a migration translates demand to
// another core type).
func (w *demandWindow) scale(f float64) {
	for i := range w.buckets {
		w.buckets[i] *= f
	}
}

// applyPurchases turns each agent's purchased supply into a scheduler share
// (the paper's nice-value manipulation).
func (g *Governor) applyPurchases() {
	for _, t := range g.p.Tasks() {
		a := g.agents[t]
		if a == nil {
			continue
		}
		w := a.Purchased()
		if w <= 0 || math.IsNaN(w) {
			w = 1
		}
		g.p.SetWeight(t, w)
	}
}

// Evacuations reports how many tasks the governor has moved off
// hot-unplugged cores.
func (g *Governor) Evacuations() int { return g.evacuations }

// handleFaultRecovery runs once per bid round while a fault injector is
// attached. It evacuates tasks stranded on hot-unplugged cores (they starve
// there: an offline core supplies no PUs) and, on the offline→online edge,
// rebuilds the returned core's supply-agent price state
// (Market.RecoverCore) so a stale pre-fault price does not distort the next
// clearing.
func (g *Governor) handleFaultRecovery() {
	for i, c := range g.p.Chip.Cores {
		if c.Offline {
			g.evacuateCore(i)
		} else if g.offline[i] {
			g.market.RecoverCore(i)
			if g.cfg.Trace != nil {
				g.cfg.Trace("t=%v core %d replugged: supply-agent price state recovered", g.now, i)
			}
		}
		g.offline[i] = c.Offline
	}
}

// evacuateCore moves every task off an offline core to the least-loaded
// online core, preferring the same cluster (no cross-type demand
// translation). With nowhere to go (every other core offline) tasks stay
// put and resume when the core replugs — degraded, but nothing is lost.
func (g *Governor) evacuateCore(core int) {
	tasks := g.p.TasksOnCore(core)
	if len(tasks) == 0 {
		return
	}
	wasCluster := g.p.Chip.Cores[core].Cluster
	// TasksOnCore returns the live per-core slice; migrating mutates it, so
	// iterate over a copy.
	evac := append([]*task.Task(nil), tasks...)
	for _, t := range evac {
		dst := g.evacTarget(core)
		if dst < 0 {
			return
		}
		if !g.p.Migrate(t, dst) {
			continue // frozen mid-migration; retry next round
		}
		if a := g.agents[t]; a != nil {
			newType := g.p.Chip.Cores[dst].Cluster.Spec.Type
			if newType != wasCluster.Spec.Type {
				d := g.estimateDemandOnType(t, a.Demand, wasCluster.Spec.Type, newType)
				g.lastDemand[t] = d
				if w, ok := g.lbtDemand[t]; ok && a.Demand > 0 {
					w.scale(d / a.Demand)
				}
				a.Demand = d
				g.holdUntil[t] = g.now + task.DefaultHRMWindow
			}
			g.market.MoveTask(a, dst)
		}
		g.movedAt[t] = g.now
		g.evacuations++
		if g.cfg.Trace != nil {
			g.cfg.Trace("t=%v evacuated task %s: core %d offline -> core %d", g.now, t.Name, core, dst)
		}
	}
}

// evacTarget picks the least-loaded online core other than `from`,
// preferring from's own cluster; -1 if every other core is offline.
func (g *Governor) evacTarget(from int) int {
	best, bestLoad := -1, 0
	consider := func(c *hw.Core) {
		if c.ID == from || c.Offline {
			return
		}
		if n := g.p.NumTasksOnCore(c.ID); best < 0 || n < bestLoad {
			best, bestLoad = c.ID, n
		}
	}
	for _, c := range g.p.Chip.Cores[from].Cluster.Cores {
		consider(c)
	}
	if best >= 0 {
		return best
	}
	for _, c := range g.p.Chip.Cores {
		consider(c)
	}
	return best
}

// applyMove performs an approved LBT movement on both the market and the
// platform.
func (g *Governor) applyMove(mv *lbt.Move) {
	t := g.byAgent[mv.Agent]
	if t == nil {
		return
	}
	if !g.p.CoreOnline(mv.ToCore) {
		return // LBT planned onto a core that hot-unplugged this round
	}
	wasCluster := g.p.ClusterOf(t)
	if !g.p.Migrate(t, mv.ToCore) {
		return
	}
	if g.cfg.Trace != nil {
		g.cfg.Trace("t=%v %s (task %s, lbtPeak=%.0f)", g.now, mv, t.Name, g.lbtDemand[t].peak(g.now))
	}
	g.market.MoveTask(mv.Agent, mv.ToCore)
	g.movedAt[t] = g.now
	// Demand on the new core type: translate the current observation by the
	// profiled ratio (falling back to the raw profile), and hold it until
	// the HRM window has drained the pre-migration rates.
	newType := g.p.Chip.Cores[mv.ToCore].Cluster.Spec.Type
	if newType != wasCluster.Spec.Type {
		if g.cfg.Online != nil {
			g.cfg.Online.BeginMigration(t.Name, wasCluster.Spec.Type, mv.Agent.Demand)
		}
		d := g.estimateDemandOnType(t, mv.Agent.Demand, wasCluster.Spec.Type, newType)
		g.lastDemand[t] = d
		if w, ok := g.lbtDemand[t]; ok && mv.Agent.Demand > 0 {
			w.scale(d / mv.Agent.Demand)
		}
		mv.Agent.Demand = d
		g.holdUntil[t] = g.now + task.DefaultHRMWindow
	}
}

// estimateDemandOnType translates a demand observed on core type `from`
// into core type `to` using the profiled ratio.
func (g *Governor) estimateDemandOnType(t *task.Task, d float64, from, to hw.CoreType) float64 {
	if g.cfg.Profiles == nil {
		return d
	}
	dTo, ok1 := g.cfg.Profiles(t.Name, to)
	dFrom, ok2 := g.cfg.Profiles(t.Name, from)
	if !ok1 || !ok2 || dFrom <= 0 {
		return d
	}
	return d * dTo / dFrom
}

// powerGateEmptyClusters powers clusters down when they host no tasks and
// back up when they do (§2: "if there are no active tasks in an entire
// cluster, then we can power down that cluster").
func (g *Governor) powerGateEmptyClusters() {
	counts := make([]int, len(g.p.Chip.Clusters))
	for _, t := range g.p.Tasks() {
		counts[g.p.ClusterOf(t).ID]++
	}
	for i, cl := range g.p.Chip.Clusters {
		switch {
		case counts[i] == 0 && cl.On:
			cl.PowerOff()
			g.emitGate(i, "off")
		case counts[i] > 0 && !cl.On:
			cl.PowerOn()
			g.emitGate(i, "on")
		}
	}
}

func (g *Governor) emitGate(cluster int, dir string) {
	if !g.tel.Enabled(telemetry.KindPowerGate) {
		return
	}
	ev := telemetry.E(telemetry.KindPowerGate)
	ev.Round = g.market.Round()
	ev.Cluster = cluster
	ev.Name = dir
	g.tel.Emit(ev)
}

// estimateDemandOn is the LBT estimator. Per §3.3, the steady-state demand
// on the task's *current* cluster is the currently observed demand (which
// tracks program phases); for a *different* cluster type the observed
// demand is translated by the profiled demand ratio between the two core
// types (the off-line profiling step). Without a profile the observed
// demand is used as-is — no heterogeneity speculation.
func (g *Governor) estimateDemandOn(a *core.TaskAgent, cluster int) float64 {
	t := g.byAgent[a]
	if t == nil {
		return a.Demand
	}
	d := a.Demand
	if w, ok := g.lbtDemand[t]; ok {
		if peak := w.peak(g.now); peak > 0 {
			d = peak
		}
	}
	cur := g.p.ClusterOf(t)
	target := g.p.Chip.Clusters[cluster]
	if target == cur || g.cfg.Profiles == nil {
		return d
	}
	dTarget, ok1 := g.cfg.Profiles(t.Name, target.Spec.Type)
	dCur, ok2 := g.cfg.Profiles(t.Name, cur.Spec.Type)
	if !ok1 || !ok2 || dCur <= 0 {
		return d
	}
	return d * dTarget / dCur
}

// clusterControl adapts hw.Cluster to the market's ClusterControl. V-F
// requests go through Platform.StepVF so an attached fault injector can
// refuse or defer them; refusals are retried with exponential backoff
// (jittered per cluster) instead of hammering a failed regulator every
// round. Each control only touches its own cluster and backoff state, so
// the market's concurrent cluster phases stay race-free.
type clusterControl struct {
	cl    *hw.Cluster
	p     *platform.Platform
	retry fault.Backoff

	attempts  int
	holdUntil sim.Time
}

func (c *clusterControl) SupplyPU() float64 { return c.cl.SupplyPU() }
func (c *clusterControl) SupplyAt(i int) float64 {
	if i < 0 {
		i = 0
	}
	if i >= len(c.cl.Spec.Levels) {
		i = len(c.cl.Spec.Levels) - 1
	}
	return float64(c.cl.Spec.Levels[i].FreqMHz)
}
func (c *clusterControl) Level() int     { return c.cl.Level() }
func (c *clusterControl) NumLevels() int { return c.cl.NumLevels() }
func (c *clusterControl) StepUp() bool   { return c.step(1) }
func (c *clusterControl) StepDown() bool { return c.step(-1) }

// step requests a one-rung transition. Deferred transitions count as
// accepted (supply will move; the market's frozen-round settling already
// tolerates actuation lag); refusals arm the backoff hold.
func (c *clusterControl) step(dir int) bool {
	if !c.cl.On {
		return false
	}
	now := c.p.Engine.Now()
	if c.attempts > 0 && now < c.holdUntil {
		return false // backing off after a refused transition
	}
	switch c.p.StepVF(c.cl.ID, dir) {
	case platform.StepApplied, platform.StepDeferred:
		c.attempts = 0
		return true
	case platform.StepRefused:
		c.holdUntil = now + c.retry.Next(c.attempts)
		c.attempts++
		return false
	case platform.StepAtLimit:
		c.attempts = 0
		return false
	default: // StepBusy: a deferred transition is still in flight
		return false
	}
}

func (c *clusterControl) Power() float64                { return c.p.SensorClusterPower(c.cl.ID) }
func (c *clusterControl) PowerAt(level int) float64     { return hw.ClusterPowerAt(c.cl, level, 1) }
func (c *clusterControl) IdlePowerAt(level int) float64 { return hw.ClusterPowerAt(c.cl, level, 0) }

var _ core.ClusterControl = (*clusterControl)(nil)
var _ platform.Governor = (*Governor)(nil)
var _ platform.TelemetryAware = (*Governor)(nil)
