package task

import (
	"math"
	"testing"
	"testing/quick"

	"pricepower/internal/hw"
	"pricepower/internal/sim"
)

func basicSpec() Spec {
	return Spec{
		Name:     "t",
		Priority: 1,
		MinHR:    24,
		MaxHR:    30,
		Phases: []Phase{
			{Duration: sim.Second, HBCostLittle: 20, SpeedupBig: 2},
			{Duration: sim.Second, HBCostLittle: 40, SpeedupBig: 2},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	good := basicSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Priority = 0 },
		func(s *Spec) { s.MinHR = 0 },
		func(s *Spec) { s.MaxHR = s.MinHR - 1 },
		func(s *Spec) { s.Phases = nil },
		func(s *Spec) { s.Phases[0].HBCostLittle = 0 },
		func(s *Spec) { s.Phases[1].SpeedupBig = 0.5 },
	}
	for i, mutate := range bad {
		s := basicSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTargetHRIsMidpoint(t *testing.T) {
	s := basicSpec()
	if got := s.TargetHR(); got != 27 {
		t.Errorf("TargetHR = %v, want 27", got)
	}
}

func TestHBCostPerCoreType(t *testing.T) {
	p := Phase{HBCostLittle: 20, SpeedupBig: 2}
	if p.HBCost(hw.Little) != 20 {
		t.Errorf("LITTLE cost = %v, want 20", p.HBCost(hw.Little))
	}
	if p.HBCost(hw.Big) != 10 {
		t.Errorf("big cost = %v, want 10", p.HBCost(hw.Big))
	}
}

func TestDemandDiffersAcrossCoreTypes(t *testing.T) {
	tk := New(1, basicSpec())
	dl := tk.DemandPU(hw.Little)
	db := tk.DemandPU(hw.Big)
	if dl != 27*20 {
		t.Errorf("LITTLE demand = %v, want 540", dl)
	}
	if db != 27*10 {
		t.Errorf("big demand = %v, want 270", db)
	}
	if db >= dl {
		t.Error("demand on big core not lower than on LITTLE core")
	}
}

func TestAdvanceEmitsHeartbeats(t *testing.T) {
	tk := New(1, basicSpec())
	// 540 PU·s of work at 20 PU·s/hb = 27 heartbeats.
	tk.Advance(540, hw.Little, sim.Second, sim.Second)
	if math.Abs(tk.Heartbeats()-27) > 1e-9 {
		t.Errorf("heartbeats = %v, want 27", tk.Heartbeats())
	}
	// Same work on a big core yields twice the beats.
	tk2 := New(2, basicSpec())
	tk2.Advance(540, hw.Big, sim.Second, sim.Second)
	if math.Abs(tk2.Heartbeats()-54) > 1e-9 {
		t.Errorf("big-core heartbeats = %v, want 54", tk2.Heartbeats())
	}
}

func TestPhaseProgressionAndLooping(t *testing.T) {
	s := basicSpec()
	s.Loop = true
	tk := New(1, s)
	if tk.PhaseIndex() != 0 {
		t.Fatal("fresh task not in phase 0")
	}
	tk.Advance(0, hw.Little, sim.Second, sim.Second)
	if tk.PhaseIndex() != 1 {
		t.Errorf("after 1s in phase 0 (duration 1s), phase = %d", tk.PhaseIndex())
	}
	tk.Advance(0, hw.Little, sim.Second, 2*sim.Second)
	if tk.PhaseIndex() != 0 || tk.Finished() {
		t.Errorf("looping task phase = %d finished = %v, want 0 false",
			tk.PhaseIndex(), tk.Finished())
	}
}

func TestNonLoopingTaskFinishes(t *testing.T) {
	tk := New(1, basicSpec())
	for i := sim.Time(0); i < 3*sim.Second; i += sim.Millisecond {
		tk.Advance(1, hw.Little, sim.Millisecond, i)
	}
	if !tk.Finished() {
		t.Fatal("task did not finish after all phases")
	}
	if tk.WantPU(hw.Little) != 0 {
		t.Errorf("finished task wants %v PU", tk.WantPU(hw.Little))
	}
	if tk.DemandPU(hw.Little) != 0 {
		t.Errorf("finished task demands %v PU", tk.DemandPU(hw.Little))
	}
	hb := tk.Heartbeats()
	tk.Advance(100, hw.Little, sim.Millisecond, 3*sim.Second)
	if tk.Heartbeats() != hb {
		t.Error("finished task still emitting heartbeats")
	}
}

func TestPhaseSkipsMultipleBoundaries(t *testing.T) {
	s := basicSpec()
	s.Phases[0].Duration = sim.Millisecond
	s.Phases[1].Duration = sim.Millisecond
	s.Loop = true
	tk := New(1, s)
	// One big 5ms step crosses several phase boundaries.
	tk.Advance(0, hw.Little, 5*sim.Millisecond, 5*sim.Millisecond)
	if tk.PhaseIndex() != 1 {
		t.Errorf("phase = %d after 5ms of 1ms phases, want 1", tk.PhaseIndex())
	}
}

func TestWantPUSelfCap(t *testing.T) {
	s := basicSpec()
	tk := New(1, s)
	if tk.WantPU(hw.Little) != -1 {
		t.Errorf("CPU-bound phase want = %v, want -1", tk.WantPU(hw.Little))
	}
	s.Phases[0].SelfCapHR = 30
	tk2 := New(2, s)
	if got := tk2.WantPU(hw.Little); got != 600 {
		t.Errorf("self-capped want = %v PU, want 600", got)
	}
	if got := tk2.WantPU(hw.Big); got != 300 {
		t.Errorf("self-capped want on big = %v PU, want 300", got)
	}
}

func TestHeartRateWindow(t *testing.T) {
	tk := New(1, basicSpec())
	// Deliver a steady 540 PU: heart rate should settle at 27 hb/s.
	for now := sim.Millisecond; now <= sim.Second; now += sim.Millisecond {
		tk.Advance(540*sim.Millisecond.Seconds(), hw.Little, sim.Millisecond, now)
	}
	hr := tk.HeartRate(sim.Second)
	if math.Abs(hr-27) > 0.5 {
		t.Errorf("steady heart rate = %v, want ≈27", hr)
	}
	if !tk.InRange(sim.Second) {
		t.Error("task at target not reported in range")
	}
	if tk.BelowRange(sim.Second) {
		t.Error("task at target reported below range")
	}
}

func TestHeartRateTracksSupplyDrop(t *testing.T) {
	s := basicSpec()
	s.Phases = []Phase{{HBCostLittle: 20, SpeedupBig: 2}} // one infinite phase
	tk := New(1, s)
	now := sim.Time(0)
	step := func(pu float64, d sim.Time) {
		for end := now + d; now < end; now += sim.Millisecond {
			tk.Advance(pu*sim.Millisecond.Seconds(), hw.Little, sim.Millisecond, now+sim.Millisecond)
		}
	}
	step(540, 600*sim.Millisecond)
	step(270, 600*sim.Millisecond) // halve the supply
	hr := tk.HeartRate(now)
	if math.Abs(hr-13.5) > 1 {
		t.Errorf("heart rate after supply halved = %v, want ≈13.5", hr)
	}
	if !tk.BelowRange(now) {
		t.Error("undersupplied task not reported below range")
	}
}

// TestDemandConversion reproduces Table 4: converting heart rate to demand
// with reference range 24–30 hb/s (target 27).
func TestDemandConversion(t *testing.T) {
	cases := []struct {
		hr, freq, util, want float64
	}{
		{15, 500, 1.00, 900},  // phase 1: s = 500 PU
		{10, 800, 0.50, 1080}, // phase 2: s = 400 PU
		{40, 1000, 1.00, 675}, // phase 3: s = 1000 PU, demand lowered
	}
	for i, c := range cases {
		s := c.freq * c.util
		got := EstimateDemand(27, s, c.hr)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("phase %d: EstimateDemand = %v, want %v", i+1, got, c.want)
		}
	}
}

func TestEstimateDemandNoBeatsFallsBack(t *testing.T) {
	if got := EstimateDemand(27, 350, 0); got != 350 {
		t.Errorf("EstimateDemand with hr=0 returned %v, want consumed supply 350", got)
	}
}

// Property: demand estimation is consistent — feeding back the estimated
// demand as supply, assuming linear scaling, lands on the target heart rate.
func TestEstimateDemandConsistencyProperty(t *testing.T) {
	f := func(hrX, sX uint16) bool {
		hr := float64(hrX%1000)/10 + 0.1 // 0.1 .. 100.1
		s := float64(sX%3000) + 1        // 1 .. 3000
		d := EstimateDemand(27, s, hr)
		// hb cost implied by the observation:
		cost := s / hr
		predicted := d / cost
		return math.Abs(predicted-27) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWindowEdgeCases(t *testing.T) {
	w := NewWindow(100 * sim.Millisecond)
	if w.Rate(0) != 0 {
		t.Error("empty window rate != 0")
	}
	w.Sample(sim.Millisecond, 1)
	if w.Rate(sim.Millisecond) != 0 {
		t.Error("single-sample window rate != 0")
	}
	w.Sample(2*sim.Millisecond, 3)
	if got := w.Rate(2 * sim.Millisecond); math.Abs(got-2000) > 1e-6 {
		t.Errorf("two-sample rate = %v, want 2000", got)
	}
}

func TestWindowEvictsOldSamples(t *testing.T) {
	w := NewWindow(100 * sim.Millisecond)
	// 10 hb/s for 1s, then 100 hb/s; after the window slides, only the fast
	// rate should be visible.
	count := 0.0
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		now += sim.Millisecond
		count += 0.01
		w.Sample(now, count)
	}
	for i := 0; i < 200; i++ {
		now += sim.Millisecond
		count += 0.1
		w.Sample(now, count)
	}
	if got := w.Rate(now); math.Abs(got-100) > 5 {
		t.Errorf("windowed rate = %v, want ≈100", got)
	}
}

func TestNewPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid spec did not panic")
		}
	}()
	New(1, Spec{})
}
