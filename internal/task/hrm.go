package task

import "pricepower/internal/sim"

// DefaultHRMWindow is the sliding window over which the Heart Rate Monitor
// reports a task's heart rate. Ten bid rounds (§3.4: 31.7 ms each) smooth
// the burstiness of fair scheduling without making the control loop
// sluggish.
const DefaultHRMWindow = 317 * sim.Millisecond

// Window measures an event rate over a sliding time window from cumulative
// counter samples, like the HRM infrastructure's heartbeats-per-second
// reading.
type Window struct {
	span   sim.Time
	times  []sim.Time
	counts []float64
	head   int // index of oldest sample
	n      int // number of valid samples
}

// NewWindow returns a rate window of the given span.
func NewWindow(span sim.Time) Window {
	if span <= 0 {
		span = DefaultHRMWindow
	}
	return Window{span: span}
}

// Sample records that the cumulative counter had value count at time now.
// Samples must arrive in non-decreasing time order.
func (w *Window) Sample(now sim.Time, count float64) {
	if cap(w.times) == 0 {
		// Size the ring generously: one sample per ~1ms tick across the span.
		size := int(w.span/sim.Millisecond) + 2
		if size < 8 {
			size = 8
		}
		w.times = make([]sim.Time, size)
		w.counts = make([]float64, size)
	}
	// Drop samples that have slid out of the window.
	w.evict(now)
	if w.n == len(w.times) {
		// Ring full (caller sampling faster than once per ms): drop oldest.
		w.head = (w.head + 1) % len(w.times)
		w.n--
	}
	i := (w.head + w.n) % len(w.times)
	w.times[i] = now
	w.counts[i] = count
	w.n++
}

func (w *Window) evict(now sim.Time) {
	for w.n > 1 {
		next := (w.head + 1) % len(w.times)
		// Keep one sample at or before the window edge so the rate spans the
		// full window.
		if w.times[next] > now-w.span {
			return
		}
		w.head = next
		w.n--
	}
}

// Rate reports the average event rate per second over the window ending at
// now. With fewer than two samples the rate is zero.
func (w *Window) Rate(now sim.Time) float64 {
	if w.n < 2 {
		return 0
	}
	oldest := w.head
	newest := (w.head + w.n - 1) % len(w.times)
	dt := w.times[newest] - w.times[oldest]
	if dt <= 0 {
		return 0
	}
	return (w.counts[newest] - w.counts[oldest]) / dt.Seconds()
}
