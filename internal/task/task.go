// Package task models the applications the framework manages: phase-
// structured computations that emit heartbeats (Heart Rate Monitor
// instrumentation, Hoffmann et al.) and whose computational demand differs
// across heterogeneous core types.
//
// A task's phase defines how many millions of cycles one heartbeat costs on
// a LITTLE core and how much faster a big core retires the same work. The
// user-facing performance goal is a reference heart-rate range [MinHR,
// MaxHR]; the paper's demand model (Table 4) converts observed heart rate,
// supply and utilization into a demand in Processing Units.
package task

import (
	"fmt"

	"pricepower/internal/hw"
	"pricepower/internal/sim"
)

// Phase is one program phase of a task.
type Phase struct {
	// Duration of the phase; <= 0 means the phase lasts forever.
	Duration sim.Time
	// HBCostLittle is the work of one heartbeat on a LITTLE core, in PU·s
	// (millions of cycles).
	HBCostLittle float64
	// SpeedupBig is how much less work one heartbeat needs on a big core:
	// HBCostBig = HBCostLittle / SpeedupBig. Out-of-order big cores retire
	// the same application work in fewer cycles, so SpeedupBig > 1.
	SpeedupBig float64
	// SelfCapHR is the heart rate beyond which the task stops consuming CPU
	// (e.g. a video encoder pacing on input frames). 0 means CPU-bound: the
	// task absorbs all cycles offered.
	SelfCapHR float64
}

// HBCost returns the phase's per-heartbeat work on the given core type.
func (p Phase) HBCost(ct hw.CoreType) float64 {
	if ct == hw.Big && p.SpeedupBig > 0 {
		return p.HBCostLittle / p.SpeedupBig
	}
	return p.HBCostLittle
}

// Spec is the static description of a task.
type Spec struct {
	Name string
	// Priority is the user-assigned priority r_t; higher is more important.
	Priority int
	// MinHR and MaxHR bound the reference heart-rate range in hb/s.
	MinHR, MaxHR float64
	// Phases plays in order; Loop restarts from the first phase after the
	// last ends, otherwise the task finishes.
	Phases []Phase
	Loop   bool
}

// Validate checks the spec for internal consistency.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("task: spec with empty name")
	}
	if s.Priority < 1 {
		return fmt.Errorf("task %s: priority %d < 1", s.Name, s.Priority)
	}
	if s.MinHR <= 0 || s.MaxHR < s.MinHR {
		return fmt.Errorf("task %s: bad heart-rate range [%v,%v]", s.Name, s.MinHR, s.MaxHR)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("task %s: no phases", s.Name)
	}
	for i, p := range s.Phases {
		if p.HBCostLittle <= 0 {
			return fmt.Errorf("task %s phase %d: non-positive heartbeat cost", s.Name, i)
		}
		if p.SpeedupBig < 1 {
			return fmt.Errorf("task %s phase %d: big speedup %v < 1", s.Name, i, p.SpeedupBig)
		}
	}
	return nil
}

// TargetHR is the midpoint of the reference range — the heart rate the
// demand conversion steers toward (Table 4).
func (s *Spec) TargetHR() float64 { return (s.MinHR + s.MaxHR) / 2 }

// Task is a live instance of a Spec with execution state.
type Task struct {
	Spec
	ID int

	phase        int
	phaseElapsed sim.Time
	heartbeats   float64
	finished     bool
	hrm          Window
}

// New instantiates a task. It panics if the spec is invalid (specs are
// build-time data).
func New(id int, spec Spec) *Task {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Task{Spec: spec, ID: id, hrm: NewWindow(DefaultHRMWindow)}
}

// Phase returns the active phase.
func (t *Task) Phase() Phase { return t.Spec.Phases[t.phase] }

// PhaseIndex returns the index of the active phase.
func (t *Task) PhaseIndex() int { return t.phase }

// Finished reports whether a non-looping task has played all phases.
func (t *Task) Finished() bool { return t.finished }

// Heartbeats reports the total heartbeats emitted so far.
func (t *Task) Heartbeats() float64 { return t.heartbeats }

// HBCost returns the current phase's per-heartbeat work on ct.
func (t *Task) HBCost(ct hw.CoreType) float64 { return t.Phase().HBCost(ct) }

// WantPU returns the task's self-imposed consumption cap on a core of type
// ct, in PUs; negative means unbounded (CPU-bound phase).
func (t *Task) WantPU(ct hw.CoreType) float64 {
	if t.finished {
		return 0
	}
	p := t.Phase()
	if p.SelfCapHR <= 0 {
		return -1
	}
	return p.SelfCapHR * p.HBCost(ct)
}

// DemandPU is the oracle demand of the task on core type ct: the supply that
// would sustain exactly the target heart rate in the current phase. The
// governors never read this — they estimate demand from observations via
// EstimateDemand — but workload calibration and tests do.
func (t *Task) DemandPU(ct hw.CoreType) float64 {
	if t.finished {
		return 0
	}
	return t.TargetHR() * t.HBCost(ct)
}

// Advance consumes workPU·s of delivered work on a core of type ct over a
// tick of length dt ending at now: heartbeats are emitted, the HRM window is
// sampled, and phase time advances.
func (t *Task) Advance(workPU float64, ct hw.CoreType, dt sim.Time, now sim.Time) {
	if t.finished {
		return
	}
	if workPU > 0 {
		t.heartbeats += workPU / t.HBCost(ct)
	}
	t.hrm.Sample(now, t.heartbeats)
	t.phaseElapsed += dt
	for {
		p := t.Spec.Phases[t.phase]
		if p.Duration <= 0 || t.phaseElapsed < p.Duration {
			return
		}
		t.phaseElapsed -= p.Duration
		t.phase++
		if t.phase >= len(t.Spec.Phases) {
			if t.Spec.Loop {
				t.phase = 0
			} else {
				t.phase = len(t.Spec.Phases) - 1
				t.finished = true
				return
			}
		}
	}
}

// HeartRate reports the observed heart rate in hb/s over the HRM window
// ending at now.
func (t *Task) HeartRate(now sim.Time) float64 { return t.hrm.Rate(now) }

// InRange reports whether the observed heart rate lies inside the reference
// range.
func (t *Task) InRange(now sim.Time) bool {
	hr := t.HeartRate(now)
	return hr >= t.MinHR && hr <= t.MaxHR
}

// BelowRange reports whether the observed heart rate is under the minimum —
// the miss condition Figures 4 and 6 count.
func (t *Task) BelowRange(now sim.Time) bool { return t.HeartRate(now) < t.MinHR }

// EstimateDemand converts an observation into a demand in PUs using the
// paper's Table 4 equation:
//
//	d_t = target_heart_rate × s_t / current_heart_rate
//
// where s_t is the supply the task actually consumed. When no heartbeats
// have been observed yet (currentHR == 0) the demand is unknown; callers get
// the consumed supply back, which makes the bid drift upward until beats
// arrive.
func EstimateDemand(targetHR, consumedPU, currentHR float64) float64 {
	if currentHR <= 0 {
		return consumedPU
	}
	return targetHR * consumedPU / currentHR
}
