package task_test

import (
	"fmt"

	"pricepower/internal/task"
)

// The paper's Table 4 conversion: observing 15 hb/s while consuming 500 PU
// against a 27 hb/s target means the task needs 900 PU.
func ExampleEstimateDemand() {
	d := task.EstimateDemand(27, 500, 15)
	fmt.Printf("demand %.0f PU\n", d)
	// Output:
	// demand 900 PU
}
