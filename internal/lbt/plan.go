package lbt

import (
	"math"

	"pricepower/internal/core"
)

// PlanMigrate proposes at most one cross-cluster task migration following
// Figure 3, or nil when no candidate improves on the current mapping.
func (p *Planner) PlanMigrate() *Move {
	return p.plan(Migrate)
}

// PlanBalance proposes at most one intra-cluster load-balancing movement,
// or nil when no candidate improves on the current mapping.
func (p *Planner) PlanBalance() *Move {
	return p.plan(Balance)
}

// PlanForCluster runs the constrained-core planning of a single cluster (the
// unit of work the paper's Table 7 measures: one constrained core evaluating
// its tasks against every other cluster).
func (p *Planner) PlanForCluster(cluster int, kind Kind) *Move {
	base := p.currentAssignment()
	baseChip := p.evalChip(base)
	mv, _ := p.planCluster(p.Market.Clusters[cluster], kind, base, baseChip)
	return mv
}

// plan evaluates all clusters' constrained cores and approves the single
// best movement chip-wide. Per-cluster planning reads only the shared
// base evaluation, so on many-cluster markets (the paper's "the task agents
// perform performance and savings estimations in parallel, which enables
// the computational overhead to be distributed across the entire chip")
// the clusters plan concurrently; the chip agent's final selection reduces
// their proposals in deterministic cluster order.
func (p *Planner) plan(kind Kind) *Move {
	base := p.currentAssignment()
	if len(base) == 0 {
		return nil
	}
	baseChip := p.evalChip(base)

	clusters := p.Market.Clusters
	moves := make([]*Move, len(clusters))
	evals := make([]candEval, len(clusters))
	if p.Market.Parallel() && len(clusters) > 1 {
		// Per-cluster planning reads only shared immutable state (base,
		// baseChip) and writes disjoint slots, so it fans out on the shared
		// persistent worker pool instead of spawning a goroutine per cluster
		// on every 190 ms migration epoch.
		core.ParallelFor(len(clusters), func(i int) {
			moves[i], evals[i] = p.planCluster(clusters[i], kind, base, baseChip)
		})
	} else {
		for i, v := range clusters {
			moves[i], evals[i] = p.planCluster(v, kind, base, baseChip)
		}
	}

	var best *Move
	var bestEval candEval
	for i := range moves {
		if moves[i] == nil {
			continue
		}
		if best == nil || p.better(baseChip, evals[i], bestEval) {
			best, bestEval = moves[i], evals[i]
		}
	}
	return best
}

// planCluster proposes the best movement out of cluster v's constrained
// core, together with its incremental evaluation.
func (p *Planner) planCluster(v *core.ClusterAgent, kind Kind, base assignment, baseChip chipEval) (*Move, candEval) {
	cc := v.ConstrainedCore()
	if cc == nil {
		return nil, candEval{}
	}
	// Figure 3 branch: if every task meets its demand in steady state, aim
	// for power efficiency; otherwise look for performance.
	if baseChip.res.allSat {
		return p.planPower(v, cc, kind, base, baseChip)
	}
	return p.planPerformance(v, cc, kind, base, baseChip)
}

// planPower: all demands met — pick the movement with the lowest estimated
// spend among those that keep perf (no task's ratio degrades).
func (p *Planner) planPower(v *core.ClusterAgent, cc *core.CoreAgent, kind Kind, base assignment, baseChip chipEval) (*Move, candEval) {
	var best *Move
	var bestEval candEval
	bestSpend := baseChip.res.spend * (1 - p.MinSpendGain)
	if p.MinSpendGain == 0 {
		bestSpend = baseChip.res.spend - eps
	}
	targets := p.targets(v, cc, kind)
	for _, t := range cc.Tasks {
		if !p.eligible(t) {
			continue
		}
		for _, target := range targets {
			ev := p.evalMove(baseChip, base, t, target)
			if !perfNotWorse(ev.newAffected, ev.oldAffected) {
				continue
			}
			if ev.spend < bestSpend {
				bestSpend = ev.spend
				bestEval = ev
				best = &Move{
					Agent: t, FromCore: cc.ID, ToCore: target, Kind: kind,
					SpendBefore: baseChip.res.spend, SpendAfter: ev.spend,
					Reason: "power-efficiency",
				}
			}
		}
	}
	return best, bestEval
}

// planPerformance: some demands unmet — find the movement out of this
// constrained core whose resulting mapping is best under the paper's
// perf(M′) > perf(M) order: some task's supply-demand ratio improves while
// no task of higher priority than the beneficiary degrades. The mover need
// not be the beneficiary: relocating a satisfied task can make room for a
// starving core-mate. Candidates must not increase the number of missing
// tasks (cycle breaking) nor deepen the worst miss (maximin floor), and
// are ranked by the beneficiary's priority, then its ratio gain, then spend
// (§3.3: equal performance → better spending).
func (p *Planner) planPerformance(v *core.ClusterAgent, cc *core.CoreAgent, kind Kind, base assignment, baseChip chipEval) (*Move, candEval) {
	var best *Move
	var bestEval candEval
	bestUnsat := math.MaxInt32
	bestPrio := math.MinInt32
	bestGain := 0.0
	bestSpend := math.Inf(1)
	targets := p.targets(v, cc, kind)
	for _, t := range cc.Tasks {
		if !p.eligible(t) {
			continue
		}
		for _, target := range targets {
			ev := p.evalMove(baseChip, base, t, target)
			if ev.unsat > baseChip.res.unsat {
				continue // never increase the number of missing tasks
			}
			if ev.unsat == baseChip.res.unsat && ev.minRatio < baseChip.res.minRatio-ratioSlack {
				continue // maximin floor: don't deepen the worst miss
			}
			ben, gain := beneficiary(ev.newAffected, ev.oldAffected)
			if ben == nil {
				continue
			}
			better := false
			switch {
			case ev.unsat < bestUnsat:
				better = true
			case ev.unsat == bestUnsat && ben.Priority > bestPrio:
				better = true
			case ev.unsat == bestUnsat && ben.Priority == bestPrio && gain > bestGain+1e-9:
				better = true
			case ev.unsat == bestUnsat && ben.Priority == bestPrio &&
				math.Abs(gain-bestGain) <= 1e-9 && ev.spend < bestSpend-eps:
				better = true
			}
			if better {
				bestUnsat, bestPrio, bestGain, bestSpend = ev.unsat, ben.Priority, gain, ev.spend
				bestEval = ev
				best = &Move{
					Agent: t, FromCore: cc.ID, ToCore: target, Kind: kind,
					SpendBefore: baseChip.res.spend, SpendAfter: ev.spend,
					Reason: "performance",
				}
			}
		}
	}
	return best, bestEval
}

// beneficiary finds the highest-priority task whose ratio improves from old
// to new while no task of strictly higher priority degrades — the witness
// of the paper's perf(M′) > perf(M) condition. It returns nil when the
// condition fails. Only tasks in the affected clusters need inspecting:
// every other ratio is unchanged by a single move.
func beneficiary(newR, oldR map[*core.TaskAgent]float64) (*core.TaskAgent, float64) {
	var ben *core.TaskAgent
	var gain float64
	for t, o := range oldR {
		n, ok := newR[t]
		if !ok {
			continue
		}
		// Only an unsatisfied task that meaningfully improves counts as a
		// beneficiary — already-in-range tasks are not worth migrations.
		if o >= satisfiedRatio || n <= o+minGain {
			continue
		}
		// Ties broken by gain, then agent ID, so the witness — and the
		// gain the candidate ranking sees — never depends on map order.
		if ben == nil || t.Priority > ben.Priority ||
			(t.Priority == ben.Priority && (n-o > gain ||
				(n-o == gain && t.ID < ben.ID))) {
			ben, gain = t, n-o
		}
	}
	if ben == nil {
		return nil, 0
	}
	if !noHigherPriorityHurt(newR, oldR, ben.Priority) {
		return nil, 0
	}
	return ben, gain
}

// targets lists the candidate destination cores for a task leaving
// cluster v's constrained core cc: for load balancing, the most
// over-supplied unconstrained core of v itself; for migration, that core in
// every other cluster.
func (p *Planner) targets(v *core.ClusterAgent, cc *core.CoreAgent, kind Kind) []int {
	var out []int
	if kind == Balance {
		if c := p.bestTargetIn(v, cc); c >= 0 {
			out = append(out, c)
		}
		return out
	}
	for _, other := range p.Market.Clusters {
		if other == v {
			continue
		}
		if c := p.bestTargetIn(other, nil); c >= 0 {
			out = append(out, c)
		}
	}
	return out
}

// bestTargetIn returns the most over-supplied unconstrained core of cluster
// v, excluding core `skip`; -1 if the cluster offers no target. A cluster
// whose every core is constrained (e.g. a single-core cluster) offers its
// least-loaded core, so single-core clusters remain reachable.
func (p *Planner) bestTargetIn(v *core.ClusterAgent, skip *core.CoreAgent) int {
	constrained := v.ConstrainedCore()
	supply := v.Control.SupplyPU()
	best, bestOver := -1, math.Inf(-1)
	for _, c := range v.Cores {
		if c == skip {
			continue
		}
		if c == constrained && len(v.Cores) > 1 {
			continue
		}
		if over := c.Oversupply(supply); over > bestOver {
			best, bestOver = c.ID, over
		}
	}
	return best
}

// withMove returns a copy of the assignment with the move applied.
func (p *Planner) withMove(base assignment, mv *Move) assignment {
	out := make(assignment, len(base))
	for t, c := range base {
		out[t] = c
	}
	out[mv.Agent] = mv.ToCore
	return out
}

// better ranks two candidate evaluations for the chip agent's final
// selection across clusters.
func (p *Planner) better(baseChip chipEval, ev, best candEval) bool {
	if baseChip.res.allSat {
		return ev.spend < best.spend-eps
	}
	// Performance mode: fewest missing tasks first, then the
	// higher-priority beneficiary, then the larger ratio gain, then spend.
	if ev.unsat != best.unsat {
		return ev.unsat < best.unsat
	}
	benNew, gainNew := beneficiary(ev.newAffected, ev.oldAffected)
	benOld, gainOld := beneficiary(best.newAffected, best.oldAffected)
	if benNew == nil {
		return false
	}
	if benOld == nil {
		return true
	}
	if benNew.Priority != benOld.Priority {
		return benNew.Priority > benOld.Priority
	}
	if math.Abs(gainNew-gainOld) > 1e-9 {
		return gainNew > gainOld
	}
	return ev.spend < best.spend-eps
}
