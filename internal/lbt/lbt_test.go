package lbt

import (
	"math"
	"testing"

	"pricepower/internal/core"
)

// tc2ish builds a 2-cluster market shaped like TC2: cluster 0 "big"
// (2 cores, 500–1200 PU, expensive) and cluster 1 "LITTLE" (3 cores,
// 350–1000 PU, cheap).
func tc2ish() (*core.Market, *core.LadderControl, *core.LadderControl) {
	big := core.NewLadderControl(
		[]float64{500, 700, 900, 1200},
		[]float64{2.0, 3.0, 4.5, 6.0})
	little := core.NewLadderControl(
		[]float64{350, 500, 700, 1000},
		[]float64{0.5, 0.8, 1.2, 2.0})
	cfg := core.Config{InitialAllowance: 10, InitialBid: 1, Tolerance: 0.2}
	m := core.NewMarket(cfg, []core.ClusterControl{big, little}, []int{2, 3})
	return m, big, little
}

// est builds an estimator with fixed per-cluster demands: demands[agentID]
// = [demand on cluster 0 (big), demand on cluster 1 (LITTLE)].
func est(demands map[int][2]float64) Estimator {
	return EstimatorFunc(func(a *core.TaskAgent, cluster int) float64 {
		return demands[a.ID][cluster]
	})
}

func TestPriceAtLevelPaperExample(t *testing.T) {
	// §3.3: P=$10, δ=0.02, 3 levels up → $10.612.
	got := PriceAtLevel(10, 0.02, 3)
	if math.Abs(got-10.612) > 0.001 {
		t.Errorf("PriceAtLevel(10, 0.02, 3) = %v, want ≈10.612", got)
	}
	// Down steps deflate.
	down := PriceAtLevel(10, 0.02, -2)
	if math.Abs(down-10*0.98*0.98) > 1e-9 {
		t.Errorf("PriceAtLevel(10, 0.02, -2) = %v, want %v", down, 10*0.98*0.98)
	}
	if PriceAtLevel(7, 0.1, 0) != 7 {
		t.Error("zero steps changed the price")
	}
}

// A task running on the expensive big cluster whose demand fits the LITTLE
// cluster should be migrated there for power efficiency.
func TestMigratePowerEfficiencyToLittle(t *testing.T) {
	m, big, _ := tc2ish()
	a := m.AddTask(1, 0) // on big core 0
	big.SetLevel(3)
	a.Demand, a.Observed = 400, 400
	m.StepOnce()

	// Demand 400 on big, 800 on LITTLE — still fits a LITTLE core.
	p := NewPlanner(m, est(map[int][2]float64{a.ID: {400, 800}}))
	mv := p.PlanMigrate()
	if mv == nil {
		t.Fatal("no migration proposed")
	}
	if mv.Agent != a || mv.Kind != Migrate {
		t.Fatalf("unexpected move %v", mv)
	}
	if mv.ToCore < 2 {
		t.Errorf("moved to core %d, want a LITTLE core (2-4)", mv.ToCore)
	}
	if mv.SpendAfter >= mv.SpendBefore {
		t.Errorf("spend did not decrease: %v → %v", mv.SpendBefore, mv.SpendAfter)
	}
	if mv.Reason != "power-efficiency" {
		t.Errorf("reason = %q", mv.Reason)
	}
}

// A task whose LITTLE demand exceeds the whole LITTLE ladder must move to
// the big cluster when starving (performance branch).
func TestMigratePerformanceToBig(t *testing.T) {
	m, _, little := tc2ish()
	a := m.AddTask(1, 2) // on LITTLE core (global ID 2)
	little.SetLevel(3)   // 1000 PU, still not enough
	a.Demand, a.Observed = 1600, 1000
	m.StepOnce()

	p := NewPlanner(m, est(map[int][2]float64{a.ID: {800, 1600}}))
	mv := p.PlanMigrate()
	if mv == nil {
		t.Fatal("no migration proposed")
	}
	if mv.ToCore != 0 && mv.ToCore != 1 {
		t.Errorf("moved to core %d, want a big core", mv.ToCore)
	}
	if mv.Reason != "performance" {
		t.Errorf("reason = %q", mv.Reason)
	}
}

// No movement should be proposed when the current mapping is already the
// cheapest satisfying one.
func TestNoMoveWhenAlreadyOptimal(t *testing.T) {
	m, _, _ := tc2ish()
	a := m.AddTask(1, 2) // LITTLE core, fits fine
	a.Demand, a.Observed = 400, 400
	m.StepOnce()
	p := NewPlanner(m, est(map[int][2]float64{a.ID: {200, 400}}))
	if mv := p.PlanMigrate(); mv != nil {
		t.Errorf("proposed %v for an already-optimal mapping", mv)
	}
}

// Load balancing: two tasks crowding one core while a sibling core is idle
// should split within the cluster.
func TestBalanceSplitsCrowdedCore(t *testing.T) {
	m, _, little := tc2ish()
	a := m.AddTask(1, 2)
	b := m.AddTask(1, 2) // both on LITTLE core 2
	little.SetLevel(3)
	a.Demand, a.Observed = 700, 500
	b.Demand, b.Observed = 700, 500
	m.StepOnce()

	p := NewPlanner(m, est(map[int][2]float64{a.ID: {350, 700}, b.ID: {350, 700}}))
	mv := p.PlanBalance()
	if mv == nil {
		t.Fatal("no balance proposed")
	}
	if mv.Kind != Balance {
		t.Errorf("kind = %v", mv.Kind)
	}
	if mv.ToCore != 3 && mv.ToCore != 4 {
		t.Errorf("balanced to core %d, want another LITTLE core", mv.ToCore)
	}
	if mv.FromCore != 2 {
		t.Errorf("from core %d, want 2", mv.FromCore)
	}
}

// Balancing away from the constrained core lets the cluster drop its V-F
// level: spend must fall even though demand is satisfied either way.
func TestBalanceReducesSpendViaLowerLevel(t *testing.T) {
	m, _, little := tc2ish()
	a := m.AddTask(1, 2)
	b := m.AddTask(1, 2)
	little.SetLevel(3) // 1000 PU covers both (500+500)
	a.Demand, a.Observed = 500, 500
	b.Demand, b.Observed = 500, 500
	m.StepOnce()
	p := NewPlanner(m, est(map[int][2]float64{a.ID: {250, 500}, b.ID: {250, 500}}))
	mv := p.PlanBalance()
	if mv == nil {
		t.Fatal("no balance proposed despite level-halving opportunity")
	}
	if mv.SpendAfter >= mv.SpendBefore {
		t.Errorf("spend %v → %v, want reduction", mv.SpendBefore, mv.SpendAfter)
	}
}

// The performance branch must not improve a low-priority task at the cost
// of a higher-priority one.
func TestPerformanceBranchProtectsHighPriority(t *testing.T) {
	m, big, little := tc2ish()
	// High-priority task occupying big core 0; its demand uses most of it.
	hi := m.AddTask(7, 0)
	big.SetLevel(3)
	hi.Demand, hi.Observed = 1100, 1100
	// Low-priority task starving on LITTLE.
	lo := m.AddTask(1, 2)
	little.SetLevel(3)
	lo.Demand, lo.Observed = 1600, 1000
	m.StepOnce()

	demands := map[int][2]float64{
		hi.ID: {1100, 2200},
		lo.ID: {800, 1600},
	}
	p := NewPlanner(m, est(demands))
	mv := p.PlanMigrate()
	// Moving lo onto a big core: the pair (1100+800) exceeds even the top
	// 1200 PU rung on core 0's cluster only if they share a core; lo should
	// go to the *other* big core (core 1), which is fine — but if it must
	// share with hi, the move is rejected. Either way hi's ratio must stay 1.
	if mv != nil {
		cand := p.withMove(p.currentAssignment(), mv)
		ev := p.evaluate(cand)
		if ev.ratios[hi] < 1-1e-6 {
			t.Errorf("move %v degrades the high-priority task to %v", mv, ev.ratios[hi])
		}
	}
}

// In an overloaded core, estimated supply splits by priority.
func TestSplitByPriorityWaterFill(t *testing.T) {
	m, _, _ := tc2ish()
	a := m.AddTask(3, 2)
	b := m.AddTask(1, 2)
	demand := func(t *core.TaskAgent) float64 {
		if t == a {
			return 900
		}
		return 900
	}
	got := splitByPriority([]*core.TaskAgent{a, b}, demand, 1000)
	if math.Abs(got[a]-750) > 1e-6 || math.Abs(got[b]-250) > 1e-6 {
		t.Errorf("split = %v/%v, want 750/250", got[a], got[b])
	}
	// Capping: a's demand below its share redistributes to b.
	demand2 := func(t *core.TaskAgent) float64 {
		if t == a {
			return 100
		}
		return 2000
	}
	got2 := splitByPriority([]*core.TaskAgent{a, b}, demand2, 1000)
	if math.Abs(got2[a]-100) > 1e-6 || math.Abs(got2[b]-900) > 1e-6 {
		t.Errorf("capped split = %v/%v, want 100/900", got2[a], got2[b])
	}
}

func TestEvaluateEmptyClusterSpendsNothing(t *testing.T) {
	m, _, _ := tc2ish()
	a := m.AddTask(1, 2)
	a.Demand = 400
	p := NewPlanner(m, est(map[int][2]float64{a.ID: {200, 400}}))
	ev := p.evaluate(p.currentAssignment())
	// Only the LITTLE cluster should contribute spend.
	if ev.spend <= 0 {
		t.Error("no spend at all")
	}
	base := ev.spend
	// Adding a big-cluster task increases spend.
	b := m.AddTask(1, 0)
	b.Demand = 400
	p2 := NewPlanner(m, est(map[int][2]float64{a.ID: {200, 400}, b.ID: {400, 800}}))
	if ev2 := p2.evaluate(p2.currentAssignment()); ev2.spend <= base {
		t.Errorf("spend %v not above %v after adding big task", ev2.spend, base)
	}
}

func TestPlanOnEmptyMarket(t *testing.T) {
	m, _, _ := tc2ish()
	p := NewPlanner(m, est(nil))
	if mv := p.PlanMigrate(); mv != nil {
		t.Errorf("empty market proposed %v", mv)
	}
	if mv := p.PlanBalance(); mv != nil {
		t.Errorf("empty market proposed %v", mv)
	}
}

func TestPlanForClusterScopesWork(t *testing.T) {
	m, _, little := tc2ish()
	a := m.AddTask(1, 2)
	little.SetLevel(3)
	a.Demand, a.Observed = 1600, 1000
	m.StepOnce()
	p := NewPlanner(m, est(map[int][2]float64{a.ID: {800, 1600}}))
	if mv := p.PlanForCluster(1, Migrate); mv == nil {
		t.Error("constrained cluster proposed nothing")
	}
	if mv := p.PlanForCluster(0, Migrate); mv != nil {
		t.Errorf("empty cluster proposed %v", mv)
	}
}

func TestKindString(t *testing.T) {
	if Balance.String() != "balance" || Migrate.String() != "migrate" {
		t.Error("kind names wrong")
	}
}

func TestMoveString(t *testing.T) {
	m, _, _ := tc2ish()
	a := m.AddTask(1, 0)
	mv := &Move{Agent: a, FromCore: 0, ToCore: 2, Kind: Migrate, Reason: "performance"}
	if s := mv.String(); s == "" {
		t.Error("empty move string")
	}
}

// Termination property (§3.3.1): repeatedly applying proposed moves reaches
// a fixed point — no cyclic task movement.
func TestNoCyclicMovement(t *testing.T) {
	m, big, little := tc2ish()
	big.SetLevel(1)
	little.SetLevel(2)
	agents := []*core.TaskAgent{
		m.AddTask(2, 0), m.AddTask(1, 2), m.AddTask(1, 2), m.AddTask(3, 3),
	}
	demands := map[int][2]float64{
		agents[0].ID: {300, 600},
		agents[1].ID: {400, 800},
		agents[2].ID: {250, 500},
		agents[3].ID: {500, 1000},
	}
	for _, a := range agents {
		a.Demand = demands[a.ID][1]
		a.Observed = a.Demand
	}
	m.StepOnce()
	p := NewPlanner(m, est(demands))
	moves := 0
	for i := 0; i < 50; i++ {
		mv := p.PlanMigrate()
		if mv == nil {
			mv = p.PlanBalance()
		}
		if mv == nil {
			break
		}
		m.MoveTask(mv.Agent, mv.ToCore)
		moves++
	}
	if moves >= 50 {
		t.Fatal("task movement did not terminate (cycle)")
	}
	// After settling, neither planner proposes anything.
	if mv := p.PlanMigrate(); mv != nil {
		t.Errorf("migration still proposed after fixed point: %v", mv)
	}
	if mv := p.PlanBalance(); mv != nil {
		t.Errorf("balance still proposed after fixed point: %v", mv)
	}
}
