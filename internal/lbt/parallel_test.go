package lbt

import (
	"testing"

	"pricepower/internal/sim"
)

// Parallel planning must propose exactly the move sequential planning
// proposes (the reduction is deterministic), and must be race-free.
func TestParallelPlanEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := sim.NewRand(seed)
		m, est, _ := randomMarket(rng, 4+rng.Intn(4), 2)
		p := NewPlanner(m, est)

		m.SetParallel(false)
		seqMove := p.PlanMigrate()
		seqBal := p.PlanBalance()

		m.SetParallel(true)
		parMove := p.PlanMigrate()
		parBal := p.PlanBalance()

		check := func(kind string, a, b *Move) {
			switch {
			case a == nil && b == nil:
			case a == nil || b == nil:
				t.Fatalf("seed %d %s: %v vs %v", seed, kind, a, b)
			case a.Agent != b.Agent || a.ToCore != b.ToCore || a.Kind != b.Kind:
				t.Fatalf("seed %d %s: %v vs %v", seed, kind, a, b)
			}
		}
		check("migrate", seqMove, parMove)
		check("balance", seqBal, parBal)
	}
}
