package lbt_test

import (
	"fmt"

	"pricepower/internal/lbt"
)

// The paper's Eq. 2 example: a $10 price extrapolated three V-F rungs up
// with δ = 0.02 becomes $10.612.
func ExamplePriceAtLevel() {
	fmt.Printf("$%.3f\n", lbt.PriceAtLevel(10, 0.02, 3))
	// Output:
	// $10.612
}
