package lbt

import (
	"math"
	"testing"
	"testing/quick"

	"pricepower/internal/core"
	"pricepower/internal/sim"
)

// randomMarket builds a market with nClusters clusters of nCores cores and
// random tasks/demands, mirroring the Table 7 setup.
func randomMarket(rng *sim.Rand, nClusters, nCores int) (*core.Market, Estimator, []*core.TaskAgent) {
	controls := make([]core.ClusterControl, nClusters)
	coresPer := make([]int, nClusters)
	for i := range controls {
		maxS := rng.Range(400, 2000)
		controls[i] = core.NewLadderControl(
			[]float64{maxS / 4, maxS / 2, 3 * maxS / 4, maxS},
			[]float64{0.5, 1, 2, 4})
		coresPer[i] = nCores
	}
	m := core.NewMarket(core.Config{InitialAllowance: 100}, controls, coresPer)
	demands := make(map[int][]float64)
	var agents []*core.TaskAgent
	for coreID := 0; coreID < nClusters*nCores; coreID++ {
		for i := 0; i < 1+rng.Intn(3); i++ {
			a := m.AddTask(1+rng.Intn(7), coreID)
			ds := make([]float64, nClusters)
			for k := range ds {
				ds[k] = rng.Range(10, 600)
			}
			demands[a.ID] = ds
			agents = append(agents, a)
		}
	}
	est := EstimatorFunc(func(a *core.TaskAgent, cluster int) float64 {
		return demands[a.ID][cluster]
	})
	return m, est, agents
}

// Property: the incremental candidate evaluation (evalMove) agrees with the
// full whole-chip evaluation for every randomly chosen single move — the
// correctness contract of the Table 7 fast path.
func TestIncrementalEvalMatchesFull(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		m, est, agents := randomMarket(rng, 2+rng.Intn(3), 1+rng.Intn(3))
		p := NewPlanner(m, est)
		base := p.currentAssignment()
		baseChip := p.evalChip(base)

		for trial := 0; trial < 10; trial++ {
			agent := agents[rng.Intn(len(agents))]
			// Any core on the chip as destination.
			var cores []int
			for _, v := range m.Clusters {
				for _, c := range v.Cores {
					cores = append(cores, c.ID)
				}
			}
			toCore := cores[rng.Intn(len(cores))]
			if toCore == base[agent] {
				continue
			}

			inc := p.evalMove(baseChip, base, agent, toCore)
			full := p.evaluate(p.withMove(base, &Move{Agent: agent, ToCore: toCore}))

			if math.Abs(inc.spend-full.spend) > 1e-6*(1+math.Abs(full.spend)) {
				t.Logf("seed %v: spend %v != %v", seed, inc.spend, full.spend)
				return false
			}
			if inc.unsat != full.unsat {
				t.Logf("seed %v: unsat %d != %d", seed, inc.unsat, full.unsat)
				return false
			}
			if math.Abs(inc.minRatio-full.minRatio) > 1e-9 {
				t.Logf("seed %v: minRatio %v != %v", seed, inc.minRatio, full.minRatio)
				return false
			}
			// Affected ratios must match the full evaluation's.
			for tk, r := range inc.newAffected {
				if fr, ok := full.ratios[tk]; ok && math.Abs(fr-r) > 1e-9 {
					t.Logf("seed %v: ratio of task %d %v != %v", seed, tk.ID, r, fr)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
