// Package lbt implements the paper's Load-Balancing and Task-migration
// module (§3.3): finding a task-to-core mapping that is better than the
// current one in performance and/or power, one task movement at a time.
//
// Mappings are compared with two metrics:
//
//   - perf(M): a priority-lexicographic comparison of the tasks'
//     supply/demand ratios — M′ beats M if some task's ratio improves while
//     no higher-priority task's ratio degrades;
//   - spend(M): the aggregate steady-state spending Σ b_t, whose reduction
//     translates to lower V-F levels and hence lower power.
//
// Candidate generation follows the paper's overhead-reducing heuristic: only
// tasks on each cluster's *constrained* core contemplate moving, and the
// only target considered per cluster is its most over-supplied
// unconstrained core. Load balancing targets a core in the same cluster;
// task migration targets cores in other clusters. One movement is approved
// per invocation, and the module is disabled in the emergency state (the
// supply-demand module owns that regime).
//
// Steady-state estimation (§3.3): the demand of a task on another cluster
// comes from off-line profiles through the Estimator interface; supply is
// demand rounded up to the next V-F rung unless the ladder tops out, in
// which case supply is split across the core's tasks in proportion to
// priority. The paper estimates spend as Σ steady-state bids with prices
// extrapolated by Eq. 2 (P_{Z+1} = P_Z·(1+δ), exported here as
// PriceAtLevel); because a powered-down or empty cluster emits no price
// signal at all, our estimator instead prices a mapping directly in the
// units the market's inverse-to-power allowance feedback makes prices track
// at equilibrium: the cluster's estimated power (idle floor plus
// utilization-scaled dynamic power at the chosen rung). This keeps spend(M)
// comparisons meaningful across heterogeneous clusters; see DESIGN.md for
// the substitution note.
package lbt

import (
	"fmt"
	"math"
	"sort"

	"pricepower/internal/core"
)

// Estimator supplies profiled steady-state demand of a task agent on a
// given cluster (the paper's off-line profiling table, §5.2).
type Estimator interface {
	DemandOn(agent *core.TaskAgent, cluster int) float64
}

// EstimatorFunc adapts a function to the Estimator interface.
type EstimatorFunc func(agent *core.TaskAgent, cluster int) float64

// DemandOn calls f.
func (f EstimatorFunc) DemandOn(a *core.TaskAgent, cluster int) float64 { return f(a, cluster) }

// Kind distinguishes the two movement flavours.
type Kind int

const (
	// Balance moves a task to another core in the same cluster.
	Balance Kind = iota
	// Migrate moves a task to a core in another cluster.
	Migrate
)

// String names the kind.
func (k Kind) String() string {
	if k == Balance {
		return "balance"
	}
	return "migrate"
}

// Move is one approved task movement.
type Move struct {
	Agent    *core.TaskAgent
	FromCore int
	ToCore   int
	Kind     Kind
	// SpendBefore/SpendAfter are the estimated steady-state aggregate
	// spends of the old and new mappings.
	SpendBefore, SpendAfter float64
	// Reason records which Figure-3 branch proposed the move.
	Reason string
}

// String renders the move for logs.
func (m *Move) String() string {
	return fmt.Sprintf("%s task %d: core %d → %d (%s, spend %.4f → %.4f)",
		m.Kind, m.Agent.ID, m.FromCore, m.ToCore, m.Reason, m.SpendBefore, m.SpendAfter)
}

// PriceAtLevel applies Eq. 2 recursively: the estimated price after moving
// `steps` V-F rungs up (positive) or down (negative) from a level priced at
// p, with tolerance δ. The paper's example: PriceAtLevel(10, 0.02, 3) ≈
// 10.612.
func PriceAtLevel(p, delta float64, steps int) float64 {
	for ; steps > 0; steps-- {
		p += p * delta
	}
	for ; steps < 0; steps++ {
		p -= p * delta
	}
	return p
}

// Planner evaluates candidate mappings over a market.
type Planner struct {
	Market *core.Market
	Est    Estimator

	// Eligible optionally filters which task agents may move this
	// invocation (governors use it for per-task migration cooldowns so
	// noisy observations cannot flap a task between clusters). Nil means
	// every task is eligible.
	Eligible func(*core.TaskAgent) bool

	// MinSpendGain is the minimum fractional spend reduction a
	// power-efficiency move must achieve (e.g. 0.03 = 3 %). Movement is not
	// free — cross-cluster migration costs milliseconds — so marginal wins
	// are not worth churn. Zero accepts any strict reduction.
	MinSpendGain float64

	coreToCluster map[int]int
}

// NewPlanner builds a planner for the market with the given profile
// estimator.
func NewPlanner(m *core.Market, est Estimator) *Planner {
	return &Planner{Market: m, Est: est}
}

func (p *Planner) eligible(t *core.TaskAgent) bool {
	return p.Eligible == nil || p.Eligible(t)
}

const eps = 1e-9

// satisfiedRatio is the supply/demand ratio treated as "demand met". The
// demand conversion targets the middle of the reference heart-rate range
// (Table 4), and the range is ±5–10 % wide, so a task at ≥ 96 % of its
// target still sits inside its range; chasing the last few percent with
// multi-millisecond migrations would thrash on observation noise.
const satisfiedRatio = 0.96

// ratioSlack is the tolerated per-task ratio degradation when comparing
// mappings, and minGain the smallest improvement worth acting on.
const (
	ratioSlack = 0.01
	minGain    = 0.02
)

// assignment maps every task agent to a core ID.
type assignment map[*core.TaskAgent]int

// currentAssignment snapshots the market's mapping.
func (p *Planner) currentAssignment() assignment {
	a := make(assignment)
	for _, v := range p.Market.Clusters {
		for _, c := range v.Cores {
			for _, t := range c.Tasks {
				a[t] = c.ID
			}
		}
	}
	return a
}

// coreEval is the steady-state estimate for one core under a mapping.
type coreEval struct {
	demand   float64 // D_c under the estimator
	consumed float64 // Σ allocated supply
	unsat    int
	minRatio float64
	ratios   map[*core.TaskAgent]float64
}

// clusterEval is the steady-state estimate for one cluster under a mapping,
// with the per-core breakdown candidate moves patch incrementally.
type clusterEval struct {
	spend    float64
	level    int
	supply   float64
	unsat    int
	minRatio float64
	consumed float64
	cores    map[int]*coreEval
	// maxDemand/secondMax/maxCore support O(1) level recomputation when one
	// core's demand changes.
	maxDemand, secondMax float64
	maxCore              int
}

// ratios flattens the per-core ratio maps (used by the whole-chip paths).
func (ev *clusterEval) allRatios(into map[*core.TaskAgent]float64) {
	for _, ce := range ev.cores {
		for t, r := range ce.ratios {
			into[t] = r
		}
	}
}

// evalCore estimates one core's steady state at the given per-core supply:
// satisfied tasks get s = d; an overloaded core splits supply by priority,
// never giving a task more than its demand (water-filling).
func (p *Planner) evalCore(cluster int, ts []*core.TaskAgent, supply float64) *coreEval {
	ce := &coreEval{minRatio: 1, ratios: make(map[*core.TaskAgent]float64, len(ts))}
	demand := func(t *core.TaskAgent) float64 { return p.Est.DemandOn(t, cluster) }
	for _, t := range ts {
		ce.demand += demand(t)
	}
	if ce.demand <= supply+eps {
		for _, t := range ts {
			ce.ratios[t] = 1
			ce.consumed += demand(t)
		}
		return ce
	}
	sup := splitByPriority(ts, demand, supply)
	for _, t := range ts {
		d := demand(t)
		s := sup[t]
		r := 1.0
		if d > 0 {
			r = s / d
		}
		ce.ratios[t] = r
		ce.consumed += s
		if r < satisfiedRatio {
			ce.unsat++
		}
		if r < ce.minRatio {
			ce.minRatio = r
		}
	}
	return ce
}

// evalCluster estimates cluster v's steady state given the tasks mapped to
// each of its cores, with the V-F level capped at maxLevel (the TDP-aware
// evaluation pass lowers caps until the mapping's power fits the budget).
func (p *Planner) evalCluster(v *core.ClusterAgent, tasksOf map[int][]*core.TaskAgent, maxLevel int) clusterEval {
	ev := clusterEval{minRatio: 1, cores: make(map[int]*coreEval, len(tasksOf))}
	ctl := v.Control

	// Demands per core (profiled demand on this cluster). Cores are
	// walked in ID order: float accumulation and max-demand tie-breaks
	// must not depend on map iteration order, or two identical runs
	// diverge at the ULP level and the divergence is amplified by the
	// market feedback loop into different plans.
	coreIDs := sortedCoreIDs(tasksOf)
	var dMax, dSecond float64
	maxCore := -1
	occupied := false
	demands := make(map[int]float64, len(tasksOf))
	for _, coreID := range coreIDs {
		ts := tasksOf[coreID]
		if len(ts) == 0 {
			continue
		}
		occupied = true
		var dc float64
		for _, t := range ts {
			dc += p.Est.DemandOn(t, v.ID)
		}
		demands[coreID] = dc
		switch {
		case dc > dMax:
			dSecond, dMax, maxCore = dMax, dc, coreID
		case dc > dSecond:
			dSecond = dc
		}
	}
	if !occupied {
		// Empty cluster: powered down, no spending (§2 "if there are no
		// active tasks in an entire cluster, then we can power down").
		return ev
	}
	ev.maxDemand, ev.secondMax, ev.maxCore = dMax, dSecond, maxCore

	// Supply: demand of the constrained core rounded up to the next rung,
	// capped by the TDP pass.
	level := levelForSupply(ctl, dMax)
	if level > maxLevel {
		level = maxLevel
	}
	ev.level = level
	ev.supply = ctl.SupplyAt(level)

	for _, coreID := range coreIDs {
		ts := tasksOf[coreID]
		if len(ts) == 0 {
			continue
		}
		ce := p.evalCore(v.ID, ts, ev.supply)
		ev.cores[coreID] = ce
		ev.consumed += ce.consumed
		ev.unsat += ce.unsat
		if ce.minRatio < ev.minRatio {
			ev.minRatio = ce.minRatio
		}
	}
	ev.spend = p.clusterSpend(v, ev.level, ev.consumed)
	return ev
}

// clusterSpend prices a cluster's operating point: idle floor plus dynamic
// power scaled by utilization. The paper's spend(M) is Σ bids; at
// equilibrium the chip agent's inverse-to-power allowance distribution
// makes aggregate bids track cluster power, and pricing the estimate in
// power units directly keeps mappings on different cluster types comparable
// (see package comment and DESIGN.md).
func (p *Planner) clusterSpend(v *core.ClusterAgent, level int, consumed float64) float64 {
	ctl := v.Control
	util := 0.0
	if cap := ctl.SupplyAt(level) * float64(len(v.Cores)); cap > 0 {
		util = consumed / cap
		if util > 1 {
			util = 1
		}
	}
	idle := ctl.IdlePowerAt(level)
	busy := ctl.PowerAt(level)
	return idle + (busy-idle)*util
}

// splitByPriority water-fills `supply` PUs over the tasks proportionally to
// priority, capping each task at its demand and redistributing slack.
func splitByPriority(ts []*core.TaskAgent, demand func(*core.TaskAgent) float64, supply float64) map[*core.TaskAgent]float64 {
	out := make(map[*core.TaskAgent]float64, len(ts))
	remainingTasks := append([]*core.TaskAgent(nil), ts...)
	remaining := supply
	for len(remainingTasks) > 0 && remaining > eps {
		var rSum float64
		for _, t := range remainingTasks {
			rSum += float64(t.Priority)
		}
		if rSum <= 0 {
			break
		}
		var next []*core.TaskAgent
		progressed := false
		for _, t := range remainingTasks {
			share := remaining * float64(t.Priority) / rSum
			need := demand(t) - out[t]
			if share >= need-eps {
				out[t] += need
				progressed = progressed || need > 0
			} else {
				out[t] += share
				next = append(next, t)
			}
		}
		var given float64
		for _, t := range ts {
			given += out[t]
		}
		remaining = supply - given
		if len(next) == len(remainingTasks) && !progressed {
			break
		}
		if len(next) == len(remainingTasks) {
			// Nobody capped: proportional split is final.
			break
		}
		remainingTasks = next
	}
	return out
}

// levelForSupply returns the lowest rung supplying at least `want` PUs
// (the top rung if the ladder cannot cover it).
func levelForSupply(ctl core.ClusterControl, want float64) int {
	n := ctl.NumLevels()
	for i := 0; i < n; i++ {
		if ctl.SupplyAt(i) >= want-eps {
			return i
		}
	}
	return n - 1
}

// evalResult is the whole-chip estimate for a mapping.
type evalResult struct {
	spend  float64
	ratios map[*core.TaskAgent]float64
	allSat bool
	// unsat counts tasks below satisfiedRatio. The performance branch never
	// accepts a movement that increases it: with equal task priorities the
	// paper's perf order alone admits two-cycles (improve A hurting B, then
	// improve B hurting A); keeping the count of missing tasks monotone
	// breaks them and matches the evaluation's any-task-below-range metric.
	unsat int
	// minRatio is the worst supply/demand ratio in the mapping. At equal
	// unsat counts the performance branch additionally requires the
	// worst-off task not to end up worse than before (a maximin floor) —
	// otherwise "who suffers" rotates forever.
	minRatio float64
}

// chipEval caches the per-cluster evaluations of a base mapping so that
// single-move candidates can be evaluated incrementally: without a TDP
// budget only the source and destination clusters of a move change, which
// turns candidate evaluation from O(all tasks) into O(two clusters) and
// keeps the Table 7 scalability sweep (256 clusters, 131k tasks) tractable.
type chipEval struct {
	evs []clusterEval
	// grouped caches each cluster's coreID → tasks mapping so candidate
	// moves copy only the two affected clusters' groups.
	grouped []map[int][]*core.TaskAgent
	res     evalResult
}

// evalChip evaluates a full mapping and keeps the per-cluster breakdown.
// It also warms the core→cluster cache so the (possibly concurrent)
// candidate evaluations never write shared planner state.
func (p *Planner) evalChip(a assignment) chipEval {
	p.clusterIndexOfCore(0)
	clusters := p.Market.Clusters
	ce := chipEval{
		evs:     make([]clusterEval, len(clusters)),
		grouped: p.groupAll(a),
	}
	if p.Market.Config().Wtdp > 0 {
		// TDP couples the clusters; use the capped whole-chip pass.
		ce.res = p.evaluate(a)
		for i, v := range clusters {
			ce.evs[i] = p.evalCluster(v, ce.grouped[i], v.Control.NumLevels()-1)
		}
		return ce
	}
	ce.res = evalResult{ratios: make(map[*core.TaskAgent]float64), allSat: true, minRatio: 1}
	for i, v := range clusters {
		ev := p.evalCluster(v, ce.grouped[i], v.Control.NumLevels()-1)
		ce.evs[i] = ev
		ce.res.spend += ev.spend
		ce.res.unsat += ev.unsat
		if ev.minRatio < ce.res.minRatio {
			ce.res.minRatio = ev.minRatio
		}
		ev.allRatios(ce.res.ratios)
	}
	ce.res.allSat = ce.res.unsat == 0
	return ce
}

// candEval is the incremental evaluation of one candidate move: global
// aggregates plus the ratio maps restricted to the affected clusters (all
// other tasks' ratios are unchanged by construction).
type candEval struct {
	spend    float64
	unsat    int
	minRatio float64
	// oldAffected/newAffected hold ratios of tasks in the move's source and
	// destination clusters, before and after.
	oldAffected, newAffected map[*core.TaskAgent]float64
}

// evalMove evaluates base + (agent → toCore) incrementally.
func (p *Planner) evalMove(base chipEval, baseAssign assignment, agent *core.TaskAgent, toCore int) candEval {
	clusters := p.Market.Clusters
	srcCluster := p.clusterIndexOfCore(baseAssign[agent])
	dstCluster := p.clusterIndexOfCore(toCore)

	if p.Market.Config().Wtdp > 0 {
		// Coupled evaluation: recompute the whole chip under the cap.
		res := p.evaluate(p.withMove(baseAssign, &Move{Agent: agent, ToCore: toCore}))
		return candEval{
			spend: res.spend, unsat: res.unsat, minRatio: res.minRatio,
			oldAffected: base.res.ratios, newAffected: res.ratios,
		}
	}

	cand := candEval{
		spend:       base.res.spend,
		unsat:       base.res.unsat,
		minRatio:    math.Inf(1),
		oldAffected: make(map[*core.TaskAgent]float64),
		newAffected: make(map[*core.TaskAgent]float64),
	}
	fromCore := baseAssign[agent]
	affected := []int{srcCluster}
	if dstCluster != srcCluster {
		affected = append(affected, dstCluster)
	}
	minFromCluster := make(map[int]float64, 2)
	for _, ci := range affected {
		v := clusters[ci]
		old := &base.evs[ci]

		// Incremental per-core patch: one core's task set changes; the
		// cluster's V-F level changes only when its constrained demand
		// does. Compute the new constrained demand in O(1) from the cached
		// max/second-max.
		changedCore := fromCore
		var changedTasks []*core.TaskAgent
		var dDelta float64
		d := p.Est.DemandOn(agent, ci)
		if ci == srcCluster {
			for _, t := range base.grouped[ci][fromCore] {
				if t != agent {
					changedTasks = append(changedTasks, t)
				}
			}
			dDelta = -d
		} else {
			changedCore = toCore
			changedTasks = append(changedTasks, base.grouped[ci][toCore]...)
			changedTasks = append(changedTasks, agent)
			dDelta = +d
		}
		if srcCluster == dstCluster {
			// Intra-cluster move touches two cores; fall back to the full
			// cluster recompute (load balancing is O(one cluster) anyway).
			nev := p.reEvalClusterWithMove(v, base.grouped[ci], agent, fromCore, toCore)
			p.applyClusterDelta(&cand, old, &nev, minFromCluster, ci)
			continue
		}

		oldCore := old.cores[changedCore]
		var oldCoreDemand float64
		if oldCore != nil {
			oldCoreDemand = oldCore.demand
		}
		newCoreDemand := oldCoreDemand + dDelta

		// New constrained demand of the cluster.
		newMax := old.maxDemand
		if changedCore == old.maxCore {
			newMax = math.Max(old.secondMax, newCoreDemand)
		} else {
			newMax = math.Max(old.maxDemand, newCoreDemand)
		}
		newLevel := levelForSupply(v.Control, newMax)
		if len(changedTasks) == 0 && len(old.cores) == 1 && ci == srcCluster {
			// Cluster empties: powers down, spends nothing.
			cand.spend -= old.spend
			cand.unsat -= old.unsat
			if oldCore != nil {
				for t, r := range oldCore.ratios {
					cand.oldAffected[t] = r
				}
			}
			minFromCluster[ci] = math.Inf(1)
			continue
		}
		if newLevel != old.level {
			// Level change affects every core: full cluster recompute.
			nev := p.reEvalClusterWithMove(v, base.grouped[ci], agent, fromCore, toCore)
			p.applyClusterDelta(&cand, old, &nev, minFromCluster, ci)
			continue
		}

		// Fast path: same level — only the changed core's allocation moves.
		newCore := p.evalCore(ci, changedTasks, old.supply)
		if oldCore != nil {
			cand.unsat -= oldCore.unsat
			for t, r := range oldCore.ratios {
				cand.oldAffected[t] = r
			}
		}
		cand.unsat += newCore.unsat
		for t, r := range newCore.ratios {
			cand.newAffected[t] = r
		}
		var oldConsumed float64
		if oldCore != nil {
			oldConsumed = oldCore.consumed
		}
		newSpend := p.clusterSpend(v, old.level, old.consumed-oldConsumed+newCore.consumed)
		cand.spend += newSpend - old.spend
		// Cluster minimum: the other cores' cached minima plus the new core.
		m := newCore.minRatio
		for coreID, ce := range old.cores {
			if coreID == changedCore {
				continue
			}
			if ce.minRatio < m {
				m = ce.minRatio
			}
		}
		minFromCluster[ci] = m
	}

	// Global minRatio: affected clusters' new minima vs every other
	// cluster's cached minimum.
	for ci := range clusters {
		m, ok := minFromCluster[ci]
		if !ok {
			m = base.evs[ci].minRatio
		}
		if m < cand.minRatio {
			cand.minRatio = m
		}
	}
	return cand
}

// reEvalClusterWithMove fully re-evaluates one cluster with the move
// applied to its grouping (slow path: level changes or intra-cluster move).
func (p *Planner) reEvalClusterWithMove(v *core.ClusterAgent, grouped map[int][]*core.TaskAgent, agent *core.TaskAgent, fromCore, toCore int) clusterEval {
	group := make(map[int][]*core.TaskAgent, len(grouped)+1)
	for coreID, ts := range grouped {
		if coreID == fromCore {
			kept := make([]*core.TaskAgent, 0, len(ts))
			for _, x := range ts {
				if x != agent {
					kept = append(kept, x)
				}
			}
			if len(kept) > 0 {
				group[coreID] = kept
			}
			continue
		}
		group[coreID] = ts
	}
	if p.clusterIndexOfCore(toCore) == v.ID {
		ts := group[toCore]
		withAgent := make([]*core.TaskAgent, 0, len(ts)+1)
		withAgent = append(withAgent, ts...)
		group[toCore] = append(withAgent, agent)
	}
	return p.evalCluster(v, group, v.Control.NumLevels()-1)
}

// applyClusterDelta folds a fully recomputed cluster eval into a candidate.
func (p *Planner) applyClusterDelta(cand *candEval, old, nev *clusterEval, minFromCluster map[int]float64, ci int) {
	cand.spend += nev.spend - old.spend
	cand.unsat += nev.unsat - old.unsat
	old.allRatios(cand.oldAffected)
	nev.allRatios(cand.newAffected)
	minFromCluster[ci] = nev.minRatio
}

// clusterIndexOfCore maps a global core ID to its cluster index (cached).
func (p *Planner) clusterIndexOfCore(coreID int) int {
	if p.coreToCluster == nil {
		p.coreToCluster = make(map[int]int)
		for i, v := range p.Market.Clusters {
			for _, c := range v.Cores {
				p.coreToCluster[c.ID] = i
			}
		}
	}
	return p.coreToCluster[coreID]
}

// evaluate estimates the steady state of a full mapping. When the market
// carries a TDP budget, supply is additionally constrained ("the
// steady-state supply of a cluster is ... the steady-state demand, unless
// the supply is constrained by the TDP constraint", §3.3): cluster levels
// are capped, hungriest first, until the estimated chip power fits under
// Wtdp.
func (p *Planner) evaluate(a assignment) evalResult {
	clusters := p.Market.Clusters
	evs := make([]clusterEval, len(clusters))
	caps := make([]int, len(clusters))
	grouped := make([]map[int][]*core.TaskAgent, len(clusters))
	for i, v := range clusters {
		caps[i] = v.Control.NumLevels() - 1
		grouped[i] = p.tasksOfCluster(v, a)
		evs[i] = p.evalCluster(v, grouped[i], caps[i])
	}

	if budget := p.Market.Config().Wtdp; budget > 0 {
		for iter := 0; iter < 64; iter++ {
			total := 0.0
			for _, ev := range evs {
				total += ev.spend
			}
			if total <= budget {
				break
			}
			// Lower the hungriest cluster that still has headroom.
			worst := -1
			for i := range evs {
				if evs[i].level > 0 && evs[i].level <= caps[i] &&
					(worst < 0 || evs[i].spend > evs[worst].spend) {
					if len(grouped[i]) > 0 {
						worst = i
					}
				}
			}
			if worst < 0 {
				break
			}
			caps[worst] = evs[worst].level - 1
			evs[worst] = p.evalCluster(clusters[worst], grouped[worst], caps[worst])
		}
	}

	res := evalResult{ratios: make(map[*core.TaskAgent]float64), allSat: true, minRatio: 1}
	for i := range evs {
		res.spend += evs[i].spend
		res.unsat += evs[i].unsat
		if evs[i].minRatio < res.minRatio {
			res.minRatio = evs[i].minRatio
		}
		evs[i].allRatios(res.ratios)
	}
	res.allSat = res.unsat == 0
	return res
}

// tasksOfCluster groups the agents assigned to cluster v's cores.
func (p *Planner) tasksOfCluster(v *core.ClusterAgent, a assignment) map[int][]*core.TaskAgent {
	ids := make(map[int]bool, len(v.Cores))
	for _, c := range v.Cores {
		ids[c.ID] = true
	}
	out := make(map[int][]*core.TaskAgent)
	for _, t := range agentsByID(a) {
		if coreID := a[t]; ids[coreID] {
			out[coreID] = append(out[coreID], t)
		}
	}
	return out
}

// groupAll groups the whole assignment per cluster in one pass.
func (p *Planner) groupAll(a assignment) []map[int][]*core.TaskAgent {
	out := make([]map[int][]*core.TaskAgent, len(p.Market.Clusters))
	for i := range out {
		out[i] = make(map[int][]*core.TaskAgent)
	}
	for _, t := range agentsByID(a) {
		coreID := a[t]
		ci := p.clusterIndexOfCore(coreID)
		out[ci][coreID] = append(out[ci][coreID], t)
	}
	return out
}

// agentsByID lists an assignment's agents in ascending agent-ID order.
// Grouping must not inherit map iteration order: the per-core slices feed
// water-filling and float sums whose results are order-sensitive, and a
// replay is only bit-identical if every evaluation sees the same order.
func agentsByID(a assignment) []*core.TaskAgent {
	out := make([]*core.TaskAgent, 0, len(a))
	for t := range a {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// sortedCoreIDs lists a grouping's core IDs in ascending order.
func sortedCoreIDs(tasksOf map[int][]*core.TaskAgent) []int {
	out := make([]int, 0, len(tasksOf))
	for id := range tasksOf {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// perfNotWorse reports whether no task's ratio meaningfully degrades from
// old to new (the perf(M′) ≥ perf(M) requirement of the power-efficiency
// branch). A satisfied task staying satisfied does not count as
// degradation.
func perfNotWorse(newR, oldR map[*core.TaskAgent]float64) bool {
	for t, o := range oldR {
		n, ok := newR[t]
		if !ok {
			continue
		}
		if n >= satisfiedRatio && o >= satisfiedRatio {
			continue
		}
		if n < o-ratioSlack {
			return false
		}
	}
	return true
}

// noHigherPriorityHurt reports whether every task with priority strictly
// above `prio` keeps its ratio (the performance branch's constraint).
func noHigherPriorityHurt(newR, oldR map[*core.TaskAgent]float64, prio int) bool {
	for t, o := range oldR {
		if t.Priority <= prio {
			continue
		}
		n, ok := newR[t]
		if !ok {
			continue
		}
		if n >= satisfiedRatio && o >= satisfiedRatio {
			continue
		}
		if n < o-ratioSlack {
			return false
		}
	}
	return true
}
