package check

import (
	"testing"

	"pricepower/internal/telemetry/trace"
)

type fakeLedger struct{ o, c, a, op, mm uint64 }

func (f fakeLedger) SpanCounts() (uint64, uint64, uint64, uint64, uint64) {
	return f.o, f.c, f.a, f.op, f.mm
}

func TestCheckSpanConservation(t *testing.T) {
	cases := []struct {
		name string
		l    fakeLedger
		ok   bool
	}{
		{"balanced closed", fakeLedger{o: 5, c: 5}, true},
		{"balanced with attribution", fakeLedger{o: 5, c: 2, a: 2, op: 1}, true},
		{"empty", fakeLedger{}, true},
		{"leak", fakeLedger{o: 5, c: 4}, false},
		{"mismatch", fakeLedger{o: 2, c: 2, mm: 1}, false},
		{"overclose", fakeLedger{o: 2, c: 3}, false},
	}
	for _, tc := range cases {
		err := CheckSpanConservation(tc.l)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// The real tracer satisfies the structural interface and balances for a
// simple open/close + shed history.
func TestSpanConservationWithTracer(t *testing.T) {
	tr := trace.NewTracer(1)
	id := trace.DeriveID(1, 0)
	tr.Fleet().Open(trace.Span{Trace: id, Stage: trace.StageQueue, Board: -1})
	tr.Fleet().Close(id, trace.StageQueue, 100, "home")
	tr.Board(0).AddAttributed(trace.Span{Trace: id, Stage: trace.StageBoard, Class: "drain"})
	var l SpanLedger = tr
	if err := CheckSpanConservation(l); err != nil {
		t.Fatal(err)
	}
}
