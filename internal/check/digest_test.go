package check_test

import (
	"math"
	"strings"
	"testing"

	"pricepower/internal/check"
	"pricepower/internal/core"
	"pricepower/internal/sim"
)

func TestDigestNormalizesZeros(t *testing.T) {
	pos := check.NewDigest().Float(0.0)
	neg := check.NewDigest().Float(math.Copysign(0, -1))
	if pos != neg {
		t.Errorf("+0.0 digests %016x, -0.0 digests %016x", uint64(pos), uint64(neg))
	}
}

func TestDigestOrderAndValueSensitivity(t *testing.T) {
	ab := check.NewDigest().Uint64(1).Uint64(2)
	ba := check.NewDigest().Uint64(2).Uint64(1)
	if ab == ba {
		t.Error("digest insensitive to sample order")
	}
	if check.NewDigest().Float(1.5) == check.NewDigest().Float(1.5000001) {
		t.Error("digest insensitive to float value")
	}
	if check.NewDigest().String("ppm") == check.NewDigest().String("hpm") {
		t.Error("digest insensitive to strings")
	}
	if check.NewDigest().Bool(true) == check.NewDigest().Bool(false) {
		t.Error("digest insensitive to booleans")
	}
}

func TestTraceDiff(t *testing.T) {
	a := &check.Trace{Digests: []uint64{1, 2, 3}}
	b := &check.Trace{Digests: []uint64{1, 2, 3}}
	if i, ok := a.Diff(b); !ok || i != -1 {
		t.Errorf("identical traces: Diff = %d, %v", i, ok)
	}
	c := &check.Trace{Digests: []uint64{1, 9, 3}}
	if i, ok := a.Diff(c); ok || i != 1 {
		t.Errorf("diverging traces: Diff = %d, %v, want 1, false", i, ok)
	}
	d := &check.Trace{Digests: []uint64{1, 2}}
	if i, ok := a.Diff(d); ok || i != 2 {
		t.Errorf("length mismatch: Diff = %d, %v, want 2, false", i, ok)
	}
}

// runRecordedMarket drives a deterministic standalone market for n rounds,
// recording a digest per round.
func runRecordedMarket(n int) *check.Recorder {
	ctl := core.NewLadderControl([]float64{150, 300, 450}, []float64{1, 2, 3})
	m := core.NewMarket(core.Config{InitialAllowance: 100}, []core.ClusterControl{ctl}, []int{2})
	a := m.AddTask(1, 0)
	b := m.AddTask(2, 1)
	a.Demand, b.Demand = 120, 250
	rec := check.NewRecorder("unit", 1, "2-core ladder market", check.RecorderOptions{})
	for i := 0; i < n; i++ {
		m.StepOnce()
		a.Observed, b.Observed = a.Purchased(), b.Purchased()
		rec.RecordRound(m)
	}
	return rec
}

// The same experiment run twice must record bit-identical traces, and a
// market round must actually change the digest.
func TestRecorderDeterminism(t *testing.T) {
	r1 := runRecordedMarket(50)
	r2 := runRecordedMarket(50)
	if i, ok := r1.Trace().Diff(r2.Trace()); !ok {
		t.Fatalf("identical runs diverged at sample %d", i)
	}
	if r1.Trace().Final != r2.Trace().Final {
		t.Fatal("identical runs folded to different finals")
	}
	ds := r1.Trace().Digests
	if len(ds) != 50 {
		t.Fatalf("recorded %d samples, want 50", len(ds))
	}
	if ds[0] == ds[1] {
		t.Error("consecutive rounds digested identically — digest not folding state")
	}
}

func TestReplayMatchesAndLocalizes(t *testing.T) {
	golden := runRecordedMarket(30).Trace()
	if err := check.Replay(golden, func(rec *check.Recorder) {
		ctl := core.NewLadderControl([]float64{150, 300, 450}, []float64{1, 2, 3})
		m := core.NewMarket(core.Config{InitialAllowance: 100}, []core.ClusterControl{ctl}, []int{2})
		a := m.AddTask(1, 0)
		b := m.AddTask(2, 1)
		a.Demand, b.Demand = 120, 250
		for i := 0; i < 30; i++ {
			m.StepOnce()
			a.Observed, b.Observed = a.Purchased(), b.Purchased()
			rec.RecordRound(m)
		}
	}); err != nil {
		t.Fatalf("faithful replay rejected: %v", err)
	}

	// A perturbed replay — the supply-constrained task's demand collapses
	// at round 10, dropping its bid from the cap toward the floor — must be
	// pinned to the first diverging sample.
	err := check.Replay(golden, func(rec *check.Recorder) {
		ctl := core.NewLadderControl([]float64{150, 300, 450}, []float64{1, 2, 3})
		m := core.NewMarket(core.Config{InitialAllowance: 100}, []core.ClusterControl{ctl}, []int{2})
		a := m.AddTask(1, 0)
		b := m.AddTask(2, 1)
		a.Demand, b.Demand = 120, 250
		for i := 0; i < 30; i++ {
			if i == 10 {
				b.Demand = 10
			}
			m.StepOnce()
			a.Observed, b.Observed = a.Purchased(), b.Purchased()
			rec.RecordRound(m)
		}
	})
	if err == nil {
		t.Fatal("perturbed replay accepted")
	}
	if !strings.Contains(err.Error(), "sample 10") {
		t.Errorf("divergence not localized to sample 10: %v", err)
	}
}

// Divergence localization must name the market round, not just the sample
// index — they are different axes (rounds count from 1, samples from 0), so
// a round-0 divergence used to read as "sample 0" and send the bisection
// one round astray.
func TestReplayLocalizesMarketRound(t *testing.T) {
	golden := runRecordedMarket(20).Trace()
	if got := golden.RoundAt(0); got != 1 {
		t.Fatalf("first market sample records round %d, want 1", got)
	}
	err := check.Replay(golden, func(rec *check.Recorder) {
		ctl := core.NewLadderControl([]float64{150, 300, 450}, []float64{1, 2, 3})
		m := core.NewMarket(core.Config{InitialAllowance: 100}, []core.ClusterControl{ctl}, []int{2})
		a := m.AddTask(1, 0)
		b := m.AddTask(2, 1)
		a.Demand, b.Demand = 120, 999 // diverges from the very first round
		for i := 0; i < 20; i++ {
			m.StepOnce()
			a.Observed, b.Observed = a.Purchased(), b.Purchased()
			rec.RecordRound(m)
		}
	})
	if err == nil {
		t.Fatal("perturbed replay accepted")
	}
	if !strings.Contains(err.Error(), "sample 0 (market round 1)") {
		t.Errorf("round-0 divergence not localized to market round 1: %v", err)
	}
}

// Arbitrary Record folds carry no market round and must not claim one.
func TestReplayNonMarketSampleHasNoRound(t *testing.T) {
	rec := check.NewRecorder("unit", 1, "raw", check.RecorderOptions{})
	rec.Record(42)
	if got := rec.Trace().RoundAt(0); got != 0 {
		t.Errorf("raw sample reports market round %d, want 0", got)
	}
}

func TestReplayLengthMismatch(t *testing.T) {
	golden := runRecordedMarket(20).Trace()
	err := check.Replay(golden, func(rec *check.Recorder) {
		short := runRecordedMarket(15)
		for _, d := range short.Trace().Digests {
			rec.Record(d)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "length") {
		t.Errorf("length mismatch not reported: %v", err)
	}
}

func TestRecorderOnPlatform(t *testing.T) {
	run := func() *check.Trace {
		p, _ := newCheckedPlatform(t, 4, setSpecs(t, "l1"))
		rec := check.NewRecorder("platform", 0, "l1/PPM/4W",
			check.RecorderOptions{SampleEvery: 100 * sim.Millisecond})
		p.AttachChecker(rec)
		p.Run(sim.Second)
		return rec.Trace()
	}
	a, b := run(), run()
	if len(a.Digests) == 0 {
		t.Fatal("recorder attached to a platform recorded nothing")
	}
	if i, ok := a.Diff(b); !ok {
		t.Fatalf("identical platform runs diverged at sample %d", i)
	}
	if a.FinalHex() != b.FinalHex() {
		t.Fatalf("finals differ: %s != %s", a.FinalHex(), b.FinalHex())
	}
}
