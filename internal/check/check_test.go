package check_test

import (
	"strings"
	"testing"

	"pricepower/internal/check"
	"pricepower/internal/core"
	"pricepower/internal/hw"
	"pricepower/internal/platform"
	"pricepower/internal/ppm"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/workload"
)

// newCheckedPlatform builds a TC2 platform under the PPM governor with the
// given specs placed on the LITTLE cluster and a fully-wired checker.
func newCheckedPlatform(t *testing.T, wtdp float64, specs []task.Spec) (*platform.Platform, *check.Checker) {
	t.Helper()
	p := platform.NewTC2()
	cfg := ppm.DefaultConfig(wtdp)
	cfg.Profiles = func(name string, ct hw.CoreType) (float64, bool) {
		pr, ok := workload.ProfileFor(name)
		if !ok {
			return 0, false
		}
		return pr.Demand(ct), true
	}
	g := ppm.New(cfg)
	p.SetGovernor(g)
	var little []int
	for _, c := range p.Chip.Cores {
		if c.Type() == hw.Little {
			little = append(little, c.ID)
		}
	}
	for i, s := range specs {
		p.AddTask(s, little[i%len(little)])
	}
	thermal := hw.NewThermalModel(p.Chip, nil, 25)
	p.AttachThermal(thermal)
	c := check.New(check.Options{Market: g.Market(), Thermal: thermal, TDP: wtdp})
	p.AttachChecker(c)
	return p, c
}

func setSpecs(t *testing.T, name string) []task.Spec {
	t.Helper()
	set, ok := workload.SetByName(name)
	if !ok {
		t.Fatalf("unknown set %s", name)
	}
	specs, err := set.Specs(1)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// A healthy simulation must produce zero violations.
func TestCleanRunNoViolations(t *testing.T) {
	p, c := newCheckedPlatform(t, 4, setSpecs(t, "m2"))
	p.Run(2 * sim.Second)
	if err := c.Err(); err != nil {
		t.Fatalf("clean run reported violations: %v", err)
	}
	if c.Total() != 0 || len(c.Violations()) != 0 {
		t.Fatalf("Total=%d Violations=%d, want 0/0", c.Total(), len(c.Violations()))
	}
}

func hasInvariant(vs []check.Violation, id string) bool {
	for _, v := range vs {
		if v.Invariant == id {
			return true
		}
	}
	return false
}

// Pulling a live task's entity off its run queue behind the platform's back
// must trip task-accounting.
func TestTaskAccountingTrip(t *testing.T) {
	p, c := newCheckedPlatform(t, 0, setSpecs(t, "m2"))
	p.Run(100 * sim.Millisecond)
	if c.Total() != 0 {
		t.Fatalf("unexpected violations before corruption: %v", c.Err())
	}
	tk := p.Tasks()[0]
	if p.Migrating(tk) {
		t.Skip("task mid-migration at snapshot point")
	}
	p.Queue(p.CoreOf(tk)).Remove(p.EntityOf(tk))
	c.CheckTick(p, p.Now())
	if !hasInvariant(c.Violations(), "task-accounting") {
		t.Fatalf("dequeued live task not reported; got %v", c.Violations())
	}
}

// A checker that has watermarked one platform must flag a state whose
// vruntime and energy meters run backwards — simulated by pointing the same
// checker at a fresh platform of identical shape (all meters at zero).
func TestMonotonicityWatermarks(t *testing.T) {
	specs := setSpecs(t, "m2")
	p1, c := newCheckedPlatform(t, 0, specs)
	p1.Run(500 * sim.Millisecond)
	if c.Total() != 0 {
		t.Fatalf("unexpected violations: %v", c.Err())
	}
	p2 := platform.NewTC2()
	var little []int
	for _, cr := range p2.Chip.Cores {
		if cr.Type() == hw.Little {
			little = append(little, cr.ID)
		}
	}
	for i, s := range specs {
		p2.AddTask(s, little[i%len(little)])
	}
	p2.Run(sim.Millisecond)
	c.CheckTick(p2, p1.Now())
	if !hasInvariant(c.Violations(), "vruntime-monotone") {
		t.Errorf("vruntime rollback not reported; got %v", c.Violations())
	}
	if !hasInvariant(c.Violations(), "energy-monotone") {
		t.Errorf("energy rollback not reported; got %v", c.Violations())
	}
}

// singleCoreMarket builds a 1-cluster 1-core market for the market-level
// invariant trips.
func singleCoreMarket(cfg core.Config, ladder, power []float64) *core.Market {
	ctl := core.NewLadderControl(ladder, power)
	return core.NewMarket(cfg, []core.ClusterControl{ctl}, []int{1})
}

// Draining the global allowance below the b_min·(n+1) floor must trip
// allowance-floor (and the top-level budget conservation that the drained
// allowance no longer matches the fan-out).
func TestAllowanceFloorTrip(t *testing.T) {
	m := singleCoreMarket(core.Config{InitialAllowance: 100}, []float64{300}, nil)
	a := m.AddTask(1, 0)
	a.Demand = 200
	m.StepOnce()
	m.SetAllowance(0)
	c := check.New(check.Options{Market: m})
	c.CheckMarket(m, 0)
	if !hasInvariant(c.Violations(), "allowance-floor") {
		t.Errorf("drained allowance not reported; got %v", c.Violations())
	}
	if !hasInvariant(c.Violations(), "budget-conserved") {
		t.Errorf("fan-out mismatch not reported; got %v", c.Violations())
	}
}

// Growing the allowance after distribution breaks ΣA_v = A.
func TestBudgetConservationTrip(t *testing.T) {
	m := singleCoreMarket(core.Config{InitialAllowance: 100}, []float64{300}, nil)
	a := m.AddTask(1, 0)
	a.Demand = 200
	m.StepOnce()
	c := check.New(check.Options{Market: m})
	c.CheckMarket(m, 0)
	if c.Total() != 0 {
		t.Fatalf("consistent market reported violations: %v", c.Err())
	}
	m.SetAllowance(2 * m.Allowance())
	c.CheckMarket(m, 0)
	if !hasInvariant(c.Violations(), "budget-conserved") {
		t.Errorf("inflated allowance not reported; got %v", c.Violations())
	}
}

// A market whose cheapest rung already exceeds the TDP can never settle
// under the budget: tdp-settled must fire once the window elapses, while
// state-classified stays quiet (the chip agent correctly reports
// emergency).
func TestTDPSettledTrip(t *testing.T) {
	m := singleCoreMarket(core.Config{InitialAllowance: 100, Wtdp: 1},
		[]float64{300}, []float64{10})
	a := m.AddTask(1, 0)
	a.Demand = 200
	c := check.New(check.Options{Market: m, SettlingRounds: 1})
	for i := 0; i < 8; i++ {
		m.StepOnce()
		a.Observed = a.Purchased()
		c.CheckMarket(m, 0)
	}
	if !hasInvariant(c.Violations(), "tdp-settled") {
		t.Errorf("10 W chip under a 1 W TDP not reported; got %v", c.Violations())
	}
	if hasInvariant(c.Violations(), "state-classified") {
		t.Errorf("consistent state machine flagged: %v", c.Violations())
	}
}

// A bounded excursion above the slack band — as the EWMA trails a workload
// burst the state machine is already throttling — must NOT trip
// tdp-settled: only streaks longer than MaxOverRounds mean control is
// lost. Regression for a false positive surfaced on PPM/h2 under a 4 W
// cap, where a one-round 0.04% overshoot was reported while the chip
// agent sat in emergency with power back under the band the next round.
func TestTDPSettledTransientTolerated(t *testing.T) {
	m := singleCoreMarket(core.Config{InitialAllowance: 100, Wtdp: 1},
		[]float64{300}, []float64{10})
	a := m.AddTask(1, 0)
	a.Demand = 200
	c := check.New(check.Options{Market: m, SettlingRounds: 1, MaxOverRounds: 3})
	for i := 0; i < 4; i++ { // rounds 2..4 are checked and over: streak 3
		m.StepOnce()
		a.Observed = a.Purchased()
		c.CheckMarket(m, 0)
	}
	if hasInvariant(c.Violations(), "tdp-settled") {
		t.Errorf("transient within MaxOverRounds reported: %v", c.Violations())
	}
	// One more over-budget round exceeds the window.
	m.StepOnce()
	a.Observed = a.Purchased()
	c.CheckMarket(m, 0)
	if !hasInvariant(c.Violations(), "tdp-settled") {
		t.Errorf("persistent excursion past MaxOverRounds not reported; got %v", c.Violations())
	}
}

// FailFast promotes the first violation to a panic.
func TestFailFastPanics(t *testing.T) {
	m := singleCoreMarket(core.Config{InitialAllowance: 100}, []float64{300}, nil)
	a := m.AddTask(1, 0)
	a.Demand = 200
	m.StepOnce()
	m.SetAllowance(0)
	c := check.New(check.Options{Market: m, FailFast: true})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic from FailFast checker")
		}
		if !strings.Contains(r.(string), "invariant violation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c.CheckMarket(m, 0)
}

// MaxViolations caps the recorded list while Total keeps counting.
func TestMaxViolationsCap(t *testing.T) {
	m := singleCoreMarket(core.Config{InitialAllowance: 100}, []float64{300}, nil)
	a := m.AddTask(1, 0)
	a.Demand = 200
	m.StepOnce()
	m.SetAllowance(0)
	c := check.New(check.Options{Market: m, MaxViolations: 2})
	for i := 0; i < 5; i++ {
		c.CheckMarket(m, 0)
	}
	if len(c.Violations()) != 2 {
		t.Errorf("recorded %d violations, want cap of 2", len(c.Violations()))
	}
	if c.Total() <= 2 {
		t.Errorf("Total=%d, want > 2", c.Total())
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "invariant violation") {
		t.Errorf("Err() = %v", err)
	}
}
