// Package check is the correctness layer of the simulator: a pluggable
// runtime invariant checker plus a deterministic-replay harness (digest.go).
//
// The paper's whole argument rests on market invariants — prices stay
// non-negative (§3.2.1), supply meets demand at clearing (P_c = Σb_t/S_c ⇒
// Σs_t = S_c), budgets are conserved down the chip→cluster→core→task
// hierarchy (§3.2.3's allowance distribution), the chip's smoothed power
// settles under the TDP budget (§3.2.3's state machine), and frequencies
// stay on the discrete V-F ladder (§3.2.2). A regression in the market or
// the platform hot paths would otherwise only show up as silently wrong
// Table/Figure numbers. The Checker asserts those properties continuously
// while a simulation runs; it attaches to a platform via
// Platform.AttachChecker and costs nothing when detached.
//
// Checked invariants (identifiers appear in Violation.Invariant):
//
//	task-accounting    no task lost or duplicated across migrations: the
//	                   per-core index partitions the live tasks, frozen
//	                   (mid-migration) tasks sit on no run queue, every
//	                   other task sits on exactly its core's queue
//	vruntime-monotone  per-queue min-vruntime and per-entity vruntime
//	                   never decrease (CFS fairness bookkeeping)
//	util-bounds        core utilization stays in [0,1]
//	freq-on-ladder     every cluster's V-F level indexes its ladder and
//	                   the supply equals that rung's frequency
//	power-envelope     cluster power stays inside the [all-idle, all-busy]
//	                   envelope of its current rung; gated clusters draw
//	                   exactly their off-power
//	energy-monotone    energy meters never run backwards
//	thermal-monotone   under (near-)constant power each cluster's die
//	                   temperature moves monotonically toward its RC
//	                   steady state (first-order model, §2's thermal TDP)
//	tdp-settled        after a settling window the EWMA-smoothed chip
//	                   power stays within slack of the TDP budget; brief
//	                   burst excursions are tolerated while the state
//	                   machine throttles, persistent ones trip
//	price-nonneg       every core's price and base price is finite, ≥ 0
//	bid-bounds         bids respect the b_min floor and stay finite;
//	                   savings stay in [0, SavingsCap·a_t] against the
//	                   allowance snapshotted at the last settlement
//	                   (Eq. 1 clamp)
//	budget-conserved   Σ_v A_v = A over occupied clusters, Σ_c A_c = A_v,
//	                   Σ_t a_t = A_c at every market level, each sum
//	                   captured when distribution wrote it (LBT moves
//	                   tasks between cores after distribution, so live
//	                   re-sums are not conserved — see DESIGN.md §7)
//	market-clearing    on every core with a positive price the supplies
//	                   handed out at the last price discovery sum to the
//	                   supply that discovery cleared against
//	state-classified   the chip agent's state matches its smoothed power
//	                   against the effective Wth/Wtdp boundaries (the
//	                   configured ones, tightened while sensor-degraded)
//	allowance-floor    the global allowance respects the b_min·(n+1) floor
//	offline-no-supply  a hot-unplugged core supplies no PUs and executes
//	                   nothing (internal/fault's CoreUnplug)
//	degraded-guard     sensor-degraded mode tightens the TDP guard band by
//	                   exactly DegradedGuard and healthy mode runs on the
//	                   configured boundaries
//
// Market-level invariants run once per market round (detected by watching
// Market.Round() advance); platform-level invariants run every tick.
package check

import (
	"fmt"
	"math"

	"pricepower/internal/core"
	"pricepower/internal/hw"
	"pricepower/internal/platform"
	"pricepower/internal/sim"
	"pricepower/internal/telemetry"
)

// Violation is one observed invariant breach.
type Violation struct {
	Time      sim.Time
	Round     int // market round at the time (0 when no market attached)
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%v round=%d %s: %s", v.Time, v.Round, v.Invariant, v.Detail)
}

// Options configures a Checker.
type Options struct {
	// Market enables the market-level invariants (price, budget, clearing,
	// TDP state machine). Leave nil for market-less governors (HPM, HL).
	Market *core.Market
	// Thermal enables the thermal-monotonicity invariant.
	Thermal *hw.ThermalModel
	// TDP enables the tdp-settled invariant for market-less governors: the
	// checker maintains its own EWMA of chip power (the market's own
	// smoothed power is used when Market is set). 0 disables the check.
	TDP float64
	// SettlingRounds is how many market rounds (or, without a market,
	// governor-period-scale ticks/32) to wait before enforcing tdp-settled.
	// Default 160 rounds ≈ 5 s at the paper's 31.7 ms cadence.
	SettlingRounds int
	// TDPSlack is the tolerated relative excursion of the smoothed power
	// above the TDP (default 0.10). Discrete V-F rungs make the settled
	// system oscillate around the budget (§3.2.3); the EWMA removes most
	// but not all of that ripple.
	TDPSlack float64
	// MaxOverRounds is how many consecutive checked rounds the smoothed
	// power may ride above the slack band before tdp-settled trips
	// (default 3). The EWMA trails raw power by a round while the chip
	// agent throttles, so a workload burst can push it briefly over the
	// band even with the state machine in emergency and reacting; only a
	// persistent excursion means control is lost.
	MaxOverRounds int
	// Telemetry, when set, mirrors every violation into the structured
	// event stream (kind "violation") so breaches land in the same JSONL /
	// ring timeline as the market events that caused them. When the checker
	// is attached to a platform and this is nil, CheckTick adopts the
	// platform's emitter automatically.
	Telemetry *telemetry.Emitter
	// FailFast panics on the first violation (tests prefer collecting).
	FailFast bool
	// MaxViolations bounds the recorded list (default 100); further
	// breaches only increment the total count.
	MaxViolations int
}

func (o Options) withDefaults() Options {
	if o.SettlingRounds <= 0 {
		o.SettlingRounds = 160
	}
	if o.TDPSlack <= 0 {
		o.TDPSlack = 0.10
	}
	if o.MaxOverRounds <= 0 {
		o.MaxOverRounds = 3
	}
	if o.MaxViolations <= 0 {
		o.MaxViolations = 100
	}
	return o
}

// Checker implements platform.Checker: it validates the invariant list
// above at the end of every platform tick.
type Checker struct {
	opt Options

	violations []Violation
	total      int

	lastRound   int
	ticks       int64
	minVrun     []float64       // per-queue min-vruntime watermarks
	entityVrun  map[int]float64 // per-entity vruntime watermarks
	lastJoules  []float64       // chip meter + per-cluster meters
	lastPower   []float64       // per-cluster power at the previous tick
	lastTemp    []float64       // per-cluster temperature at the previous tick
	haveThermal bool
	ewma        float64 // private power EWMA for market-less TDP checking
	ewmaSeeded  bool
	overStreak  int // consecutive checked rounds above the TDP slack band
}

// New builds a Checker. Attach it with Platform.AttachChecker; drive it
// manually with CheckTick (or CheckMarket for platform-less market runs).
func New(opt Options) *Checker {
	return &Checker{opt: opt.withDefaults(), entityVrun: make(map[int]float64)}
}

// Violations returns the recorded breaches (capped at MaxViolations).
func (c *Checker) Violations() []Violation { return c.violations }

// Total reports how many breaches occurred, including unrecorded ones.
func (c *Checker) Total() int { return c.total }

// Err summarizes the violations as one error, or nil when the run was
// clean.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	first := c.violations[0]
	return fmt.Errorf("check: %d invariant violation(s), first: %s", c.total, first)
}

func (c *Checker) report(now sim.Time, invariant, format string, args ...interface{}) {
	v := Violation{Time: now, Round: c.lastRound, Invariant: invariant,
		Detail: fmt.Sprintf(format, args...)}
	if em := c.opt.Telemetry; em.Enabled(telemetry.KindViolation) {
		ev := telemetry.E(telemetry.KindViolation)
		ev.Time = now
		ev.Round = v.Round
		ev.Name = invariant
		ev.Detail = v.Detail
		em.Emit(ev)
	}
	if c.opt.FailFast {
		panic("check: invariant violation: " + v.String())
	}
	c.total++
	if len(c.violations) < c.opt.MaxViolations {
		c.violations = append(c.violations, v)
	}
}

// CheckTick implements platform.Checker.
func (c *Checker) CheckTick(p *platform.Platform, now sim.Time) {
	c.ticks++
	if c.opt.Telemetry == nil {
		c.opt.Telemetry = p.Telemetry()
	}
	c.checkTaskAccounting(p, now)
	c.checkVruntime(p, now)
	c.checkHardware(p, now)
	c.checkEnergy(p, now)
	c.checkThermal(p, now)
	if m := c.opt.Market; m != nil {
		if r := m.Round(); r != c.lastRound {
			c.lastRound = r
			c.CheckMarket(m, now)
		}
	} else if c.opt.TDP > 0 {
		// No market: maintain a private EWMA at the same horizon the chip
		// agent uses, sampled every tick (the smoothing constant is per
		// bid round in the market, so stretch it by a nominal 32 ticks).
		w := p.Power()
		if !c.ewmaSeeded {
			c.ewma, c.ewmaSeeded = w, true
		} else {
			const alpha = 0.3 / 32
			c.ewma = alpha*w + (1-alpha)*c.ewma
		}
		if c.ticks > int64(c.opt.SettlingRounds)*32 {
			// Ticks are ~32× denser than market rounds; scale the
			// tolerated streak to keep the same wall-clock window.
			if limit := c.opt.TDP * (1 + c.opt.TDPSlack); c.ewma > limit {
				c.overStreak++
				if c.overStreak > c.opt.MaxOverRounds*32 {
					c.report(now, "tdp-settled", "smoothed chip power %.3f W above %.3f W (TDP %.2f W + %.0f%% slack) for %d consecutive ticks",
						c.ewma, limit, c.opt.TDP, c.opt.TDPSlack*100, c.overStreak)
				}
			} else {
				c.overStreak = 0
			}
		}
	}
}

// checkTaskAccounting pins the no-task-lost-or-duplicated invariant across
// migrations: the per-core index partitions the live task set, a frozen
// task is enqueued nowhere, and every other task is enqueued on exactly its
// own core's queue.
func (c *Checker) checkTaskAccounting(p *platform.Platform, now sim.Time) {
	tasks := p.Tasks()
	indexed := 0
	for core := 0; core < len(p.Chip.Cores); core++ {
		indexed += p.NumTasksOnCore(core)
	}
	if indexed != len(tasks) {
		c.report(now, "task-accounting", "per-core index holds %d tasks, platform has %d live",
			indexed, len(tasks))
	}
	for _, t := range tasks {
		core := p.CoreOf(t)
		e := p.EntityOf(t)
		if core < 0 || core >= len(p.Chip.Cores) {
			c.report(now, "task-accounting", "task %s mapped to invalid core %d", t.Name, core)
			continue
		}
		if p.Migrating(t) {
			if e.Queued() {
				c.report(now, "task-accounting", "task %s frozen mid-migration but still enqueued", t.Name)
			}
			continue
		}
		if !p.Queue(core).Contains(e) {
			c.report(now, "task-accounting", "task %s mapped to core %d but not on its queue", t.Name, core)
		}
	}
	for core := 0; core < len(p.Chip.Cores); core++ {
		q := p.Queue(core)
		live := 0
		for _, t := range p.TasksOnCore(core) {
			if !p.Migrating(t) {
				live++
			}
		}
		if q.Len() != live {
			c.report(now, "task-accounting", "core %d queue holds %d entities, index expects %d",
				core, q.Len(), live)
		}
	}
}

// checkVruntime pins CFS bookkeeping: per-queue min-vruntime and per-entity
// vruntime are monotone non-decreasing.
func (c *Checker) checkVruntime(p *platform.Platform, now sim.Time) {
	if c.minVrun == nil {
		c.minVrun = make([]float64, len(p.Chip.Cores))
		for i := range c.minVrun {
			c.minVrun[i] = math.Inf(-1)
		}
	}
	for core := 0; core < len(p.Chip.Cores); core++ {
		mv := p.Queue(core).MinVruntime()
		if mv < c.minVrun[core] {
			c.report(now, "vruntime-monotone", "core %d min-vruntime fell %.9g -> %.9g",
				core, c.minVrun[core], mv)
		}
		c.minVrun[core] = mv
	}
	for _, t := range p.Tasks() {
		e := p.EntityOf(t)
		v := e.VRuntime()
		if prev, ok := c.entityVrun[e.ID]; ok && v < prev {
			c.report(now, "vruntime-monotone", "task %s vruntime fell %.9g -> %.9g", t.Name, prev, v)
		}
		c.entityVrun[e.ID] = v
	}
}

// checkHardware pins the per-tick hardware invariants: utilizations in
// [0,1], V-F levels on the ladder, and cluster power inside the envelope of
// the current rung.
func (c *Checker) checkHardware(p *platform.Platform, now sim.Time) {
	const eps = 1e-9
	for _, core := range p.Chip.Cores {
		u := p.Utilization(core.ID)
		if u < -eps || u > 1+eps || math.IsNaN(u) {
			c.report(now, "util-bounds", "core %d utilization %.6g outside [0,1]", core.ID, u)
		}
		// offline-no-supply: a hot-unplugged core supplies no PUs and
		// executes nothing, whatever its cluster is doing.
		if core.Offline {
			if s := core.SupplyPU(); s != 0 {
				c.report(now, "offline-no-supply", "core %d offline but supplies %.1f PU", core.ID, s)
			}
			if u > eps {
				c.report(now, "offline-no-supply", "core %d offline but utilization %.6g > 0", core.ID, u)
			}
		}
	}
	for _, cl := range p.Chip.Clusters {
		lvl := cl.Level()
		if lvl < 0 || lvl >= cl.NumLevels() {
			c.report(now, "freq-on-ladder", "cluster %d level %d outside ladder [0,%d)",
				cl.ID, lvl, cl.NumLevels())
			continue
		}
		pw := hw.ClusterPower(cl)
		if !cl.On {
			if math.Abs(pw-cl.Spec.OffPower) > eps {
				c.report(now, "power-envelope", "cluster %d gated but draws %.4f W (off-power %.4f W)",
					cl.ID, pw, cl.Spec.OffPower)
			}
			continue
		}
		if got, want := cl.SupplyPU(), float64(cl.Spec.Levels[lvl].FreqMHz); got != want {
			c.report(now, "freq-on-ladder", "cluster %d supply %.1f PU not rung %d's %.1f",
				cl.ID, got, lvl, want)
		}
		lo := hw.ClusterPowerAt(cl, lvl, 0)
		hi := hw.ClusterPowerAt(cl, lvl, 1)
		if pw < lo-1e-6 || pw > hi+1e-6 {
			c.report(now, "power-envelope", "cluster %d power %.4f W outside rung %d envelope [%.4f, %.4f]",
				cl.ID, pw, lvl, lo, hi)
		}
	}
}

// checkEnergy pins meter monotonicity: integrated joules never decrease.
func (c *Checker) checkEnergy(p *platform.Platform, now sim.Time) {
	n := 1 + len(p.Chip.Clusters)
	if c.lastJoules == nil {
		c.lastJoules = make([]float64, n)
		for i := range c.lastJoules {
			c.lastJoules[i] = math.Inf(-1)
		}
	}
	j := p.Meter().Joules()
	if j < c.lastJoules[0] {
		c.report(now, "energy-monotone", "chip meter fell %.9g -> %.9g J", c.lastJoules[0], j)
	}
	c.lastJoules[0] = j
	for i := range p.Chip.Clusters {
		j := p.ClusterMeter(i).Joules()
		if j < c.lastJoules[1+i] {
			c.report(now, "energy-monotone", "cluster %d meter fell %.9g -> %.9g J",
				i, c.lastJoules[1+i], j)
		}
		c.lastJoules[1+i] = j
	}
}

// checkThermal pins the RC model's monotone approach: while a cluster's
// power is (near-)constant, its temperature must move toward — and never
// overshoot past — the steady state T_amb + R·P for that power.
func (c *Checker) checkThermal(p *platform.Platform, now sim.Time) {
	th := c.opt.Thermal
	if th == nil {
		return
	}
	n := len(p.Chip.Clusters)
	if !c.haveThermal {
		c.lastPower = make([]float64, n)
		c.lastTemp = make([]float64, n)
		for i, cl := range p.Chip.Clusters {
			c.lastPower[i] = hw.ClusterPower(cl)
			c.lastTemp[i] = th.Temp(i)
		}
		c.haveThermal = true
		return
	}
	for i, cl := range p.Chip.Clusters {
		pw := hw.ClusterPower(cl)
		temp := th.Temp(i)
		// Only judge steps taken under constant power: the steady-state
		// target is only well-defined between power changes.
		if rel := math.Abs(pw - c.lastPower[i]); rel <= 1e-9*(1+math.Abs(pw)) {
			ss := th.SteadyState(i)
			lo := math.Min(c.lastTemp[i], ss) - 1e-9
			hi := math.Max(c.lastTemp[i], ss) + 1e-9
			if temp < lo || temp > hi {
				c.report(now, "thermal-monotone",
					"cluster %d temp %.6f °C left [%.6f, %.6f] (prev %.6f, steady %.6f) at constant power",
					i, temp, lo, hi, c.lastTemp[i], ss)
			}
		}
		c.lastPower[i] = pw
		c.lastTemp[i] = temp
	}
}

// CheckMarket runs the market-level invariants once (called automatically
// after each round when the checker is attached to a platform; platform-
// less harnesses — the Table 1–3 reproductions — call it directly after
// each StepOnce).
func (c *Checker) CheckMarket(m *core.Market, now sim.Time) {
	cfg := m.Config()
	c.lastRound = m.Round()

	// price-nonneg / bid-bounds / market-clearing, per cluster and core.
	for _, v := range m.Clusters {
		for _, ca := range v.Cores {
			// The cluster agent may have moved the V-F level after this
			// round's price discovery; clearing is judged at the supply the
			// price was discovered against.
			supply := ca.DiscoveredSupply()
			price := ca.Price()
			if price < 0 || math.IsNaN(price) || math.IsInf(price, 0) {
				c.report(now, "price-nonneg", "cluster %d core %d price %v", v.ID, ca.ID, price)
			}
			if bp := ca.BasePrice(); bp < 0 || math.IsNaN(bp) || math.IsInf(bp, 0) {
				c.report(now, "price-nonneg", "cluster %d core %d base price %v", v.ID, ca.ID, bp)
			}
			for _, t := range ca.Tasks {
				b := t.Bid()
				if math.IsNaN(b) || math.IsInf(b, 0) || b < cfg.MinBid-1e-12 {
					c.report(now, "bid-bounds", "task %d bid %v below b_min %v", t.ID, b, cfg.MinBid)
				}
				s := t.Savings()
				if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
					c.report(now, "bid-bounds", "task %d savings %v negative", t.ID, s)
				}
				// The cap is enforced by settleSavings against the
				// allowance of the round that last ran the clamp (frozen
				// clusters skip bidding while allowances keep moving), so
				// judge against that snapshot.
				if cap := cfg.SavingsCap * t.SavingsBasis(); s > cap+1e-9 {
					c.report(now, "bid-bounds", "task %d savings %.6g above cap %.6g (basis allowance %.6g)",
						t.ID, s, cap, t.SavingsBasis())
				}
			}
			// Clearing, judged on the quantities snapshotted at discovery
			// (the LBT module may migrate agents — and their purchases —
			// to other cores later in the same round).
			cleared := ca.ClearedSupply()
			if price > 0 {
				if math.Abs(cleared-supply) > 1e-6*(1+supply) {
					c.report(now, "market-clearing", "cluster %d core %d cleared %.6f ≠ supply %.6f",
						v.ID, ca.ID, cleared, supply)
				}
			} else if cleared != 0 {
				c.report(now, "market-clearing", "cluster %d core %d cleared %.6g at zero price",
					v.ID, ca.ID, cleared)
			}
		}
	}

	// budget-conserved, at each level of the hierarchy. Each level is
	// judged on the Σ snapshotted when the allowance was fanned out (the
	// DistributedAllowance accessors): task migrations move agents — and
	// their allowances — across cores and clusters after distribution
	// within the same governor tick, so live sums over the current
	// membership do not have to match.
	taskCount := 0
	for _, v := range m.Clusters {
		taskCount += v.TaskCount()
		if d, a := v.DistributedAllowance(), v.Allowance(); math.Abs(d-a) > 1e-6*(1+a) {
			c.report(now, "budget-conserved", "cluster %d: ΣA_c %.6g ≠ A_v %.6g", v.ID, d, a)
		}
		for _, ca := range v.Cores {
			if d, a := ca.DistributedAllowance(), ca.Allowance(); math.Abs(d-a) > 1e-6*(1+a) {
				c.report(now, "budget-conserved", "cluster %d core %d: Σa_t %.6g ≠ A_c %.6g",
					v.ID, ca.ID, d, a)
			}
		}
	}
	if d := m.DistributedAllowance(); d > 0 && math.Abs(d-m.Allowance()) > 1e-6*(1+m.Allowance()) {
		c.report(now, "budget-conserved", "ΣA_v %.6g ≠ A %.6g", d, m.Allowance())
	}

	// allowance-floor: A ≥ b_min·(n+1) after every round.
	if floor := cfg.MinBid * float64(taskCount+1); m.Allowance() < floor-1e-9 {
		c.report(now, "allowance-floor", "allowance %.6g below floor %.6g (%d tasks)",
			m.Allowance(), floor, taskCount)
	}

	// state-classified: the chip agent's state matches its smoothed power.
	// Judged against the *effective* boundaries — while the market runs
	// degraded the guard band is tightened, and classifying against the
	// configured Wth/Wtdp would flag every correctly-early throttle.
	w := m.SmoothedPower()
	effWth, effWtdp := m.EffectiveWth(), m.EffectiveWtdp()
	want := core.Normal
	if cfg.Wtdp > 0 {
		switch {
		case w >= effWtdp:
			want = core.Emergency
		case w >= effWth:
			want = core.Threshold
		}
	}
	if m.State() != want {
		c.report(now, "state-classified", "state %v but smoothed power %.4f W classifies as %v (Wth %.2f, Wtdp %.2f)",
			m.State(), w, want, effWth, effWtdp)
	}

	// degraded-guard: sensor-degraded mode must tighten the guard band,
	// never widen it — and a healthy market must run on the configured
	// boundaries exactly.
	if cfg.Wtdp > 0 {
		switch {
		case m.Degraded() && effWtdp > cfg.Wtdp*cfg.DegradedGuard+1e-9:
			c.report(now, "degraded-guard", "degraded but effective Wtdp %.4f W not tightened (Wtdp %.2f, guard %.2f)",
				effWtdp, cfg.Wtdp, cfg.DegradedGuard)
		case !m.Degraded() && (effWtdp != cfg.Wtdp || effWth != cfg.Wth):
			c.report(now, "degraded-guard", "healthy but effective boundaries (%.4f, %.4f) ≠ configured (%.2f, %.2f)",
				effWth, effWtdp, cfg.Wth, cfg.Wtdp)
		}
	}

	// tdp-settled: after the settling window the smoothed power holds the
	// budget (the buffer-zone design of §3.2.3). Brief excursions above
	// the band are tolerated while the state machine throttles — only a
	// streak longer than MaxOverRounds means the controller lost control.
	if cfg.Wtdp > 0 && m.Round() > c.opt.SettlingRounds {
		if limit := cfg.Wtdp * (1 + c.opt.TDPSlack); w > limit {
			c.overStreak++
			if c.overStreak > c.opt.MaxOverRounds {
				c.report(now, "tdp-settled", "smoothed power %.4f W above %.4f W (TDP %.2f W + %.0f%% slack) for %d consecutive rounds at round %d",
					w, limit, cfg.Wtdp, c.opt.TDPSlack*100, c.overStreak, m.Round())
			}
		} else {
			c.overStreak = 0
		}
	}
}

var _ platform.Checker = (*Checker)(nil)
