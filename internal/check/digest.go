package check

import (
	"fmt"
	"math"

	"pricepower/internal/core"
	"pricepower/internal/platform"
	"pricepower/internal/sim"
)

// Deterministic replay
//
// A whole experiment is a pure function of its configuration and seed (the
// sim package's contract), so two runs of the same build must agree bit for
// bit. The Recorder captures that as a sequence of cheap digests — an
// FNV-1a fold over prices, frequencies, and allocations at every market
// round (and, optionally, over the platform state on a fixed sampling
// grid). Replay re-runs the experiment and reports the first sample where
// the digests diverge, turning "the numbers drifted" into "round 217
// diverged", which bisects straight to the responsible change. The same
// mechanism pins the pooled-parallel market rounds to the sequential
// order's results: identical digests, not just statistically similar ones.
//
// Digests are bit-exact over float64 values, which is exactly the point —
// but it also means they are specific to a compilation target's floating-
// point contraction choices. Goldens are regenerated with -update (see
// internal/exp/golden_test.go) rather than computed by hand.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Digest is an incremental FNV-1a 64-bit fold.
type Digest uint64

// NewDigest returns an empty digest (the FNV-1a offset basis).
func NewDigest() Digest { return fnvOffset64 }

// Uint64 folds one 64-bit word, byte by byte.
func (d Digest) Uint64(v uint64) Digest {
	h := uint64(d)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return Digest(h)
}

// Int folds a signed integer.
func (d Digest) Int(v int64) Digest { return d.Uint64(uint64(v)) }

// Float folds a float64 bit pattern (normalizing the two zeros so that
// -0.0 and +0.0 — indistinguishable to every consumer — digest alike).
func (d Digest) Float(f float64) Digest {
	if f == 0 {
		f = 0
	}
	return d.Uint64(math.Float64bits(f))
}

// Bool folds a boolean.
func (d Digest) Bool(b bool) Digest {
	if b {
		return d.Uint64(1)
	}
	return d.Uint64(0)
}

// String folds a string.
func (d Digest) String(s string) Digest {
	h := uint64(d)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return Digest(h)
}

// MarketDigest folds the complete observable market state: per-core prices
// and base prices, per-cluster V-F positions and freeze flags, every
// agent's bid/savings/allowance/purchase, and the chip agent's allowance,
// state and smoothed power.
func MarketDigest(m *core.Market) uint64 {
	d := NewDigest().
		Int(int64(m.Round())).
		Float(m.Allowance()).
		Float(m.SmoothedPower()).
		Int(int64(m.State()))
	for _, v := range m.Clusters {
		d = d.Int(int64(v.Control.Level())).Bool(v.Frozen()).Float(v.Allowance())
		for _, ca := range v.Cores {
			d = d.Float(ca.Price()).Float(ca.BasePrice()).Float(ca.Allowance())
			for _, t := range ca.Tasks {
				d = d.Int(int64(t.ID)).Float(t.Bid()).Float(t.Savings()).
					Float(t.Allowance()).Float(t.Purchased())
			}
		}
	}
	return uint64(d)
}

// PlatformDigest folds the governor-agnostic platform state: cluster
// power/level, core utilizations, and every task's placement, weight,
// delivered work and progress.
func PlatformDigest(p *platform.Platform) uint64 {
	d := NewDigest().Int(int64(p.Now())).Float(p.Power())
	for _, cl := range p.Chip.Clusters {
		d = d.Bool(cl.On).Int(int64(cl.Level())).Int(int64(cl.Transitions()))
	}
	for _, c := range p.Chip.Cores {
		d = d.Float(p.Utilization(c.ID))
	}
	for _, t := range p.Tasks() {
		d = d.Int(int64(t.ID)).Int(int64(p.CoreOf(t))).Bool(p.Migrating(t)).
			Float(p.Weight(t)).Float(p.TotalWork(t)).Float(t.Heartbeats())
	}
	return uint64(d)
}

// Trace is one recorded run: identity plus the digest sequence.
type Trace struct {
	Name   string `json:"name"`
	Seed   uint64 `json:"seed"`
	Config string `json:"config"`
	// Digests holds one sample per recorded point (market round or
	// platform sampling period).
	Digests []uint64 `json:"-"`
	// Rounds holds, per sample, the market round the digest was taken
	// after (0 for non-market samples: platform grid points and arbitrary
	// Record folds). Sample indices and market rounds are different axes —
	// the first market sample is round 1, and interleaved platform samples
	// shift every later index — so divergence localization reports both.
	Rounds []int `json:"-"`
	// Final folds the whole sequence into one word (order-sensitive).
	Final uint64 `json:"-"`
}

// RoundAt reports the market round of sample i, or 0 when the sample is
// not a market round (or the trace predates round tracking).
func (t *Trace) RoundAt(i int) int {
	if i < 0 || i >= len(t.Rounds) {
		return 0
	}
	return t.Rounds[i]
}

// FinalHex renders the folded digest for golden fixtures.
func (t *Trace) FinalHex() string { return fmt.Sprintf("%016x", t.Final) }

// Diff compares two traces sample by sample. It returns the index of the
// first diverging sample and false, or (-1, true) when the traces agree
// (including in length).
func (t *Trace) Diff(other *Trace) (int, bool) {
	n := len(t.Digests)
	if len(other.Digests) < n {
		n = len(other.Digests)
	}
	for i := 0; i < n; i++ {
		if t.Digests[i] != other.Digests[i] {
			return i, false
		}
	}
	if len(t.Digests) != len(other.Digests) {
		return n, false
	}
	return -1, true
}

// Recorder captures a Trace while a run executes. Attach it to a platform
// with AttachChecker, or drive it manually with RecordRound after each
// StepOnce of a platform-less market harness.
type Recorder struct {
	RecorderOptions
	trace     Trace
	lastRound int
	nextAt    sim.Time
}

// RecorderOptions selects what the recorder samples.
type RecorderOptions struct {
	// Market, when set, records a MarketDigest after every market round.
	Market *core.Market
	// SampleEvery, when positive, additionally records a PlatformDigest on
	// that virtual-time grid (aligned to the attached platform's ticks).
	SampleEvery sim.Time
}

// NewRecorder builds a recorder for a run identified by name, seed and a
// free-form config description (all three are replay identity: Replay
// refuses to diff traces of different runs).
func NewRecorder(name string, seed uint64, config string, opt RecorderOptions) *Recorder {
	return &Recorder{
		RecorderOptions: opt,
		trace:           Trace{Name: name, Seed: seed, Config: config, Final: uint64(NewDigest())},
	}
}

func (r *Recorder) push(sample uint64, round int) {
	r.trace.Digests = append(r.trace.Digests, sample)
	r.trace.Rounds = append(r.trace.Rounds, round)
	r.trace.Final = uint64(Digest(r.trace.Final).Uint64(sample))
}

// CheckTick implements platform.Checker: it records market rounds as they
// complete and platform samples on the configured grid.
func (r *Recorder) CheckTick(p *platform.Platform, now sim.Time) {
	if r.Market != nil {
		if round := r.Market.Round(); round != r.lastRound {
			r.lastRound = round
			r.push(MarketDigest(r.Market), round)
		}
	}
	if r.SampleEvery > 0 && now >= r.nextAt {
		r.nextAt = now + r.SampleEvery
		r.push(PlatformDigest(p), 0)
	}
}

// RecordRound digests the market immediately — the manual hook for
// platform-less harnesses (the Table 1–3 reproductions).
func (r *Recorder) RecordRound(m *core.Market) { r.push(MarketDigest(m), m.Round()) }

// Record folds an arbitrary precomputed sample (rendered tables, custom
// serializations) into the trace.
func (r *Recorder) Record(sample uint64) { r.push(sample, 0) }

// Trace returns the recorded trace (valid once the run completed).
func (r *Recorder) Trace() *Trace { return &r.trace }

// Replay re-runs an experiment against a golden trace: run receives a
// fresh recorder with the golden's identity and must execute the same
// experiment; the recorded trace is then diffed sample by sample. The
// returned error localizes the first divergence.
func Replay(golden *Trace, run func(*Recorder)) error {
	rec := NewRecorder(golden.Name, golden.Seed, golden.Config, RecorderOptions{})
	run(rec)
	got := rec.Trace()
	if i, ok := golden.Diff(got); !ok {
		if i < len(golden.Digests) && i < len(got.Digests) {
			// Localize by market round, not just sample index: sample 0 is
			// market round 1 (rounds count from 1, samples from 0), and
			// interleaved platform samples shift every later index. The
			// re-run's trace always carries rounds; old goldens may not.
			if round := got.RoundAt(i); round > 0 {
				return fmt.Errorf("check: replay of %q diverged at sample %d (market round %d): %016x != %016x",
					golden.Name, i, round, got.Digests[i], golden.Digests[i])
			}
			return fmt.Errorf("check: replay of %q diverged at sample %d: %016x != %016x",
				golden.Name, i, got.Digests[i], golden.Digests[i])
		}
		return fmt.Errorf("check: replay of %q diverged in length: %d samples, golden has %d",
			golden.Name, len(got.Digests), len(golden.Digests))
	}
	return nil
}

var _ platform.Checker = (*Recorder)(nil)
