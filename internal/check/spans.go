package check

import "fmt"

// Span conservation
//
// The causal-tracing layer (internal/telemetry/trace) opens a span for
// every leg of a submission's life and must account for each one: a span
// either closes normally (routed, completed, collected) or is attributed
// to an explicit eviction (shed at admission, drained off a board). The
// ledger also counts mismatches — closes with no matching open, or
// duplicate opens — which indicate a threading bug in the fleet's span
// plumbing rather than lost work.

// SpanLedger is anything that can report its span accounting. The shape is
// structural — implemented by trace.Tracer and trace.Buffer — so the trace
// layer does not depend on this package.
type SpanLedger interface {
	SpanCounts() (opened, closed, attributed, open, mismatched uint64)
}

// CheckSpanConservation asserts the ledger balances: no mismatched
// open/close pairs, and opened == closed + attributed + open. Open spans
// are legitimate mid-run (queued submissions, resident tasks, in-flight
// barriers); callers wanting a fully-settled ledger additionally assert
// open == 0 after a drain.
func CheckSpanConservation(l SpanLedger) error {
	opened, closed, attributed, open, mismatched := l.SpanCounts()
	if mismatched != 0 {
		return fmt.Errorf("check: span ledger has %d mismatched open/close pairs", mismatched)
	}
	if opened != closed+attributed+open {
		return fmt.Errorf("check: span conservation violated: opened %d != closed %d + attributed %d + open %d",
			opened, closed, attributed, open)
	}
	return nil
}
