package check

import "fmt"

// Federation conservation
//
// The fleet's zero-loss invariant lifts across regions: a task accepted
// at federation admission (submitted − shed) must be exactly one of
//
//   - inside some region's fleet ledger — live, queued, in-flight, or
//     orphaned there (the fleet's own invariant covers the breakdown), or
//   - in migration: evicted from a source region and not yet delivered
//     to its destination (the federation's transit ledger).
//
// Migration moves work between the terms — an eviction leaves a
// region's queue and enters "migrating" in the same epoch, a delivery
// does the reverse — but never out of the sum. Shed on delivery (the
// destination queue overflowed) counts against the federation's shed
// total, so the identity holds at every epoch, outages included.

// FederationLedger is anything that can report cross-region zero-loss
// accounting. Structural — implemented by federation.Federation — so
// the federation does not have to be imported here.
type FederationLedger interface {
	FederationAccounting() (accepted, live, queued, inflight, orphaned, migrating uint64)
}

// CheckFederationConservation asserts the cross-region zero-loss
// identity: accepted == Σ_regions(live + queued + in-flight + orphaned)
// + in-migration.
func CheckFederationConservation(l FederationLedger) error {
	accepted, live, queued, inflight, orphaned, migrating := l.FederationAccounting()
	if live+queued+inflight+orphaned+migrating != accepted {
		return fmt.Errorf(
			"check: federation conservation violated: live %d + queued %d + in-flight %d + orphaned %d + migrating %d = %d, want accepted (submitted-shed) %d",
			live, queued, inflight, orphaned, migrating,
			live+queued+inflight+orphaned+migrating, accepted)
	}
	return nil
}
