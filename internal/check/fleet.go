package check

import "fmt"

// Fleet conservation
//
// The fleet's zero-loss invariant extends across board failures: a task
// accepted at admission (submitted − shed) must be exactly one of
//
//   - live on a board per the newest collected barrier's snapshots,
//   - waiting in the admission queue,
//   - in flight at an issued-but-uncollected barrier (including batches a
//     stalled board is deferring), or
//   - orphaned in the crash supervisor, awaiting re-placement at restart.
//
// Crashes move work between the terms — a dead board's residents leave
// "live" and enter "orphaned" in the same barrier — but never out of the
// sum. The check holds at every barrier, not just at quiescence.

// FleetLedger is anything that can report its zero-loss accounting. The
// shape is structural — implemented by fleet.Fleet — so the fleet does
// not have to be imported here (this package must stay dependency-free
// below the fleet layer).
type FleetLedger interface {
	FleetAccounting() (accepted, live, queued, inflight, orphaned uint64)
}

// CheckFleetConservation asserts the extended zero-loss identity:
// accepted == live + queued + inflight + orphaned.
func CheckFleetConservation(l FleetLedger) error {
	accepted, live, queued, inflight, orphaned := l.FleetAccounting()
	if live+queued+inflight+orphaned != accepted {
		return fmt.Errorf(
			"check: fleet conservation violated: live %d + queued %d + in-flight %d + orphaned %d = %d, want accepted (submitted-shed) %d",
			live, queued, inflight, orphaned, live+queued+inflight+orphaned, accepted)
	}
	return nil
}
