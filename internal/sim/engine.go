package sim

import (
	"container/heap"
	"fmt"
)

// TickHook is a component that wants to be driven once per engine tick.
// Hooks run in registration order; now is the time at the *end* of the tick,
// i.e. the state they observe covers (now-step, now].
type TickHook interface {
	Tick(now Time)
}

// TickFunc adapts a plain function to the TickHook interface.
type TickFunc func(now Time)

// Tick calls f(now).
func (f TickFunc) Tick(now Time) { f(now) }

// event is a one-shot callback scheduled at a specific virtual time.
type event struct {
	at  Time
	seq int64 // tie-break so equal-time events fire FIFO
	fn  func(now Time)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine advances a virtual clock in fixed steps, firing scheduled one-shot
// events and per-tick hooks. The zero value is not usable; call NewEngine.
type Engine struct {
	now    Time
	step   Time
	hooks  []TickHook
	events eventQueue
	seq    int64
}

// NewEngine returns an engine whose clock starts at zero and advances in
// steps of the given size. Step must be positive.
func NewEngine(step Time) *Engine {
	if step <= 0 {
		panic(fmt.Sprintf("sim: non-positive engine step %d", step))
	}
	return &Engine{step: step}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Step reports the tick size.
func (e *Engine) Step() Time { return e.step }

// AddHook registers a hook to run every tick, after all hooks registered
// before it.
func (e *Engine) AddHook(h TickHook) { e.hooks = append(e.hooks, h) }

// At schedules fn to run at virtual time at. Events scheduled in the past
// (or at the current time) fire at the start of the next tick. Events at the
// same time fire in scheduling order, always before that tick's hooks.
func (e *Engine) At(at Time, fn func(now Time)) {
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func(now Time)) { e.At(e.now+d, fn) }

// RunUntil advances the clock tick by tick until it reaches (at least) end.
// Each tick fires, in order: due one-shot events, then every hook.
func (e *Engine) RunUntil(end Time) {
	for e.now < end {
		e.StepOnce()
	}
}

// RunFor advances the clock by d from the current time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// StepOnce advances the clock by exactly one step and fires due events and
// all hooks.
func (e *Engine) StepOnce() {
	e.now += e.step
	for len(e.events) > 0 && e.events[0].at <= e.now {
		ev := heap.Pop(&e.events).(*event)
		ev.fn(e.now)
	}
	for _, h := range e.hooks {
		h.Tick(e.now)
	}
}

// Pending reports the number of scheduled one-shot events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }
