package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatalf("unit ratios wrong: s=%d ms=%d", Second, Millisecond)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %d, want %d", got, 1500*Millisecond)
	}
	if got := FromMillis(31.7); got != 31700 {
		t.Errorf("FromMillis(31.7) = %d, want 31700", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Microsecond, "500µs"},
		{2500 * Microsecond, "2.500ms"},
		{1500 * Millisecond, "1.500s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEngineAdvancesClock(t *testing.T) {
	e := NewEngine(Millisecond)
	if e.Now() != 0 {
		t.Fatalf("fresh engine Now() = %v", e.Now())
	}
	e.RunFor(10 * Millisecond)
	if e.Now() != 10*Millisecond {
		t.Errorf("after RunFor(10ms) Now() = %v", e.Now())
	}
	e.RunUntil(10 * Millisecond) // already there; must not move
	if e.Now() != 10*Millisecond {
		t.Errorf("RunUntil(now) moved clock to %v", e.Now())
	}
}

func TestEngineHooksFireEveryTickInOrder(t *testing.T) {
	e := NewEngine(Millisecond)
	var order []int
	e.AddHook(TickFunc(func(now Time) { order = append(order, 1) }))
	e.AddHook(TickFunc(func(now Time) { order = append(order, 2) }))
	e.RunFor(3 * Millisecond)
	want := []int{1, 2, 1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("hook firings = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hook firings = %v, want %v", order, want)
		}
	}
}

func TestEngineEventsFireOnceAtTheRightTick(t *testing.T) {
	e := NewEngine(Millisecond)
	var fired []Time
	e.At(2500*Microsecond, func(now Time) { fired = append(fired, now) })
	e.At(Millisecond, func(now Time) { fired = append(fired, now) })
	e.RunFor(5 * Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if fired[0] != Millisecond {
		t.Errorf("first event fired at %v, want 1ms", fired[0])
	}
	// 2.5ms event fires at the end of the tick that covers it (3ms).
	if fired[1] != 3*Millisecond {
		t.Errorf("second event fired at %v, want 3ms", fired[1])
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after run, want 0", e.Pending())
	}
}

func TestEngineEqualTimeEventsFIFO(t *testing.T) {
	e := NewEngine(Millisecond)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(Millisecond, func(now Time) { order = append(order, i) })
	}
	e.RunFor(Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of order: %v", order)
		}
	}
}

func TestEngineEventsBeforeHooks(t *testing.T) {
	e := NewEngine(Millisecond)
	var order []string
	e.AddHook(TickFunc(func(now Time) { order = append(order, "hook") }))
	e.At(Millisecond, func(now Time) { order = append(order, "event") })
	e.RunFor(Millisecond)
	if len(order) != 2 || order[0] != "event" || order[1] != "hook" {
		t.Fatalf("order = %v, want [event hook]", order)
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(Millisecond)
	e.RunFor(5 * Millisecond)
	var at Time
	e.After(2*Millisecond, func(now Time) { at = now })
	e.RunFor(5 * Millisecond)
	if at != 7*Millisecond {
		t.Errorf("After(2ms) from t=5ms fired at %v, want 7ms", at)
	}
}

func TestEnginePastEventFiresNextTick(t *testing.T) {
	e := NewEngine(Millisecond)
	e.RunFor(5 * Millisecond)
	var at Time
	e.At(Millisecond, func(now Time) { at = now }) // in the past
	e.StepOnce()
	if at != 6*Millisecond {
		t.Errorf("past event fired at %v, want 6ms", at)
	}
}

func TestEngineRejectsBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine(0) did not panic")
		}
	}()
	NewEngine(0)
}

func TestRandDeterministicAndDistinct(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 equal values", same)
	}
}

func TestRandFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandIntnAndRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
		if v := r.Range(2, 5); v < 2 || v >= 5 {
			t.Fatalf("Range(2,5) = %v", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRandForkIndependent(t *testing.T) {
	r := NewRand(1)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("forked generators produced identical first values")
	}
}
