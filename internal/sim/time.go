// Package sim provides the simulation kernel used by the pricepower
// platform model: a microsecond-resolution virtual clock, a fixed-tick
// engine with pluggable hooks, a one-shot event queue, and a seeded
// deterministic random source.
//
// Everything above this package (hardware, scheduler, governors) is driven
// from the engine's tick loop, so a whole experiment is a pure function of
// its configuration and seed.
package sim

import "fmt"

// Time is a point on (or a span of) the virtual timeline, in microseconds.
//
// A dedicated type (rather than time.Duration) keeps virtual time visibly
// distinct from host time and makes arithmetic on it explicit.
type Time int64

// Convenient units for building Time values.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the time in a human-friendly unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", int64(t))
	}
}

// FromSeconds builds a Time from floating-point seconds.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMillis builds a Time from floating-point milliseconds.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }
