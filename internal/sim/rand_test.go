package sim

import "testing"

// TestDeriveSeedStable pins the derivation: same (seed, stream) pair, same
// result — across calls and across the values the fleet layer depends on.
func TestDeriveSeedStable(t *testing.T) {
	if DeriveSeed(42, 0) != DeriveSeed(42, 0) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	seen := make(map[uint64]uint64)
	for stream := uint64(0); stream < 64; stream++ {
		s := DeriveSeed(7, stream)
		if prev, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d collide on seed %#x", prev, stream, s)
		}
		seen[s] = stream
	}
}

// TestDeriveSeedDecorrelates checks that adjacent streams do not produce
// correlated generators: the first outputs of Rand over derived seeds must
// all differ.
func TestDeriveSeedDecorrelates(t *testing.T) {
	seen := make(map[uint64]bool)
	for stream := uint64(0); stream < 32; stream++ {
		v := NewRand(DeriveSeed(1, stream)).Uint64()
		if seen[v] {
			t.Fatalf("stream %d repeats another stream's first output", stream)
		}
		seen[v] = true
	}
	// Distinct parent seeds must also give distinct derived streams.
	if DeriveSeed(1, 3) == DeriveSeed(2, 3) {
		t.Fatal("parent seed does not influence the derived seed")
	}
}
