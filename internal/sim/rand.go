package sim

// Rand is a small deterministic pseudo-random source (SplitMix64) used
// wherever the simulator needs randomness: workload jitter, Table 7's random
// supply/demand generation, property-test corpora.
//
// math/rand would also do, but a self-contained generator keeps streams
// stable across Go releases and lets every component own an independent,
// seedable stream cheaply.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; the zero seed is valid.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Fork derives an independent generator from this one, so components can be
// given their own streams without sharing state.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }

// DeriveSeed deterministically derives an independent stream seed from a
// parent seed and a stream index — the SplitMix64 finalizer applied to the
// pair. The fleet layer uses it to give every board (and its fault
// injector) its own reproducible randomness from one fleet seed: equal
// (seed, stream) pairs always produce the same derived seed, and distinct
// streams decorrelate even for adjacent indices.
func DeriveSeed(seed, stream uint64) uint64 {
	z := seed + (stream+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
