// Package hpm re-implements the paper's primary baseline: the Hierarchical
// Power Management framework of Muthukaruppan et al. (DAC'13) [25], a
// control-theory governor for asymmetric multi-cores.
//
// Structure, as described there and summarized in §5.3 of the paper:
//
//   - per-task PID controllers steer each task's CPU share (nice value) to
//     hold its heart rate inside the reference range;
//   - per-cluster threshold controllers with hysteresis steer the shared
//     V-F level so no task sits below its range, stepping down only when
//     every task overshoots;
//   - an outer TDP loop caps power by forcing the hungriest cluster down
//     and blocking step-ups while the chip exceeds the budget;
//   - load balancing and task migration are deliberately naive ("the HPM
//     scheduler uses naive load balancing and task migration strategy",
//     §5.3): balancing equalizes task counts inside a cluster, and a task
//     migrates up when it keeps missing its range with the cluster already
//     at the top rung (resp. down when over-satisfied at the bottom rung),
//     oblivious to conditions in the target cluster.
package hpm

import (
	"math"

	"pricepower/internal/control"
	"pricepower/internal/hw"
	"pricepower/internal/platform"
	"pricepower/internal/sched"
	"pricepower/internal/sim"
	"pricepower/internal/task"
)

// Config tunes the baseline.
type Config struct {
	// Period is the control period (default 50 ms, the DAC'13 epoch scale).
	Period sim.Time
	// BalanceEvery and MigrateEvery are in control periods (defaults 2, 4).
	BalanceEvery, MigrateEvery int
	// Wtdp is the TDP budget; 0 disables power capping.
	Wtdp float64
	// MissesBeforeMigrate is how many consecutive missed periods trigger an
	// up-migration (default 3).
	MissesBeforeMigrate int
}

// DefaultConfig returns the baseline tuning for a given TDP (0 = none).
func DefaultConfig(wtdp float64) Config {
	return Config{
		Period:              50 * sim.Millisecond,
		BalanceEvery:        2,
		MigrateEvery:        4,
		Wtdp:                wtdp,
		MissesBeforeMigrate: 3,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig(c.Wtdp)
	if c.Period <= 0 {
		c.Period = d.Period
	}
	if c.BalanceEvery <= 0 {
		c.BalanceEvery = d.BalanceEvery
	}
	if c.MigrateEvery <= 0 {
		c.MigrateEvery = d.MigrateEvery
	}
	if c.MissesBeforeMigrate <= 0 {
		c.MissesBeforeMigrate = d.MissesBeforeMigrate
	}
	return c
}

type taskCtl struct {
	pid    control.PID
	weight float64
	misses int
	overs  int
}

// clusterCtl is the per-cluster hysteresis state.
type clusterCtl struct {
	up, down int
}

// Governor implements platform.Governor.
type Governor struct {
	cfg Config
	p   *platform.Platform

	taskCtls    map[*task.Task]*taskCtl
	clusterCtls []clusterCtl

	next  sim.Time
	round int
}

// New builds an HPM governor.
func New(cfg Config) *Governor {
	return &Governor{cfg: cfg.withDefaults(), taskCtls: make(map[*task.Task]*taskCtl)}
}

// Name implements platform.Governor.
func (g *Governor) Name() string { return "HPM" }

// Attach implements platform.Governor.
func (g *Governor) Attach(p *platform.Platform) {
	g.p = p
	g.clusterCtls = make([]clusterCtl, len(p.Chip.Clusters))
	g.next = g.cfg.Period
}

// Tick implements platform.Governor.
func (g *Governor) Tick(now sim.Time) {
	if now < g.next {
		return
	}
	g.next += g.cfg.Period
	g.round++
	dt := g.cfg.Period.Seconds()

	g.controlTasks(now, dt)
	g.controlClusters(now, dt)
	g.capPower()

	if g.round%g.cfg.MigrateEvery == 0 {
		g.migrate(now)
	} else if g.round%g.cfg.BalanceEvery == 0 {
		g.balance()
	}
}

// controlTasks runs the per-task heart-rate PIDs onto scheduler weights.
func (g *Governor) controlTasks(now sim.Time, dt float64) {
	live := make(map[*task.Task]bool)
	for _, t := range g.p.Tasks() {
		live[t] = true
		tc, ok := g.taskCtls[t]
		if !ok {
			tc = &taskCtl{
				pid:    control.PID{Kp: 0.8, Ki: 0.3, OutMin: -2, OutMax: 2},
				weight: sched.NiceToWeight(0),
			}
			g.taskCtls[t] = tc
		}
		hr := t.HeartRate(now)
		if hr <= 0 {
			continue
		}
		errNorm := (t.TargetHR() - hr) / t.TargetHR()
		out := tc.pid.Update(errNorm, dt)
		tc.weight *= 1 + 0.25*out*dt/0.05 // gentle multiplicative update
		tc.weight = clamp(tc.weight, 16, 1<<17)
		g.p.SetWeight(t, tc.weight)

		// Migration pressure counters are level-qualified: a miss only
		// counts when the cluster already runs at its top rung (DVFS cannot
		// help any more), an overshoot only at the bottom rung.
		cl := g.p.ClusterOf(t)
		switch {
		case hr < t.MinHR && cl.Level() == cl.NumLevels()-1:
			tc.misses++
			tc.overs = 0
		case hr > t.MaxHR && cl.Level() == 0:
			tc.overs++
			tc.misses = 0
		case hr >= t.MinHR && hr <= t.MaxHR:
			tc.misses, tc.overs = 0, 0
		}
	}
	for t := range g.taskCtls {
		if !live[t] {
			delete(g.taskCtls, t)
		}
	}
}

// controlClusters steers each cluster's V-F level from its tasks' heart
// rates: step up when any task sits below its range, step down only when
// every task overshoots its range, each after two consecutive observations
// (hysteresis against HRM measurement lag). Raw utilization would be
// useless here — a CPU-bound task reads util = 1 at every frequency.
func (g *Governor) controlClusters(now sim.Time, dt float64) {
	for i, cl := range g.p.Chip.Clusters {
		if !cl.On {
			continue
		}
		anyBelow := false
		busy := false
		allAbove := true
		for _, c := range cl.Cores {
			for _, t := range g.p.TasksOnCore(c.ID) {
				busy = true
				hr := t.HeartRate(now)
				if hr < t.MinHR {
					anyBelow = true
				}
				if hr <= t.MaxHR {
					allAbove = false
				}
			}
		}
		st := &g.clusterCtls[i]
		if !busy {
			cl.StepDown()
			st.up, st.down = 0, 0
			continue
		}
		switch {
		case anyBelow:
			st.up++
			st.down = 0
			if st.up >= 2 {
				cl.StepUp()
				st.up = 0
			}
		case allAbove:
			st.down++
			st.up = 0
			if st.down >= 2 {
				cl.StepDown()
				st.down = 0
			}
		default:
			st.up, st.down = 0, 0
		}
	}
}

// capPower is the outer TDP loop: above budget, push the hungriest cluster
// down a rung each period.
func (g *Governor) capPower() {
	if g.cfg.Wtdp <= 0 || g.p.SensorPower() < g.cfg.Wtdp {
		return
	}
	var worst *hw.Cluster
	worstP := -1.0
	for i, cl := range g.p.Chip.Clusters {
		if !cl.On {
			continue
		}
		if p := g.p.SensorClusterPower(i); p > worstP {
			worst, worstP = cl, p
		}
	}
	if worst != nil {
		worst.StepDown()
	}
}

// balance equalizes task counts across the cores of each cluster (the
// naive strategy).
func (g *Governor) balance() {
	for _, cl := range g.p.Chip.Clusters {
		var maxC, minC *hw.Core
		maxN, minN := -1, math.MaxInt32
		for _, c := range cl.Cores {
			n := len(g.p.TasksOnCore(c.ID))
			if n > maxN {
				maxC, maxN = c, n
			}
			if n < minN {
				minC, minN = c, n
			}
		}
		if maxC == nil || minC == nil || maxN-minN < 2 {
			continue
		}
		ts := g.p.TasksOnCore(maxC.ID)
		for _, t := range ts {
			if !g.p.Migrating(t) {
				g.p.Migrate(t, minC.ID)
				break
			}
		}
	}
}

// migrate applies the naive cross-cluster policy: persistent misses at the
// top rung push a task to the big cluster; persistent over-satisfaction at
// the bottom rung pulls it back to LITTLE. The target core is chosen only
// by task count (oblivious to utilization there).
func (g *Governor) migrate(now sim.Time) {
	for _, t := range g.p.Tasks() {
		tc := g.taskCtls[t]
		if tc == nil || g.p.Migrating(t) {
			continue
		}
		cl := g.p.ClusterOf(t)
		switch {
		case cl.Spec.Type == hw.Little &&
			tc.misses >= g.cfg.MissesBeforeMigrate &&
			cl.Level() == cl.NumLevels()-1:
			if dst := g.emptiestCore(hw.Big); dst >= 0 {
				g.p.Migrate(t, dst)
				tc.misses = 0
				tc.pid.Reset()
				return // one migration per invocation
			}
		case cl.Spec.Type == hw.Big &&
			tc.overs >= g.cfg.MissesBeforeMigrate &&
			cl.Level() == 0:
			if dst := g.emptiestCore(hw.Little); dst >= 0 {
				g.p.Migrate(t, dst)
				tc.overs = 0
				tc.pid.Reset()
				return
			}
		}
	}
}

// emptiestCore returns the core of the given type hosting the fewest tasks,
// or -1 if the type does not exist on chip.
func (g *Governor) emptiestCore(ct hw.CoreType) int {
	best, bestN := -1, math.MaxInt32
	for _, c := range g.p.Chip.Cores {
		if c.Type() != ct || !c.Cluster.On {
			continue
		}
		if n := len(g.p.TasksOnCore(c.ID)); n < bestN {
			best, bestN = c.ID, n
		}
	}
	return best
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

var _ platform.Governor = (*Governor)(nil)
