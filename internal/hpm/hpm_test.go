package hpm

import (
	"testing"

	"pricepower/internal/hw"
	"pricepower/internal/metrics"
	"pricepower/internal/platform"
	"pricepower/internal/sim"
	"pricepower/internal/task"
)

func spec(name string, demandLittle float64) task.Spec {
	return task.Spec{
		Name:     name,
		Priority: 1,
		MinHR:    24,
		MaxHR:    30,
		Phases:   []task.Phase{{HBCostLittle: demandLittle / 27, SpeedupBig: 2}},
		Loop:     true,
	}
}

func newRig(cfg Config) (*platform.Platform, *Governor) {
	p := platform.NewTC2()
	g := New(cfg)
	p.SetGovernor(g)
	return p, g
}

func TestTaskPIDHoldsHeartRate(t *testing.T) {
	p, _ := newRig(DefaultConfig(0))
	tk := p.AddTask(spec("a", 540), 2)
	pr := metrics.NewProbe(p, 5*sim.Second)
	pr.Attach()
	p.Run(25 * sim.Second)
	if got := pr.BelowFrac(tk); got > 0.2 {
		t.Errorf("below-range fraction = %.3f, want < 0.2", got)
	}
}

func TestClusterControlRaisesFrequencyUnderLoad(t *testing.T) {
	p, _ := newRig(DefaultConfig(0))
	tk := p.AddTask(spec("a", 900), 2)
	p.Run(10 * sim.Second)
	little := p.Chip.Clusters[1]
	// A 900 PU demand needs the 900 MHz rung (level 6 of the A7 ladder);
	// the controller must climb there and hold the heart rate in range.
	if little.Level() < 6 {
		t.Errorf("LITTLE level = %d for a 900 PU task, want ≥ 6", little.Level())
	}
	if !tk.InRange(p.Now()) {
		t.Errorf("heart rate %.1f outside range at steady state", tk.HeartRate(p.Now()))
	}
}

func TestClusterPIDDropsFrequencyWhenIdle(t *testing.T) {
	p, _ := newRig(DefaultConfig(0))
	s := spec("v", 200)
	s.Phases[0].SelfCapHR = 30
	p.AddTask(s, 2)
	little := p.Chip.Clusters[1]
	little.SetLevel(little.NumLevels() - 1)
	p.Run(10 * sim.Second)
	if f := little.CurLevel().FreqMHz; f > 500 {
		t.Errorf("LITTLE frequency = %d MHz for a 200 PU self-paced task", f)
	}
}

func TestPersistentMissMigratesToBig(t *testing.T) {
	p, _ := newRig(DefaultConfig(0))
	tk := p.AddTask(spec("hungry", 1600), 2)
	p.Run(20 * sim.Second)
	if p.ClusterOf(tk).Spec.Type != hw.Big {
		t.Errorf("starving task still on %v", p.ClusterOf(tk).Spec.Type)
	}
}

func TestOverSatisfiedTaskReturnsToLittle(t *testing.T) {
	p, _ := newRig(DefaultConfig(0))
	s := spec("tiny", 150)
	s.Phases[0].SelfCapHR = 45 // overshoots its range when oversupplied
	tk := p.AddTask(s, 0)      // starts on a big core
	p.Run(30 * sim.Second)
	if p.ClusterOf(tk).Spec.Type != hw.Little {
		t.Errorf("over-satisfied task still on %v", p.ClusterOf(tk).Spec.Type)
	}
}

func TestBalanceSpreadsTasksWithinCluster(t *testing.T) {
	p, _ := newRig(DefaultConfig(0))
	for i := 0; i < 3; i++ {
		p.AddTask(spec("t", 300), 2) // all crowded on LITTLE core 2
	}
	p.Run(10 * sim.Second)
	counts := 0
	for c := 2; c <= 4; c++ {
		if len(p.TasksOnCore(c)) > 0 {
			counts++
		}
	}
	if counts < 2 {
		t.Errorf("tasks still crowded: %d occupied LITTLE cores", counts)
	}
}

func TestTDPCapForcesPowerDown(t *testing.T) {
	cfg := DefaultConfig(3.0)
	p, _ := newRig(cfg)
	p.AddTask(spec("a", 1400), 0)
	p.AddTask(spec("b", 1400), 1)
	p.AddTask(spec("c", 1400), 2)
	pr := metrics.NewProbe(p, 10*sim.Second)
	pr.Attach()
	p.Run(30 * sim.Second)
	if avg := pr.AveragePower(); avg > 3.4 {
		t.Errorf("average power = %.2f W under a 3 W cap", avg)
	}
}

func TestConfigDefaults(t *testing.T) {
	g := New(Config{})
	if g.cfg.Period != 50*sim.Millisecond || g.cfg.MissesBeforeMigrate != 3 {
		t.Errorf("defaults not applied: %+v", g.cfg)
	}
	if g.Name() != "HPM" {
		t.Errorf("name = %q", g.Name())
	}
}
