package httpd

import (
	"context"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// TestServeShutsDownOnCancel is the shutdown test both binaries rely on:
// cancel the context while a request is in flight, and Serve must return
// promptly with the request completed, not dropped.
func TestServeShutsDownOnCancel(t *testing.T) {
	release := make(chan struct{})
	var completed atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			<-release
		}
		io.WriteString(w, "ok")
		completed.Add(1)
	})
	ln := listen(t)
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, h, 2*time.Second) }()

	if _, err := http.Get("http://" + addr + "/fast"); err != nil {
		t.Fatalf("server not serving before cancel: %v", err)
	}

	slow := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err == nil {
			resp.Body.Close()
		}
		slow <- err
	}()
	time.Sleep(50 * time.Millisecond) // let /slow reach the handler
	cancel()
	time.Sleep(50 * time.Millisecond) // listener closed, drain running
	close(release)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if err := <-slow; err != nil {
		t.Errorf("in-flight request dropped during drain: %v", err)
	}
	if completed.Load() != 2 {
		t.Errorf("%d requests completed, want 2", completed.Load())
	}
	// New connections must be refused after shutdown.
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestServeBoundsTheDrain: a handler that never finishes must not hold
// shutdown hostage — Serve returns the drain error at the timeout.
func TestServeBoundsTheDrain(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { <-hang })
	ln := listen(t)
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, h, 100*time.Millisecond) }()

	go http.Get("http://" + addr + "/hang")
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Serve returned nil although a request outlived the drain")
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("drain took %v, want bounded near 100ms", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve never returned: drain timeout not enforced")
	}
}

// TestSignalContext delivers a real SIGTERM to the test process: the
// context must cancel (NotifyContext intercepts the signal, so the process
// survives).
func TestSignalContext(t *testing.T) {
	ctx, stop := SignalContext()
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the signal context")
	}
}
