// Package httpd is the one graceful-shutdown path shared by every HTTP
// frontend in the repository (`ppmsim -http`, `fleetd`): serve a handler on
// a listener until a context is canceled — typically by SIGINT/SIGTERM via
// SignalContext — then drain in-flight requests within a bounded timeout
// instead of dropping them (or serving forever, as ppmsim's original
// serve-until-interrupted loop did).
package httpd

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// DefaultDrainTimeout bounds the graceful drain when callers pass 0.
const DefaultDrainTimeout = 5 * time.Second

// Server is an http.Server wired to the shared shutdown path. Use New,
// then Start to serve in the background, then WaitShutdown to block until
// the controlling context ends.
type Server struct {
	srv  *http.Server
	errc chan error
}

// New wraps a handler.
func New(h http.Handler) *Server {
	return &Server{srv: &http.Server{Handler: h}, errc: make(chan error, 1)}
}

// Start serves on ln in a background goroutine. The listener is owned by
// the server from here on: WaitShutdown closes it.
func (s *Server) Start(ln net.Listener) {
	go func() {
		err := s.srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		s.errc <- err
	}()
}

// WaitShutdown blocks until ctx is canceled (or the serve loop fails on
// its own), then shuts the server down gracefully: the listener closes
// immediately, in-flight requests get up to drain (DefaultDrainTimeout if
// 0) to complete, and stragglers are cut off after that. It returns the
// serve error, or the drain error when requests outlived the timeout.
func (s *Server) WaitShutdown(ctx context.Context, drain time.Duration) error {
	select {
	case err := <-s.errc:
		return err // serve loop died before any shutdown request
	case <-ctx.Done():
	}
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := s.srv.Shutdown(dctx)
	if serveErr := <-s.errc; serveErr != nil {
		return serveErr
	}
	if err != nil {
		s.srv.Close() // cut off the stragglers that outlived the drain
	}
	return err
}

// Serve is the one-call form: Start plus WaitShutdown.
func Serve(ctx context.Context, ln net.Listener, h http.Handler, drain time.Duration) error {
	s := New(h)
	s.Start(ln)
	return s.WaitShutdown(ctx, drain)
}

// SignalContext returns a context canceled on SIGINT or SIGTERM — the
// process-level trigger both ppmsim and fleetd hang their shutdown on.
// Call stop to release the signal registration (a second signal after
// cancellation then kills the process with the default disposition).
func SignalContext() (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
