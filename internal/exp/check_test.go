package exp

import (
	"fmt"
	"testing"

	"pricepower/internal/check"
	"pricepower/internal/lbt"
	"pricepower/internal/sim"
	"pricepower/internal/workload"
)

// TestCheckedComparativeRuns is the PR's acceptance gate: full comparative
// runs under all three governors, across three seeds and with and without
// a TDP, complete with the invariant checker attached and zero violations.
func TestCheckedComparativeRuns(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		rng := sim.NewRand(seed)
		specs := workload.Random(rng, workload.DefaultRandomConfig(4))
		name := fmt.Sprintf("rand%d", seed)
		for _, gov := range GovernorNames {
			for _, wtdp := range []float64{0, 4} {
				if _, err := RunSpecs(gov, name, specs, wtdp, sim.Second, RunOptions{Check: true}); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		}
	}
}

// TestCheckedTableSets pins the checker on the paper's own workload sets —
// one per intensity class, both unconstrained and at the 4 W budget.
func TestCheckedTableSets(t *testing.T) {
	for _, setName := range []string{"l1", "m2", "h3"} {
		set, ok := workload.SetByName(setName)
		if !ok {
			t.Fatalf("unknown set %s", setName)
		}
		for _, gov := range GovernorNames {
			for _, wtdp := range []float64{0, 4} {
				if _, err := RunSetOpts(gov, set, wtdp, sim.Second, RunOptions{Check: true}); err != nil {
					t.Errorf("tdp=%v: %v", wtdp, err)
				}
			}
		}
	}
}

// TestParallelSequentialDigests pins the pooled-parallel market rounds to
// the sequential order bit for bit: the per-round digests — every price,
// bid, allowance and purchase folded — must be identical, not just
// statistically close. The 16-cluster configuration sits exactly at the
// parallel threshold, so SetParallel(false) is what actually forces the
// sequential path.
func TestParallelSequentialDigests(t *testing.T) {
	const rounds = 200
	run := func(parallel bool) []uint64 {
		m, planner := BuildScaledMarket(Table7Config{V: 16, C: 8, T: 8}, 42)
		m.SetParallel(parallel)
		digests := make([]uint64, 0, rounds)
		for i := 0; i < rounds; i++ {
			m.StepOnce()
			if i%10 == 0 {
				planner.PlanForCluster(0, lbt.Migrate)
			}
			digests = append(digests, check.MarketDigest(m))
		}
		return digests
	}
	seq := run(false)
	par := run(true)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("round %d: sequential digest %016x != parallel digest %016x", i, seq[i], par[i])
		}
	}
}
