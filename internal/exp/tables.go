package exp

import (
	"fmt"

	"pricepower/internal/core"
	"pricepower/internal/task"
	"pricepower/internal/workload"
)

// feedback copies purchases into next-round observations (the experiment
// harness's stand-in for platform measurement).
func feedback(agents ...*core.TaskAgent) {
	for _, a := range agents {
		a.Observed = a.Purchased()
	}
}

// Table1 reproduces the task/core dynamics running example: two tasks with
// demands 200 and 100 PU bidding for a 300 PU core, reaching their demands
// in two rounds.
func Table1() *Table {
	cfg := core.Config{InitialAllowance: 1000, InitialBid: 1}
	ctl := core.NewLadderControl([]float64{300}, nil)
	m := core.NewMarket(cfg, []core.ClusterControl{ctl}, []int{1})
	ta := m.AddTask(1, 0)
	tb := m.AddTask(1, 0)
	ta.Demand, tb.Demand = 200, 100

	t := &Table{
		Title:   "Table 1: Task and Core Level Dynamics Example",
		Headers: []string{"Round", "b_ta", "b_tb", "P_c", "s_ta", "s_tb", "S_c"},
	}
	cc := m.Cluster(0).Cores[0]
	for round := 1; round <= 2; round++ {
		m.StepOnce()
		t.AddRow(round, fmt.Sprintf("%.2f", ta.Bid()), fmt.Sprintf("%.2f", tb.Bid()),
			fmt.Sprintf("%.4f", cc.Price()),
			fmt.Sprintf("%.0f", ta.Purchased()), fmt.Sprintf("%.0f", tb.Purchased()),
			fmt.Sprintf("%.0f", ctl.SupplyPU()))
		feedback(ta, tb)
	}
	return t
}

// Table2 reproduces the cluster dynamics running example: the demand of
// task a rises from 200 to 300 PU; with δ = 0.2 the resulting inflation
// raises the supply from 300 to 400 PU, and the settle round re-bases the
// price.
func Table2() *Table {
	cfg := core.Config{InitialAllowance: 1000, InitialBid: 1, Tolerance: 0.2}
	ctl := core.NewLadderControl([]float64{300, 400, 500, 600}, nil)
	m := core.NewMarket(cfg, []core.ClusterControl{ctl}, []int{1})
	ta := m.AddTask(1, 0)
	tb := m.AddTask(1, 0)
	ta.Demand, tb.Demand = 200, 100

	t := &Table{
		Title:   "Table 2: Cluster Level Dynamics Example (rounds 3-4)",
		Headers: []string{"Round", "b_ta", "b_tb", "P_c", "PBase_c", "s_ta", "s_tb", "S_c"},
	}
	cc := m.Cluster(0).Cores[0]
	for round := 1; round <= 4; round++ {
		if round == 3 {
			ta.Demand = 300 // the Table 2 demand step
		}
		m.StepOnce()
		if round >= 3 {
			t.AddRow(round, fmt.Sprintf("%.2f", ta.Bid()), fmt.Sprintf("%.2f", tb.Bid()),
				fmt.Sprintf("%.4f", cc.Price()), fmt.Sprintf("%.4f", cc.BasePrice()),
				fmt.Sprintf("%.0f", ta.Purchased()), fmt.Sprintf("%.0f", tb.Purchased()),
				fmt.Sprintf("%.0f", ctl.SupplyPU()))
		}
		feedback(ta, tb)
	}
	return t
}

// Table3 reproduces the chip-level dynamics running example: priorities 2:1,
// Wtdp = 2.25 W, Wth = 1.75 W, supply ladder {300..600} where 500 PU draws
// 2 W (threshold) and 600 PU draws 3 W (emergency). The trace shows the
// allowance rising to chase unmet demand, the excursion into the emergency
// state, the allowance cut, and stabilization in the threshold state with
// the high-priority task satisfied.
func Table3() *Table {
	cfg := core.Config{
		InitialAllowance: 4.5, InitialBid: 1, Tolerance: 0.2,
		Wtdp: 2.25, Wth: 1.75, SavingsCap: 5,
	}
	ctl := core.NewLadderControl(
		[]float64{300, 400, 500, 600},
		[]float64{0.8, 0.8, 2.0, 3.0})
	m := core.NewMarket(cfg, []core.ClusterControl{ctl}, []int{1})
	ta := m.AddTask(2, 0)
	tb := m.AddTask(1, 0)
	ta.Demand, tb.Demand = 300, 100

	t := &Table{
		Title: "Table 3: Chip Level Dynamics Example",
		Headers: []string{"Round", "A", "a_ta", "a_tb", "b_ta", "b_tb",
			"m_ta", "m_tb", "P_c", "d_ta", "d_tb", "s_ta", "s_tb", "S_c", "W", "state"},
		Note: "demand of t_b rises to 300 PU at round 13; the market passes " +
			"through emergency and stabilizes in threshold",
	}
	cc := m.Cluster(0).Cores[0]
	record := func(round int) {
		t.AddRow(round,
			fmt.Sprintf("%.2f", m.Allowance()),
			fmt.Sprintf("%.2f", ta.Allowance()), fmt.Sprintf("%.2f", tb.Allowance()),
			fmt.Sprintf("%.2f", ta.Bid()), fmt.Sprintf("%.2f", tb.Bid()),
			fmt.Sprintf("%.2f", ta.Savings()), fmt.Sprintf("%.2f", tb.Savings()),
			fmt.Sprintf("%.4f", cc.Price()),
			fmt.Sprintf("%.0f", ta.Demand), fmt.Sprintf("%.0f", tb.Demand),
			fmt.Sprintf("%.0f", ta.Purchased()), fmt.Sprintf("%.0f", tb.Purchased()),
			fmt.Sprintf("%.0f", ctl.SupplyPU()),
			fmt.Sprintf("%.1f", m.Power()), m.State().String())
	}
	const totalRounds = 70
	for round := 1; round <= totalRounds; round++ {
		if round == 13 {
			tb.Demand = 300 // the Table 3 demand step
		}
		m.StepOnce()
		// Record the interesting windows: the overload transient (the
		// paper's rounds 4-11 analogue) and the settled tail (its round 16).
		if (round >= 11 && round <= 24) || round > totalRounds-6 {
			record(round)
		}
		if round == 24 {
			t.AddRow("...")
		}
		feedback(ta, tb)
	}
	return t
}

// Table4 reproduces the heart-rate→demand conversion example with the
// reference range 24–30 hb/s (target 27).
func Table4() *Table {
	t := &Table{
		Title: "Table 4: heart rate to demand conversion " +
			"(reference range 24-30 hb/s, target 27)",
		Headers: []string{"Prog. phase", "Current hr (hb/s)", "Frequency (MHz)",
			"Utilization (%)", "s (PU)", "d (PU)"},
	}
	rows := []struct {
		hr, freq, util float64
	}{{15, 500, 1.00}, {10, 800, 0.50}, {40, 1000, 1.00}}
	for i, r := range rows {
		s := r.freq * r.util
		d := task.EstimateDemand(27, s, r.hr)
		t.AddRow(i+1, fmt.Sprintf("%.0f", r.hr), fmt.Sprintf("%.0f", r.freq),
			fmt.Sprintf("%.0f", r.util*100), fmt.Sprintf("%.0f", s), fmt.Sprintf("%.0f", d))
	}
	return t
}

// Table5 lists the benchmark inventory.
func Table5() *Table {
	t := &Table{
		Title:   "Table 5: Benchmarks description",
		Headers: []string{"Benchmark", "Suite", "Description", "Inputs", "Heartbeat location"},
	}
	for _, name := range workload.Names() {
		b, _ := workload.ByName(name)
		t.AddRow(b.Name, b.Suite, b.Description, b.InputsDesc, b.HeartbeatAt)
	}
	return t
}

// Table6 lists the workload sets with their intensity values and classes.
func Table6() *Table {
	t := &Table{
		Title:   "Table 6: Workload Sets",
		Headers: []string{"Set", "Class", "Members", "Intensity"},
		Note: "intensity = (Σ d_t^A7 − S_A7^maxfreq) / S_A7^maxfreq over the " +
			"LITTLE cluster's 3000 PU aggregate capacity",
	}
	for _, s := range workload.Sets {
		members := ""
		for i, m := range s.Members {
			if i > 0 {
				members += ", "
			}
			members += m.TaskName()
		}
		in, err := s.Intensity(workload.TC2LittleCapacity)
		if err != nil {
			panic(err)
		}
		t.AddRow(s.Name, s.Class().String(), members, fmt.Sprintf("%+.3f", in))
	}
	return t
}
