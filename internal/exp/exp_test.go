package exp

import (
	"strings"
	"testing"

	"pricepower/internal/sim"
	"pricepower/internal/workload"
)

// shortRun keeps comparative tests quick; the full durations run in
// cmd/experiments and the benchmark harness.
const shortRun = 30 * sim.Second

func TestTable1MatchesPaper(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 2 {
		t.Fatalf("Table 1 has %d rows, want 2", len(tbl.Rows))
	}
	// Round 2 of the paper: bids 1.33/0.66, supplies 200/100.
	r2 := tbl.Rows[1]
	if r2[1] != "1.33" || r2[2] != "0.67" && r2[2] != "0.66" {
		t.Errorf("round 2 bids = %s/%s, want 1.33/0.66", r2[1], r2[2])
	}
	if r2[4] != "200" || r2[5] != "100" {
		t.Errorf("round 2 supplies = %s/%s, want 200/100", r2[4], r2[5])
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	tbl := Table2()
	if len(tbl.Rows) != 2 {
		t.Fatalf("Table 2 has %d rows, want 2", len(tbl.Rows))
	}
	// Round 3: inflation; round 4: supply 400, satisfied 300/100.
	r3, r4 := tbl.Rows[0], tbl.Rows[1]
	if r3[7] != "400" {
		t.Errorf("round 3 supply = %s, want 400 (stepped up)", r3[7])
	}
	if r4[5] != "300" || r4[6] != "100" {
		t.Errorf("round 4 supplies = %s/%s, want 300/100", r4[5], r4[6])
	}
}

func TestTable3ShowsStateTrajectory(t *testing.T) {
	tbl := Table3()
	if len(tbl.Rows) == 0 {
		t.Fatal("Table 3 empty")
	}
	states := make(map[string]bool)
	for _, row := range tbl.Rows {
		states[row[len(row)-1]] = true
	}
	if !states["emergency"] {
		t.Error("trajectory never reached emergency")
	}
	if !states["threshold"] {
		t.Error("trajectory never reached threshold")
	}
	// Final state: threshold, supply 500.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[len(last)-1] != "threshold" {
		t.Errorf("final state = %s, want threshold", last[len(last)-1])
	}
	if last[13] != "500" {
		t.Errorf("final supply = %s, want 500", last[13])
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	tbl := Table4()
	want := [][2]string{{"500", "900"}, {"400", "1080"}, {"1000", "675"}}
	for i, w := range want {
		if tbl.Rows[i][4] != w[0] || tbl.Rows[i][5] != w[1] {
			t.Errorf("phase %d: s/d = %s/%s, want %s/%s",
				i+1, tbl.Rows[i][4], tbl.Rows[i][5], w[0], w[1])
		}
	}
}

func TestTable5And6Render(t *testing.T) {
	t5 := Table5()
	if len(t5.Rows) != 8 {
		t.Errorf("Table 5 has %d rows, want 8", len(t5.Rows))
	}
	t6 := Table6()
	if len(t6.Rows) != 9 {
		t.Errorf("Table 6 has %d rows, want 9", len(t6.Rows))
	}
	wantClasses := []string{"light", "light", "light", "medium", "medium", "medium",
		"heavy", "heavy", "heavy"}
	for i, row := range t6.Rows {
		if row[1] != wantClasses[i] {
			t.Errorf("set %s class = %s, want %s", row[0], row[1], wantClasses[i])
		}
	}
}

func TestTable7ScalesRoughlyLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	small := MeasureTable7(Table7Config{2, 4, 8}, 5, 1)
	big := MeasureTable7(Table7Config{16, 8, 8}, 5, 1)
	if big < small {
		t.Errorf("overhead not growing: %v for 64 tasks vs %v for 1024", small, big)
	}
	tbl := Table7(Table7Quick, 3)
	if len(tbl.Rows) != len(Table7Quick) {
		t.Errorf("Table 7 rows = %d", len(tbl.Rows))
	}
}

func TestNewGovernorNames(t *testing.T) {
	for _, name := range GovernorNames {
		g, err := NewGovernor(name, 0)
		if err != nil {
			t.Fatalf("NewGovernor(%s): %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("governor name = %s, want %s", g.Name(), name)
		}
	}
	if _, err := NewGovernor("bogus", 0); err == nil {
		t.Error("NewGovernor accepted bogus name")
	}
}

func TestRunSetProducesSaneResult(t *testing.T) {
	set, _ := workload.SetByName("l2")
	r, err := RunSet("PPM", set, 0, shortRun)
	if err != nil {
		t.Fatal(err)
	}
	if r.MissFrac < 0 || r.MissFrac > 1 {
		t.Errorf("miss fraction = %v", r.MissFrac)
	}
	if r.AvgPower <= 0 || r.AvgPower > 8.5 {
		t.Errorf("average power = %v W", r.AvgPower)
	}
	if r.Energy <= 0 {
		t.Errorf("energy = %v J", r.Energy)
	}
}

// TestComparativeShapes pins the paper's qualitative results on a reduced
// duration: (1) HL misses least on light sets but draws the most power;
// (2) PPM misses least on average; (3) PPM's mean power is well below HL's.
func TestComparativeShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c, err := RunComparative(0, 60*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	miss := c.MeanMiss()
	power := c.MeanPower()
	const ppm, hpm, hl = 0, 1, 2

	if miss[ppm] >= miss[hl] {
		t.Errorf("PPM mean miss %.3f not below HL %.3f", miss[ppm], miss[hl])
	}
	if power[hl] <= power[ppm] || power[hl] <= power[hpm] {
		t.Errorf("HL power %.2f not the highest (PPM %.2f, HPM %.2f)",
			power[hl], power[ppm], power[hpm])
	}
	// Light sets: HL essentially never misses (races to the big cluster).
	for i := 0; i < 3; i++ {
		if c.Results[i][hl].MissFrac > 0.05 {
			t.Errorf("HL miss on %s = %.3f, want ≈0", c.Results[i][hl].Set,
				c.Results[i][hl].MissFrac)
		}
	}
	// Medium+heavy sets: PPM beats HL everywhere.
	for i := 3; i < 9; i++ {
		if c.Results[i][ppm].MissFrac > c.Results[i][hl].MissFrac+0.05 {
			t.Errorf("PPM worse than HL on %s: %.3f vs %.3f",
				c.Results[i][ppm].Set, c.Results[i][ppm].MissFrac, c.Results[i][hl].MissFrac)
		}
	}
	// Rendering works.
	if s := c.MissTable("fig4").String(); !strings.Contains(s, "l1") {
		t.Error("miss table missing sets")
	}
	if s := c.PowerTable("fig5").String(); !strings.Contains(s, "mean") {
		t.Error("power table missing mean row")
	}
}

// TestTDPComparative pins Figure 6's shape: under a 4 W cap PPM's mean miss
// fraction stays below both baselines'.
func TestTDPComparative(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c, err := RunComparative(4.0, 60*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	miss := c.MeanMiss()
	if miss[0] >= miss[1] {
		t.Errorf("PPM mean miss %.3f not below HPM %.3f under TDP", miss[0], miss[1])
	}
	if miss[0] >= miss[2] {
		t.Errorf("PPM mean miss %.3f not below HL %.3f under TDP", miss[0], miss[2])
	}
}

func TestFig7PriorityIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, equal, prio, err := Fig7(60 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("Fig 7 table rows = %d", len(tbl.Rows))
	}
	// (a) equal priorities: both tasks spend comparable, substantial time
	// outside the range.
	if equal.SwaptionsOutside < 0.05 || equal.BodytrackOutside < 0.05 {
		t.Errorf("equal-priority outsides = %.3f/%.3f, want both substantial",
			equal.SwaptionsOutside, equal.BodytrackOutside)
	}
	// (b) prioritized: swaptions improves markedly, bodytrack degrades.
	if prio.SwaptionsOutside >= equal.SwaptionsOutside {
		t.Errorf("priority 7 did not reduce swaptions outside time: %.3f vs %.3f",
			prio.SwaptionsOutside, equal.SwaptionsOutside)
	}
	if prio.BodytrackOutside <= equal.BodytrackOutside {
		t.Errorf("bodytrack did not suffer: %.3f vs %.3f",
			prio.BodytrackOutside, equal.BodytrackOutside)
	}
	if prio.SwaptionsSeries.Len() == 0 {
		t.Error("no heart-rate series captured")
	}
}

func TestFig8SavingsDynamics(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, r, err := Fig8(40*sim.Second, 120*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Dormant phase: x264 easily meets (indeed overshoots) its goal — it
	// spends time above its range but essentially never below it.
	// (the bound tolerates the boot transient while the market ramps up)
	if r.X264BelowDormant > 0.2 {
		t.Errorf("x264 below-range fraction in dormant phase = %.3f", r.X264BelowDormant)
	}
	// Savings accumulate during dormancy and deplete during activity.
	if r.SavingsSeries.Len() == 0 || r.SavingsSeries.Max() <= 0 {
		t.Fatal("no savings accumulated")
	}
	if r.SavingsDepleted == 0 {
		t.Error("savings never depleted during the active phase")
	}
	// After depletion the active-phase demand cannot be sustained: x264
	// spends most of the active phase outside its range, while swaptions —
	// which recovers its fair share once the savings are gone — suffers
	// strictly less.
	if r.X264OutsideActive <= 0.3 {
		t.Errorf("x264 outside fraction in active phase = %.3f, want substantial",
			r.X264OutsideActive)
	}
	if r.SwapOutsideActive >= r.X264OutsideActive {
		t.Errorf("swaptions outside %.3f not below x264's %.3f in active phase",
			r.SwapOutsideActive, r.X264OutsideActive)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "bb"}, Note: "n"}
	tbl.AddRow(1, 2.5)
	s := tbl.String()
	for _, want := range []string{"T", "a", "bb", "1", "2.5", "(n)"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	var sb strings.Builder
	tbl.CSV(&sb)
	if got := sb.String(); got != "a,bb\n1,2.5\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{1.5: "1.5", 2: "2", 0.25: "0.25", 0: "0"}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
