package exp

import (
	"fmt"
	"time"

	"pricepower/internal/core"
	"pricepower/internal/lbt"
	"pricepower/internal/sim"
)

// Table7Config is one row of the scalability study: V clusters of C cores
// with T tasks per core.
type Table7Config struct {
	V, C, T int
}

// Table7Configs are the paper's twelve configurations (V up to 256 clusters,
// C up to 16 cores per cluster, T ∈ {8, 32} tasks per core, up to 131,072
// tasks total).
var Table7Configs = []Table7Config{
	{2, 4, 8}, {2, 4, 32},
	{4, 4, 8}, {4, 4, 32},
	{16, 8, 8}, {16, 8, 32},
	{16, 16, 8}, {16, 16, 32},
	{256, 8, 8}, {256, 8, 32},
	{256, 16, 8}, {256, 16, 32},
}

// Table7Quick trims the sweep for tests and -short benchmarks.
var Table7Quick = []Table7Config{{2, 4, 8}, {4, 4, 8}, {16, 8, 8}}

// BuildScaledMarket constructs a V-cluster market mirroring §5.5's setup:
// cluster maximum supplies spread over 350–3000 PUs, tasks with random
// demands in 10–50 PUs fed to the designated constrained cluster (cluster
// 0, the paper's A7 at its lowest 350 MHz level), and random supply/demand
// information for the other clusters.
func BuildScaledMarket(cfg Table7Config, seed uint64) (*core.Market, *lbt.Planner) {
	rng := sim.NewRand(seed)
	controls := make([]core.ClusterControl, cfg.V)
	cores := make([]int, cfg.V)
	for v := 0; v < cfg.V; v++ {
		maxSupply := 350.0
		if cfg.V > 1 {
			maxSupply = 350 + (3000-350)*float64(v)/float64(cfg.V-1)
		}
		const nLevels = 6
		ladder := make([]float64, nLevels)
		power := make([]float64, nLevels)
		for l := 0; l < nLevels; l++ {
			frac := float64(l+1) / nLevels
			ladder[l] = maxSupply * frac
			power[l] = (0.5 + 3.5*frac) * (1 + 0.2*float64(v%3))
		}
		controls[v] = core.NewLadderControl(ladder, power)
		cores[v] = cfg.C
	}
	m := core.NewMarket(core.Config{InitialAllowance: float64(cfg.V * cfg.C * cfg.T)},
		controls, cores)

	demands := make(map[int][]float64)
	coreID := 0
	for v := 0; v < cfg.V; v++ {
		for c := 0; c < cfg.C; c++ {
			for i := 0; i < cfg.T; i++ {
				a := m.AddTask(1+rng.Intn(8), coreID)
				ds := make([]float64, cfg.V)
				for k := range ds {
					ds[k] = rng.Range(10, 50)
				}
				demands[a.ID] = ds
				a.Demand = ds[v]
				a.Observed = rng.Range(10, 50)
			}
			coreID++
		}
	}
	est := lbt.EstimatorFunc(func(a *core.TaskAgent, cluster int) float64 {
		return demands[a.ID][cluster]
	})
	return m, lbt.NewPlanner(m, est)
}

// MeasureTable7 measures the wall-clock overhead of one LBT invocation in
// the constrained cluster — the per-invocation cost §5.5 reports — averaged
// over iters invocations.
func MeasureTable7(cfg Table7Config, iters int, seed uint64) time.Duration {
	_, planner := BuildScaledMarket(cfg, seed)
	// One throwaway run outside the timed region warms caches.
	planner.PlanForCluster(0, lbt.Migrate)
	start := time.Now()
	for i := 0; i < iters; i++ {
		planner.PlanForCluster(0, lbt.Migrate)
	}
	return time.Since(start) / time.Duration(iters)
}

// Table7 runs the scalability sweep. The paper reports overhead on a
// Cortex-A7 at 350 MHz; we report Go wall-clock on the host, so absolute
// values differ while the scaling shape (≈linear in T·V with the per-
// candidate evaluation cost) is the claim under test. The percentage column
// relates the overhead to the 190 ms migration period, as in the paper.
func Table7(configs []Table7Config, iters int) *Table {
	t := &Table{
		Title: "Table 7: computational overhead of the LBT module in the constrained core",
		Headers: []string{"V (clusters)", "C (cores/cluster)", "T (tasks/core)",
			"Total tasks", "Avg overhead [ms]", "Avg overhead [% of 190ms period]"},
		Note: "host wall-clock; the paper measured a 350 MHz Cortex-A7 — compare shapes, not absolutes",
	}
	for _, cfg := range configs {
		d := MeasureTable7(cfg, iters, 42)
		ms := float64(d.Microseconds()) / 1000.0
		t.AddRow(cfg.V, cfg.C, cfg.T, cfg.V*cfg.C*cfg.T,
			fmt.Sprintf("%.3f", ms), fmt.Sprintf("%.2f", ms/190*100))
	}
	return t
}
