package exp

import (
	"fmt"

	"pricepower/internal/metrics"
	"pricepower/internal/platform"
	"pricepower/internal/ppm"
	"pricepower/internal/sim"
	"pricepower/internal/task"
)

// Comparative holds the Figure 4/5 (or Figure 6) measurement matrix.
type Comparative struct {
	Results [][]RunResult // [set][governor]
	Wtdp    float64
}

// RunComparative performs the 9-set × 3-governor sweep once; Figures 4 and
// 5 read different columns of the same runs (as in the paper).
func RunComparative(wtdp float64, dur sim.Time) (*Comparative, error) {
	res, err := RunAllSets(wtdp, dur)
	if err != nil {
		return nil, err
	}
	return &Comparative{Results: res, Wtdp: wtdp}, nil
}

// MissTable renders the miss-rate comparison (Figure 4 without TDP,
// Figure 6 with).
func (c *Comparative) MissTable(title string) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"Set", "PPM [%]", "HPM [%]", "HL [%]"},
		Note:    "percentage of time any task's heart rate is below its reference minimum",
	}
	for _, row := range c.Results {
		t.AddRow(row[0].Set,
			fmt.Sprintf("%.1f", row[0].MissFrac*100),
			fmt.Sprintf("%.1f", row[1].MissFrac*100),
			fmt.Sprintf("%.1f", row[2].MissFrac*100))
	}
	return t
}

// PowerTable renders the average-power comparison (Figure 5).
func (c *Comparative) PowerTable(title string) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"Set", "PPM [W]", "HPM [W]", "HL [W]"},
	}
	sums := make([]float64, 3)
	for _, row := range c.Results {
		t.AddRow(row[0].Set,
			fmt.Sprintf("%.2f", row[0].AvgPower),
			fmt.Sprintf("%.2f", row[1].AvgPower),
			fmt.Sprintf("%.2f", row[2].AvgPower))
		for j := range sums {
			sums[j] += row[j].AvgPower
		}
	}
	n := float64(len(c.Results))
	t.AddRow("mean",
		fmt.Sprintf("%.2f", sums[0]/n),
		fmt.Sprintf("%.2f", sums[1]/n),
		fmt.Sprintf("%.2f", sums[2]/n))
	return t
}

// EfficiencyTable renders energy per delivered kilo-heartbeat — the
// "minimal energy for the demands met" companion view of Figure 5.
func (c *Comparative) EfficiencyTable(title string) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"Set", "PPM [J/khb]", "HPM [J/khb]", "HL [J/khb]"},
		Note:    "joules per thousand heartbeats delivered; lower is better at equal miss rates",
	}
	for _, row := range c.Results {
		t.AddRow(row[0].Set,
			fmt.Sprintf("%.2f", row[0].EnergyPerKBeat()),
			fmt.Sprintf("%.2f", row[1].EnergyPerKBeat()),
			fmt.Sprintf("%.2f", row[2].EnergyPerKBeat()))
	}
	return t
}

// MeanMiss reports the per-governor mean miss fraction across all sets.
func (c *Comparative) MeanMiss() [3]float64 {
	var out [3]float64
	for _, row := range c.Results {
		for j := 0; j < 3; j++ {
			out[j] += row[j].MissFrac
		}
	}
	for j := range out {
		out[j] /= float64(len(c.Results))
	}
	return out
}

// MeanPower reports the per-governor mean average power across all sets.
func (c *Comparative) MeanPower() [3]float64 {
	var out [3]float64
	for _, row := range c.Results {
		for j := 0; j < 3; j++ {
			out[j] += row[j].AvgPower
		}
	}
	for j := range out {
		out[j] /= float64(len(c.Results))
	}
	return out
}

// Fig7Result is one priority case-study run.
type Fig7Result struct {
	// Outside fractions of time outside the reference range, per task.
	SwaptionsOutside, BodytrackOutside float64
	// Normalized heart-rate series (hr / target), per task.
	SwaptionsSeries, BodytrackSeries *metrics.Series
}

// fig7Spec builds the Figure 7 task pair: swaptions_native and
// bodytrack_native sharing one big core, combined demand hovering at the
// core's top supply so priorities decide who fits.
func fig7Spec(name string, base float64, prio int, phases []float64, phaseDur sim.Time) task.Spec {
	const target = 30
	s := task.Spec{
		Name:     name,
		Priority: prio,
		MinHR:    target * 0.95,
		MaxHR:    target * 1.05,
		Loop:     true,
	}
	for _, m := range phases {
		s.Phases = append(s.Phases, task.Phase{
			Duration:     phaseDur,
			HBCostLittle: base * m / target,
			SpeedupBig:   2,
			SelfCapHR:    target * 1.35,
		})
	}
	return s
}

// RunFig7 runs the priority study: both tasks pinned to big core 0 with the
// LBT module disabled (§5.4), priorities as given.
func RunFig7(prioSwaptions, prioBodytrack int, dur sim.Time) (*Fig7Result, error) {
	p := platform.NewTC2()
	cfg := ppm.DefaultConfig(0)
	cfg.DisableLBT = true
	p.SetGovernor(ppm.New(cfg))
	// Combined steady demand ≈ 1250 PU on the 1200 PU big core: mild
	// overload, so only one task can hold its range at a time.
	sw := p.AddTask(fig7Spec("swaptions_native", 1250, prioSwaptions,
		[]float64{1.0, 1.08, 0.92}, 9*sim.Second), 0)
	bt := p.AddTask(fig7Spec("bodytrack_native", 1250, prioBodytrack,
		[]float64{0.92, 1.08, 1.0}, 7*sim.Second), 0)
	pr := metrics.NewProbe(p, Warmup)
	pr.EnableSeries(250 * sim.Millisecond)
	pr.Attach()
	p.Run(Warmup + dur)
	return &Fig7Result{
		SwaptionsOutside: pr.OutsideFrac(sw),
		BodytrackOutside: pr.OutsideFrac(bt),
		SwaptionsSeries:  pr.HRSeries[sw],
		BodytrackSeries:  pr.HRSeries[bt],
	}, nil
}

// Fig7 renders both halves of Figure 7: equal priorities (a) and
// swaptions at priority 7 (b).
func Fig7(dur sim.Time) (*Table, *Fig7Result, *Fig7Result, error) {
	a, err := RunFig7(1, 1, dur)
	if err != nil {
		return nil, nil, nil, err
	}
	b, err := RunFig7(7, 1, dur)
	if err != nil {
		return nil, nil, nil, err
	}
	t := &Table{
		Title: "Figure 7: time outside the normalized performance goal [0.95,1.05]",
		Headers: []string{"Scenario", "swaptions prio", "bodytrack prio",
			"swaptions outside [%]", "bodytrack outside [%]"},
	}
	t.AddRow("(a) equal", 1, 1,
		fmt.Sprintf("%.1f", a.SwaptionsOutside*100), fmt.Sprintf("%.1f", a.BodytrackOutside*100))
	t.AddRow("(b) prioritized", 7, 1,
		fmt.Sprintf("%.1f", b.SwaptionsOutside*100), fmt.Sprintf("%.1f", b.BodytrackOutside*100))
	return t, a, b, nil
}

// Fig8Result is the savings case-study outcome.
type Fig8Result struct {
	// Outside fractions measured per execution phase of x264.
	X264OutsideDormant, X264OutsideActive float64
	SwapOutsideActive                     float64
	// X264BelowDormant is the fraction of the dormant phase x264 spent
	// *below* its range (it overshoots while dormant, so this should be
	// ≈0 even though the outside fraction is large).
	X264BelowDormant float64
	// SavingsDepleted reports when the x264 agent's savings ran out
	// (0 = never during the run).
	SavingsDepleted sim.Time
	X264Series      *metrics.Series
	SwaptionsSeries *metrics.Series
	SavingsSeries   *metrics.Series
}

// RunFig8 runs the savings study (§5.4): swaptions and x264 share one big
// core at equal priority with the LBT module disabled. x264 is dormant
// (low demand) for the first dormant duration, saving allowance, then
// turns active with a demand the core cannot satisfy for both tasks — its
// savings let it outbid swaptions until they deplete.
func RunFig8(dormant, active sim.Time) (*Fig8Result, error) {
	p := platform.NewTC2()
	cfg := ppm.DefaultConfig(0)
	cfg.DisableLBT = true
	g := ppm.New(cfg)
	p.SetGovernor(g)

	// Demands below are expressed on the big core the pair shares (the spec
	// carries LITTLE-core heartbeat costs, so they are scaled by the 2×
	// speedup): swaptions needs a steady 600 PU; x264 needs 350 PU while
	// dormant and 800 PU once active. The active pair (1400 PU) exceeds the
	// core's 1200 PU ceiling, so only money decides who wins: x264's saved
	// allowance lets it outbid swaptions and hold its range until the
	// savings run out, after which the equal allowances split the core
	// evenly — swaptions recovers, x264 collapses below range.
	const target = 30
	sw := p.AddTask(task.Spec{
		Name: "swaptions_native", Priority: 1,
		MinHR: target * 0.95, MaxHR: target * 1.05, Loop: true,
		Phases: []task.Phase{{HBCostLittle: 2 * 600 / float64(target), SpeedupBig: 2,
			SelfCapHR: target * 1.35}},
	}, 0)
	x264 := p.AddTask(task.Spec{
		Name: "x264_native", Priority: 1,
		MinHR: target * 0.95, MaxHR: target * 1.05, Loop: true,
		Phases: []task.Phase{
			// Dormant: modest demand, overshooting its goal cheaply.
			{Duration: dormant, HBCostLittle: 2 * 350 / float64(target), SpeedupBig: 2,
				SelfCapHR: target * 1.25},
			// Active: demand jumps so that the pair exceeds the core.
			{Duration: active, HBCostLittle: 2 * 800 / float64(target), SpeedupBig: 2,
				SelfCapHR: target * 1.35},
		},
	}, 0)

	pr := metrics.NewProbe(p, Warmup)
	pr.EnableSeries(250 * sim.Millisecond)
	pr.Attach()

	res := &Fig8Result{SavingsSeries: &metrics.Series{}}
	var depleted sim.Time
	var dormantSamples, dormantOutside, dormantBelow, activeSamples, activeOutside, swapActiveOutside int
	p.Engine.AddHook(sim.TickFunc(func(now sim.Time) {
		if now <= Warmup {
			return
		}
		if a := g.AgentOf(x264); a != nil {
			res.SavingsSeries.Add(now, a.Savings())
			inActive := now > Warmup+dormant
			if inActive && depleted == 0 && a.Savings() < 1e-6 {
				depleted = now
			}
		}
		hr := x264.HeartRate(now) / x264.TargetHR()
		swHR := sw.HeartRate(now) / sw.TargetHR()
		if now <= Warmup+dormant {
			dormantSamples++
			if hr < 0.95 || hr > 1.05 {
				dormantOutside++
			}
			if hr < 0.95 {
				dormantBelow++
			}
		} else {
			activeSamples++
			if hr < 0.95 || hr > 1.05 {
				activeOutside++
			}
			if swHR < 0.95 || swHR > 1.05 {
				swapActiveOutside++
			}
		}
	}))
	p.Run(Warmup + dormant + active)

	res.SavingsDepleted = depleted
	if dormantSamples > 0 {
		res.X264OutsideDormant = float64(dormantOutside) / float64(dormantSamples)
		res.X264BelowDormant = float64(dormantBelow) / float64(dormantSamples)
	}
	if activeSamples > 0 {
		res.X264OutsideActive = float64(activeOutside) / float64(activeSamples)
		res.SwapOutsideActive = float64(swapActiveOutside) / float64(activeSamples)
	}
	res.X264Series = pr.HRSeries[x264]
	res.SwaptionsSeries = pr.HRSeries[sw]
	return res, nil
}

// Fig8 renders the savings study with the paper's timeline shape (dormant
// phase, then an active phase long enough to exhaust the savings).
func Fig8(dormant, active sim.Time) (*Table, *Fig8Result, error) {
	r, err := RunFig8(dormant, active)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:   "Figure 8: savings let x264 outbid swaptions during its active phase",
		Headers: []string{"Quantity", "Value"},
	}
	t.AddRow("x264 outside range, dormant phase [%] (overshoot)", fmt.Sprintf("%.1f", r.X264OutsideDormant*100))
	t.AddRow("x264 below range, dormant phase [%]", fmt.Sprintf("%.1f", r.X264BelowDormant*100))
	t.AddRow("x264 outside range, active phase [%]", fmt.Sprintf("%.1f", r.X264OutsideActive*100))
	t.AddRow("swaptions outside range, active phase [%]", fmt.Sprintf("%.1f", r.SwapOutsideActive*100))
	if r.SavingsDepleted > 0 {
		t.AddRow("x264 savings depleted at", r.SavingsDepleted.String())
	} else {
		t.AddRow("x264 savings depleted at", "never (run too short)")
	}
	return t, r, nil
}
