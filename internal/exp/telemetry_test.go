package exp

import (
	"bytes"
	"testing"

	"pricepower/internal/sim"
	"pricepower/internal/telemetry"
	"pricepower/internal/workload"
)

// TestThrottleEpisodeReconstructedFromJSONL is the end-to-end acceptance
// test for the telemetry layer: a PPM run over a high-intensity workload
// under a tight 4 W TDP (the Figure 6/8 regime) is captured as JSONL, and
// the resulting stream must let a reader reconstruct a complete throttle
// episode — the chip agent's entry into a throttling state, the DVFS
// downward response that follows it, and the time-ordering between them —
// along with the hardware context (/state-style snapshots are live-only;
// the durable record is this event stream).
func TestThrottleEpisodeReconstructedFromJSONL(t *testing.T) {
	set, ok := workload.SetByName("h2")
	if !ok {
		t.Fatal("workload set h2 missing")
	}
	var buf bytes.Buffer
	sink := telemetry.NewJSONL(&buf)
	em := telemetry.NewEmitter(telemetry.NewRegistry(), sink)

	if _, err := RunSetOpts("PPM", set, 4.0, 20*sim.Second, RunOptions{Telemetry: em}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("JSONL stream unreadable: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty event stream from a throttling run")
	}

	// Locate the first throttle entry (normal → threshold/emergency).
	entry := -1
	for i, ev := range events {
		if ev.Kind == telemetry.KindThrottle && ev.Name != "normal" {
			entry = i
			break
		}
	}
	if entry < 0 {
		t.Fatal("no throttle entry in a 4 W TDP run of set h2")
	}
	ent := events[entry]
	if ent.Time <= 0 {
		t.Errorf("throttle entry has no timestamp: %+v", ent)
	}
	if ent.Value <= 0 {
		t.Errorf("throttle entry has no smoothed-power reading: %+v", ent)
	}

	// The throttling response: a DVFS step down (price control or the
	// emergency backstop) at or after the entry, time-ordered with it.
	response := false
	for _, ev := range events[entry:] {
		if ev.Kind == telemetry.KindDVFS && (ev.Class == "down" || ev.Class == "force") {
			if ev.Time < ent.Time {
				t.Fatalf("DVFS response at t=%v precedes throttle entry at t=%v", ev.Time, ent.Time)
			}
			if ev.Value >= ev.Prev {
				t.Fatalf("downward DVFS event raised supply: %+v", ev)
			}
			response = true
			break
		}
	}
	if !response {
		t.Error("no downward DVFS event follows the throttle entry")
	}

	// Episodes resolve: a later transition out of the entered state exists
	// (back to normal, or emergency→threshold as the allowance cut bites).
	exit := false
	for _, ev := range events[entry+1:] {
		if ev.Kind == telemetry.KindThrottle && ev.Name != ent.Name {
			exit = true
			break
		}
	}
	if !exit {
		t.Error("throttle state never transitioned again — episode cannot be bounded")
	}

	// Timestamps are monotone non-decreasing, so the stream is a timeline.
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatalf("event %d at t=%v precedes event %d at t=%v",
				i, events[i].Time, i-1, events[i-1].Time)
		}
	}

	// Allowance redistribution events carry the throttling context.
	sawCurbed := false
	for _, ev := range events {
		if ev.Kind == telemetry.KindAllowance && ev.Name != "normal" {
			sawCurbed = true
			break
		}
	}
	if !sawCurbed {
		t.Error("no allowance event tagged with a throttling state")
	}
}
