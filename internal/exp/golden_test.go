package exp

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"pricepower/internal/check"
	"pricepower/internal/lbt"
	"pricepower/internal/sim"
	"pricepower/internal/workload"
)

var update = flag.Bool("update", false, "regenerate the golden digest fixtures")

const goldenPath = "testdata/golden_digests.txt"

// goldenRun is one named deterministic experiment whose digest is pinned.
type goldenRun struct {
	name string
	run  func() (string, error)
}

// tableDigest folds rendered tables into one hex digest — pinning both the
// numbers and their formatting.
func tableDigest(tables ...*Table) string {
	d := check.NewDigest()
	for _, t := range tables {
		d = d.String(t.String())
	}
	return fmt.Sprintf("%016x", uint64(d))
}

// goldenRuns enumerates the pinned experiments: the paper's running
// examples (Tables 1–3), the platform tables (4–6), a deterministic
// Table-7-scale market trace, short comparative runs behind Figures 4–6,
// the priority study (Figure 7), the dormant/active trace (Figure 8), and
// per-governor replay traces of one workload set.
func goldenRuns() []goldenRun {
	runs := []goldenRun{
		{"table1", func() (string, error) { return tableDigest(Table1()), nil }},
		{"table2", func() (string, error) { return tableDigest(Table2()), nil }},
		{"table3", func() (string, error) { return tableDigest(Table3()), nil }},
		{"table4", func() (string, error) { return tableDigest(Table4()), nil }},
		{"table5", func() (string, error) { return tableDigest(Table5()), nil }},
		{"table6", func() (string, error) { return tableDigest(Table6()), nil }},
		// Table 7 itself measures wall-clock; what is pinned here is the
		// market state trajectory of a Table-7-scale market with LBT moves
		// applied — the digest is time-free and fully deterministic.
		{"table7-market", func() (string, error) {
			m, planner := BuildScaledMarket(Table7Config{V: 4, C: 4, T: 8}, 42)
			rec := check.NewRecorder("table7-market", 42, "V=4 C=4 T=8", check.RecorderOptions{})
			for i := 0; i < 120; i++ {
				m.StepOnce()
				if i%10 == 9 {
					if mv := planner.PlanForCluster(0, lbt.Migrate); mv != nil {
						m.MoveTask(mv.Agent, mv.ToCore)
					}
				}
				rec.RecordRound(m)
			}
			return rec.Trace().FinalHex(), nil
		}},
		{"fig4-6", func() (string, error) {
			c, err := RunComparative(4, sim.Second)
			if err != nil {
				return "", err
			}
			return tableDigest(
				c.MissTable("fig4"), c.PowerTable("fig5"), c.EfficiencyTable("fig6")), nil
		}},
		{"fig7", func() (string, error) {
			tb, _, _, err := Fig7(sim.Second)
			if err != nil {
				return "", err
			}
			return tableDigest(tb), nil
		}},
		{"fig8", func() (string, error) {
			tb, _, err := Fig8(sim.Second, sim.Second)
			if err != nil {
				return "", err
			}
			return tableDigest(tb), nil
		}},
	}
	// One full platform replay trace per governor: market digests every
	// round (PPM only — the others have no market) plus platform digests on
	// a 100 ms grid.
	for _, gov := range GovernorNames {
		gov := gov
		runs = append(runs, goldenRun{"runset-" + gov, func() (string, error) {
			set, _ := workload.SetByName("m2")
			rec := check.NewRecorder("runset-"+gov, 0, "m2/4W/1s",
				check.RecorderOptions{SampleEvery: 100 * sim.Millisecond})
			if _, err := RunSetOpts(gov, set, 4, sim.Second, RunOptions{Recorder: rec}); err != nil {
				return "", err
			}
			return rec.Trace().FinalHex(), nil
		}})
	}
	return runs
}

func readGoldens(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		out[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGoldenDigests pins every named experiment's digest. A mismatch means
// the simulation's numerical behavior changed: if that is intentional,
// regenerate with `go test ./internal/exp -run TestGoldenDigests -update`;
// if not, EXPERIMENTS.md ("Bisecting a digest mismatch") explains how to
// localize the diverging round with check.Replay.
func TestGoldenDigests(t *testing.T) {
	runs := goldenRuns()
	got := make(map[string]string, len(runs))
	for _, r := range runs {
		hex, err := r.run()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		got[r.name] = hex
	}

	if *update {
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		b.WriteString("# Golden digests of the deterministic experiment set.\n")
		b.WriteString("# Regenerate: go test ./internal/exp -run TestGoldenDigests -update\n")
		b.WriteString("# Digests are bit-exact FNV-1a folds over float64 state; they are\n")
		b.WriteString("# specific to this module's code, not to the host architecture, as\n")
		b.WriteString("# long as the compiler does not fuse floating-point operations.\n")
		for _, n := range names {
			fmt.Fprintf(&b, "%s %s\n", n, got[n])
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(got), goldenPath)
		return
	}

	want := readGoldens(t)
	if want == nil {
		t.Fatalf("%s missing — run with -update to create it", goldenPath)
	}
	for name, hex := range got {
		g, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden recorded — run with -update", name)
			continue
		}
		if g != hex {
			t.Errorf("%s: digest %s != golden %s (intentional change? re-run with -update; "+
				"otherwise see EXPERIMENTS.md on bisecting digest mismatches)", name, hex, g)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("stale golden %s — run with -update", name)
		}
	}
}

// TestGoldenStability re-runs a pinned experiment twice in-process: the
// digests must agree with themselves regardless of what the fixture says.
func TestGoldenStability(t *testing.T) {
	for _, r := range goldenRuns() {
		if r.name != "table7-market" && r.name != "runset-PPM" {
			continue
		}
		a, err := r.run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.run()
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: back-to-back runs digest %s then %s", r.name, a, b)
		}
	}
}
