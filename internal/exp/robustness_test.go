package exp

import (
	"math"
	"testing"

	"pricepower/internal/metrics"
	"pricepower/internal/platform"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/workload"
)

// Determinism: the whole system — platform, scheduler, market, LBT — is a
// pure function of its inputs. Two identical runs must produce identical
// results to the last bit.
func TestRunDeterminism(t *testing.T) {
	set, _ := workload.SetByName("m2")
	a, err := RunSet("PPM", set, 4.0, 20*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSet("PPM", set, 4.0, 20*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical runs diverged:\n  %+v\n  %+v", a, b)
	}
}

// fuzzOne runs a random workload under one governor and checks the global
// invariants that must hold for ANY workload: no panic, power within the
// platform envelope, work actually delivered, and (with a TDP) the cap
// respected on average.
func fuzzOne(t *testing.T, governor string, seed uint64, wtdp float64) {
	t.Helper()
	rng := sim.NewRand(seed)
	specs := workload.Random(rng, workload.DefaultRandomConfig(2+rng.Intn(5)))
	p := platform.NewTC2()
	g, err := NewGovernor(governor, wtdp)
	if err != nil {
		t.Fatal(err)
	}
	p.SetGovernor(g)
	PlaceOnLittle(p, specs)
	pr := metrics.NewProbe(p, 2*sim.Second)
	pr.Attach()
	p.Run(20 * sim.Second)

	if w := pr.AveragePower(); w <= 0 || w > 8.5 || math.IsNaN(w) {
		t.Errorf("%s seed %d: average power %v outside the platform envelope", governor, seed, w)
	}
	if wtdp > 0 {
		if w := pr.AveragePower(); w > wtdp*1.15 {
			t.Errorf("%s seed %d: average power %.2f breaks the %.1f W budget", governor, seed, w, wtdp)
		}
	}
	var beats float64
	for _, tk := range p.Tasks() {
		beats += tk.Heartbeats()
		if hr := tk.HeartRate(p.Now()); math.IsNaN(hr) || hr < 0 {
			t.Errorf("%s seed %d: task %s heart rate %v", governor, seed, tk.Name, hr)
		}
	}
	if beats <= 0 {
		t.Errorf("%s seed %d: no work delivered at all", governor, seed)
	}
}

// TestFuzzGovernors sweeps random workloads through all three governors
// with and without a TDP budget.
func TestFuzzGovernors(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, gov := range GovernorNames {
		for _, seed := range seeds {
			fuzzOne(t, gov, seed, 0)
			fuzzOne(t, gov, seed, 4.0)
		}
	}
}

// Random workloads also drive the dynamic case: tasks arriving and leaving
// at random times must never wedge the governor.
func TestFuzzChurn(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		rng := sim.NewRand(seed)
		specs := workload.Random(rng, workload.DefaultRandomConfig(6))
		p := platform.NewTC2()
		g, _ := NewGovernor("PPM", 4.0)
		p.SetGovernor(g)
		var live []*task.Task
		// First two tasks at boot, the rest staggered; removals interleave.
		live = append(live, p.AddTask(specs[0], 2), p.AddTask(specs[1], 3))
		for i := 2; i < len(specs); i++ {
			spec := specs[i]
			at := sim.FromSeconds(rng.Range(1, 15))
			p.Engine.At(at, func(now sim.Time) {
				live = append(live, p.AddTask(spec, 2))
			})
		}
		p.Engine.At(sim.FromSeconds(8), func(now sim.Time) {
			p.RemoveTask(live[0])
		})
		p.Run(25 * sim.Second)
		if len(p.Tasks()) == 0 {
			t.Errorf("seed %d: all tasks vanished", seed)
		}
		if w := p.Power(); w <= 0 || math.IsNaN(w) {
			t.Errorf("seed %d: power %v after churn", seed, w)
		}
	}
}

func TestRandomGeneratorBounds(t *testing.T) {
	rng := sim.NewRand(42)
	cfg := workload.DefaultRandomConfig(50)
	specs := workload.Random(rng, cfg)
	if len(specs) != 50 {
		t.Fatalf("generated %d specs", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid random spec: %v", err)
		}
		if s.Priority < 1 || s.Priority > cfg.PriorityMax {
			t.Errorf("priority %d out of bounds", s.Priority)
		}
		for _, ph := range s.Phases {
			d := ph.HBCostLittle * s.TargetHR()
			if d < cfg.DemandMin*0.7-1 || d > cfg.DemandMax*1.3+1 {
				t.Errorf("phase demand %v outside bounds", d)
			}
			if ph.SpeedupBig < cfg.SpeedupMin || ph.SpeedupBig > cfg.SpeedupMax {
				t.Errorf("speedup %v outside bounds", ph.SpeedupBig)
			}
		}
	}
	if workload.Random(rng, workload.RandomConfig{}) != nil {
		t.Error("zero-task config produced specs")
	}
}
