// Package exp regenerates every table and figure of the paper's evaluation:
// the running-example traces (Tables 1–3), the demand-conversion
// illustration (Table 4), the benchmark and workload-set inventories
// (Tables 5–6), the scalability study (Table 7), the comparative studies
// (Figures 4–6), and the priority/savings case studies (Figures 7–8).
//
// Each experiment returns a Table (and, for the figures, the underlying
// numeric results) so the same code serves cmd/experiments, the test suite,
// and the benchmark harness.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "  (%s)\n", t.Note)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
