package exp

import (
	"fmt"
	"os"

	"pricepower/internal/check"
	"pricepower/internal/core"
	"pricepower/internal/hl"
	"pricepower/internal/hpm"
	"pricepower/internal/hw"
	"pricepower/internal/metrics"
	"pricepower/internal/platform"
	"pricepower/internal/ppm"
	"pricepower/internal/sim"
	"pricepower/internal/task"
	"pricepower/internal/telemetry"
	"pricepower/internal/workload"
)

// GovernorNames lists the three compared schemes in the paper's order.
var GovernorNames = []string{"PPM", "HPM", "HL"}

// Warmup is the settling time excluded from measurements in comparative
// runs (HRM windows fill, the market boots).
const Warmup = 5 * sim.Second

// DefaultRunDuration is the measured virtual time per comparative run.
const DefaultRunDuration = 120 * sim.Second

// RunResult summarizes one (workload set, governor) run.
type RunResult struct {
	Governor string
	Set      string
	// MissFrac is the fraction of time any task was below its minimum heart
	// rate (Figures 4 and 6).
	MissFrac float64
	// AvgPower is the mean chip power in W (Figure 5).
	AvgPower float64
	// Energy is joules over the measured window.
	Energy float64
	// Migrations counts task movements (total, cross-cluster).
	Migrations, CrossMigrations int
	// Transitions counts V-F changes across clusters (thermal cycling).
	Transitions int
	// PeakTempC is the hottest cluster die temperature reached (°C, RC
	// thermal model at 25 °C ambient).
	PeakTempC float64
	// Heartbeats is the total application progress delivered during the
	// measured window.
	Heartbeats float64
}

// EnergyPerKBeat reports joules per thousand heartbeats — the
// energy-efficiency view of a run (the paper's goal is meeting demands "at
// minimal energy", so less is better at equal miss rates).
func (r RunResult) EnergyPerKBeat() float64 {
	if r.Heartbeats <= 0 {
		return 0
	}
	return r.Energy / r.Heartbeats * 1000
}

// WorkloadProfiles adapts the workload registry's off-line profiling table
// to the PPM governor.
func WorkloadProfiles(name string, ct hw.CoreType) (float64, bool) {
	p, ok := workload.ProfileFor(name)
	if !ok {
		return 0, false
	}
	return p.Demand(ct), true
}

// NewGovernor builds one of the three compared governors for a TDP budget
// (0 = unconstrained).
func NewGovernor(name string, wtdp float64) (platform.Governor, error) {
	switch name {
	case "PPM":
		cfg := ppm.DefaultConfig(wtdp)
		cfg.Profiles = WorkloadProfiles
		return ppm.New(cfg), nil
	case "HPM":
		return hpm.New(hpm.DefaultConfig(wtdp)), nil
	case "HL":
		return hl.New(hl.DefaultConfig(wtdp)), nil
	default:
		return nil, fmt.Errorf("exp: unknown governor %q (want PPM, HPM or HL)", name)
	}
}

// CheckEnabled reports whether the PRICEPOWER_CHECK environment variable
// asks for invariant-checked runs (any non-empty value but "0" enables; the
// CI invariant job sets PRICEPOWER_CHECK=1).
func CheckEnabled() bool {
	v := os.Getenv("PRICEPOWER_CHECK")
	return v != "" && v != "0"
}

// RunOptions tunes a checked/recorded run; the zero value reproduces the
// plain RunSet behavior with checking governed by PRICEPOWER_CHECK.
type RunOptions struct {
	// Check attaches an invariant checker and fails the run on any
	// violation, regardless of PRICEPOWER_CHECK.
	Check bool
	// Recorder, when set, is attached to the platform so the run leaves a
	// replay trace (the recorder's Market field is filled in for PPM).
	Recorder *check.Recorder
	// Telemetry, when set, is attached to the platform (and through it to a
	// telemetry-aware governor) so the run emits the structured event
	// stream; the invariant checker, when also enabled, mirrors violations
	// into the same stream.
	Telemetry *telemetry.Emitter
	// Faults, when set, is attached to the platform before the run starts
	// so the whole run executes under the injected fault schedule
	// (internal/fault).
	Faults platform.FaultInjector
	// MaxOverRounds overrides the checker's tdp-settled streak tolerance
	// (fault windows legitimately pin the smoothed power above the band —
	// a refused down-step has no physical recourse until the window ends).
	MaxOverRounds int
}

// RunSet executes one workload set under one governor on a fresh TC2
// platform for the given measured duration and returns the summary.
// Tasks boot on the LITTLE cluster (as the paper's Linux does), spread
// round-robin over its cores. With PRICEPOWER_CHECK set the run executes
// under the invariant checker and fails on any violation.
func RunSet(governor string, set workload.Set, wtdp float64, dur sim.Time) (RunResult, error) {
	return RunSetOpts(governor, set, wtdp, dur, RunOptions{})
}

// RunSetOpts is RunSet with explicit checking/recording control.
func RunSetOpts(governor string, set workload.Set, wtdp float64, dur sim.Time, opts RunOptions) (RunResult, error) {
	specs, err := set.Specs(1)
	if err != nil {
		return RunResult{}, err
	}
	return RunSpecs(governor, set.Name, specs, wtdp, dur, opts)
}

// RunSpecs is RunSetOpts over explicit task specs — the entry point for
// random/synthetic workloads (robustness and invariant acceptance tests)
// that have no Table 6 set behind them. name labels the run in results and
// error messages.
func RunSpecs(governor, name string, specs []task.Spec, wtdp float64, dur sim.Time, opts RunOptions) (RunResult, error) {
	p := platform.NewTC2()
	g, err := NewGovernor(governor, wtdp)
	if err != nil {
		return RunResult{}, err
	}
	p.SetGovernor(g)
	if opts.Telemetry != nil {
		p.AttachTelemetry(opts.Telemetry)
	}
	if opts.Faults != nil {
		p.AttachFaults(opts.Faults)
	}
	PlaceOnLittle(p, specs)
	pr := metrics.NewProbe(p, Warmup)
	pr.Attach()
	thermal := hw.NewThermalModel(p.Chip, nil, 25)
	p.AttachThermal(thermal)

	var market *core.Market
	if pg, ok := g.(*ppm.Governor); ok {
		market = pg.Market()
	}
	var checker *check.Checker
	if opts.Check || CheckEnabled() {
		checker = check.New(check.Options{Market: market, Thermal: thermal, TDP: wtdp,
			MaxOverRounds: opts.MaxOverRounds})
		p.AttachChecker(checker)
	}
	if opts.Recorder != nil {
		opts.Recorder.Market = market
		p.AttachChecker(opts.Recorder)
	}

	p.Run(Warmup + dur)
	if checker != nil {
		if err := checker.Err(); err != nil {
			return RunResult{}, fmt.Errorf("%s/%s: %w", governor, name, err)
		}
	}

	total, cross := p.Migrations()
	trans := 0
	peakT := 25.0
	for i, cl := range p.Chip.Clusters {
		trans += cl.Transitions()
		if t := thermal.Peak(i); t > peakT {
			peakT = t
		}
	}
	return RunResult{
		Governor:        governor,
		Set:             name,
		MissFrac:        pr.AnyBelowFrac(),
		AvgPower:        pr.AveragePower(),
		Energy:          pr.Energy(),
		Migrations:      total,
		CrossMigrations: cross,
		Transitions:     trans,
		PeakTempC:       peakT,
		Heartbeats:      pr.HeartbeatsDelivered(),
	}, nil
}

// PlaceOnLittle spreads the specs round-robin across the LITTLE cluster's
// cores (falling back to core 0 on an all-big platform).
func PlaceOnLittle(p *platform.Platform, specs []task.Spec) {
	var littleCores []int
	for _, c := range p.Chip.Cores {
		if c.Type() == hw.Little {
			littleCores = append(littleCores, c.ID)
		}
	}
	if len(littleCores) == 0 {
		littleCores = []int{0}
	}
	for i, s := range specs {
		p.AddTask(s, littleCores[i%len(littleCores)])
	}
}

// RunAllSets runs every Table 6 workload set under every governor and
// returns results indexed [set][governor].
func RunAllSets(wtdp float64, dur sim.Time) ([][]RunResult, error) {
	out := make([][]RunResult, len(workload.Sets))
	for i, set := range workload.Sets {
		out[i] = make([]RunResult, len(GovernorNames))
		for j, gov := range GovernorNames {
			r, err := RunSet(gov, set, wtdp, dur)
			if err != nil {
				return nil, err
			}
			out[i][j] = r
		}
	}
	return out, nil
}
