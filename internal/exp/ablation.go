package exp

import (
	"fmt"

	"pricepower/internal/metrics"
	"pricepower/internal/platform"
	"pricepower/internal/ppm"
	"pricepower/internal/sim"
	"pricepower/internal/workload"
)

// AblationResult is one row of the design-knob study.
type AblationResult struct {
	Name        string
	MissFrac    float64
	AvgPower    float64
	Transitions int
	Migrations  int
}

// RunPPMVariant runs one workload set under a custom PPM configuration and
// reports the evaluation metrics — the primitive the ablation studies (and
// any downstream tuning) are built from.
func RunPPMVariant(cfg ppm.Config, set workload.Set, dur sim.Time) (AblationResult, error) {
	specs, err := set.Specs(1)
	if err != nil {
		return AblationResult{}, err
	}
	if cfg.Profiles == nil {
		cfg.Profiles = WorkloadProfiles
	}
	p := platform.NewTC2()
	p.SetGovernor(ppm.New(cfg))
	PlaceOnLittle(p, specs)
	pr := metrics.NewProbe(p, Warmup)
	pr.Attach()
	p.Run(Warmup + dur)
	trans := 0
	for _, cl := range p.Chip.Clusters {
		trans += cl.Transitions()
	}
	migs, _ := p.Migrations()
	return AblationResult{
		MissFrac:    pr.AnyBelowFrac(),
		AvgPower:    pr.AveragePower(),
		Transitions: trans,
		Migrations:  migs,
	}, nil
}

// Ablation sweeps the design knobs DESIGN.md calls out, one variant at a
// time against the PPM defaults, on a medium workload set (m2) under the
// 4 W cap — the regime where every knob is load-bearing:
//
//   - tolerance δ: reaction speed vs thermal cycling (§3.2.2);
//   - buffer zone Wth/Wtdp: utilization vs oscillation (§3.2.3);
//   - savings cap: transient outbidding power (§3.2.3);
//   - LBT on/off: the whole §3.3 module.
func Ablation(dur sim.Time) (*Table, error) {
	set, ok := workload.SetByName("m2")
	if !ok {
		return nil, fmt.Errorf("exp: workload set m2 missing")
	}
	const wtdp = 4.0
	t := &Table{
		Title: "Ablation: PPM design knobs on workload m2 under a 4 W TDP",
		Headers: []string{"Variant", "Miss [%]", "Avg power [W]",
			"V-F transitions", "Migrations"},
		Note: "each variant changes one knob from the defaults (δ=0.2, Wth=0.9·Wtdp, savings 5×, LBT on)",
	}

	variants := []struct {
		name string
		cfg  func() ppm.Config
	}{
		{"defaults", func() ppm.Config { return ppm.DefaultConfig(wtdp) }},
		{"δ=0.05 (twitchy)", func() ppm.Config {
			c := ppm.DefaultConfig(wtdp)
			c.Market.Tolerance = 0.05
			return c
		}},
		{"δ=0.5 (sluggish)", func() ppm.Config {
			c := ppm.DefaultConfig(wtdp)
			c.Market.Tolerance = 0.5
			return c
		}},
		{"buffer Wth=0.7·Wtdp", func() ppm.Config {
			c := ppm.DefaultConfig(wtdp)
			c.Market.Wth = 0.7 * wtdp
			return c
		}},
		{"buffer Wth=0.97·Wtdp", func() ppm.Config {
			c := ppm.DefaultConfig(wtdp)
			c.Market.Wth = 0.97 * wtdp
			return c
		}},
		{"savings off", func() ppm.Config {
			c := ppm.DefaultConfig(wtdp)
			c.Market.SavingsCap = 1e-9
			return c
		}},
		{"LBT off", func() ppm.Config {
			c := ppm.DefaultConfig(wtdp)
			c.DisableLBT = true
			return c
		}},
	}
	for _, v := range variants {
		r, err := RunPPMVariant(v.cfg(), set, dur)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, fmt.Sprintf("%.1f", r.MissFrac*100),
			fmt.Sprintf("%.2f", r.AvgPower), r.Transitions, r.Migrations)
	}
	return t, nil
}
