// Package hl re-implements the paper's second baseline: the Linaro
// heterogeneity-aware scheduler shipped with Linux 3.8 for big.LITTLE [3],
// paired with the cpufreq ondemand governor (§5.3).
//
// Policy, as the paper describes it:
//
//   - a task's activeness — the time it spends in the active run queue,
//     i.e. its PELT load — is the migration signal: above an up-threshold
//     the task moves to the big cluster, below a down-threshold it moves
//     back to LITTLE ("the HL scheduler migrates the tasks to the powerful
//     A15 cluster at the first opportunity");
//   - the scheduler does not react to the demands of individual tasks: all
//     tasks keep the default fair-share weight and no heart-rate feedback
//     exists;
//   - the ondemand governor jumps a cluster to its maximum frequency when
//     utilization exceeds the up threshold (95 %), otherwise it picks the
//     lowest frequency that keeps utilization at ~80 %;
//   - under a TDP budget (the Figure 6 experiment) the A15 cluster is
//     switched off outright once chip power exceeds the budget, which
//     bounds power at the LITTLE cluster's 2 W envelope.
package hl

import (
	"math"

	"pricepower/internal/hw"
	"pricepower/internal/platform"
	"pricepower/internal/sim"
)

// Config tunes the baseline.
type Config struct {
	// SamplePeriod is the ondemand sampling period (default 100 ms, the
	// cpufreq default magnitude).
	SamplePeriod sim.Time
	// MigratePeriod is how often migration thresholds are checked (default
	// 50 ms).
	MigratePeriod sim.Time
	// UpThreshold / DownThreshold are the PELT-load bounds for big/LITTLE
	// migration (defaults 0.8 / 0.3).
	UpThreshold, DownThreshold float64
	// OndemandUp is the utilization above which ondemand jumps to fmax
	// (default 0.95); below it the governor targets OndemandTarget (0.8).
	OndemandUp, OndemandTarget float64
	// Wtdp is the TDP budget; above it the big cluster is powered off
	// permanently. 0 disables the mechanism.
	Wtdp float64
}

// DefaultConfig returns the baseline tuning for a given TDP (0 = none).
func DefaultConfig(wtdp float64) Config {
	return Config{
		SamplePeriod:   100 * sim.Millisecond,
		MigratePeriod:  50 * sim.Millisecond,
		UpThreshold:    0.8,
		DownThreshold:  0.3,
		OndemandUp:     0.95,
		OndemandTarget: 0.8,
		Wtdp:           wtdp,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig(c.Wtdp)
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = d.SamplePeriod
	}
	if c.MigratePeriod <= 0 {
		c.MigratePeriod = d.MigratePeriod
	}
	if c.UpThreshold <= 0 {
		c.UpThreshold = d.UpThreshold
	}
	if c.DownThreshold <= 0 {
		c.DownThreshold = d.DownThreshold
	}
	if c.OndemandUp <= 0 {
		c.OndemandUp = d.OndemandUp
	}
	if c.OndemandTarget <= 0 {
		c.OndemandTarget = d.OndemandTarget
	}
	return c
}

// Governor implements platform.Governor.
type Governor struct {
	cfg Config
	p   *platform.Platform

	nextSample  sim.Time
	nextMigrate sim.Time
	bigOff      bool
}

// New builds an HL governor.
func New(cfg Config) *Governor { return &Governor{cfg: cfg.withDefaults()} }

// Name implements platform.Governor.
func (g *Governor) Name() string { return "HL" }

// BigClusterOff reports whether the TDP mechanism has shut the big cluster
// down.
func (g *Governor) BigClusterOff() bool { return g.bigOff }

// Attach implements platform.Governor.
func (g *Governor) Attach(p *platform.Platform) {
	g.p = p
	g.nextSample = g.cfg.SamplePeriod
	g.nextMigrate = g.cfg.MigratePeriod
}

// Tick implements platform.Governor.
func (g *Governor) Tick(now sim.Time) {
	if g.cfg.Wtdp > 0 && !g.bigOff && g.p.SensorPower() > g.cfg.Wtdp {
		g.shutBigCluster()
	}
	if now >= g.nextMigrate {
		g.nextMigrate += g.cfg.MigratePeriod
		g.migrate()
	}
	if now >= g.nextSample {
		g.nextSample += g.cfg.SamplePeriod
		g.ondemand()
	}
}

// migrate applies the activeness thresholds.
func (g *Governor) migrate() {
	for _, t := range g.p.Tasks() {
		if g.p.Migrating(t) {
			continue
		}
		load := g.p.Load(t)
		cl := g.p.ClusterOf(t)
		switch {
		case cl.Spec.Type == hw.Little && load > g.cfg.UpThreshold && !g.bigOff:
			if dst := g.emptiestCore(hw.Big); dst >= 0 {
				g.p.Migrate(t, dst)
			}
		case cl.Spec.Type == hw.Big && load < g.cfg.DownThreshold:
			if dst := g.emptiestCore(hw.Little); dst >= 0 {
				g.p.Migrate(t, dst)
			}
		}
	}
}

// ondemand runs the cpufreq policy per cluster.
func (g *Governor) ondemand() {
	for _, cl := range g.p.Chip.Clusters {
		if !cl.On {
			continue
		}
		maxUtil := 0.0
		for _, c := range cl.Cores {
			if c.Utilization > maxUtil {
				maxUtil = c.Utilization
			}
		}
		if maxUtil > g.cfg.OndemandUp {
			cl.SetLevel(cl.NumLevels() - 1)
			continue
		}
		// Pick the lowest frequency that would put the busiest core at the
		// target utilization.
		cur := float64(cl.CurLevel().FreqMHz)
		want := cur * maxUtil / g.cfg.OndemandTarget
		cl.SetLevel(cl.LevelForSupply(want))
	}
}

// shutBigCluster evacuates and powers off every big cluster (the paper's
// TDP handling for HL: "powering down of the A15 cluster guarantees that
// the total power consumption will be well below the TDP constraint").
func (g *Governor) shutBigCluster() {
	g.bigOff = true
	for _, t := range g.p.Tasks() {
		if g.p.ClusterOf(t).Spec.Type == hw.Big {
			if dst := g.emptiestCore(hw.Little); dst >= 0 {
				g.p.Migrate(t, dst)
			}
		}
	}
	for _, cl := range g.p.Chip.Clusters {
		if cl.Spec.Type == hw.Big {
			cl.PowerOff()
		}
	}
}

// emptiestCore returns the core of the given type hosting the fewest tasks,
// or -1 when none is available.
func (g *Governor) emptiestCore(ct hw.CoreType) int {
	best, bestN := -1, math.MaxInt32
	for _, c := range g.p.Chip.Cores {
		if c.Type() != ct || !c.Cluster.On {
			continue
		}
		if n := len(g.p.TasksOnCore(c.ID)); n < bestN {
			best, bestN = c.ID, n
		}
	}
	return best
}

var _ platform.Governor = (*Governor)(nil)
