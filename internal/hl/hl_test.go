package hl

import (
	"testing"

	"pricepower/internal/hw"
	"pricepower/internal/metrics"
	"pricepower/internal/platform"
	"pricepower/internal/sim"
	"pricepower/internal/task"
)

func spec(name string, demandLittle float64) task.Spec {
	return task.Spec{
		Name:     name,
		Priority: 1,
		MinHR:    24,
		MaxHR:    30,
		Phases:   []task.Phase{{HBCostLittle: demandLittle / 27, SpeedupBig: 2}},
		Loop:     true,
	}
}

func newRig(cfg Config) (*platform.Platform, *Governor) {
	p := platform.NewTC2()
	g := New(cfg)
	p.SetGovernor(g)
	return p, g
}

// "The HL scheduler migrates the tasks to the powerful A15 cluster at the
// first opportunity": a CPU-bound task saturates its LITTLE core, its load
// rises past the up-threshold, and it moves to big.
func TestBusyTaskMigratesToBigQuickly(t *testing.T) {
	p, _ := newRig(DefaultConfig(0))
	tk := p.AddTask(spec("busy", 900), 2)
	p.Run(2 * sim.Second)
	if p.ClusterOf(tk).Spec.Type != hw.Big {
		t.Errorf("CPU-bound task still on %v after 2s", p.ClusterOf(tk).Spec.Type)
	}
}

// A lightly-loaded task on a big core drops below the down-threshold and
// returns to LITTLE.
func TestLightTaskReturnsToLittle(t *testing.T) {
	p, _ := newRig(DefaultConfig(0))
	s := spec("light", 100)
	s.Phases[0].SelfCapHR = 28 // paces itself: low load on a big core
	tk := p.AddTask(s, 0)
	p.Run(10 * sim.Second)
	if p.ClusterOf(tk).Spec.Type != hw.Little {
		t.Errorf("light task still on %v", p.ClusterOf(tk).Spec.Type)
	}
}

// ondemand jumps to fmax above the up threshold…
func TestOndemandRacesToMax(t *testing.T) {
	p, _ := newRig(DefaultConfig(0))
	p.AddTask(spec("busy", 2000), 0) // saturates a big core
	p.Run(5 * sim.Second)
	big := p.Chip.Clusters[0]
	if big.Level() != big.NumLevels()-1 {
		t.Errorf("big level = %d under saturation, want top", big.Level())
	}
}

// …and scales down toward the 80 % target when load is modest.
func TestOndemandScalesDown(t *testing.T) {
	p, _ := newRig(DefaultConfig(0))
	s := spec("v", 300)
	s.Phases[0].SelfCapHR = 30 // consumes ≤ 333 PU
	p.AddTask(s, 2)
	little := p.Chip.Clusters[1]
	little.SetLevel(little.NumLevels() - 1)
	p.Run(10 * sim.Second)
	if f := little.CurLevel().FreqMHz; f > 500 {
		t.Errorf("LITTLE frequency = %d MHz for a ≈330 PU task, want ≤ 500", f)
	}
}

// HL ignores heart rates and priorities: weights stay at the fair default.
func TestWeightsUntouched(t *testing.T) {
	p, _ := newRig(DefaultConfig(0))
	a := p.AddTask(spec("a", 900), 2)
	b := p.AddTask(spec("b", 300), 2)
	p.Run(5 * sim.Second)
	if p.Weight(a) != p.Weight(b) {
		t.Errorf("weights diverged: %v vs %v", p.Weight(a), p.Weight(b))
	}
}

// Under TDP, exceeding the budget shuts the big cluster off permanently and
// evacuates its tasks.
func TestTDPShutsBigCluster(t *testing.T) {
	cfg := DefaultConfig(4.0)
	p, g := newRig(cfg)
	a := p.AddTask(spec("a", 1400), 0)
	b := p.AddTask(spec("b", 1400), 1)
	c := p.AddTask(spec("c", 1400), 2)
	pr := metrics.NewProbe(p, 5*sim.Second)
	pr.Attach()
	p.Run(20 * sim.Second)
	if !g.BigClusterOff() {
		t.Fatal("big cluster not shut down despite TDP breach")
	}
	if p.Chip.Clusters[0].On {
		t.Error("big cluster still powered")
	}
	for _, tk := range []*task.Task{a, b, c} {
		if p.ClusterOf(tk).Spec.Type != hw.Little {
			t.Errorf("task %s not evacuated to LITTLE", tk.Name)
		}
	}
	if avg := pr.AveragePower(); avg > 4.0 {
		t.Errorf("average power = %.2f W after shutdown", avg)
	}
}

func TestConfigDefaults(t *testing.T) {
	g := New(Config{})
	if g.cfg.SamplePeriod != 100*sim.Millisecond || g.cfg.UpThreshold != 0.8 {
		t.Errorf("defaults not applied: %+v", g.cfg)
	}
	if g.Name() != "HL" {
		t.Errorf("name = %q", g.Name())
	}
}
