// Package workload defines the evaluation workloads: the eight benchmarks of
// Table 5 (PARSEC, Vision, SPEC2006) with their inputs, the nine
// multiprogrammed workload sets of Table 6, the intensity metric that
// classifies them, and the off-line profiles the LBT module speculates with.
//
// We cannot run the original binaries, so each benchmark×input is a
// synthetic phase-structured task calibrated to (a) the paper's intensity
// classes and (b) plausible per-benchmark heart-rate semantics (frames/s for
// the video codecs, swaptions/s for the Monte-Carlo pricer, …). What the
// framework observes — heartbeats as a function of supplied cycles, demand
// that differs across core types, phase behaviour — is preserved.
package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pricepower/internal/hw"
	"pricepower/internal/sim"
	"pricepower/internal/task"
)

// Input is one benchmark input configuration (Table 5's "Inputs" column),
// calibrated for the simulator.
type Input struct {
	// BaseDemandA7 is the duration-weighted average demand on a LITTLE core
	// in PUs at the target heart rate (the d_t^A7 used by the intensity
	// metric).
	BaseDemandA7 float64
	// SpeedupBig is how much less work the task needs per heartbeat on a
	// big core.
	SpeedupBig float64
	// TargetHR is the midpoint of the reference heart-rate range in hb/s.
	TargetHR float64
	// RangeFrac half-width of the reference range as a fraction of
	// TargetHR: MinHR = (1-RangeFrac)·Target, MaxHR = (1+RangeFrac)·Target.
	RangeFrac float64
	// SelfCapFactor bounds consumption at SelfCapFactor·TargetHR (0 =
	// CPU-bound, unbounded).
	SelfCapFactor float64
	// PhaseMults scale BaseDemandA7 per phase; PhaseDur is each phase's
	// length. Phases loop. Multipliers are normalized so their
	// duration-weighted mean is 1 (keeping BaseDemandA7 the true average).
	PhaseMults []float64
	PhaseDur   sim.Time
}

// Benchmark is one row of Table 5.
type Benchmark struct {
	Name        string
	Suite       string
	Description string
	InputsDesc  string
	HeartbeatAt string
	Inputs      map[string]Input
}

// Spec builds the task.Spec for this benchmark with the given input key and
// priority.
func (b *Benchmark) Spec(input string, priority int) (task.Spec, error) {
	in, canon, ok := b.input(input)
	if !ok {
		return task.Spec{}, fmt.Errorf("workload: benchmark %s has no input %q", b.Name, input)
	}
	input = canon
	// Normalize multipliers to a mean of exactly 1.
	mults := in.PhaseMults
	if len(mults) == 0 {
		mults = []float64{1}
	}
	var sum float64
	for _, m := range mults {
		sum += m
	}
	mean := sum / float64(len(mults))
	spec := task.Spec{
		Name:     b.Name + "_" + input,
		Priority: priority,
		MinHR:    in.TargetHR * (1 - in.RangeFrac),
		MaxHR:    in.TargetHR * (1 + in.RangeFrac),
		Loop:     true,
	}
	for _, m := range mults {
		demand := in.BaseDemandA7 * m / mean
		spec.Phases = append(spec.Phases, task.Phase{
			Duration:     in.PhaseDur,
			HBCostLittle: demand / in.TargetHR,
			SpeedupBig:   in.SpeedupBig,
			SelfCapHR:    in.SelfCapFactor * in.TargetHR,
		})
	}
	return spec, nil
}

// MustSpec is Spec for registry-known inputs; it panics on error.
func (b *Benchmark) MustSpec(input string, priority int) task.Spec {
	s, err := b.Spec(input, priority)
	if err != nil {
		panic(err)
	}
	return s
}

// Profile is the off-line profiling data the LBT module uses to speculate
// about a task's behaviour on the other cluster type (§3.3, §5.2): average
// demand per core type. As in the paper, averages do not capture dynamic
// phases; the supply-demand module corrects mispredictions.
type Profile struct {
	DemandLittle float64 // avg PUs at target heart rate on a LITTLE core
	DemandBig    float64 // avg PUs at target heart rate on a big core
}

// Demand returns the profiled demand on the given core type.
func (p Profile) Demand(ct hw.CoreType) float64 {
	if ct == hw.Big {
		return p.DemandBig
	}
	return p.DemandLittle
}

// input resolves an input key, case-insensitively: the registry keys are
// lowercase (the paper's footnote conventions), but "N" must find "n". The
// returned canon is the registry's own key — composed task names must use
// it so ProfileFor("bench_input") lookups keep working.
func (b *Benchmark) input(key string) (in Input, canon string, ok bool) {
	if in, ok := b.Inputs[key]; ok {
		return in, key, true
	}
	low := strings.ToLower(key)
	in, ok = b.Inputs[low]
	return in, low, ok
}

// ProfileOf derives the off-line profile for a benchmark input.
func (b *Benchmark) ProfileOf(input string) (Profile, error) {
	in, _, ok := b.input(input)
	if !ok {
		return Profile{}, fmt.Errorf("workload: benchmark %s has no input %q", b.Name, input)
	}
	return Profile{
		DemandLittle: in.BaseDemandA7,
		DemandBig:    in.BaseDemandA7 / in.SpeedupBig,
	}, nil
}

var (
	profileOnce sync.Once
	profileTab  map[string]Profile
)

// ProfileFor looks a profile up by full task name ("bench_input"). It is the
// registry-wide profiling table handed to the LBT module. The table is built
// once from the (immutable) registry: the lookup sits on the fleet
// dispatcher's per-submission path, where rebuilding the composed names on
// every call dominated the routing cost.
func ProfileFor(taskName string) (Profile, bool) {
	profileOnce.Do(func() {
		profileTab = make(map[string]Profile)
		for _, b := range Benchmarks {
			for input := range b.Inputs {
				if p, err := b.ProfileOf(input); err == nil {
					profileTab[b.Name+"_"+input] = p
				}
			}
		}
	})
	p, ok := profileTab[taskName]
	return p, ok
}

// ByName returns the registered benchmark with the given name. Lookups are
// case-insensitive, matching SetByName: registry names are lowercase, but
// callers (CLI flags, fleet submissions) may spell them otherwise.
func ByName(name string) (*Benchmark, bool) {
	for _, b := range Benchmarks {
		if strings.EqualFold(b.Name, name) {
			return b, true
		}
	}
	return nil, false
}

// Names lists all registered benchmark names, sorted.
func Names() []string {
	names := make([]string, 0, len(Benchmarks))
	for _, b := range Benchmarks {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	return names
}
