package workload

import (
	"fmt"
	"strings"

	"pricepower/internal/hw"
	"pricepower/internal/task"
)

// Class is a workload-set intensity class (Table 6).
type Class int

const (
	Light  Class = iota // intensity ≤ 0: fits in the LITTLE cluster at fmax
	Medium              // 0 < intensity ≤ 0.30
	Heavy               // intensity > 0.30
)

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case Light:
		return "light"
	case Medium:
		return "medium"
	case Heavy:
		return "heavy"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Member identifies one benchmark×input in a workload set.
type Member struct {
	Benchmark string
	Input     string
}

// TaskName is the composed task name ("bench_input").
func (m Member) TaskName() string { return m.Benchmark + "_" + m.Input }

// Set is one multiprogrammed workload set of Table 6.
type Set struct {
	Name    string
	Members []Member
}

// Sets are the nine workload sets of Table 6. The paper's table is only
// partially legible in our source text; the composition below keeps every
// legible fragment and fills the remainder with the same benchmarks/inputs
// so that the intensity classification reproduces the published classes
// (see DESIGN.md).
var Sets = []Set{
	{"l1", []Member{{"texture", "v"}, {"tracking", "v"}, {"h264", "s"}}},
	{"l2", []Member{{"swaptions", "l"}, {"x264", "l"}, {"blackscholes", "l"}}},
	{"l3", []Member{{"texture", "v"}, {"multicnt", "v"}, {"h264", "b"}}},
	{"m1", []Member{{"swaptions", "n"}, {"bodytrack", "n"}, {"x264", "n"}}},
	{"m2", []Member{{"tracking", "v"}, {"multicnt", "v"}, {"blackscholes", "n"}}},
	{"m3", []Member{{"bodytrack", "n"}, {"texture", "f"}, {"h264", "fo"}}},
	{"h1", []Member{{"texture", "f"}, {"swaptions", "n"}, {"multicnt", "f"}}},
	{"h2", []Member{{"blackscholes", "n"}, {"x264", "n"}, {"tracking", "f"}}},
	{"h3", []Member{{"swaptions", "n"}, {"bodytrack", "n"}, {"tracking", "f"}}},
}

// SetByName looks a workload set up by its Table 6 name. Lookups are
// case-insensitive: the docs (and the ppmsim -set flag) spell the names in
// lowercase, but "M1" must find the same set as "m1".
func SetByName(name string) (Set, bool) {
	for _, s := range Sets {
		if strings.EqualFold(s.Name, name) {
			return s, true
		}
	}
	return Set{}, false
}

// Intensity computes the paper's metric for a set on a given LITTLE-cluster
// capacity:
//
//	intensity = (Σ_t d_t^A7 − S_A7^maxfreq) / S_A7^maxfreq
//
// where S_A7^maxfreq is the aggregate supply of the LITTLE cluster at its
// maximum frequency (3 cores × 1000 PU on TC2) and d_t^A7 the profiled
// average demand of each task on a LITTLE core.
func (s Set) Intensity(littleCapacityPU float64) (float64, error) {
	var total float64
	for _, m := range s.Members {
		b, ok := ByName(m.Benchmark)
		if !ok {
			return 0, fmt.Errorf("workload: set %s references unknown benchmark %s", s.Name, m.Benchmark)
		}
		p, err := b.ProfileOf(m.Input)
		if err != nil {
			return 0, err
		}
		total += p.DemandLittle
	}
	return (total - littleCapacityPU) / littleCapacityPU, nil
}

// TC2LittleCapacity is the aggregate LITTLE-cluster supply of the TC2 model
// at maximum frequency: 3 Cortex-A7 cores at 1000 MHz.
const TC2LittleCapacity = 3000.0

// ClassOf classifies an intensity value per Table 6.
func ClassOf(intensity float64) Class {
	switch {
	case intensity <= 0:
		return Light
	case intensity <= 0.30:
		return Medium
	default:
		return Heavy
	}
}

// Class reports the set's class on the TC2 platform.
func (s Set) Class() Class {
	in, err := s.Intensity(TC2LittleCapacity)
	if err != nil {
		panic(err)
	}
	return ClassOf(in)
}

// Specs instantiates the set's task specs, all at the given priority (the
// comparative study runs every task at equal priority because HPM and HL are
// priority-oblivious).
func (s Set) Specs(priority int) ([]task.Spec, error) {
	specs := make([]task.Spec, 0, len(s.Members))
	for _, m := range s.Members {
		b, ok := ByName(m.Benchmark)
		if !ok {
			return nil, fmt.Errorf("workload: set %s references unknown benchmark %s", s.Name, m.Benchmark)
		}
		spec, err := b.Spec(m.Input, priority)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// MustSpecs is Specs for the registry-defined sets; it panics on error.
func (s Set) MustSpecs(priority int) []task.Spec {
	specs, err := s.Specs(priority)
	if err != nil {
		panic(err)
	}
	return specs
}

// PeakClusterDemand reports the set's aggregate profiled demand on each core
// type — a feasibility diagnostic used by tests and docs.
func (s Set) PeakClusterDemand(ct hw.CoreType) float64 {
	var total float64
	for _, m := range s.Members {
		b, _ := ByName(m.Benchmark)
		p, _ := b.ProfileOf(m.Input)
		total += p.Demand(ct)
	}
	return total
}
