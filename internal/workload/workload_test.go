package workload

import (
	"math"
	"sort"
	"strings"
	"testing"

	"pricepower/internal/hw"
	"pricepower/internal/sim"
)

func TestRegistryHasAllTable5Benchmarks(t *testing.T) {
	want := map[string]string{
		"swaptions":    "PARSEC",
		"bodytrack":    "PARSEC",
		"x264":         "PARSEC",
		"blackscholes": "PARSEC",
		"h264":         "SPEC2006",
		"texture":      "Vision",
		"multicnt":     "Vision",
		"tracking":     "Vision",
	}
	if len(Benchmarks) != len(want) {
		t.Fatalf("registry has %d benchmarks, want %d", len(Benchmarks), len(want))
	}
	for name, suite := range want {
		b, ok := ByName(name)
		if !ok {
			t.Errorf("benchmark %s missing", name)
			continue
		}
		if b.Suite != suite {
			t.Errorf("%s suite = %s, want %s", name, b.Suite, suite)
		}
		if len(b.Inputs) == 0 {
			t.Errorf("%s has no inputs", name)
		}
		if b.Description == "" || b.HeartbeatAt == "" {
			t.Errorf("%s missing Table 5 metadata", name)
		}
	}
}

func TestAllSpecsValidate(t *testing.T) {
	for _, b := range Benchmarks {
		for input := range b.Inputs {
			spec, err := b.Spec(input, 1)
			if err != nil {
				t.Errorf("%s_%s: %v", b.Name, input, err)
				continue
			}
			if err := spec.Validate(); err != nil {
				t.Errorf("%s_%s spec invalid: %v", b.Name, input, err)
			}
			if !spec.Loop {
				t.Errorf("%s_%s not looping", b.Name, input)
			}
		}
	}
}

func TestSpecUnknownInput(t *testing.T) {
	b, _ := ByName("swaptions")
	if _, err := b.Spec("nonexistent", 1); err == nil {
		t.Error("Spec with unknown input did not error")
	}
}

func TestPhaseMultipliersPreserveAverageDemand(t *testing.T) {
	for _, b := range Benchmarks {
		for input, in := range b.Inputs {
			spec := b.MustSpec(input, 1)
			var sum float64
			for _, p := range spec.Phases {
				sum += p.HBCostLittle * spec.TargetHR()
			}
			avg := sum / float64(len(spec.Phases))
			if math.Abs(avg-in.BaseDemandA7) > 1e-6*in.BaseDemandA7 {
				t.Errorf("%s_%s: mean phase demand %v, want %v", b.Name, input, avg, in.BaseDemandA7)
			}
		}
	}
}

func TestProfileMatchesSpec(t *testing.T) {
	for _, b := range Benchmarks {
		for input, in := range b.Inputs {
			p, err := b.ProfileOf(input)
			if err != nil {
				t.Fatalf("%s_%s: %v", b.Name, input, err)
			}
			if p.DemandLittle != in.BaseDemandA7 {
				t.Errorf("%s_%s little demand = %v, want %v", b.Name, input, p.DemandLittle, in.BaseDemandA7)
			}
			wantBig := in.BaseDemandA7 / in.SpeedupBig
			if math.Abs(p.DemandBig-wantBig) > 1e-9 {
				t.Errorf("%s_%s big demand = %v, want %v", b.Name, input, p.DemandBig, wantBig)
			}
			if p.Demand(hw.Big) >= p.Demand(hw.Little) {
				t.Errorf("%s_%s: big demand not below little demand", b.Name, input)
			}
		}
	}
}

func TestProfileForByTaskName(t *testing.T) {
	p, ok := ProfileFor("tracking_f")
	if !ok {
		t.Fatal("ProfileFor(tracking_f) not found")
	}
	if p.DemandLittle != 1800 {
		t.Errorf("tracking_f little demand = %v, want 1800", p.DemandLittle)
	}
	if _, ok := ProfileFor("nosuch_x"); ok {
		t.Error("ProfileFor accepted unknown task")
	}
}

// TestWorkloadIntensityClasses pins Table 6: every set must land in its
// published intensity class.
func TestWorkloadIntensityClasses(t *testing.T) {
	wantClass := map[string]Class{
		"l1": Light, "l2": Light, "l3": Light,
		"m1": Medium, "m2": Medium, "m3": Medium,
		"h1": Heavy, "h2": Heavy, "h3": Heavy,
	}
	if len(Sets) != 9 {
		t.Fatalf("have %d sets, want 9", len(Sets))
	}
	for _, s := range Sets {
		in, err := s.Intensity(TC2LittleCapacity)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if got := ClassOf(in); got != wantClass[s.Name] {
			t.Errorf("set %s intensity %.3f class %v, want %v", s.Name, in, got, wantClass[s.Name])
		}
		if len(s.Members) != 3 {
			t.Errorf("set %s has %d members, want 3", s.Name, len(s.Members))
		}
	}
}

func TestSetSpecsInstantiable(t *testing.T) {
	for _, s := range Sets {
		specs, err := s.Specs(1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(specs) != len(s.Members) {
			t.Errorf("%s produced %d specs", s.Name, len(specs))
		}
		for _, sp := range specs {
			if sp.Priority != 1 {
				t.Errorf("%s task %s priority = %d", s.Name, sp.Name, sp.Priority)
			}
		}
	}
}

func TestSetByName(t *testing.T) {
	if _, ok := SetByName("h2"); !ok {
		t.Error("SetByName(h2) not found")
	}
	if _, ok := SetByName("zz"); ok {
		t.Error("SetByName(zz) found")
	}
}

// Every heavy set must still be feasible with ideal placement (otherwise the
// paper's ≲40 % PPM miss rates would be unreachable): the two most demanding
// tasks must fit on the two big cores, and the rest within LITTLE capacity.
func TestHeavySetsFeasibleWithIdealPlacement(t *testing.T) {
	const bigCore = 1200.0
	for _, s := range Sets {
		if s.Class() != Heavy {
			continue
		}
		type td struct{ little, big float64 }
		var ds []td
		for _, m := range s.Members {
			b, _ := ByName(m.Benchmark)
			p, _ := b.ProfileOf(m.Input)
			ds = append(ds, td{p.DemandLittle, p.DemandBig})
		}
		// Greedy: the two biggest little-demands go to the big cores.
		order := []int{0, 1, 2}
		sort.Slice(order, func(a, b int) bool { return ds[order[a]].little > ds[order[b]].little })
		bi, bj := order[0], order[1]
		slack := 0.10 // tolerate mild overload: heavy sets are allowed to miss a little
		var littleSum float64
		for k, d := range ds {
			if k == bi || k == bj {
				if d.big > bigCore*(1+slack) {
					t.Errorf("%s: task %d big demand %.0f > big core %.0f", s.Name, k, d.big, bigCore)
				}
				continue
			}
			littleSum += d.little
		}
		if littleSum > 1000*(1+slack) {
			t.Errorf("%s: residual little demand %.0f overloads one LITTLE core", s.Name, littleSum)
		}
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("Names() unsorted: %v", names)
		}
	}
}

func TestClassString(t *testing.T) {
	if Light.String() != "light" || Medium.String() != "medium" || Heavy.String() != "heavy" {
		t.Error("class names wrong")
	}
}

func TestMustSpecsAndPeakDemand(t *testing.T) {
	set, _ := SetByName("l2")
	specs := set.MustSpecs(2)
	if len(specs) != 3 || specs[0].Priority != 2 {
		t.Fatalf("MustSpecs wrong: %d specs", len(specs))
	}
	little := set.PeakClusterDemand(hw.Little)
	big := set.PeakClusterDemand(hw.Big)
	if little != 2200 {
		t.Errorf("l2 little aggregate = %v, want 2200", little)
	}
	if big >= little {
		t.Error("big aggregate not below little aggregate")
	}
}

func TestMemberTaskName(t *testing.T) {
	m := Member{Benchmark: "x264", Input: "n"}
	if m.TaskName() != "x264_n" {
		t.Errorf("TaskName = %q", m.TaskName())
	}
}

func TestRandomSpecsValidateHere(t *testing.T) {
	rng := sim.NewRand(5)
	specs := Random(rng, DefaultRandomConfig(10))
	if len(specs) != 10 {
		t.Fatalf("generated %d", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Degenerate config values are clamped.
	weird := Random(rng, RandomConfig{Tasks: 2, DemandMin: 100, DemandMax: 200,
		SpeedupMin: 1.5, SpeedupMax: 2, MaxPhases: 0, PriorityMax: 0})
	for _, s := range weird {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.Priority != 1 {
			t.Errorf("priority = %d with PriorityMax 0", s.Priority)
		}
	}
}

// TestLookupsCaseInsensitive is the regression test for the case-sensitive
// registry lookups: the docs spell every set and benchmark name in
// lowercase, so uppercase (and mixed-case) spellings must resolve to the
// same entries — across every registered set, benchmark and input.
func TestLookupsCaseInsensitive(t *testing.T) {
	for _, s := range Sets {
		upper, ok := SetByName(strings.ToUpper(s.Name))
		if !ok {
			t.Errorf("SetByName(%q) failed", strings.ToUpper(s.Name))
			continue
		}
		if upper.Name != s.Name {
			t.Errorf("SetByName(%q) resolved to %q, want %q", strings.ToUpper(s.Name), upper.Name, s.Name)
		}
	}
	for _, b := range Benchmarks {
		got, ok := ByName(strings.ToUpper(b.Name))
		if !ok || got != b {
			t.Errorf("ByName(%q) did not resolve to %s", strings.ToUpper(b.Name), b.Name)
			continue
		}
		for input := range b.Inputs {
			if _, err := b.Spec(strings.ToUpper(input), 1); err != nil {
				t.Errorf("%s.Spec(%q): %v", b.Name, strings.ToUpper(input), err)
			}
			if _, err := b.ProfileOf(strings.ToUpper(input)); err != nil {
				t.Errorf("%s.ProfileOf(%q): %v", b.Name, strings.ToUpper(input), err)
			}
		}
	}
	if _, ok := SetByName("nope"); ok {
		t.Error("unknown set name resolved")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown benchmark name resolved")
	}
}

// TestSpecCanonicalizesTaskName pins that a mixed-case input key composes
// the canonical lowercase task name, so ProfileFor keeps resolving it.
func TestSpecCanonicalizesTaskName(t *testing.T) {
	b, _ := ByName("SWAPTIONS")
	spec, err := b.Spec("N", 1)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "swaptions_n" {
		t.Fatalf("Spec composed name %q, want swaptions_n", spec.Name)
	}
	if _, ok := ProfileFor(spec.Name); !ok {
		t.Fatal("canonical name does not resolve a profile")
	}
}
