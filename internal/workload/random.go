package workload

import (
	"fmt"

	"pricepower/internal/sim"
	"pricepower/internal/task"
)

// RandomConfig bounds the random workload generator.
type RandomConfig struct {
	// Tasks is how many specs to generate.
	Tasks int
	// DemandMin/DemandMax bound each task's average LITTLE-core demand in
	// PUs at its target heart rate.
	DemandMin, DemandMax float64
	// SpeedupMin/SpeedupMax bound the big-core speedups.
	SpeedupMin, SpeedupMax float64
	// MaxPhases bounds the number of program phases per task (≥1).
	MaxPhases int
	// PriorityMax bounds the user priorities (≥1).
	PriorityMax int
}

// DefaultRandomConfig mirrors the §5.5 robustness setup scaled to the TC2
// platform: demands across the whole ladder, big speedups in the measured
// band, a handful of phases.
func DefaultRandomConfig(tasks int) RandomConfig {
	return RandomConfig{
		Tasks:       tasks,
		DemandMin:   50,
		DemandMax:   1800,
		SpeedupMin:  1.5,
		SpeedupMax:  2.5,
		MaxPhases:   4,
		PriorityMax: 7,
	}
}

// Random generates task specs from the generator's bounds — the fuel for
// robustness and fuzz tests (the governors must survive any demand mix
// without panicking or breaking their budget).
func Random(rng *sim.Rand, cfg RandomConfig) []task.Spec {
	if cfg.Tasks <= 0 {
		return nil
	}
	if cfg.MaxPhases < 1 {
		cfg.MaxPhases = 1
	}
	if cfg.PriorityMax < 1 {
		cfg.PriorityMax = 1
	}
	specs := make([]task.Spec, 0, cfg.Tasks)
	for i := 0; i < cfg.Tasks; i++ {
		target := rng.Range(10, 100)
		spec := task.Spec{
			Name:     fmt.Sprintf("rand%d", i),
			Priority: 1 + rng.Intn(cfg.PriorityMax),
			MinHR:    target * 0.9,
			MaxHR:    target * 1.1,
			Loop:     true,
		}
		base := rng.Range(cfg.DemandMin, cfg.DemandMax)
		speedup := rng.Range(cfg.SpeedupMin, cfg.SpeedupMax)
		phases := 1 + rng.Intn(cfg.MaxPhases)
		for ph := 0; ph < phases; ph++ {
			mult := rng.Range(0.7, 1.3)
			cap := 0.0
			if rng.Intn(2) == 0 {
				cap = target * rng.Range(1.1, 1.5)
			}
			spec.Phases = append(spec.Phases, task.Phase{
				Duration:     sim.FromSeconds(rng.Range(2, 12)),
				HBCostLittle: base * mult / target,
				SpeedupBig:   speedup,
				SelfCapHR:    cap,
			})
		}
		specs = append(specs, spec)
	}
	return specs
}
