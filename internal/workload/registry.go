package workload

import "pricepower/internal/sim"

// Benchmarks is the registry of Table 5: the eight applications of the
// evaluation, with the calibrated inputs used by the nine workload sets.
//
// Input-key conventions follow the paper's footnote: v = vga, f = fullhd,
// n = native, l = large; for h264 the keys are the video sequences
// s = soccer, b = bluesky, fo = foreman.
//
// Calibration: BaseDemandA7 values are chosen so the Table 6 sets fall into
// the paper's intensity classes on the TC2 model (LITTLE cluster capacity
// 3×1000 PU); SpeedupBig values sit in the 1.7–2.2× band reported for
// A15-vs-A7 on these suites; video-type tasks pace themselves slightly above
// their frame-rate goal while the compute kernels are closer to CPU-bound.
var Benchmarks = []*Benchmark{
	{
		Name:        "swaptions",
		Suite:       "PARSEC",
		Description: "Monte Carlo (MC) simulation to compute swaption prices",
		InputsDesc:  "native and large",
		HeartbeatAt: "every swaption",
		Inputs: map[string]Input{
			"l": {BaseDemandA7: 700, SpeedupBig: 2.0, TargetHR: 90, RangeFrac: 0.05,
				SelfCapFactor: 1.6, PhaseMults: []float64{0.9, 1.1, 1.0}, PhaseDur: 8 * sim.Second},
			// The native Monte-Carlo run prices a fixed portfolio at steady
			// throughput: no phase behaviour.
			"n": {BaseDemandA7: 1000, SpeedupBig: 2.0, TargetHR: 60, RangeFrac: 0.05,
				SelfCapFactor: 1.6, PhaseMults: []float64{1.0}, PhaseDur: 0},
		},
	},
	{
		Name:        "bodytrack",
		Suite:       "PARSEC",
		Description: "Tracks a human body through an image sequence",
		InputsDesc:  "native and large",
		HeartbeatAt: "every frame",
		Inputs: map[string]Input{
			"l": {BaseDemandA7: 800, SpeedupBig: 1.9, TargetHR: 27, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{0.8, 1.2, 1.0, 1.0}, PhaseDur: 6 * sim.Second},
			"n": {BaseDemandA7: 1200, SpeedupBig: 1.9, TargetHR: 27, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{0.85, 1.15, 1.0}, PhaseDur: 7 * sim.Second},
		},
	},
	{
		Name:        "x264",
		Suite:       "PARSEC",
		Description: "H.264/AVC video encoder",
		InputsDesc:  "native and large",
		HeartbeatAt: "every frame",
		Inputs: map[string]Input{
			"l": {BaseDemandA7: 900, SpeedupBig: 2.1, TargetHR: 30, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{0.7, 1.3, 1.0}, PhaseDur: 5 * sim.Second},
			"n": {BaseDemandA7: 1100, SpeedupBig: 2.1, TargetHR: 30, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{0.75, 1.25, 1.0}, PhaseDur: 6 * sim.Second},
		},
	},
	{
		Name:        "blackscholes",
		Suite:       "PARSEC",
		Description: "Solves the Black-Scholes PDE to price a portfolio of options",
		InputsDesc:  "native and large",
		HeartbeatAt: "every 50000 options",
		Inputs: map[string]Input{
			"l": {BaseDemandA7: 600, SpeedupBig: 2.0, TargetHR: 50, RangeFrac: 0.05,
				SelfCapFactor: 1.6, PhaseMults: []float64{1.0}, PhaseDur: 0},
			"n": {BaseDemandA7: 1300, SpeedupBig: 2.0, TargetHR: 40, RangeFrac: 0.05,
				SelfCapFactor: 1.6, PhaseMults: []float64{0.95, 1.05}, PhaseDur: 12 * sim.Second},
		},
	},
	{
		Name:        "h264",
		Suite:       "SPEC2006",
		Description: "H.264 reference video encoder",
		InputsDesc:  "foreman, soccer and bluesky",
		HeartbeatAt: "every frame",
		Inputs: map[string]Input{
			"s": {BaseDemandA7: 1000, SpeedupBig: 2.2, TargetHR: 25, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{0.8, 1.2}, PhaseDur: 8 * sim.Second},
			"b": {BaseDemandA7: 1300, SpeedupBig: 2.2, TargetHR: 25, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{0.9, 1.1, 1.0}, PhaseDur: 9 * sim.Second},
			"fo": {BaseDemandA7: 900, SpeedupBig: 2.2, TargetHR: 25, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{0.7, 1.3}, PhaseDur: 7 * sim.Second},
		},
	},
	{
		Name:        "texture",
		Suite:       "Vision",
		Description: "Texture synthesis (motion, tracking and stereo vision)",
		InputsDesc:  "vga and fullhd",
		HeartbeatAt: "every frame",
		Inputs: map[string]Input{
			"v": {BaseDemandA7: 800, SpeedupBig: 2.0, TargetHR: 31.5, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{0.9, 1.1}, PhaseDur: 5 * sim.Second},
			"f": {BaseDemandA7: 1600, SpeedupBig: 2.05, TargetHR: 20, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{0.85, 1.15, 1.0}, PhaseDur: 8 * sim.Second},
		},
	},
	{
		Name:        "multicnt",
		Suite:       "Vision",
		Description: "Image analysis (multiple object counting)",
		InputsDesc:  "vga and fullhd",
		HeartbeatAt: "every frame",
		Inputs: map[string]Input{
			"v": {BaseDemandA7: 900, SpeedupBig: 2.0, TargetHR: 30, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{1.1, 0.9}, PhaseDur: 6 * sim.Second},
			"f": {BaseDemandA7: 1700, SpeedupBig: 2.0, TargetHR: 18, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{1.0, 1.2, 0.8}, PhaseDur: 9 * sim.Second},
		},
	},
	{
		Name:        "tracking",
		Suite:       "Vision",
		Description: "Feature tracking (motion, tracking and stereo vision)",
		InputsDesc:  "vga and fullhd",
		HeartbeatAt: "every frame",
		Inputs: map[string]Input{
			"v": {BaseDemandA7: 1000, SpeedupBig: 2.05, TargetHR: 31.5, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{0.8, 1.2, 1.0}, PhaseDur: 7 * sim.Second},
			"f": {BaseDemandA7: 1800, SpeedupBig: 2.05, TargetHR: 15, RangeFrac: 0.1,
				SelfCapFactor: 1.3, PhaseMults: []float64{0.9, 1.1}, PhaseDur: 10 * sim.Second},
		},
	},
}
