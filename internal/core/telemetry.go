package core

import "pricepower/internal/telemetry"

// SetTelemetry attaches a structured-telemetry emitter to the market. The
// market then emits throttle state transitions, allowance redistributions,
// DVFS ladder moves, and — when the high-volume kinds are enabled on the
// emitter — per-core price/clearing and per-task bid events; it also feeds
// the emitter's registry (round count, throttle entries, Eq. 1 clamp hits,
// worker-pool occupancy).
//
// Emission sites in the concurrent cluster phases go through the emitter's
// thread-safe sinks; counts accumulated on the hot path live in plain
// per-core fields and are folded into the registry once per round in the
// sequential round tail, so the bidding loops pay no atomics. Passing nil
// detaches. Platform-attached governors never call this directly: the
// platform propagates its emitter through ppm.Governor.AttachTelemetry.
func (m *Market) SetTelemetry(em *telemetry.Emitter) {
	m.tel = em
	for _, v := range m.Clusters {
		v.tel = em
	}
	if em == nil {
		return
	}
	reg := em.Registry()
	if reg == nil {
		return
	}
	m.roundsC = reg.Counter("pricepower_market_rounds_total",
		"Market bid rounds executed.")
	m.throttleThC = reg.Counter(`pricepower_throttle_total{state="threshold"}`,
		"Chip-agent entries into a throttling state (threshold or emergency).")
	m.throttleEmC = reg.Counter(`pricepower_throttle_total{state="emergency"}`,
		"Chip-agent entries into a throttling state (threshold or emergency).")
	m.clampFloorC = reg.Counter(`pricepower_bid_clamp_total{bound="floor"}`,
		"Bid revisions clamped by Eq. 1 (floor: b_min, cap: allowance+savings).")
	m.clampCapC = reg.Counter(`pricepower_bid_clamp_total{bound="cap"}`,
		"Bid revisions clamped by Eq. 1 (floor: b_min, cap: allowance+savings).")
	m.rejectsC = reg.Counter("pricepower_sensor_rejects_total",
		"Chip power readings rejected by sensor validation (degraded mode).")
	reg.GaugeFunc("pricepower_pool_busy_workers",
		"Worker-pool goroutines currently running a cluster-phase job.",
		func() float64 { return float64(PoolBusy()) })
	reg.GaugeFunc("pricepower_pool_workers",
		"Worker-pool size (0 until the first parallel round starts the pool).",
		func() float64 { return float64(PoolWorkers()) })
}

// Telemetry returns the attached emitter (nil when detached).
func (m *Market) Telemetry() *telemetry.Emitter { return m.tel }

// foldTelemetry runs in the sequential tail of every round: it folds the
// plain per-core clamp counts into the registry and publishes the market
// half of the live /state snapshot (round, allowance, smoothed power, state,
// per-cluster constrained-core prices — the hardware half comes from the
// platform at its own cadence).
func (m *Market) foldTelemetry() {
	var floor, cap uint64
	for _, v := range m.Clusters {
		for _, c := range v.Cores {
			floor += c.clampFloor
			cap += c.clampCap
		}
	}
	m.clampFloorC.Store(floor)
	m.clampCapC.Store(cap)
	m.tel.PublishState(m.fillState)
}

func (m *Market) fillState(s *telemetry.State) {
	s.Round = m.round
	s.Allowance = m.allowance
	s.SmoothedW = m.wAvg
	s.MarketState = m.state.String()
	s.Degraded = m.degraded
	for i, v := range m.Clusters {
		c := s.Cluster(i)
		c.ID = i
		c.Price, c.BasePrice = v.snapPrice, v.snapBase
	}
}

// emitDVFS reports one V-F ladder move by this cluster. class is "up",
// "down" (price control), "drift" (empty cluster sinking to the bottom
// rung), or "force" (the chip agent's emergency backstop).
func (v *ClusterAgent) emitDVFS(round int, class string, prevSupply float64) {
	if !v.tel.Enabled(telemetry.KindDVFS) {
		return
	}
	ev := telemetry.E(telemetry.KindDVFS)
	ev.Round, ev.Cluster = round, v.ID
	ev.Class = class
	ev.Value, ev.Prev = v.Control.SupplyPU(), prevSupply
	v.tel.Emit(ev)
}
