package core_test

import (
	"fmt"

	"pricepower/internal/core"
)

// The paper's Table 1 running example: two tasks bid for a 300 PU core and
// converge to their 200/100 PU demands in two rounds.
func ExampleMarket() {
	ctl := core.NewLadderControl([]float64{300}, nil)
	m := core.NewMarket(core.Config{InitialAllowance: 1000, InitialBid: 1},
		[]core.ClusterControl{ctl}, []int{1})
	ta := m.AddTask(1, 0)
	tb := m.AddTask(1, 0)
	ta.Demand, tb.Demand = 200, 100

	for round := 1; round <= 2; round++ {
		m.StepOnce()
		fmt.Printf("round %d: bids %.2f/%.2f supplies %.0f/%.0f\n",
			round, ta.Bid(), tb.Bid(), ta.Purchased(), tb.Purchased())
		ta.Observed, tb.Observed = ta.Purchased(), tb.Purchased()
	}
	// Output:
	// round 1: bids 1.00/1.00 supplies 150/150
	// round 2: bids 1.33/0.67 supplies 200/100
}

// Price discovery follows P_c = Σ bids / supply.
func ExampleCoreAgent_Price() {
	ctl := core.NewLadderControl([]float64{300}, nil)
	m := core.NewMarket(core.Config{InitialAllowance: 100, InitialBid: 1},
		[]core.ClusterControl{ctl}, []int{1})
	m.AddTask(1, 0).Demand = 100
	m.AddTask(1, 0).Demand = 100
	m.StepOnce()
	fmt.Printf("price %.4f per PU\n", m.Cluster(0).Cores[0].Price())
	// Output:
	// price 0.0067 per PU
}
