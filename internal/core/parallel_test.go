package core

import (
	"sync"
	"testing"

	"pricepower/internal/sim"
)

// buildParallelRig creates two structurally identical many-cluster markets
// with the same agents and demands.
func buildParallelRig(seed uint64, clusters, coresPer, tasksPer int) (a, b *Market, agentsA, agentsB []*TaskAgent) {
	mk := func() (*Market, []*TaskAgent) {
		rng := sim.NewRand(seed)
		controls := make([]ClusterControl, clusters)
		cores := make([]int, clusters)
		for i := range controls {
			base := 300 + 100*float64(i%5)
			controls[i] = NewLadderControl(
				[]float64{base, base * 1.5, base * 2, base * 3},
				[]float64{0.5, 1, 1.8, 3})
			cores[i] = coresPer
		}
		m := NewMarket(Config{InitialAllowance: 50, InitialBid: 1, Wtdp: float64(clusters)},
			controls, cores)
		var agents []*TaskAgent
		for coreID := 0; coreID < clusters*coresPer; coreID++ {
			for t := 0; t < tasksPer; t++ {
				ag := m.AddTask(1+rng.Intn(7), coreID)
				ag.Demand = rng.Range(20, 500)
				agents = append(agents, ag)
			}
		}
		return m, agents
	}
	a, agentsA = mk()
	b, agentsB = mk()
	return
}

// TestParallelRoundEquivalence: concurrent round execution must be
// bit-identical to sequential execution — the cluster phases are local by
// construction.
func TestParallelRoundEquivalence(t *testing.T) {
	seq, par, agSeq, agPar := buildParallelRig(99, 24, 2, 2)
	seq.SetParallel(false)
	par.SetParallel(true)
	if !par.Parallel() || seq.Parallel() {
		t.Fatal("parallel flags wrong")
	}
	for round := 0; round < 60; round++ {
		seq.StepOnce()
		par.StepOnce()
		for i := range agSeq {
			if agSeq[i].Bid() != agPar[i].Bid() {
				t.Fatalf("round %d agent %d: bid %v != %v", round, i, agSeq[i].Bid(), agPar[i].Bid())
			}
			if agSeq[i].Purchased() != agPar[i].Purchased() {
				t.Fatalf("round %d agent %d: purchase %v != %v",
					round, i, agSeq[i].Purchased(), agPar[i].Purchased())
			}
			if agSeq[i].Savings() != agPar[i].Savings() {
				t.Fatalf("round %d agent %d: savings diverged", round, i)
			}
			agSeq[i].Observed = agSeq[i].Purchased()
			agPar[i].Observed = agPar[i].Purchased()
		}
		for ci := range seq.Clusters {
			if seq.Clusters[ci].Control.Level() != par.Clusters[ci].Control.Level() {
				t.Fatalf("round %d cluster %d: levels diverged", round, ci)
			}
		}
		if seq.Allowance() != par.Allowance() || seq.State() != par.State() {
			t.Fatalf("round %d: chip agent diverged", round)
		}
	}
}

// Many-cluster markets enable parallel rounds automatically; small ones
// don't.
func TestParallelAutoEnable(t *testing.T) {
	big, _, _, _ := buildParallelRig(1, parallelThreshold, 1, 1)
	if !big.Parallel() {
		t.Error("16-cluster market not parallel by default")
	}
	ctl := NewLadderControl([]float64{300}, nil)
	small := NewMarket(Config{}, []ClusterControl{ctl}, []int{1})
	if small.Parallel() {
		t.Error("single-cluster market parallel by default")
	}
}

// The race detector exercises the concurrent path even on a small market.
func TestParallelUnderRaceDetector(t *testing.T) {
	m, _, agents, _ := buildParallelRig(7, 8, 2, 3)
	m.SetParallel(true)
	for round := 0; round < 50; round++ {
		m.StepOnce()
		for _, a := range agents {
			a.Observed = a.Purchased()
		}
	}
}

// TestParallelRoundEquivalenceManyClusters runs the pooled path at a
// Table-7-like scale: results must stay bit-identical to sequential
// execution when the worker pool does real work distribution.
func TestParallelRoundEquivalenceManyClusters(t *testing.T) {
	seq, par, agSeq, agPar := buildParallelRig(1234, 64, 4, 2)
	seq.SetParallel(false)
	par.SetParallel(true)
	for round := 0; round < 12; round++ {
		seq.StepOnce()
		par.StepOnce()
		for i := range agSeq {
			if agSeq[i].Bid() != agPar[i].Bid() || agSeq[i].Purchased() != agPar[i].Purchased() {
				t.Fatalf("round %d agent %d diverged", round, i)
			}
			agSeq[i].Observed = agSeq[i].Purchased()
			agPar[i].Observed = agPar[i].Purchased()
		}
		if seq.Allowance() != par.Allowance() || seq.State() != par.State() {
			t.Fatalf("round %d: chip agent diverged", round)
		}
	}
}

// TestSpawnFanoutEquivalence pins the benchmark baseline (legacy
// goroutine-per-cluster fan-out) to the pooled path's results.
func TestSpawnFanoutEquivalence(t *testing.T) {
	pool, spawn, agPool, agSpawn := buildParallelRig(77, 32, 2, 2)
	pool.SetParallel(true)
	spawn.SetParallel(true)
	spawn.SetSpawnFanout(true)
	for round := 0; round < 20; round++ {
		pool.StepOnce()
		spawn.StepOnce()
		for i := range agPool {
			if agPool[i].Bid() != agSpawn[i].Bid() {
				t.Fatalf("round %d agent %d: pooled and spawned fan-out diverged", round, i)
			}
			agPool[i].Observed = agPool[i].Purchased()
			agSpawn[i].Observed = agSpawn[i].Purchased()
		}
	}
}

// TestManyClusterStressChurn exercises the worker pool on a many-cluster
// market with Add/Move/Remove churn between rounds — the index structures
// (CoreByID slices, task-agent core back-references) must stay consistent
// while pooled rounds run under the race detector.
func TestManyClusterStressChurn(t *testing.T) {
	const clusters, coresPer = 48, 4
	m, _, agents, _ := buildParallelRig(55, clusters, coresPer, 2)
	m.SetParallel(true)
	rng := sim.NewRand(99)
	numCores := clusters * coresPer
	for round := 0; round < 60; round++ {
		m.StepOnce()
		for _, a := range agents {
			if a.Core() != nil {
				a.Observed = a.Purchased()
			}
		}
		// Churn between rounds: move one agent, remove one, add one.
		if i := rng.Intn(len(agents)); agents[i].Core() != nil {
			m.MoveTask(agents[i], rng.Intn(numCores))
		}
		if i := rng.Intn(len(agents)); agents[i].Core() != nil {
			m.RemoveTask(agents[i])
		}
		na := m.AddTask(1+rng.Intn(7), rng.Intn(numCores))
		na.Demand = rng.Range(20, 500)
		agents = append(agents, na)
	}
	// Invariant: every live agent's back-reference is listed by its core.
	live := 0
	for _, a := range agents {
		c := a.Core()
		if c == nil {
			continue
		}
		live++
		found := false
		for _, t2 := range c.Tasks {
			if t2 == a {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("agent %d not listed on its core %d", a.ID, c.ID)
		}
	}
	if live != m.taskCount() {
		t.Errorf("live agents %d != market task count %d", live, m.taskCount())
	}
}

// TestSharedPoolConcurrentMarkets steps two parallel markets from two
// goroutines at once: the process-wide worker pool must serve both without
// deadlock or cross-talk, and each must match its sequential reference.
func TestSharedPoolConcurrentMarkets(t *testing.T) {
	seqA, parA, agSeqA, agParA := buildParallelRig(5, 32, 2, 2)
	seqB, parB, agSeqB, agParB := buildParallelRig(6, 24, 3, 2)
	seqA.SetParallel(false)
	seqB.SetParallel(false)
	parA.SetParallel(true)
	parB.SetParallel(true)

	const rounds = 30
	run := func(m *Market, agents []*TaskAgent) {
		for r := 0; r < rounds; r++ {
			m.StepOnce()
			for _, a := range agents {
				a.Observed = a.Purchased()
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); run(parA, agParA) }()
	go func() { defer wg.Done(); run(parB, agParB) }()
	run(seqA, agSeqA)
	run(seqB, agSeqB)
	wg.Wait()

	for i := range agSeqA {
		if agSeqA[i].Bid() != agParA[i].Bid() || agSeqA[i].Savings() != agParA[i].Savings() {
			t.Fatalf("market A agent %d diverged under shared pool", i)
		}
	}
	for i := range agSeqB {
		if agSeqB[i].Bid() != agParB[i].Bid() || agSeqB[i].Savings() != agParB[i].Savings() {
			t.Fatalf("market B agent %d diverged under shared pool", i)
		}
	}
}
