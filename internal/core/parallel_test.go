package core

import (
	"testing"

	"pricepower/internal/sim"
)

// buildParallelRig creates two structurally identical many-cluster markets
// with the same agents and demands.
func buildParallelRig(seed uint64, clusters, coresPer, tasksPer int) (a, b *Market, agentsA, agentsB []*TaskAgent) {
	mk := func() (*Market, []*TaskAgent) {
		rng := sim.NewRand(seed)
		controls := make([]ClusterControl, clusters)
		cores := make([]int, clusters)
		for i := range controls {
			base := 300 + 100*float64(i%5)
			controls[i] = NewLadderControl(
				[]float64{base, base * 1.5, base * 2, base * 3},
				[]float64{0.5, 1, 1.8, 3})
			cores[i] = coresPer
		}
		m := NewMarket(Config{InitialAllowance: 50, InitialBid: 1, Wtdp: float64(clusters)},
			controls, cores)
		var agents []*TaskAgent
		for coreID := 0; coreID < clusters*coresPer; coreID++ {
			for t := 0; t < tasksPer; t++ {
				ag := m.AddTask(1+rng.Intn(7), coreID)
				ag.Demand = rng.Range(20, 500)
				agents = append(agents, ag)
			}
		}
		return m, agents
	}
	a, agentsA = mk()
	b, agentsB = mk()
	return
}

// TestParallelRoundEquivalence: concurrent round execution must be
// bit-identical to sequential execution — the cluster phases are local by
// construction.
func TestParallelRoundEquivalence(t *testing.T) {
	seq, par, agSeq, agPar := buildParallelRig(99, 24, 2, 2)
	seq.SetParallel(false)
	par.SetParallel(true)
	if !par.Parallel() || seq.Parallel() {
		t.Fatal("parallel flags wrong")
	}
	for round := 0; round < 60; round++ {
		seq.StepOnce()
		par.StepOnce()
		for i := range agSeq {
			if agSeq[i].Bid() != agPar[i].Bid() {
				t.Fatalf("round %d agent %d: bid %v != %v", round, i, agSeq[i].Bid(), agPar[i].Bid())
			}
			if agSeq[i].Purchased() != agPar[i].Purchased() {
				t.Fatalf("round %d agent %d: purchase %v != %v",
					round, i, agSeq[i].Purchased(), agPar[i].Purchased())
			}
			if agSeq[i].Savings() != agPar[i].Savings() {
				t.Fatalf("round %d agent %d: savings diverged", round, i)
			}
			agSeq[i].Observed = agSeq[i].Purchased()
			agPar[i].Observed = agPar[i].Purchased()
		}
		for ci := range seq.Clusters {
			if seq.Clusters[ci].Control.Level() != par.Clusters[ci].Control.Level() {
				t.Fatalf("round %d cluster %d: levels diverged", round, ci)
			}
		}
		if seq.Allowance() != par.Allowance() || seq.State() != par.State() {
			t.Fatalf("round %d: chip agent diverged", round)
		}
	}
}

// Many-cluster markets enable parallel rounds automatically; small ones
// don't.
func TestParallelAutoEnable(t *testing.T) {
	big, _, _, _ := buildParallelRig(1, parallelThreshold, 1, 1)
	if !big.Parallel() {
		t.Error("16-cluster market not parallel by default")
	}
	ctl := NewLadderControl([]float64{300}, nil)
	small := NewMarket(Config{}, []ClusterControl{ctl}, []int{1})
	if small.Parallel() {
		t.Error("single-cluster market parallel by default")
	}
}

// The race detector exercises the concurrent path even on a small market.
func TestParallelUnderRaceDetector(t *testing.T) {
	m, _, agents, _ := buildParallelRig(7, 8, 2, 3)
	m.SetParallel(true)
	for round := 0; round < 50; round++ {
		m.StepOnce()
		for _, a := range agents {
			a.Observed = a.Purchased()
		}
	}
}
