package core

import (
	"testing"

	"pricepower/internal/telemetry"
)

// telemetryRig drives the Table 3 overload scenario (supply overshoot into
// emergency, forced cooldown, threshold steady state) with an emitter
// attached — the richest event mix a single-cluster market can produce.
func telemetryRig(t *testing.T, kinds telemetry.KindSet) (*telemetry.Emitter, *telemetry.RingSink, *Market) {
	t.Helper()
	m, ta, tb, _ := table3Market()
	ring := telemetry.NewRing(4096)
	em := telemetry.NewEmitter(telemetry.NewRegistry(), ring)
	em.SetKinds(kinds)
	m.SetTelemetry(em)

	ta.Demand, tb.Demand = 300, 100
	for i := 0; i < 12; i++ {
		feedback(ta, tb)
		m.StepOnce()
	}
	tb.Demand = 300 // overload: combined demand needs the 3 W rung
	for i := 0; i < 60; i++ {
		feedback(ta, tb)
		m.StepOnce()
	}
	return em, ring, m
}

func TestMarketEmitsThrottleDVFSAndAllowanceEvents(t *testing.T) {
	em, ring, m := telemetryRig(t, telemetry.DefaultKinds)

	byKind := make(map[telemetry.Kind][]telemetry.Event)
	for _, ev := range ring.Snapshot() {
		byKind[ev.Kind] = append(byKind[ev.Kind], ev)
	}

	// Throttle: the trajectory passes normal→…→emergency→…→threshold; the
	// first transition must carry both the old and the new state name.
	throttles := byKind[telemetry.KindThrottle]
	if len(throttles) == 0 {
		t.Fatal("no throttle events over a TDP-overload run")
	}
	if ev := throttles[0]; ev.Class != "normal" || ev.Name == "normal" || ev.Value <= 0 {
		t.Errorf("first throttle event %+v, want normal→{threshold,emergency} with smoothed power", ev)
	}
	sawEmergency := false
	for _, ev := range throttles {
		if ev.Name == "emergency" {
			sawEmergency = true
		}
	}
	if !sawEmergency {
		t.Error("no emergency entry in the throttle events")
	}

	// DVFS: the supply overshoots up to 600 PU and is brought back down, so
	// both directions must appear; every event carries the cluster and the
	// supply move.
	ups, downs := 0, 0
	for _, ev := range byKind[telemetry.KindDVFS] {
		if ev.Cluster != 0 || ev.Value == ev.Prev {
			t.Fatalf("malformed DVFS event %+v", ev)
		}
		switch ev.Class {
		case "up":
			ups++
		case "down", "force":
			downs++
		}
	}
	if ups == 0 || downs == 0 {
		t.Errorf("DVFS events: %d up, %d down/force — want both directions", ups, downs)
	}

	// Allowance: one redistribution event per round, tagged with the state.
	allowances := byKind[telemetry.KindAllowance]
	if len(allowances) != m.Round() {
		t.Errorf("%d allowance events over %d rounds", len(allowances), m.Round())
	}
	for _, ev := range allowances[:3] {
		if ev.Value <= 0 || ev.Name == "" {
			t.Fatalf("malformed allowance event %+v", ev)
		}
	}

	// High-volume kinds stay dark under the default mask.
	if n := len(byKind[telemetry.KindBid]) + len(byKind[telemetry.KindPrice]) + len(byKind[telemetry.KindClearing]); n != 0 {
		t.Errorf("%d bid/price/clearing events under DefaultKinds", n)
	}

	// Registry: round counter tracks the market, throttle entries counted.
	reg := em.Registry()
	if got := reg.Counter("pricepower_market_rounds_total", "").Value(); got != uint64(m.Round()) {
		t.Errorf("rounds counter = %d, market at round %d", got, m.Round())
	}
	if reg.Counter(`pricepower_throttle_total{state="emergency"}`, "").Value() == 0 {
		t.Error("emergency entries not counted")
	}
}

func TestMarketEmitsHighVolumeKindsWhenEnabled(t *testing.T) {
	_, ring, m := telemetryRig(t, telemetry.AllKinds)
	var bids, prices, clearings int
	for _, ev := range ring.Snapshot() {
		switch ev.Kind {
		case telemetry.KindBid:
			bids++
			if ev.Task < 0 || ev.Core < 0 || ev.Cluster < 0 {
				t.Fatalf("bid event missing ids: %+v", ev)
			}
		case telemetry.KindPrice:
			prices++
		case telemetry.KindClearing:
			clearings++
		}
	}
	// The 4096-slot ring holds the whole run. Price discovery runs every
	// round; bidding is skipped in the settle round after each V-F change,
	// so require both tasks' bids on at least half the rounds.
	if bids < m.Round() || prices < m.Round()-1 || clearings < m.Round()-1 {
		t.Errorf("high-volume events: %d bids, %d prices, %d clearings over %d rounds",
			bids, prices, clearings, m.Round())
	}
}

// TestMarketClampCountersFoldPerRound pins the hot-path counting strategy:
// Eq. 1 clamp hits accumulate in plain per-core fields and reach the
// registry once per round.
func TestMarketClampCountersFoldPerRound(t *testing.T) {
	em, _, _ := telemetryRig(t, telemetry.DefaultKinds)
	reg := em.Registry()
	floor := reg.Counter(`pricepower_bid_clamp_total{bound="floor"}`, "").Value()
	cap := reg.Counter(`pricepower_bid_clamp_total{bound="cap"}`, "").Value()
	// The overload run saturates bids at the allowance+savings cap while the
	// chip agent curbs allowances (that is how deflation is expressed).
	if cap == 0 {
		t.Errorf("no cap clamps counted over an overload run (floor %d, cap %d)", floor, cap)
	}
}

// TestMarketTelemetryDoesNotPerturb runs the same scenario attached and
// detached and requires identical market trajectories — telemetry is an
// observer, never an actor.
func TestMarketTelemetryDoesNotPerturb(t *testing.T) {
	run := func(attach bool) (rounds int, allowance, bidA, bidB, supply float64, st State) {
		m, ta, tb, ctl := table3Market()
		if attach {
			em := telemetry.NewEmitter(telemetry.NewRegistry(), telemetry.NewRing(512))
			em.SetKinds(telemetry.AllKinds)
			m.SetTelemetry(em)
		}
		ta.Demand, tb.Demand = 300, 100
		for i := 0; i < 12; i++ {
			feedback(ta, tb)
			m.StepOnce()
		}
		tb.Demand = 300
		for i := 0; i < 60; i++ {
			feedback(ta, tb)
			m.StepOnce()
		}
		return m.Round(), m.Allowance(), ta.Bid(), tb.Bid(), ctl.SupplyPU(), m.State()
	}
	r1, a1, ba1, bb1, s1, st1 := run(false)
	r2, a2, ba2, bb2, s2, st2 := run(true)
	if r1 != r2 || a1 != a2 || ba1 != ba2 || bb1 != bb2 || s1 != s2 || st1 != st2 {
		t.Errorf("attached run diverged: rounds %d/%d allowance %v/%v bids %v,%v/%v,%v supply %v/%v state %v/%v",
			r1, r2, a1, a2, ba1, bb1, ba2, bb2, s1, s2, st1, st2)
	}
}
