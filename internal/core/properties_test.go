package core

import (
	"math"
	"testing"
	"testing/quick"

	"pricepower/internal/sim"
)

// Property (§3.2.4 scenario 1): for any demand vector satisfiable somewhere
// on the ladder, the market converges to a stable state — no V-F changes,
// all demands met — within a bounded number of rounds.
func TestMarketConvergenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		cfg := Config{InitialAllowance: 50, InitialBid: 1, Tolerance: 0.2}
		ctl := NewLadderControl([]float64{300, 400, 500, 600, 800, 1000}, nil)
		m := NewMarket(cfg, []ClusterControl{ctl}, []int{1})
		n := 1 + rng.Intn(4)
		agents := make([]*TaskAgent, n)
		var total float64
		for i := range agents {
			agents[i] = m.AddTask(1+rng.Intn(7), 0)
			d := rng.Range(20, 900/float64(n))
			agents[i].Demand = d
			total += d
		}
		if total > 1000 {
			return true // not satisfiable; out of scope for this property
		}
		// Run until the ladder has been still for 100 consecutive rounds
		// with every demand met. Demands landing within a fraction of a PU
		// of a rung creep toward the threshold for hundreds of rounds (the
		// inflation signal is proportional to the gap), so the horizon is
		// generous; non-convergence within it is the property violation.
		still := 0
		level := ctl.Level()
		for round := 0; round < 3000; round++ {
			m.StepOnce()
			for _, a := range agents {
				a.Observed = a.Purchased()
			}
			sat := true
			for _, a := range agents {
				if !a.Satisfied() {
					sat = false
					break
				}
			}
			if ctl.Level() == level && sat {
				still++
				if still >= 100 {
					return true
				}
			} else {
				still = 0
				level = ctl.Level()
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the hierarchical allowance distribution conserves money — task
// allowances sum to the global allowance (within float error) whenever all
// clusters hold tasks — and respects priorities within a core.
func TestAllowanceConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		c0 := NewLadderControl([]float64{500, 1000}, []float64{1, 2})
		c1 := NewLadderControl([]float64{400, 800}, []float64{0.5, 1})
		m := NewMarket(Config{InitialAllowance: 100, InitialBid: 1},
			[]ClusterControl{c0, c1}, []int{2, 2})
		var agents []*TaskAgent
		for coreID := 0; coreID < 4; coreID++ {
			for i := 0; i < 1+rng.Intn(3); i++ {
				a := m.AddTask(1+rng.Intn(7), coreID)
				a.Demand = rng.Range(10, 400)
				agents = append(agents, a)
			}
		}
		m.StepOnce()
		var sum float64
		for _, a := range agents {
			sum += a.Allowance()
		}
		if math.Abs(sum-m.Allowance()) > 1e-6*m.Allowance() {
			return false
		}
		// Priority monotonicity within each core: higher priority never
		// receives a smaller allowance.
		for coreID := 0; coreID < 4; coreID++ {
			_, core := m.CoreByID(coreID)
			for _, x := range core.Tasks {
				for _, y := range core.Tasks {
					if x.Priority > y.Priority && x.Allowance() < y.Allowance()-1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: bids always respect the paper's constraint
// b_min ≤ b_t ≤ a_t + m_t after every round, for any demand schedule.
func TestBidBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		cfg := Config{InitialAllowance: 20, InitialBid: 1, MinBid: 0.01, SavingsCap: 3}
		ctl := NewLadderControl([]float64{300, 600}, []float64{1, 2})
		m := NewMarket(cfg, []ClusterControl{ctl}, []int{1})
		a := m.AddTask(2, 0)
		b := m.AddTask(1, 0)
		agents := []*TaskAgent{a, b}
		for round := 0; round < 100; round++ {
			if rng.Intn(10) == 0 {
				a.Demand = rng.Range(0, 800)
				b.Demand = rng.Range(0, 800)
			}
			savBefore := []float64{a.Savings(), b.Savings()}
			frozen := m.Cluster(0).Frozen()
			m.StepOnce()
			for i, ag := range agents {
				if ag.Bid() < cfg.MinBid-1e-12 {
					return false
				}
				// The bid revised this round is capped by this round's
				// allowance plus the savings carried into the round (frozen
				// rounds keep the previous bid, whose cap used older values).
				if !frozen && ag.Bid() > ag.Allowance()+savBefore[i]+1e-9 {
					return false
				}
				if ag.Savings() < -1e-12 {
					return false
				}
				if ag.Savings() > cfg.SavingsCap*ag.Allowance()+1e-9 {
					return false
				}
				ag.Observed = ag.Purchased()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
