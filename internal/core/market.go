package core

import (
	"fmt"
	"math"

	"pricepower/internal/telemetry"
)

// State is the chip agent's power-state classification (§3.2.3).
type State int

const (
	// Normal: W < Wth. The chip agent grows the allowance toward satisfying
	// all demand.
	Normal State = iota
	// Threshold: Wth ≤ W < Wtdp, the buffer zone. The allowance is held
	// constant so an overloaded system stabilizes here.
	Threshold
	// Emergency: W ≥ Wtdp. Allowances are curbed proportionally to the TDP
	// excursion.
	Emergency
)

// String names the state.
func (s State) String() string {
	switch s {
	case Normal:
		return "normal"
	case Threshold:
		return "threshold"
	case Emergency:
		return "emergency"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Market is the assembled agent hierarchy with the chip agent's money
// control on top.
type Market struct {
	cfg      Config
	Clusters []*ClusterAgent

	// coreOf and clusterOf index the agent hierarchy by global core ID
	// (assigned densely from 0 in NewMarket), making CoreByID — and with it
	// AddTask/MoveTask — O(1) instead of a hierarchy sweep. Table-7-scale
	// markets (256 clusters × 16 cores) call these on every governor round.
	coreOf    []*CoreAgent
	clusterOf []*ClusterAgent

	allowance   float64
	distributed float64 // Σ A_v actually handed out at the last fan-out
	state       State
	wAvg        float64 // smoothed chip power for state classification
	wSeeded     bool    // wAvg holds a real sample (0 W is a legitimate reading)
	round       int
	nextID      int
	parallel    bool
	spawnFanout bool // benchmark baseline: legacy goroutine-per-cluster fan-out

	// Sensor-health bookkeeping (graceful degradation, DESIGN.md §9). The
	// chip agent validates each power reading before classification; while
	// readings are untrusted it holds the last good value (bounded by
	// SensorStaleRounds) and tightens the Wth/Wtdp boundaries by
	// DegradedGuard. Clean runs never reject a reading, so digests and
	// goldens are unchanged.
	degraded       bool
	lastGoodW      float64
	lastGoodSeeded bool
	staleRounds    int
	healthyStreak  int
	sensorRejects  uint64

	// Telemetry (nil/inert when detached — see SetTelemetry).
	tel         *telemetry.Emitter
	roundsC     *telemetry.Counter
	throttleThC *telemetry.Counter
	throttleEmC *telemetry.Counter
	clampFloorC *telemetry.Counter
	clampCapC   *telemetry.Counter
	rejectsC    *telemetry.Counter
}

// NewMarket builds a market over the given cluster controls; coresPer[i]
// core agents are created for cluster i.
func NewMarket(cfg Config, controls []ClusterControl, coresPer []int) *Market {
	if len(controls) != len(coresPer) {
		panic("core: controls and coresPer length mismatch")
	}
	cfg = cfg.withDefaults()
	m := &Market{cfg: cfg, allowance: cfg.InitialAllowance}
	coreID := 0
	for i, ctl := range controls {
		v := &ClusterAgent{ID: i, Control: ctl}
		for j := 0; j < coresPer[i]; j++ {
			c := &CoreAgent{ID: coreID}
			v.Cores = append(v.Cores, c)
			m.coreOf = append(m.coreOf, c)
			m.clusterOf = append(m.clusterOf, v)
			coreID++
		}
		m.Clusters = append(m.Clusters, v)
	}
	m.parallel = len(m.Clusters) >= parallelThreshold
	return m
}

// Config returns the market's (defaulted) configuration.
func (m *Market) Config() Config { return m.cfg }

// Allowance reports the global allowance A.
func (m *Market) Allowance() float64 { return m.allowance }

// SetAllowance overrides A (used when seeding experiments mid-flight).
func (m *Market) SetAllowance(a float64) { m.allowance = a }

// DistributedAllowance reports Σ A_v actually handed to the cluster agents
// at the last fan-out — the top-level budget-conservation snapshot (see
// CoreAgent.DistributedAllowance for why a live sum is wrong).
func (m *Market) DistributedAllowance() float64 { return m.distributed }

// State reports the chip agent's classification of the last round.
func (m *Market) State() State { return m.state }

// SmoothedPower reports the EWMA-smoothed chip power the state machine
// classifies (0 before the first round).
func (m *Market) SmoothedPower() float64 { return m.wAvg }

// Round reports how many bid rounds have run.
func (m *Market) Round() int { return m.round }

// Degraded reports whether the chip agent currently distrusts its power
// sensor (readings failing validation; guard band tightened).
func (m *Market) Degraded() bool { return m.degraded }

// SensorRejects reports how many power readings validation has rejected.
func (m *Market) SensorRejects() uint64 { return m.sensorRejects }

// LastGoodPower reports the last power reading that passed validation.
func (m *Market) LastGoodPower() float64 { return m.lastGoodW }

// EffectiveWtdp is the TDP boundary the state machine currently classifies
// against: the configured Wtdp, tightened by DegradedGuard while power
// readings are untrusted.
func (m *Market) EffectiveWtdp() float64 {
	if m.degraded {
		return m.cfg.Wtdp * m.cfg.DegradedGuard
	}
	return m.cfg.Wtdp
}

// EffectiveWth is the threshold boundary currently in force (see
// EffectiveWtdp).
func (m *Market) EffectiveWth() float64 {
	if m.degraded {
		return m.cfg.Wth * m.cfg.DegradedGuard
	}
	return m.cfg.Wth
}

// Cluster returns cluster agent i.
func (m *Market) Cluster(i int) *ClusterAgent { return m.Clusters[i] }

// CoreByID finds a core agent by its global ID in O(1).
func (m *Market) CoreByID(id int) (*ClusterAgent, *CoreAgent) {
	if id < 0 || id >= len(m.coreOf) {
		return nil, nil
	}
	return m.clusterOf[id], m.coreOf[id]
}

// AddTask creates a task agent with the given priority on the given core
// and seeds its bid.
func (m *Market) AddTask(priority int, coreID int) *TaskAgent {
	_, c := m.CoreByID(coreID)
	if c == nil {
		panic(fmt.Sprintf("core: AddTask on unknown core %d", coreID))
	}
	a := &TaskAgent{ID: m.nextID, Priority: priority, bid: m.cfg.InitialBid, core: c}
	m.nextID++
	c.Tasks = append(c.Tasks, a)
	return a
}

// RemoveTask detaches a task agent from the market (task exit). The agent's
// core back-reference makes this O(tasks on one core) rather than a sweep
// of the whole hierarchy.
func (m *Market) RemoveTask(a *TaskAgent) {
	c := a.core
	if c == nil {
		return
	}
	for i, t := range c.Tasks {
		if t == a {
			c.Tasks = append(c.Tasks[:i], c.Tasks[i+1:]...)
			break
		}
	}
	a.core = nil
}

// MoveTask reassigns a task agent to another core (load balancing or
// migration). The agent keeps its money: savings follow the task.
func (m *Market) MoveTask(a *TaskAgent, toCore int) {
	_, dst := m.CoreByID(toCore)
	if dst == nil {
		panic(fmt.Sprintf("core: MoveTask to unknown core %d", toCore))
	}
	m.RemoveTask(a)
	a.core = dst
	dst.Tasks = append(dst.Tasks, a)
}

// RecoverCore resets the price state of the core agent with the given
// global ID — the supply-agent recovery path after its core returns from a
// transient hot-unplug: the stale price pair reflects a window in which the
// core delivered nothing, so both price and base price are zeroed and the
// next controlPrice re-establishes the base from a fresh discovery (the
// same first-round-with-tasks path a booting cluster takes).
func (m *Market) RecoverCore(id int) {
	_, c := m.CoreByID(id)
	if c == nil {
		return
	}
	c.price, c.basePrice = 0, 0
	c.supply, c.cleared = 0, 0
}

// TotalDemand reports D = Σ_v D_v (cluster demand is its constrained
// core's).
func (m *Market) TotalDemand() float64 {
	var d float64
	for _, v := range m.Clusters {
		d += v.Demand()
	}
	return d
}

// TotalSupply reports S = Σ_v S_v.
func (m *Market) TotalSupply() float64 {
	var s float64
	for _, v := range m.Clusters {
		s += v.SupplyPU()
	}
	return s
}

// Power reports W = Σ_v cluster power, from the cluster controls' sensors.
func (m *Market) Power() float64 {
	var w float64
	for _, v := range m.Clusters {
		w += v.Control.Power()
	}
	return w
}

// classify maps a power reading onto the state machine. Without a TDP
// configured (Wtdp == 0) the chip stays in the normal state — the paper's
// "no TDP constraint" configuration. The boundaries tighten by
// DegradedGuard while the power sensor is untrusted (EffectiveWtdp).
func (m *Market) classify(w float64) State {
	if m.cfg.Wtdp <= 0 {
		return Normal
	}
	switch {
	case w >= m.EffectiveWtdp():
		return Emergency
	case w >= m.EffectiveWth():
		return Threshold
	default:
		return Normal
	}
}

// sensorJumpFactor bounds how far a single reading may sit above the EWMA
// before validation rejects it: legitimate one-round power moves (a V-F
// step, a cluster powering on) stay well inside ×6, injected spikes do
// not. Only the upward band is enforced — power-gating a cluster can
// legitimately collapse chip power within one round.
const sensorJumpFactor = 6

// validateSensor judges one raw chip-power reading (graceful degradation,
// DESIGN.md §9) and returns the value the control loop should classify. A
// reading is rejected when it is non-finite or negative, above the
// physical envelope (MaxSensorPowerW), a dropout (0 W while tasks run and
// the chip was just drawing power), or implausibly far above the EWMA.
// Rejections hold the last trusted value for up to SensorStaleRounds and
// set the degraded flag; DegradedHealthyRounds consecutive trusted
// readings clear it. Clean runs take the healthy path on every round and
// behave exactly as before.
func (m *Market) validateSensor(w float64, tasks int) float64 {
	bad := math.IsNaN(w) || math.IsInf(w, 0) || w < 0
	if !bad && m.cfg.MaxSensorPowerW > 0 && w > m.cfg.MaxSensorPowerW {
		bad = true
	}
	if !bad && w <= 0 && tasks > 0 && m.lastGoodSeeded && m.lastGoodW > 0 {
		bad = true // dropout: an occupied chip cannot draw nothing
	}
	if !bad && m.wSeeded && m.wAvg > 0 && w > m.wAvg*sensorJumpFactor+1 {
		bad = true // spike far outside anything the EWMA makes plausible
	}
	if !bad {
		m.lastGoodW, m.lastGoodSeeded = w, true
		m.staleRounds = 0
		if m.degraded {
			m.healthyStreak++
			if m.healthyStreak >= m.cfg.DegradedHealthyRounds {
				m.degraded = false
				m.healthyStreak = 0
				if m.tel.Enabled(telemetry.KindDegraded) {
					ev := telemetry.E(telemetry.KindDegraded)
					ev.Round = m.round
					ev.Name = "exit"
					ev.Value, ev.Prev = w, m.lastGoodW
					m.tel.Emit(ev)
				}
			}
		}
		return w
	}
	m.sensorRejects++
	m.rejectsC.Add(1)
	m.healthyStreak = 0
	m.staleRounds++
	if !m.degraded {
		m.degraded = true
		if m.tel.Enabled(telemetry.KindDegraded) {
			ev := telemetry.E(telemetry.KindDegraded)
			ev.Round = m.round
			ev.Name = "enter"
			ev.Value, ev.Prev = w, m.lastGoodW
			m.tel.Emit(ev)
		}
	}
	if m.lastGoodSeeded && m.staleRounds <= m.cfg.SensorStaleRounds {
		return m.lastGoodW
	}
	// Stale bound exceeded (or no trusted sample yet): clamp the raw
	// reading into the physical envelope rather than flying blind on
	// arbitrarily old data.
	if math.IsNaN(w) || w < 0 {
		w = 0
	}
	if m.cfg.MaxSensorPowerW > 0 && (w > m.cfg.MaxSensorPowerW || math.IsInf(w, 1)) {
		w = m.cfg.MaxSensorPowerW
	} else if math.IsInf(w, 1) {
		w = m.lastGoodW
	}
	return w
}

// StepOnce runs one complete market round (§3.2): chip-agent allowance
// update and hierarchical distribution, bid revision, price discovery and
// purchase, then the cluster agents' price control (DVFS). Task demands and
// observed supplies must have been injected into the task agents before the
// call.
func (m *Market) StepOnce() {
	m.round++
	m.roundsC.Add(1)
	tasks := m.taskCount()
	// Validate the raw sensor reading before anything trusts it; under an
	// injected sensor fault the validated value is the held last-good (or
	// envelope-clamped) substitute and the degraded flag tightens the
	// boundaries below.
	w := m.validateSensor(m.Power(), tasks)
	// The TDP is a thermal constraint, so the state machine classifies a
	// smoothed power reading: with discrete V-F rungs an overloaded system
	// oscillates around the budget (§3.2.3), and classifying raw samples
	// would alternate normal-state allowance growth with emergency cuts —
	// compounding into runaway — while the *average* power sits squarely in
	// the buffer zone.
	//
	// Seeding is tracked explicitly: a chip that legitimately reads 0 W
	// (every cluster power-gated) must not re-seed the average each round,
	// or the state machine would classify the next raw spike unsmoothed.
	if !m.wSeeded {
		m.wAvg = w
		m.wSeeded = true
	} else {
		m.wAvg = 0.3*w + 0.7*m.wAvg
	}
	prevState := m.state
	m.state = m.classify(m.wAvg)
	if m.tel != nil && m.state != prevState {
		ev := telemetry.E(telemetry.KindThrottle)
		ev.Round = m.round
		ev.Name = m.state.String()
		ev.Class = prevState.String()
		ev.Value, ev.Prev = m.wAvg, w
		m.tel.Emit(ev)
		switch m.state {
		case Threshold:
			m.throttleThC.Add(1)
		case Emergency:
			m.throttleEmC.Add(1)
		}
	}

	// Chip agent: Δ rules (§3.2.3).
	d, s := m.TotalDemand(), m.TotalSupply()
	switch m.state {
	case Normal:
		// Extra money exists to trigger supply increases (§3.2.3); when
		// every occupied cluster already sits at its top rung, further
		// allowance growth cannot raise supply and would only debase the
		// currency (and drown out the priority-proportional caps), so the
		// chip agent holds the allowance.
		if d > s && d > 0 && m.canRaiseSupply() {
			m.allowance += m.allowance * (d - s) / d
		}
	case Threshold:
		// Allowance held: Δ = 0.
	case Emergency:
		// Curb against the boundary actually in force: while degraded the
		// tightened budget curbs harder, buying margin the chip agent
		// cannot verify it has.
		eff := m.EffectiveWtdp()
		m.allowance += m.allowance * (eff - m.wAvg) / eff
	}
	if floor := m.cfg.MinBid * float64(tasks+1); m.allowance < floor {
		m.allowance = floor
	}

	// Hierarchical allowance distribution: A → A_v (inversely proportional
	// to cluster power) → A_c (by priority) → a_t (by priority).
	m.distributeAllowance(w)
	if m.tel.Enabled(telemetry.KindAllowance) {
		ev := telemetry.E(telemetry.KindAllowance)
		ev.Round = m.round
		ev.Name = m.state.String()
		ev.Value, ev.Prev = m.allowance, m.distributed
		m.tel.Emit(ev)
	}

	// Bidding, price discovery, purchase, price control: cluster-local
	// phases, concurrent across clusters in parallel mode.
	m.forEachCluster(func(v *ClusterAgent) {
		v.runBids(&m.cfg, m.round)
		v.discover(m.round)
		v.controlPrice(&m.cfg, m.state, m.round)
	})

	// Emergency backstop: the curbed allowances normally percolate into
	// lower bids, deflation, and a supply drop — but once bids sit on the
	// b_min floor the price can no longer fall and the deflation signal
	// disappears while power is still above TDP. The chip agent then forces
	// the hungriest cluster down one rung directly ("must be brought down
	// quickly", §3.2.3).
	if m.state == Emergency {
		m.forceCooldown()
	}

	// Sequential round tail: fold hot-path counts into the registry and
	// publish the market half of the live /state snapshot.
	if m.tel != nil {
		m.foldTelemetry()
	}
}

// forceCooldown steps the highest-power occupied cluster down one V-F rung,
// unless a cluster already moved this round.
func (m *Market) forceCooldown() {
	var worst *ClusterAgent
	worstP := -1.0
	for _, v := range m.Clusters {
		if v.TaskCount() == 0 {
			continue
		}
		if v.frozen {
			return // supply already moved this round; let it settle
		}
		if p := v.Control.Power(); p > worstP {
			worst, worstP = v, p
		}
	}
	if worst != nil {
		prev := worst.Control.SupplyPU()
		if worst.Control.StepDown() {
			worst.frozen = true
			worst.emitDVFS(m.round, "force", prev)
		}
	}
}

// canRaiseSupply reports whether any cluster with tasks has V-F headroom.
func (m *Market) canRaiseSupply() bool {
	for _, v := range m.Clusters {
		if v.TaskCount() == 0 {
			continue
		}
		if v.Control.Level() < v.Control.NumLevels()-1 {
			return true
		}
	}
	return false
}

func (m *Market) taskCount() int {
	var n int
	for _, v := range m.Clusters {
		n += v.TaskCount()
	}
	return n
}

// distributeAllowance computes A_v = A·(W−W_v)/W across the clusters that
// have tasks (normalized so the shares sum to A; for the two-cluster TC2
// the paper's formula is already normalized), then recurses down the
// hierarchy.
func (m *Market) distributeAllowance(w float64) {
	type share struct {
		v      *ClusterAgent
		weight float64
	}
	var shares []share
	var sum float64
	for _, v := range m.Clusters {
		if v.TaskCount() == 0 {
			v.allowance = 0
			v.distributed = 0
			continue
		}
		weight := 1.0
		if w > 0 {
			weight = (w - v.Control.Power()) / w
			if weight <= 0 {
				weight = 1e-6 // a cluster drawing all chip power still gets a sliver
			}
		}
		shares = append(shares, share{v, weight})
		sum += weight
	}
	if len(shares) == 0 {
		m.distributed = 0
		return
	}
	if sum <= 0 {
		for i := range shares {
			shares[i].weight = 1
		}
		sum = float64(len(shares))
	}
	m.distributed = 0
	for _, sh := range shares {
		sh.v.allowance = m.allowance * sh.weight / sum
		m.distributed += sh.v.allowance
	}
	// The per-cluster fan-out (A_v → A_c → a_t) is cluster-local.
	m.forEachCluster(func(v *ClusterAgent) {
		if v.TaskCount() > 0 {
			v.distributeAllowance()
		}
	})
}

// Stable reports whether the last round left every cluster un-frozen and no
// cluster's constrained-core price outside its tolerance band — the price
// equilibrium of §3.2.4.
func (m *Market) Stable() bool {
	for _, v := range m.Clusters {
		if v.Frozen() {
			return false
		}
		cc := v.ConstrainedCore()
		if cc == nil || cc.basePrice == 0 {
			continue
		}
		tol := cc.basePrice * m.cfg.Tolerance
		if cc.price >= cc.basePrice+tol || cc.price <= cc.basePrice-tol {
			return false
		}
	}
	return true
}
