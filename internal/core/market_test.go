package core

import (
	"math"
	"testing"
)

// feedback copies each agent's purchased supply into its observation — the
// market-only test harness stands in for the platform measurement loop.
func feedback(agents ...*TaskAgent) {
	for _, a := range agents {
		a.Observed = a.Purchased()
	}
}

// singleCoreMarket builds a 1-cluster 1-core market over the given ladder.
func singleCoreMarket(cfg Config, ladder, power []float64) (*Market, *LadderControl) {
	ctl := NewLadderControl(ladder, power)
	m := NewMarket(cfg, []ClusterControl{ctl}, []int{1})
	return m, ctl
}

// TestTable1Dynamics reproduces Table 1: two tasks on a 300-PU core
// starting from $1 bids converge to their 200/100 PU demands in two rounds.
func TestTable1Dynamics(t *testing.T) {
	cfg := Config{InitialAllowance: 1000, InitialBid: 1, Wtdp: 0}
	m, _ := singleCoreMarket(cfg, []float64{300}, nil)
	ta := m.AddTask(1, 0)
	tb := m.AddTask(1, 0)
	ta.Demand, tb.Demand = 200, 100

	// Round 1: initial bids stand (no price history yet).
	m.StepOnce()
	if ta.Bid() != 1 || tb.Bid() != 1 {
		t.Fatalf("round 1 bids = %v/%v, want 1/1", ta.Bid(), tb.Bid())
	}
	cc := m.Cluster(0).Cores[0]
	if math.Abs(cc.Price()-2.0/300) > 1e-9 {
		t.Errorf("round 1 price = %v, want %v", cc.Price(), 2.0/300)
	}
	if math.Abs(ta.Purchased()-150) > 1e-6 || math.Abs(tb.Purchased()-150) > 1e-6 {
		t.Errorf("round 1 supplies = %v/%v, want 150/150", ta.Purchased(), tb.Purchased())
	}

	// Round 2: bids adjust by (d−s)·P.
	feedback(ta, tb)
	m.StepOnce()
	if math.Abs(ta.Bid()-4.0/3) > 1e-3 {
		t.Errorf("round 2 bid(a) = %v, want ≈1.33", ta.Bid())
	}
	if math.Abs(tb.Bid()-2.0/3) > 1e-3 {
		t.Errorf("round 2 bid(b) = %v, want ≈0.66", tb.Bid())
	}
	if math.Abs(ta.Purchased()-200) > 0.5 || math.Abs(tb.Purchased()-100) > 0.5 {
		t.Errorf("round 2 supplies = %v/%v, want 200/100", ta.Purchased(), tb.Purchased())
	}
	if !ta.Satisfied() || !tb.Satisfied() {
		t.Error("demands not satisfied at equilibrium")
	}
}

// TestTable2ClusterDynamics reproduces Table 2: a demand step from 200 to
// 300 PU inflates the price past δ=0.2 and the cluster agent raises the
// supply from 300 to 400 PU; in the settle round the new price becomes the
// base and both tasks are satisfied.
func TestTable2ClusterDynamics(t *testing.T) {
	cfg := Config{InitialAllowance: 1000, InitialBid: 1, Tolerance: 0.2}
	m, ctl := singleCoreMarket(cfg, []float64{300, 400, 500, 600}, nil)
	ta := m.AddTask(1, 0)
	tb := m.AddTask(1, 0)
	ta.Demand, tb.Demand = 200, 100

	// Rounds 1-2 (Table 1 prologue).
	m.StepOnce()
	feedback(ta, tb)
	m.StepOnce()
	feedback(ta, tb)
	base := m.Cluster(0).Cores[0].BasePrice()
	if math.Abs(base-2.0/300) > 1e-6 {
		t.Fatalf("base price = %v, want %v", base, 2.0/300)
	}

	// Round 3: demand of ta rises to 300.
	ta.Demand = 300
	m.StepOnce()
	cc := m.Cluster(0).Cores[0]
	if math.Abs(ta.Bid()-1.999) > 5e-3 {
		t.Errorf("round 3 bid(a) = %v, want ≈1.99", ta.Bid())
	}
	if math.Abs(cc.Price()-0.00889) > 1e-4 {
		t.Errorf("round 3 price = %v, want ≈0.0088", cc.Price())
	}
	if ctl.SupplyPU() != 400 {
		t.Fatalf("supply after inflation = %v, want 400", ctl.SupplyPU())
	}
	if !m.Cluster(0).Frozen() {
		t.Error("cluster not frozen after V-F change")
	}

	// Round 4: bids frozen, price re-discovered at new supply, base reset.
	bidA, bidB := ta.Bid(), tb.Bid()
	feedback(ta, tb)
	m.StepOnce()
	if ta.Bid() != bidA || tb.Bid() != bidB {
		t.Error("bids changed during the settle round")
	}
	if math.Abs(cc.Price()-bidA/400-bidB/400) > 1e-6 {
		t.Errorf("round 4 price = %v, want %v", cc.Price(), (bidA+bidB)/400)
	}
	if math.Abs(cc.BasePrice()-cc.Price()) > 1e-12 {
		t.Error("base price not reset to settle-round price")
	}
	if math.Abs(ta.Purchased()-300) > 1 || math.Abs(tb.Purchased()-100) > 1 {
		t.Errorf("round 4 supplies = %v/%v, want 300/100", ta.Purchased(), tb.Purchased())
	}
	if m.Cluster(0).Frozen() {
		t.Error("cluster still frozen after settle round")
	}
}

// table3Market builds the Table 3 scenario: supply ladder {300..600} where
// 600 PU costs 3 W (emergency), 500 PU costs 2 W (threshold) and lower
// levels 0.8 W; Wtdp = 2.25 W, Wth = 1.75 W; priorities 2 vs 1.
func table3Market() (*Market, *TaskAgent, *TaskAgent, *LadderControl) {
	cfg := Config{
		InitialAllowance: 4.5, InitialBid: 1, Tolerance: 0.2,
		Wtdp: 2.25, Wth: 1.75, SavingsCap: 5,
	}
	m, ctl := singleCoreMarket(cfg,
		[]float64{300, 400, 500, 600},
		[]float64{0.8, 0.8, 2.0, 3.0})
	ta := m.AddTask(2, 0)
	tb := m.AddTask(1, 0)
	return m, ta, tb, ctl
}

// TestTable3ChipDynamics reproduces the chip-level trajectory of Table 3
// qualitatively: under overload the system passes through the emergency
// state, the allowance is cut, and it stabilizes in the threshold state with
// the high-priority task satisfied and the low-priority task suffering.
func TestTable3ChipDynamics(t *testing.T) {
	m, ta, tb, ctl := table3Market()
	ta.Demand, tb.Demand = 300, 100

	run := func(n int) {
		for i := 0; i < n; i++ {
			feedback(ta, tb)
			m.StepOnce()
		}
	}

	// Prologue: both demands satisfiable at 400 PU (0.8 W, normal state).
	run(12)
	if m.State() != Normal {
		t.Fatalf("prologue state = %v, want normal", m.State())
	}
	if ctl.SupplyPU() != 400 {
		t.Fatalf("prologue supply = %v, want 400", ctl.SupplyPU())
	}
	if !ta.Satisfied() || !tb.Satisfied() {
		t.Fatal("prologue demands not satisfied")
	}

	// Allowance distribution follows priorities 2:1 (a_ta = 2·a_tb).
	if math.Abs(ta.Allowance()-2*tb.Allowance()) > 1e-9 {
		t.Errorf("allowances = %v/%v, want 2:1", ta.Allowance(), tb.Allowance())
	}

	// Round 5 of the paper: tb's demand jumps to 300; combined demand 600
	// needs the 3 W level — unsustainable under Wtdp = 2.25 W.
	tb.Demand = 300
	sawEmergency := false
	curbed := false
	maxSupply := 0.0
	prevA := m.Allowance()
	for i := 0; i < 60; i++ {
		feedback(ta, tb)
		m.StepOnce()
		if m.State() == Emergency {
			sawEmergency = true
			if m.Allowance() < prevA {
				curbed = true
			}
		}
		prevA = m.Allowance()
		if s := ctl.SupplyPU(); s > maxSupply {
			maxSupply = s
		}
	}
	if !sawEmergency {
		t.Error("system never reached the emergency state")
	}
	if maxSupply != 600 {
		t.Errorf("max supply = %v, want 600 (overshoot into emergency)", maxSupply)
	}

	// Steady state: threshold, 500 PU (2 W), allowance cut below the peak.
	if m.State() != Threshold {
		t.Errorf("final state = %v, want threshold", m.State())
	}
	if got := ctl.SupplyPU(); got != 500 {
		t.Errorf("final supply = %v, want 500", got)
	}
	if !curbed {
		t.Error("allowance never curbed during an emergency round")
	}

	// The high-priority task meets its demand; the low-priority one suffers.
	if math.Abs(ta.Purchased()-300) > 15 {
		t.Errorf("high-priority supply = %v, want ≈300", ta.Purchased())
	}
	if tb.Purchased() > 215 {
		t.Errorf("low-priority supply = %v, want ≈200 (suffering)", tb.Purchased())
	}
	if tb.Satisfied() {
		t.Error("low-priority task satisfied despite overload")
	}

	// Price equilibrium: further rounds leave the V-F level alone.
	level := ctl.Level()
	run(20)
	if ctl.Level() != level {
		t.Errorf("V-F level still moving at steady state: %d → %d", level, ctl.Level())
	}
	if !m.Stable() {
		t.Error("market not reporting stability at steady state")
	}
}

// TestSavingsAccrueWhenUnderbidding verifies §3.2.3's savings mechanism: an
// agent bidding below its allowance accumulates the difference, capped at
// SavingsCap × allowance.
func TestSavingsAccrueWhenUnderbidding(t *testing.T) {
	cfg := Config{InitialAllowance: 10, InitialBid: 1, SavingsCap: 2}
	m, _ := singleCoreMarket(cfg, []float64{300}, nil)
	ta := m.AddTask(1, 0)
	ta.Demand = 100
	for i := 0; i < 50; i++ {
		feedback(ta)
		m.StepOnce()
	}
	if ta.Savings() <= 0 {
		t.Fatal("no savings accrued while underbidding")
	}
	if cap := cfg.SavingsCap * ta.Allowance(); ta.Savings() > cap+1e-9 {
		t.Errorf("savings %v exceed cap %v", ta.Savings(), cap)
	}
}

// TestSavingsSpentWhenOverbidding verifies the drain path: when the bid must
// exceed the allowance, savings make up the difference and deplete.
func TestSavingsSpentWhenOverbidding(t *testing.T) {
	cfg := Config{InitialAllowance: 2, InitialBid: 1, SavingsCap: 5, Tolerance: 1e9}
	m, _ := singleCoreMarket(cfg, []float64{300}, nil)
	ta := m.AddTask(1, 0)
	tb := m.AddTask(1, 0)
	// Dormant phase: ta demands little, saves.
	ta.Demand, tb.Demand = 50, 250
	for i := 0; i < 100; i++ {
		feedback(ta, tb)
		m.StepOnce()
	}
	saved := ta.Savings()
	if saved <= 0 {
		t.Fatal("no savings accrued in dormant phase")
	}
	// Active phase: ta now demands more than its allowance can buy.
	ta.Demand = 280
	for i := 0; i < 200; i++ {
		feedback(ta, tb)
		m.StepOnce()
	}
	if ta.Savings() >= saved {
		t.Errorf("savings did not drain in active phase: %v → %v", saved, ta.Savings())
	}
	// Its bid may exceed its allowance only thanks to savings.
	if ta.Bid() > ta.Allowance()+ta.Savings()+1e-9 {
		t.Errorf("bid %v exceeds allowance+savings %v", ta.Bid(), ta.Allowance()+ta.Savings())
	}
}

func TestBidsRespectFloor(t *testing.T) {
	cfg := Config{InitialAllowance: 10, InitialBid: 1, MinBid: 0.05}
	m, _ := singleCoreMarket(cfg, []float64{300}, nil)
	ta := m.AddTask(1, 0)
	ta.Demand = 0 // wants nothing; bid should fall to the floor, not 0
	for i := 0; i < 100; i++ {
		feedback(ta)
		m.StepOnce()
	}
	if ta.Bid() != 0.05 {
		t.Errorf("bid = %v, want floor 0.05", ta.Bid())
	}
}

func TestEmptyClusterDriftsToBottomAndPricesZero(t *testing.T) {
	cfg := Config{InitialAllowance: 10}
	m, ctl := singleCoreMarket(cfg, []float64{300, 400, 500}, nil)
	ctl.SetLevel(2)
	for i := 0; i < 5; i++ {
		m.StepOnce()
	}
	if ctl.Level() != 0 {
		t.Errorf("empty cluster at level %d, want 0", ctl.Level())
	}
	if got := m.Cluster(0).Cores[0].Price(); got != 0 {
		t.Errorf("empty core price = %v, want 0", got)
	}
}

func TestAllowanceDistributionInverseToPower(t *testing.T) {
	cfg := Config{InitialAllowance: 9, InitialBid: 1}
	hot := NewLadderControl([]float64{1000}, []float64{6})
	cold := NewLadderControl([]float64{1000}, []float64{2})
	m := NewMarket(cfg, []ClusterControl{hot, cold}, []int{1, 1})
	a := m.AddTask(1, 0)
	b := m.AddTask(1, 1)
	a.Demand, b.Demand = 500, 500
	m.StepOnce()
	// Weights: hot (W−6)/8 = 0.25, cold (W−2)/8 = 0.75.
	if math.Abs(m.Cluster(0).Allowance()-9*0.25) > 1e-9 {
		t.Errorf("hot cluster allowance = %v, want %v", m.Cluster(0).Allowance(), 9*0.25)
	}
	if math.Abs(m.Cluster(1).Allowance()-9*0.75) > 1e-9 {
		t.Errorf("cold cluster allowance = %v, want %v", m.Cluster(1).Allowance(), 9*0.75)
	}
	// Conservation: cluster allowances sum to A.
	sum := m.Cluster(0).Allowance() + m.Cluster(1).Allowance()
	if math.Abs(sum-m.Allowance()) > 1e-9 {
		t.Errorf("ΣA_v = %v, A = %v", sum, m.Allowance())
	}
}

func TestEmptyClusterGetsNoAllowance(t *testing.T) {
	cfg := Config{InitialAllowance: 9, InitialBid: 1}
	c0 := NewLadderControl([]float64{1000}, []float64{2})
	c1 := NewLadderControl([]float64{1000}, []float64{2})
	m := NewMarket(cfg, []ClusterControl{c0, c1}, []int{1, 1})
	a := m.AddTask(1, 0)
	a.Demand = 500
	m.StepOnce()
	if m.Cluster(1).Allowance() != 0 {
		t.Errorf("empty cluster allowance = %v, want 0", m.Cluster(1).Allowance())
	}
	if math.Abs(m.Cluster(0).Allowance()-9) > 1e-9 {
		t.Errorf("occupied cluster allowance = %v, want 9", m.Cluster(0).Allowance())
	}
}

func TestMoveTaskKeepsMoney(t *testing.T) {
	cfg := Config{InitialAllowance: 10, InitialBid: 1}
	c0 := NewLadderControl([]float64{500}, nil)
	c1 := NewLadderControl([]float64{500}, nil)
	m := NewMarket(cfg, []ClusterControl{c0, c1}, []int{2, 2})
	a := m.AddTask(1, 0)
	a.Demand = 100
	for i := 0; i < 20; i++ {
		feedback(a)
		m.StepOnce()
	}
	savings := a.Savings()
	if savings <= 0 {
		t.Fatal("expected savings before move")
	}
	m.MoveTask(a, 3)
	_, dst := m.CoreByID(3)
	if len(dst.Tasks) != 1 || dst.Tasks[0] != a {
		t.Fatal("task not on destination core")
	}
	if a.Savings() != savings {
		t.Errorf("savings changed across move: %v → %v", savings, a.Savings())
	}
	_, src := m.CoreByID(0)
	if len(src.Tasks) != 0 {
		t.Error("task still on source core")
	}
}

func TestRemoveTask(t *testing.T) {
	cfg := Config{InitialAllowance: 10}
	m, _ := singleCoreMarket(cfg, []float64{300}, nil)
	a := m.AddTask(1, 0)
	m.RemoveTask(a)
	if n := m.taskCount(); n != 0 {
		t.Errorf("task count after removal = %d", n)
	}
	m.RemoveTask(a) // idempotent
}

func TestStateClassification(t *testing.T) {
	m, _ := singleCoreMarket(Config{Wtdp: 4, Wth: 3.5}, []float64{300}, nil)
	cases := []struct {
		w    float64
		want State
	}{{1, Normal}, {3.4, Normal}, {3.5, Threshold}, {3.99, Threshold}, {4, Emergency}, {9, Emergency}}
	for _, c := range cases {
		if got := m.classify(c.w); got != c.want {
			t.Errorf("classify(%v) = %v, want %v", c.w, got, c.want)
		}
	}
	// No TDP configured: always normal.
	m2, _ := singleCoreMarket(Config{}, []float64{300}, nil)
	if got := m2.classify(100); got != Normal {
		t.Errorf("classify without TDP = %v, want normal", got)
	}
}

func TestStateString(t *testing.T) {
	if Normal.String() != "normal" || Threshold.String() != "threshold" || Emergency.String() != "emergency" {
		t.Error("state names wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Wtdp: 4}.withDefaults()
	if c.MinBid <= 0 || c.Tolerance <= 0 || c.SavingsCap <= 0 ||
		c.InitialAllowance <= 0 || c.InitialBid <= 0 {
		t.Errorf("defaults not filled: %+v", c)
	}
	if math.Abs(c.Wth-3.6) > 1e-9 {
		t.Errorf("default Wth = %v, want 3.6", c.Wth)
	}
	// Explicit values survive.
	c2 := Config{MinBid: 0.5, Wtdp: 4}.withDefaults()
	if c2.MinBid != 0.5 {
		t.Error("explicit MinBid overwritten")
	}
}

// Property: purchases always exhaust the supply exactly when there are
// bidders (Σ s_t = S_c), at any demand mix.
func TestPurchaseConservationProperty(t *testing.T) {
	cfg := Config{InitialAllowance: 100, InitialBid: 1}
	m, _ := singleCoreMarket(cfg, []float64{777}, nil)
	agents := []*TaskAgent{m.AddTask(1, 0), m.AddTask(3, 0), m.AddTask(2, 0)}
	demands := [][]float64{{100, 200, 300}, {0, 0, 900}, {500, 500, 500}, {10, 10, 10}}
	for _, ds := range demands {
		for i, a := range agents {
			a.Demand = ds[i]
		}
		for r := 0; r < 10; r++ {
			feedback(agents...)
			m.StepOnce()
			var sum float64
			for _, a := range agents {
				sum += a.Purchased()
			}
			if math.Abs(sum-777) > 1e-6 {
				t.Fatalf("Σ purchased = %v, want 777 (demands %v)", sum, ds)
			}
		}
	}
}

// TestZeroPowerDoesNotReseedEWMA is the regression test for the EWMA seed
// sentinel: a chip legitimately reading 0 W (all clusters gated or a
// zero-power ladder rung) must count as a real sample. With the old
// `wAvg == 0` sentinel every 0 W round re-seeded the average, so the next
// raw power spike was classified unsmoothed and the state machine
// overreacted (here: straight to Emergency instead of staying Normal).
func TestZeroPowerDoesNotReseedEWMA(t *testing.T) {
	ctl := NewLadderControl([]float64{100, 200}, []float64{0, 10})
	m := NewMarket(Config{InitialAllowance: 10, InitialBid: 1, Wtdp: 8, Wth: 6},
		[]ClusterControl{ctl}, []int{1})
	a := m.AddTask(1, 0)
	a.Demand = 50

	// Several rounds at a legitimate 0 W reading.
	for i := 0; i < 3; i++ {
		m.StepOnce()
		feedback(a)
		if m.SmoothedPower() != 0 {
			t.Fatalf("round %d: smoothed power = %v, want 0", i, m.SmoothedPower())
		}
		if m.State() != Normal {
			t.Fatalf("round %d: state = %v, want normal", i, m.State())
		}
	}

	// Raw power spikes to 10 W (above Wtdp). The smoothed reading must move
	// only by the EWMA step — 0.3·10 = 3 W, well inside the normal zone.
	ctl.SetLevel(1)
	m.StepOnce()
	if got := m.SmoothedPower(); math.Abs(got-3.0) > 1e-9 {
		t.Errorf("smoothed power after spike = %v, want 3.0 (EWMA step)", got)
	}
	if m.State() != Normal {
		t.Errorf("state after smoothed spike = %v, want normal (raw classification overreacts)",
			m.State())
	}
}

// The O(1) core index must agree with the hierarchy for every ID, and
// reject out-of-range IDs.
func TestCoreByIDIndex(t *testing.T) {
	controls := []ClusterControl{
		NewLadderControl([]float64{300}, nil),
		NewLadderControl([]float64{400}, nil),
		NewLadderControl([]float64{500}, nil),
	}
	m := NewMarket(Config{}, controls, []int{2, 3, 1})
	id := 0
	for _, v := range m.Clusters {
		for _, c := range v.Cores {
			gv, gc := m.CoreByID(id)
			if gv != v || gc != c || gc.ID != id {
				t.Errorf("CoreByID(%d) = (%v,%v), want (%v,%v)", id, gv, gc, v, c)
			}
			id++
		}
	}
	if v, c := m.CoreByID(-1); v != nil || c != nil {
		t.Error("CoreByID(-1) not nil")
	}
	if v, c := m.CoreByID(id); v != nil || c != nil {
		t.Errorf("CoreByID(%d) not nil", id)
	}
}

// Task agents carry their core back-reference through add/move/remove.
func TestTaskAgentCoreBackref(t *testing.T) {
	c0 := NewLadderControl([]float64{500}, nil)
	c1 := NewLadderControl([]float64{500}, nil)
	m := NewMarket(Config{InitialAllowance: 10}, []ClusterControl{c0, c1}, []int{1, 1})
	a := m.AddTask(1, 0)
	if _, c := m.CoreByID(0); a.Core() != c {
		t.Errorf("Core() after AddTask = %v, want core 0", a.Core())
	}
	m.MoveTask(a, 1)
	if _, c := m.CoreByID(1); a.Core() != c {
		t.Errorf("Core() after MoveTask = %v, want core 1", a.Core())
	}
	m.RemoveTask(a)
	if a.Core() != nil {
		t.Errorf("Core() after RemoveTask = %v, want nil", a.Core())
	}
}
