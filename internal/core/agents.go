package core

import "pricepower/internal/telemetry"

// TaskAgent is the buyer representing one task (§3.2.1). Each round the
// governor injects the task's current demand and the supply it observed;
// the agent then revises its bid:
//
//	b_t ← clamp(b_t + (d_t − s_t)·P_c,  b_min,  a_t + m_t)
//
// (Eq. 1 with the textual cap: "the bidding amount is capped by the
// summation of allowance a_t and savings m_t"). Unspent allowance
// accumulates as savings m_t up to SavingsCap × a_t.
type TaskAgent struct {
	ID       int
	Priority int

	// Demand is d_t on the task's current core type, set by the governor
	// before each round.
	Demand float64
	// Observed is the supply s_t the task received, set by the governor
	// before each round. (After price discovery the market also computes the
	// purchased supply; governors may feed that back or use measurements.)
	Observed float64

	allowance float64
	savings   float64
	bid       float64
	purchased float64
	// savingsBasis is the allowance the last savings clamp was judged
	// against. Frozen clusters skip bidding (and with it the clamp) while
	// allowances are still redistributed, so m_t ≤ SavingsCap·a_t only
	// holds against this snapshot, not against the live a_t.
	savingsBasis float64

	// core is the agent's current seller, maintained by Market.AddTask /
	// MoveTask / RemoveTask so detaching never sweeps the hierarchy.
	core *CoreAgent
}

// Core returns the core agent currently selling to this task agent (nil
// after RemoveTask).
func (a *TaskAgent) Core() *CoreAgent { return a.core }

// Bid reports the agent's current bid b_t.
func (a *TaskAgent) Bid() float64 { return a.bid }

// Allowance reports the agent's current allowance a_t.
func (a *TaskAgent) Allowance() float64 { return a.allowance }

// Savings reports the agent's current savings m_t.
func (a *TaskAgent) Savings() float64 { return a.savings }

// Purchased reports the supply bought in the last price-discovery step.
func (a *TaskAgent) Purchased() float64 { return a.purchased }

// Satisfied reports whether the purchased supply covers the demand.
func (a *TaskAgent) Satisfied() bool { return a.purchased >= a.Demand-1e-9 }

// Eq. 1 clamp outcomes, reported by reviseBid so the telemetry layer can
// count how often the market saturates at either bound (a floor-saturated
// market has lost its deflation signal; see ClusterAgent.controlPrice).
const (
	clampNone = iota
	clampFloor
	clampCap
)

// reviseBid applies Eq. 1 given the price observed in the previous round
// and reports which clamp, if any, bounded the revision. An agent with no
// demand at all (finished or fully idle task) has nothing to buy: its bid
// decays toward the floor — Eq. 1 alone would freeze it at its last value
// (d−s = 0−0) and hold the price, and with it the V-F level, up forever.
func (a *TaskAgent) reviseBid(price float64, cfg *Config) int {
	if a.Demand <= 0 {
		a.bid /= 2
		if a.bid < cfg.MinBid {
			a.bid = cfg.MinBid
		}
		return clampNone
	}
	b := a.bid + (a.Demand-a.Observed)*price
	out := clampNone
	if max := a.allowance + a.savings; b > max {
		b = max
		out = clampCap
	}
	if b < cfg.MinBid {
		b = cfg.MinBid
		out = clampFloor
	}
	a.bid = b
	return out
}

// settleSavings updates m_t after bidding: unspent allowance is saved,
// overspending draws savings down, and the balance is clamped to
// [0, SavingsCap·a_t].
func (a *TaskAgent) settleSavings(cfg *Config) {
	a.savingsBasis = a.allowance
	a.savings += a.allowance - a.bid
	if a.savings < 0 {
		a.savings = 0
	}
	if cap := cfg.SavingsCap * a.allowance; a.savings > cap {
		a.savings = cap
	}
}

// SavingsBasis reports the allowance the last savings clamp was judged
// against — the reference for the m_t ≤ SavingsCap·a_t invariant.
func (a *TaskAgent) SavingsBasis() float64 { return a.savingsBasis }

// CoreAgent is the seller for one core (§3.2.1): it discovers the price of
// the core's PUs from the task agents' bids and distributes supply in
// proportion to the bids. It also fans the core allowance out to its task
// agents in proportion to priority.
type CoreAgent struct {
	ID    int
	Tasks []*TaskAgent

	price       float64
	basePrice   float64
	allowance   float64
	supply      float64 // supply the last price discovery cleared against
	cleared     float64 // Σ s_t actually handed out at the last discovery
	distributed float64 // Σ a_t actually handed out at the last fan-out

	// Eq. 1 clamp tallies. Plain fields on purpose: runBids is the market's
	// hottest loop, each core is touched by exactly one goroutine within a
	// round, and the sequential round tail folds the sums into the telemetry
	// registry (Market.foldTelemetry) — so the hot path pays no atomics.
	clampFloor uint64
	clampCap   uint64
}

// Price reports the last discovered price P_c per PU.
func (c *CoreAgent) Price() float64 { return c.price }

// BasePrice reports the reference price inflation/deflation is measured
// against; it resets whenever the cluster's V-F level changes (§3.2.2).
func (c *CoreAgent) BasePrice() float64 { return c.basePrice }

// Allowance reports the core allowance A_c.
func (c *CoreAgent) Allowance() float64 { return c.allowance }

// Demand reports D_c, the sum of its tasks' demands.
func (c *CoreAgent) Demand() float64 {
	var d float64
	for _, t := range c.Tasks {
		d += t.Demand
	}
	return d
}

// PrioritySum reports R_c.
func (c *CoreAgent) PrioritySum() int {
	var r int
	for _, t := range c.Tasks {
		r += t.Priority
	}
	return r
}

// distributeAllowance splits A_c among the task agents proportionally to
// priority: a_t = A_c · r_t / R_c.
func (c *CoreAgent) distributeAllowance() {
	r := c.PrioritySum()
	if r == 0 {
		c.distributed = c.allowance // nothing to fan out
		return
	}
	var sum float64
	for _, t := range c.Tasks {
		t.allowance = c.allowance * float64(t.Priority) / float64(r)
		sum += t.allowance
	}
	c.distributed = sum
}

// DistributedAllowance reports Σ a_t actually handed to the task agents at
// the last fan-out. Budget conservation (Σ a_t = A_c) must be judged on
// this snapshot rather than on a live sum over Tasks: the LBT module moves
// agents — and their allowances — between cores after distribution within
// the same governor tick.
func (c *CoreAgent) DistributedAllowance() float64 { return c.distributed }

// runBids lets every task agent revise its bid against the price of the
// previous round. Per-task bid events are emitted only when the caller's
// emitter has the high-volume KindBid enabled (off by default — at Table 7
// scale this loop runs for thousands of tasks per round). cfg is shared
// read-only across the concurrent cluster phases — nothing down this chain
// may write through it.
func (c *CoreAgent) runBids(cfg *Config, em *telemetry.Emitter, cluster, round int) {
	emitBids := em.Enabled(telemetry.KindBid)
	for _, t := range c.Tasks {
		prev := t.bid
		switch t.reviseBid(c.price, cfg) {
		case clampFloor:
			c.clampFloor++
		case clampCap:
			c.clampCap++
		}
		t.settleSavings(cfg)
		if emitBids {
			ev := telemetry.E(telemetry.KindBid)
			ev.Round, ev.Cluster, ev.Core, ev.Task = round, cluster, c.ID, t.ID
			ev.Value, ev.Prev = t.bid, prev
			em.Emit(ev)
		}
	}
}

// DiscoveredSupply reports the supply the last price discovery cleared
// against. The cluster agent may move the V-F level in the same round,
// *after* discovery, so clearing invariants (Σ s_t = S_c) must be judged
// against this value, not the live supply.
func (c *CoreAgent) DiscoveredSupply() float64 { return c.supply }

// ClearedSupply reports Σ s_t actually distributed at the last discovery.
// With a positive price it must equal DiscoveredSupply (the market clears);
// task agents may migrate to other cores later in the round, which moves
// their purchases with them, so the pair is snapshotted here at discovery
// time for the invariant checker.
func (c *CoreAgent) ClearedSupply() float64 { return c.cleared }

// discover performs price discovery and the purchase step: P_c = Σ b_t /
// S_c, s_t = b_t / P_c. With supply S_c == 0 (powered-down cluster) or no
// bids, the price collapses to 0 and nobody purchases.
func (c *CoreAgent) discover(supply float64) {
	c.supply = supply
	var sum float64
	for _, t := range c.Tasks {
		sum += t.bid
	}
	if supply <= 0 || sum <= 0 {
		c.price = 0
		c.cleared = 0
		for _, t := range c.Tasks {
			t.purchased = 0
		}
		return
	}
	c.price = sum / supply
	c.cleared = 0
	for _, t := range c.Tasks {
		t.purchased = t.bid / c.price
		c.cleared += t.purchased
	}
}

// Oversupply reports S_c − D_c, how many PUs the core currently supplies
// beyond its tasks' aggregate demand (the LBT module targets the most
// oversupplied unconstrained core).
func (c *CoreAgent) Oversupply(supply float64) float64 { return supply - c.Demand() }

// atBidFloor reports whether every task agent on the core bids the minimum
// — the deflation signal's saturation point: prices can no longer fall even
// though nobody wants the supply.
func (c *CoreAgent) atBidFloor(cfg *Config) bool {
	if len(c.Tasks) == 0 {
		return false
	}
	for _, t := range c.Tasks {
		if t.bid > cfg.MinBid+1e-12 {
			return false
		}
	}
	return true
}
