package core

import "pricepower/internal/telemetry"

// ClusterAgent supervises the core agents sharing one V-F regulator
// (§3.2.2). It watches the price on the cluster's *constrained* core — the
// core with the highest demand, which determines the V-F level the whole
// cluster needs — and steps the shared supply up on price inflation or down
// on deflation beyond the tolerance δ.
//
// While a V-F change is settling, bids are frozen for one round so the task
// agents first observe the effect of the new supply on their existing bids;
// the price seen in that round becomes the new base price.
type ClusterAgent struct {
	ID      int
	Cores   []*CoreAgent
	Control ClusterControl

	allowance   float64
	distributed float64 // Σ A_c actually handed out at the last fan-out
	frozen      bool

	// tel is the market's emitter (nil when detached; set by SetTelemetry).
	// snapPrice/snapBase snapshot the constrained core's price pair during
	// controlPrice — which computes the constrained core anyway — so the
	// per-round /state publish never re-scans the task lists.
	tel                 *telemetry.Emitter
	snapPrice, snapBase float64
}

// Allowance reports the cluster allowance A_v.
func (v *ClusterAgent) Allowance() float64 { return v.allowance }

// Frozen reports whether the cluster is settling after a V-F change (bids
// held this round).
func (v *ClusterAgent) Frozen() bool { return v.frozen }

// ConstrainedCore returns the core agent with the highest demand (c̃_v), or
// nil when the cluster has no tasks.
func (v *ClusterAgent) ConstrainedCore() *CoreAgent {
	var best *CoreAgent
	bestD := -1.0
	for _, c := range v.Cores {
		if len(c.Tasks) == 0 {
			continue
		}
		if d := c.Demand(); d > bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Demand reports D_v, the demand of the constrained core (the cluster's
// supply requirement, since all cores share the V-F level).
func (v *ClusterAgent) Demand() float64 {
	if c := v.ConstrainedCore(); c != nil {
		return c.Demand()
	}
	return 0
}

// SupplyPU reports the per-core supply S_v of the cluster.
func (v *ClusterAgent) SupplyPU() float64 { return v.Control.SupplyPU() }

// PrioritySum reports R_v.
func (v *ClusterAgent) PrioritySum() int {
	var r int
	for _, c := range v.Cores {
		r += c.PrioritySum()
	}
	return r
}

// TaskCount reports the number of task agents in the cluster.
func (v *ClusterAgent) TaskCount() int {
	var n int
	for _, c := range v.Cores {
		n += len(c.Tasks)
	}
	return n
}

// distributeAllowance splits A_v among core agents proportionally to their
// priority sums: A_c = A_v · R_c / R_v.
func (v *ClusterAgent) distributeAllowance() {
	r := v.PrioritySum()
	if r == 0 {
		v.distributed = v.allowance // nothing to fan out
		return
	}
	var sum float64
	for _, c := range v.Cores {
		c.allowance = v.allowance * float64(c.PrioritySum()) / float64(r)
		sum += c.allowance
		c.distributeAllowance()
	}
	v.distributed = sum
}

// DistributedAllowance reports Σ A_c actually handed to the core agents at
// the last fan-out — the budget-conservation snapshot (see
// CoreAgent.DistributedAllowance for why a live sum is wrong).
func (v *ClusterAgent) DistributedAllowance() float64 { return v.distributed }

// runBids runs the bid-revision step on every core unless the cluster is
// settling a V-F change.
func (v *ClusterAgent) runBids(cfg *Config, round int) {
	if v.frozen {
		return
	}
	for _, c := range v.Cores {
		c.runBids(cfg, v.tel, v.ID, round)
	}
}

// discover performs price discovery on every core at the current supply.
func (v *ClusterAgent) discover(round int) {
	s := v.Control.SupplyPU()
	emitPrice := v.tel.Enabled(telemetry.KindPrice)
	emitClearing := v.tel.Enabled(telemetry.KindClearing)
	for _, c := range v.Cores {
		prev := c.price
		c.discover(s)
		if emitPrice {
			ev := telemetry.E(telemetry.KindPrice)
			ev.Round, ev.Cluster, ev.Core = round, v.ID, c.ID
			ev.Value, ev.Prev = c.price, prev
			v.tel.Emit(ev)
		}
		if emitClearing {
			ev := telemetry.E(telemetry.KindClearing)
			ev.Round, ev.Cluster, ev.Core = round, v.ID, c.ID
			ev.Value, ev.Prev = c.cleared, c.supply
			v.tel.Emit(ev)
		}
	}
}

// controlPrice implements the inflation/deflation response (§3.2.2). It
// must run after discover. It reports whether the V-F level changed.
//
// The state parameter carries the chip agent's classification: in the
// normal state the §3.2.4 anti-oscillation rule applies — demand is rounded
// up to the next supply value, so the cluster never deflates below the rung
// its constrained core needs (otherwise a core demanding 540 PU would
// oscillate between the 500 and 600 PU rungs forever). In the threshold and
// emergency states deflation is unconditional: there the falling bids
// express what the curbed allowances can afford, and supply must follow
// them down to bring power inside the budget (Table 3's 600→500 step).
func (v *ClusterAgent) controlPrice(cfg *Config, state State, round int) bool {
	cc := v.ConstrainedCore()
	if cc == nil {
		// Empty cluster: drift to the bottom of the ladder.
		v.snapPrice, v.snapBase = 0, 0
		v.frozen = false
		prev := v.Control.SupplyPU()
		if v.Control.StepDown() {
			v.emitDVFS(round, "drift", prev)
			return true
		}
		return false
	}
	v.snapPrice, v.snapBase = cc.price, cc.basePrice
	if v.frozen {
		// Observation round after a V-F change: adopt the new price as the
		// base for all cores and resume bidding next round.
		for _, c := range v.Cores {
			c.basePrice = c.price
		}
		v.frozen = false
		return false
	}
	if cc.basePrice == 0 {
		// First round with tasks: establish the base.
		for _, c := range v.Cores {
			c.basePrice = c.price
		}
		return false
	}
	p, base := cc.price, cc.basePrice
	// Once every bid on the constrained core sits at b_min the price cannot
	// fall any further — treat that saturation as deflation, or the cluster
	// would hold a high V-F level nobody is paying for.
	floored := cc.atBidFloor(cfg)
	switch {
	case p >= base+base*cfg.Tolerance && !floored:
		prev := v.Control.SupplyPU()
		if v.Control.StepUp() {
			v.frozen = true
			v.emitDVFS(round, "up", prev)
			return true
		}
	case p <= base-base*cfg.Tolerance || floored:
		if state == Normal && v.Control.SupplyAt(v.Control.Level()-1) < cc.Demand() {
			// Anti-oscillation: the rung below cannot carry the constrained
			// core's (rounded-up) demand. Adopt the deflated price as the new
			// base instead of thrashing the regulator.
			for _, c := range v.Cores {
				c.basePrice = c.price
			}
			return false
		}
		prev := v.Control.SupplyPU()
		if v.Control.StepDown() {
			v.frozen = true
			v.emitDVFS(round, "down", prev)
			return true
		}
	}
	return false
}
