package core

import (
	"math"
	"testing"
)

// FuzzLadderLookup drives a LadderControl with an arbitrary op stream and
// asserts its clamping contract: the level always indexes the ladder, the
// supply always equals the current rung's value, and every *At lookup
// clamps an arbitrary index onto the table instead of panicking — the
// properties the cluster agents and the LBT cost model rely on when they
// probe rungs beyond the ladder ends.
func FuzzLadderLookup(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 200, 1, 1, 2, 255, 3, 7, 4, 130})
	f.Add([]byte("\x07\x00\x00\x01\x01\x01\x02\x02\x02\x03\xff\x04\x80"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		n := 1
		if len(ops) > 0 {
			n = 1 + int(ops[0]%8)
			ops = ops[1:]
		}
		ladder := make([]float64, n)
		power := make([]float64, n)
		for i := range ladder {
			ladder[i] = 100 * float64(i+1)
			power[i] = 0.5 * float64(i+1)
		}
		l := NewLadderControl(ladder, power)

		clamp := func(i int) int {
			if i < 0 {
				return 0
			}
			if i >= n {
				return n - 1
			}
			return i
		}
		assertSane := func() {
			lvl := l.Level()
			if lvl < 0 || lvl >= n {
				t.Fatalf("level %d escaped ladder [0,%d)", lvl, n)
			}
			if got := l.SupplyPU(); got != ladder[lvl] {
				t.Fatalf("supply %v not rung %d's %v", got, lvl, ladder[lvl])
			}
			if l.NumLevels() != n {
				t.Fatalf("NumLevels %d != %d", l.NumLevels(), n)
			}
		}
		assertSane()

		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%5, int(int8(ops[i+1])) // arg spans negatives and > n
			switch op {
			case 0:
				l.SetLevel(arg)
				if want := clamp(arg); l.Level() != want {
					t.Fatalf("SetLevel(%d) landed on %d, want clamp %d", arg, l.Level(), want)
				}
			case 1:
				before := l.Level()
				moved := l.StepUp()
				if moved != (before < n-1) || l.Level() != before+b2i(moved) {
					t.Fatalf("StepUp from %d: moved=%v level=%d", before, moved, l.Level())
				}
			case 2:
				before := l.Level()
				moved := l.StepDown()
				if moved != (before > 0) || l.Level() != before-b2i(moved) {
					t.Fatalf("StepDown from %d: moved=%v level=%d", before, moved, l.Level())
				}
			case 3:
				if got, want := l.SupplyAt(arg), ladder[clamp(arg)]; got != want {
					t.Fatalf("SupplyAt(%d) = %v, want %v", arg, got, want)
				}
			case 4:
				pw := l.PowerAt(arg)
				if want := power[clamp(arg)]; pw != want {
					t.Fatalf("PowerAt(%d) = %v, want %v", arg, pw, want)
				}
				idle := l.IdlePowerAt(arg)
				if math.IsNaN(idle) || idle < 0 || idle > pw {
					t.Fatalf("IdlePowerAt(%d) = %v outside [0, busy %v]", arg, idle, pw)
				}
			}
			assertSane()
		}
	})
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
