package core

import "sync"

// Parallel round execution
//
// The paper's framework is "distributed and hence scalable with minimal
// runtime overhead": every agent acts on local information. Within one
// round, the cluster-level phases — allowance fan-out below the cluster
// weights, bid revision, price discovery, and price control — touch only
// cluster-local state, so they can execute concurrently across clusters
// with results identical to the sequential order (verified by
// TestParallelRoundEquivalence). The chip agent's money-supply update and
// the emergency backstop remain the only global, sequential steps.
//
// Parallelism is enabled automatically for many-cluster markets (the
// Table 7 scalability regime); SetParallel overrides the choice.

// parallelThreshold is the cluster count above which NewMarket enables
// concurrent rounds by default.
const parallelThreshold = 16

// SetParallel forces concurrent (true) or sequential (false) round
// execution.
func (m *Market) SetParallel(on bool) { m.parallel = on }

// Parallel reports whether rounds execute concurrently across clusters.
func (m *Market) Parallel() bool { return m.parallel }

// forEachCluster runs fn over every cluster agent, concurrently when the
// market is in parallel mode.
func (m *Market) forEachCluster(fn func(v *ClusterAgent)) {
	if !m.parallel || len(m.Clusters) < 2 {
		for _, v := range m.Clusters {
			fn(v)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(m.Clusters))
	for _, v := range m.Clusters {
		go func(v *ClusterAgent) {
			defer wg.Done()
			fn(v)
		}(v)
	}
	wg.Wait()
}
