package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel round execution
//
// The paper's framework is "distributed and hence scalable with minimal
// runtime overhead": every agent acts on local information. Within one
// round, the cluster-level phases — allowance fan-out below the cluster
// weights, bid revision, price discovery, and price control — touch only
// cluster-local state, so they can execute concurrently across clusters
// with results identical to the sequential order (verified by
// TestParallelRoundEquivalence). The chip agent's money-supply update and
// the emergency backstop remain the only global, sequential steps.
//
// Concurrency runs on a process-wide persistent worker pool sized to
// GOMAXPROCS: a Table-7-scale market (256 clusters) executes ~31.5 rounds
// per simulated second, and spawning a goroutine per cluster per round —
// the previous design — paid the spawn/teardown cost 8000+ times per
// simulated second while never having more than GOMAXPROCS runnable
// workers. The pool is shared by every Market (and by the LBT planner's
// per-cluster planning fan-out) and hands out cluster indexes through an
// atomic counter, so work distribution is load-balanced and the calling
// goroutine participates instead of blocking.
//
// Parallelism is enabled automatically for many-cluster markets (the
// Table 7 scalability regime); SetParallel overrides the choice.

// parallelThreshold is the cluster count above which NewMarket enables
// concurrent rounds by default.
const parallelThreshold = 16

// SetParallel forces concurrent (true) or sequential (false) round
// execution.
func (m *Market) SetParallel(on bool) { m.parallel = on }

// Parallel reports whether rounds execute concurrently across clusters.
func (m *Market) Parallel() bool { return m.parallel }

// poolJob is one ParallelFor invocation: workers (and the caller) claim
// indexes in [0, n) through the shared counter until it runs dry.
type poolJob struct {
	fn   func(i int)
	next *atomic.Int64
	n    int64
	wg   *sync.WaitGroup
}

var pool struct {
	once    sync.Once
	jobs    chan poolJob
	workers int
	busy    atomic.Int64
}

// PoolBusy reports how many pool workers are currently running a job — the
// occupancy behind the pricepower_pool_busy_workers gauge. The calling
// goroutine's own participation in ParallelFor is not counted.
func PoolBusy() int { return int(pool.busy.Load()) }

// PoolWorkers reports the pool size (0 until the first parallel round
// starts the pool).
func PoolWorkers() int { return pool.workers }

func startPool() {
	// At least one worker even on GOMAXPROCS=1 hosts, so the concurrent
	// path always crosses a goroutine boundary (the race detector and the
	// equivalence tests then exercise real concurrency everywhere).
	pool.workers = runtime.GOMAXPROCS(0)
	if pool.workers < 1 {
		pool.workers = 1
	}
	pool.jobs = make(chan poolJob)
	for i := 0; i < pool.workers; i++ {
		go func() {
			for j := range pool.jobs {
				pool.busy.Add(1)
				runJob(j)
				pool.busy.Add(-1)
				j.wg.Done()
			}
		}()
	}
}

func runJob(j poolJob) {
	for {
		i := j.next.Add(1) - 1
		if i >= j.n {
			return
		}
		j.fn(int(i))
	}
}

// ParallelFor runs fn(0..n-1) across the persistent worker pool, blocking
// until every index completed. The caller's goroutine participates in the
// work, so the call is never slower than sequential execution by more than
// the wake-up cost of the idle workers. fn must not call ParallelFor
// recursively for indexes of the same invocation (cluster-local market
// phases never do).
func ParallelFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	pool.once.Do(startPool)
	var next atomic.Int64
	var wg sync.WaitGroup
	w := pool.workers
	if w > n-1 {
		w = n - 1 // the caller covers the rest
	}
	j := poolJob{fn: fn, next: &next, n: int64(n), wg: &wg}
	// Hand the job only to currently idle workers: if another market (or a
	// concurrent LBT plan) holds the pool, the caller proceeds alone rather
	// than queuing behind it — ParallelFor never blocks on pool contention.
	for i := 0; i < w; i++ {
		wg.Add(1)
		select {
		case pool.jobs <- j:
		default:
			wg.Done()
			i = w // no idle worker; stop recruiting
		}
	}
	runJob(j)
	wg.Wait()
}

// SetSpawnFanout switches the concurrent path back to the legacy
// goroutine-per-cluster fan-out. It exists solely as the regression
// baseline for the scalability benchmarks (cmd/bench persists the pooled
// vs. spawned round latency to BENCH_scale.json); production callers never
// enable it.
func (m *Market) SetSpawnFanout(on bool) { m.spawnFanout = on }

// forEachCluster runs fn over every cluster agent, concurrently (on the
// shared worker pool) when the market is in parallel mode.
func (m *Market) forEachCluster(fn func(v *ClusterAgent)) {
	if !m.parallel || len(m.Clusters) < 2 {
		for _, v := range m.Clusters {
			fn(v)
		}
		return
	}
	if m.spawnFanout {
		var wg sync.WaitGroup
		wg.Add(len(m.Clusters))
		for _, v := range m.Clusters {
			go func(v *ClusterAgent) {
				defer wg.Done()
				fn(v)
			}(v)
		}
		wg.Wait()
		return
	}
	ParallelFor(len(m.Clusters), func(i int) { fn(m.Clusters[i]) })
}
