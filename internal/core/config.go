// Package core implements the paper's primary contribution: the price-
// theory based power-management market.
//
// The traded commodity is the Processing Unit (PU, one million cycles per
// second), bought with virtual money. Four kinds of agents participate
// (§3.1):
//
//   - task agents receive an allowance, save, and bid for PUs according to
//     their task's demand (Eq. 1);
//   - core agents discover the price of their core's PUs from the submitted
//     bids (P_c = Σ b_t / S_c) and distribute supply in proportion to bids;
//   - cluster agents keep prices stable by adjusting the shared V-F level —
//     price inflation on the cluster's constrained core raises supply,
//     deflation lowers it (§3.2.2);
//   - the chip agent controls the money in circulation (the global
//     allowance) to keep total power inside the TDP constraint, through the
//     normal/threshold/emergency state machine (§3.2.3).
//
// The market is deliberately independent of the simulator: supply actuation
// goes through the small ClusterControl interface, and demands/observed
// supplies are injected each round. The running examples of Tables 1–3
// execute directly against this package (see market_test.go).
package core

// Config carries the market's tunables. Zero values are replaced by the
// defaults in DefaultConfig.
type Config struct {
	// MinBid is b_min, the floor every bid must respect.
	MinBid float64
	// Tolerance is δ, the inflation/deflation rate a cluster agent tolerates
	// before changing the V-F level (§3.2.2). Lower values react faster but
	// cause thermal cycling.
	Tolerance float64
	// SavingsCap bounds a task agent's savings at SavingsCap × its current
	// allowance (§3.2.3 "Savings"). The paper leaves the factor to the
	// designer; large savings can hold the system in emergency state longer.
	SavingsCap float64
	// InitialAllowance seeds the global allowance A.
	InitialAllowance float64
	// InitialBid seeds every new task agent's bid (the $1 of Table 1).
	InitialBid float64
	// Wtdp is the thermal design power constraint in W.
	Wtdp float64
	// Wth is the threshold-state boundary: between Wth and Wtdp the chip
	// agent freezes the allowance so an overloaded system stabilizes near
	// (but below) TDP (§3.2.3).
	Wth float64

	// Sensor validation / graceful degradation (DESIGN.md §9). Real power
	// telemetry is noisy and intermittently missing; the chip agent
	// validates each reading before classifying it and runs on the last
	// trusted value — with a tightened guard band — while the sensor
	// misbehaves.

	// MaxSensorPowerW is the physically plausible ceiling for a chip power
	// reading; anything above is rejected as a sensor fault. 0 disables the
	// envelope check (the PPM governor sets it from the chip's worst-case
	// power envelope).
	MaxSensorPowerW float64
	// SensorStaleRounds bounds how many consecutive rounds the last trusted
	// reading substitutes for rejected ones (default 8); past the bound the
	// raw reading is clamped into [0, MaxSensorPowerW] and used — stale
	// data eventually lies worse than noisy data.
	SensorStaleRounds int
	// DegradedGuard scales the Wth/Wtdp boundaries while power readings are
	// untrusted (default 0.85): the state machine throttles earlier when it
	// cannot see clearly.
	DegradedGuard float64
	// DegradedHealthyRounds is how many consecutive trusted readings clear
	// the degraded flag (default 3).
	DegradedHealthyRounds int
}

// DefaultConfig returns the tunables used throughout the evaluation: δ=0.2
// (the paper's running-example tolerance), a buffer zone at 90 % of TDP,
// and a savings cap of 5× the allowance (Table 3's trace lets savings grow
// to ≈4.6× the allowance, so the paper's own cap was at least that).
//
// Buffer sizing is the §3.2.3 trade-off: a zone wider than every V-F step's
// power delta guarantees the system parks in the threshold state without
// oscillation, but leaves the chip under-utilized; a narrow zone oscillates
// around the TDP and achieves higher utilization. The default follows the
// paper's preference for utilization ("a smaller buffer zone leads to
// frequent oscillations around the TDP, but achieves higher utilization");
// the ablation bench sweeps the ratio.
func DefaultConfig(wtdp float64) Config {
	return Config{
		MinBid:           0.01,
		Tolerance:        0.2,
		SavingsCap:       5.0,
		InitialAllowance: 4.5,
		InitialBid:       1.0,
		Wtdp:             wtdp,
		Wth:              0.9 * wtdp,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig(c.Wtdp)
	if c.MinBid <= 0 {
		c.MinBid = d.MinBid
	}
	if c.Tolerance <= 0 {
		c.Tolerance = d.Tolerance
	}
	if c.SavingsCap <= 0 {
		c.SavingsCap = d.SavingsCap
	}
	if c.InitialAllowance <= 0 {
		c.InitialAllowance = d.InitialAllowance
	}
	if c.InitialBid <= 0 {
		c.InitialBid = d.InitialBid
	}
	if c.Wth <= 0 && c.Wtdp > 0 {
		c.Wth = d.Wth
	}
	if c.SensorStaleRounds <= 0 {
		c.SensorStaleRounds = 8
	}
	if c.DegradedGuard <= 0 || c.DegradedGuard > 1 {
		c.DegradedGuard = 0.85
	}
	if c.DegradedHealthyRounds <= 0 {
		c.DegradedHealthyRounds = 3
	}
	return c
}

// ClusterControl is the market's actuation interface onto one hardware
// cluster: the cluster agent raises or lowers supply one V-F rung at a time
// and reads the cluster's power for allowance distribution.
type ClusterControl interface {
	// SupplyPU reports the current per-core supply (frequency in MHz).
	SupplyPU() float64
	// SupplyAt reports the per-core supply at ladder rung i.
	SupplyAt(level int) float64
	// Level and NumLevels describe the ladder position.
	Level() int
	NumLevels() int
	// StepUp / StepDown move one rung; they report false at the ladder ends.
	StepUp() bool
	StepDown() bool
	// Power reports the cluster's current power in W.
	Power() float64
	// PowerAt reports the cluster's power envelope at ladder rung i (all
	// cores busy); IdlePowerAt reports the same rung with all cores idle.
	// The LBT module estimates mapping power costs with them.
	PowerAt(level int) float64
	IdlePowerAt(level int) float64
}
