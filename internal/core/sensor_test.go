package core

import (
	"math"
	"testing"
)

// sensorMarket builds a 1-cluster market with the validation tunables set
// and the EWMA/last-good state seeded as if w had been trusted for a while.
func sensorMarket(seedW float64) *Market {
	ctl := NewLadderControl([]float64{100, 200}, []float64{1, 2})
	m := NewMarket(Config{
		InitialAllowance: 10, Wtdp: 8,
		MaxSensorPowerW: 20, SensorStaleRounds: 3, DegradedHealthyRounds: 2,
	}, []ClusterControl{ctl}, []int{1})
	if seedW > 0 {
		m.wAvg, m.wSeeded = seedW, true
		m.lastGoodW, m.lastGoodSeeded = seedW, true
	}
	return m
}

func TestValidateSensorHealthyPassThrough(t *testing.T) {
	m := sensorMarket(3)
	for _, w := range []float64{0.5, 3, 7.9, 17} {
		if got := m.validateSensor(w, 2); got != w {
			t.Errorf("healthy reading %v mangled to %v", w, got)
		}
	}
	if m.Degraded() || m.SensorRejects() != 0 {
		t.Errorf("healthy stream left degraded=%v rejects=%d", m.Degraded(), m.SensorRejects())
	}
	// ×6 spikes were accepted above only when under wAvg·6+1; 17 < 3·6+1.
	if m.LastGoodPower() != 17 {
		t.Errorf("last good %v, want the latest trusted 17", m.LastGoodPower())
	}
}

func TestValidateSensorRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		w    float64
	}{
		{"nan", math.NaN()},
		{"+inf", math.Inf(1)},
		{"negative", -1},
		{"over-envelope", 21},
		{"dropout", 0},
		{"spike", 3*sensorJumpFactor + 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := sensorMarket(3)
			if got := m.validateSensor(c.w, 2); got != 3 {
				t.Errorf("rejected reading %v: substituted %v, want last good 3", c.w, got)
			}
			if !m.Degraded() {
				t.Error("rejection did not set the degraded flag")
			}
			if m.SensorRejects() != 1 {
				t.Errorf("rejects = %d, want 1", m.SensorRejects())
			}
		})
	}
}

// A 0 W reading with no tasks is legitimate (everything gated), and a
// downward collapse is never rejected — power-gating a big cluster can
// drop chip power many-fold within one round.
func TestValidateSensorAcceptsLegitimateLows(t *testing.T) {
	m := sensorMarket(6)
	if got := m.validateSensor(0, 0); got != 0 {
		t.Errorf("idle chip's 0 W rejected: got %v", got)
	}
	m2 := sensorMarket(6)
	if got := m2.validateSensor(0.4, 2); got != 0.4 {
		t.Errorf("downward collapse rejected: got %v", got)
	}
	if m2.Degraded() {
		t.Error("downward collapse set degraded")
	}
}

func TestValidateSensorStaleBoundThenClamp(t *testing.T) {
	m := sensorMarket(3)
	// SensorStaleRounds=3: the first three rejections hold the last good
	// value, the fourth clamps the raw reading into [0, MaxSensorPowerW].
	for i := 0; i < 3; i++ {
		if got := m.validateSensor(50, 2); got != 3 {
			t.Fatalf("rejection %d: got %v, want held 3", i+1, got)
		}
	}
	if got := m.validateSensor(50, 2); got != 20 {
		t.Errorf("past stale bound: got %v, want clamp to envelope 20", got)
	}
	if got := m.validateSensor(math.NaN(), 2); got != 0 {
		t.Errorf("past stale bound, NaN: got %v, want clamp to 0", got)
	}
}

func TestValidateSensorDegradedHysteresis(t *testing.T) {
	m := sensorMarket(3)
	m.validateSensor(math.NaN(), 2)
	if !m.Degraded() {
		t.Fatal("not degraded after rejection")
	}
	if m.validateSensor(3.1, 2); m.Degraded() != true {
		t.Fatal("one healthy round cleared degraded, want DegradedHealthyRounds=2")
	}
	if m.validateSensor(3.2, 2); m.Degraded() {
		t.Error("two healthy rounds did not clear degraded")
	}
	// A rejection mid-streak resets the hysteresis counter.
	m.validateSensor(math.NaN(), 2)
	m.validateSensor(3.1, 2)
	m.validateSensor(math.NaN(), 2)
	m.validateSensor(3.1, 2)
	if m.validateSensor(3.2, 2); m.Degraded() {
		t.Error("two consecutive healthy rounds after reset did not clear degraded")
	}
}

// While degraded, the effective TDP boundaries tighten by DegradedGuard;
// healthy they are exactly the configured ones.
func TestEffectiveBoundariesTighten(t *testing.T) {
	m := sensorMarket(3)
	if m.EffectiveWtdp() != m.cfg.Wtdp || m.EffectiveWth() != m.cfg.Wth {
		t.Fatalf("healthy effective boundaries (%v, %v) ≠ configured (%v, %v)",
			m.EffectiveWth(), m.EffectiveWtdp(), m.cfg.Wth, m.cfg.Wtdp)
	}
	m.validateSensor(math.NaN(), 2)
	if !m.Degraded() {
		t.Fatal("not degraded")
	}
	wantTdp := m.cfg.Wtdp * m.cfg.DegradedGuard
	if got := m.EffectiveWtdp(); got != wantTdp {
		t.Errorf("degraded EffectiveWtdp = %v, want %v", got, wantTdp)
	}
	if got := m.EffectiveWth(); got >= m.cfg.Wth {
		t.Errorf("degraded EffectiveWth = %v not tightened below %v", got, m.cfg.Wth)
	}
}
