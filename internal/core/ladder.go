package core

// LadderControl is a self-contained ClusterControl over an explicit supply
// ladder with a per-level power table. The paper's running examples
// (Tables 1–3) and the quickstart example run the market against it without
// any hardware model; tests use it to script arbitrary power responses.
type LadderControl struct {
	// Ladder lists per-core supplies in ascending order (PUs).
	Ladder []float64
	// PowerPerLevel lists the cluster's busy power at each rung (W).
	// Optional; a nil table reports zero power (no TDP pressure).
	PowerPerLevel []float64
	// IdlePerLevel optionally lists the cluster's idle power per rung; nil
	// defaults to 30 % of PowerPerLevel.
	IdlePerLevel []float64

	level int
}

// NewLadderControl builds a control starting at the bottom rung.
func NewLadderControl(ladder []float64, power []float64) *LadderControl {
	if len(ladder) == 0 {
		panic("core: empty supply ladder")
	}
	return &LadderControl{Ladder: ladder, PowerPerLevel: power}
}

// SupplyPU reports the current per-core supply.
func (l *LadderControl) SupplyPU() float64 { return l.Ladder[l.level] }

// SupplyAt reports the supply at rung i (clamped).
func (l *LadderControl) SupplyAt(i int) float64 {
	if i < 0 {
		i = 0
	}
	if i >= len(l.Ladder) {
		i = len(l.Ladder) - 1
	}
	return l.Ladder[i]
}

// Level reports the current rung.
func (l *LadderControl) Level() int { return l.level }

// NumLevels reports the ladder height.
func (l *LadderControl) NumLevels() int { return len(l.Ladder) }

// SetLevel jumps to rung i (clamped).
func (l *LadderControl) SetLevel(i int) {
	if i < 0 {
		i = 0
	}
	if i >= len(l.Ladder) {
		i = len(l.Ladder) - 1
	}
	l.level = i
}

// StepUp moves one rung up; it reports false at the top.
func (l *LadderControl) StepUp() bool {
	if l.level+1 >= len(l.Ladder) {
		return false
	}
	l.level++
	return true
}

// StepDown moves one rung down; it reports false at the bottom.
func (l *LadderControl) StepDown() bool {
	if l.level == 0 {
		return false
	}
	l.level--
	return true
}

// Power reports the scripted power at the current rung.
func (l *LadderControl) Power() float64 { return l.PowerAt(l.level) }

// PowerAt reports the scripted power at rung i.
func (l *LadderControl) PowerAt(i int) float64 {
	if l.PowerPerLevel == nil {
		return 0
	}
	if i < 0 {
		i = 0
	}
	if i >= len(l.PowerPerLevel) {
		i = len(l.PowerPerLevel) - 1
	}
	return l.PowerPerLevel[i]
}

// IdlePowerAt reports the scripted idle power at rung i: the IdlePerLevel
// table when set, else 30 % of the busy envelope (a typical static/dynamic
// split for the mobile silicon the paper targets).
func (l *LadderControl) IdlePowerAt(i int) float64 {
	if l.IdlePerLevel != nil {
		if i < 0 {
			i = 0
		}
		if i >= len(l.IdlePerLevel) {
			i = len(l.IdlePerLevel) - 1
		}
		return l.IdlePerLevel[i]
	}
	return 0.3 * l.PowerAt(i)
}

var _ ClusterControl = (*LadderControl)(nil)
