package sched

import (
	"pricepower/internal/sim"
)

// Queue is one core's run queue. It implements CFS semantics: the entity
// with the smallest virtual runtime runs next, and an entity's virtual
// runtime advances by (real work / weight), so over time every runnable
// entity receives CPU in proportion to its weight.
type Queue struct {
	entities    []*Entity
	minVruntime float64

	// scratch and allocs are reusable per-tick buffers: the steady-state
	// RunTick must not allocate (the platform tick runs once per core per
	// simulated millisecond, and the allocation-free invariant is enforced by
	// TestTickAllocationFree / BenchmarkTickThroughput at the root).
	scratch []fillState
	allocs  []Allocation

	// Granularity selects the scheduling model. Zero (the default) is the
	// fluid model: capacity flows to all runnable entities at once in
	// weight proportion (CFS in the limit of infinitesimal re-picking) —
	// smooth, ideal for fast experiments. A positive value is the discrete
	// model: within a tick the queue repeatedly picks the minimum-vruntime
	// entity and runs it for up to Granularity before re-picking, exactly
	// like the kernel with that scheduling granularity — bursty at the
	// tick scale, proportional over longer windows.
	Granularity sim.Time
}

// NewQueue returns an empty run queue.
func NewQueue() *Queue { return &Queue{} }

// Len reports the number of enqueued entities.
func (q *Queue) Len() int { return len(q.entities) }

// Entities returns the enqueued entities (shared slice; do not mutate).
func (q *Queue) Entities() []*Entity { return q.entities }

// Add enqueues an entity; re-adding an already enqueued entity is a no-op.
// As in the kernel, a newly arriving or migrating entity's vruntime is
// floored at the queue's minimum so it can neither starve the queue (hoarded
// low vruntime) nor be starved (vruntime far ahead).
func (q *Queue) Add(e *Entity) {
	if e.queue == q {
		return
	}
	if e.queue != nil {
		e.queue.Remove(e)
	}
	if e.vruntime < q.minVruntime {
		e.vruntime = q.minVruntime
	}
	e.queue = q
	e.qpos = len(q.entities)
	q.entities = append(q.entities, e)
}

// Remove dequeues an entity; it reports whether the entity was present.
// The entity's cached position makes the lookup O(1); the tail shift keeps
// queue order (and therefore tick-level floating-point evaluation order)
// identical to the scan-based implementation.
func (q *Queue) Remove(e *Entity) bool {
	if e.queue != q {
		return false
	}
	i := e.qpos
	copy(q.entities[i:], q.entities[i+1:])
	q.entities[len(q.entities)-1] = nil
	q.entities = q.entities[:len(q.entities)-1]
	for j := i; j < len(q.entities); j++ {
		q.entities[j].qpos = j
	}
	e.queue = nil
	e.qpos = 0
	return true
}

// Contains reports whether e is enqueued.
func (q *Queue) Contains(e *Entity) bool { return e.queue == q }

// MinVruntime reports the queue's minimum-vruntime floor — the value newly
// arriving entities are floored at. It is non-decreasing over the queue's
// lifetime (the invariant checker pins this).
func (q *Queue) MinVruntime() float64 { return q.minVruntime }

// fillState is the per-entity progressive-filling scratch state.
type fillState struct {
	e      *Entity
	want   float64 // remaining work the entity will accept this tick
	got    float64
	active bool
}

// RunTick plays out one scheduler tick of length dt on a core supplying
// supplyPU processing units. It returns the work delivered to each entity
// that ran, and the core utilization over the tick in [0,1]. The returned
// slice is a reusable buffer owned by the queue — it is valid until the next
// RunTick call; callers must consume it immediately (or copy it).
//
// Within the tick the queue behaves like CFS with infinitesimal re-pick:
// capacity flows to the minimum-vruntime entity; when an entity's WantPU cap
// is reached it yields the remainder (work conservation). The result over
// the tick is the classic progressive-filling ("water-filling") allocation:
// proportional to weight, capped by want, with slack redistributed.
func (q *Queue) RunTick(supplyPU float64, dt sim.Time) ([]Allocation, float64) {
	seconds := dt.Seconds()
	capacity := supplyPU * seconds
	if len(q.entities) == 0 || capacity <= 0 {
		for _, e := range q.entities {
			e.Load.Update(0, dt)
		}
		return nil, 0
	}
	if q.Granularity > 0 {
		return q.runTickDiscrete(supplyPU, dt)
	}

	if cap(q.scratch) < len(q.entities) {
		q.scratch = make([]fillState, len(q.entities))
	}
	states := q.scratch[:len(q.entities)]
	for i, e := range q.entities {
		want := capacity // unbounded ≙ can absorb the whole tick
		if e.WantPU >= 0 {
			want = e.WantPU * seconds
		}
		states[i] = fillState{e: e, want: want, active: want > 0}
	}

	// Progressive filling: distribute remaining capacity proportionally to
	// weight among active entities; entities hitting their cap drop out and
	// the remainder is redistributed. Terminates in ≤ n rounds.
	remaining := capacity
	for remaining > 1e-12 {
		var totalW float64
		for i := range states {
			if states[i].active {
				totalW += states[i].e.Weight
			}
		}
		if totalW <= 0 {
			break
		}
		allSatisfied := true
		consumed := 0.0
		for i := range states {
			s := &states[i]
			if !s.active {
				continue
			}
			share := remaining * s.e.Weight / totalW
			if share >= s.want-1e-12 {
				share = s.want
				s.active = false
			} else {
				allSatisfied = false
			}
			s.got += share
			s.want -= share
			consumed += share
		}
		remaining -= consumed
		if allSatisfied || consumed <= 1e-12 {
			break
		}
	}

	// Account vruntime, load tracking, and build the result.
	allocs := q.allocs[:0]
	used := 0.0
	minV := -1.0
	for i := range states {
		s := &states[i]
		if s.got > 0 {
			w := s.e.Weight
			if w <= 0 {
				w = 1
			}
			s.e.vruntime += s.got / w
			allocs = append(allocs, Allocation{Entity: s.e, WorkPU: s.got})
			used += s.got
		}
		// PELT tracks *runnable* time: an entity still wanting work at the
		// end of the tick was runnable (running or waiting) throughout.
		runnable := minf(s.got/capacity, 1)
		if s.want > 1e-9 {
			runnable = 1
		}
		s.e.Load.Update(runnable, dt)
		if minV < 0 || s.e.vruntime < minV {
			minV = s.e.vruntime
		}
	}
	if minV > q.minVruntime {
		q.minVruntime = minV
	}
	sortAllocs(allocs)
	q.allocs = allocs
	return allocs, used / capacity
}

// sortAllocs orders allocations by entity ID (deterministic output across
// queue-order churn). Insertion sort: run queues are small and the input is
// near-sorted, and unlike sort.Slice it does not allocate.
func sortAllocs(a []Allocation) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].Entity.ID < a[j-1].Entity.ID; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
