package sched

import (
	"math"
	"testing"

	"pricepower/internal/sim"
)

// FuzzQueuePickNext interprets an arbitrary op stream — adds, removes,
// cross-queue migrations, weight/want changes, fluid and discrete ticks —
// against two run queues and a shadow membership model. It pins the
// properties the platform's task accounting is built on: no entity is ever
// lost or duplicated, membership bookkeeping (Queued/Contains/Len) stays
// exact, allocations only go to enqueued entities and never exceed the
// tick's capacity, and vruntime bookkeeping is monotone.
func FuzzQueuePickNext(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 5, 50, 2, 0, 5, 50})
	f.Add([]byte("\x00\x00\x00\x01\x00\x02\x01\x03\x05\x20\x03\x05\x04\x10\x05\x40\x06\x00\x05\x33"))
	f.Add([]byte("\x00\x07\x01\x06\x00\x05\x02\x06\x05\xff\x05\x00\x06\x01\x05\x80"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		const nEnt = 8
		qs := [2]*Queue{NewQueue(), NewQueue()}
		ents := make([]*Entity, nEnt)
		where := make([]int, nEnt) // shadow model: queue index or -1
		vr := make([]float64, nEnt)
		for i := range ents {
			ents[i] = &Entity{ID: i, Weight: NiceToWeight(0), WantPU: -1}
			where[i] = -1
		}
		var minV [2]float64

		assertSane := func() {
			counts := [2]int{}
			for k, e := range ents {
				if e.VRuntime() < vr[k] {
					t.Fatalf("entity %d vruntime fell %v -> %v", k, vr[k], e.VRuntime())
				}
				vr[k] = e.VRuntime()
				if (where[k] >= 0) != e.Queued() {
					t.Fatalf("entity %d: shadow says queue %d, Queued()=%v", k, where[k], e.Queued())
				}
				for qi, q := range qs {
					want := where[k] == qi
					if q.Contains(e) != want {
						t.Fatalf("entity %d: Contains on queue %d = %v, shadow %d", k, qi, !want, where[k])
					}
				}
				if where[k] >= 0 {
					counts[where[k]]++
				}
			}
			for qi, q := range qs {
				if q.Len() != counts[qi] {
					t.Fatalf("queue %d Len %d, shadow %d", qi, q.Len(), counts[qi])
				}
				seen := map[int]bool{}
				for _, e := range q.Entities() {
					if seen[e.ID] {
						t.Fatalf("queue %d lists entity %d twice", qi, e.ID)
					}
					seen[e.ID] = true
					if where[e.ID] != qi {
						t.Fatalf("queue %d lists entity %d, shadow says %d", qi, e.ID, where[e.ID])
					}
				}
				if mv := q.MinVruntime(); mv < minV[qi] {
					t.Fatalf("queue %d min-vruntime fell %v -> %v", qi, minV[qi], mv)
				} else {
					minV[qi] = mv
				}
			}
		}
		assertSane()

		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%7, ops[i+1]
			k := int(arg) % nEnt
			switch op {
			case 0, 1: // add (op is the target queue); re-add and migration included
				qs[op].Add(ents[k])
				where[k] = int(op)
				if ents[k].VRuntime() < qs[op].MinVruntime() {
					t.Fatalf("entity %d joined queue %d below its min-vruntime floor", k, op)
				}
			case 2:
				was := where[k] >= 0
				removedFrom := where[k]
				if removedFrom < 0 {
					removedFrom = int(arg) % 2 // removing from a queue it is not on
				}
				if got := qs[removedFrom].Remove(ents[k]); got != was {
					t.Fatalf("Remove(entity %d) = %v, shadow had queue %d", k, got, where[k])
				}
				where[k] = -1
			case 3:
				ents[k].WantPU = float64(int(arg)-1) / 2 // spans -0.5 (→ unbounded? no: negative), 0 and positive
			case 4:
				ents[k].Weight = float64(int(arg) % 33) // includes zero weight
			case 5, 6:
				qi := int(op) % 2
				q := qs[qi]
				supply := float64(arg) * 10
				allocs, util := q.RunTick(supply, sim.Millisecond)
				capacity := supply * sim.Millisecond.Seconds()
				if math.IsNaN(util) || util < 0 || util > 1+1e-9 {
					t.Fatalf("utilization %v outside [0,1]", util)
				}
				var used float64
				lastID := -1
				for _, a := range allocs {
					if a.Entity.ID <= lastID {
						t.Fatalf("allocations out of order or duplicated: %v after id %d", a, lastID)
					}
					lastID = a.Entity.ID
					if where[a.Entity.ID] != qi {
						t.Fatalf("entity %d allocated work on queue %d but shadow says %d",
							a.Entity.ID, qi, where[a.Entity.ID])
					}
					if a.WorkPU < 0 || math.IsNaN(a.WorkPU) {
						t.Fatalf("negative work %v", a.WorkPU)
					}
					used += a.WorkPU
				}
				if used > capacity*(1+1e-9)+1e-9 {
					t.Fatalf("allocated %v PU·s from capacity %v", used, capacity)
				}
			}
			assertSane()
		}

		// A second pass in discrete mode over whatever state the stream
		// left: the granular scheduler must respect the same contracts.
		for qi, q := range qs {
			q.Granularity = 100 * sim.Microsecond
			allocs, util := q.RunTick(400, sim.Millisecond)
			if math.IsNaN(util) || util < 0 || util > 1+1e-9 {
				t.Fatalf("discrete utilization %v outside [0,1]", util)
			}
			var used float64
			for _, a := range allocs {
				if where[a.Entity.ID] != qi {
					t.Fatalf("discrete tick allocated to entity %d not on queue %d", a.Entity.ID, qi)
				}
				used += a.WorkPU
			}
			if capacity := 400 * sim.Millisecond.Seconds(); used > capacity*(1+1e-9)+1e-9 {
				t.Fatalf("discrete tick allocated %v from capacity %v", used, capacity)
			}
		}
		assertSane()
	})
}
