package sched

import (
	"math"

	"pricepower/internal/sim"
)

// LoadTracker is a PELT-style (per-entity load tracking, Turner 2012)
// geometrically-decayed average of an entity's runnable fraction. The Linux
// series decays by y per millisecond with y³² = 0.5 (32 ms half-life);
// we use the continuous-time equivalent so arbitrary tick sizes work.
//
// The HL baseline uses this signal for its big/LITTLE migration thresholds
// ("the amount of time spent in the active task run-queue"), and governors
// can use it as a demand proxy when a task exposes no heartbeats (§5.2's
// per-entity-load-tracking fallback).
type LoadTracker struct {
	avg         float64
	initialized bool
}

// peltHalfLife is the decay half-life of the tracked average.
const peltHalfLife = 32 * sim.Millisecond

// Update folds one tick's runnable fraction (in [0,1]) into the average.
func (l *LoadTracker) Update(runnable float64, dt sim.Time) {
	if runnable < 0 {
		runnable = 0
	}
	if runnable > 1 {
		runnable = 1
	}
	if !l.initialized {
		l.avg = runnable
		l.initialized = true
		return
	}
	decay := math.Exp2(-float64(dt) / float64(peltHalfLife))
	l.avg = l.avg*decay + runnable*(1-decay)
}

// Value reports the current load average in [0,1].
func (l *LoadTracker) Value() float64 { return l.avg }

// Reset clears the tracker (used after migrations, when history on the old
// core is no longer representative).
func (l *LoadTracker) Reset() { *l = LoadTracker{} }
