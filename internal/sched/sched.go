// Package sched is the fair-scheduler substrate: a CFS-style weighted-fair
// run queue per core, the Linux nice→weight table, and PELT-style per-entity
// load tracking.
//
// The paper's framework steers the stock Linux scheduler through two knobs —
// nice values (→ proportional shares, used by the core agents to distribute
// purchased resources) and affinity (→ task placement, used by the LBT
// module). This package reproduces those semantics: each core owns a Queue
// of Entities; every simulator tick the queue plays out CFS pick-next over
// the tick and reports how much work each entity received.
//
// Work is measured in PU·seconds: one PU·s equals one million processor
// cycles (the paper's Processing Unit integrated over a second).
package sched

import "fmt"

// niceToWeight is the kernel's prio_to_weight table: nice 0 = 1024, and each
// nice step changes CPU share by ≈1.25×.
var niceToWeight = [40]int64{
	88761, 71755, 56483, 46273, 36291, // -20 .. -16
	29154, 23254, 18705, 14949, 11916, // -15 .. -11
	9548, 7620, 6100, 4904, 3906, // -10 .. -6
	3121, 2501, 1991, 1586, 1277, // -5 .. -1
	1024, 820, 655, 526, 423, // 0 .. 4
	335, 272, 215, 172, 137, // 5 .. 9
	110, 87, 70, 56, 45, // 10 .. 14
	36, 29, 23, 18, 15, // 15 .. 19
}

// NiceToWeight maps a Linux nice value (-20..19, clamped) to its CFS load
// weight.
func NiceToWeight(nice int) float64 {
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	return float64(niceToWeight[nice+20])
}

// Entity is one schedulable task as the scheduler sees it.
type Entity struct {
	ID int

	// Weight is the entity's CFS load weight. The core agents implement the
	// paper's resource distribution by setting it proportional to the supply
	// each task purchased; plain fair scheduling uses NiceToWeight(0).
	Weight float64

	// WantPU caps how many PUs the entity will consume this tick (its
	// self-pacing: a task that met its maximum heart rate idles). Negative
	// means unbounded (fully CPU-bound).
	WantPU float64

	// vruntime is the entity's weighted virtual runtime in PU·s/weight.
	vruntime float64

	// queue and qpos index the entity's position in its current run queue so
	// Queue.Remove and Queue.Contains are O(1) lookups instead of scans. An
	// entity is on at most one queue at a time (nil when dequeued).
	queue *Queue
	qpos  int

	// Load tracks the entity's recent runnable fraction (PELT-style).
	Load LoadTracker
}

// Queued reports whether the entity is currently enqueued on some run queue.
func (e *Entity) Queued() bool { return e.queue != nil }

// VRuntime exposes the entity's current virtual runtime (useful in tests and
// diagnostics).
func (e *Entity) VRuntime() float64 { return e.vruntime }

// Allocation reports the work one entity received during a tick.
type Allocation struct {
	Entity *Entity
	// WorkPU is the work received, in PU·s (millions of cycles).
	WorkPU float64
}

func (a Allocation) String() string {
	return fmt.Sprintf("entity %d: %.3f PU·s", a.Entity.ID, a.WorkPU)
}
