package sched

import "pricepower/internal/sim"

// runTickDiscrete is the pick-next scheduling model: the minimum-vruntime
// entity runs for up to Granularity (or until its want is exhausted), then
// the queue re-picks, until the tick's capacity is spent or nobody wants
// more. Matches kernel CFS with sched_min_granularity = Granularity.
func (q *Queue) runTickDiscrete(supplyPU float64, dt sim.Time) ([]Allocation, float64) {
	seconds := dt.Seconds()
	capacity := supplyPU * seconds

	// Remaining want per entity for this tick, in PU·s.
	want := make(map[*Entity]float64, len(q.entities))
	got := make(map[*Entity]float64, len(q.entities))
	for _, e := range q.entities {
		w := capacity
		if e.WantPU >= 0 {
			w = e.WantPU * seconds
		}
		want[e] = w
	}

	sliceWork := supplyPU * q.Granularity.Seconds()
	remaining := capacity
	for remaining > 1e-12 {
		// Pick-next: minimum vruntime among entities still wanting work.
		var next *Entity
		for _, e := range q.entities {
			if want[e] <= 1e-12 {
				continue
			}
			if next == nil || e.vruntime < next.vruntime {
				next = e
			}
		}
		if next == nil {
			break
		}
		run := sliceWork
		if run > want[next] {
			run = want[next]
		}
		if run > remaining {
			run = remaining
		}
		got[next] += run
		want[next] -= run
		remaining -= run
		w := next.Weight
		if w <= 0 {
			w = 1
		}
		next.vruntime += run / w
	}

	var allocs []Allocation
	used := 0.0
	minV := -1.0
	for _, e := range q.entities {
		if g := got[e]; g > 0 {
			allocs = append(allocs, Allocation{Entity: e, WorkPU: g})
			used += g
		}
		runnable := minf(got[e]/capacity, 1)
		if want[e] > 1e-9 {
			runnable = 1
		}
		e.Load.Update(runnable, dt)
		if minV < 0 || e.vruntime < minV {
			minV = e.vruntime
		}
	}
	if minV > q.minVruntime {
		q.minVruntime = minV
	}
	return allocs, used / capacity
}
